(* Quickstart: design a fault-tolerant real-time broadcast program.

   Three files with different sizes, latency constraints and fault-
   tolerance requirements; the library finds the bandwidth, builds the
   pinwheel-scheduled program, and a simulated client retrieves a file
   through block losses.

   Run with: dune exec examples/quickstart.exe *)

module File_spec = Pindisk.File_spec
module Bandwidth = Pindisk.Bandwidth
module Program = Pindisk.Program
module Schedule = Pindisk_pinwheel.Schedule
module Fault = Pindisk_sim.Fault
module Client = Pindisk_sim.Client

let () =
  (* 1. Specify the files: size (blocks), latency (seconds), tolerance. *)
  let files =
    [
      File_spec.make ~name:"alerts" ~id:0 ~blocks:2 ~latency:4 ~tolerance:2 ();
      File_spec.make ~name:"positions" ~id:1 ~blocks:4 ~latency:8 ~tolerance:1 ();
      File_spec.make ~name:"maps" ~id:2 ~blocks:8 ~latency:30 ();
    ]
  in
  Format.printf "Files:@.";
  List.iter (fun f -> Format.printf "  %a@." File_spec.pp f) files;

  (* 2. Bandwidth: the trivial lower bound and the paper's Equation-2
     sufficient bound. *)
  Format.printf "@.Bandwidth demand (lower bound): %a blocks/sec@."
    Pindisk_util.Q.pp (Bandwidth.demand files);
  Format.printf "Equation-2 sufficient bandwidth: %d blocks/sec@."
    (Bandwidth.required files);

  (* 3. Build the broadcast program at the smallest bandwidth the
     schedulers realize. *)
  let bandwidth, program =
    match Program.auto files with
    | Some r -> r
    | None -> failwith "unschedulable (cannot happen within 2x the bound)"
  in
  Format.printf "Achieved bandwidth: %d blocks/sec (overhead %.2fx)@." bandwidth
    (Bandwidth.overhead ~achieved:bandwidth files);
  Format.printf "@.Broadcast period (%d slots): %a@." (Program.period program)
    Schedule.pp (Program.schedule program);
  Format.printf "Program data cycle: %d slots@." (Program.data_cycle program);
  List.iter
    (fun f ->
      match Program.delta program f.File_spec.id with
      | Some d ->
          Format.printf "  %-9s: %d slots/period, consecutive blocks <= %d apart@."
            f.File_spec.name
            (Program.occurrences_per_period program f.File_spec.id)
            d
      | None -> ())
    files;

  (* 4. A client tunes in mid-broadcast and retrieves "positions" while 15%
     of blocks are lost; IDA redundancy absorbs the losses. *)
  let outcome =
    Client.retrieve ~program ~file:1 ~needed:4 ~start:13
      ~fault:(Fault.bernoulli ~p:0.15 ~seed:7) ()
  in
  Format.printf "@.Client retrieving 'positions' under 15%% block loss:@.  %a@."
    Client.pp_outcome outcome;
  let deadline = bandwidth * 8 in
  Format.printf "  deadline (B*T = %d slots) %s@." deadline
    (if Client.deadline_met outcome ~deadline then "MET" else "MISSED");
  if outcome.Client.losses > 1 then
    Format.printf
      "  (%d losses hit this retrieval; the program only provisions r = 1 \
       for 'positions', so the pinwheel guarantee covers one loss per \
       window)@."
      outcome.Client.losses
