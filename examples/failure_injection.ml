(* Failure injection on the paper's own toy programs (Figures 5-7).

   Builds the flat and AIDA-based programs of Figures 5 and 6 verbatim,
   then (a) recomputes Figure 7's worst-case delay table with an exact
   adversary, (b) checks Lemmas 1 and 2 against it, and (c) measures
   stochastic deadline-miss ratios under increasing loss rates.

   Run with: dune exec examples/failure_injection.exe *)

module Program = Pindisk.Program
module Bounds = Pindisk.Bounds
module Fault = Pindisk_sim.Fault
module Adversary = Pindisk_sim.Adversary
module Experiment = Pindisk_sim.Experiment

(* Figure 6's period: A1 B1 A2 A3 B2 A4 B3 A5 (A = 0, B = 1). *)
let layout = [ (0, 0); (1, 0); (0, 1); (0, 2); (1, 1); (0, 3); (1, 2); (0, 4) ]
let flat = Program.of_layout layout ~capacities:[ (0, 5); (1, 3) ]
let ida = Program.of_layout layout ~capacities:[ (0, 10); (1, 6) ]

let () =
  Format.printf "Toy disk of Figures 5/6: file A = 5 blocks, file B = 3 blocks,@.";
  Format.printf "period %d; AIDA disperses A->10 and B->6 blocks (data cycle %d).@.@."
    (Program.period ida) (Program.data_cycle ida);

  (* (a) Figure 7, recomputed exactly. *)
  Format.printf "Worst-case extra delay vs number of errors (exact adversary):@.";
  Format.printf "  errors |  A+IDA  B+IDA |  A flat  B flat | paper IDA  paper flat@.";
  let paper_ida = [| 0; 3; 4; 6; 7; 8 |] and paper_flat = [| 0; 8; 16; 24; 32; 40 |] in
  for r = 0 to 5 do
    let d p file needed = Adversary.worst_case_delay p ~file ~needed ~errors:r in
    Format.printf "  %6d | %6d %6d | %7d %7d | %9d %11d@." r (d ida 0 5) (d ida 1 3)
      (d flat 0 5) (d flat 1 3) paper_ida.(r) paper_flat.(r)
  done;
  Format.printf
    "  (flat column matches the paper exactly: r x tau = 8r. The paper's IDA@.\
    \   column is an informal estimate that exceeds its own Lemma-2 bound at@.\
    \   r=1; our exact values obey it.)@.@.";

  (* (b) Lemma checks. *)
  let delta_a = Option.get (Program.delta ida 0) in
  let delta_b = Option.get (Program.delta ida 1) in
  Format.printf "Lemma 2 spacing: Delta_A = %d, Delta_B = %d@." delta_a delta_b;
  for r = 0 to 5 do
    let da = Adversary.worst_case_delay ida ~file:0 ~needed:5 ~errors:r in
    Format.printf "  r=%d: A delay %2d <= r*Delta_A = %2d  %s@." r da
      (Bounds.lemma2 ~delta:delta_a ~errors:r)
      (if da <= Bounds.lemma2 ~delta:delta_a ~errors:r then "ok" else "VIOLATED")
  done;
  Format.printf
    "  (file B violates r*Delta beyond r = capacity - m = 3 -- the lemma's@.\
    \   implicit AIDA-redundancy assumption; see EXPERIMENTS.md.)@.@.";

  (* (c) Stochastic loss sweep. *)
  Format.printf "Deadline-miss ratio for file A (deadline 12 slots, 4000 clients):@.";
  Format.printf "  loss-rate |  AIDA   flat@.";
  List.iter
    (fun p ->
      let run program =
        Experiment.run ~program ~file:0 ~needed:5 ~deadline:12
          ~fault:(fun ~seed -> Fault.bernoulli ~p ~seed)
          ~trials:4000 ~seed:31 ()
      in
      let a = run ida and f = run flat in
      Format.printf "  %8.0f%% | %5.1f%% %5.1f%%@." (100.0 *. p)
        (100.0 *. Experiment.miss_ratio a)
        (100.0 *. Experiment.miss_ratio f))
    [ 0.0; 0.05; 0.1; 0.2; 0.3 ]
