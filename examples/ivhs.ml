(* IVHS: the paper's Intelligent Vehicle Highway System scenario.

   An IVHS backbone broadcasts traffic data to vehicles over a satellite
   downlink; vehicles have tiny caches and a weak cellular uplink, so they
   fetch everything from the broadcast disk "as it goes by". Incident
   alerts must arrive fast even on a noisy channel; the static map tiles
   can wait.

   This example runs the full stack end to end: real bytes are IDA-
   dispersed, broadcast per a pinwheel program, damaged by a bursty
   channel, and reconstructed by vehicles; then a stochastic fleet
   measures deadline-miss ratios for the AIDA program against a naive
   flat program.

   Run with: dune exec examples/ivhs.exe *)

module File_spec = Pindisk.File_spec
module Program = Pindisk.Program
module Bandwidth = Pindisk.Bandwidth
module Fault = Pindisk_sim.Fault
module Transport = Pindisk_sim.Transport
module Experiment = Pindisk_sim.Experiment

let incident_report =
  "INCIDENT I-93N mile 42: lane 3 blocked, delay 25 min, reroute via exit 40"

let route_guidance =
  String.concat "; "
    (List.init 6 (fun i -> Printf.sprintf "segment %d: speed %d km/h" i (40 + (7 * i))))

let map_tile = String.init 512 (fun i -> Char.chr (32 + (i mod 95)))

let () =
  (* Incidents: 2 blocks, 3-second deadline, survive 2 losses.
     Guidance: 3 blocks, 10-second deadline, survive 1 loss.
     Map tiles: 8 blocks, relaxed deadline, no redundancy. *)
  let files =
    [
      File_spec.make ~name:"incidents" ~id:0 ~blocks:2 ~latency:3 ~tolerance:2 ();
      File_spec.make ~name:"guidance" ~id:1 ~blocks:3 ~latency:10 ~tolerance:1 ();
      (* Larger files are more exposed to block errors, so they get a
         larger r (the paper's Section 3.2 generalization). *)
      File_spec.make ~name:"maps" ~id:2 ~blocks:8 ~latency:40 ~tolerance:2 ();
    ]
  in
  let bandwidth, program =
    match Program.auto files with Some r -> r | None -> assert false
  in
  Format.printf "IVHS downlink: %d blocks/sec (Equation-2 bound: %d)@." bandwidth
    (Bandwidth.required files);
  Format.printf "Broadcast period %d slots, data cycle %d slots@.@."
    (Program.period program) (Program.data_cycle program);

  (* End-to-end: disperse actual content, broadcast, reconstruct in a
     vehicle behind a bursty (tunnel-prone) channel. *)
  let transport =
    Transport.create ~program
      [
        (0, 2, Bytes.of_string incident_report);
        (1, 3, Bytes.of_string route_guidance);
        (2, 8, Bytes.of_string map_tile);
      ]
  in
  let tunnel_channel ~seed =
    Fault.burst ~p_good_to_bad:0.05 ~p_bad_to_good:0.3 ~loss_good:0.01
      ~loss_bad:0.6 ~seed
  in
  (match Transport.retrieve transport ~file:0 ~start:11 ~fault:(tunnel_channel ~seed:3) () with
  | Some bytes ->
      Format.printf "Vehicle reconstructed the incident report through the tunnel:@.  %S@.@."
        (Bytes.to_string bytes)
  | None -> Format.printf "Vehicle failed to reconstruct the incident report!@.@.");

  (* Fleet measurement: deadline-miss ratio for the pinwheel/AIDA program
     versus a flat non-IDA program carrying the same files. *)
  let flat =
    Program.flat (List.map (fun f -> (f.File_spec.id, f.File_spec.blocks)) files)
  in
  Format.printf "Fleet of 2000 vehicles, bursty channel, per-file deadline B*T:@.";
  Format.printf "  %-10s %14s %14s@." "file" "AIDA miss-rate" "flat miss-rate";
  List.iter
    (fun f ->
      let deadline = File_spec.window f ~bandwidth in
      let run program =
        Experiment.run ~program ~file:f.File_spec.id ~needed:f.File_spec.blocks
          ~deadline ~fault:tunnel_channel ~trials:2000 ~seed:17 ()
      in
      let aida = run program and naive = run flat in
      Format.printf "  %-10s %13.1f%% %13.1f%%@." f.File_spec.name
        (100.0 *. Experiment.miss_ratio aida)
        (100.0 *. Experiment.miss_ratio naive))
    files;
  Format.printf
    "@.(The flat program is also slower error-free: its period is the sum of@.\
    \ all file sizes, while the pinwheel program spreads urgent files densely.)@."
