(* Deployment walk: physical requirements to bytes on the air.

   The other examples each exercise one layer; this one is the whole
   journey a deployment takes:

     1. physical requirements (bytes, seconds, losses to survive)
     2. Designer: block size + bandwidth + verified program
     3. Codec: the program as an artifact you can ship and diff
     4. Transport: real payloads dispersed and broadcast
     5. a client behind a nasty channel getting its bits back

   Run with: dune exec examples/deployment.exe *)

module Designer = Pindisk.Designer
module Codec = Pindisk.Codec
module Program = Pindisk.Program
module Transport = Pindisk_sim.Transport
module Fault = Pindisk_sim.Fault

let () =
  (* 1. What the operator knows. *)
  let requirements =
    [
      Designer.requirement ~name:"incidents" ~id:0 ~bytes:1800 ~latency_s:3
        ~tolerance:2 ();
      Designer.requirement ~name:"guidance" ~id:1 ~bytes:5000 ~latency_s:12
        ~tolerance:1 ();
      Designer.requirement ~name:"map-tile" ~id:2 ~bytes:24_000 ~latency_s:45 ();
    ]
  in
  let byte_rate = 4096 in
  Format.printf "Channel: %d bytes/sec. Requirements:@." byte_rate;
  List.iter
    (fun r ->
      Format.printf "  %-10s %6d bytes within %2d s, surviving %d losses@."
        r.Designer.name r.Designer.bytes r.Designer.latency_s
        r.Designer.tolerance)
    requirements;

  (* 2. The plan. *)
  let plan =
    match Designer.plan ~byte_rate requirements with
    | Ok p -> p
    | Error reason -> failwith reason
  in
  Format.printf "@.%a@." Designer.pp plan;

  (* 3. The program as an artifact. *)
  let path = Filename.temp_file "pindisk" ".bdp" in
  Codec.write plan.Designer.program path;
  Format.printf "program artifact written to %s (%d bytes)@." path
    (String.length (Codec.to_string plan.Designer.program));

  (* 4-5. Payloads on the air; a vehicle in a tunnel gets them anyway. *)
  let pad name target =
    let base = Printf.sprintf "[%s payload] " name in
    let b = Buffer.create target in
    while Buffer.length b < target do
      Buffer.add_string b base
    done;
    Bytes.of_string (Buffer.sub b 0 target)
  in
  let transport =
    Transport.create ~program:plan.Designer.program
      (List.map
         (fun (fp : Designer.file_plan) ->
           ( fp.Designer.spec.Pindisk.File_spec.id,
             fp.Designer.spec.Pindisk.File_spec.blocks,
             pad fp.Designer.spec.Pindisk.File_spec.name
               (List.find
                  (fun r -> r.Designer.id = fp.Designer.spec.Pindisk.File_spec.id)
                  requirements)
                 .Designer.bytes ))
         plan.Designer.files)
  in
  let tunnel ~seed =
    Fault.burst ~p_good_to_bad:0.08 ~p_bad_to_good:0.25 ~loss_good:0.02
      ~loss_bad:0.7 ~seed
  in
  List.iter
    (fun (r : Designer.requirement) ->
      match
        Transport.retrieve transport ~file:r.Designer.id ~start:5
          ~fault:(tunnel ~seed:(r.Designer.id + 1)) ()
      with
      | Some bytes ->
          Format.printf "  %-10s reconstructed: %d bytes, prefix %S@."
            r.Designer.name (Bytes.length bytes)
            (Bytes.sub_string bytes 0 (min 24 (Bytes.length bytes)))
      | None -> Format.printf "  %-10s FAILED to reconstruct@." r.Designer.name)
    requirements;
  Sys.remove path
