(* Generalized fault-tolerant real-time Bdisks (Section 4 of the paper).

   Each file carries a latency VECTOR: how long a client may wait as a
   function of how many faults actually hit its retrieval. A telemetry
   feed might need 2 blocks within 20 slots fault-free, tolerate 24 slots
   with one fault and 30 with two; a firmware image is big but patient.

   The pipeline: Equation 3 turns each vector into pinwheel conditions;
   the pinwheel algebra (rules R0-R5, TR1/TR2 and a single-condition
   search) compiles them into a nice conjunct; the scheduler lays out the
   program; and an exact adversary then confirms the promise degrades
   exactly as specified.

   Run with: dune exec examples/generalized.exe *)

module Bc = Pindisk_algebra.Bc
module Convert = Pindisk_algebra.Convert
module Generalized = Pindisk.Generalized
module Program = Pindisk.Program
module Adversary = Pindisk_sim.Adversary
module Q = Pindisk_util.Q

let () =
  let specs =
    [
      Generalized.spec (Bc.make ~file:0 ~m:2 ~d:[ 20; 24; 30 ]);
      Generalized.spec (Bc.make ~file:1 ~m:1 ~d:[ 6; 9 ]);
      Generalized.spec (Bc.make ~file:2 ~m:6 ~d:[ 60; 66 ]);
    ]
  in
  Format.printf "Latency-vector specifications:@.";
  List.iter
    (fun s ->
      let bc = s.Generalized.bc in
      Format.printf "  %a   (density lower bound %a)@." Bc.pp bc Q.pp
        (Bc.density_lower_bound bc);
      let label, nice = Convert.best bc in
      Format.printf "    compiled via %-6s -> density %a:" label Q.pp
        (Convert.density nice);
      List.iter (fun e -> Format.printf " pc(%d,%d)" e.Convert.a e.Convert.b) nice;
      Format.printf "@.")
    specs;
  Format.printf "@.Total compiled density: %a (lower bound %a)@." Q.pp
    (Generalized.compiled_density specs)
    Q.pp
    (Generalized.density_lower_bound specs);

  match Generalized.program specs with
  | None -> Format.printf "scheduler failed (try loosening the vectors)@."
  | Some program ->
      Format.printf "@.Broadcast program: period %d, data cycle %d@."
        (Program.period program) (Program.data_cycle program);
      Format.printf "@.The degradation contract, checked by an exact adversary:@.";
      Format.printf "  %-6s %-7s | %-10s %-10s %s@." "file" "faults" "promised"
        "worst-case" "";
      List.iter
        (fun s ->
          let bc = s.Generalized.bc in
          Array.iteri
            (fun j dj ->
              let worst =
                Adversary.worst_case_retrieval program ~file:bc.Bc.file
                  ~needed:bc.Bc.m ~errors:j
              in
              Format.printf "  %-6d %-7d | %-10d %-10d %s@." bc.Bc.file j dj
                worst
                (if worst <= dj then "ok" else "VIOLATED"))
            bc.Bc.d)
        specs;
      Format.printf
        "@.(Every worst case sits at or under its promised d^(j): the \
         algebra's@. rewrites are conservative, so the program often beats \
         the contract.)@."
