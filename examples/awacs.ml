(* AWACS: temporal consistency, operation modes, and admission control.

   The paper's motivating numbers: a data item tracking a 900 km/h
   aircraft must reach clients within 400 ms for 100 m positional
   accuracy; a 60 km/h tank tolerates 6,000 ms. Criticality depends on the
   mode of operation -- "location of nearby aircrafts" is critical in
   combat, unimportant while landing -- and AIDA scales each item's
   redundancy accordingly without re-dispersing anything.

   Run with: dune exec examples/awacs.exe *)

module Item = Pindisk_rtdb.Item
module Mode = Pindisk_rtdb.Mode
module Admission = Pindisk_rtdb.Admission
module Database = Pindisk_rtdb.Database
module Aida = Pindisk_ida.Aida
module Program = Pindisk.Program
module File_spec = Pindisk.File_spec

(* Slots are deciseconds here, so the aircraft's 0.4 s budget is avi = 4. *)
let decisec x = int_of_float (ceil (x *. 10.0))

let () =
  let aircraft_avi = Item.avi_of_velocity ~velocity_kmh:900.0 ~accuracy_m:100.0 in
  let tank_avi = Item.avi_of_velocity ~velocity_kmh:60.0 ~accuracy_m:100.0 in
  Format.printf "Temporal consistency from the paper's kinematics:@.";
  Format.printf "  aircraft at 900 km/h, 100 m accuracy: %.1f s@." aircraft_avi;
  Format.printf "  tank     at  60 km/h, 100 m accuracy: %.1f s@.@." tank_avi;

  let items =
    [
      Item.make ~id:0 ~name:"aircraft" ~blocks:2 ~avi:(decisec aircraft_avi)
        ~value:10 ();
      Item.make ~id:1 ~name:"tank" ~blocks:2 ~avi:(decisec tank_avi) ~value:6 ();
      Item.make ~id:2 ~name:"weather" ~blocks:4 ~avi:300 ~value:2 ();
      Item.make ~id:3 ~name:"terrain" ~blocks:10 ~avi:600 ~value:1 ();
    ]
  in
  let combat =
    Mode.make ~name:"combat" ~default:Aida.Standard
      [ ("aircraft", Aida.Critical 3); ("terrain", Aida.Non_real_time) ]
  in
  let landing =
    Mode.make ~name:"landing" ~default:Aida.Non_real_time
      [ ("terrain", Aida.Important); ("weather", Aida.Standard) ]
  in
  let db = Database.create ~items ~modes:[ combat; landing ] in

  Format.printf "Dispersal provisioned once, for the worst mode:@.";
  List.iter
    (fun item ->
      Format.printf "  %-8s: %d source blocks -> %d dispersed blocks on server@."
        item.Item.name item.Item.blocks
        (Database.provisioned_capacity db item))
    items;

  List.iter
    (fun mode ->
      Format.printf "@.Mode %S:@." mode.Mode.name;
      Format.printf "  redundancy: %s@."
        (String.concat ", "
           (List.map
              (fun i -> Printf.sprintf "%s+%d" i.Item.name (Mode.tolerance mode i))
              items));
      Format.printf "  Equation-2 bandwidth: %d blocks/decisecond@."
        (Database.required_bandwidth db ~mode);
      match Database.program db ~mode with
      | Some (b, p) ->
          Format.printf "  scheduled at %d blocks/decisecond, period %d slots@." b
            (Program.period p)
      | None -> Format.printf "  UNSCHEDULABLE@.")
    [ combat; landing ];

  (* Starve the downlink and let value-cognizant admission choose. *)
  Format.printf "@.Channel degraded to 3 blocks/decisecond in combat mode:@.";
  let verdict = Admission.admit ~bandwidth:3 ~mode:combat items in
  Format.printf "  admitted: %s@."
    (String.concat ", " (List.map (fun i -> i.Item.name) verdict.Admission.admitted));
  Format.printf "  rejected: %s@."
    (match verdict.Admission.rejected with
    | [] -> "(none)"
    | r -> String.concat ", " (List.map (fun i -> i.Item.name) r));
  match verdict.Admission.program with
  | Some p ->
      Format.printf "  degraded-mode program: period %d, data cycle %d@."
        (Program.period p) (Program.data_cycle p)
  | None -> ()
