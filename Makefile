.PHONY: all build test test-force test-metrics bench bench-tables bench-micro bench-codec bench-obs bench-sched bench-chaos bench-cohort bench-multichannel bench-gate chaos lint tsan examples audit doc clean

all: build

build:
	dune build @all

test:
	dune runtest

test-force:
	dune runtest --force --no-buffer

bench:
	dune exec bench/main.exe

bench-tables:
	dune exec bench/main.exe -- tables

bench-micro:
	dune exec bench/main.exe -- micro

# Quick codec-engine throughput run; writes BENCH_codec.json.
bench-codec:
	PINDISK_CODEC_QUICK=1 dune exec bench/main.exe -- e20

# Same codec run with the observability layer force-enabled; writes
# BENCH_codec_metrics.json so the overhead is the diff of two artifacts.
bench-obs:
	PINDISK_CODEC_QUICK=1 PINDISK_METRICS=1 \
	  PINDISK_CODEC_OUT=BENCH_codec_metrics.json \
	  dune exec bench/main.exe -- e20

# Quick scheduling-scale run (E21); writes BENCH_sched.json.
bench-sched:
	PINDISK_SCHED_QUICK=1 dune exec bench/main.exe -- e21

# Chaos recovery sweep (E22): crash-restart cost vs block-store fault
# rate; writes BENCH_chaos.json. Slot-domain and fully deterministic.
bench-chaos:
	dune exec bench/main.exe -- e22

# Quick cohort-scale run (E23): million-client weighted-class
# populations plus the cohort==drive spot-check; writes BENCH_cohort.json.
bench-cohort:
	PINDISK_COHORT_QUICK=1 dune exec bench/main.exe -- e23

# Multi-channel sharding sweep (E24): aggregate files served and cohort
# clients at K = 1, 2, 4, 8 channels; writes BENCH_multichannel.json.
bench-multichannel:
	PINDISK_MULTICHANNEL_QUICK=1 dune exec bench/main.exe -- e24

# Scripted chaos-scenario suite: crashes with restart-from-checkpoint,
# stuck readers, loss bursts under fixed seeds; fails on any recovery
# invariant violation. Writes chaos_summary.md (the CI artifact).
chaos:
	dune exec -- pindisk chaos --summary chaos_summary.md

# Benchmark-regression gate: compare fresh quick-mode runs against the
# committed baselines (bench/baselines/), failing on regression beyond
# the tolerance band. Writes bench_gate_summary.md.
bench-gate: bench-sched bench-codec bench-chaos bench-cohort bench-multichannel
	dune exec scripts/bench_gate.exe -- \
	  --kind sched --fresh BENCH_sched.json \
	  --baseline bench/baselines/BENCH_sched.baseline.json \
	  --summary bench_gate_summary.md
	dune exec scripts/bench_gate.exe -- \
	  --kind codec --fresh BENCH_codec.json \
	  --baseline bench/baselines/BENCH_codec.baseline.json \
	  --summary bench_gate_summary.md --append
	dune exec scripts/bench_gate.exe -- \
	  --kind chaos --fresh BENCH_chaos.json \
	  --baseline bench/baselines/BENCH_chaos.baseline.json \
	  --summary bench_gate_summary.md --append
	dune exec scripts/bench_gate.exe -- \
	  --kind cohort --fresh BENCH_cohort.json \
	  --baseline bench/baselines/BENCH_cohort.baseline.json \
	  --summary bench_gate_summary.md --append
	dune exec scripts/bench_gate.exe -- \
	  --kind multichannel --fresh BENCH_multichannel.json \
	  --baseline bench/baselines/BENCH_multichannel.baseline.json \
	  --summary bench_gate_summary.md --append

# Full test suite with metrics recording force-enabled (determinism
# regression: instrumentation must not change any observable output).
test-metrics:
	PINDISK_METRICS=1 dune runtest --force

# Static-analysis gate: parse every .ml under lib/ bin/ bench/ scripts/
# with compiler-libs and enforce the committed lint.config modulo the
# expiring lint.baseline. Writes lint_summary.md (the CI artifact);
# exits non-zero on unsuppressed findings or stale baseline entries.
lint:
	dune build bin/lint_main.exe
	dune exec bin/lint_main.exe -- --summary lint_summary.md

# ThreadSanitizer pass over the domain-crossing suites (pool, codec,
# sharded metrics). Needs a TSan-instrumented compiler (an
# ocaml-option-tsan switch, OCaml >= 5.2); detected via `ocamlopt
# -config` and skipped gracefully elsewhere so the target is safe to
# invoke on any machine.
tsan:
	@if ocamlopt -config 2>/dev/null | grep -q '^tsan:.*true'; then \
	  echo "tsan: instrumented compiler detected; running domain-crossing suites"; \
	  dune build test/test_util.exe test/test_gf256.exe test/test_ida.exe test/test_obs.exe && \
	  dune exec test/test_util.exe && \
	  dune exec test/test_gf256.exe && \
	  dune exec test/test_ida.exe && \
	  dune exec test/test_obs.exe; \
	else \
	  echo "tsan: compiler is not TSan-instrumented (needs an ocaml-option-tsan switch, OCaml >= 5.2); skipping"; \
	fi

audit:
	@for design in examples/designs/*.design; do \
	  echo "=== $$design"; \
	  dune exec -- pindisk audit $$design || exit 1; \
	done

examples:
	dune exec examples/quickstart.exe
	dune exec examples/ivhs.exe
	dune exec examples/awacs.exe
	dune exec examples/failure_injection.exe
	dune exec examples/generalized.exe
	dune exec examples/deployment.exe

clean:
	dune clean
