.PHONY: all build test bench bench-tables bench-micro bench-codec examples audit doc clean

all: build

build:
	dune build @all

test:
	dune runtest

test-force:
	dune runtest --force --no-buffer

bench:
	dune exec bench/main.exe

bench-tables:
	dune exec bench/main.exe -- tables

bench-micro:
	dune exec bench/main.exe -- micro

# Quick codec-engine throughput run; writes BENCH_codec.json.
bench-codec:
	PINDISK_CODEC_QUICK=1 dune exec bench/main.exe -- e20

audit:
	@for design in examples/designs/*.design; do \
	  echo "=== $$design"; \
	  dune exec -- pindisk audit $$design || exit 1; \
	done

examples:
	dune exec examples/quickstart.exe
	dune exec examples/ivhs.exe
	dune exec examples/awacs.exe
	dune exec examples/failure_injection.exe
	dune exec examples/generalized.exe
	dune exec examples/deployment.exe

clean:
	dune clean
