(* E10 -- Bechamel micro-benchmarks: the computational kernels. One
   Test.make per kernel; results as ns/run via OLS against run count. *)

open Bechamel
module Ida = Pindisk_ida.Ida
module P = Pindisk_pinwheel
module Convert = Pindisk_algebra.Convert
module Bc = Pindisk_algebra.Bc

let ida_tests =
  let file = Bytes.init 8192 (fun i -> Char.chr (i land 0xff)) in
  let ida = Ida.create ~m:8 in
  let pieces = Array.to_list (Ida.disperse ida ~n:12 file) in
  let subset = List.filteri (fun i _ -> i >= 4) pieces in
  [
    Test.make ~name:"ida/disperse 8KiB m=8 n=12"
      (Staged.stage (fun () -> ignore (Ida.disperse ida ~n:12 file)));
    Test.make ~name:"ida/reconstruct 8KiB m=8"
      (Staged.stage (fun () -> ignore (Ida.reconstruct ida ~length:8192 subset)));
  ]

let scheduler_tests =
  let sys = P.Gen.unit_system_with_density ~seed:5 ~n:12 ~max_b:64 ~target:0.65 in
  let small = P.Gen.unit_system_with_density ~seed:9 ~n:4 ~max_b:10 ~target:0.85 in
  let sched =
    match P.Scheduler.schedule sys with Some s -> s | None -> assert false
  in
  [
    Test.make ~name:"pinwheel/Sx 12 tasks"
      (Staged.stage (fun () -> ignore (P.Specialize.sx sys)));
    Test.make ~name:"pinwheel/exact 4 tasks"
      (Staged.stage (fun () -> ignore (P.Exact.decide small)));
    Test.make ~name:"pinwheel/verify 12 tasks"
      (Staged.stage (fun () -> ignore (P.Verify.check_system sched sys)));
  ]

let algebra_tests =
  let bcs =
    [
      Bc.make ~file:0 ~m:5 ~d:[ 100; 105; 110; 115; 120 ];
      Bc.make ~file:1 ~m:4 ~d:[ 8; 9 ];
      Bc.make ~file:2 ~m:2 ~d:[ 5; 6; 6 ];
    ]
  in
  [
    Test.make ~name:"algebra/compile 3 bcs"
      (Staged.stage (fun () -> ignore (Convert.compile bcs)));
  ]

let program_tests =
  let files =
    [
      Pindisk.File_spec.make ~id:0 ~blocks:2 ~latency:4 ~tolerance:2 ();
      Pindisk.File_spec.make ~id:1 ~blocks:4 ~latency:12 ~tolerance:1 ();
      Pindisk.File_spec.make ~id:2 ~blocks:6 ~latency:30 () ;
    ]
  in
  [
    Test.make ~name:"program/auto 3 files"
      (Staged.stage (fun () -> ignore (Pindisk.Program.auto files)));
  ]

let all_tests =
  Test.make_grouped ~name:"pindisk"
    (ida_tests @ scheduler_tests @ algebra_tests @ program_tests)

let run () =
  Format.printf "== E10 / micro-benchmarks (Bechamel, ns per run) ==@.";
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 1000) ()
  in
  let raw = Benchmark.all cfg instances all_tests in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  Hashtbl.iter
    (fun name ols_result ->
      match Analyze.OLS.estimates ols_result with
      | Some [ est ] -> Format.printf "  %-36s %12.0f ns/run@." name est
      | _ -> Format.printf "  %-36s (no estimate)@." name)
    results;
  Format.printf
    "  (reference: the paper's SETH IDA chip ran at ~1 MB/s; see E8 for \
     our@.   software IDA throughput.)@.@."
