(* E18 -- ablation: transactional reads over the broadcast.

   The paper's motivating clients run transactions touching several
   items under one deadline. A single receiver harvests all of them in
   one pass, so the exact joint worst case sits well below the naive
   "max of per-file worst cases taken at their own worst phases" only
   when phases disagree -- and always at or below their sum. *)

module File_spec = Pindisk.File_spec
module Program = Pindisk.Program
module Fault = Pindisk_sim.Fault
module Adversary = Pindisk_sim.Adversary
module Transaction = Pindisk_sim.Transaction

let files =
  [
    File_spec.make ~name:"alerts" ~id:0 ~blocks:2 ~latency:6 ~tolerance:2 ();
    File_spec.make ~name:"positions" ~id:1 ~blocks:4 ~latency:12 ~tolerance:1 ();
    File_spec.make ~name:"terrain" ~id:2 ~blocks:6 ~latency:30 ~tolerance:1 ();
  ]

let run () =
  Format.printf "== E18 / transactions: joint worst case vs per-file bounds ==@.";
  let bandwidth, program =
    match Program.auto files with Some r -> r | None -> assert false
  in
  Format.printf "  (program at %d blocks/sec)@." bandwidth;
  Format.printf "  %-34s %10s %10s %10s@." "transaction (tolerances)" "joint WC"
    "max of WC" "sum of WC";
  List.iter
    (fun (label, reads) ->
      let joint = Transaction.worst_case program ~reads in
      let per_file =
        List.map
          (fun r ->
            Adversary.worst_case_retrieval program ~file:r.Transaction.file
              ~needed:r.Transaction.needed ~errors:r.Transaction.tolerate)
          reads
      in
      Format.printf "  %-34s %10d %10d %10d@." label joint
        (List.fold_left max 0 per_file)
        (List.fold_left ( + ) 0 per_file))
    [
      ( "alerts+positions (r=0)",
        [
          { Transaction.file = 0; needed = 2; tolerate = 0 };
          { Transaction.file = 1; needed = 4; tolerate = 0 };
        ] );
      ( "alerts+positions (r=2,1)",
        [
          { Transaction.file = 0; needed = 2; tolerate = 2 };
          { Transaction.file = 1; needed = 4; tolerate = 1 };
        ] );
      ( "all three (r=2,1,1)",
        [
          { Transaction.file = 0; needed = 2; tolerate = 2 };
          { Transaction.file = 1; needed = 4; tolerate = 1 };
          { Transaction.file = 2; needed = 6; tolerate = 1 };
        ] );
    ];
  Format.printf
    "  (joint WC never exceeds the max of per-file worst cases -- one \
     pass@.   serves every read -- and both sit far below the sum a \
     sequential-read@.   analysis would charge.)@.@.";

  (* Stochastic check: firm-deadline transaction miss rates. *)
  let reads =
    [
      { Transaction.file = 0; needed = 2; tolerate = 2 };
      { Transaction.file = 1; needed = 4; tolerate = 1 };
    ]
  in
  let deadline = Transaction.worst_case program ~reads in
  Format.printf "  Deadline = joint worst case (%d slots); 2000 transactions:@."
    deadline;
  Format.printf "  %-6s %10s@." "loss" "miss rate";
  List.iter
    (fun p ->
      let misses = ref 0 in
      let rng = Random.State.make [| 41 |] in
      for k = 0 to 1999 do
        let start = Random.State.int rng (Program.data_cycle program) in
        let o =
          Transaction.retrieve ~program ~reads ~start
            ~fault:(Fault.bernoulli ~p ~seed:k) ()
        in
        match o.Transaction.elapsed with
        | Some e when e <= deadline -> ()
        | _ -> incr misses
      done;
      Format.printf "  %5.0f%% %9.1f%%@." (100.0 *. p)
        (100.0 *. float_of_int !misses /. 2000.0))
    [ 0.0; 0.1; 0.2; 0.35 ];
  Format.printf
    "  (misses appear only when the channel ruins more receptions than \
     the@.   transaction's provisioned tolerances.)@.@."
