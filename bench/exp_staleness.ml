(* E14 -- update dissemination and temporal consistency: how server
   update rates interact with the broadcast period (the paper's absolute
   temporal consistency motivation, and its citation of update
   dissemination work). *)

module Program = Pindisk.Program
module Staleness = Pindisk_rtdb.Staleness

let run () =
  Format.printf
    "== E14 / update dissemination: age, consistency and starvation ==@.";
  (* The Figure-6 toy AIDA program; file A = 5-of-10 blocks. *)
  let p =
    Program.of_layout
      [ (0, 0); (1, 0); (0, 1); (0, 2); (1, 1); (0, 3); (1, 2); (0, 4) ]
      ~capacities:[ (0, 10); (1, 6) ]
  in
  Format.printf "  %-14s %10s %9s %9s %12s %9s@." "update period" "mean age"
    "max age" "latency" "consistent" "starved";
  List.iter
    (fun update_period ->
      let s =
        Staleness.sweep ~program:p ~file:0 ~needed:5 ~update_period ~avi:16 ()
      in
      Format.printf "  %-14d %10.1f %9d %9.1f %11.0f%% %9d@." update_period
        s.Staleness.mean_age s.Staleness.max_age s.Staleness.mean_latency
        (100.0 *. s.Staleness.consistency_ratio)
        s.Staleness.starved)
    [ 8; 16; 24; 48; 96 ];
  Format.printf
    "  (avi = 16 slots. Faster updates give fresher data -- smaller age \
     -- until@.   the update period approaches the time a retrieval \
     needs: then version@.   changes abort collections (higher latency) \
     and, past the limit, starve@.   them. Versions switch at period \
     boundaries so IDA never mixes versions.)@.@.";

  (* A retrieval that spans periods: starvation threshold. *)
  let sparse =
    Program.of_layout [ (0, 0); (0, 1); (1, 0); (1, 1) ]
      ~capacities:[ (0, 8); (1, 2) ]
  in
  Format.printf "  Sparse file (2 of 8 blocks per 4-slot period, needs 5):@.";
  Format.printf "  %-14s %9s %12s %9s@." "update period" "latency" "consistent"
    "starved";
  List.iter
    (fun update_period ->
      let s =
        Staleness.sweep ~program:sparse ~file:0 ~needed:5 ~update_period
          ~avi:24 ()
      in
      Format.printf "  %-14d %9.1f %11.0f%% %9d@." update_period
        s.Staleness.mean_latency
        (100.0 *. s.Staleness.consistency_ratio)
        s.Staleness.starved)
    [ 4; 8; 12; 16; 32 ];
  Format.printf
    "  (a file needing multiple periods to collect starves outright once \
     updates@.   arrive every period -- the broadcast analogue of \
     transaction restarts under@.   high update rates in real-time \
     databases.)@.@.";

  (* Snapshot-consistent transactions: both toy files in one epoch. *)
  let module Snapshot = Pindisk_rtdb.Snapshot in
  let reads =
    [ { Snapshot.file = 0; needed = 5 }; { Snapshot.file = 1; needed = 3 } ]
  in
  Format.printf
    "  Snapshot-consistent transaction over both files (same epoch):@.";
  Format.printf "  %-14s %9s %9s %10s %9s@." "update period" "mean lat"
    "max lat" "restarts" "starved";
  List.iter
    (fun update_period ->
      let s = Snapshot.sweep ~program:p ~reads ~update_period () in
      Format.printf "  %-14d %9.1f %9d %10.2f %9d@." update_period
        s.Snapshot.mean_elapsed s.Snapshot.max_elapsed s.Snapshot.mean_restarts
        s.Snapshot.starved)
    [ 8; 16; 32; 64 ];
  Format.printf
    "  (serializability costs latency exactly when updates race the \
     transaction:@.   epoch flips force re-reads of items stranded in the \
     older snapshot.)@.@."
