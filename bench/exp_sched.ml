(* E21 -- scheduling scale: the online dispatcher against the eager
   materialized path, n = 16 ... 4096 tasks.

   Two deterministic dyadic task families per size n (a broadcast-disk
   shape: a quarter of the files hot at window n, a quarter at 2n, half
   cold):

     base: windows {n, 2n, 4n}      -- hyperperiod 4n
     deep: windows {n, 2n, 1024n}   -- hyperperiod 1024n, same task count

   Both have density <= 1/2, so Sx always schedules them. "deep" scales
   the hyperperiod by 256x at a fixed task count, which is exactly what
   separates the two paths: the eager schedule's memory follows the
   hyperperiod, the dispatcher's memory follows the task count only.

   Per (family, n) the harness measures plan construction, eager
   construction (Scheduler.schedule: plan + materialize + verify),
   per-slot online dispatch, per-slot task_at lookup on the materialized
   array, and reachable words of the plan, dispatcher and schedule.
   Results land in BENCH_sched.json; scripts/bench_gate.ml compares the
   scale-free headline ratios against bench/baselines.

   Quick mode (PINDISK_SCHED_QUICK=1, used by CI and `make bench-sched`)
   trims the time budget and the dispatch sample. *)

module Task = Pindisk_pinwheel.Task
module Plan = Pindisk_pinwheel.Plan
module Online = Pindisk_pinwheel.Online
module Schedule = Pindisk_pinwheel.Schedule
module Scheduler = Pindisk_pinwheel.Scheduler
module Obs = Pindisk_obs

let obs_dispatch = Obs.Registry.histogram "sched.dispatch_ns"

let family ~deep n =
  let window i =
    if i < n / 4 then n
    else if i < n / 2 then 2 * n
    else if deep then 1024 * n
    else 4 * n
  in
  List.init n (fun i -> Task.unit ~id:i ~b:(window i))

(* Fixed-work harness: repeat [f] until the budget is spent, return mean
   ns per call. *)
let time_budget = ref 0.2

let mean_ns f =
  ignore (Sys.opaque_identity (f ()));
  let t0 = Unix.gettimeofday () in
  let reps = ref 0 in
  let elapsed = ref 0.0 in
  while !reps < 2 || !elapsed < !time_budget do
    ignore (Sys.opaque_identity (f ()));
    incr reps;
    elapsed := Unix.gettimeofday () -. t0
  done;
  !elapsed *. 1e9 /. float_of_int !reps

type row = {
  family : string;
  n : int;
  period : int;
  plan_build_ns : float;
  eager_build_ns : float;
  dispatch_ns_per_slot : float;
  task_at_ns_per_slot : float;
  eager_build_ns_per_slot : float;
  speedup_eager_over_online : float;
  plan_words : int;
  dispatcher_words : int;
  schedule_words : int;
}

let measure ~quick ~deep n =
  let sys = family ~deep n in
  let plan =
    match Scheduler.plan sys with
    | Some p -> p
    | None -> failwith "exp_sched: family must be schedulable"
  in
  let sched =
    match Scheduler.schedule sys with
    | Some s -> s
    | None -> failwith "exp_sched: family must be schedulable"
  in
  let period = Plan.period plan in
  assert (period = Schedule.period sched);
  let plan_build_ns = mean_ns (fun () -> Scheduler.plan sys) in
  let eager_build_ns = mean_ns (fun () -> Scheduler.schedule sys) in
  (* Per-slot dispatch: one long-lived dispatcher, batches of [chunk]
     slots (the dispatcher is infinite; no reset between batches). *)
  let chunk = if quick then 100_000 else 500_000 in
  let disp = Plan.create plan in
  let sink = ref 0 in
  let dispatch_ns_per_slot =
    mean_ns (fun () ->
        for _ = 1 to chunk do
          sink := !sink lxor Plan.next disp
        done)
    /. float_of_int chunk
  in
  if Obs.Control.enabled () then
    Obs.Histogram.observe obs_dispatch (int_of_float dispatch_ns_per_slot);
  let task_at_ns_per_slot =
    let t = ref 0 in
    mean_ns (fun () ->
        for _ = 1 to chunk do
          sink := !sink lxor Schedule.task_at sched !t;
          incr t
        done)
    /. float_of_int chunk
  in
  ignore (Sys.opaque_identity !sink);
  let eager_build_ns_per_slot = eager_build_ns /. float_of_int period in
  {
    family = (if deep then "deep" else "base");
    n;
    period;
    plan_build_ns;
    eager_build_ns;
    dispatch_ns_per_slot;
    task_at_ns_per_slot;
    eager_build_ns_per_slot;
    speedup_eager_over_online = eager_build_ns_per_slot /. dispatch_ns_per_slot;
    plan_words = Obj.reachable_words (Obj.repr plan);
    dispatcher_words = Obj.reachable_words (Obj.repr disp);
    schedule_words = Obj.reachable_words (Obj.repr sched);
  }

let find rows ~family ~n =
  List.find_opt (fun r -> r.family = family && r.n = n) rows

let write_json ~path ~quick rows =
  let oc = open_out path in
  let out fmt = Printf.fprintf oc fmt in
  out "{\n";
  out "  \"bench\": \"sched\",\n";
  out "  \"mode\": \"%s\",\n" (if quick then "quick" else "full");
  out "  \"metrics\": %b,\n" (Pindisk_obs.Control.enabled ());
  (match (find rows ~family:"base" ~n:1024, find rows ~family:"base" ~n:4096) with
  | Some r1k, Some r4k ->
      out "  \"dispatch_speedup_n1024\": %.2f,\n" r1k.speedup_eager_over_online;
      out "  \"dispatch_speedup_n4096\": %.2f,\n" r4k.speedup_eager_over_online
  | _ -> ());
  (match (find rows ~family:"base" ~n:4096, find rows ~family:"deep" ~n:4096) with
  | Some b, Some d ->
      out "  \"period_ratio_deep_over_base_n4096\": %.2f,\n"
        (float_of_int d.period /. float_of_int b.period);
      out "  \"online_memory_ratio_deep_over_base_n4096\": %.3f,\n"
        (float_of_int d.dispatcher_words /. float_of_int b.dispatcher_words);
      out "  \"schedule_memory_ratio_deep_over_base_n4096\": %.2f,\n"
        (float_of_int d.schedule_words /. float_of_int b.schedule_words)
  | _ -> ());
  out "  \"results\": [\n";
  List.iteri
    (fun i r ->
      out
        "    {\"family\": \"%s\", \"n\": %d, \"period\": %d, \
         \"plan_build_ns\": %.0f, \"eager_build_ns\": %.0f, \
         \"dispatch_ns_per_slot\": %.1f, \"task_at_ns_per_slot\": %.1f, \
         \"eager_build_ns_per_slot\": %.1f, \
         \"speedup_eager_over_online\": %.2f, \"plan_words\": %d, \
         \"dispatcher_words\": %d, \"schedule_words\": %d}%s\n"
        r.family r.n r.period r.plan_build_ns r.eager_build_ns
        r.dispatch_ns_per_slot r.task_at_ns_per_slot r.eager_build_ns_per_slot
        r.speedup_eager_over_online r.plan_words r.dispatcher_words
        r.schedule_words
        (if i = List.length rows - 1 then "" else ","))
    rows;
  out "  ]\n}\n";
  close_out oc

let run () =
  let quick = Sys.getenv_opt "PINDISK_SCHED_QUICK" <> None in
  if quick then time_budget := 0.1;
  Format.printf "== E21 / scheduling scale: online dispatcher vs eager ==@.";
  let sizes = [ 16; 64; 256; 1024; 4096 ] in
  let rows =
    List.concat_map
      (fun n ->
        [ measure ~quick ~deep:false n; measure ~quick ~deep:true n ])
      sizes
  in
  Format.printf "  %-5s %-5s %-9s %-11s %-11s %-10s %-8s %-9s %-9s@." "fam"
    "n" "period" "plan ms" "eager ms" "disp ns" "speedup" "disp kw" "sched kw";
  List.iter
    (fun r ->
      Format.printf
        "  %-5s %-5d %-9d %-11.2f %-11.2f %-10.1f %-8.1f %-9d %-9d@." r.family
        r.n r.period (r.plan_build_ns /. 1e6) (r.eager_build_ns /. 1e6)
        r.dispatch_ns_per_slot r.speedup_eager_over_online
        (r.dispatcher_words / 1000) (r.schedule_words / 1000))
    rows;
  (match (find rows ~family:"base" ~n:4096, find rows ~family:"deep" ~n:4096) with
  | Some b, Some d ->
      Format.printf
        "  headline (n=4096): dispatch %.1fx faster per slot than eager \
         build; 256x hyperperiod costs the dispatcher %.2fx memory (the \
         schedule %.0fx)@."
        b.speedup_eager_over_online
        (float_of_int d.dispatcher_words /. float_of_int b.dispatcher_words)
        (float_of_int d.schedule_words /. float_of_int b.schedule_words)
  | _ -> ());
  let path =
    Option.value (Sys.getenv_opt "PINDISK_SCHED_OUT") ~default:"BENCH_sched.json"
  in
  write_json ~path ~quick rows;
  Format.printf "  wrote %s@.@." path
