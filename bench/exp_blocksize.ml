(* E8 -- the block-size tradeoff (Section 5, the paper's open issue).

   A file of fixed byte size dispersed at block size b has m = size/b
   source blocks: smaller blocks mean finer dispersal (better bandwidth
   granularity, more fault coverage per redundant block) but O(m^2)
   dispersal/reconstruction cost. The paper's SETH VLSI chip did ~1 MB/s;
   this table measures our software IDA across block sizes. *)

module Ida = Pindisk_ida.Ida

let time_it f =
  let t0 = Sys.time () in
  let reps = ref 0 in
  while Sys.time () -. t0 < 0.2 do
    f ();
    incr reps
  done;
  (Sys.time () -. t0) /. float_of_int !reps

let run () =
  Format.printf "== E8 / block-size tradeoff (64 KiB file, r = 2 redundancy) ==@.";
  Format.printf "  %-10s %6s %10s %14s %16s@." "block" "m" "overhead"
    "disperse MB/s" "reconstruct MB/s";
  let size = 64 * 1024 in
  let file = Bytes.init size (fun i -> Char.chr (i land 0xff)) in
  List.iter
    (fun block ->
      let m = size / block in
      if m >= 1 && m <= 253 then begin
        let n = m + 2 in
        let ida = Ida.create ~m in
        let t_disp = time_it (fun () -> ignore (Ida.disperse ida ~n file)) in
        let pieces = Array.to_list (Ida.disperse ida ~n file) in
        (* Reconstruct from a subset that excludes two pieces, forcing a
           real inverse. *)
        let subset = List.filteri (fun i _ -> i >= 2) pieces in
        let t_rec =
          time_it (fun () -> ignore (Ida.reconstruct ida ~length:size subset))
        in
        let mbps t = float_of_int size /. t /. 1.0e6 in
        Format.printf "  %-10d %6d %9.3fx %14.1f %16.1f@." block m
          (float_of_int n /. float_of_int m)
          (mbps t_disp) (mbps t_rec)
      end)
    [ 256; 512; 1024; 2048; 4096; 8192; 16384 ];
  Format.printf
    "  (larger blocks: quadratically cheaper coding but coarser bandwidth@.\
    \   allocation and weaker per-block fault coverage; the paper's SETH \
     chip@.   reference point is ~1 MB/s.)@.@.";

  (* Section 5's optimization problems, automated. *)
  let module Bs = Pindisk.Block_size in
  let files =
    [
      Bs.file ~id:0 ~bytes:2048 ~latency:2 ~tolerance:2 ();
      Bs.file ~id:1 ~bytes:8192 ~latency:10 ~tolerance:1 ();
      Bs.file ~id:2 ~bytes:32768 ~latency:60 ~tolerance:1 ();
    ]
  in
  Format.printf "  Largest feasible system-wide block size (paper Sec. 5):@.";
  Format.printf "  %-12s %10s %22s@." "byte rate" "largest b" "per-file k (b_i = k*256)";
  List.iter
    (fun byte_rate ->
      let uniform =
        match Bs.largest_uniform ~byte_rate files with
        | Some (b, _) -> string_of_int b
        | None -> "-"
      in
      let multipliers =
        match Bs.per_file_multipliers ~byte_rate ~base:256 files with
        | Some (ks, _) ->
            String.concat " "
              (List.map (fun (id, k) -> Printf.sprintf "F%d:%d" id k) ks)
        | None -> "-"
      in
      Format.printf "  %-12d %10s %22s@." byte_rate uniform multipliers)
    [ 2048; 4096; 8192; 16384 ];
  Format.printf
    "  (the greedy multiplier search coarsens the biggest files first, \
     trading@.   their coding cost against the bandwidth slack the \
     scheduler can absorb.)@.@."
