(* E16 -- ablation: what the exact-period decomposition loses.

   The constructive schedulers turn a multi-unit task (a, b) into a unit
   tasks of window b placed at exact periods -- sufficient, never
   necessary. The multi-unit exact solver measures the gap on an
   exhaustive family of small instances. *)

module P = Pindisk_pinwheel
module Task = P.Task
module Q = Pindisk_util.Q

let run () =
  Format.printf
    "== E16 / ablation: exact-period decomposition vs multi-unit exact \
     search ==@.";
  Format.printf "  %-26s %9s %9s %9s %8s@." "family (exhaustive)" "instances"
    "feasible" "heur-ok" "recall";
  List.iter
    (fun (label, instances) ->
      let feasible = ref 0 and heur = ref 0 and total = ref 0 in
      List.iter
        (fun sys ->
          incr total;
          match P.Exact_multi.decide sys with
          | P.Exact_multi.Feasible _ ->
              incr feasible;
              if P.Scheduler.schedulable sys then incr heur
          | P.Exact_multi.Infeasible ->
              (* Soundness: the heuristics must not "schedule" it. *)
              assert (not (P.Scheduler.schedulable sys))
          | P.Exact_multi.Too_large -> decr total)
        instances;
      Format.printf "  %-26s %9d %9d %9d %7.0f%%@." label !total !feasible !heur
        (if !feasible = 0 then 100.0
         else 100.0 *. float_of_int !heur /. float_of_int !feasible))
    [
      ( "2 tasks, b <= 6",
        List.concat_map
          (fun b1 ->
            List.concat_map
              (fun a1 ->
                List.concat_map
                  (fun b2 ->
                    List.filter_map
                      (fun a2 ->
                        if
                          Q.( <= )
                            (Q.add (Q.make a1 b1) (Q.make a2 b2))
                            Q.one
                        then
                          Some
                            [ Task.make ~id:0 ~a:a1 ~b:b1; Task.make ~id:1 ~a:a2 ~b:b2 ]
                        else None)
                      (List.init b2 (fun i -> i + 1)))
                  (List.init 4 (fun i -> i + 3)))
              (List.init b1 (fun i -> i + 1)))
          (List.init 4 (fun i -> i + 3)) );
      ( "3 tasks, b <= 5, a <= 2",
        List.concat_map
          (fun b1 ->
            List.concat_map
              (fun b2 ->
                List.concat_map
                  (fun b3 ->
                    List.concat_map
                      (fun a1 ->
                        List.concat_map
                          (fun a2 ->
                            List.filter_map
                              (fun a3 ->
                                let sys =
                                  [
                                    Task.make ~id:0 ~a:(min a1 b1) ~b:b1;
                                    Task.make ~id:1 ~a:(min a2 b2) ~b:b2;
                                    Task.make ~id:2 ~a:(min a3 b3) ~b:b3;
                                  ]
                                in
                                if Q.( <= ) (Task.system_density sys) Q.one
                                then Some sys
                                else None)
                              [ 1; 2 ])
                          [ 1; 2 ])
                      [ 1; 2 ])
                  [ 3; 4; 5 ])
              [ 3; 4; 5 ])
          [ 3; 4; 5 ] );
    ];
  Format.printf
    "  (recall: share of exactly-feasible multi-unit systems the \
     decomposition-@.   based heuristic stack places. The assert inside \
     guards soundness: nothing@.   infeasible is ever \"scheduled\". \
     Recall below 100%% is the price of exact-@.   period placement; the \
     paper's bandwidth bounds absorb it inside the 10/7@.   factor.)@.@."
