(* E9 -- fault-model ablation: deadline-miss ratios under iid (Bernoulli)
   and bursty (Gilbert-Elliott) channels, AIDA pinwheel program vs flat
   program, across loss rates. *)

module File_spec = Pindisk.File_spec
module Program = Pindisk.Program
module Fault = Pindisk_sim.Fault
module Experiment = Pindisk_sim.Experiment

let files =
  [
    File_spec.make ~name:"hot" ~id:0 ~blocks:2 ~latency:4 ~tolerance:2 ();
    File_spec.make ~name:"warm" ~id:1 ~blocks:4 ~latency:12 ~tolerance:1 ();
    File_spec.make ~name:"cold" ~id:2 ~blocks:6 ~latency:30 ~tolerance:1 ();
  ]

let run () =
  Format.printf
    "== E9 / fault-model ablation: deadline-miss ratio (2000 clients per \
     cell) ==@.";
  let bandwidth, pinwheel =
    match Program.auto files with Some r -> r | None -> assert false
  in
  let flat =
    Program.flat (List.map (fun f -> (f.File_spec.id, f.File_spec.blocks)) files)
  in
  let bernoulli p ~seed = Fault.bernoulli ~p ~seed in
  let burst p ~seed =
    (* Bursty channel with the same stationary loss rate p. *)
    Fault.burst ~p_good_to_bad:0.05 ~p_bad_to_good:0.2 ~loss_good:0.0
      ~loss_bad:(p /. 0.2) ~seed
  in
  Format.printf "  (programs at %d blocks/sec; deadline = B*T per file)@." bandwidth;
  Format.printf
    "  (pinwheel/AIDA uses %s of the channel and leaves the rest for other \
     traffic;@.   the flat baseline burns 100%% of it on these three \
     files)@."
    (Pindisk_util.Q.to_string
       (Pindisk_pinwheel.Schedule.utilization (Program.schedule pinwheel)));
  Format.printf "  %-6s %-6s | %-17s | %-17s@." "" "" "iid channel" "bursty channel";
  Format.printf "  %-6s %-6s | %8s %8s | %8s %8s@." "file" "loss" "AIDA" "flat"
    "AIDA" "flat";
  List.iter
    (fun f ->
      List.iter
        (fun p ->
          let deadline = File_spec.window f ~bandwidth in
          let miss fault program =
            Experiment.run ~program ~file:f.File_spec.id ~needed:f.File_spec.blocks
              ~deadline ~fault ~trials:2000 ~seed:77 ()
            |> Experiment.miss_ratio
          in
          Format.printf "  %-6s %5.0f%% | %7.1f%% %7.1f%% | %7.1f%% %7.1f%%@."
            f.File_spec.name (100.0 *. p)
            (100.0 *. miss (bernoulli p) pinwheel)
            (100.0 *. miss (bernoulli p) flat)
            (100.0 *. miss (burst p) pinwheel)
            (100.0 *. miss (burst p) flat))
        [ 0.02; 0.1; 0.2 ])
    files;
  Format.printf
    "  (AIDA's provisioned redundancy absorbs iid losses almost \
     completely; bursts@.   are harder -- consecutive blocks die together \
     -- yet the pinwheel program@.   still dominates the flat baseline on \
     the tight-deadline files.)@.@."
