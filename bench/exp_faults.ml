(* E9 -- fault-model ablation: deadline-miss ratios under iid (Bernoulli)
   and bursty (Gilbert-Elliott) channels, AIDA pinwheel program vs flat
   program, across loss rates. *)

module File_spec = Pindisk.File_spec
module Program = Pindisk.Program
module Fault = Pindisk_sim.Fault
module Experiment = Pindisk_sim.Experiment

let files =
  [
    File_spec.make ~name:"hot" ~id:0 ~blocks:2 ~latency:4 ~tolerance:2 ();
    File_spec.make ~name:"warm" ~id:1 ~blocks:4 ~latency:12 ~tolerance:1 ();
    File_spec.make ~name:"cold" ~id:2 ~blocks:6 ~latency:30 ~tolerance:1 ();
  ]

let run () =
  Format.printf
    "== E9 / fault-model ablation: deadline-miss ratio (2000 clients per \
     cell) ==@.";
  let bandwidth, pinwheel =
    match Program.auto files with Some r -> r | None -> assert false
  in
  let flat =
    Program.flat (List.map (fun f -> (f.File_spec.id, f.File_spec.blocks)) files)
  in
  let bernoulli p ~seed = Fault.bernoulli ~p ~seed in
  let burst p ~seed =
    (* Bursty channel with the same stationary loss rate p. *)
    Fault.burst ~p_good_to_bad:0.05 ~p_bad_to_good:0.2 ~loss_good:0.0
      ~loss_bad:(p /. 0.2) ~seed
  in
  Format.printf "  (programs at %d blocks/sec; deadline = B*T per file)@." bandwidth;
  Format.printf
    "  (pinwheel/AIDA uses %s of the channel and leaves the rest for other \
     traffic;@.   the flat baseline burns 100%% of it on these three \
     files)@."
    (Pindisk_util.Q.to_string
       (Pindisk_pinwheel.Schedule.utilization (Program.schedule pinwheel)));
  Format.printf "  %-6s %-6s | %-17s | %-17s@." "" "" "iid channel" "bursty channel";
  Format.printf "  %-6s %-6s | %8s %8s | %8s %8s@." "file" "loss" "AIDA" "flat"
    "AIDA" "flat";
  List.iter
    (fun f ->
      List.iter
        (fun p ->
          let deadline = File_spec.window f ~bandwidth in
          let miss fault program =
            Experiment.run ~program ~file:f.File_spec.id ~needed:f.File_spec.blocks
              ~deadline ~fault ~trials:2000 ~seed:77 ()
            |> Experiment.miss_ratio
          in
          Format.printf "  %-6s %5.0f%% | %7.1f%% %7.1f%% | %7.1f%% %7.1f%%@."
            f.File_spec.name (100.0 *. p)
            (100.0 *. miss (bernoulli p) pinwheel)
            (100.0 *. miss (bernoulli p) flat)
            (100.0 *. miss (burst p) pinwheel)
            (100.0 *. miss (burst p) flat))
        [ 0.02; 0.1; 0.2 ])
    files;
  Format.printf
    "  (AIDA's provisioned redundancy absorbs iid losses almost \
     completely; bursts@.   are harder -- consecutive blocks die together \
     -- yet the pinwheel program@.   still dominates the flat baseline on \
     the tight-deadline files.)@.@."

(* ------------------------------------------------------------------ *)
(* E22 -- chaos recovery: crash-restart cost and post-crash retrieval  *)
(* latency as the server-side read-fault rate climbs. Every metric is  *)
(* in the slot domain (deterministic under the fixed seeds), so the    *)
(* emitted BENCH_chaos.json gates identically on any runner hardware.  *)
(* ------------------------------------------------------------------ *)

module Scenario = Pindisk_store.Scenario

type chaos_row = {
  fail_p : float;
  recovery : int; (* wall slots from crash until caught up *)
  latency0 : int; (* retrieval latency for file 0 tuned in pre-crash *)
  latency1 : int;
  faulted : int;
  violations : int;
}

let chaos_spec ~fail_p =
  {
    Scenario.name = Printf.sprintf "bench-crash-f%03.0f" (fail_p *. 1000.0);
    seed = 131;
    horizon = 512;
    checkpoint_every = 16;
    lookahead = 3;
    depth = 8;
    fail_p;
    slow_p = 0.0;
    loss_p = 0.0;
    events = [ Scenario.Crash { at = 100; restart_after = 8 } ];
    retrievals =
      [
        { Scenario.file = 0; tune_in = 98 };
        { Scenario.file = 1; tune_in = 98 };
      ];
    expect_escalation = false;
  }

let chaos_row ~fail_p =
  let r = Scenario.run (chaos_spec ~fail_p) in
  let latency file =
    match
      List.find_opt (fun (rt, _) -> rt.Scenario.file = file) r.Scenario.retrieved
    with
    | Some ({ Scenario.tune_in; _ }, Ok done_at) -> done_at - tune_in
    | _ -> -1 (* surfaces as an obvious violation in the artifact *)
  in
  {
    fail_p;
    recovery =
      (match r.Scenario.recovery_slots with [ s ] -> s | _ -> -1);
    latency0 = latency 0;
    latency1 = latency 1;
    faulted = r.Scenario.faulted;
    violations = List.length r.Scenario.violations;
  }

let write_chaos_json ~path rows =
  let oc = open_out path in
  let out fmt = Printf.fprintf oc fmt in
  let find p = List.find_opt (fun r -> r.fail_p = p) rows in
  out "{\n";
  out "  \"bench\": \"chaos\",\n";
  out "  \"mode\": \"full\",\n";
  out "  \"violations_total\": %d,\n"
    (List.fold_left (fun acc r -> acc + r.violations) 0 rows);
  (match find 0.0 with
  | Some r ->
      out "  \"recovery_slots_f0\": %d,\n" r.recovery;
      out "  \"retrieval_latency_f0\": %d,\n" r.latency0
  | None -> ());
  (match (find 0.0, find 0.2) with
  | Some r0, Some r20 ->
      out "  \"recovery_slots_f20\": %d,\n" r20.recovery;
      out "  \"retrieval_latency_f20\": %d,\n" r20.latency0;
      out "  \"retrieval_latency_ratio_f20_over_f0\": %.3f,\n"
        (float_of_int r20.latency0 /. float_of_int (max 1 r0.latency0))
  | _ -> ());
  out "  \"results\": [\n";
  List.iteri
    (fun i r ->
      out
        "    {\"fail_p\": %.2f, \"recovery_slots\": %d, \
         \"retrieval_latency_file0\": %d, \"retrieval_latency_file1\": %d, \
         \"faulted_slots\": %d, \"violations\": %d}%s\n"
        r.fail_p r.recovery r.latency0 r.latency1 r.faulted r.violations
        (if i = List.length rows - 1 then "" else ","))
    rows;
  out "  ]\n}\n";
  close_out oc

let run_chaos () =
  Format.printf
    "== E22 / chaos recovery: crash at slot 100, restart after 8, \
     checkpoint every 16 ==@.";
  let rates = [ 0.0; 0.02; 0.05; 0.1; 0.2 ] in
  let rows = List.map (fun fail_p -> chaos_row ~fail_p) rates in
  Format.printf "  %-8s %-10s %-12s %-12s %-9s %s@." "fail_p" "recovery"
    "latency(A)" "latency(B)" "faulted" "violations";
  List.iter
    (fun r ->
      Format.printf "  %6.0f%% %8d %12d %12d %9d %10d@." (100.0 *. r.fail_p)
        r.recovery r.latency0 r.latency1 r.faulted r.violations)
    rows;
  let path =
    Option.value (Sys.getenv_opt "PINDISK_CHAOS_OUT") ~default:"BENCH_chaos.json"
  in
  write_chaos_json ~path rows;
  Format.printf
    "  (recovery cost is a property of the checkpoint cadence, not the \
     fault rate;@.   read faults instead stretch the client-side retrieval \
     tail. Wrote %s.)@.@."
    path
