(* E24 -- multi-channel sharding: aggregate throughput at K channels.

   Pinwheel scheduling gives every admitted file its fixed rate
   regardless of how many channels exist; what K parallel channels buy
   is *capacity* — more files served at the same per-channel bandwidth.
   This harness fixes a 32-file population whose total density (~5.0)
   swamps one channel, shards it at K = 1, 2, 4, 8 with the
   density-balanced LPT optimizer, and measures:

     - aggregate files served per K (slot-domain deterministic: the
       optimizer sheds what no channel can carry). The acceptance floor
       is K = 4 serving >= 3x the K = 1 files — the capacity-scaling
       claim the multichannel CI gate holds.
     - cohort clients completed per K: a uniform closed-form population
       over every file (shed files' clients all miss), folded per
       channel analytically under Bernoulli loss. The completed-weight
       ratio K = 4 over K = 1 is reported alongside the files ratio.
     - multi-tuner cohort throughput (clients per wall-second at K = 4),
       reported for context, never gated: raw clients/sec is
       hardware-dependent.
     - certification: every sharded design must pass Shardcheck
       (per-channel witnesses, cover, disjointness), and the K = 1
       design must be byte-identical to the single-channel
       Program.pinwheel pipeline on a schedulable subset.

   Results land in BENCH_multichannel.json; scripts/bench_gate.ml gates
   the floors (`--kind multichannel`). Quick mode
   (PINDISK_MULTICHANNEL_QUICK=1, used by CI and
   `make bench-multichannel`) shrinks the population and time budget. *)

module File_spec = Pindisk.File_spec
module Program = Pindisk.Program
module Shard = Pindisk.Shard
module Multi = Pindisk_sim.Multi
module Cohort = Pindisk_sim.Cohort
module Engine = Pindisk_sim.Engine
module Shardcheck = Pindisk_check.Shardcheck
module Q = Pindisk_util.Q

let time_budget = ref 0.2

let mean_ns f =
  ignore (Sys.opaque_identity (f ()));
  let t0 = Unix.gettimeofday () in
  let reps = ref 0 in
  let elapsed = ref 0.0 in
  while !reps < 2 || !elapsed < !time_budget do
    ignore (Sys.opaque_identity (f ()));
    incr reps;
    elapsed := Unix.gettimeofday () -. t0
  done;
  !elapsed *. 1e9 /. float_of_int !reps

(* 8 hot files at density 1/4 and 24 cold at 1/8 (window 16 at
   bandwidth 1): total density 5 — one channel holds at most density 1,
   so K = 1 serves a sliver and K = 8 serves everything. *)
let specs () =
  List.init 32 (fun i ->
      let hot = i < 8 in
      File_spec.make
        ~name:(Printf.sprintf "%s%d" (if hot then "hot" else "cold") i)
        ~id:i
        ~blocks:(if hot then 4 else 2)
        ~latency:16 ())

let bandwidth = 1

(* Uniform closed-form population: every file (served or shed) at 8
   phases; a shed file's clients retire as missed, so completions track
   served capacity, not just admitted traffic. *)
let population ~clients files =
  let phases = 8 in
  let per_class = max 1 (clients / (List.length files * phases)) in
  List.concat_map
    (fun (f : File_spec.t) ->
      List.init phases (fun i ->
          {
            Multi.issued = 2 * i;
            file = f.File_spec.id;
            needed = f.File_spec.blocks;
            deadline = 4 * File_spec.window f ~bandwidth;
            weight = per_class;
          }))
    files

let run () =
  let quick = Sys.getenv_opt "PINDISK_MULTICHANNEL_QUICK" <> None in
  if quick then time_budget := 0.1;
  Format.printf
    "== E24 / multi-channel sharding: aggregate throughput at K channels ==@.";
  let files = specs () in
  let clients = if quick then 1_000_000 else 10_000_000 in
  let members = population ~clients files in
  let sweep =
    List.map
      (fun k ->
        match Shard.design ~channels:k ~bandwidth files with
        | Error e -> failwith ("exp_multichannel: " ^ e)
        | Ok design ->
            let check = Shardcheck.run design in
            let r =
              Multi.run_population ~design ~tuners:1
                ~model:(fun ~channel:_ -> Cohort.Bernoulli { p = 0.05 })
                ~seed:7 members
            in
            let served = List.length design.Shard.specs in
            let density = Shard.aggregate_density design in
            Format.printf
              "  K=%d: %2d/32 files served (density %s), %d/%d clients \
               completed, certified %b@."
              k served
              (Format.asprintf "%a" Q.pp density)
              r.Engine.completed r.Engine.requests (Shardcheck.ok check)
            ;
            (k, design, served, r, Shardcheck.ok check))
      [ 1; 2; 4; 8 ]
  in
  let served k =
    let _, _, s, _, _ = List.find (fun (k', _, _, _, _) -> k' = k) sweep in
    float_of_int s
  in
  let completed k =
    let _, _, _, r, _ = List.find (fun (k', _, _, _, _) -> k' = k) sweep in
    float_of_int r.Engine.completed
  in
  let all_certified =
    List.for_all (fun (_, _, _, _, ok) -> ok) sweep
  in
  let files_ratio = served 4 /. served 1 in
  let completed_ratio = completed 4 /. completed 1 in
  (* K = 1 byte-identity on a subset one channel can carry: the sharded
     design's program must be the single-channel pipeline's, bytes and
     all. *)
  let identity_ok =
    let subset = List.filteri (fun i _ -> i < 4) files in
    match
      (Shard.design ~channels:1 ~bandwidth subset, Program.pinwheel ~bandwidth subset)
    with
    | Ok t, Some reference ->
        Format.asprintf "%a" Program.pp t.Shard.channels.(0).Shard.program
        = Format.asprintf "%a" Program.pp reference
    | _ -> false
  in
  (* Cohort throughput at K = 4, wall clock. *)
  let _, design4, _, _, _ = List.find (fun (k, _, _, _, _) -> k = 4) sweep in
  let run4 () =
    Multi.run_population ~design:design4 ~tuners:1
      ~model:(fun ~channel:_ -> Cohort.Bernoulli { p = 0.05 })
      ~seed:7 members
  in
  let total_weight =
    List.fold_left (fun acc (m : Multi.member) -> acc + m.Multi.weight) 0 members
  in
  let ns = mean_ns run4 in
  let clients_per_sec = float_of_int total_weight *. 1e9 /. ns in
  Format.printf
    "  aggregate files K4/K1: %.2fx; completed clients K4/K1: %.2fx@."
    files_ratio completed_ratio;
  Format.printf "  K=4 cohort fold: %.2e clients/s; certified %b, K=1 identity %b@."
    clients_per_sec all_certified identity_ok;
  let path =
    Option.value
      (Sys.getenv_opt "PINDISK_MULTICHANNEL_OUT")
      ~default:"BENCH_multichannel.json"
  in
  let oc = open_out path in
  let out fmt = Printf.fprintf oc fmt in
  out "{\n";
  out "  \"bench\": \"multichannel\",\n";
  out "  \"mode\": \"%s\",\n" (if quick then "quick" else "full");
  out "  \"files_total\": %d,\n" (List.length files);
  out "  \"clients\": %d,\n" total_weight;
  out "  \"aggregate_files_k4_over_k1\": %.2f,\n" files_ratio;
  out "  \"cohort_completed_k4_over_k1\": %.2f,\n" completed_ratio;
  out "  \"shard_coverage_ok\": %.1f,\n" (if all_certified then 1.0 else 0.0);
  out "  \"k1_identity_ok\": %.1f,\n" (if identity_ok then 1.0 else 0.0);
  out "  \"multi_cohort_clients_per_sec\": %.0f,\n" clients_per_sec;
  out "  \"results\": [\n";
  List.iteri
    (fun i (k, design, served, (r : Engine.result), certified) ->
      out
        "    {\"channels\": %d, \"files_served\": %d, \"files_shed\": %d, \
         \"completed\": %d, \"missed\": %d, \"certified\": %b}%s\n"
        k served
        (List.length design.Shard.shed)
        r.Engine.completed r.Engine.missed certified
        (if i = List.length sweep - 1 then "" else ","))
    sweep;
  out "  ]\n}\n";
  close_out oc;
  Format.printf "  wrote %s@.@." path
