(* E6 -- density thresholds of the pinwheel schedulers (Section 3.1).

   Theory landmarks: any system needs density <= 1; Holte et al.'s
   single-integer reduction handles <= 1/2; Chan & Chin reach 7/10;
   {(1,2),(1,3),(1,n)} shows 5/6 + eps is infeasible for three tasks.
   The sweep measures each scheduler's success rate on random unit
   systems, and calibrates against exact feasibility on small windows. *)

module P = Pindisk_pinwheel
module Gen = P.Gen
module Scheduler = P.Scheduler
module Exact = P.Exact
module Task = P.Task
module Q = Pindisk_util.Q

let densities = [ 0.45; 0.55; 0.65; 0.7; 0.75; 0.8; 0.85; 0.9; 0.95; 1.0 ]

let success_rate algorithm systems =
  let ok =
    List.length (List.filter (fun s -> Scheduler.schedulable ~algorithm s) systems)
  in
  100.0 *. float_of_int ok /. float_of_int (List.length systems)

let run () =
  Format.printf "== E6 / density sweep: scheduler success rates ==@.";
  Format.printf "  (100 random unit systems per point, 4-8 tasks, windows <= 40)@.";
  Format.printf "  %-8s %8s %8s %8s %8s %8s@." "density" "Sa" "Sx" "Sr" "Sxy"
    "Auto";
  List.iter
    (fun target ->
      let systems =
        List.filter_map
          (fun seed ->
            let sys =
              Gen.unit_system_with_density ~seed ~n:(4 + (seed mod 5)) ~max_b:40
                ~target
            in
            (* Keep only systems whose density is genuinely near the target
               (within 0.05 below), so the sweep measures what it claims. *)
            let d = Q.to_float (Task.system_density sys) in
            if sys <> [] && d > target -. 0.05 then Some sys else None)
          (List.init 260 (fun i -> i))
      in
      let systems = List.filteri (fun i _ -> i < 100) systems in
      if systems <> [] then
        Format.printf "  %-8.2f %7.0f%% %7.0f%% %7.0f%% %7.0f%% %7.0f%%@." target
          (success_rate Scheduler.Sa systems)
          (success_rate Scheduler.Sx systems)
          (success_rate Scheduler.Sr systems)
          (success_rate Scheduler.Sxy systems)
          (success_rate Scheduler.Auto systems))
    densities;
  Format.printf
    "  (Sa is guaranteed below 1/2 and Sx dominates it; the Sx/Auto \
     columns@.   should stay near 100%% through 0.70 -- the Chan-Chin \
     regime the paper's@.   Equations 1-2 rely on -- and decay toward \
     1.0.)@.@.";

  (* Calibration against exact feasibility on small instances. *)
  Format.printf "  Calibration vs exact search (3-4 tasks, windows <= 12):@.";
  Format.printf "  %-8s %10s %10s %10s@." "density" "feasible" "Auto-finds"
    "recall";
  List.iter
    (fun target ->
      let feasible = ref 0 and found = ref 0 and total = ref 0 in
      for seed = 0 to 199 do
        let sys =
          Gen.unit_system_with_density ~seed ~n:(3 + (seed mod 2)) ~max_b:12
            ~target
        in
        if sys <> [] && Q.to_float (Task.system_density sys) > target -. 0.08
        then begin
          incr total;
          match Exact.is_feasible sys with
          | Some true ->
              incr feasible;
              if Scheduler.schedulable ~algorithm:Scheduler.Auto sys then
                incr found
          | Some false | None -> ()
        end
      done;
      if !total > 0 && !feasible > 0 then
        Format.printf "  %-8.2f %9.0f%% %9.0f%% %9.0f%%@." target
          (100.0 *. float_of_int !feasible /. float_of_int !total)
          (100.0 *. float_of_int !found /. float_of_int !total)
          (100.0 *. float_of_int !found /. float_of_int !feasible))
    [ 0.6; 0.7; 0.8; 0.9; 1.0 ];
  Format.printf
    "  (recall = share of exactly-feasible instances the heuristic stack \
     places.@.   Auto falls back to exact search on small instances, so \
     recall here is 100%%.)@.@.";

  (* Structured families: each scheduler has an axis it owns. *)
  Format.printf "  Structured instance families (density ~0.95, success rates):@.";
  Format.printf "  %-26s %8s %8s %8s %8s@." "family" "Sa" "Sx" "Sr" "Auto";
  let families =
    [
      ( "harmonic (b = x*2^k)",
        fun seed ->
          let rng = Random.State.make [| seed |] in
          let x = 3 + Random.State.int rng 3 in
          let rec draw n used acc =
            if n = 0 then acc
            else
              let b = x * (1 lsl Random.State.int rng 3) in
              let d = 1.0 /. float_of_int b in
              if used +. d <= 0.95 then
                draw (n - 1) (used +. d) ((List.length acc, b) :: acc)
              else acc
          in
          List.map (fun (id, b) -> Task.unit ~id ~b) (draw 8 0.0 []) );
      ( "two-distinct (b in {g, qg+r})",
        fun seed ->
          let rng = Random.State.make [| seed |] in
          let g = 2 + Random.State.int rng 3 in
          let big = (g * (2 + Random.State.int rng 4)) + Random.State.int rng g in
          (* Fill every column rotation leaves free: (g-1) columns, each
             serving floor(big/g) sharers -- the regime where power-of-two
             specialization over-rounds and fails. *)
          let n_big = (g - 1) * (big / g) in
          Task.unit ~id:0 ~b:g
          :: List.init n_big (fun i -> Task.unit ~id:(i + 1) ~b:big) );
      ( "uniform random",
        fun seed ->
          Gen.unit_system_with_density ~seed ~n:7 ~max_b:40 ~target:0.95 );
    ]
  in
  List.iter
    (fun (label, make_family) ->
      let systems =
        List.filter_map
          (fun seed ->
            let sys = make_family seed in
            match Task.check_system sys with
            | Ok () when sys <> [] -> Some sys
            | _ -> None)
          (List.init 100 (fun i -> i))
      in
      Format.printf "  %-26s %7.0f%% %7.0f%% %7.0f%% %7.0f%%@." label
        (success_rate Scheduler.Sa systems)
        (success_rate Scheduler.Sx systems)
        (success_rate Scheduler.Sr systems)
        (success_rate Scheduler.Auto systems))
    families;
  Format.printf
    "  (chain structure is Sx's axis, multiple structure is Sr's; Auto \
     unions@.   them, which is why it dominates every family.)@.@.";

  (* The paper's infeasible family. *)
  Format.printf "  Paper's Example-1 family {(1,2),(1,3),(1,n)} (density 5/6 + 1/n):@.   ";
  List.iter
    (fun n ->
      let sys = [ Task.unit ~id:0 ~b:2; Task.unit ~id:1 ~b:3; Task.unit ~id:2 ~b:n ] in
      Format.printf "n=%d:%s " n
        (match Exact.decide sys with
        | Exact.Infeasible -> "infeasible"
        | Exact.Feasible _ -> "FEASIBLE?!"
        | Exact.Too_large -> "too-large"))
    [ 10; 30; 60; 100 ];
  Format.printf "@.  (exact search proves infeasibility for every finite n tried.)@.@."
