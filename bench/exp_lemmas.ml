(* E2 -- Lemmas 1 and 2: the closed-form delay bounds checked against exact
   adversarial delays on randomized flat / AIDA-flat programs. *)

module Program = Pindisk.Program
module Bounds = Pindisk.Bounds
module Adversary = Pindisk_sim.Adversary

let run () =
  Format.printf
    "== E2 / Lemmas 1-2: exact worst-case delay vs the closed-form bounds \
     ==@.";
  Format.printf "  %-28s %8s %10s %10s %9s@." "program family" "checks"
    "max d/L1" "max d/L2" "violations";
  let rng = Random.State.make [| 2024 |] in
  List.iter
    (fun (label, n_files, max_m, spare) ->
      let checks = ref 0 and violations = ref 0 in
      let worst_l1 = ref 0.0 and worst_l2 = ref 0.0 in
      for _ = 1 to 30 do
        let files =
          List.init n_files (fun id -> (id, 1 + Random.State.int rng max_m))
        in
        let flat = Program.flat files in
        let aida =
          Program.aida_flat (List.map (fun (id, m) -> (id, m, m + spare)) files)
        in
        List.iter
          (fun (id, m) ->
            for r = 0 to spare do
              incr checks;
              (* Lemma 1 on the flat program. *)
              let d1 = Adversary.worst_case_delay flat ~file:id ~needed:m ~errors:r in
              let l1 = Bounds.lemma1 ~period:(Program.period flat) ~errors:r in
              if r > 0 then
                worst_l1 := max !worst_l1 (float_of_int d1 /. float_of_int l1);
              if d1 > l1 then incr violations;
              (* Lemma 2 on the AIDA program, within the redundancy. *)
              let d2 = Adversary.worst_case_delay aida ~file:id ~needed:m ~errors:r in
              let delta = Option.get (Program.delta aida id) in
              let l2 = Bounds.lemma2 ~delta ~errors:r in
              if r > 0 then
                worst_l2 := max !worst_l2 (float_of_int d2 /. float_of_int l2);
              if d2 > l2 then incr violations
            done)
          files
      done;
      Format.printf "  %-28s %8d %10.2f %10.2f %9d@." label !checks !worst_l1
        !worst_l2 !violations)
    [
      ("2 files, <=6 blocks, r<=2", 2, 6, 2);
      ("3 files, <=5 blocks, r<=2", 3, 5, 2);
      ("4 files, <=4 blocks, r<=1", 4, 4, 1);
    ];
  Format.printf
    "  (d = exact adversarial delay; L1 = r*tau, L2 = r*Delta. Ratios <= 1 \
     and@.   zero violations confirm both lemmas; ratios near 1 show the \
     bounds are tight.)@.@."
