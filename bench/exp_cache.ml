(* E12 -- client cache management ablation (SIGMOD'95 lineage): hit ratio
   and mean latency per policy, on matched and mismatched broadcast
   frequencies. *)

module Multidisk = Pindisk.Multidisk
module Cache = Pindisk_sim.Cache

let matched =
  (* Broadcast frequencies agree with client access skew. *)
  lazy
    (Multidisk.program
       [
         { Multidisk.frequency = 4; files = [ (0, 1); (1, 1) ] };
         { Multidisk.frequency = 2; files = [ (2, 1); (3, 1) ] };
         { Multidisk.frequency = 1; files = List.init 8 (fun i -> (i + 4, 1)) };
       ])

let mismatched =
  (* Partially matched: the two hottest pages ARE on the fast disk (cheap
     to miss), but the next-hottest sit on the slow disk. Caching by
     access probability wastes slots on pages 0-1; caching by P/X keeps
     the hot-but-rare pages 2-5. *)
  lazy
    (Multidisk.program
       [
         { Multidisk.frequency = 8; files = [ (0, 1); (1, 1) ] };
         { Multidisk.frequency = 1; files = List.init 10 (fun i -> (i + 2, 1)) };
       ])

let run () =
  Format.printf
    "== E12 / client cache policies (Zipf 0.95 accesses, 12 pages, 8000 \
     accesses) ==@.";
  Format.printf "  %-12s %-8s | %9s %13s@." "broadcast" "policy" "hit-ratio"
    "mean latency";
  List.iter
    (fun (label, program) ->
      List.iter
        (fun policy ->
          let s =
            Cache.simulate ~program:(Lazy.force program) ~cache_slots:3 ~policy
              ~theta:0.95 ~accesses:8000 ~seed:3 ()
          in
          Format.printf "  %-12s %-8s | %8.1f%% %13.2f@." label
            (Format.asprintf "%a" Cache.pp_policy policy)
            (100.0 *. Cache.hit_ratio s)
            s.Cache.mean_latency)
        [ Cache.Lru; Cache.Lfu; Cache.Pix ])
    [ ("matched", matched); ("mismatched", mismatched) ];
  Format.printf
    "  (with matched frequencies any policy does; in the mismatched row \
     the@.   hottest pages are broadcast so often that missing them is \
     nearly free --@.   PIX, caching by P/X, spends its slots on \
     hot-but-rare pages and wins on@.   latency despite a LOWER hit \
     ratio: the classic broadcast-disk caching@.   result.)@.@."
