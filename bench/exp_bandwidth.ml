(* E3/E4 -- Equations 1 and 2: the 10/7 bandwidth upper bound. For random
   file sets, the Equation bandwidth must be schedulable, and the smallest
   schedulable bandwidth's overhead over the Sum((m+r)/T) lower bound must
   stay below the promised 43%. *)

module File_spec = Pindisk.File_spec
module Bandwidth = Pindisk.Bandwidth
module Q = Pindisk_util.Q

let random_files rng ~n ~fault_tolerant =
  List.init n (fun id ->
      let blocks = 1 + Random.State.int rng 6 in
      let latency = 2 + Random.State.int rng 20 in
      let tolerance =
        if fault_tolerant then Random.State.int rng 4 else 0
      in
      File_spec.make ~id ~blocks ~latency ~tolerance ())

let sweep ~label ~fault_tolerant ~trials =
  let rng = Random.State.make [| (if fault_tolerant then 4 else 2) |] in
  let sched_at_eq = ref 0 in
  let overhead_sum = ref 0.0 and overhead_max = ref 0.0 in
  let achieved_overhead_sum = ref 0.0 and achieved_overhead_max = ref 0.0 in
  let ok = ref 0 in
  for _ = 1 to trials do
    (* Keep total demand >= 2 blocks/sec so ceiling effects don't swamp
       the 10/7 factor the experiment is about. *)
    let rec draw () =
      let n = 3 + Random.State.int rng 5 in
      let files = random_files rng ~n ~fault_tolerant in
      if Q.( >= ) (Bandwidth.demand files) (Q.of_int 2) then files else draw ()
    in
    let files = draw () in
    let eq = Bandwidth.required files in
    if Bandwidth.schedulable ~bandwidth:eq files then incr sched_at_eq;
    let o_eq = Bandwidth.overhead ~achieved:eq files in
    overhead_sum := !overhead_sum +. o_eq;
    overhead_max := max !overhead_max o_eq;
    match Bandwidth.minimum files with
    | Some (b, _) ->
        incr ok;
        let o = Bandwidth.overhead ~achieved:b files in
        achieved_overhead_sum := !achieved_overhead_sum +. o;
        achieved_overhead_max := max !achieved_overhead_max o
    | None -> ()
  done;
  let ft = float_of_int trials in
  Format.printf "  %-24s %9.1f%% %10.2f %10.2f %10.2f %10.2f@." label
    (100.0 *. float_of_int !sched_at_eq /. ft)
    (!overhead_sum /. ft) !overhead_max
    (!achieved_overhead_sum /. float_of_int !ok)
    !achieved_overhead_max;
  assert (!ok = trials)

let run () =
  Format.printf
    "== E3/E4 / Equations 1-2: bandwidth sufficiency and overhead (random \
     file sets) ==@.";
  Format.printf "  %-24s %10s %10s %10s %10s %10s@." "" "sched@eq"
    "eq-ovh avg" "eq-ovh max" "min-ovh avg" "min-ovh max";
  sweep ~label:"E3: real-time (r=0)" ~fault_tolerant:false ~trials:150;
  sweep ~label:"E4: fault-tolerant (r>0)" ~fault_tolerant:true ~trials:150;
  Format.printf
    "  (sched@eq: share of instances schedulable at the Equation-1/2 \
     bandwidth --@.   the paper promises 100%% given a 7/10-density \
     scheduler; eq-ovh: the 10/7@.   ceiling's overhead over the demand \
     lower bound, <= ~1.43 + rounding; min-ovh:@.   overhead of the \
     smallest bandwidth our schedulers actually realize.)@.@."
