(* E1 -- Figure 7: worst-case delays versus number of errors, with and
   without IDA, on the paper's own toy programs (Figures 5 and 6). *)

module Program = Pindisk.Program
module Adversary = Pindisk_sim.Adversary

let layout = [ (0, 0); (1, 0); (0, 1); (0, 2); (1, 1); (0, 3); (1, 2); (0, 4) ]
let flat = Program.of_layout layout ~capacities:[ (0, 5); (1, 3) ]
let ida = Program.of_layout layout ~capacities:[ (0, 10); (1, 6) ]

let paper_ida = [| 0; 3; 4; 6; 7; 8 |]
let paper_flat = [| 0; 8; 16; 24; 32; 40 |]

let run () =
  Format.printf
    "== E1 / Figure 7: worst-case delay vs errors (toy disk: A=5, B=3 \
     blocks, period 8; AIDA: A->10, B->6) ==@.";
  Format.printf "  %-6s | %-19s | %-19s | %s@." "errors" "with IDA (ours)"
    "without IDA (ours)" "paper (IDA / no-IDA)";
  Format.printf "  %-6s | %6s %6s %5s | %6s %6s %5s |@." "" "A" "B" "worst" "A"
    "B" "worst";
  for r = 0 to 5 do
    let d p file needed = Adversary.worst_case_delay p ~file ~needed ~errors:r in
    let ai = d ida 0 5 and bi = d ida 1 3 in
    let af = d flat 0 5 and bf = d flat 1 3 in
    Format.printf "  %-6d | %6d %6d %5d | %6d %6d %5d |  %6d / %6d@." r ai bi
      (max ai bi) af bf (max af bf) paper_ida.(r) paper_flat.(r)
  done;
  Format.printf
    "  Without-IDA column matches the paper exactly (r*tau = 8r, Lemma 1 \
     tight).@.";
  Format.printf
    "  With-IDA: same shape (sublinear, ~tau/Delta times smaller); the \
     paper's@.";
  Format.printf
    "  informal estimates exceed its own Lemma-2 bound at r=1 (3 > \
     1*Delta_A=2),@.";
  Format.printf "  so no consistent definition reproduces them exactly.@.@."
