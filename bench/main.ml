(* The pindisk benchmark harness: regenerates every quantitative artifact
   of the paper (tables, lemma bounds, equations, worked examples) plus
   the ablations documented in DESIGN.md, then runs the Bechamel
   micro-benchmarks.

     dune exec bench/main.exe            -- everything
     dune exec bench/main.exe -- e1 e5   -- selected experiments
     dune exec bench/main.exe -- tables  -- all tables, no micro-benches
     dune exec bench/main.exe -- micro   -- micro-benches only *)

let experiments =
  [
    ("e1", "Figure 7: worst-case delay vs errors", Exp_fig7.run);
    ("e2", "Lemmas 1-2: delay bounds", Exp_lemmas.run);
    ("e3/e4", "Equations 1-2: bandwidth bounds", Exp_bandwidth.run);
    ("e5", "Examples 2-6: pinwheel algebra", Exp_algebra.run);
    ("e6", "Density sweep: scheduler thresholds", Exp_density.run);
    ("e7", "Error-recovery speedup tau/Delta", Exp_speedup.run);
    ("e8", "Block-size tradeoff", Exp_blocksize.run);
    ("e9", "Fault-model ablation", Exp_faults.run);
    ("e11", "Classic multi-disk vs pinwheel", Exp_multidisk.run);
    ("e12", "Client cache policies", Exp_cache.run);
    ("e13", "Air indexing vs self-identifying", Exp_indexing.run);
    ("e14", "Update dissemination / staleness", Exp_staleness.run);
    ("e15", "Population run across programs", Exp_population.run);
    ("e16", "Decomposition ablation", Exp_decomposition.run);
    ("e17", "Spacing-quality ablation", Exp_quality.run);
    ("e18", "Transactions ablation", Exp_transaction.run);
    ("e19", "Adaptive degradation: static vs closed-loop", Exp_adaptive.run);
    ("e20", "Codec engine: table-driven GF(256) + domain pool", Exp_codec.run);
    ("e21", "Scheduling scale: online dispatcher vs eager", Exp_sched.run);
    ("e22", "Chaos recovery: crash-restart cost vs fault rate", Exp_faults.run_chaos);
    ("e23", "Cohort scale: weighted classes vs per-client drive", Exp_cohort.run);
    ("e24", "Multi-channel sharding: aggregate throughput at K channels", Exp_multichannel.run);
  ]

let () =
  let args =
    Array.to_list Sys.argv |> List.tl
    |> List.map String.lowercase_ascii
  in
  let want key =
    args = [] || List.mem "all" args
    || List.exists (fun a -> a = key || String.length key >= 2 && String.sub key 0 2 = a) args
  in
  let tables_only = List.mem "tables" args in
  let micro_only = List.mem "micro" args in
  Format.printf
    "pindisk benchmark harness -- reproducing Baruah & Bestavros, \
     \"Pinwheel Scheduling for Fault-tolerant Broadcast Disks\"@.@.";
  if not micro_only then
    List.iter
      (fun (key, _desc, run) -> if tables_only || want key then run ())
      experiments;
  if (not tables_only) && (args = [] || micro_only || List.mem "e10" args) then
    Micro.run ();
  Format.printf "done.@."
