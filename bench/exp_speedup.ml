(* E7 -- the error-recovery speedup tau/Delta (Section 2.3): "if the
   broadcast program consists of 200 blocks from 10 different files, each
   consisting of 20 blocks, then ... a 20-fold speedup in error
   recovery". Sweeps the file count at a fixed 200-block program. *)

module Program = Pindisk.Program
module Bounds = Pindisk.Bounds
module Q = Pindisk_util.Q
module Intmath = Pindisk_util.Intmath

let run () =
  Format.printf
    "== E7 / error-recovery speedup tau/Delta (200-block programs) ==@.";
  Format.printf "  %-22s %8s %8s %10s %12s@." "layout" "tau" "Delta"
    "speedup" "paper";
  List.iter
    (fun (files, blocks) ->
      let p = Program.flat (List.init files (fun id -> (id, blocks))) in
      let deltas =
        List.filter_map (fun id -> Program.delta p id) (Program.files p)
      in
      let delta = Intmath.max_list deltas in
      let speedup = Bounds.speedup ~period:(Program.period p) ~delta in
      let paper = if files = 10 then "20-fold" else "-" in
      Format.printf "  %2d files x %3d blocks  %8d %8d %10s %12s@." files blocks
        (Program.period p) delta (Q.to_string speedup) paper)
    [ (2, 100); (4, 50); (5, 40); (10, 20); (20, 10); (40, 5) ];
  Format.printf
    "  (uniform spreading gives Delta = tau / blocks-per-file, so the \
     speedup@.   equals the per-file block count -- the paper's 10x20 row \
     is the promised@.   20-fold case.)@.@.";

  (* Mixed sizes: the speedup each file sees is its own occurrence count. *)
  Format.printf "  Mixed-size program (files of 5, 15, 30, 50 blocks; tau = 100):@.";
  let sizes = [ (0, 5); (1, 15); (2, 30); (3, 50) ] in
  let p = Program.flat sizes in
  List.iter
    (fun (id, m) ->
      match Bounds.program_speedup p ~file:id with
      | Some s ->
          Format.printf "    file of %2d blocks: Delta = %2d, speedup %sx@." m
            (Option.get (Program.delta p id))
            (Q.to_string s)
      | None -> ())
    sizes;
  Format.printf "@."
