(* E15 -- population-scale comparison: the same Poisson/Zipf request
   trace replayed against the pinwheel program, the flat program, and the
   classic multi-disk farm, across channel loss rates. *)

module File_spec = Pindisk.File_spec
module Program = Pindisk.Program
module Multidisk = Pindisk.Multidisk
module Fault = Pindisk_sim.Fault
module Workload = Pindisk_sim.Workload
module Engine = Pindisk_sim.Engine
module Stats = Pindisk_util.Stats

let files =
  [
    File_spec.make ~name:"hot" ~id:0 ~blocks:2 ~latency:4 ~tolerance:2 ();
    File_spec.make ~name:"warm" ~id:1 ~blocks:3 ~latency:10 ~tolerance:1 ();
    File_spec.make ~name:"cool" ~id:2 ~blocks:5 ~latency:25 ~tolerance:1 ();
    File_spec.make ~name:"cold" ~id:3 ~blocks:8 ~latency:60 ();
  ]

let run () =
  Format.printf
    "== E15 / population run: one trace, three programs (3000+ requests) ==@.";
  let bandwidth, pinwheel =
    match Program.auto files with Some r -> r | None -> assert false
  in
  let flat =
    Program.flat (List.map (fun f -> (f.File_spec.id, f.File_spec.blocks)) files)
  in
  let classic =
    Multidisk.program
      [
        { Multidisk.frequency = 8; files = [ (0, 2) ] };
        { Multidisk.frequency = 4; files = [ (1, 3) ] };
        { Multidisk.frequency = 2; files = [ (2, 5) ] };
        { Multidisk.frequency = 1; files = [ (3, 8) ] };
      ]
  in
  let needed_of f = (List.nth files f).File_spec.blocks in
  let deadline_of f = File_spec.window (List.nth files f) ~bandwidth in
  let trace =
    Workload.generate ~program:pinwheel ~rate:0.35 ~theta:0.9 ~needed_of
      ~deadline_of ~horizon:10_000 ~seed:8
  in
  Format.printf "  (deadlines = B*T at B = %d; trace of %d requests)@."
    bandwidth (List.length trace);
  Format.printf "  %-6s | %-21s | %-21s | %-21s@." "loss" "pinwheel+AIDA"
    "flat" "classic multi-disk";
  Format.printf "  %-6s | %8s %12s | %8s %12s | %8s %12s@." "" "miss" "p99 lat"
    "miss" "p99 lat" "miss" "p99 lat";
  List.iter
    (fun p ->
      let cell program =
        let r =
          Engine.run ~program
            ~fault:(fun ~seed -> Fault.bernoulli ~p ~seed)
            ~seed:99 trace
        in
        ( 100.0 *. Engine.miss_ratio r,
          if Stats.count r.Engine.latency = 0 then 0.0
          else Stats.percentile r.Engine.latency 99.0 )
      in
      let pm, pp_ = cell pinwheel in
      let fm, fp = cell flat in
      let cm, cp = cell classic in
      Format.printf "  %5.0f%% | %7.1f%% %12.0f | %7.1f%% %12.0f | %7.1f%% %12.0f@."
        (100.0 *. p) pm pp_ fm fp cm cp)
    [ 0.0; 0.05; 0.15; 0.3 ];
  Format.printf
    "  (same request trace everywhere. The pinwheel/AIDA program holds \
     its miss@.   ratio as losses climb because redundancy was budgeted \
     per deadline; the@.   demand-blind baselines miss the tight \
     deadlines even on a clean channel.)@.@."
