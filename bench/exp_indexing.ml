(* E13 -- air indexing vs self-identifying blocks (the paper's footnote
   3): access time vs tuning (awake) time as index copies vary. *)

module Program = Pindisk.Program
module Indexing = Pindisk_sim.Indexing

let run () =
  Format.printf
    "== E13 / self-identifying blocks vs (1,m) air indexing ==@.";
  let base = Program.flat [ (0, 4); (1, 6); (2, 10); (3, 4) ] in
  let file = 2 and needed = 10 in
  let plain = Indexing.self_identifying_metrics base ~file ~needed in
  Format.printf "  %-24s %12s %12s@." "protocol" "access time" "tuning time";
  Format.printf "  %-24s %12.1f %12.1f@." "self-identifying" plain.Indexing.access_time
    plain.Indexing.tuning_time;
  List.iter
    (fun copies ->
      let indexed, idx = Indexing.with_index base ~copies ~index_slots:1 in
      let m =
        Indexing.indexed_metrics indexed ~index_file:idx ~index_slots:1 ~file
          ~needed
      in
      Format.printf "  %-24s %12.1f %12.1f@."
        (Printf.sprintf "(1,%d) indexing" copies)
        m.Indexing.access_time m.Indexing.tuning_time)
    [ 1; 2; 4; 8; 12 ];
  Format.printf
    "  (indexing halves the awake time at an access-time premium; the \
     premium is@.   minimized at an intermediate m -- more copies shorten \
     the wait for an@.   index but lengthen the period -- matching the \
     classic sqrt(data/index)@.   optimum, here ~5.)@.@.";

  (* Under loss: the index is a single point of failure, which is the
     paper's footnote-3 argument for self-identifying blocks. *)
  let module Fault = Pindisk_sim.Fault in
  let module Experiment = Pindisk_sim.Experiment in
  Format.printf
    "  Under block loss (mean access / mean tuning over 600 clients):@.";
  Format.printf "  %-6s | %-22s | %-22s@." "loss" "self-identifying"
    "(1,4) indexing";
  let indexed, idx = Indexing.with_index base ~copies:4 ~index_slots:1 in
  List.iter
    (fun p ->
      (* Self-identifying: access = tuning = client retrieval time. *)
      let s =
        Experiment.run ~program:base ~file ~needed ~deadline:max_int
          ~fault:(fun ~seed -> Fault.bernoulli ~p ~seed)
          ~trials:600 ~seed:5 ()
      in
      (* Indexed protocol with the same loss process. *)
      let acc = ref 0.0 and tun = ref 0.0 and ok = ref 0 in
      let rng = Random.State.make [| 5 |] in
      for k = 0 to 599 do
        let start = Random.State.int rng (Program.data_cycle indexed) in
        match
          Indexing.indexed_retrieve_lossy indexed ~index_file:idx
            ~index_slots:1 ~file ~needed ~start
            ~fault:(Fault.bernoulli ~p ~seed:k)
        with
        | Some m ->
            incr ok;
            acc := !acc +. m.Indexing.access_time;
            tun := !tun +. m.Indexing.tuning_time
        | None -> ()
      done;
      let okf = float_of_int !ok in
      Format.printf "  %4.0f%% | %9.1f / %9.1f | %9.1f / %9.1f@." (100.0 *. p)
        s.Experiment.mean_latency s.Experiment.mean_latency (!acc /. okf)
        (!tun /. okf))
    [ 0.0; 0.1; 0.25 ];
  Format.printf
    "  (the tuning advantage survives loss but the access-time premium \
     widens:@.   a ruined index slot strands the dozing client until the \
     next copy. This@.   is the paper's footnote-3 argument -- the index \
     is a single point of@.   failure and does not \"lend itself to a \
     clean fault-tolerant@.   organization\" -- quantified.)@.@."
