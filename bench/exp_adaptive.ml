(* E19 -- closed-loop adaptive degradation: a static AIDA server vs the
   adaptive controller (online loss estimation + hysteresis policy +
   degradation ladder + cycle-boundary hot-swap) under a scripted
   good -> bad -> good Gilbert-Elliott channel, on the identical request
   trace and the identical per-slot loss sequence. Emits the
   miss-ratio-over-time series as JSON for plotting. *)

module Item = Pindisk_rtdb.Item
module Mode = Pindisk_rtdb.Mode
module Aida = Pindisk_ida.Aida
module Fault = Pindisk_sim.Fault
module Workload = Pindisk_sim.Workload
module Estimator = Pindisk_adapt.Estimator
module Policy = Pindisk_adapt.Policy
module Ladder = Pindisk_adapt.Ladder
module Swap = Pindisk_adapt.Swap
module Controller = Pindisk_adapt.Controller
module Driver = Pindisk_adapt.Driver

let items =
  [
    Item.make ~id:0 ~name:"alerts" ~blocks:2 ~avi:4 ~value:100 ();
    Item.make ~id:1 ~name:"telemetry" ~blocks:3 ~avi:8 ~value:30 ();
    Item.make ~id:2 ~name:"map" ~blocks:6 ~avi:24 ~value:10 ();
    Item.make ~id:3 ~name:"feed" ~blocks:8 ~avi:48 ~value:1 ();
  ]

let cruise =
  Mode.make ~name:"cruise" ~default:Aida.Non_real_time
    [
      ("alerts", Aida.Critical 2);
      ("telemetry", Aida.Standard);
      ("map", Aida.Standard);
    ]

let essential =
  Mode.make ~name:"essential" ~default:Aida.Non_real_time
    [ ("alerts", Aida.Critical 2); ("telemetry", Aida.Standard) ]

let bandwidth = 4
let good_len = 4000
let bad_len = 6000
let tail_len = 6000
let horizon = good_len + bad_len + tail_len

let good_channel seed =
  (* Mostly clean: rare, short loss flurries; stationary rate ~1%. *)
  Fault.burst ~p_good_to_bad:0.02 ~p_bad_to_good:0.5 ~loss_good:0.0
    ~loss_bad:0.25 ~seed

let bad_channel seed =
  (* Sustained degradation: the chain lives mostly in the bad state;
     stationary rate ~39%. *)
  Fault.burst ~p_good_to_bad:0.3 ~p_bad_to_good:0.1 ~loss_good:0.05
    ~loss_bad:0.5 ~seed

let controller () =
  let ladder =
    Ladder.create ~fallbacks:[ essential ] ~max_boost:3 ~bandwidth
      ~base_mode:cruise items
  in
  let estimator = Estimator.create ~alpha:0.6 ~window:32 () in
  let policy =
    Policy.create ~dwell:3
      [
        Policy.level "clear";
        Policy.level ~boost:1 ~enter:0.10 ~exit:0.05 "degraded";
        Policy.level ~boost:2 ~enter:0.25 ~exit:0.15 "storm";
      ]
  in
  Controller.create ~estimator ~policy ladder

let json_timeline buckets =
  String.concat ","
    (List.map
       (fun (b : Driver.bucket) ->
         Printf.sprintf "{\"t0\":%d,\"t1\":%d,\"requests\":%d,\"missed\":%d}"
           b.Driver.t0 b.Driver.t1 b.Driver.issued b.Driver.missed)
       buckets)

let json_swaps swaps =
  String.concat ","
    (List.map
       (fun (e : Swap.entry) ->
         Printf.sprintf
           "{\"slot\":%d,\"phase\":%d,\"old\":\"%s\",\"new\":\"%s\",\"cause\":%S}"
           e.Swap.slot e.Swap.phase e.Swap.old_digest e.Swap.new_digest
           e.Swap.cause)
       swaps)

let run () =
  Format.printf
    "== E19 / adaptive degradation: static vs closed-loop server under a \
     scripted good->bad->good channel ==@.";
  let ctl = controller () in
  let baseline = (Controller.plan ctl).Ladder.program in
  let script =
    [
      { Driver.length = good_len; fault = good_channel 11 };
      { Driver.length = bad_len; fault = bad_channel 12 };
      { Driver.length = tail_len; fault = good_channel 13 };
    ]
  in
  let losses = Driver.losses script in
  let trace =
    Workload.generate ~program:baseline ~rate:0.08 ~theta:0.9
      ~needed_of:(fun id ->
        (List.nth items id).Item.blocks)
      ~deadline_of:(fun id -> bandwidth * (List.nth items id).Item.avi)
      ~horizon ~seed:21
  in
  let static = Driver.run ~bucket:500 ~program:baseline ~losses trace in
  let adaptive =
    Driver.run ~bucket:500 ~controller:ctl ~program:baseline ~losses trace
  in
  Format.printf "  (bandwidth %d blocks/sec, %d requests over %d slots;@."
    bandwidth (List.length trace) horizon;
  Format.printf
    "   channel: ~1%% loss for %d slots, ~39%% for %d, ~1%% for %d)@.@."
    good_len bad_len tail_len;
  Format.printf "  %-10s %10s %10s@." "phase" "static" "adaptive";
  let phase name t0 t1 =
    Format.printf "  %-10s %9.1f%% %9.1f%%@." name
      (100.0 *. Driver.window_miss_ratio static ~t0 ~t1)
      (100.0 *. Driver.window_miss_ratio adaptive ~t0 ~t1)
  in
  phase "good" 0 good_len;
  phase "bad" good_len (good_len + bad_len);
  phase "recovery" (good_len + bad_len) horizon;
  Format.printf "  %-10s %9.1f%% %9.1f%%@.@." "overall"
    (100.0 *. Driver.miss_ratio static)
    (100.0 *. Driver.miss_ratio adaptive);
  Format.printf "  swap log (%d swap(s)):@." (List.length adaptive.Driver.swaps);
  List.iter
    (fun e -> Format.printf "    %a@." Swap.pp_entry e)
    adaptive.Driver.swaps;
  let bad_static = Driver.window_miss_ratio static ~t0:good_len ~t1:(good_len + bad_len) in
  let bad_adaptive =
    Driver.window_miss_ratio adaptive ~t0:good_len ~t1:(good_len + bad_len)
  in
  let on_boundary =
    List.for_all (fun e -> e.Swap.phase = 0) adaptive.Driver.swaps
  in
  let no_flapping = List.length adaptive.Driver.swaps <= 2 in
  Format.printf "  checks: adaptive-beats-static-in-bad-phase %s; \
                 swaps-on-cycle-boundary %s; no-flapping(<=2 swaps) %s@.@."
    (if bad_adaptive < bad_static then "OK" else "FAIL")
    (if on_boundary then "OK" else "FAIL")
    (if no_flapping then "OK" else "FAIL");
  Printf.printf
    "  json: {\"experiment\":\"e19-adaptive\",\"bucket\":500,\
     \"static\":[%s],\"adaptive\":[%s],\"swaps\":[%s]}\n"
    (json_timeline static.Driver.timeline)
    (json_timeline adaptive.Driver.timeline)
    (json_swaps adaptive.Driver.swaps);
  Format.printf "@."
