(* E17 -- ablation: schedule quality across schedulers.

   Two schedules can both satisfy pc(a, b) yet differ in how evenly they
   space a task's slots -- and Lemma 2's recovery bound is r * Delta, so
   spacing IS the fault-tolerance quality of a broadcast program. For
   each scheduler we report the mean and worst ratio Delta_i / b_i over
   tasks (1.0 would mean a task's whole window can pass with a single
   occurrence at the very end; small is good), plus the achieved period. *)

module P = Pindisk_pinwheel
module Q = Pindisk_util.Q
module Stats = Pindisk_util.Stats

let algorithms =
  [
    ("Sa", P.Scheduler.Sa);
    ("Sx", P.Scheduler.Sx);
    ("Sr", P.Scheduler.Sr);
    ("Auto", P.Scheduler.Auto);
  ]

let run () =
  Format.printf "== E17 / ablation: spacing quality (Delta/b) per scheduler ==@.";
  Format.printf "  (200 random unit systems, density <= 0.6, windows <= 40)@.";
  Format.printf "  %-6s %9s %11s %11s %12s@." "sched" "placed" "mean D/b"
    "worst D/b" "mean period";
  List.iter
    (fun (label, algorithm) ->
      let ratio = Stats.create () and periods = Stats.create () in
      let placed = ref 0 and total = ref 0 in
      for seed = 0 to 199 do
        let sys =
          P.Gen.unit_system_with_density ~seed ~n:(3 + (seed mod 5)) ~max_b:40
            ~target:0.6
        in
        if sys <> [] then begin
          incr total;
          match P.Scheduler.schedule ~algorithm sys with
          | None -> ()
          | Some sched ->
              incr placed;
              Stats.add_int periods (P.Schedule.period sched);
              List.iter
                (fun t ->
                  match P.Schedule.max_gap sched t.P.Task.id with
                  | Some d ->
                      Stats.add ratio
                        (float_of_int d /. float_of_int t.P.Task.b)
                  | None -> ())
                sys
        end
      done;
      Format.printf "  %-6s %8.0f%% %11.2f %11.2f %12.0f@." label
        (100.0 *. float_of_int !placed /. float_of_int !total)
        (Stats.mean ratio) (Stats.max_value ratio) (Stats.mean periods))
    algorithms;
  Format.printf
    "  (exact-period constructions keep Delta = the specialized period, \
     which@.   never exceeds b -- ratios are at most 1.00 by construction \
     and average@.   well under it; Sr's equal-rate rotation gives the \
     tightest spacing and@.   the shortest periods when it applies. Every \
     program therefore inherits@.   a usable Lemma-2 bound without any \
     extra machinery.)@.@."
