(* E20 -- codec engine throughput: the SWAR lane kernels and the
   domain-parallel IDA engine against two fixed comparators: the seed
   implementation (log/exp lookups with a zero-branch per byte, one axpy
   sweep per matrix coefficient) and a frozen copy of the v1 table
   kernel (one wide-table [encode_row_strided] sweep per output row over
   a non-systematic Vandermonde matrix).

   A fixed-work harness repeats each operation until a time budget is
   spent and reports MB/s over the file bytes processed; results land in
   BENCH_codec.json (schema below) so the speedup trajectory is recorded
   alongside the paper tables. Bechamel micro-benchmarks of the raw
   kernels run at the end.

   Quick mode (PINDISK_CODEC_QUICK=1, used by CI and `make bench-codec`)
   trims the grid to the headline configurations. *)

module Gf256 = Pindisk_gf256.Gf256
module Matrix = Pindisk_gf256.Matrix
module Ida = Pindisk_ida.Ida
module Pool = Pindisk_util.Pool

(* ---------------- baseline: the seed codec, kept verbatim ---------------- *)

(* Rebuilt from the public exp/log so the baseline shares no bulk kernel
   with the code under test. *)
let exp_table =
  Array.init 510 (fun k -> Gf256.exp (k mod 255))

let log_table =
  Array.init 256 (fun x -> if x = 0 then 0 else Gf256.log x)

let baseline_axpy ~acc ~coeff ~src =
  let coeff = coeff land 0xff in
  if coeff <> 0 then begin
    let lc = log_table.(coeff) in
    for i = 0 to Bytes.length acc - 1 do
      let s = Char.code (Bytes.unsafe_get src i) in
      if s <> 0 then
        Bytes.unsafe_set acc i
          (Char.unsafe_chr
             (Char.code (Bytes.unsafe_get acc i)
             lxor exp_table.(lc + log_table.(s))))
    done
  end

let source_blocks ~m ~s file =
  Array.init m (fun j ->
      let b = Bytes.make s '\000' in
      let off = j * s in
      let len = min s (Bytes.length file - off) in
      if len > 0 then Bytes.blit file off b 0 len;
      b)

let baseline_disperse ~matrix ~m ~n file =
  let s = (Bytes.length file + m - 1) / m in
  let blocks = source_blocks ~m ~s file in
  Array.init n (fun i ->
      let data = Bytes.make s '\000' in
      for j = 0 to m - 1 do
        baseline_axpy ~acc:data ~coeff:(Matrix.get matrix i j) ~src:blocks.(j)
      done;
      (i, data))

let baseline_reconstruct ~matrix ~m ~length pieces =
  let indices = Array.map fst pieces in
  let inv =
    match Matrix.invert (Matrix.select_rows matrix indices) with
    | Some inv -> inv
    | None -> assert false
  in
  let s = Bytes.length (snd pieces.(0)) in
  let out = Bytes.create length in
  let block = Bytes.create s in
  for j = 0 to m - 1 do
    Bytes.fill block 0 s '\000';
    for k = 0 to m - 1 do
      baseline_axpy ~acc:block ~coeff:(Matrix.get inv j k) ~src:(snd pieces.(k))
    done;
    let off = j * s in
    let len = min s (length - off) in
    if len > 0 then Bytes.blit block 0 out off len
  done;
  out

(* ---------------- frozen v1 comparator: per-row wide-table kernel -------- *)

(* The pre-engine disperse path, kept as a fixed comparator: one
   wide-table [encode_row_strided] sweep per output row of a
   non-systematic Vandermonde matrix (every row pays the full GF(256)
   sweep -- no systematic blits, no SWAR lanes, no parallel tasks). The
   engine's speedup over THIS is the gated number, so it must never be
   "improved". *)
let v1_row_coeffs ~matrix ~m ~n =
  Array.init n (fun i -> Array.init m (fun j -> Matrix.get matrix i j))

let v1_disperse ~rows ~m ~n file =
  let len = Bytes.length file in
  let s = (len + m - 1) / m in
  let src =
    if m * s = len then file
    else begin
      let b = Bytes.make (m * s) '\000' in
      Bytes.blit file 0 b 0 len;
      b
    end
  in
  Array.init n (fun i ->
      let data = Bytes.create s in
      Gf256.encode_row_strided ~dst:data ~coeffs:rows.(i) ~src ~stride:s;
      (i, data))

(* ---------------- fixed-work harness ---------------- *)

let time_budget = ref 0.25
let min_reps = 3

(* Repeat [f] until the budget is spent; MB/s over [bytes] per call. *)
let throughput ~bytes f =
  ignore (f ());
  (* warm-up + correctness-path *)
  let t0 = Unix.gettimeofday () in
  let reps = ref 0 in
  let elapsed = ref 0.0 in
  while !reps < min_reps || !elapsed < !time_budget do
    ignore (Sys.opaque_identity (f ()));
    incr reps;
    elapsed := Unix.gettimeofday () -. t0
  done;
  float_of_int (!reps * bytes) /. !elapsed /. 1e6

type cell = {
  op : string;
  impl : string;
  m : int;
  n : int;
  size : int;
  domains : int;
  mb_per_s : float;
}

(* One grid point, with everything the measurement closures need
   prebuilt (matrices, contexts, a coded-heavy subset for
   reconstruction). *)
type config = {
  cm : int;
  cn : int;
  csize : int;
  cmatrix : Matrix.t;
  cida : Ida.t;
  cv1_rows : Gf256.t array array;
  cfile : Bytes.t;
  ckeep_list : Ida.piece list;
  ckeep_pairs : (int * Bytes.t) array;
}

let iter_grid ~quick f =
  let ms = if quick then [ 8 ] else [ 4; 8; 16 ] in
  let rs = if quick then [ 0; 2 ] else [ 0; 2; 4 ] in
  let sizes = if quick then [ 4096; 65536 ] else [ 4096; 65536; 1048576 ] in
  List.iter
    (fun m ->
      let matrix = Matrix.vandermonde ~rows:255 ~cols:m in
      let ida = Ida.create ~m in
      List.iter
        (fun r ->
          let n = m + r in
          let v1_rows = v1_row_coeffs ~matrix ~m ~n in
          List.iter
            (fun size ->
              let file = Bytes.init size (fun i -> Char.chr ((i * 131) land 0xff)) in
              let dispersed = Ida.disperse ida ~n file in
              (* Coded-heavy subset so reconstruction pays the kernel, not
                 just systematic blits. *)
              let keep =
                Array.init m (fun j -> dispersed.((j + (n - m)) mod n))
              in
              f
                {
                  cm = m;
                  cn = n;
                  csize = size;
                  cmatrix = matrix;
                  cida = ida;
                  cv1_rows = v1_rows;
                  cfile = file;
                  ckeep_list = Array.to_list keep;
                  ckeep_pairs =
                    Array.map (fun p -> (p.Ida.index, p.Ida.data)) keep;
                })
            sizes)
        rs)
    ms

(* Two passes: every 1-domain cell is measured before any pool domain is
   spawned. Parked domains are not free — each minor collection is a
   stop-the-world handshake across all domains, which on a small runner
   taxes allocation-heavy single-domain loops by large factors — so the
   sequential numbers must be taken in a single-domain process state. *)
let run_grid ~quick =
  let cells = ref [] in
  let record c = cells := c :: !cells in
  iter_grid ~quick (fun c ->
      let mk op impl domains mb =
        record
          { op; impl; m = c.cm; n = c.cn; size = c.csize; domains; mb_per_s = mb }
      in
      mk "disperse" "baseline" 1
        (throughput ~bytes:c.csize (fun () ->
             baseline_disperse ~matrix:c.cmatrix ~m:c.cm ~n:c.cn c.cfile));
      mk "disperse" "table" 1
        (throughput ~bytes:c.csize (fun () ->
             v1_disperse ~rows:c.cv1_rows ~m:c.cm ~n:c.cn c.cfile));
      mk "disperse" "engine" 1
        (throughput ~bytes:c.csize (fun () -> Ida.disperse c.cida ~n:c.cn c.cfile));
      mk "reconstruct" "baseline" 1
        (throughput ~bytes:c.csize (fun () ->
             baseline_reconstruct ~matrix:c.cmatrix ~m:c.cm ~length:c.csize
               c.ckeep_pairs));
      mk "reconstruct" "engine" 1
        (throughput ~bytes:c.csize (fun () ->
             Ida.reconstruct c.cida ~length:c.csize c.ckeep_list)));
  let pool = Pool.create ~domains:4 () in
  let pool_domains = Pool.size pool in
  iter_grid ~quick (fun c ->
      let mk op impl domains mb =
        record
          { op; impl; m = c.cm; n = c.cn; size = c.csize; domains; mb_per_s = mb }
      in
      mk "disperse" "engine" pool_domains
        (throughput ~bytes:c.csize (fun () ->
             Ida.disperse ~pool c.cida ~n:c.cn c.cfile));
      mk "reconstruct" "engine" pool_domains
        (throughput ~bytes:c.csize (fun () ->
             Ida.reconstruct ~pool c.cida ~length:c.csize c.ckeep_list)));
  Pool.shutdown pool;
  (pool_domains, List.rev !cells)

(* ---------------- JSON output ---------------- *)

let find cells ~op ~impl ~m ~n ~size ~domains =
  List.find_opt
    (fun c ->
      c.op = op && c.impl = impl && c.m = m && c.n = n && c.size = size
      && c.domains = domains)
    cells

type headline = {
  table_over_baseline : float;
  engine_over_baseline : float;
  engine_over_table : float;
  sys_engine_over_table : float; (* r=0: the systematic-prefix fast path *)
  scaling : float; (* engine pool-domains over engine 1-domain *)
}

let headline cells ~pool_domains =
  (* The acceptance configuration: m=8, 64 KiB, at r=2 (the
     fault-tolerant shape, where the engine still pays the SWAR sweep
     for the coded rows) and at r=0 (pure systematic prefix: dispersal
     degenerates to blits). *)
  let pick ?(n = 10) impl domains =
    find cells ~op:"disperse" ~impl ~m:8 ~n ~size:65536 ~domains
  in
  match
    ( pick "baseline" 1,
      pick "table" 1,
      pick "engine" 1,
      pick "engine" pool_domains,
      pick ~n:8 "table" 1,
      pick ~n:8 "engine" 1 )
  with
  | Some b, Some t1, Some e1, Some en, Some st, Some se ->
      Some
        {
          table_over_baseline = t1.mb_per_s /. b.mb_per_s;
          engine_over_baseline = e1.mb_per_s /. b.mb_per_s;
          engine_over_table = e1.mb_per_s /. t1.mb_per_s;
          sys_engine_over_table = se.mb_per_s /. st.mb_per_s;
          scaling = en.mb_per_s /. e1.mb_per_s;
        }
  | _ -> None

let write_json ~path ~quick ~pool_domains cells =
  let oc = open_out path in
  let out fmt = Printf.fprintf oc fmt in
  out "{\n";
  out "  \"bench\": \"codec\",\n";
  out "  \"mode\": \"%s\",\n" (if quick then "quick" else "full");
  out "  \"metrics\": %b,\n" (Pindisk_obs.Control.enabled ());
  out "  \"recommended_domains\": %d,\n" (Domain.recommended_domain_count ());
  out "  \"pool_domains\": %d,\n" pool_domains;
  (* The scaling gate only binds on runners that can actually run the
     pool's domains in parallel; a single-core runner measures ~1.0x by
     construction and must not fail CI for it. *)
  out "  \"parallel_capable\": %d,\n"
    (if Domain.recommended_domain_count () >= 4 then 1 else 0);
  (match headline cells ~pool_domains with
  | Some h ->
      out "  \"disperse_m8_64KiB_table_over_baseline\": %.2f,\n"
        h.table_over_baseline;
      out "  \"disperse_m8_64KiB_engine_over_baseline\": %.2f,\n"
        h.engine_over_baseline;
      out "  \"disperse_m8_64KiB_engine_over_table\": %.2f,\n"
        h.engine_over_table;
      out "  \"disperse_m8n8_64KiB_engine_over_table\": %.2f,\n"
        h.sys_engine_over_table;
      out "  \"disperse_m8_64KiB_scaling_4dom_over_1dom\": %.2f,\n" h.scaling
  | None -> ());
  out "  \"results\": [\n";
  List.iteri
    (fun i c ->
      out
        "    {\"op\": \"%s\", \"impl\": \"%s\", \"m\": %d, \"n\": %d, \
         \"size\": %d, \"domains\": %d, \"mb_per_s\": %.1f}%s\n"
        c.op c.impl c.m c.n c.size c.domains c.mb_per_s
        (if i = List.length cells - 1 then "" else ","))
    cells;
  out "  ]\n}\n";
  close_out oc

(* ---------------- bechamel micro-benchmarks of the raw kernels ---------------- *)

let micro () =
  let open Bechamel in
  let size = 65536 in
  let src = Bytes.init size (fun i -> Char.chr ((i * 7) land 0xff)) in
  let acc = Bytes.create size in
  let srcs = Array.init 8 (fun j -> Bytes.init (size / 8) (fun i -> Char.chr ((i + j) land 0xff))) in
  let coeffs = Array.init 8 (fun j -> j + 2) in
  let dst = Bytes.create (size / 8) in
  let l4 =
    Gf256.lanes
      (Array.init 4 (fun r ->
           Array.init 8 (fun j -> ((((r * 8) + j) * 37) + 1) land 0xff)))
  in
  let dsts4 = Array.init 4 (fun _ -> Bytes.create (size / 8)) in
  let tests =
    Test.make_grouped ~name:"codec"
      [
        Test.make ~name:"axpy-seed 64KiB"
          (Staged.stage (fun () -> baseline_axpy ~acc ~coeff:0x53 ~src));
        Test.make ~name:"axpy-table 64KiB"
          (Staged.stage (fun () -> Gf256.axpy ~acc ~coeff:0x53 ~src));
        Test.make ~name:"mul_into 64KiB"
          (Staged.stage (fun () -> Gf256.mul_into ~dst:acc ~coeff:0x53 ~src));
        Test.make ~name:"encode_row m=8 8KiB"
          (Staged.stage (fun () -> Gf256.encode_row ~dst ~coeffs ~srcs));
        Test.make ~name:"encode_lanes 4x8 8KiB"
          (Staged.stage (fun () ->
               Gf256.encode_lanes l4 ~dsts:dsts4 ~src ~stride:(size / 8)
                 ~pos:0 ~len:(size / 8)));
      ]
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.25) () in
  let raw = Benchmark.all cfg instances tests in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  Hashtbl.iter
    (fun name ols_result ->
      match Analyze.OLS.estimates ols_result with
      | Some [ est ] -> Format.printf "  %-28s %12.0f ns/run@." name est
      | _ -> Format.printf "  %-28s (no estimate)@." name)
    results

let run () =
  let quick = Sys.getenv_opt "PINDISK_CODEC_QUICK" <> None in
  if quick then time_budget := 0.3;
  Format.printf "== E20 / codec engine: SWAR lanes + systematic prefix + domain pool ==@.";
  let pool_domains, cells = run_grid ~quick in
  Format.printf "  %-12s %-9s m=%-3s n=%-3s %-9s dom %-3s MB/s@." "op" "impl"
    "" "" "size" "";
  List.iter
    (fun c ->
      Format.printf "  %-12s %-9s m=%-3d n=%-3d %-9d dom %-3d %.1f@." c.op
        c.impl c.m c.n c.size c.domains c.mb_per_s)
    cells;
  (match headline cells ~pool_domains with
  | Some h ->
      Format.printf
        "  headline (disperse m=8 n=10 64KiB): engine/v1-table %.2fx, \
         engine/seed %.2fx, v1-table/seed %.2fx, %d-domain/1-domain %.2fx; \
         systematic n=8: engine/v1-table %.2fx@."
        h.engine_over_table h.engine_over_baseline h.table_over_baseline
        pool_domains h.scaling h.sys_engine_over_table
  | None -> ());
  (* PINDISK_CODEC_OUT redirects the artifact so the metrics-overhead run
     (`make bench-obs`, PINDISK_METRICS=1) does not clobber the baseline
     BENCH_codec.json numbers. *)
  let path =
    Option.value
      (Sys.getenv_opt "PINDISK_CODEC_OUT")
      ~default:"BENCH_codec.json"
  in
  write_json ~path ~quick ~pool_domains cells;
  Format.printf "  wrote %s (metrics %s)@." path
    (if Pindisk_obs.Control.enabled () then "enabled" else "disabled");
  micro ();
  Format.printf "@."
