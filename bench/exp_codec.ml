(* E20 -- codec engine throughput: the table-driven GF(256) kernels and
   the domain-parallel IDA paths against a faithful copy of the seed
   implementation (log/exp lookups with a zero-branch per byte, one axpy
   sweep per matrix coefficient).

   A fixed-work harness repeats each operation until a time budget is
   spent and reports MB/s over the file bytes processed; results land in
   BENCH_codec.json (schema below) so the speedup trajectory is recorded
   alongside the paper tables. Bechamel micro-benchmarks of the raw
   kernels run at the end.

   Quick mode (PINDISK_CODEC_QUICK=1, used by CI and `make bench-codec`)
   trims the grid to the headline configurations. *)

module Gf256 = Pindisk_gf256.Gf256
module Matrix = Pindisk_gf256.Matrix
module Ida = Pindisk_ida.Ida
module Pool = Pindisk_util.Pool

(* ---------------- baseline: the seed codec, kept verbatim ---------------- *)

(* Rebuilt from the public exp/log so the baseline shares no bulk kernel
   with the code under test. *)
let exp_table =
  Array.init 510 (fun k -> Gf256.exp (k mod 255))

let log_table =
  Array.init 256 (fun x -> if x = 0 then 0 else Gf256.log x)

let baseline_axpy ~acc ~coeff ~src =
  let coeff = coeff land 0xff in
  if coeff <> 0 then begin
    let lc = log_table.(coeff) in
    for i = 0 to Bytes.length acc - 1 do
      let s = Char.code (Bytes.unsafe_get src i) in
      if s <> 0 then
        Bytes.unsafe_set acc i
          (Char.unsafe_chr
             (Char.code (Bytes.unsafe_get acc i)
             lxor exp_table.(lc + log_table.(s))))
    done
  end

let source_blocks ~m ~s file =
  Array.init m (fun j ->
      let b = Bytes.make s '\000' in
      let off = j * s in
      let len = min s (Bytes.length file - off) in
      if len > 0 then Bytes.blit file off b 0 len;
      b)

let baseline_disperse ~matrix ~m ~n file =
  let s = (Bytes.length file + m - 1) / m in
  let blocks = source_blocks ~m ~s file in
  Array.init n (fun i ->
      let data = Bytes.make s '\000' in
      for j = 0 to m - 1 do
        baseline_axpy ~acc:data ~coeff:(Matrix.get matrix i j) ~src:blocks.(j)
      done;
      (i, data))

let baseline_reconstruct ~matrix ~m ~length pieces =
  let indices = Array.map fst pieces in
  let inv =
    match Matrix.invert (Matrix.select_rows matrix indices) with
    | Some inv -> inv
    | None -> assert false
  in
  let s = Bytes.length (snd pieces.(0)) in
  let out = Bytes.create length in
  let block = Bytes.create s in
  for j = 0 to m - 1 do
    Bytes.fill block 0 s '\000';
    for k = 0 to m - 1 do
      baseline_axpy ~acc:block ~coeff:(Matrix.get inv j k) ~src:(snd pieces.(k))
    done;
    let off = j * s in
    let len = min s (length - off) in
    if len > 0 then Bytes.blit block 0 out off len
  done;
  out

(* ---------------- fixed-work harness ---------------- *)

let time_budget = ref 0.25
let min_reps = 3

(* Repeat [f] until the budget is spent; MB/s over [bytes] per call. *)
let throughput ~bytes f =
  ignore (f ());
  (* warm-up + correctness-path *)
  let t0 = Unix.gettimeofday () in
  let reps = ref 0 in
  let elapsed = ref 0.0 in
  while !reps < min_reps || !elapsed < !time_budget do
    ignore (Sys.opaque_identity (f ()));
    incr reps;
    elapsed := Unix.gettimeofday () -. t0
  done;
  float_of_int (!reps * bytes) /. !elapsed /. 1e6

type cell = {
  op : string;
  impl : string;
  m : int;
  n : int;
  size : int;
  domains : int;
  mb_per_s : float;
}

let run_grid ~quick ~pool =
  let ms = if quick then [ 8 ] else [ 4; 8; 16 ] in
  let rs = if quick then [ 0; 2 ] else [ 0; 2; 4 ] in
  let sizes = if quick then [ 4096; 65536 ] else [ 4096; 65536; 1048576 ] in
  let cells = ref [] in
  let record c = cells := c :: !cells in
  List.iter
    (fun m ->
      let matrix = Matrix.vandermonde ~rows:255 ~cols:m in
      let ida = Ida.create ~m in
      List.iter
        (fun r ->
          let n = m + r in
          List.iter
            (fun size ->
              let file = Bytes.init size (fun i -> Char.chr ((i * 131) land 0xff)) in
              let dispersed = Ida.disperse ida ~n file in
              let keep = Array.sub dispersed 0 m in
              let keep_list = Array.to_list keep in
              let keep_pairs = Array.map (fun p -> (p.Ida.index, p.Ida.data)) keep in
              let mk op impl domains mb =
                record { op; impl; m; n; size; domains; mb_per_s = mb }
              in
              mk "disperse" "baseline" 1
                (throughput ~bytes:size (fun () ->
                     baseline_disperse ~matrix ~m ~n file));
              mk "disperse" "table" 1
                (throughput ~bytes:size (fun () -> Ida.disperse ida ~n file));
              mk "disperse" "table" (Pool.size pool)
                (throughput ~bytes:size (fun () ->
                     Ida.disperse ~pool ida ~n file));
              mk "reconstruct" "baseline" 1
                (throughput ~bytes:size (fun () ->
                     baseline_reconstruct ~matrix ~m ~length:size keep_pairs));
              mk "reconstruct" "table" 1
                (throughput ~bytes:size (fun () ->
                     Ida.reconstruct ida ~length:size keep_list));
              mk "reconstruct" "table" (Pool.size pool)
                (throughput ~bytes:size (fun () ->
                     Ida.reconstruct ~pool ida ~length:size keep_list)))
            sizes)
        rs)
    ms;
  List.rev !cells

(* ---------------- JSON output ---------------- *)

let find cells ~op ~impl ~m ~n ~size ~domains =
  List.find_opt
    (fun c ->
      c.op = op && c.impl = impl && c.m = m && c.n = n && c.size = size
      && c.domains = domains)
    cells

let headline cells ~pool_domains =
  (* The acceptance configuration: m=8, r=2, 64 KiB. *)
  let pick impl domains =
    find cells ~op:"disperse" ~impl ~m:8 ~n:10 ~size:65536 ~domains
  in
  match (pick "baseline" 1, pick "table" 1, pick "table" pool_domains) with
  | Some b, Some t1, Some tn ->
      Some (t1.mb_per_s /. b.mb_per_s, tn.mb_per_s /. t1.mb_per_s)
  | _ -> None

let write_json ~path ~quick ~pool_domains cells =
  let oc = open_out path in
  let out fmt = Printf.fprintf oc fmt in
  out "{\n";
  out "  \"bench\": \"codec\",\n";
  out "  \"mode\": \"%s\",\n" (if quick then "quick" else "full");
  out "  \"metrics\": %b,\n" (Pindisk_obs.Control.enabled ());
  out "  \"recommended_domains\": %d,\n" (Domain.recommended_domain_count ());
  out "  \"pool_domains\": %d,\n" pool_domains;
  (match headline cells ~pool_domains with
  | Some (speedup, scaling) ->
      out "  \"disperse_m8_64KiB_table_over_baseline\": %.2f,\n" speedup;
      out "  \"disperse_m8_64KiB_scaling_%ddom_over_1dom\": %.2f,\n" pool_domains
        scaling
  | None -> ());
  out "  \"results\": [\n";
  List.iteri
    (fun i c ->
      out
        "    {\"op\": \"%s\", \"impl\": \"%s\", \"m\": %d, \"n\": %d, \
         \"size\": %d, \"domains\": %d, \"mb_per_s\": %.1f}%s\n"
        c.op c.impl c.m c.n c.size c.domains c.mb_per_s
        (if i = List.length cells - 1 then "" else ","))
    cells;
  out "  ]\n}\n";
  close_out oc

(* ---------------- bechamel micro-benchmarks of the raw kernels ---------------- *)

let micro () =
  let open Bechamel in
  let size = 65536 in
  let src = Bytes.init size (fun i -> Char.chr ((i * 7) land 0xff)) in
  let acc = Bytes.create size in
  let srcs = Array.init 8 (fun j -> Bytes.init (size / 8) (fun i -> Char.chr ((i + j) land 0xff))) in
  let coeffs = Array.init 8 (fun j -> j + 2) in
  let dst = Bytes.create (size / 8) in
  let tests =
    Test.make_grouped ~name:"codec"
      [
        Test.make ~name:"axpy-seed 64KiB"
          (Staged.stage (fun () -> baseline_axpy ~acc ~coeff:0x53 ~src));
        Test.make ~name:"axpy-table 64KiB"
          (Staged.stage (fun () -> Gf256.axpy ~acc ~coeff:0x53 ~src));
        Test.make ~name:"mul_into 64KiB"
          (Staged.stage (fun () -> Gf256.mul_into ~dst:acc ~coeff:0x53 ~src));
        Test.make ~name:"encode_row m=8 8KiB"
          (Staged.stage (fun () -> Gf256.encode_row ~dst ~coeffs ~srcs));
      ]
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.25) () in
  let raw = Benchmark.all cfg instances tests in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  Hashtbl.iter
    (fun name ols_result ->
      match Analyze.OLS.estimates ols_result with
      | Some [ est ] -> Format.printf "  %-28s %12.0f ns/run@." name est
      | _ -> Format.printf "  %-28s (no estimate)@." name)
    results

let run () =
  let quick = Sys.getenv_opt "PINDISK_CODEC_QUICK" <> None in
  if quick then time_budget := 0.3;
  Format.printf "== E20 / codec engine: table-driven GF(256) + domain pool ==@.";
  let pool = Pool.create ~domains:4 () in
  let pool_domains = Pool.size pool in
  let cells = run_grid ~quick ~pool in
  Pool.shutdown pool;
  Format.printf "  %-12s %-9s m=%-3s n=%-3s %-9s dom %-3s MB/s@." "op" "impl"
    "" "" "size" "";
  List.iter
    (fun c ->
      Format.printf "  %-12s %-9s m=%-3d n=%-3d %-9d dom %-3d %.1f@." c.op
        c.impl c.m c.n c.size c.domains c.mb_per_s)
    cells;
  (match headline cells ~pool_domains with
  | Some (speedup, scaling) ->
      Format.printf
        "  headline (disperse m=8 n=10 64KiB): table/baseline %.2fx, \
         %d-domain/1-domain %.2fx@."
        speedup pool_domains scaling
  | None -> ());
  (* PINDISK_CODEC_OUT redirects the artifact so the metrics-overhead run
     (`make bench-obs`, PINDISK_METRICS=1) does not clobber the baseline
     BENCH_codec.json numbers. *)
  let path =
    Option.value
      (Sys.getenv_opt "PINDISK_CODEC_OUT")
      ~default:"BENCH_codec.json"
  in
  write_json ~path ~quick ~pool_domains cells;
  Format.printf "  wrote %s (metrics %s)@." path
    (if Pindisk_obs.Control.enabled () then "enabled" else "disabled");
  micro ();
  Format.printf "@."
