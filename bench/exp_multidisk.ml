(* E11 -- the classic frequency-based broadcast disk (Acharya et al.) vs
   the paper's pinwheel construction.

   The classic construction assigns frequencies by POPULARITY (it
   minimizes mean latency); the paper's assigns them by DEADLINE. The two
   disagree exactly when an unpopular file is urgent -- the emergency
   alert nobody reads until it matters. *)

module Program = Pindisk.Program
module Multidisk = Pindisk.Multidisk
module File_spec = Pindisk.File_spec

let run () =
  Format.printf
    "== E11 / classic multi-disk (popularity-driven) vs pinwheel \
     (deadline-driven) ==@.";
  (* Popularity: news >> archive >> alerts. Deadlines: alerts 8 slots,
     news 16, archive 32. *)
  let classic =
    Multidisk.program
      [
        { Multidisk.frequency = 2; files = [ (1, 4) ] } (* news: popular *);
        { Multidisk.frequency = 1; files = [ (0, 2); (2, 8) ] }
        (* alerts and archive: unpopular, slow disk *);
      ]
  in
  let files =
    [
      File_spec.make ~name:"alerts" ~id:0 ~blocks:2 ~latency:8 ();
      File_spec.make ~name:"news" ~id:1 ~blocks:4 ~latency:16 ();
      File_spec.make ~name:"archive" ~id:2 ~blocks:8 ~latency:32 ();
    ]
  in
  let pin =
    match Program.pinwheel ~bandwidth:1 files with
    | Some p -> p
    | None -> failwith "pinwheel program expected"
  in
  Format.printf "  %-9s %9s | %-23s | %-23s@." "" "" "classic multi-disk"
    "pinwheel (this paper)";
  Format.printf "  %-9s %9s | %9s %13s | %9s %13s@." "file" "deadline"
    "mean-next" "worst (ok?)" "mean-next" "worst (ok?)";
  List.iter
    (fun f ->
      let id = f.File_spec.id in
      let deadline = f.File_spec.latency in
      let row p =
        let mean = Option.get (Multidisk.expected_delay p id) in
        let worst = Option.get (Multidisk.worst_case_retrieval_error_free p id) in
        (mean, worst, if worst <= deadline then "ok" else "MISS")
      in
      let cm, cw, cok = row classic and pm, pw, pok = row pin in
      Format.printf "  %-9s %9d | %9.1f %8d (%s) | %9.1f %8d (%s)@."
        f.File_spec.name deadline cm cw cok pm pw pok)
    files;
  Format.printf
    "  (the classic farm gives its popular file a great mean but parks \
     the urgent@.   'alerts' file on the slow disk: worst case = the full \
     major cycle, blowing@.   the 8-slot deadline. The pinwheel program \
     is built from the deadlines and@.   meets all of them -- the gap \
     this paper's construction closes.)@.@."
