(* E5 -- the paper's worked Examples 2-6 (Section 4.2): densities of the
   nice pinwheel conjuncts produced by the transformation rules, paper vs
   this implementation. *)

module Bc = Pindisk_algebra.Bc
module Convert = Pindisk_algebra.Convert
module Q = Pindisk_util.Q

type example = {
  name : string;
  bc : Bc.t;
  paper_tr1 : float option;
  paper_best : float;
  paper_optimal : bool;
}

let examples =
  [
    {
      name = "Ex2: bc(5,[100;105;110;115;120])";
      bc = Bc.make ~file:0 ~m:5 ~d:[ 100; 105; 110; 115; 120 ];
      paper_tr1 = Some 0.0769;
      paper_best = 0.0769;
      paper_optimal = false;
    };
    {
      name = "Ex3: bc(6,[105;110])";
      bc = Bc.make ~file:0 ~m:6 ~d:[ 105; 110 ];
      paper_tr1 = Some 0.06667;
      paper_best = 0.0662;
      paper_optimal = false;
    };
    {
      name = "Ex4: bc(4,[8;9])";
      bc = Bc.make ~file:0 ~m:4 ~d:[ 8; 9 ];
      paper_tr1 = Some 1.0;
      paper_best = 0.6;
      paper_optimal = false;
    };
    {
      name = "Ex5: bc(2,[5;6;6])";
      bc = Bc.make ~file:0 ~m:2 ~d:[ 5; 6; 6 ];
      paper_tr1 = None;
      paper_best = 2.0 /. 3.0;
      paper_optimal = true;
    };
    {
      name = "Ex6: bc(1,[2;3])";
      bc = Bc.make ~file:0 ~m:1 ~d:[ 2; 3 ];
      paper_tr1 = None;
      paper_best = 2.0 /. 3.0;
      paper_optimal = true;
    };
  ]

let run () =
  Format.printf
    "== E5 / Examples 2-6: pinwheel-algebra conversion densities ==@.";
  Format.printf "  %-34s %8s %8s %8s %8s | %8s %8s %7s@." "broadcast condition"
    "lower" "TR1" "TR2" "best" "paper" "ours/papr" "winner";
  List.iter
    (fun e ->
      let lb = Q.to_float (Bc.density_lower_bound e.bc) in
      let tr1 = Q.to_float (Convert.density (Convert.tr1 e.bc)) in
      let tr2 = Q.to_float (Convert.density (Convert.tr2 e.bc)) in
      let label, best = Convert.best e.bc in
      let bestd = Q.to_float (Convert.density best) in
      Format.printf "  %-34s %8.4f %8.4f %8.4f %8.4f | %8.4f %8.3f %7s@." e.name
        lb tr1 tr2 bestd e.paper_best (bestd /. e.paper_best) label)
    examples;
  Format.printf
    "  (ours/papr <= 1 everywhere: the implementation reproduces or beats \
     every@.   worked example. Ex4: the single-condition search finds \
     pc(5,9) = 5/9,@.   hitting the density lower bound the paper stops \
     0.044 above.)@.@.";
  (* The paper's note that the lower bound is not always achievable:
     bc(2,[5;7]) has bound 3/7 but no nice conjunct of that density. *)
  let hard = Bc.make ~file:0 ~m:2 ~d:[ 5; 7 ] in
  let _, best = Convert.best hard in
  Format.printf
    "  Paper's unachievability note, bc(2,[5;7]): lower bound %s, best \
     found %s (> bound, as predicted).@.@."
    (Q.to_string (Bc.density_lower_bound hard))
    (Q.to_string (Convert.density best))
