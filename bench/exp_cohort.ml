(* E23 -- cohort scale: million-client populations by weighted classes.

   The cohort engine collapses a client population into (file, phase,
   needed, deadline) equivalence classes: one analytic fold (memoryless
   faults) or one member sweep (correlated faults) per class, instead of
   one dispatcher pass per client. This harness measures what that buys
   on a 16-file dyadic broadcast system:

     - analytic population throughput: a zipf-apportioned closed-form
       population (classes spanning every file x 16 phases) folded under
       Bernoulli loss, in simulated clients per wall-second on a single
       domain. The acceptance floor is 10^6 clients/core/period.
     - sampled population throughput: the same classes forced through
       per-member seeded sampling (the Burst path's cost model).
     - an in-bench equivalence spot-check: sampled-fault Cohort.run must
       reproduce Drive.run's Engine.result byte-for-byte on a ycsb trace
       (several fault models and seeds); the gate fails if they ever
       diverge.
     - the trace-mode collapse ratio against Drive.run, reported for
       context but not gated (both are single-pass already; the win is
       shared warm-up, not asymptotics).

   Results land in BENCH_cohort.json; scripts/bench_gate.ml gates the
   floors (`--kind cohort`). Raw throughput is floor-gated only, never
   compared against the committed baseline: it is hardware-dependent,
   and the baseline comparison would punish slow runners for honesty.

   Quick mode (PINDISK_COHORT_QUICK=1, used by CI and
   `make bench-cohort`) shrinks the population and the time budget. *)

module Task = Pindisk_pinwheel.Task
module Plan = Pindisk_pinwheel.Plan
module Scheduler = Pindisk_pinwheel.Scheduler
module Program = Pindisk.Program
module Workload = Pindisk_sim.Workload
module Fault = Pindisk_sim.Fault
module Drive = Pindisk_sim.Drive
module Cohort = Pindisk_sim.Cohort
module Engine = Pindisk_sim.Engine
module Cache = Pindisk_sim.Cache

let time_budget = ref 0.2

let mean_ns f =
  ignore (Sys.opaque_identity (f ()));
  let t0 = Unix.gettimeofday () in
  let reps = ref 0 in
  let elapsed = ref 0.0 in
  while !reps < 2 || !elapsed < !time_budget do
    ignore (Sys.opaque_identity (f ()));
    incr reps;
    elapsed := Unix.gettimeofday () -. t0
  done;
  !elapsed *. 1e9 /. float_of_int !reps

(* A 16-file dyadic broadcast system, density 1/8: four hot files at
   window 64, four warm at 128, eight cold at 256. Period 256. *)
let system () =
  List.init 16 (fun i ->
      Task.unit ~id:i ~b:(if i < 4 then 64 else if i < 8 then 128 else 256))

let capacities = List.init 16 (fun i -> (i, if i < 4 then 8 else if i < 8 then 4 else 2))
let needed_of f = if f < 4 then 4 else if f < 8 then 2 else 1
let deadline_of f = if f < 4 then 300 else 400

(* Zipf-apportioned closed-form population: every file at 16 phases
   spread across the period, weights proportional to zipf(0.9) file
   popularity, totalling ~[clients]. *)
let population ~period ~clients =
  let weights = Cache.zipf_weights ~n:16 ~theta:0.9 in
  let phases = 16 in
  List.concat_map
    (fun f ->
      let per_class =
        max 1
          (int_of_float
             (weights.(f) *. float_of_int clients /. float_of_int phases))
      in
      List.init phases (fun i ->
          {
            Cohort.key =
              {
                Cohort.file = f;
                phase = i * (period / phases);
                needed = needed_of f;
                deadline = deadline_of f;
              };
            weight = per_class;
          }))
    (List.init 16 Fun.id)

(* A trace that actually collapses: 16 files x 8 phases = 128 classes
   regardless of length. *)
let collapsible_trace n =
  List.init n (fun k ->
      let file = k mod 16 in
      {
        Workload.issued = (k mod 8) + (256 * (k mod 40));
        file;
        needed = needed_of file;
        deadline = deadline_of file;
      })

let run () =
  let quick = Sys.getenv_opt "PINDISK_COHORT_QUICK" <> None in
  if quick then time_budget := 0.1;
  Format.printf "== E23 / cohort scale: weighted classes vs per-client drive ==@.";
  let plan =
    match Scheduler.plan (system ()) with
    | Some p -> p
    | None -> failwith "exp_cohort: density-1/8 system schedules"
  in
  let period = Plan.period plan in
  let prep = Drive.prepare plan in
  let program = Program.make ~schedule:(Plan.to_schedule plan) ~capacities in
  (* --- analytic population throughput ----------------------------- *)
  let clients = if quick then 2_000_000 else 20_000_000 in
  let classes = population ~period ~clients in
  let total =
    List.fold_left (fun acc (c : Cohort.cls) -> acc + c.Cohort.weight) 0 classes
  in
  let model = Cohort.Bernoulli { p = 0.1 } in
  let analytic_ns =
    mean_ns (fun () ->
        Cohort.run_population ~prep ~plan ~capacities ~model ~seed:1 classes)
  in
  let analytic_clients_per_sec = float_of_int total *. 1e9 /. analytic_ns in
  (* --- sampled population throughput ------------------------------ *)
  let sampled_clients = if quick then 50_000 else 200_000 in
  let sampled_pop = population ~period ~clients:sampled_clients in
  let sampled_total =
    List.fold_left
      (fun acc (c : Cohort.cls) -> acc + c.Cohort.weight)
      0 sampled_pop
  in
  let sampled_ns =
    mean_ns (fun () ->
        Cohort.run_population ~sampled:true ~prep ~plan ~capacities ~model
          ~seed:1 sampled_pop)
  in
  let sampled_clients_per_sec =
    float_of_int sampled_total *. 1e9 /. sampled_ns
  in
  (* --- equivalence spot-check: Cohort.run == Drive.run ------------ *)
  let ycsb_trace =
    Workload.ycsb ~program ~rate:0.05
      ~popularity:(Workload.Zipfian { theta = 0.9 })
      ~arrivals:(Workload.Diurnal { period = 512; trough = 0.2 })
      ~needed_of ~deadline_of ~horizon:2000 ~seed:23
  in
  let faults =
    [
      (fun ~seed -> Fault.bernoulli ~p:0.2 ~seed);
      (fun ~seed ->
        Fault.burst ~p_good_to_bad:0.1 ~p_bad_to_good:0.3 ~loss_good:0.02
          ~loss_bad:0.5 ~seed);
    ]
  in
  let render r = Format.asprintf "%a" Engine.pp_result r in
  let equal =
    List.for_all
      (fun fault ->
        List.for_all
          (fun seed ->
            render (Drive.run ~prep ~plan ~capacities ~fault ~seed ycsb_trace)
            = render
                (Cohort.run ~prep ~plan ~capacities ~fault ~seed ycsb_trace))
          [ 1; 2; 3 ])
      faults
  in
  (* --- trace-mode collapse vs the per-client drive ---------------- *)
  let trace = collapsible_trace (if quick then 2000 else 8000) in
  let nclasses = List.length (Cohort.classes_of_trace ~period trace) in
  let fault ~seed = Fault.bernoulli ~p:0.1 ~seed in
  let drive_ns =
    mean_ns (fun () -> Drive.run ~prep ~plan ~capacities ~fault ~seed:1 trace)
  in
  let cohort_ns =
    mean_ns (fun () -> Cohort.run ~prep ~plan ~capacities ~fault ~seed:1 trace)
  in
  Format.printf
    "  population %d clients in %d classes: analytic %.2e clients/s, \
     sampled %.2e clients/s@."
    total (List.length classes) analytic_clients_per_sec
    sampled_clients_per_sec;
  Format.printf
    "  equivalence spot-check (%d requests, 2 fault models x 3 seeds): %s@."
    (List.length ycsb_trace)
    (if equal then "cohort == drive" else "DIVERGED");
  Format.printf
    "  trace mode: %d requests -> %d classes; drive %.2f ms, cohort %.2f ms \
     (%.2fx)@."
    (List.length trace) nclasses (drive_ns /. 1e6) (cohort_ns /. 1e6)
    (drive_ns /. cohort_ns);
  let path =
    Option.value
      (Sys.getenv_opt "PINDISK_COHORT_OUT")
      ~default:"BENCH_cohort.json"
  in
  let oc = open_out path in
  let out fmt = Printf.fprintf oc fmt in
  out "{\n";
  out "  \"bench\": \"cohort\",\n";
  out "  \"mode\": \"%s\",\n" (if quick then "quick" else "full");
  out "  \"metrics\": %b,\n" (Pindisk_obs.Control.enabled ());
  out "  \"period\": %d,\n" period;
  out "  \"clients\": %d,\n" total;
  out "  \"classes\": %d,\n" (List.length classes);
  out "  \"cohort_clients_per_sec_analytic\": %.0f,\n" analytic_clients_per_sec;
  out "  \"cohort_sampled_clients_per_sec\": %.0f,\n" sampled_clients_per_sec;
  out "  \"cohort_equals_drive\": %.1f,\n" (if equal then 1.0 else 0.0);
  out "  \"cohort_speedup_over_drive\": %.2f,\n" (drive_ns /. cohort_ns);
  out "  \"results\": [\n";
  out
    "    {\"stage\": \"analytic\", \"clients\": %d, \"classes\": %d, \
     \"run_ns\": %.0f},\n"
    total (List.length classes) analytic_ns;
  out
    "    {\"stage\": \"sampled\", \"clients\": %d, \"classes\": %d, \
     \"run_ns\": %.0f},\n"
    sampled_total (List.length sampled_pop) sampled_ns;
  out
    "    {\"stage\": \"trace\", \"requests\": %d, \"classes\": %d, \
     \"drive_ns\": %.0f, \"cohort_ns\": %.0f}\n"
    (List.length trace) nclasses drive_ns cohort_ns;
  out "  ]\n}\n";
  close_out oc;
  Format.printf "  wrote %s@.@." path
