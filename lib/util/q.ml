type t = { num : int; den : int }

let make num den =
  if den = 0 then invalid_arg "Q.make: zero denominator";
  let sign = if den < 0 then -1 else 1 in
  let num = sign * num and den = sign * den in
  let g = Intmath.gcd num den in
  if g = 0 then { num = 0; den = 1 } else { num = num / g; den = den / g }

let of_int n = { num = n; den = 1 }
let zero = of_int 0
let one = of_int 1

let add a b =
  make
    (Intmath.mul_exn a.num b.den + Intmath.mul_exn b.num a.den)
    (Intmath.mul_exn a.den b.den)

let neg a = { a with num = -a.num }
let sub a b = add a (neg b)
let mul a b = make (Intmath.mul_exn a.num b.num) (Intmath.mul_exn a.den b.den)

let inv a =
  if a.num = 0 then raise Division_by_zero;
  make a.den a.num

let div a b = mul a (inv b)

let compare a b =
  Stdlib.compare (Intmath.mul_exn a.num b.den) (Intmath.mul_exn b.num a.den)

let equal a b = compare a b = 0
let ( <= ) a b = compare a b <= 0
let ( < ) a b = compare a b < 0
let ( >= ) a b = compare a b >= 0
let ( > ) a b = compare a b > 0
let min a b = if a <= b then a else b
let max a b = if a >= b then a else b
let sum = List.fold_left add zero
let to_float a = float_of_int a.num /. float_of_int a.den
let floor a = Intmath.floor_div a.num a.den
let ceil a = Intmath.ceil_div a.num a.den

let pp ppf a =
  if a.den = 1 then Format.fprintf ppf "%d" a.num
  else Format.fprintf ppf "%d/%d" a.num a.den

let to_string a = Format.asprintf "%a" pp a
