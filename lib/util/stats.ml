(* Observations are stored run-length encoded: parallel [values]/[weights]
   arrays where entry [i] stands for [weights.(i)] copies of
   [values.(i)]. [add] appends weight-1 entries, so the unweighted API
   behaves exactly as it always did (same float accumulation order);
   [add_weighted] is what lets the cohort engine account for millions of
   statistically identical clients in O(1) memory per distinct value. *)
type t = {
  mutable values : float array;
  mutable weights : int array;
  mutable len : int; (* stored entries *)
  mutable count : int; (* total weight across entries *)
  mutable sum : float;
  mutable sorted : bool;
}

let create () =
  {
    values = Array.make 16 0.0;
    weights = Array.make 16 0;
    len = 0;
    count = 0;
    sum = 0.0;
    sorted = true;
  }

let push t x w =
  if t.len = Array.length t.values then begin
    let bigger = Array.make (2 * t.len) 0.0 in
    Array.blit t.values 0 bigger 0 t.len;
    t.values <- bigger;
    let bigger_w = Array.make (2 * t.len) 0 in
    Array.blit t.weights 0 bigger_w 0 t.len;
    t.weights <- bigger_w
  end;
  t.values.(t.len) <- x;
  t.weights.(t.len) <- w;
  t.len <- t.len + 1;
  t.count <- t.count + w;
  t.sorted <- false

let add t x =
  push t x 1;
  t.sum <- t.sum +. x

let absorb t other =
  if t == other then invalid_arg "Stats.absorb: cannot absorb into itself";
  for i = 0 to other.len - 1 do
    let x = other.values.(i) and w = other.weights.(i) in
    if w > 0 then begin
      push t x w;
      t.sum <- t.sum +. (if w = 1 then x else float_of_int w *. x)
    end
  done

let add_weighted t x w =
  if w < 0 then invalid_arg "Stats.add_weighted: negative weight";
  if w > 0 then begin
    push t x w;
    t.sum <- t.sum +. (if w = 1 then x else float_of_int w *. x)
  end

let add_int t x = add t (float_of_int x)
let count t = t.count
let total t = t.sum
let mean t = if t.count = 0 then Float.nan else t.sum /. float_of_int t.count

let variance t =
  (* Two-pass over the stored values: the streaming [sum_sq/n - mean^2]
     formula cancels catastrophically for large-offset data (it can even
     go negative); the centered sum of squares cannot. *)
  if t.count = 0 then Float.nan
  else begin
    let m = mean t in
    let acc = ref 0.0 in
    for i = 0 to t.len - 1 do
      let d = t.values.(i) -. m in
      let sq = d *. d in
      acc := !acc +. (if t.weights.(i) = 1 then sq else float_of_int t.weights.(i) *. sq)
    done;
    !acc /. float_of_int t.count
  end

let stddev t = sqrt (max 0.0 (variance t))

let ensure_sorted t =
  if not t.sorted then begin
    let pairs = Array.init t.len (fun i -> (t.values.(i), t.weights.(i))) in
    Array.sort compare pairs;
    Array.iteri
      (fun i (v, w) ->
        t.values.(i) <- v;
        t.weights.(i) <- w)
      pairs;
    t.sorted <- true
  end

let min_value t =
  if t.count = 0 then invalid_arg "Stats.min_value: empty";
  ensure_sorted t;
  t.values.(0)

let max_value t =
  if t.count = 0 then invalid_arg "Stats.max_value: empty";
  ensure_sorted t;
  t.values.(t.len - 1)

(* The k-th (0-based) order statistic of the weighted sample: scan the
   sorted entries accumulating weight. O(len), which the percentile pair
   below amortizes into one scan. *)
let order_statistic t k =
  let rec go i cum =
    let cum = cum + t.weights.(i) in
    if k < cum then t.values.(i) else go (i + 1) cum
  in
  go 0 0

let percentile t p =
  if t.count = 0 then invalid_arg "Stats.percentile: empty";
  if p < 0.0 || p > 100.0 then invalid_arg "Stats.percentile: p out of range";
  ensure_sorted t;
  if t.count = 1 then t.values.(0)
  else begin
    let rank = p /. 100.0 *. float_of_int (t.count - 1) in
    let lo = int_of_float (floor rank) in
    let hi = min (t.count - 1) (lo + 1) in
    let frac = rank -. float_of_int lo in
    (order_statistic t lo *. (1.0 -. frac)) +. (order_statistic t hi *. frac)
  end

let median t = percentile t 50.0

let histogram t ~buckets =
  if buckets < 1 then invalid_arg "Stats.histogram: buckets must be >= 1";
  if t.count = 0 then []
  else begin
    let lo = min_value t and hi = max_value t in
    let width = (hi -. lo) /. float_of_int buckets in
    let width = if width <= 0.0 then 1.0 else width in
    let counts = Array.make buckets 0 in
    for i = 0 to t.len - 1 do
      let b =
        min (buckets - 1) (int_of_float ((t.values.(i) -. lo) /. width))
      in
      counts.(b) <- counts.(b) + t.weights.(i)
    done;
    List.init buckets (fun b ->
        (lo +. (float_of_int b *. width), lo +. (float_of_int (b + 1) *. width), counts.(b)))
  end

let pp_summary ppf t =
  if t.count = 0 then Format.fprintf ppf "(no observations)"
  else
    Format.fprintf ppf
      "n=%d mean=%.2f sd=%.2f min=%.1f median=%.1f p99=%.1f max=%.1f" t.count
      (mean t) (stddev t) (min_value t) (median t) (percentile t 99.0)
      (max_value t)
