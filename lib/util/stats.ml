type t = {
  mutable values : float array;
  mutable len : int;
  mutable sum : float;
  mutable sorted : bool;
}

let create () = { values = Array.make 16 0.0; len = 0; sum = 0.0; sorted = true }

let add t x =
  if t.len = Array.length t.values then begin
    let bigger = Array.make (2 * t.len) 0.0 in
    Array.blit t.values 0 bigger 0 t.len;
    t.values <- bigger
  end;
  t.values.(t.len) <- x;
  t.len <- t.len + 1;
  t.sum <- t.sum +. x;
  t.sorted <- false

let add_int t x = add t (float_of_int x)
let count t = t.len
let total t = t.sum
let mean t = if t.len = 0 then Float.nan else t.sum /. float_of_int t.len

let variance t =
  (* Two-pass over the stored values: the streaming [sum_sq/n - mean^2]
     formula cancels catastrophically for large-offset data (it can even
     go negative); the centered sum of squares cannot. *)
  if t.len = 0 then Float.nan
  else begin
    let m = mean t in
    let acc = ref 0.0 in
    for i = 0 to t.len - 1 do
      let d = t.values.(i) -. m in
      acc := !acc +. (d *. d)
    done;
    !acc /. float_of_int t.len
  end

let stddev t = sqrt (max 0.0 (variance t))

let ensure_sorted t =
  if not t.sorted then begin
    let live = Array.sub t.values 0 t.len in
    Array.sort compare live;
    Array.blit live 0 t.values 0 t.len;
    t.sorted <- true
  end

let min_value t =
  if t.len = 0 then invalid_arg "Stats.min_value: empty";
  ensure_sorted t;
  t.values.(0)

let max_value t =
  if t.len = 0 then invalid_arg "Stats.max_value: empty";
  ensure_sorted t;
  t.values.(t.len - 1)

let percentile t p =
  if t.len = 0 then invalid_arg "Stats.percentile: empty";
  if p < 0.0 || p > 100.0 then invalid_arg "Stats.percentile: p out of range";
  ensure_sorted t;
  if t.len = 1 then t.values.(0)
  else begin
    let rank = p /. 100.0 *. float_of_int (t.len - 1) in
    let lo = int_of_float (floor rank) in
    let hi = min (t.len - 1) (lo + 1) in
    let frac = rank -. float_of_int lo in
    (t.values.(lo) *. (1.0 -. frac)) +. (t.values.(hi) *. frac)
  end

let median t = percentile t 50.0

let histogram t ~buckets =
  if buckets < 1 then invalid_arg "Stats.histogram: buckets must be >= 1";
  if t.len = 0 then []
  else begin
    let lo = min_value t and hi = max_value t in
    let width = (hi -. lo) /. float_of_int buckets in
    let width = if width <= 0.0 then 1.0 else width in
    let counts = Array.make buckets 0 in
    for i = 0 to t.len - 1 do
      let b =
        min (buckets - 1) (int_of_float ((t.values.(i) -. lo) /. width))
      in
      counts.(b) <- counts.(b) + 1
    done;
    List.init buckets (fun b ->
        (lo +. (float_of_int b *. width), lo +. (float_of_int (b + 1) *. width), counts.(b)))
  end

let pp_summary ppf t =
  if t.len = 0 then Format.fprintf ppf "(no observations)"
  else
    Format.fprintf ppf
      "n=%d mean=%.2f sd=%.2f min=%.1f median=%.1f p99=%.1f max=%.1f" t.len
      (mean t) (stddev t) (min_value t) (median t) (percentile t 99.0)
      (max_value t)
