(** A small hand-rolled domain pool (OCaml 5, no external dependencies).

    Worker domains are spawned once and parked on a condition variable;
    {!parallel_for} publishes an index range that workers and the calling
    domain claim cooperatively with a fetch-and-add counter. A pool of
    size 1 (the default on single-core machines) runs everything inline in
    the caller, so code written against the pool degrades gracefully to a
    sequential loop. *)

type t

val create : ?domains:int -> unit -> t
(** [create ?domains ()] spawns a pool of [domains - 1] worker domains
    (the submitting domain is the remaining participant). [domains]
    defaults to [Domain.recommended_domain_count ()] and is clamped to at
    most 128; raises [Invalid_argument] when [domains < 1]. *)

val size : t -> int
(** Number of domains that participate in a {!parallel_for}: worker count
    plus the caller. *)

val parallel_for : t -> n:int -> (int -> unit) -> unit
(** [parallel_for t ~n f] runs [f 0 .. f (n-1)], distributing indices
    across the pool, and returns when all of them have completed. The
    caller participates, so the call makes progress even if every worker
    is busy with another job. If any [f i] raises, the first exception is
    re-raised in the caller after remaining indices are drained (they may
    be skipped). [f] must be safe to call from multiple domains.

    When {!Pindisk_obs.Control.enabled} is up, each call counts one
    [pool.jobs], classifies its [n] tasks as [pool.tasks.inline] (run as
    a plain loop) or [pool.tasks.fanned] (published to workers), and
    records the domain count that can actually participate —
    [min n (size t)], since surplus domains never claim an index when
    tasks are scarcer than domains — in the [pool.fanout] gauge. *)

val shutdown : t -> unit
(** Terminates and joins the worker domains. Subsequent {!parallel_for}
    calls on the pool raise [Invalid_argument]. *)

val default : unit -> t
(** A lazily-created process-wide shared pool, sized by
    [Domain.recommended_domain_count ()]. *)
