(** Streaming descriptive statistics for simulation results.

    An accumulator collects observations one at a time; summaries (mean,
    variance, percentiles) are computed on demand. Observations are kept
    run-length encoded (percentiles need them), so memory is linear in
    the number of {e distinct additions}, not the total weight — a
    cohort engine can account for millions of identical clients with
    one [add_weighted] call. *)

type t

val create : unit -> t

val add : t -> float -> unit
val add_int : t -> int -> unit

val absorb : t -> t -> unit
(** [absorb t other] appends [other]'s recorded multiset into [t] in
    [other]'s insertion order — equivalent to replaying [other]'s
    [add_weighted] calls against [t] (same float accumulation), so
    absorbing engines' accumulators in a fixed order is deterministic.
    [other] is unchanged. Raises [Invalid_argument] when [t == other]. *)

val add_weighted : t -> float -> int -> unit
(** [add_weighted t x w] records [w] copies of [x] in O(1). A weight of
    [0] is a no-op; negative weights raise [Invalid_argument]. With
    [w = 1] this is exactly [add] (same float accumulation), so mixed
    weighted/unweighted use stays bit-compatible with the unweighted
    API. All summaries below treat the accumulator as the multiset it
    denotes: [count] is total weight, percentiles interpolate between
    weighted order statistics, etc. *)

val count : t -> int
(** Total weight of the recorded multiset (= number of [add] calls when
    only the unweighted API is used). *)

val total : t -> float

val mean : t -> float
(** [nan] when empty. *)

val variance : t -> float
(** Population variance; [nan] when empty. Computed in two passes over the
    stored observations (centered sum of squares), so it stays accurate
    for large-offset data where the naive streaming formula cancels. *)

val stddev : t -> float

val min_value : t -> float
(** Raises [Invalid_argument] when empty. *)

val max_value : t -> float
(** Raises [Invalid_argument] when empty. *)

val percentile : t -> float -> float
(** [percentile t p] for [p] in [0, 100], by linear interpolation between
    order statistics (the common "exclusive" definition). Raises
    [Invalid_argument] when empty or [p] out of range. *)

val median : t -> float

val histogram : t -> buckets:int -> (float * float * int) list
(** Equal-width buckets over the observed range:
    [(lower, upper, count)]. *)

val pp_summary : Format.formatter -> t -> unit
(** "n=…, mean=…, sd=…, min/median/p99/max=…". *)
