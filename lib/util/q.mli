(** Exact rational arithmetic over native integers.

    Densities in pinwheel scheduling are sums of fractions [a/b] with tiny
    numerators and denominators, but schedulability thresholds (1/2, 7/10,
    5/6, 1) sit exactly on rational boundaries, so floating point cannot be
    trusted to classify instances at the boundary. All library-internal
    density computations therefore use this module.

    Values are kept in normal form: the denominator is positive and
    [gcd |num| den = 1]. Intermediate products that would overflow a native
    [int] raise {!Pindisk_util.Intmath.Overflow}. *)

type t = private { num : int; den : int }

val make : int -> int -> t
(** [make num den] is the normalized rational [num/den]. Raises
    [Invalid_argument] if [den = 0]. *)

val of_int : int -> t

val zero : t
val one : t

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val div : t -> t -> t
(** [div] raises [Division_by_zero] on a zero divisor. *)

val neg : t -> t
val inv : t -> t

val compare : t -> t -> int
val equal : t -> t -> bool
val ( <= ) : t -> t -> bool
val ( < ) : t -> t -> bool
val ( >= ) : t -> t -> bool
val ( > ) : t -> t -> bool

val min : t -> t -> t
val max : t -> t -> t

val sum : t list -> t

val to_float : t -> float

val ceil : t -> int
(** Smallest integer [>= t]. *)

val floor : t -> int
(** Largest integer [<= t]. *)

val pp : Format.formatter -> t -> unit
(** Prints ["num/den"], or just ["num"] when the denominator is 1. *)

val to_string : t -> string
