(** Exact integer arithmetic helpers used throughout pindisk.

    All functions operate on native [int]s. The quantities manipulated by the
    library (window sizes, block counts, hyperperiods) are small, but several
    helpers ([lcm], [pow]) guard against overflow by raising [Overflow] rather
    than silently wrapping. *)

exception Overflow
(** Raised when an exact result does not fit in a native [int]. *)

val gcd : int -> int -> int
(** [gcd a b] is the non-negative greatest common divisor of [a] and [b].
    [gcd 0 0 = 0]. *)

val lcm : int -> int -> int
(** [lcm a b] is the least common multiple of [a] and [b]; raises [Overflow]
    if it exceeds [max_int]. [lcm 0 x = 0]. *)

val lcm_list : int list -> int
(** Least common multiple of a list, [1] for the empty list. *)

val mul_exn : int -> int -> int
(** Exact multiplication; raises [Overflow] if the product does not fit. *)

val pow : int -> int -> int
(** [pow base e] is [base]{^ [e]} for [e >= 0]; raises [Overflow] on
    overflow and [Invalid_argument] for negative exponents. *)

val floor_div : int -> int -> int
(** [floor_div a b] rounds the quotient toward negative infinity ([b > 0]). *)

val ceil_div : int -> int -> int
(** [ceil_div a b] rounds the quotient toward positive infinity ([b > 0]). *)

val floor_log2 : int -> int
(** [floor_log2 n] is the largest [k] with [2]{^ [k]}[ <= n]; requires
    [n >= 1]. *)

val is_power_of_two : int -> bool
(** [is_power_of_two n] holds iff [n] is a positive power of two (1, 2, 4, …). *)

val floor_pow2 : int -> int
(** [floor_pow2 n] is the largest power of two [<= n]; requires [n >= 1]. *)

val mix64 : int -> int
(** [mix64 x] is splitmix64's avalanche finalizer applied to [x]: a
    deterministic bijective-style scramble in which adjacent inputs map to
    decorrelated outputs. Use it to derive independent RNG seeds from
    sequential counters ([seed + k] alone makes adjacent streams
    correlated). The result is always in [\[0, 2{^62})]. *)

val range : int -> int -> int list
(** [range lo hi] is [[lo; lo+1; …; hi-1]] (empty when [lo >= hi]). *)

val sum : int list -> int

val max_list : int list -> int
(** Maximum of a non-empty list; raises [Invalid_argument] on the empty
    list. *)

val min_list : int list -> int
(** Minimum of a non-empty list; raises [Invalid_argument] on the empty
    list. *)
