(* A hand-rolled domain pool (OCaml 5 [Domain] + [Atomic]; no external
   dependencies). Workers park on a condition variable; [parallel_for]
   publishes one job (a generation-stamped index range) and participates
   itself, so a pool of size 1 degenerates to a plain sequential loop and
   the submitting domain is never idle. Indices are claimed with a
   fetch-and-add work counter, which balances uneven piece sizes. *)

type job = {
  run : int -> unit;
  n : int;
  next : int Atomic.t; (* next unclaimed index *)
  pending : int Atomic.t; (* indices not yet completed *)
  error : exn option Atomic.t; (* first exception, re-raised by the caller *)
  job_lock : Mutex.t;
  finished : Condition.t;
}

type t = {
  mutable workers : unit Domain.t array; (* set once, right after spawn *)
  lock : Mutex.t;
  wake : Condition.t;
  mutable current : job option;
  mutable generation : int;
  mutable stopped : bool;
}

let size t = Array.length t.workers + 1

(* First error wins: a CAS from [None], so concurrent failures from
   several domains race benignly and the fast-abort read below needs no
   lock at all. *)
let record_error job e =
  ignore (Atomic.compare_and_set job.error None (Some e))

(* Claim and complete indices until the job is exhausted. Once an error is
   recorded the remaining indices are drained without running, so the
   caller's completion wait still terminates. *)
let execute job =
  let rec go () =
    let i = Atomic.fetch_and_add job.next 1 in
    if i < job.n then begin
      (match Atomic.get job.error with
      | None -> ( try job.run i with e -> record_error job e)
      | Some _ -> ());
      if Atomic.fetch_and_add job.pending (-1) = 1 then begin
        Mutex.lock job.job_lock;
        Condition.broadcast job.finished;
        Mutex.unlock job.job_lock
      end;
      go ()
    end
  in
  go ()

let worker t =
  let last = ref 0 in
  let rec loop () =
    Mutex.lock t.lock;
    while (not t.stopped) && (t.current = None || t.generation = !last) do
      Condition.wait t.wake t.lock
    done;
    if t.stopped then Mutex.unlock t.lock
    else begin
      last := t.generation;
      let job = Option.get t.current in
      Mutex.unlock t.lock;
      execute job;
      loop ()
    end
  in
  loop ()

let create ?domains () =
  let domains =
    match domains with
    | Some d ->
        if d < 1 then invalid_arg "Pool.create: domains must be >= 1";
        d
    | None -> Domain.recommended_domain_count ()
  in
  let domains = min domains 128 in
  let t =
    {
      workers = [||];
      lock = Mutex.create ();
      wake = Condition.create ();
      current = None;
      generation = 0;
      stopped = false;
    }
  in
  t.workers <-
    Array.init (domains - 1) (fun _ -> Domain.spawn (fun () -> worker t));
  t

(* Observability handles (registered once): jobs submitted, tasks run
   inline vs fanned out to workers, and the pool width the last fan-out
   actually used — the "pool fan-out" metric the codec paths expose. *)
let obs_jobs = Pindisk_obs.Registry.counter "pool.jobs"
let obs_inline = Pindisk_obs.Registry.counter "pool.tasks.inline"
let obs_fanned = Pindisk_obs.Registry.counter "pool.tasks.fanned"
let obs_fanout = Pindisk_obs.Registry.gauge "pool.fanout"

let parallel_for t ~n f =
  if n < 0 then invalid_arg "Pool.parallel_for: negative count";
  if n > 0 then begin
    let obs = Pindisk_obs.Control.enabled () in
    if obs then Pindisk_obs.Registry.incr obs_jobs;
    if Array.length t.workers = 0 || n = 1 then begin
      if obs then begin
        Pindisk_obs.Registry.add obs_inline n;
        Pindisk_obs.Registry.set obs_fanout 1
      end;
      for i = 0 to n - 1 do
        f i
      done
    end
    else begin
      if obs then begin
        Pindisk_obs.Registry.add obs_fanned n;
        (* With fewer tasks than domains the surplus domains never claim
           an index: report the parallelism actually available, not the
           pool width. *)
        Pindisk_obs.Registry.set obs_fanout (min n (size t))
      end;
      let job =
        {
          run = f;
          n;
          next = Atomic.make 0;
          pending = Atomic.make n;
          error = Atomic.make None;
          job_lock = Mutex.create ();
          finished = Condition.create ();
        }
      in
      Mutex.lock t.lock;
      if t.stopped then begin
        Mutex.unlock t.lock;
        invalid_arg "Pool.parallel_for: pool is shut down"
      end;
      t.current <- Some job;
      t.generation <- t.generation + 1;
      Condition.broadcast t.wake;
      Mutex.unlock t.lock;
      (* The caller always completes its own job even if every worker is
         busy elsewhere, so overlapping submissions cannot deadlock. *)
      execute job;
      Mutex.lock job.job_lock;
      while Atomic.get job.pending > 0 do
        Condition.wait job.finished job.job_lock
      done;
      Mutex.unlock job.job_lock;
      match Atomic.get job.error with Some e -> raise e | None -> ()
    end
  end

let shutdown t =
  Mutex.lock t.lock;
  t.stopped <- true;
  Condition.broadcast t.wake;
  Mutex.unlock t.lock;
  Array.iter Domain.join t.workers

let shared = ref None
let shared_lock = Mutex.create ()

let default () =
  Mutex.lock shared_lock;
  let p =
    match !shared with
    | Some p -> p
    | None ->
        let p = create () in
        shared := Some p;
        p
  in
  Mutex.unlock shared_lock;
  p
