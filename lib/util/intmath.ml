exception Overflow

let rec gcd a b =
  let a = abs a and b = abs b in
  if b = 0 then a else gcd b (a mod b)

let lcm a b =
  if a = 0 || b = 0 then 0
  else
    let g = gcd a b in
    let q = abs a / g in
    let r = q * abs b in
    if r / abs b <> q then raise Overflow else r

let lcm_list l = List.fold_left lcm 1 l

let mul_exn x y =
  if x = 0 || y = 0 then 0
  else
    let r = x * y in
    if r / y <> x then raise Overflow else r

let pow base e =
  if e < 0 then invalid_arg "Intmath.pow: negative exponent";
  let rec go acc b e =
    if e = 0 then acc
    else
      let acc = if e land 1 = 1 then mul_exn acc b else acc in
      if e <= 1 then acc else go acc (mul_exn b b) (e lsr 1)
  in
  go 1 base e

let floor_div a b =
  if b <= 0 then invalid_arg "Intmath.floor_div: non-positive divisor";
  if a >= 0 then a / b else -(((-a) + b - 1) / b)

let ceil_div a b =
  if b <= 0 then invalid_arg "Intmath.ceil_div: non-positive divisor";
  if a >= 0 then (a + b - 1) / b else -((-a) / b)

let floor_log2 n =
  if n < 1 then invalid_arg "Intmath.floor_log2: n must be >= 1";
  let rec go k p = if p * 2 > n || p * 2 <= 0 then k else go (k + 1) (p * 2) in
  go 0 1

let is_power_of_two n = n > 0 && n land (n - 1) = 0

let floor_pow2 n =
  if n < 1 then invalid_arg "Intmath.floor_pow2: n must be >= 1";
  1 lsl floor_log2 n

let mix64 x =
  (* splitmix64's finalizer (Steele, Lea & Flood 2014), over Int64 because
     the multiplier constants do not fit OCaml's 63-bit int. The result is
     masked to 62 bits so it is always a non-negative [int]. *)
  let open Int64 in
  let z = of_int x in
  let z = mul (logxor z (shift_right_logical z 30)) 0xbf58476d1ce4e5b9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94d049bb133111ebL in
  let z = logxor z (shift_right_logical z 31) in
  to_int (logand z 0x3fffffffffffffffL)

let range lo hi =
  let rec go i acc = if i < lo then acc else go (i - 1) (i :: acc) in
  go (hi - 1) []

let sum = List.fold_left ( + ) 0

let max_list = function
  | [] -> invalid_arg "Intmath.max_list: empty list"
  | x :: rest -> List.fold_left max x rest

let min_list = function
  | [] -> invalid_arg "Intmath.min_list: empty list"
  | x :: rest -> List.fold_left min x rest
