(** Dense matrices over GF(2{^8}).

    Provides exactly the linear algebra IDA needs: construction of
    Vandermonde dispersal matrices, matrix-vector products, row selection and
    inversion by Gauss–Jordan elimination. Matrices are immutable from the
    caller's point of view; every operation returns a fresh matrix. *)

type t
(** A [rows] x [cols] matrix of field elements. *)

val create : rows:int -> cols:int -> (int -> int -> Gf256.t) -> t
(** [create ~rows ~cols f] builds the matrix with [f i j] at row [i],
    column [j]. Dimensions must be positive. *)

val rows : t -> int
val cols : t -> int

val get : t -> int -> int -> Gf256.t
(** [get m i j]; raises [Invalid_argument] out of bounds. *)

val identity : int -> t

val vandermonde : rows:int -> cols:int -> t
(** [vandermonde ~rows ~cols] has entry [x_i^j] at [(i, j)] with
    [x_i = exp i] (powers of the generator), so the [x_i] are pairwise
    distinct for [rows <= 255] and {e any} [cols] rows form an invertible
    square Vandermonde system — the property Rabin's IDA requires of its
    dispersal matrix. Raises [Invalid_argument] when [rows > 255]. *)

val systematic : rows:int -> cols:int -> t
(** [systematic ~rows ~cols] is {!vandermonde} right-multiplied by the
    inverse of its top [cols x cols] square: any [cols] rows still form an
    invertible system (each row subset is a product of invertibles), but
    rows [0 .. cols-1] are now the identity — a dispersal using this
    matrix emits the source blocks verbatim as its first [cols] pieces.
    Raises [Invalid_argument] when [rows > 255]. *)

val select_rows : t -> int array -> t
(** [select_rows m idx] is the matrix made of rows [idx.(0)], [idx.(1)], …
    of [m], in that order. *)

val mul : t -> t -> t
(** Matrix product; raises [Invalid_argument] on dimension mismatch. *)

val mul_vec : t -> Gf256.t array -> Gf256.t array
(** Matrix-vector product. *)

val invert : t -> t option
(** [invert m] is the inverse of square [m], or [None] if [m] is singular.
    Raises [Invalid_argument] if [m] is not square. *)

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
