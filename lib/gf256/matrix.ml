type t = { rows : int; cols : int; data : int array }
(* Row-major storage. *)

let create ~rows ~cols f =
  if rows <= 0 || cols <= 0 then invalid_arg "Matrix.create: dimensions";
  let data = Array.make (rows * cols) 0 in
  for i = 0 to rows - 1 do
    for j = 0 to cols - 1 do
      data.((i * cols) + j) <- f i j land 0xff
    done
  done;
  { rows; cols; data }

let rows m = m.rows
let cols m = m.cols

let get m i j =
  if i < 0 || i >= m.rows || j < 0 || j >= m.cols then
    invalid_arg "Matrix.get: out of bounds";
  m.data.((i * m.cols) + j)

let identity n = create ~rows:n ~cols:n (fun i j -> if i = j then 1 else 0)

let vandermonde ~rows ~cols =
  if rows > 255 then invalid_arg "Matrix.vandermonde: at most 255 rows";
  create ~rows ~cols (fun i j -> Gf256.pow (Gf256.exp i) j)

let select_rows m idx =
  create ~rows:(Array.length idx) ~cols:m.cols (fun i j -> get m idx.(i) j)

let mul a b =
  if a.cols <> b.rows then invalid_arg "Matrix.mul: dimension mismatch";
  create ~rows:a.rows ~cols:b.cols (fun i j ->
      let acc = ref 0 in
      for k = 0 to a.cols - 1 do
        acc := Gf256.add !acc (Gf256.mul (get a i k) (get b k j))
      done;
      !acc)

let mul_vec m v =
  if Array.length v <> m.cols then invalid_arg "Matrix.mul_vec: dimension";
  Array.init m.rows (fun i ->
      let acc = ref 0 in
      for j = 0 to m.cols - 1 do
        acc := Gf256.add !acc (Gf256.mul (get m i j) v.(j))
      done;
      !acc)

let invert m =
  if m.rows <> m.cols then invalid_arg "Matrix.invert: not square";
  let n = m.rows in
  (* Gauss-Jordan on [a | inv], in place on copies. *)
  let a = Array.copy m.data in
  let inv = Array.make (n * n) 0 in
  for i = 0 to n - 1 do
    inv.((i * n) + i) <- 1
  done;
  let aij i j = a.((i * n) + j) in
  let exception Singular in
  try
    for col = 0 to n - 1 do
      (* Find a pivot row at or below [col]. *)
      let pivot = ref (-1) in
      (try
         for r = col to n - 1 do
           if aij r col <> 0 then begin
             pivot := r;
             raise Exit
           end
         done
       with Exit -> ());
      if !pivot < 0 then raise Singular;
      let p = !pivot in
      if p <> col then
        for j = 0 to n - 1 do
          let t = a.((p * n) + j) in
          a.((p * n) + j) <- a.((col * n) + j);
          a.((col * n) + j) <- t;
          let t = inv.((p * n) + j) in
          inv.((p * n) + j) <- inv.((col * n) + j);
          inv.((col * n) + j) <- t
        done;
      (* Scale the pivot row to make the pivot 1. *)
      let s = Gf256.inv (aij col col) in
      for j = 0 to n - 1 do
        a.((col * n) + j) <- Gf256.mul s a.((col * n) + j);
        inv.((col * n) + j) <- Gf256.mul s inv.((col * n) + j)
      done;
      (* Eliminate the column everywhere else. *)
      for r = 0 to n - 1 do
        if r <> col && aij r col <> 0 then begin
          let f = aij r col in
          for j = 0 to n - 1 do
            a.((r * n) + j) <-
              Gf256.add a.((r * n) + j) (Gf256.mul f a.((col * n) + j));
            inv.((r * n) + j) <-
              Gf256.add inv.((r * n) + j) (Gf256.mul f inv.((col * n) + j))
          done
        end
      done
    done;
    Some { rows = n; cols = n; data = inv }
  with Singular -> None

(* V * (top cols x cols of V)^-1: right-multiplying by an invertible
   matrix preserves "any [cols] rows form an invertible square" (a row
   subset S of the product is [S_V * T^-1], a product of invertibles),
   and turns the top square into the identity — so the systematic prefix
   of a dispersal encodes by memcpy. *)
let systematic ~rows ~cols =
  let v = vandermonde ~rows ~cols in
  let top = select_rows v (Array.init cols (fun i -> i)) in
  match invert top with
  | None -> assert false (* the top square of a Vandermonde is invertible *)
  | Some tinv -> mul v tinv

let equal a b = a.rows = b.rows && a.cols = b.cols && a.data = b.data

let pp ppf m =
  for i = 0 to m.rows - 1 do
    if i > 0 then Format.fprintf ppf "@\n";
    for j = 0 to m.cols - 1 do
      if j > 0 then Format.fprintf ppf " ";
      Format.fprintf ppf "%02x" (get m i j)
    done
  done
