(** Arithmetic in the finite field GF(2{^8}).

    This is the substrate for the Information Dispersal Algorithm (Rabin
    1989; Bestavros 1990): dispersal and reconstruction are matrix
    multiplications over "a particular irreducible polynomial" — we use the
    AES polynomial [x^8 + x^4 + x^3 + x + 1] (0x11B).

    Field elements are represented as [int]s in [0, 255]. All operations are
    table-driven (log/antilog over the generator 3), so multiplication and
    inversion are O(1) lookups. Arguments outside [0, 255] are masked to
    their low byte. *)

type t = int
(** A field element in [0, 255]. *)

val zero : t
val one : t

val add : t -> t -> t
(** Addition = subtraction = XOR in characteristic 2. *)

val sub : t -> t -> t

val mul : t -> t -> t

val div : t -> t -> t
(** Raises [Division_by_zero] on a zero divisor. *)

val inv : t -> t
(** Multiplicative inverse; raises [Division_by_zero] on [0]. *)

val pow : t -> int -> t
(** [pow x k] for [k >= 0]; [pow 0 0 = 1] by convention. *)

val exp : int -> t
(** [exp k] is the generator [3] raised to the [k]-th power (k taken
    mod 255). *)

val mul_table : t -> bytes
(** [mul_table c] is the 256-entry multiplication table of [c]: byte [x] of
    the result is [mul c x]. The bulk kernels below index a flattened copy
    of all 256 such tables (64 KiB, built once at module initialization),
    so calling this is never needed for speed — it exists for callers that
    want an explicit table (and for tests). *)

val axpy : acc:bytes -> coeff:t -> src:bytes -> unit
(** [axpy ~acc ~coeff ~src] performs [acc.(i) <- acc.(i) + coeff * src.(i)]
    for every byte — branch-free, one unsafe multiplication-table lookup
    per byte. Raises [Invalid_argument] when lengths differ. [coeff = 0]
    is a no-op. *)

val mul_into : dst:bytes -> coeff:t -> src:bytes -> unit
(** [mul_into ~dst ~coeff ~src] overwrites [dst.(i) <- coeff * src.(i)]
    for every byte ([dst = src] is allowed). Raises [Invalid_argument]
    when lengths differ. *)

val encode_row : dst:bytes -> coeffs:t array -> srcs:bytes array -> unit
(** [encode_row ~dst ~coeffs ~srcs] overwrites
    [dst.(i) <- sum_j coeffs.(j) * srcs.(j).(i)] — one fused pass applying
    a whole dispersal-matrix row, writing each output byte exactly once
    instead of one read-modify-write sweep per coefficient. The pass moves
    16 bits per step through per-coefficient wide tables (see
    [ensure_tables]). Zero coefficients are skipped. Raises
    [Invalid_argument] when [coeffs] and [srcs] disagree in length or any
    source length differs from [dst]. *)

val encode_row_strided :
  dst:bytes -> coeffs:t array -> src:bytes -> stride:int -> unit
(** [encode_row_strided ~dst ~coeffs ~src ~stride] is [encode_row] with
    source block [j] read in place at offset [j * stride] of the single
    buffer [src] — dispersal over a contiguous file needs no per-block
    extraction copies. Requires [stride >= Bytes.length dst] and
    [Bytes.length src >= Array.length coeffs * stride]; raises
    [Invalid_argument] otherwise. *)

val encode_rows :
  dsts:bytes array -> rows:t array array -> src:bytes -> stride:int -> unit
(** [encode_rows ~dsts ~rows ~src ~stride] applies several dispersal-matrix
    rows in grouped passes: [dsts.(g).(i) <- sum_j rows.(g).(j) * src.(j *
    stride + i)]. Rows are processed four (then two, then one) at a time,
    so each source unit loaded feeds up to four output rows — this is the
    fastest path for dispersal, where every piece reads the same source
    blocks. All destinations must share one length [<= stride], all rows
    one width [k] with [Bytes.length src >= k * stride]; raises
    [Invalid_argument] otherwise. *)

val ensure_tables : t array -> unit
(** Pre-build the lazily-constructed 128 KiB wide multiplication tables
    for the given coefficients (each maps a 16-bit source unit to its
    coefficient-scaled unit). The fused kernels build tables on demand;
    call this from the submitting domain before encoding the same
    coefficients from several domains in parallel, so workers only ever
    read fully-published tables. *)

val log : t -> int
(** Discrete log base 3; raises [Invalid_argument] on [0]. *)
