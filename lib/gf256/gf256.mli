(** Arithmetic in the finite field GF(2{^8}).

    This is the substrate for the Information Dispersal Algorithm (Rabin
    1989; Bestavros 1990): dispersal and reconstruction are matrix
    multiplications over "a particular irreducible polynomial" — we use the
    AES polynomial [x^8 + x^4 + x^3 + x + 1] (0x11B).

    Field elements are represented as [int]s in [0, 255]. All operations are
    table-driven (log/antilog over the generator 3), so multiplication and
    inversion are O(1) lookups. Arguments outside [0, 255] are masked to
    their low byte. *)

type t = int
(** A field element in [0, 255]. *)

val zero : t
val one : t

val add : t -> t -> t
(** Addition = subtraction = XOR in characteristic 2. *)

val sub : t -> t -> t

val mul : t -> t -> t

val div : t -> t -> t
(** Raises [Division_by_zero] on a zero divisor. *)

val inv : t -> t
(** Multiplicative inverse; raises [Division_by_zero] on [0]. *)

val pow : t -> int -> t
(** [pow x k] for [k >= 0]; [pow 0 0 = 1] by convention. *)

val exp : int -> t
(** [exp k] is the generator [3] raised to the [k]-th power (k taken
    mod 255). *)

val axpy : acc:bytes -> coeff:t -> src:bytes -> unit
(** [axpy ~acc ~coeff ~src] performs [acc.(i) <- acc.(i) + coeff * src.(i)]
    for every byte — the inner loop of dispersal and reconstruction, with
    the discrete log of [coeff] looked up once for the whole buffer.
    Raises [Invalid_argument] when lengths differ. [coeff = 0] is a
    no-op. *)

val log : t -> int
(** Discrete log base 3; raises [Invalid_argument] on [0]. *)
