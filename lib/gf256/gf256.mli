(** Arithmetic in the finite field GF(2{^8}).

    This is the substrate for the Information Dispersal Algorithm (Rabin
    1989; Bestavros 1990): dispersal and reconstruction are matrix
    multiplications over "a particular irreducible polynomial" — we use the
    AES polynomial [x^8 + x^4 + x^3 + x + 1] (0x11B).

    Field elements are represented as [int]s in [0, 255]. All operations are
    table-driven (log/antilog over the generator 3), so multiplication and
    inversion are O(1) lookups. Arguments outside [0, 255] are masked to
    their low byte. *)

type t = int
(** A field element in [0, 255]. *)

val zero : t
val one : t

val add : t -> t -> t
(** Addition = subtraction = XOR in characteristic 2. *)

val sub : t -> t -> t

val mul : t -> t -> t

val div : t -> t -> t
(** Raises [Division_by_zero] on a zero divisor. *)

val inv : t -> t
(** Multiplicative inverse; raises [Division_by_zero] on [0]. *)

val pow : t -> int -> t
(** [pow x k] for [k >= 0]; [pow 0 0 = 1] by convention. *)

val exp : int -> t
(** [exp k] is the generator [3] raised to the [k]-th power (k taken
    mod 255). *)

val mul_table : t -> bytes
(** [mul_table c] is the 256-entry multiplication table of [c]: byte [x] of
    the result is [mul c x]. The bulk kernels below index a flattened copy
    of all 256 such tables (64 KiB, built once at module initialization),
    so calling this is never needed for speed — it exists for callers that
    want an explicit table (and for tests). *)

val axpy : acc:bytes -> coeff:t -> src:bytes -> unit
(** [axpy ~acc ~coeff ~src] performs [acc.(i) <- acc.(i) + coeff * src.(i)]
    for every byte — branch-free, one unsafe multiplication-table lookup
    per byte. Raises [Invalid_argument] when lengths differ. [coeff = 0]
    is a no-op. *)

val mul_into : dst:bytes -> coeff:t -> src:bytes -> unit
(** [mul_into ~dst ~coeff ~src] overwrites [dst.(i) <- coeff * src.(i)]
    for every byte ([dst = src] is allowed). Raises [Invalid_argument]
    when lengths differ. *)

val encode_row : dst:bytes -> coeffs:t array -> srcs:bytes array -> unit
(** [encode_row ~dst ~coeffs ~srcs] overwrites
    [dst.(i) <- sum_j coeffs.(j) * srcs.(j).(i)] — one fused pass applying
    a whole dispersal-matrix row, writing each output byte exactly once
    instead of one read-modify-write sweep per coefficient. The pass moves
    16 bits per step through per-coefficient wide tables (see
    [ensure_tables]). Zero coefficients are skipped. Raises
    [Invalid_argument] when [coeffs] and [srcs] disagree in length or any
    source length differs from [dst]. *)

val encode_row_strided :
  dst:bytes -> coeffs:t array -> src:bytes -> stride:int -> unit
(** [encode_row_strided ~dst ~coeffs ~src ~stride] is [encode_row] with
    source block [j] read in place at offset [j * stride] of the single
    buffer [src] — dispersal over a contiguous file needs no per-block
    extraction copies. Requires [stride >= Bytes.length dst] and
    [Bytes.length src >= Array.length coeffs * stride]; raises
    [Invalid_argument] otherwise. *)

val encode_rows :
  dsts:bytes array -> rows:t array array -> src:bytes -> stride:int -> unit
(** [encode_rows ~dsts ~rows ~src ~stride] applies several dispersal-matrix
    rows in grouped SWAR passes: [dsts.(g).(i) <- sum_j rows.(g).(j) *
    src.(j * stride + i)]. Rows are processed up to four at a time through
    packed {!lanes} tables (built per call), so each source unit loaded
    feeds up to four output rows — encode the same rows repeatedly via
    {!lanes} + {!encode_lanes} to amortize the table build too. All
    destinations must share one length [<= stride], all rows one width [k]
    with [Bytes.length src >= k * stride]; raises [Invalid_argument]
    otherwise. *)

type lanes
(** Packed per-coefficient lane tables for a group of 1 to 4 matrix rows:
    table entry [b] of coefficient column [j] holds the four products
    [rows.(r).(j) * b] in byte lanes [r] of one native int, so the SWAR
    kernel accumulates every row of the group with a single lookup per
    source byte (eight source bytes per 64-bit load). Immutable once
    built — safe to share across domains. *)

val lanes : t array array -> lanes
(** [lanes rows] builds the packed tables for 1 to 4 rows of equal width
    (256 ints per coefficient column). Raises [Invalid_argument] on 0 or
    more than 4 rows, or unequal widths. Zero coefficients are packed
    like any other (their lane is all-zero). *)

val lanes_group : lanes -> int
(** Number of rows the tables pack (1 to 4). *)

val lanes_width : lanes -> int
(** Coefficients per row. *)

val encode_lanes :
  lanes ->
  dsts:bytes array -> src:bytes -> stride:int -> pos:int -> len:int -> unit
(** [encode_lanes l ~dsts ~src ~stride ~pos ~len] runs the SWAR kernel
    over one column block: [dsts.(r).(pos + i) <- sum_j rows.(r).(j) *
    src.(j * stride + pos + i)] for [0 <= i < len], where [rows] are the
    rows [l] was built from. [dsts] may name fewer destinations than
    [lanes_group l]; the surplus high lanes are simply not stored, which
    lets one table set built for a full group serve calls that need only
    a prefix of its rows. The [pos]/[len] window is how callers block the
    columns into cache-sized parallel tasks: distinct blocks write
    disjoint byte ranges, so tasks never race. No alignment is required
    of [pos], [len] or [stride]. Raises [Invalid_argument] when [dsts] is
    empty or larger than the group, any destination is shorter than
    [pos + len], or [src] is shorter than [(width-1) * stride + pos +
    len]. *)

val ensure_tables : t array -> unit
(** Pre-build the lazily-constructed 128 KiB wide multiplication tables
    for the given coefficients (each maps a 16-bit source unit to its
    coefficient-scaled unit), used by the single-row kernels
    {!encode_row} and {!encode_row_strided}. Purely a warm-up: table
    publication is race-free one-shot (first caller builds, racing
    callers wait), so parallel encoders are correct without it. *)

val wide_table_builds : unit -> int
(** Cumulative number of 128 KiB wide tables actually built (across all
    coefficients, process-wide). Monotone. One-shot publication means a
    coefficient contributes exactly one build no matter how many domains
    race on its first use — take a delta around a race to test that. *)

val log : t -> int
(** Discrete log base 3; raises [Invalid_argument] on [0]. *)
