type t = int

let zero = 0
let one = 1

(* x^8 + x^4 + x^3 + x + 1, the AES reduction polynomial. *)
let poly = 0x11b

(* Carry-less multiply-and-reduce, used only to build the tables. *)
let slow_mul a b =
  let rec go acc a b =
    if b = 0 then acc
    else
      let acc = if b land 1 = 1 then acc lxor a else acc in
      let a = a lsl 1 in
      let a = if a land 0x100 <> 0 then a lxor poly else a in
      go acc a (b lsr 1)
  in
  go 0 (a land 0xff) (b land 0xff)

(* exp_table.(k) = 3^k for k in [0, 509]; doubled so that
   [exp_table.(log a + log b)] needs no modular reduction. *)
let exp_table = Array.make 510 0

let log_table = Array.make 256 0

let () =
  let x = ref 1 in
  for k = 0 to 254 do
    exp_table.(k) <- !x;
    exp_table.(k + 255) <- !x;
    log_table.(!x) <- k;
    x := slow_mul !x 3
  done

(* The flattened multiplication table: [mul_tab.[c*256 + x] = c * x] for
   every coefficient [c]. 64 KiB, built once at startup, shared by every
   bulk kernel below — one unsafe byte lookup replaces the seed path's
   two bounds-checked array reads plus a zero-test per byte. Read-only
   after initialization, so safe to share across domains. *)
let mul_tab = Bytes.create 65536

let () =
  for c = 0 to 255 do
    let base = c lsl 8 in
    for x = 0 to 255 do
      Bytes.unsafe_set mul_tab (base lor x) (Char.unsafe_chr (slow_mul c x))
    done
  done

(* Unaligned 16-bit loads/stores, no bounds check — the same compiler
   primitives [Stdlib.Bytes] builds its checked accessors from. Native
   byte order on both ends keeps the wide tables endian-agnostic: a unit
   read from a source buffer and the unit stored in the table transpose
   bytes identically. *)
external unsafe_get16 : bytes -> int -> int = "%caml_bytes_get16u"
external unsafe_set16 : bytes -> int -> int -> unit = "%caml_bytes_set16u"

(* Wide tables: [wide_tabs.(c)] maps every 16-bit source unit [(x0, x1)]
   to the unit [(c*x0, c*x1)], halving the lookups per output byte in the
   fused row kernels. 128 KiB per coefficient, built lazily on first use
   (up to 32 MiB if all 255 nonzero coefficients appear). Publication is
   a single pointer store after the fill loop, so concurrent readers see
   either [Bytes.empty] (and rebuild, idempotently) or a complete table;
   parallel encoders should still call [ensure_tables] from the
   submitting domain first to avoid racy duplicate builds. *)
let wide_tabs = Array.make 256 Bytes.empty

let wide_table c =
  let c = c land 0xff in
  let t = wide_tabs.(c) in
  if Bytes.length t <> 0 then t
  else begin
    let t = Bytes.create 131072 in
    let base = c lsl 8 in
    for x = 0 to 65535 do
      let lo = Char.code (Bytes.unsafe_get mul_tab (base lor (x land 0xff))) in
      let hi = Char.code (Bytes.unsafe_get mul_tab (base lor (x lsr 8))) in
      unsafe_set16 t (2 * x) (lo lor (hi lsl 8))
    done;
    wide_tabs.(c) <- t;
    t
  end

let ensure_tables coeffs = Array.iter (fun c -> ignore (wide_table c)) coeffs

let add a b = (a lxor b) land 0xff
let sub = add

let mul a b =
  let a = a land 0xff and b = b land 0xff in
  if a = 0 || b = 0 then 0 else exp_table.(log_table.(a) + log_table.(b))

let inv a =
  let a = a land 0xff in
  if a = 0 then raise Division_by_zero;
  exp_table.(255 - log_table.(a))

let div a b = mul a (inv b)

let exp k =
  let k = ((k mod 255) + 255) mod 255 in
  exp_table.(k)

let log a =
  let a = a land 0xff in
  if a = 0 then invalid_arg "Gf256.log: zero has no discrete log";
  log_table.(a)

let mul_table c =
  let c = c land 0xff in
  Bytes.sub mul_tab (c lsl 8) 256

let axpy ~acc ~coeff ~src =
  if Bytes.length acc <> Bytes.length src then
    invalid_arg "Gf256.axpy: length mismatch";
  let coeff = coeff land 0xff in
  if coeff <> 0 then begin
    let base = coeff lsl 8 in
    for i = 0 to Bytes.length acc - 1 do
      Bytes.unsafe_set acc i
        (Char.unsafe_chr
           (Char.code (Bytes.unsafe_get acc i)
           lxor Char.code
                  (Bytes.unsafe_get mul_tab
                     (base lor Char.code (Bytes.unsafe_get src i)))))
    done
  end

let mul_into ~dst ~coeff ~src =
  if Bytes.length dst <> Bytes.length src then
    invalid_arg "Gf256.mul_into: length mismatch";
  let coeff = coeff land 0xff in
  if coeff = 0 then Bytes.fill dst 0 (Bytes.length dst) '\000'
  else begin
    let base = coeff lsl 8 in
    for i = 0 to Bytes.length dst - 1 do
      Bytes.unsafe_set dst i
        (Bytes.unsafe_get mul_tab (base lor Char.code (Bytes.unsafe_get src i)))
    done
  end

let encode_row ~dst ~coeffs ~srcs =
  let k = Array.length coeffs in
  if Array.length srcs <> k then invalid_arg "Gf256.encode_row: arity mismatch";
  let n = Bytes.length dst in
  Array.iter
    (fun s ->
      if Bytes.length s <> n then invalid_arg "Gf256.encode_row: length mismatch")
    srcs;
  (* Drop zero coefficients up front so the unit loop is branch-free. *)
  let tabs = Array.make (max 1 k) Bytes.empty in
  let inputs = Array.make (max 1 k) Bytes.empty in
  let live = ref 0 in
  for j = 0 to k - 1 do
    let c = coeffs.(j) land 0xff in
    if c <> 0 then begin
      tabs.(!live) <- wide_table c;
      inputs.(!live) <- srcs.(j);
      incr live
    end
  done;
  let live = !live in
  if live = 0 then Bytes.fill dst 0 n '\000'
  else begin
    (* One fused pass, two bytes per step: each output unit accumulates
       the whole matrix row through the wide tables, so [dst] is written
       once instead of [k] read-modify-write sweeps. *)
    let units = n / 2 in
    for u = 0 to units - 1 do
      let du = 2 * u in
      let acc = ref 0 in
      for j = 0 to live - 1 do
        let x = unsafe_get16 (Array.unsafe_get inputs j) du in
        acc := !acc lxor unsafe_get16 (Array.unsafe_get tabs j) (2 * x)
      done;
      unsafe_set16 dst du !acc
    done;
    if n land 1 = 1 then begin
      let i = n - 1 in
      let acc = ref 0 in
      for j = 0 to live - 1 do
        let x = Char.code (Bytes.unsafe_get (Array.unsafe_get inputs j) i) in
        acc := !acc lxor Char.code (Bytes.unsafe_get (Array.unsafe_get tabs j) (2 * x))
      done;
      Bytes.unsafe_set dst i (Char.unsafe_chr !acc)
    end
  end

let encode_row_strided ~dst ~coeffs ~src ~stride =
  let k = Array.length coeffs in
  let n = Bytes.length dst in
  if stride < n then invalid_arg "Gf256.encode_row_strided: stride < dst length";
  if Bytes.length src < k * stride then
    invalid_arg "Gf256.encode_row_strided: src shorter than coeffs * stride";
  let tabs = Array.make (max 1 k) Bytes.empty in
  let offs = Array.make (max 1 k) 0 in
  let live = ref 0 in
  for j = 0 to k - 1 do
    let c = coeffs.(j) land 0xff in
    if c <> 0 then begin
      tabs.(!live) <- wide_table c;
      offs.(!live) <- j * stride;
      incr live
    end
  done;
  let live = !live in
  if live = 0 then Bytes.fill dst 0 n '\000'
  else begin
    (* Same fused kernel as [encode_row], but source block [j] is read in
       place at offset [j * stride] of one contiguous buffer — dispersal
       needs no per-block extraction copies at all. *)
    let units = n / 2 in
    for u = 0 to units - 1 do
      let du = 2 * u in
      let acc = ref 0 in
      for j = 0 to live - 1 do
        let x = unsafe_get16 src (Array.unsafe_get offs j + du) in
        acc := !acc lxor unsafe_get16 (Array.unsafe_get tabs j) (2 * x)
      done;
      unsafe_set16 dst du !acc
    done;
    if n land 1 = 1 then begin
      let i = n - 1 in
      let acc = ref 0 in
      for j = 0 to live - 1 do
        let x = Char.code (Bytes.unsafe_get src (Array.unsafe_get offs j + i)) in
        acc := !acc lxor Char.code (Bytes.unsafe_get (Array.unsafe_get tabs j) (2 * x))
      done;
      Bytes.unsafe_set dst i (Char.unsafe_chr !acc)
    end
  end

(* The grouped kernels below skip no zero coefficients: the wide table of
   0 is all-zeroes, so a zero coefficient costs one wasted lookup per unit
   instead of a branch — dispersal matrices have none anyway. *)

let tabs_of row = Array.map wide_table row

let fused1 ~dst ~tabs ~src ~stride =
  let k = Array.length tabs in
  let n = Bytes.length dst in
  let units = n / 2 in
  for u = 0 to units - 1 do
    let du = 2 * u in
    let acc = ref 0 in
    for j = 0 to k - 1 do
      let x = unsafe_get16 src ((j * stride) + du) in
      acc := !acc lxor unsafe_get16 (Array.unsafe_get tabs j) (2 * x)
    done;
    unsafe_set16 dst du !acc
  done;
  if n land 1 = 1 then begin
    let i = n - 1 in
    let acc = ref 0 in
    for j = 0 to k - 1 do
      let x = Char.code (Bytes.unsafe_get src ((j * stride) + i)) in
      acc := !acc lxor Char.code (Bytes.unsafe_get (Array.unsafe_get tabs j) (2 * x))
    done;
    Bytes.unsafe_set dst i (Char.unsafe_chr !acc)
  end

let fused2 ~dst1 ~dst2 ~t1 ~t2 ~src ~stride =
  let k = Array.length t1 in
  let n = Bytes.length dst1 in
  let units = n / 2 in
  for u = 0 to units - 1 do
    let du = 2 * u in
    let a1 = ref 0 and a2 = ref 0 in
    for j = 0 to k - 1 do
      let x = unsafe_get16 src ((j * stride) + du) in
      a1 := !a1 lxor unsafe_get16 (Array.unsafe_get t1 j) (2 * x);
      a2 := !a2 lxor unsafe_get16 (Array.unsafe_get t2 j) (2 * x)
    done;
    unsafe_set16 dst1 du !a1;
    unsafe_set16 dst2 du !a2
  done;
  if n land 1 = 1 then begin
    let i = n - 1 in
    let a1 = ref 0 and a2 = ref 0 in
    for j = 0 to k - 1 do
      let x = Char.code (Bytes.unsafe_get src ((j * stride) + i)) in
      a1 := !a1 lxor Char.code (Bytes.unsafe_get (Array.unsafe_get t1 j) (2 * x));
      a2 := !a2 lxor Char.code (Bytes.unsafe_get (Array.unsafe_get t2 j) (2 * x))
    done;
    Bytes.unsafe_set dst1 i (Char.unsafe_chr !a1);
    Bytes.unsafe_set dst2 i (Char.unsafe_chr !a2)
  end

let fused4 ~dst1 ~dst2 ~dst3 ~dst4 ~t1 ~t2 ~t3 ~t4 ~src ~stride =
  let k = Array.length t1 in
  let n = Bytes.length dst1 in
  let units = n / 2 in
  for u = 0 to units - 1 do
    let du = 2 * u in
    let a1 = ref 0 and a2 = ref 0 and a3 = ref 0 and a4 = ref 0 in
    for j = 0 to k - 1 do
      let x = unsafe_get16 src ((j * stride) + du) in
      a1 := !a1 lxor unsafe_get16 (Array.unsafe_get t1 j) (2 * x);
      a2 := !a2 lxor unsafe_get16 (Array.unsafe_get t2 j) (2 * x);
      a3 := !a3 lxor unsafe_get16 (Array.unsafe_get t3 j) (2 * x);
      a4 := !a4 lxor unsafe_get16 (Array.unsafe_get t4 j) (2 * x)
    done;
    unsafe_set16 dst1 du !a1;
    unsafe_set16 dst2 du !a2;
    unsafe_set16 dst3 du !a3;
    unsafe_set16 dst4 du !a4
  done;
  if n land 1 = 1 then begin
    let i = n - 1 in
    let a1 = ref 0 and a2 = ref 0 and a3 = ref 0 and a4 = ref 0 in
    for j = 0 to k - 1 do
      let x = Char.code (Bytes.unsafe_get src ((j * stride) + i)) in
      a1 := !a1 lxor Char.code (Bytes.unsafe_get (Array.unsafe_get t1 j) (2 * x));
      a2 := !a2 lxor Char.code (Bytes.unsafe_get (Array.unsafe_get t2 j) (2 * x));
      a3 := !a3 lxor Char.code (Bytes.unsafe_get (Array.unsafe_get t3 j) (2 * x));
      a4 := !a4 lxor Char.code (Bytes.unsafe_get (Array.unsafe_get t4 j) (2 * x))
    done;
    Bytes.unsafe_set dst1 i (Char.unsafe_chr !a1);
    Bytes.unsafe_set dst2 i (Char.unsafe_chr !a2);
    Bytes.unsafe_set dst3 i (Char.unsafe_chr !a3);
    Bytes.unsafe_set dst4 i (Char.unsafe_chr !a4)
  end

(* Observability handles: one atomic bump per bulk entry point, never per
   byte, and only when the metrics flag is up — the kernels stay clean. *)
let obs_encode_calls = Pindisk_obs.Registry.counter "gf256.encode_rows.calls"
let obs_encode_bytes = Pindisk_obs.Registry.counter "gf256.encode_rows.bytes"

let encode_rows ~dsts ~rows ~src ~stride =
  let g = Array.length dsts in
  if Array.length rows <> g then invalid_arg "Gf256.encode_rows: arity mismatch";
  if g > 0 then begin
    let n = Bytes.length dsts.(0) in
    if Pindisk_obs.Control.enabled () then begin
      Pindisk_obs.Registry.incr obs_encode_calls;
      Pindisk_obs.Registry.add obs_encode_bytes (g * n)
    end;
    Array.iter
      (fun d ->
        if Bytes.length d <> n then
          invalid_arg "Gf256.encode_rows: dst lengths disagree")
      dsts;
    if stride < n then invalid_arg "Gf256.encode_rows: stride < dst length";
    let k = Array.length rows.(0) in
    Array.iter
      (fun r ->
        if Array.length r <> k then
          invalid_arg "Gf256.encode_rows: row widths disagree")
      rows;
    if Bytes.length src < k * stride then
      invalid_arg "Gf256.encode_rows: src shorter than row width * stride";
    let tabs = Array.map tabs_of rows in
    (* Groups of four, then two, then one: every group is a single pass
       over the source units, so each loaded unit feeds up to four output
       rows instead of being re-read once per row. *)
    let i = ref 0 in
    while g - !i >= 4 do
      fused4 ~dst1:dsts.(!i) ~dst2:dsts.(!i + 1) ~dst3:dsts.(!i + 2)
        ~dst4:dsts.(!i + 3) ~t1:tabs.(!i) ~t2:tabs.(!i + 1) ~t3:tabs.(!i + 2)
        ~t4:tabs.(!i + 3) ~src ~stride;
      i := !i + 4
    done;
    if g - !i >= 2 then begin
      fused2 ~dst1:dsts.(!i) ~dst2:dsts.(!i + 1) ~t1:tabs.(!i)
        ~t2:tabs.(!i + 1) ~src ~stride;
      i := !i + 2
    end;
    if g - !i = 1 then fused1 ~dst:dsts.(!i) ~tabs:tabs.(!i) ~src ~stride
  end

let pow x k =
  if k < 0 then invalid_arg "Gf256.pow: negative exponent";
  let x = x land 0xff in
  if x = 0 then (if k = 0 then 1 else 0)
  else exp (log_table.(x) * k)
