type t = int

let zero = 0
let one = 1

(* x^8 + x^4 + x^3 + x + 1, the AES reduction polynomial. *)
let poly = 0x11b

(* Carry-less multiply-and-reduce, used only to build the tables. *)
let slow_mul a b =
  let rec go acc a b =
    if b = 0 then acc
    else
      let acc = if b land 1 = 1 then acc lxor a else acc in
      let a = a lsl 1 in
      let a = if a land 0x100 <> 0 then a lxor poly else a in
      go acc a (b lsr 1)
  in
  go 0 (a land 0xff) (b land 0xff)

(* exp_table.(k) = 3^k for k in [0, 509]; doubled so that
   [exp_table.(log a + log b)] needs no modular reduction. *)
let exp_table = Array.make 510 0

let log_table = Array.make 256 0

let () =
  let x = ref 1 in
  for k = 0 to 254 do
    exp_table.(k) <- !x;
    exp_table.(k + 255) <- !x;
    log_table.(!x) <- k;
    x := slow_mul !x 3
  done

let add a b = (a lxor b) land 0xff
let sub = add

let mul a b =
  let a = a land 0xff and b = b land 0xff in
  if a = 0 || b = 0 then 0 else exp_table.(log_table.(a) + log_table.(b))

let inv a =
  let a = a land 0xff in
  if a = 0 then raise Division_by_zero;
  exp_table.(255 - log_table.(a))

let div a b = mul a (inv b)

let exp k =
  let k = ((k mod 255) + 255) mod 255 in
  exp_table.(k)

let log a =
  let a = a land 0xff in
  if a = 0 then invalid_arg "Gf256.log: zero has no discrete log";
  log_table.(a)

let axpy ~acc ~coeff ~src =
  if Bytes.length acc <> Bytes.length src then
    invalid_arg "Gf256.axpy: length mismatch";
  let coeff = coeff land 0xff in
  if coeff <> 0 then begin
    let lc = log_table.(coeff) in
    for i = 0 to Bytes.length acc - 1 do
      let s = Char.code (Bytes.unsafe_get src i) in
      if s <> 0 then
        Bytes.unsafe_set acc i
          (Char.unsafe_chr
             (Char.code (Bytes.unsafe_get acc i)
             lxor exp_table.(lc + log_table.(s))))
    done
  end

let pow x k =
  if k < 0 then invalid_arg "Gf256.pow: negative exponent";
  let x = x land 0xff in
  if x = 0 then (if k = 0 then 1 else 0)
  else exp (log_table.(x) * k)
