type t = int

let zero = 0
let one = 1

(* x^8 + x^4 + x^3 + x + 1, the AES reduction polynomial. *)
let poly = 0x11b

(* Carry-less multiply-and-reduce, used only to build the tables. *)
let slow_mul a b =
  let rec go acc a b =
    if b = 0 then acc
    else
      let acc = if b land 1 = 1 then acc lxor a else acc in
      let a = a lsl 1 in
      let a = if a land 0x100 <> 0 then a lxor poly else a in
      go acc a (b lsr 1)
  in
  go 0 (a land 0xff) (b land 0xff)

(* exp_table.(k) = 3^k for k in [0, 509]; doubled so that
   [exp_table.(log a + log b)] needs no modular reduction. *)
let exp_table = Array.make 510 0

let log_table = Array.make 256 0

let () =
  let x = ref 1 in
  for k = 0 to 254 do
    exp_table.(k) <- !x;
    exp_table.(k + 255) <- !x;
    log_table.(!x) <- k;
    x := slow_mul !x 3
  done

(* The flattened multiplication table: [mul_tab.[c*256 + x] = c * x] for
   every coefficient [c]. 64 KiB, built once at startup, shared by every
   bulk kernel below — one unsafe byte lookup replaces the seed path's
   two bounds-checked array reads plus a zero-test per byte. Read-only
   after initialization, so safe to share across domains. *)
let mul_tab = Bytes.create 65536

let () =
  for c = 0 to 255 do
    let base = c lsl 8 in
    for x = 0 to 255 do
      Bytes.unsafe_set mul_tab (base lor x) (Char.unsafe_chr (slow_mul c x))
    done
  done

(* Unaligned loads/stores, no bounds check — the same compiler
   primitives [Stdlib.Bytes] builds its checked accessors from. Native
   byte order on both ends keeps the wide tables endian-agnostic: a unit
   read from a source buffer and the unit stored in the table transpose
   bytes identically. The 64-bit load feeds the SWAR lane kernel below,
   which consumes eight source bytes per load. *)
external unsafe_get16 : bytes -> int -> int = "%caml_bytes_get16u"
external unsafe_set16 : bytes -> int -> int -> unit = "%caml_bytes_set16u"
external unsafe_get64 : bytes -> int -> int64 = "%caml_bytes_get64u"

(* Wide tables: [wide_tabs.(c)] maps every 16-bit source unit [(x0, x1)]
   to the unit [(c*x0, c*x1)], halving the lookups per output byte in the
   single-row kernels. 128 KiB per coefficient, built lazily on first use
   (up to 32 MiB if all 255 nonzero coefficients appear).

   Publication is one-shot: the first caller to CAS the slot from empty
   to the [building] sentinel owns the build and publishes the finished
   table with a plain atomic store; every racing caller spins on the slot
   until the table appears. Concurrent first-use of one coefficient
   therefore builds its table exactly once — [wide_table_builds] counts
   the builds so tests can pin that down — and readers can never observe
   a partially-filled table. *)
let wide_tabs : Bytes.t Atomic.t array =
  Array.init 256 (fun _ -> Atomic.make Bytes.empty)

let building = Bytes.create 0
let builds = Atomic.make 0
let wide_table_builds () = Atomic.get builds

let rec wide_table c =
  let c = c land 0xff in
  let slot = Array.unsafe_get wide_tabs c in
  let t = Atomic.get slot in
  if Bytes.length t <> 0 then t
  else if t == building || not (Atomic.compare_and_set slot Bytes.empty building)
  then begin
    (* Another domain owns the build; wait for publication. *)
    Domain.cpu_relax ();
    wide_table c
  end
  else begin
    Atomic.incr builds;
    let t = Bytes.create 131072 in
    let base = c lsl 8 in
    for x = 0 to 65535 do
      let lo = Char.code (Bytes.unsafe_get mul_tab (base lor (x land 0xff))) in
      let hi = Char.code (Bytes.unsafe_get mul_tab (base lor (x lsr 8))) in
      unsafe_set16 t (2 * x) (lo lor (hi lsl 8))
    done;
    Atomic.set slot t;
    t
  end

let ensure_tables coeffs = Array.iter (fun c -> ignore (wide_table c)) coeffs

let add a b = (a lxor b) land 0xff
let sub = add

let mul a b =
  let a = a land 0xff and b = b land 0xff in
  if a = 0 || b = 0 then 0 else exp_table.(log_table.(a) + log_table.(b))

let inv a =
  let a = a land 0xff in
  if a = 0 then raise Division_by_zero;
  exp_table.(255 - log_table.(a))

let div a b = mul a (inv b)

let exp k =
  let k = ((k mod 255) + 255) mod 255 in
  exp_table.(k)

let log a =
  let a = a land 0xff in
  if a = 0 then invalid_arg "Gf256.log: zero has no discrete log";
  log_table.(a)

let mul_table c =
  let c = c land 0xff in
  Bytes.sub mul_tab (c lsl 8) 256

let axpy ~acc ~coeff ~src =
  if Bytes.length acc <> Bytes.length src then
    invalid_arg "Gf256.axpy: length mismatch";
  let coeff = coeff land 0xff in
  if coeff <> 0 then begin
    let base = coeff lsl 8 in
    for i = 0 to Bytes.length acc - 1 do
      Bytes.unsafe_set acc i
        (Char.unsafe_chr
           (Char.code (Bytes.unsafe_get acc i)
           lxor Char.code
                  (Bytes.unsafe_get mul_tab
                     (base lor Char.code (Bytes.unsafe_get src i)))))
    done
  end

let mul_into ~dst ~coeff ~src =
  if Bytes.length dst <> Bytes.length src then
    invalid_arg "Gf256.mul_into: length mismatch";
  let coeff = coeff land 0xff in
  if coeff = 0 then Bytes.fill dst 0 (Bytes.length dst) '\000'
  else begin
    let base = coeff lsl 8 in
    for i = 0 to Bytes.length dst - 1 do
      Bytes.unsafe_set dst i
        (Bytes.unsafe_get mul_tab (base lor Char.code (Bytes.unsafe_get src i)))
    done
  end

let encode_row ~dst ~coeffs ~srcs =
  let k = Array.length coeffs in
  if Array.length srcs <> k then invalid_arg "Gf256.encode_row: arity mismatch";
  let n = Bytes.length dst in
  Array.iter
    (fun s ->
      if Bytes.length s <> n then invalid_arg "Gf256.encode_row: length mismatch")
    srcs;
  (* Drop zero coefficients up front so the unit loop is branch-free. *)
  let tabs = Array.make (max 1 k) Bytes.empty in
  let inputs = Array.make (max 1 k) Bytes.empty in
  let live = ref 0 in
  for j = 0 to k - 1 do
    let c = coeffs.(j) land 0xff in
    if c <> 0 then begin
      tabs.(!live) <- wide_table c;
      inputs.(!live) <- srcs.(j);
      incr live
    end
  done;
  let live = !live in
  if live = 0 then Bytes.fill dst 0 n '\000'
  else begin
    (* One fused pass, two bytes per step: each output unit accumulates
       the whole matrix row through the wide tables, so [dst] is written
       once instead of [k] read-modify-write sweeps. *)
    let units = n / 2 in
    for u = 0 to units - 1 do
      let du = 2 * u in
      let acc = ref 0 in
      for j = 0 to live - 1 do
        let x = unsafe_get16 (Array.unsafe_get inputs j) du in
        acc := !acc lxor unsafe_get16 (Array.unsafe_get tabs j) (2 * x)
      done;
      unsafe_set16 dst du !acc
    done;
    if n land 1 = 1 then begin
      let i = n - 1 in
      let acc = ref 0 in
      for j = 0 to live - 1 do
        let x = Char.code (Bytes.unsafe_get (Array.unsafe_get inputs j) i) in
        acc := !acc lxor Char.code (Bytes.unsafe_get (Array.unsafe_get tabs j) (2 * x))
      done;
      Bytes.unsafe_set dst i (Char.unsafe_chr !acc)
    end
  end

let encode_row_strided ~dst ~coeffs ~src ~stride =
  let k = Array.length coeffs in
  let n = Bytes.length dst in
  if stride < n then invalid_arg "Gf256.encode_row_strided: stride < dst length";
  if Bytes.length src < k * stride then
    invalid_arg "Gf256.encode_row_strided: src shorter than coeffs * stride";
  let tabs = Array.make (max 1 k) Bytes.empty in
  let offs = Array.make (max 1 k) 0 in
  let live = ref 0 in
  for j = 0 to k - 1 do
    let c = coeffs.(j) land 0xff in
    if c <> 0 then begin
      tabs.(!live) <- wide_table c;
      offs.(!live) <- j * stride;
      incr live
    end
  done;
  let live = !live in
  if live = 0 then Bytes.fill dst 0 n '\000'
  else begin
    (* Same fused kernel as [encode_row], but source block [j] is read in
       place at offset [j * stride] of one contiguous buffer — dispersal
       needs no per-block extraction copies at all. *)
    let units = n / 2 in
    for u = 0 to units - 1 do
      let du = 2 * u in
      let acc = ref 0 in
      for j = 0 to live - 1 do
        let x = unsafe_get16 src (Array.unsafe_get offs j + du) in
        acc := !acc lxor unsafe_get16 (Array.unsafe_get tabs j) (2 * x)
      done;
      unsafe_set16 dst du !acc
    done;
    if n land 1 = 1 then begin
      let i = n - 1 in
      let acc = ref 0 in
      for j = 0 to live - 1 do
        let x = Char.code (Bytes.unsafe_get src (Array.unsafe_get offs j + i)) in
        acc := !acc lxor Char.code (Bytes.unsafe_get (Array.unsafe_get tabs j) (2 * x))
      done;
      Bytes.unsafe_set dst i (Char.unsafe_chr !acc)
    end
  end

(* SWAR lane tables: for a group of up to four matrix rows, [tabs.(j)] is
   a 256-entry int array whose entry [b] packs the four products
   [rows.(r).(j) * b] into byte lanes [r] of one native int. The kernel
   then reads eight source bytes per [unsafe_get64] load and, per
   coefficient, does one table lookup per source byte that accumulates
   into {e all} rows of the group at once via a single XOR-fold — the
   per-output-byte cost is [k/4] lookups for a 4-row group, against [k/2]
   (from 128 KiB tables that overflow L1) for the retired wide-table
   grouped kernels. Zero coefficients are not skipped: their lane is
   all-zero and costs nothing extra, and dispersal matrices have none.

   A [lanes] value is immutable after construction, so it is safe to
   build once and share across domains (publish it through an [Atomic]
   or build it before spawning). *)

type lanes = { width : int; group : int; tabs : int array array }

let lanes rows =
  let group = Array.length rows in
  if group < 1 || group > 4 then invalid_arg "Gf256.lanes: need 1 to 4 rows";
  let width = Array.length rows.(0) in
  Array.iter
    (fun r ->
      if Array.length r <> width then
        invalid_arg "Gf256.lanes: row widths disagree")
    rows;
  let tabs =
    Array.init width (fun j ->
        let t = Array.make 256 0 in
        for lane = 0 to group - 1 do
          let base = (rows.(lane).(j) land 0xff) lsl 8 in
          let sh = lane * 8 in
          for b = 0 to 255 do
            t.(b) <-
              t.(b)
              lor (Char.code (Bytes.unsafe_get mul_tab (base lor b)) lsl sh)
          done
        done;
        t)
  in
  { width; group; tabs }

let lanes_group l = l.group
let lanes_width l = l.width

(* Shared 8-byte step: fold coefficient [j]'s lane table over the eight
   source bytes at [off], leaving the packed row lanes for source bytes
   0..3 in [a0..a3] and for bytes 4..7 in [b0..b3]. Two accumulator
   quartets rather than one 64-bit packing: OCaml ints are 63-bit, so
   packing the high half with [lsl 32] would drop lane 4's top bit. *)

let[@inline] swar_fold tabs k src stride off a0 a1 a2 a3 b0 b1 b2 b3 =
  for j = 0 to k - 1 do
    let x = unsafe_get64 src ((j * stride) + off) in
    let xl = Int64.to_int x land 0xffffffff in
    let xh = Int64.to_int (Int64.shift_right_logical x 32) land 0xffffffff in
    let t = Array.unsafe_get tabs j in
    a0 := !a0 lxor Array.unsafe_get t (xl land 0xff);
    a1 := !a1 lxor Array.unsafe_get t ((xl lsr 8) land 0xff);
    a2 := !a2 lxor Array.unsafe_get t ((xl lsr 16) land 0xff);
    a3 := !a3 lxor Array.unsafe_get t (xl lsr 24);
    b0 := !b0 lxor Array.unsafe_get t (xh land 0xff);
    b1 := !b1 lxor Array.unsafe_get t ((xh lsr 8) land 0xff);
    b2 := !b2 lxor Array.unsafe_get t ((xh lsr 16) land 0xff);
    b3 := !b3 lxor Array.unsafe_get t (xh lsr 24)
  done

let encode_lanes l ~dsts ~src ~stride ~pos ~len =
  let g = Array.length dsts in
  if g < 1 || g > l.group then
    invalid_arg "Gf256.encode_lanes: need 1 to lanes-group destinations";
  if pos < 0 || len < 0 then
    invalid_arg "Gf256.encode_lanes: negative pos or len";
  Array.iter
    (fun d ->
      if Bytes.length d < pos + len then
        invalid_arg "Gf256.encode_lanes: dst shorter than pos + len")
    dsts;
  let k = l.width in
  if k > 0 then begin
    if stride < 0 then invalid_arg "Gf256.encode_lanes: negative stride";
    if Bytes.length src < ((k - 1) * stride) + pos + len then
      invalid_arg "Gf256.encode_lanes: src too short"
  end;
  let tabs = l.tabs in
  let units = len / 8 in
  (match g with
  | 4 ->
      let dst1 = dsts.(0) and dst2 = dsts.(1) in
      let dst3 = dsts.(2) and dst4 = dsts.(3) in
      for u = 0 to units - 1 do
        let off = pos + (8 * u) in
        let a0 = ref 0 and a1 = ref 0 and a2 = ref 0 and a3 = ref 0 in
        let b0 = ref 0 and b1 = ref 0 and b2 = ref 0 and b3 = ref 0 in
        swar_fold tabs k src stride off a0 a1 a2 a3 b0 b1 b2 b3;
        let a0 = !a0 and a1 = !a1 and a2 = !a2 and a3 = !a3 in
        let b0 = !b0 and b1 = !b1 and b2 = !b2 and b3 = !b3 in
        let store d sh =
          unsafe_set16 d off
            (((a0 lsr sh) land 0xff) lor (((a1 lsr sh) land 0xff) lsl 8));
          unsafe_set16 d (off + 2)
            (((a2 lsr sh) land 0xff) lor (((a3 lsr sh) land 0xff) lsl 8));
          unsafe_set16 d (off + 4)
            (((b0 lsr sh) land 0xff) lor (((b1 lsr sh) land 0xff) lsl 8));
          unsafe_set16 d (off + 6)
            (((b2 lsr sh) land 0xff) lor (((b3 lsr sh) land 0xff) lsl 8))
        in
        store dst1 0; store dst2 8; store dst3 16; store dst4 24
      done
  | 2 ->
      let dst1 = dsts.(0) and dst2 = dsts.(1) in
      for u = 0 to units - 1 do
        let off = pos + (8 * u) in
        let a0 = ref 0 and a1 = ref 0 and a2 = ref 0 and a3 = ref 0 in
        let b0 = ref 0 and b1 = ref 0 and b2 = ref 0 and b3 = ref 0 in
        swar_fold tabs k src stride off a0 a1 a2 a3 b0 b1 b2 b3;
        let a0 = !a0 and a1 = !a1 and a2 = !a2 and a3 = !a3 in
        let b0 = !b0 and b1 = !b1 and b2 = !b2 and b3 = !b3 in
        let store d sh =
          unsafe_set16 d off
            (((a0 lsr sh) land 0xff) lor (((a1 lsr sh) land 0xff) lsl 8));
          unsafe_set16 d (off + 2)
            (((a2 lsr sh) land 0xff) lor (((a3 lsr sh) land 0xff) lsl 8));
          unsafe_set16 d (off + 4)
            (((b0 lsr sh) land 0xff) lor (((b1 lsr sh) land 0xff) lsl 8));
          unsafe_set16 d (off + 6)
            (((b2 lsr sh) land 0xff) lor (((b3 lsr sh) land 0xff) lsl 8))
        in
        store dst1 0; store dst2 8
      done
  | _ ->
      for u = 0 to units - 1 do
        let off = pos + (8 * u) in
        let a0 = ref 0 and a1 = ref 0 and a2 = ref 0 and a3 = ref 0 in
        let b0 = ref 0 and b1 = ref 0 and b2 = ref 0 and b3 = ref 0 in
        swar_fold tabs k src stride off a0 a1 a2 a3 b0 b1 b2 b3;
        let a0 = !a0 and a1 = !a1 and a2 = !a2 and a3 = !a3 in
        let b0 = !b0 and b1 = !b1 and b2 = !b2 and b3 = !b3 in
        for r = 0 to g - 1 do
          let sh = 8 * r in
          let d = Array.unsafe_get dsts r in
          unsafe_set16 d off
            (((a0 lsr sh) land 0xff) lor (((a1 lsr sh) land 0xff) lsl 8));
          unsafe_set16 d (off + 2)
            (((a2 lsr sh) land 0xff) lor (((a3 lsr sh) land 0xff) lsl 8));
          unsafe_set16 d (off + 4)
            (((b0 lsr sh) land 0xff) lor (((b1 lsr sh) land 0xff) lsl 8));
          unsafe_set16 d (off + 6)
            (((b2 lsr sh) land 0xff) lor (((b3 lsr sh) land 0xff) lsl 8))
        done
      done);
  (* Scalar tail for the 0..7 bytes past the last full 8-byte unit. *)
  for i = pos + (8 * units) to pos + len - 1 do
    let acc = ref 0 in
    for j = 0 to k - 1 do
      let x = Char.code (Bytes.unsafe_get src ((j * stride) + i)) in
      acc := !acc lxor Array.unsafe_get (Array.unsafe_get tabs j) x
    done;
    let acc = !acc in
    for r = 0 to g - 1 do
      Bytes.unsafe_set dsts.(r) i (Char.unsafe_chr ((acc lsr (8 * r)) land 0xff))
    done
  done

(* Observability handles: one atomic bump per bulk entry point, never per
   byte, and only when the metrics flag is up — the kernels stay clean. *)
let obs_encode_calls = Pindisk_obs.Registry.counter "gf256.encode_rows.calls"
let obs_encode_bytes = Pindisk_obs.Registry.counter "gf256.encode_rows.bytes"

let encode_rows ~dsts ~rows ~src ~stride =
  let g = Array.length dsts in
  if Array.length rows <> g then invalid_arg "Gf256.encode_rows: arity mismatch";
  if g > 0 then begin
    let n = Bytes.length dsts.(0) in
    if Pindisk_obs.Control.enabled () then begin
      Pindisk_obs.Registry.incr obs_encode_calls;
      Pindisk_obs.Registry.add obs_encode_bytes (g * n)
    end;
    Array.iter
      (fun d ->
        if Bytes.length d <> n then
          invalid_arg "Gf256.encode_rows: dst lengths disagree")
      dsts;
    if stride < n then invalid_arg "Gf256.encode_rows: stride < dst length";
    let k = Array.length rows.(0) in
    Array.iter
      (fun r ->
        if Array.length r <> k then
          invalid_arg "Gf256.encode_rows: row widths disagree")
      rows;
    if Bytes.length src < k * stride then
      invalid_arg "Gf256.encode_rows: src shorter than row width * stride";
    (* Groups of up to four rows, each a single SWAR pass over the source
       units: every loaded unit feeds the whole group through the packed
       lane tables instead of being re-read once per row. The lane tables
       are rebuilt per call (256 * k ints per group — noise next to any
       bulk encode); callers that encode the same rows repeatedly should
       build {!lanes} once and use {!encode_lanes} directly. *)
    let i = ref 0 in
    while !i < g do
      let w = min 4 (g - !i) in
      let l = lanes (Array.sub rows !i w) in
      encode_lanes l ~dsts:(Array.sub dsts !i w) ~src ~stride ~pos:0 ~len:n;
      i := !i + w
    done
  end

let pow x k =
  if k < 0 then invalid_arg "Gf256.pow: negative exponent";
  let x = x land 0xff in
  if x = 0 then (if k = 0 then 1 else 0)
  else exp (log_table.(x) * k)
