module Q = Pindisk_util.Q
module Task = Pindisk_pinwheel.Task
module Schedule = Pindisk_pinwheel.Schedule
module Verify = Pindisk_pinwheel.Verify

type t = { file : int; m : int; d : int array }

let make ~file ~m ~d =
  if file < 0 then invalid_arg "Bc.make: negative file id";
  if m < 1 then invalid_arg "Bc.make: m must be >= 1";
  if d = [] then invalid_arg "Bc.make: empty latency vector";
  let d = Array.of_list d in
  Array.iteri
    (fun j dj ->
      if dj < m + j then
        invalid_arg
          (Printf.sprintf
             "Bc.make: unsatisfiable: d^(%d) = %d < m + %d = %d" j dj j (m + j)))
    d;
  { file; m; d }

let faults_tolerated t = Array.length t.d - 1

let to_pcs t =
  Array.to_list
    (Array.mapi (fun j dj -> Task.make ~id:t.file ~a:(t.m + j) ~b:dj) t.d)

let density_lower_bound t =
  Array.to_list (Array.mapi (fun j dj -> Q.make (t.m + j) dj) t.d)
  |> List.fold_left Q.max Q.zero

let check sched t =
  let rec first = function
    | [] -> None
    | pc :: rest -> (
        match Verify.check_task sched pc with
        | Some v -> Some v
        | None -> first rest)
  in
  first (to_pcs t)

let pp ppf t =
  Format.fprintf ppf "bc(%d, %d, [%s])" t.file t.m
    (String.concat "; " (Array.to_list (Array.map string_of_int t.d)))
