(** The pinwheel algebra: rules R0–R5 of Figure 8.

    Conditions are {!Pindisk_pinwheel.Task.t} values read as pinwheel
    conditions [pc(id, a, b)]. Each rule is stated in the paper as
    [LHS ⇐ RHS]: any broadcast program satisfying the RHS also satisfies
    the LHS. The functions below go from a {e satisfied} condition to a
    condition it entails (R0–R2), from a {e target} to a sufficient
    replacement (R3), or produce the alias condition of the two-condition
    rules (R4, R5).

    {!implies} is the decision procedure for the implications derivable by
    composing R0, R1 and R2 — the workhorse of the conversion-to-nice
    search. It is sound (a proof exists whenever it answers [true]); the
    paper conjectures the general minimum-density conversion problem is
    NP-hard, so no completeness is claimed for the overall search. *)

module Task = Pindisk_pinwheel.Task

val r0 : Task.t -> x:int -> y:int -> Task.t option
(** From satisfied [pc(a, b)], conclude [pc(a - x, b + y)] ([x, y >= 0]).
    [None] when [a - x < 1]. *)

val r1 : Task.t -> n:int -> Task.t
(** From satisfied [pc(a, b)], conclude [pc(n·a, n·b)] ([n >= 1]). *)

val r2 : Task.t -> x:int -> Task.t option
(** From satisfied [pc(a, b)], conclude [pc(a - x, b - x)] ([x >= 0]).
    [None] when [a - x < 1]. *)

val r1_reduce : Task.t -> Task.t
(** The strongest R1 preimage: [pc(a/g, b/g)] with [g = gcd a b] — same
    density, tighter structure (satisfying it satisfies the original, by
    R1). Used before applying R5, as in the paper's Example 4. *)

val r3 : Task.t -> Task.t
(** A single-unit condition sufficient for the target:
    [pc(a, b) ⇐ pc(1, ⌊b/a⌋)]. *)

val implies : Task.t -> Task.t -> bool
(** [implies got want] (ids ignored): scheduling [got = pc(a, b)]
    guarantees [want = pc(c, e)], by some composition [R1; R2; R0] — i.e.
    [∃ n >= 1: n·a >= c  ∧  n·(b - a) <= e - c]. *)

val implies_scale : Task.t -> Task.t -> int option
(** Like {!implies}, but returns the witnessing R1 scaling factor
    [n = ⌈c/a⌉] when the implication holds — the value a derivation trace
    ({!Trace.Implies}) records so an independent checker can confirm the
    step without searching. *)

val max_guaranteed : Task.t -> window:int -> int
(** [max_guaranteed got ~window] is the largest count [k] such that
    [implies got (pc k window)] — how many occurrences [got] forces into
    every window of the given length ([0] if none). Found by binary search:
    the implied-count predicate is antitone in [k]. *)

val r4_alias : base:Task.t -> target:Task.t -> (int * int) option
(** R4: to meet [target = pc(c, e)] given that [base = pc(a, b)] is already
    guaranteed with [e >= b], an aliased pseudo-task with condition
    [pc(c - a, e)] suffices (together, [a + (c - a)] occurrences land in
    every [e]-window). [None] when [c <= a] (base alone suffices) or
    [e < b]. *)

val r5_alias : base:Task.t -> target:Task.t -> (int * int) option
(** R5 (after {!r1_reduce}-ing the base yourself if desired): to meet
    [target = pc(c, e)] given guaranteed [base = pc(a, b)], pick
    [n = ⌈c/a⌉] and alias [pc(n·b - e, n·b)]. [None] when the base alone
    already implies the target ([n·b <= e]). *)
