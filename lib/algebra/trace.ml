module Q = Pindisk_util.Q
module Task = Pindisk_pinwheel.Task

type cond = { a : int; b : int }
type source = Emitted of int | Derived of int

type step =
  | Implies of { premise : source; scale : int; target : cond }
  | Conjoin of {
      base : source;
      guaranteed : int;
      scale : int;
      alias : source;
      target : cond;
    }
  | Align of { base : source; scale : int; alias : source; target : cond }

type t = {
  file : int;
  m : int;
  d : int array;
  transform : string;
  nice : cond list;
  steps : step list;
}

let make ~file ~m ~d ~transform ~nice ~steps =
  { file; m; d = Array.copy d; transform; nice; steps }

let reduction ~file ~m ~tolerance ~window =
  let steps =
    List.init (tolerance + 1) (fun j ->
        Implies { premise = Emitted 0; scale = 1; target = { a = m + j; b = window } })
  in
  {
    file;
    m;
    d = Array.make (tolerance + 1) window;
    transform = "reduction";
    nice = [ { a = m + tolerance; b = window } ];
    steps;
  }

let cond_of_task t = { a = t.Task.a; b = t.Task.b }
let task_of_cond ~id c = Task.make ~id ~a:c.a ~b:c.b
let density t = Q.sum (List.map (fun c -> Q.make c.a c.b) t.nice)
let step_count t = List.length t.steps
let equal t u = t = u

let pp_cond ppf c = Format.fprintf ppf "pc(%d,%d)" c.a c.b

let pp_source ppf = function
  | Emitted i -> Format.fprintf ppf "nice[%d]" i
  | Derived k -> Format.fprintf ppf "step[%d]" k

let pp_step ppf = function
  | Implies { premise; scale; target } ->
      Format.fprintf ppf "implies %a *%d => %a" pp_source premise scale pp_cond
        target
  | Conjoin { base; guaranteed; scale; alias; target } ->
      Format.fprintf ppf "conjoin %a guarantees %d (*%d) + %a => %a" pp_source
        base guaranteed scale pp_source alias pp_cond target
  | Align { base; scale; alias; target } ->
      Format.fprintf ppf "align %a *%d + %a => %a" pp_source base scale
        pp_source alias pp_cond target

let pp ppf t =
  Format.fprintf ppf "@[<v>trace %s for bc(%d, %d, [%s]):@ nice:" t.transform
    t.file t.m
    (String.concat "; " (Array.to_list (Array.map string_of_int t.d)));
  List.iter (fun c -> Format.fprintf ppf " %a" pp_cond c) t.nice;
  List.iteri (fun i s -> Format.fprintf ppf "@ %2d. %a" i pp_step s) t.steps;
  Format.fprintf ppf "@]"
