(** Broadcast file conditions (Section 4.1 of the paper).

    A generalized fault-tolerant real-time broadcast file [F_i] is specified
    by a size [m_i] (in blocks) and a latency vector
    [d⃗_i = \[d⁽⁰⁾; d⁽¹⁾; …; d⁽ʳ⁾\]]: the worst-case latency tolerable in the
    presence of [j] faults is the time to transmit [d⁽ʲ⁾] blocks. A broadcast
    program [P] satisfies [bc(i, m_i, d⃗_i)] iff [P.i] contains at least
    [m_i + j] out of every [d⁽ʲ⁾] consecutive slots, for all [j] — i.e.
    even after [j] lost blocks, [m_i] good blocks (enough for IDA
    reconstruction) arrive within [d⁽ʲ⁾] slots.

    Equation 3 of the paper:
    [bc(i, m, d⃗) ≡ ∧_j pc(i, m + j, d⁽ʲ⁾)]. *)

module Q = Pindisk_util.Q
module Task = Pindisk_pinwheel.Task
module Schedule = Pindisk_pinwheel.Schedule
module Verify = Pindisk_pinwheel.Verify

type t = private { file : int; m : int; d : int array }
(** Invariants: [file >= 0], [m >= 1], [d] non-empty, every [d.(j) >= m + j]
    (otherwise the condition is unsatisfiable: a window of [d⁽ʲ⁾] slots
    cannot contain [m + j > d⁽ʲ⁾] occurrences). *)

val make : file:int -> m:int -> d:int list -> t
(** Raises [Invalid_argument] when the invariants fail. *)

val faults_tolerated : t -> int
(** [r_i], the dimension of the latency vector minus one. *)

val to_pcs : t -> Task.t list
(** The equivalent conjunct of pinwheel conditions (Equation 3), all bearing
    the file's id: [pc(i, m+j, d⁽ʲ⁾)] for [j = 0 .. r]. *)

val density_lower_bound : t -> Q.t
(** [max_j (m + j) / d⁽ʲ⁾] — a lower bound on the density of any (nice
    conjunct of) pinwheel condition(s) implying this broadcast condition.
    The bound is not always achievable (the paper notes [bc(i, 2, \[5; 7\])]
    needs more than [3/7]). *)

val check : Schedule.t -> t -> Verify.violation option
(** [check sched bc] verifies the broadcast condition against a schedule
    whose slots are labelled with {e file} ids (project pseudo-task
    schedules through {!Schedule.map_tasks} first). *)

val pp : Format.formatter -> t -> unit
