(** Derivation traces for the pinwheel algebra.

    Every conversion the algebra performs ({!Convert.tr1}, {!Convert.tr2},
    {!Convert.best_single}) is a chain of rule applications from Figure 8
    (R0–R5, TR1, TR2). A {e trace} records that chain explicitly: which rule
    fired, on which operands, with which side-condition witnesses, and what
    condition it concluded — so that an {e independent} checker (the trusted
    kernel in [pindisk.check]) can re-establish the implication
    [nice conjunct ⟹ bc(file, m, d⃗)] by pure arithmetic, without trusting
    any code in this library.

    The design is LCF-style: the producer ships {e witnesses} (the R1
    scaling factor of an implication, the guaranteed occurrence count of a
    window-coverage argument), so the checker never searches — every step
    reduces to a handful of integer inequalities. Steps may reference the
    emitted nice entries ({!Emitted}) or the conclusions of {e earlier}
    steps ({!Derived}); a checker must reject forward or out-of-range
    references, which makes a trace tamper-evident under reordering. *)

type cond = { a : int; b : int }
(** An anonymous pinwheel condition [pc(a, b)]: at least [a] occurrences in
    every window of [b] slots. *)

type source =
  | Emitted of int  (** the [i]-th entry of the nice conjunct (0-based) *)
  | Derived of int  (** the conclusion of the [k]-th earlier step (0-based) *)

type step =
  | Implies of { premise : source; scale : int; target : cond }
      (** The R1;R2;R0 composition: from satisfied [premise = pc(a, b)],
          conclude [target = pc(c, e)]. Witness [scale = n]: valid iff
          [n >= 1], [n·a >= c] and [n·(b - a) <= e - c]. *)
  | Conjoin of {
      base : source;
      guaranteed : int;
      scale : int;
      alias : source;
      target : cond;
    }
      (** The R4 family (window coverage): [base] forces [guaranteed]
          occurrences into every window of [target.b] slots (witnessed by
          [scale], the R1 factor of that implication), and [alias] — a
          {e distinct} pseudo-task with [alias.b = target.b] — adds
          [alias.a] more; together [guaranteed + alias.a >= target.a]. *)
  | Align of { base : source; scale : int; alias : source; target : cond }
      (** The R5 family: with [n = scale], [alias.b = n·base.b >= target.b].
          Every [n·base.b]-window holds [n·base.a] base plus [alias.a] alias
          occurrences; at most [n·base.b - target.b] of them fall outside a
          given [target.b]-subwindow, so the target needs
          [n·base.a + alias.a + target.b - alias.b >= target.a]. *)

type t = {
  file : int;  (** the broadcast file the conversion is for *)
  m : int;  (** [m] of the original [bc(file, m, d⃗)] *)
  d : int array;  (** the latency vector [d⃗] *)
  transform : string;  (** producer label: ["TR1"], ["TR2"], ["single"], … *)
  nice : cond list;  (** the emitted nice conjunct, in entry order *)
  steps : step list;
      (** the derivation; every level [j] of the vector must end up as the
          target of some step (or verbatim among [nice]) *)
}

val make :
  file:int -> m:int -> d:int array -> transform:string -> nice:cond list ->
  steps:step list -> t
(** Plain record construction (no checking — traces are {e claims}; the
    kernel in [pindisk.check] is what validates them). The [d] array is
    copied. *)

val reduction : file:int -> m:int -> tolerance:int -> window:int -> t
(** The trace of the paper's simple-model reduction (Section 3.2): file
    [(m, T, r)] is served by the single pinwheel task [pc(m + r, B·T)],
    which implies [pc(m + j, B·T)] for every fault level [j <= r] by R0
    alone (witness scale 1). [window] is [B·T] in slots. *)

val cond_of_task : Pindisk_pinwheel.Task.t -> cond
val task_of_cond : id:int -> cond -> Pindisk_pinwheel.Task.t

val density : t -> Pindisk_util.Q.t
(** Exact density of the emitted nice conjunct, [Σ aᵢ/bᵢ]. *)

val step_count : t -> int

val equal : t -> t -> bool

val pp_cond : Format.formatter -> cond -> unit
val pp_source : Format.formatter -> source -> unit
val pp_step : Format.formatter -> step -> unit
val pp : Format.formatter -> t -> unit
