module Q = Pindisk_util.Q
module Intmath = Pindisk_util.Intmath
module Task = Pindisk_pinwheel.Task

let src = Logs.Src.create "pindisk.algebra" ~doc:"Pinwheel algebra conversions"

module Log = (val Logs.src_log src : Logs.LOG)

type entry = { a : int; b : int; file : int }
type nice = entry list

let density nice = Q.sum (List.map (fun e -> Q.make e.a e.b) nice)

(* Conditions of a bc, as anonymous (count, window) pairs. *)
let conds (bc : Bc.t) =
  List.map (fun t -> (t.Task.a, t.Task.b)) (Bc.to_pcs bc)

let pc (a, b) = Task.make ~id:0 ~a ~b

let trace_of (bc : Bc.t) transform nice steps =
  Trace.make ~file:bc.Bc.file ~m:bc.Bc.m ~d:bc.Bc.d ~transform
    ~nice:(List.map (fun e -> { Trace.a = e.a; b = e.b }) nice)
    ~steps

(* Witness scale for an implication the producer has already established. *)
let scale_exn got want =
  match Rules.implies_scale got want with
  | Some n -> n
  | None -> assert false

(* One Implies step per fault level, all from the single emitted entry —
   the shape TR1, the single-condition search and the simple-model
   reduction share. *)
let fan_out_steps got cs =
  List.map
    (fun (c, e) ->
      Trace.Implies
        {
          premise = Trace.Emitted 0;
          scale = scale_exn got (pc (c, e));
          target = { Trace.a = c; b = e };
        })
    cs

let tr1_certified (bc : Bc.t) =
  let cs = conds bc in
  let w = Intmath.min_list (List.map (fun (c, e) -> e / c) cs) in
  let nice = [ { a = 1; b = w; file = bc.Bc.file } ] in
  (nice, trace_of bc "TR1" nice (fan_out_steps (pc (1, w)) cs))

let tr1 bc = fst (tr1_certified bc)

let tr2_certified (bc : Bc.t) =
  let file = bc.Bc.file in
  match conds bc with
  | [] -> assert false (* Bc invariant: d is non-empty *)
  | base_cond :: rest ->
      let base = pc base_cond in
      let reduced = Rules.r1_reduce base in
      (* Step 0 re-derives the original base condition (m, d^(0)) from the
         emitted R1-reduced entry; the gcd is the scaling witness. *)
      let steps = ref [] and nsteps = ref 0 in
      let push_step s =
        steps := s :: !steps;
        incr nsteps;
        !nsteps - 1
      in
      let aliases = ref [] and nentries = ref 1 in
      let emit e =
        aliases := e :: !aliases;
        incr nentries;
        !nentries - 1
      in
      ignore
        (push_step
           (Trace.Implies
              {
                premise = Trace.Emitted 0;
                scale = scale_exn reduced base;
                target = { Trace.a = base.Task.a; b = base.Task.b };
              }));
      (* Walk the fault levels; [prev] is the already-guaranteed condition
         (m+j-1, d^(j-1)) that rule R4 chains on, [prev_src] the step that
         concluded it. *)
      let prev = ref base and prev_src = ref (Trace.Derived 0) in
      List.iter
        (fun cond ->
          let target = pc cond in
          let tcond = { Trace.a = target.Task.a; b = target.Task.b } in
          (if Rules.implies !prev target then
             ignore
               (push_step
                  (Trace.Implies
                     {
                       premise = !prev_src;
                       scale = scale_exn !prev target;
                       target = tcond;
                     }))
           else if Rules.implies reduced target then
             ignore
               (push_step
                  (Trace.Implies
                     {
                       premise = Trace.Emitted 0;
                       scale = scale_exn reduced target;
                       target = tcond;
                     }))
           else begin
             (* Candidate aliases, each paired with the step justifying it. *)
             let options =
               List.filter_map
                 (fun o -> o)
                 [
                   (* R4 on the accumulated guarantee: the (1, d^(j)) alias
                      of the literal TR2. *)
                   (match Rules.r4_alias ~base:!prev ~target with
                   | None -> None
                   | Some alias ->
                       let guaranteed = !prev.Task.a and base_src = !prev_src in
                       Some
                         ( alias,
                           fun alias_src ->
                             Trace.Conjoin
                               {
                                 base = base_src;
                                 guaranteed;
                                 scale = 1;
                                 alias = alias_src;
                                 target = tcond;
                               } ));
                   (* R5 on the R1-reduced base (Example 4's trick). *)
                   (match Rules.r5_alias ~base:reduced ~target with
                   | None -> None
                   | Some alias ->
                       let n = Intmath.ceil_div target.Task.a reduced.Task.a in
                       Some
                         ( alias,
                           fun alias_src ->
                             Trace.Align
                               {
                                 base = Trace.Emitted 0;
                                 scale = n;
                                 alias = alias_src;
                                 target = tcond;
                               } ));
                   (* R4 on what the base alone forces into this window. *)
                   (let g =
                      Rules.max_guaranteed reduced ~window:target.Task.b
                    in
                    if g >= target.Task.a then None
                    else
                      Some
                        ( (target.Task.a - g, target.Task.b),
                          fun alias_src ->
                            Trace.Conjoin
                              {
                                base = Trace.Emitted 0;
                                guaranteed = g;
                                scale =
                                  (if g = 0 then 1
                                   else Intmath.ceil_div g reduced.Task.a);
                                alias = alias_src;
                                target = tcond;
                              } ));
                 ]
             in
             let cheapest =
               match options with
               | [] -> assert false (* the third option always applies here *)
               | o :: os ->
                   List.fold_left
                     (fun (((ba, bb), _) as best) (((a, b), _) as cand) ->
                       if Q.( < ) (Q.make a b) (Q.make ba bb) then cand
                       else best)
                     o os
             in
             let (a, b), mk_step = cheapest in
             let k = emit { a; b; file } in
             ignore (push_step (mk_step (Trace.Emitted k)))
           end);
          prev := target;
          prev_src := Trace.Derived (!nsteps - 1))
        rest;
      (* Emit the R1-reduced base: same density, and it is the condition the
         R5 option relies on (reduced implies the original base by R1). *)
      let nice =
        { a = reduced.Task.a; b = reduced.Task.b; file } :: List.rev !aliases
      in
      (nice, trace_of bc "TR2" nice (List.rev !steps))

let tr2 bc = fst (tr2_certified bc)

let best_single_certified (bc : Bc.t) =
  let cs = conds bc in
  let file = bc.Bc.file in
  let max_b = Intmath.max_list (List.map snd cs) in
  (* Minimal count a making pc(a, b) imply cond (c, e): minimize over the
     scaling factor n of max(ceil(c/n), b - floor((e-c)/n)). *)
  let min_a_for b (c, e) =
    let best = ref (b + 1) in
    for n = 1 to c do
      let lo = Intmath.ceil_div c n in
      let hi_constraint = b - ((e - c) / n) in
      let a = max lo hi_constraint in
      let a = max a 1 in
      if a <= b && a < !best then
        (* The algebraic bound can be off by rounding; confirm. *)
        if Rules.implies (pc (a, b)) (pc (c, e)) then best := a
    done;
    !best
  in
  let fallback =
    let k = Intmath.max_list (List.map fst cs) in
    { a = k; b = k; file }
  in
  let best = ref fallback in
  for b = 1 to max_b do
    let a = Intmath.max_list (List.map (min_a_for b) cs) in
    if a <= b && Q.( < ) (Q.make a b) (Q.make !best.a !best.b) then
      best := { a; b; file }
  done;
  let e = !best in
  ([ e ], trace_of bc "single" [ e ] (fan_out_steps (pc (e.a, e.b)) cs))

let best_single bc = fst (best_single_certified bc)

let best_certified bc =
  let candidates =
    [
      ("TR1", tr1_certified bc);
      ("TR2", tr2_certified bc);
      ("single", best_single_certified bc);
    ]
  in
  Log.debug (fun m ->
      m "converting %a: %s (lower bound %a)" Bc.pp bc
        (String.concat ", "
           (List.map
              (fun (l, (n, _)) ->
                Printf.sprintf "%s=%s" l (Q.to_string (density n)))
              candidates))
        Q.pp (Bc.density_lower_bound bc));
  match candidates with
  | c :: cs ->
      let label, (nice, trace) =
        List.fold_left
          (fun ((_, (bn, _)) as best) ((_, (n, _)) as cand) ->
            if Q.( < ) (density n) (density bn) then cand else best)
          c cs
      in
      (label, nice, trace)
  | [] -> assert false

let best bc =
  let label, nice, _ = best_certified bc in
  (label, nice)

let compile_certified bcs =
  let files = List.map (fun (bc : Bc.t) -> bc.Bc.file) bcs in
  if List.length (List.sort_uniq compare files) <> List.length files then
    invalid_arg "Convert.compile: duplicate file ids";
  let next = ref (1 + List.fold_left max (-1) files) in
  let fresh () =
    let id = !next in
    incr next;
    id
  in
  let compiled =
    List.map
      (fun bc ->
        let _, nice, trace = best_certified bc in
        ( List.map
            (fun e -> (Task.make ~id:(fresh ()) ~a:e.a ~b:e.b, e.file))
            nice,
          trace ))
      bcs
  in
  (List.concat_map fst compiled, List.map snd compiled)

let compile bcs = fst (compile_certified bcs)

let is_nice tasks =
  let ids = List.map (fun (t, _) -> t.Task.id) tasks in
  List.length (List.sort_uniq compare ids) = List.length ids
