module Q = Pindisk_util.Q
module Intmath = Pindisk_util.Intmath
module Task = Pindisk_pinwheel.Task

let src = Logs.Src.create "pindisk.algebra" ~doc:"Pinwheel algebra conversions"

module Log = (val Logs.src_log src : Logs.LOG)

type entry = { a : int; b : int; file : int }
type nice = entry list

let density nice = Q.sum (List.map (fun e -> Q.make e.a e.b) nice)

(* Conditions of a bc, as anonymous (count, window) pairs. *)
let conds (bc : Bc.t) =
  List.map (fun t -> (t.Task.a, t.Task.b)) (Bc.to_pcs bc)

let pc (a, b) = Task.make ~id:0 ~a ~b

let tr1 (bc : Bc.t) =
  let w =
    Intmath.min_list (List.map (fun (c, e) -> e / c) (conds bc))
  in
  [ { a = 1; b = w; file = bc.Bc.file } ]

let tr2 (bc : Bc.t) =
  let file = bc.Bc.file in
  match conds bc with
  | [] -> assert false (* Bc invariant: d is non-empty *)
  | base_cond :: rest ->
      let base = pc base_cond in
      let reduced = Rules.r1_reduce base in
      (* Walk the fault levels; [prev] is the already-guaranteed condition
         (m+j-1, d^(j-1)) that rule R4 chains on. *)
      let rec go prev acc = function
        | [] -> List.rev acc
        | cond :: rest ->
            let target = pc cond in
            if Rules.implies prev target || Rules.implies reduced target then
              go target acc rest
            else begin
              let options =
                List.filter_map
                  (fun o -> o)
                  [
                    (* R4 on the accumulated guarantee: the (1, d^(j)) alias
                       of the literal TR2. *)
                    Rules.r4_alias ~base:prev ~target;
                    (* R5 on the R1-reduced base (Example 4's trick). *)
                    Rules.r5_alias ~base:reduced ~target;
                    (* R4 on what the base alone forces into this window. *)
                    (let g =
                       Rules.max_guaranteed reduced ~window:target.Task.b
                     in
                     if g >= target.Task.a then None
                     else Some (target.Task.a - g, target.Task.b));
                  ]
              in
              let cheapest =
                match options with
                | [] -> assert false (* the third option always applies here *)
                | o :: os ->
                    List.fold_left
                      (fun (ba, bb) (a, b) ->
                        if Q.( < ) (Q.make a b) (Q.make ba bb) then (a, b)
                        else (ba, bb))
                      o os
              in
              let a, b = cheapest in
              go target ({ a; b; file } :: acc) rest
            end
      in
      let aliases = go base [] rest in
      (* Emit the R1-reduced base: same density, and it is the condition the
         R5 option relies on (reduced implies the original base by R1). *)
      { a = reduced.Task.a; b = reduced.Task.b; file } :: aliases

let best_single (bc : Bc.t) =
  let cs = conds bc in
  let file = bc.Bc.file in
  let max_b = Intmath.max_list (List.map snd cs) in
  (* Minimal count a making pc(a, b) imply cond (c, e): minimize over the
     scaling factor n of max(ceil(c/n), b - floor((e-c)/n)). *)
  let min_a_for b (c, e) =
    let best = ref (b + 1) in
    for n = 1 to c do
      let lo = Intmath.ceil_div c n in
      let hi_constraint = b - ((e - c) / n) in
      let a = max lo hi_constraint in
      let a = max a 1 in
      if a <= b && a < !best then
        (* The algebraic bound can be off by rounding; confirm. *)
        if Rules.implies (pc (a, b)) (pc (c, e)) then best := a
    done;
    !best
  in
  let fallback =
    let k = Intmath.max_list (List.map fst cs) in
    { a = k; b = k; file }
  in
  let best = ref fallback in
  for b = 1 to max_b do
    let a = Intmath.max_list (List.map (min_a_for b) cs) in
    if a <= b && Q.( < ) (Q.make a b) (Q.make !best.a !best.b) then
      best := { a; b; file }
  done;
  [ !best ]

let best bc =
  let candidates =
    [ ("TR1", tr1 bc); ("TR2", tr2 bc); ("single", best_single bc) ]
  in
  Log.debug (fun m ->
      m "converting %a: %s (lower bound %a)" Bc.pp bc
        (String.concat ", "
           (List.map
              (fun (l, n) -> Printf.sprintf "%s=%s" l (Q.to_string (density n)))
              candidates))
        Q.pp (Bc.density_lower_bound bc));
  match candidates with
  | c :: cs ->
      List.fold_left
        (fun (bl, bn) (l, n) ->
          if Q.( < ) (density n) (density bn) then (l, n) else (bl, bn))
        c cs
  | [] -> assert false

let compile bcs =
  let files = List.map (fun (bc : Bc.t) -> bc.Bc.file) bcs in
  if List.length (List.sort_uniq compare files) <> List.length files then
    invalid_arg "Convert.compile: duplicate file ids";
  let next = ref (1 + List.fold_left max (-1) files) in
  let fresh () =
    let id = !next in
    incr next;
    id
  in
  List.concat_map
    (fun bc ->
      let _, nice = best bc in
      List.map
        (fun e -> (Task.make ~id:(fresh ()) ~a:e.a ~b:e.b, e.file))
        nice)
    bcs

let is_nice tasks =
  let ids = List.map (fun (t, _) -> t.Task.id) tasks in
  List.length (List.sort_uniq compare ids) = List.length ids
