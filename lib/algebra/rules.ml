module Task = Pindisk_pinwheel.Task
module Intmath = Pindisk_util.Intmath

let r0 t ~x ~y =
  if x < 0 || y < 0 then invalid_arg "Rules.r0: x, y must be >= 0";
  if t.Task.a - x < 1 then None
  else Some (Task.make ~id:t.Task.id ~a:(t.Task.a - x) ~b:(t.Task.b + y))

let r1 t ~n =
  if n < 1 then invalid_arg "Rules.r1: n must be >= 1";
  Task.make ~id:t.Task.id ~a:(n * t.Task.a) ~b:(n * t.Task.b)

let r2 t ~x =
  if x < 0 then invalid_arg "Rules.r2: x must be >= 0";
  if t.Task.a - x < 1 then None
  else Some (Task.make ~id:t.Task.id ~a:(t.Task.a - x) ~b:(t.Task.b - x))

let r1_reduce t =
  let g = Intmath.gcd t.Task.a t.Task.b in
  Task.make ~id:t.Task.id ~a:(t.Task.a / g) ~b:(t.Task.b / g)

let r3 t = Task.unit ~id:t.Task.id ~b:(t.Task.b / t.Task.a)

(* implies (a,b) (c,e): exists n >= ceil(c/a) with n(b-a) <= e-c. The
   left side is non-decreasing in n, so only the smallest n matters. *)
let implies_scale got want =
  let a = got.Task.a and b = got.Task.b in
  let c = want.Task.a and e = want.Task.b in
  let n = Intmath.ceil_div c a in
  if n * (b - a) <= e - c then Some n else None

let implies got want = implies_scale got want <> None

let max_guaranteed got ~window =
  if window < 1 then invalid_arg "Rules.max_guaranteed: window must be >= 1";
  (* Largest k <= window with implies got (k, window). The predicate is
     antitone in k (ceil(k/a) is non-decreasing while window - k shrinks),
     so binary search; k = 0 holds vacuously. *)
  let holds k =
    k = 0 || implies got (Task.make ~id:got.Task.id ~a:k ~b:window)
  in
  let rec go lo hi =
    if lo >= hi then lo
    else
      let mid = lo + ((hi - lo + 1) / 2) in
      if holds mid then go mid hi else go lo (mid - 1)
  in
  go 0 window

let r4_alias ~base ~target =
  let a = base.Task.a and b = base.Task.b in
  let c = target.Task.a and e = target.Task.b in
  if e < b || c <= a then None else Some (c - a, e)

let r5_alias ~base ~target =
  let a = base.Task.a and b = base.Task.b in
  let c = target.Task.a and e = target.Task.b in
  let n = Intmath.ceil_div c a in
  let x = (n * b) - e in
  if x <= 0 then None else Some (x, n * b)
