(** Conversion of broadcast conditions to {e nice} conjuncts of pinwheel
    conditions (Section 4.2 of the paper).

    A conjunct of pinwheel conditions is {e nice} when no task is
    constrained by more than one condition — the form the density-bounded
    schedulers require. The paper conjectures that finding the
    minimum-density nice conjunct implying a given conjunct is NP-hard and
    gives heuristics; this module implements them:

    - {!tr1}: the whole broadcast condition collapses to a single
      single-unit condition [pc(1, min_j ⌊d⁽ʲ⁾/(m+j)⌋)];
    - {!tr2}: a base condition [pc(m, d⁽⁰⁾)] plus one aliased pseudo-task
      per fault level, improved per-condition with rules R1/R4/R5 (the
      manipulations of Examples 4–6);
    - {!best_single}: a search over {e all} single conditions [pc(a, b)]
      that imply the full conjunct under the R0–R2 implication test (finds
      the paper's optimal [pc(2, 3)] answers of Examples 5 and 6);
    - {!best} picks the lowest-density candidate — always sound, never
      claimed minimal.

    The aliased pseudo-tasks carry the [map(i', i)] semantics of the paper:
    whenever the scheduler serves the pseudo-task, a block of the underlying
    file is broadcast. *)

module Q = Pindisk_util.Q
module Task = Pindisk_pinwheel.Task

type entry = { a : int; b : int; file : int }
(** One pinwheel condition [pc(_, a, b)] destined for a fresh pseudo-task
    that broadcasts blocks of [file]. *)

type nice = entry list
(** A nice conjunct: each entry becomes its own pseudo-task. *)

val density : nice -> Q.t

val tr1 : Bc.t -> nice
(** Transformation rule TR1. Always a single entry. *)

val tr2 : Bc.t -> nice
(** Transformation rule TR2 with the per-condition R1/R4/R5 improvements
    described above. Requires (and {!Bc.make} could not have produced
    otherwise) nothing beyond the [Bc] invariants, but profits from a
    non-decreasing latency vector. *)

val best_single : Bc.t -> nice
(** The minimum-density single condition [pc(a, b)], [b] searched up to the
    largest latency, that implies every conjunct of the broadcast condition
    under {!Rules.implies}. Falls back to [pc(m+r, m+r)] (density 1), which
    trivially implies everything. *)

val best : Bc.t -> string * nice
(** The lowest-density candidate among [tr1], [tr2] and [best_single],
    labelled with the name of the winning transformation. *)

(** {1 Certified conversion}

    Every transformation also emits a {!Trace.t}: the rule-by-rule
    derivation (with side-condition witnesses) establishing that the nice
    conjunct implies the original broadcast condition. The traces are
    {e claims} — re-check them with the independent kernel in
    [pindisk.check] rather than trusting this producer. *)

val tr1_certified : Bc.t -> nice * Trace.t
val tr2_certified : Bc.t -> nice * Trace.t
val best_single_certified : Bc.t -> nice * Trace.t

val best_certified : Bc.t -> string * nice * Trace.t
(** {!best} plus the winning candidate's derivation trace. *)

val compile : Bc.t list -> (Task.t * int) list
(** [compile bcs] converts each broadcast condition with {!best} and
    allocates globally unique pseudo-task ids (starting above the largest
    file id). Each returned pair is the pinwheel task to schedule and the
    file whose blocks it broadcasts. Raises [Invalid_argument] on duplicate
    file ids. *)

val compile_certified : Bc.t list -> (Task.t * int) list * Trace.t list
(** {!compile} plus one derivation trace per broadcast condition, in input
    order. *)

val is_nice : (Task.t * int) list -> bool
(** True when no two tasks share an id — what [compile] guarantees. *)
