(** Policy application: scan sources, apply the config's scopes and
    allow entries, then the baseline, and classify the result. *)

type outcome = {
  findings : Diag.t list;
      (** active findings, sorted — includes reactivated expired ones *)
  suppressed : (Diag.t * Baseline.entry) list;
      (** baselined findings, in scan order *)
  expired : (Diag.t * Baseline.entry) list;
      (** findings whose matching entry has expired (also in
          [findings]) *)
  stale : Baseline.entry list;  (** entries that matched nothing *)
  files : int;
  errors : string list;  (** parse/IO failures, one per file *)
}

val run :
  config:Config.t ->
  baseline:Baseline.t ->
  today:string ->
  sources:Scan.source list ->
  outcome
(** IO-free core, so tests can drive it on in-memory sources. [today]
    is a YYYY-MM-DD date used only for baseline expiry. *)

val exit_code : outcome -> int
(** The shared gate convention: [0] clean, [1] findings or stale
    baseline entries, [2] errors. *)

val load_tree :
  root:string -> paths:string list -> (Scan.source list, string) result
(** Collect every [.ml] under [root]/[paths] (recursively, sorted,
    deduplicated; ["."] means the whole root; [_build] and [.git] are
    skipped). File paths in the result are [root]-relative. *)
