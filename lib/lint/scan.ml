(* The compiler-libs parsetree pass.

   [string]/[file] parse one .ml source and emit every *candidate*
   finding for rules L1-L5, untriaged: Driver applies the config scopes,
   allow entries and the baseline afterwards, so the mechanism here
   stays policy-free and the self-tests can probe each rule directly.

   The pass is purely syntactic (parsetree only, no typing): it sees
   what is written, not what is meant. DESIGN 5h lists the soundness
   caveats (aliasing, closures passed by name, re-exported wrappers). *)

type source = { file : string; (* repo-relative, for diagnostics *) text : string }

let toplevel = "<toplevel>"

(* Longident paths, with a leading [Stdlib] stripped so [Stdlib.raise]
   and [raise] triage the same way. *)
let path_of lid =
  match Longident.flatten lid with "Stdlib" :: rest -> rest | p -> p

let ident_path e =
  match e.Parsetree.pexp_desc with
  | Parsetree.Pexp_ident { txt; _ } -> Some (path_of txt)
  | _ -> None

let dotted = String.concat "."

(* ---- L1: wall-clock and global-state randomness ------------------- *)

(* [Random.State.*] is deliberately absent: seeded, locally-owned state
   is exactly what slot-domain code should use. The bare [Random.*]
   calls below read or reseed the implicit global generator, so their
   results depend on call order across the whole process. *)
let nondeterministic =
  [
    [ "Unix"; "gettimeofday" ];
    [ "Unix"; "time" ];
    [ "Unix"; "times" ];
    [ "Sys"; "time" ];
    [ "Random"; "self_init" ];
    [ "Random"; "init" ];
    [ "Random"; "full_init" ];
    [ "Random"; "int" ];
    [ "Random"; "full_int" ];
    [ "Random"; "int32" ];
    [ "Random"; "int64" ];
    [ "Random"; "nativeint" ];
    [ "Random"; "float" ];
    [ "Random"; "bool" ];
    [ "Random"; "bits" ];
  ]

(* ---- L2: bare escape hatches in typed-error territory ------------- *)

let raisers = [ "raise"; "raise_notrace"; "failwith"; "invalid_arg" ]

(* ---- L4: spawn points whose closures cross domains ---------------- *)

let is_spawn_point path =
  match List.rev path with
  | ("parallel_for" | "parallel_for_reduce") :: _ -> true
  | "spawn" :: "Domain" :: _ -> true
  | _ -> false

let hashtbl_mutators =
  [ "add"; "replace"; "remove"; "reset"; "clear"; "filter_map_inplace" ]

(* ------------------------------------------------------------------- *)

let pattern_vars p =
  let acc = ref [] in
  let it =
    {
      Ast_iterator.default_iterator with
      pat =
        (fun self pp ->
          (match pp.Parsetree.ppat_desc with
          | Parsetree.Ppat_var v -> acc := v.txt :: !acc
          | Parsetree.Ppat_alias (_, v) -> acc := v.txt :: !acc
          | _ -> ());
          Ast_iterator.default_iterator.pat self pp);
    }
  in
  it.pat it p;
  !acc

(* Does a try/match case swallow whatever it catches? Top-level [_],
   either branch of an or-pattern being [_], or [exception _]. *)
let rec swallows_all p =
  match p.Parsetree.ppat_desc with
  | Parsetree.Ppat_any -> true
  | Parsetree.Ppat_alias (p, _) -> swallows_all p
  | Parsetree.Ppat_or (a, b) -> swallows_all a || swallows_all b
  | Parsetree.Ppat_exception p -> swallows_all p
  | _ -> false

type state = {
  file : string;
  mutable context : string;
  mutable diags : Diag.t list;
}

let emit st ~rule ~loc message =
  let pos = loc.Location.loc_start in
  st.diags <-
    Diag.make ~rule ~file:st.file ~line:pos.Lexing.pos_lnum
      ~col:(pos.Lexing.pos_cnum - pos.Lexing.pos_bol)
      ~context:st.context ~message
    :: st.diags

(* L4 race heuristic over one function literal handed to a spawn point.

   Names bound anywhere inside the closure (parameters, lets, match and
   function cases, for-loop indices — in an expression every pattern
   node is a binder) are collected first; a mutation whose target is
   not in that set therefore hits state captured from outside the
   closure, i.e. state shared across domains. Over-approximating the
   bound set trades false positives away for false negatives on
   shadowing — the right bias for a lint that gates CI. *)
let check_closure st ~call (pats, body, cases) =
  let bound = Hashtbl.create 16 in
  let bind names = List.iter (fun n -> Hashtbl.replace bound n ()) names in
  List.iter (fun p -> bind (pattern_vars p)) pats;
  let exprs =
    (match body with Some b -> [ b ] | None -> [])
    @ List.concat_map
        (fun c ->
          bind (pattern_vars c.Parsetree.pc_lhs);
          (match c.Parsetree.pc_guard with Some g -> [ g ] | None -> [])
          @ [ c.Parsetree.pc_rhs ])
        cases
  in
  let collect =
    {
      Ast_iterator.default_iterator with
      pat =
        (fun self pp ->
          (match pp.Parsetree.ppat_desc with
          | Parsetree.Ppat_var v -> bind [ v.txt ]
          | Parsetree.Ppat_alias (_, v) -> bind [ v.txt ]
          | _ -> ());
          Ast_iterator.default_iterator.pat self pp);
    }
  in
  List.iter (collect.expr collect) exprs;
  let free_ident e =
    match ident_path e with
    | Some [ x ] when not (Hashtbl.mem bound x) -> Some x
    | _ -> None
  in
  let mutation e =
    match e.Parsetree.pexp_desc with
    | Parsetree.Pexp_setfield (base, _, _) -> (
        match free_ident base with
        | Some x ->
            Some
              (Printf.sprintf
                 "mutable-field write on %s inside the closure passed to %s; \
                  %s is captured from outside and shared across domains"
                 x call x)
        | None -> None)
    | Parsetree.Pexp_apply (f, (_, a1) :: _) -> (
        match (ident_path f, free_ident a1) with
        | Some [ ":=" ], Some x | Some [ ("incr" | "decr") ], Some x ->
            Some
              (Printf.sprintf
                 "ref %s is mutated inside the closure passed to %s but \
                  defined outside it; use Atomic (or merge per-domain \
                  results after the join)"
                 x call)
        | Some [ "Hashtbl"; m ], Some x when List.mem m hashtbl_mutators ->
            Some
              (Printf.sprintf
                 "Hashtbl.%s on %s inside the closure passed to %s races: \
                  Hashtbl is not domain-safe; shard per domain or hold a \
                  Mutex"
                 m x call)
        | _ -> None)
    | _ -> None
  in
  let mut =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun self e ->
          (match mutation e with
          | Some msg -> emit st ~rule:"L4" ~loc:e.Parsetree.pexp_loc msg
          | None -> ());
          Ast_iterator.default_iterator.expr self e);
    }
  in
  List.iter (mut.expr mut) exprs

let on_ident st ~loc path =
  (if List.mem path nondeterministic then
     emit st ~rule:"L1" ~loc
       (Printf.sprintf
          "%s: wall-clock/global-RNG read; slot-domain code must be a pure \
           function of (seed, slot) or replay breaks"
          (dotted path)));
  (match path with
  | [ r ] when List.mem r raisers ->
      emit st ~rule:"L2" ~loc
        (Printf.sprintf
           "bare %s in a transport/retrieve path; return a typed error \
            ([retrieve_result]-style) instead"
           r)
  | _ -> ());
  (if
     List.exists
       (fun c -> String.length c > 7 && String.sub c 0 7 = "unsafe_")
       path
     || path = [ "Obj"; "magic" ]
   then
     emit st ~rule:"L3" ~loc
       (Printf.sprintf
          "%s: unchecked access outside the gf256/ida kernels; use the \
           bounds-checked variant"
          (dotted path)));
  match path with
  | "Atomic" :: _ ->
      emit st ~rule:"L4" ~loc
        (Printf.sprintf
           "raw %s outside lib/obs/lib/util; shared state goes through \
            Obs.Registry counters or Pindisk_util.Pool"
           (dotted path))
  | _ -> ()

let run_iterator st ast =
  let expr_hook self e =
    (match e.Parsetree.pexp_desc with
    | Parsetree.Pexp_ident { txt; loc } -> on_ident st ~loc (path_of txt)
    | Parsetree.Pexp_apply (f, args) -> (
        match ident_path f with
        | Some path when is_spawn_point path ->
            List.iter
              (fun (_, a) ->
                match Compat.as_closure a with
                | Some closure ->
                    check_closure st ~call:(dotted path) closure
                | None -> ())
              args
        | _ -> ())
    | Parsetree.Pexp_try (_, handlers) ->
        List.iter
          (fun c ->
            if swallows_all c.Parsetree.pc_lhs then
              emit st ~rule:"L5" ~loc:c.Parsetree.pc_lhs.ppat_loc
                "catch-all handler discards the exception; match the \
                 specific exceptions (or rebind and re-raise)")
          handlers
    | Parsetree.Pexp_match (_, handlers) ->
        List.iter
          (fun c ->
            match c.Parsetree.pc_lhs.ppat_desc with
            | Parsetree.Ppat_exception p when swallows_all p ->
                emit st ~rule:"L5" ~loc:c.Parsetree.pc_lhs.ppat_loc
                  "catch-all [exception _] case discards the exception; \
                   match the specific exceptions"
            | _ -> ())
          handlers
    | _ -> ());
    Ast_iterator.default_iterator.expr self e
  in
  let structure_item_hook self item =
    match item.Parsetree.pstr_desc with
    | Parsetree.Pstr_value (_, vbs) ->
        List.iter
          (fun vb ->
            let saved = st.context in
            (match pattern_vars vb.Parsetree.pvb_pat with
            | name :: _ -> st.context <- name
            | [] -> ());
            self.Ast_iterator.expr self vb.Parsetree.pvb_expr;
            st.context <- saved)
          vbs
    | Parsetree.Pstr_primitive vd ->
        let saved = st.context in
        st.context <- vd.Parsetree.pval_name.txt;
        List.iter
          (fun prim ->
            let n = String.length prim in
            if n > 1 && prim.[0] = '%' && prim.[n - 1] = 'u' then
              emit st ~rule:"L3" ~loc:vd.Parsetree.pval_loc
                (Printf.sprintf
                   "external %s binds unchecked primitive %S outside the \
                    gf256/ida kernels"
                   vd.Parsetree.pval_name.txt prim))
          vd.Parsetree.pval_prim;
        st.context <- saved
    | _ -> Ast_iterator.default_iterator.structure_item self item
  in
  let it =
    {
      Ast_iterator.default_iterator with
      expr = expr_hook;
      structure_item = structure_item_hook;
    }
  in
  it.structure it ast

let string { file; text } =
  let lexbuf = Lexing.from_string text in
  Lexing.set_filename lexbuf file;
  match Parse.implementation lexbuf with
  | ast ->
      let st = { file; context = toplevel; diags = [] } in
      run_iterator st ast;
      Ok (List.sort Diag.compare st.diags)
  | exception exn -> (
      match Location.error_of_exn exn with
      | Some (`Ok err) ->
          Error
            (Format.asprintf "%s: %a" file Location.print_report err)
      | _ -> Error (Printf.sprintf "%s: %s" file (Printexc.to_string exn)))

let file ~path ~rel =
  match In_channel.with_open_bin path In_channel.input_all with
  | text -> string { file = rel; text }
  | exception Sys_error e -> Error e
