(** A single lint finding: rule id, position, the enclosing top-level
    binding it was found under, and a one-line why. *)

type t = {
  rule : string;  (** "L1" .. "L5" *)
  file : string;  (** path relative to the scanned root *)
  line : int;  (** 1-based *)
  col : int;  (** 0-based *)
  context : string;
      (** nearest enclosing top-level binding, or ["<toplevel>"] *)
  message : string;
}

val make :
  rule:string ->
  file:string ->
  line:int ->
  col:int ->
  context:string ->
  message:string ->
  t

val compare : t -> t -> int
(** Position-major order: file, line, col, rule, message. *)

val pp : Format.formatter -> t -> unit
(** [file:line:col: RULE (context) message] — one line per finding. *)

val to_json : t -> Pindisk_check.Json.t
