(** Rendering of a lint {!Driver.outcome}: human text and the
    byte-stable ["pindisk-lint v1"] JSON document (same print → parse →
    print identity the metrics schema pins). *)

val schema : string
(** ["pindisk-lint v1"]. *)

val to_json : Driver.outcome -> Pindisk_check.Json.t

val print_text : Format.formatter -> Driver.outcome -> unit
(** One line per finding ([file:line:col: RULE (context) why]), then
    expired/stale baseline notices, then the summary line. *)

val summary_line : Driver.outcome -> string

val summary_rows : Driver.outcome -> string list list
(** Rows [rule; file:line; context; message] for the markdown gate
    summary (findings, then stale baseline entries). *)
