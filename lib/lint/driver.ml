(* Policy application and the file walk: scan sources, keep findings the
   config puts in scope, peel off allow-listed and baselined ones, and
   classify the baseline itself (active / expired / stale). IO-free
   except [load_tree], so tests can drive [run] on in-memory sources. *)

type outcome = {
  findings : Diag.t list;
  suppressed : (Diag.t * Baseline.entry) list;
  expired : (Diag.t * Baseline.entry) list;
  stale : Baseline.entry list;
  files : int;
  errors : string list;
}

let run ~config ~baseline ~today ~sources =
  let errors = ref [] in
  let all =
    List.concat_map
      (fun src ->
        match Scan.string src with
        | Ok ds -> ds
        | Error e ->
            errors := e :: !errors;
            [])
      sources
  in
  let scoped =
    List.filter
      (fun (d : Diag.t) ->
        Config.applies config ~rule:d.rule ~file:d.file
        && not (Config.allowed config d))
      all
  in
  let used = Hashtbl.create 16 in
  let findings = ref [] and suppressed = ref [] and expired = ref [] in
  List.iter
    (fun d ->
      match
        List.find_opt (fun e -> Baseline.matches e d) baseline
      with
      | Some e when Baseline.expired ~today e ->
          Hashtbl.replace used e.Baseline.ln ();
          expired := (d, e) :: !expired;
          findings := d :: !findings
      | Some e ->
          Hashtbl.replace used e.Baseline.ln ();
          suppressed := (d, e) :: !suppressed
      | None -> findings := d :: !findings)
    scoped;
  let stale =
    List.filter (fun e -> not (Hashtbl.mem used e.Baseline.ln)) baseline
  in
  {
    findings = List.sort Diag.compare !findings;
    suppressed = List.rev !suppressed;
    expired = List.rev !expired;
    stale;
    files = List.length sources;
    errors = List.rev !errors;
  }

(* The shared gate convention (bench_gate, pindisk chaos): 0 clean,
   1 findings — including stale baseline entries, which demand a
   baseline edit — 2 usage/parse errors. *)
let exit_code o =
  if o.errors <> [] then 2
  else if o.findings <> [] || o.stale <> [] then 1
  else 0

(* ---- file walk ---------------------------------------------------- *)

let rec walk_dir root rel acc =
  let abs = if rel = "" then root else Filename.concat root rel in
  match Sys.is_directory abs with
  | exception Sys_error _ -> acc
  | false ->
      if Filename.check_suffix rel ".ml" then rel :: acc else acc
  | true ->
      Array.fold_left
        (fun acc name ->
          if name = "_build" || name = ".git" then acc
          else
            walk_dir root
              (if rel = "" then name else rel ^ "/" ^ name)
              acc)
        acc
        (let names = Sys.readdir abs in
         Array.sort String.compare names;
         names)

let load_tree ~root ~paths =
  let rels =
    List.concat_map
      (fun p ->
        let p = if p = "." then "" else p in
        walk_dir root p [])
      paths
    |> List.sort_uniq String.compare
  in
  List.fold_left
    (fun acc rel ->
      match acc with
      | Error _ as e -> e
      | Ok srcs -> (
          let path = Filename.concat root rel in
          match In_channel.with_open_bin path In_channel.input_all with
          | text -> Ok ({ Scan.file = rel; text } :: srcs)
          | exception Sys_error e -> Error e))
    (Ok []) rels
  |> Result.map List.rev
