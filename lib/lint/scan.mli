(** The compiler-libs parsetree pass behind [pindisk-lint].

    Parses one [.ml] source and emits every {e candidate} finding for
    rules L1–L5, untriaged — {!Driver} applies the policy (config
    scopes, allow entries, baseline) afterwards, so the mechanism here
    is policy-free and each rule can be probed directly in tests.

    The rules, briefly (full semantics and soundness caveats: DESIGN
    5h):
    - {b L1 determinism} — wall-clock reads ([Unix.gettimeofday],
      [Sys.time], …) and global-state randomness ([Random.int] & co.;
      [Random.State.*] is fine).
    - {b L2 typed errors} — bare [raise]/[failwith]/[invalid_arg].
    - {b L3 unsafe containment} — [*.unsafe_*], [Obj.magic], and
      [external]s binding unchecked ([%…u]) primitives.
    - {b L4 domain safety} — raw [Atomic.*], and mutation of state
      captured from outside a function literal passed to
      [Pool.parallel_for]/[Domain.spawn] ([ref] assignment, mutable
      fields, [Hashtbl] mutators).
    - {b L5 no silent swallow} — [try … with _ -> …] and
      [match … with exception _ -> …] catch-alls.

    Purely syntactic: no typing, no cross-module resolution. *)

type source = { file : string; text : string }

val string : source -> (Diag.t list, string) result
(** Scan one in-memory source. Findings come back in {!Diag.compare}
    order; [Error] carries the located parse failure. *)

val file : path:string -> rel:string -> (Diag.t list, string) result
(** {!string} on a file's contents; diagnostics use [rel]. *)
