(* A single lint finding. Everything is plain data so Driver can sort,
   filter and serialize without re-touching the parsetree. *)

type t = {
  rule : string; (* "L1" .. "L5" *)
  file : string; (* path relative to the scanned root, '/'-separated *)
  line : int; (* 1-based *)
  col : int; (* 0-based, as the compiler reports columns *)
  context : string; (* nearest enclosing top-level binding, or "<toplevel>" *)
  message : string; (* one-line why *)
}

let make ~rule ~file ~line ~col ~context ~message =
  { rule; file; line; col; context; message }

(* Stable order for reports: by position first so a file's findings read
   top to bottom, then rule and message to break exact-position ties. *)
let compare a b =
  let c = String.compare a.file b.file in
  if c <> 0 then c
  else
    let c = Int.compare a.line b.line in
    if c <> 0 then c
    else
      let c = Int.compare a.col b.col in
      if c <> 0 then c
      else
        let c = String.compare a.rule b.rule in
        if c <> 0 then c else String.compare a.message b.message

let pp ppf d =
  Format.fprintf ppf "%s:%d:%d: %s (%s) %s" d.file d.line d.col d.rule
    d.context d.message

let to_json d =
  Pindisk_check.Json.Obj
    [
      ("rule", Pindisk_check.Json.Str d.rule);
      ("file", Pindisk_check.Json.Str d.file);
      ("line", Pindisk_check.Json.Int d.line);
      ("col", Pindisk_check.Json.Int d.col);
      ("context", Pindisk_check.Json.Str d.context);
      ("message", Pindisk_check.Json.Str d.message);
    ]
