(** [lint.config]: the committed per-directory lint policy, in the same
    small line format as {!Pindisk_check.Spec}'s [*.design] files.

    {v
    pindisk-lint v1
    # where each rule applies ("*" = every scanned file)
    scope L1 lib/store lib/sim lib/pinwheel lib/adapt
    scope L3 lib bin scripts bench
    # carve-outs from a scope
    except L3 lib/gf256 lib/ida
    # permanent by-design exemptions, one (rule, path, context) each;
    # context "*" covers the whole path
    allow L4 lib/ida/ida.ml passes
    v}

    [#] starts a comment; blank lines are ignored; the header line is
    mandatory; paths are '/'-separated prefixes matched on component
    boundaries (so [lib/sim] covers [lib/sim/fault.ml] but not
    [lib/simx.ml]). A rule with no [scope] stanza is off. *)

type t = {
  scopes : (string * string list) list;
  excepts : (string * string list) list;
  allows : (string * string * string) list;  (** rule, path, context *)
}

val empty : t
(** No scopes: every rule off. *)

val of_string : string -> (t, string) result
(** Parse; errors carry the 1-based line number. *)

val load : string -> (t, string) result
(** {!of_string} on a file's contents; [Error] on I/O failure too. *)

val applies : t -> rule:string -> file:string -> bool
(** Is [rule] in force for [file] (scoped and not excepted)? *)

val allowed : t -> Diag.t -> bool
(** Does an [allow] stanza cover this finding? *)

val path_matches : string -> string -> bool
(** [path_matches pat file]: prefix match on path components; ["*"]
    matches everything. Exposed for {!Baseline}. *)

val rules : string list
(** ["L1"] .. ["L5"]. *)

val tokens : string -> string list
(** The shared tokenizer ([#] comment tail stripped, split on blanks) —
    {!Baseline} parses the same file-format family. *)
