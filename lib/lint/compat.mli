(** Version-bridging view of the one Parsetree construct the linter
    needs that changed shape between OCaml 5.1 and 5.2 (function
    literals: [Pexp_fun]/[Pexp_function] were merged into an n-ary
    [Pexp_function] in 5.2). The dune rules in this directory copy the
    matching [compat_*.ml.in] variant to [compat.ml] based on
    [%{ocaml_version}]; everything else the linter touches is stable
    across 5.1–5.3. *)

val as_closure :
  Parsetree.expression ->
  (Parsetree.pattern list * Parsetree.expression option * Parsetree.case list)
  option
(** [as_closure e] views [e] as a function literal and returns its
    parameter patterns together with either its body
    ([fun p1 .. pn -> body]) or its cases ([function | ...]).
    [None] when [e] is not a function literal. *)
