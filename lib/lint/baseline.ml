(* lint.baseline: committed, *expiring* suppressions so the tree can be
   brought clean incrementally. An entry names the finding shape — not
   a line number, which would rot on every edit — plus a hard expiry
   date after which the finding surfaces again. *)

let header = "pindisk-lint-baseline v1"

type entry = {
  rule : string;
  file : string;
  context : string;
  expires : string; (* YYYY-MM-DD; ISO dates compare lexicographically *)
  ln : int; (* 1-based line in the baseline file, for actionable output *)
}

type t = entry list

let valid_date s =
  String.length s = 10
  && String.for_all (fun c -> (c >= '0' && c <= '9') || c = '-') s
  && s.[4] = '-'
  && s.[7] = '-'
  &&
  let mm = String.sub s 5 2 and dd = String.sub s 8 2 in
  mm >= "01" && mm <= "12" && dd >= "01" && dd <= "31"

let of_string text =
  let ( let* ) = Result.bind in
  let lines =
    String.split_on_char '\n' text
    |> List.mapi (fun i l -> (i + 1, Config.tokens l))
    |> List.filter (fun (_, ts) -> ts <> [])
  in
  let* lines =
    match lines with
    | (_, [ "pindisk-lint-baseline"; "v1" ]) :: rest -> Ok rest
    | (ln, _) :: _ ->
        Error (Printf.sprintf "line %d: expected header %S" ln header)
    | [] ->
        Error (Printf.sprintf "empty baseline (expected header %S)" header)
  in
  let rec walk acc = function
    | [] -> Ok (List.rev acc)
    | (ln, [ "suppress"; rule; file; context; expires ]) :: rest ->
        let* () =
          if List.mem rule Config.rules then Ok ()
          else
            Error (Printf.sprintf "line %d: unknown rule %S (want L1..L5)" ln rule)
        in
        let* () =
          if valid_date expires then Ok ()
          else
            Error
              (Printf.sprintf "line %d: expires %S is not a YYYY-MM-DD date"
                 ln expires)
        in
        walk ({ rule; file; context; expires; ln } :: acc) rest
    | (ln, "suppress" :: _) :: _ ->
        Error
          (Printf.sprintf
             "line %d: want suppress RULE FILE CONTEXT YYYY-MM-DD" ln)
    | (ln, w :: _) :: _ ->
        Error (Printf.sprintf "line %d: unknown stanza %S" ln w)
    | (_, []) :: _ -> assert false
  in
  walk [] lines

let load path =
  match In_channel.with_open_text path In_channel.input_all with
  | text -> of_string text
  | exception Sys_error e -> Error e

let matches e (d : Diag.t) =
  e.rule = d.rule
  && Config.path_matches e.file d.file
  && (e.context = "*" || e.context = d.context)

let expired ~today e = e.expires < today

let pp_entry ppf e =
  Format.fprintf ppf "suppress %s %s %s %s (baseline line %d)" e.rule e.file
    e.context e.expires e.ln

let entry_json e =
  Pindisk_check.Json.Obj
    [
      ("rule", Pindisk_check.Json.Str e.rule);
      ("file", Pindisk_check.Json.Str e.file);
      ("context", Pindisk_check.Json.Str e.context);
      ("expires", Pindisk_check.Json.Str e.expires);
      ("line", Pindisk_check.Json.Int e.ln);
    ]
