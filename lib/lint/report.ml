(* Rendering: human text and the byte-stable "pindisk-lint v1" JSON
   document (Check.Json prints object fields in construction order and
   Driver sorts findings, so print -> parse -> print is the identity —
   the same property pindisk-metrics v1 pins in cram tests). *)

module Json = Pindisk_check.Json

let schema = "pindisk-lint v1"

let by_rule (o : Driver.outcome) =
  List.map
    (fun r ->
      ( r,
        List.length
          (List.filter (fun (d : Diag.t) -> d.rule = r) o.findings) ))
    Config.rules

let to_json (o : Driver.outcome) =
  Json.Obj
    [
      ("schema", Json.Str schema);
      ("files", Json.Int o.files);
      ( "findings",
        Json.List (List.map Diag.to_json o.findings) );
      ("suppressed", Json.Int (List.length o.suppressed));
      ( "expired",
        Json.List (List.map (fun (_, e) -> Baseline.entry_json e) o.expired)
      );
      ("stale", Json.List (List.map Baseline.entry_json o.stale));
      ( "by_rule",
        Json.Obj (List.map (fun (r, n) -> (r, Json.Int n)) (by_rule o)) );
      ("errors", Json.List (List.map (fun e -> Json.Str e) o.errors));
    ]

let summary_line (o : Driver.outcome) =
  let counts =
    by_rule o
    |> List.filter (fun (_, n) -> n > 0)
    |> List.map (fun (r, n) -> Printf.sprintf "%s %d" r n)
  in
  if o.findings = [] && o.stale = [] && o.errors = [] then
    Printf.sprintf "clean (%d files, %d suppressed)" o.files
      (List.length o.suppressed)
  else
    Printf.sprintf "%d finding%s (%s) in %d files, %d suppressed, %d stale"
      (List.length o.findings)
      (if List.length o.findings = 1 then "" else "s")
      (if counts = [] then "-" else String.concat ", " counts)
      o.files
      (List.length o.suppressed)
      (List.length o.stale)

let print_text ppf (o : Driver.outcome) =
  List.iter (fun e -> Format.fprintf ppf "pindisk-lint: error: %s@." e) o.errors;
  List.iter (fun d -> Format.fprintf ppf "%a@." Diag.pp d) o.findings;
  List.iter
    (fun (_, e) ->
      Format.fprintf ppf
        "pindisk-lint: expired %a — the finding above is live again@."
        Baseline.pp_entry e)
    o.expired;
  List.iter
    (fun e ->
      Format.fprintf ppf
        "pindisk-lint: stale %a — matches nothing, delete it@."
        Baseline.pp_entry e)
    o.stale;
  Format.fprintf ppf "pindisk-lint: %s@." (summary_line o)

(* Markdown rows for the shared gate summary artifact. *)
let summary_rows (o : Driver.outcome) =
  List.map
    (fun (d : Diag.t) ->
      [
        d.rule;
        Printf.sprintf "%s:%d" d.file d.line;
        d.context;
        d.message;
      ])
    o.findings
  @ List.map
      (fun (e : Baseline.entry) ->
        [
          e.rule;
          e.file;
          e.context;
          Printf.sprintf "stale baseline entry (line %d) — delete it" e.ln;
        ])
      o.stale
