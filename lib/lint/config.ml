(* lint.config: the committed per-directory policy, in the same small
   line format as Check.Spec's *.design files. *)

let header = "pindisk-lint v1"
let rules = [ "L1"; "L2"; "L3"; "L4"; "L5" ]

type t = {
  scopes : (string * string list) list;
  excepts : (string * string list) list;
  allows : (string * string * string) list;
}

let empty = { scopes = []; excepts = []; allows = [] }

(* Strip the comment tail and split on runs of blanks (Check.Spec's
   tokenizer, verbatim — same file-format family). *)
let tokens line =
  let line =
    match String.index_opt line '#' with
    | Some i -> String.sub line 0 i
    | None -> line
  in
  String.split_on_char ' ' line
  |> List.concat_map (String.split_on_char '\t')
  |> List.filter (fun s -> s <> "")

(* "lib/sim" matches itself and anything under it; "*" matches all. *)
let path_matches pat file =
  pat = "*" || pat = file
  || String.starts_with ~prefix:(pat ^ "/") file

let rule_tok ~ln r =
  if List.mem r rules then Ok r
  else Error (Printf.sprintf "line %d: unknown rule %S (want L1..L5)" ln r)

let of_string text =
  let ( let* ) = Result.bind in
  let lines =
    String.split_on_char '\n' text
    |> List.mapi (fun i l -> (i + 1, tokens l))
    |> List.filter (fun (_, ts) -> ts <> [])
  in
  let* lines =
    match lines with
    | (_, [ "pindisk-lint"; "v1" ]) :: rest -> Ok rest
    | (ln, _) :: _ ->
        Error (Printf.sprintf "line %d: expected header %S" ln header)
    | [] -> Error (Printf.sprintf "empty config (expected header %S)" header)
  in
  let t = ref empty in
  let rec walk = function
    | [] -> Ok ()
    | (ln, stanza) :: rest ->
        let* () =
          match stanza with
          | "scope" :: r :: (_ :: _ as paths) ->
              let* r = rule_tok ~ln r in
              t := { !t with scopes = !t.scopes @ [ (r, paths) ] };
              Ok ()
          | "except" :: r :: (_ :: _ as paths) ->
              let* r = rule_tok ~ln r in
              t := { !t with excepts = !t.excepts @ [ (r, paths) ] };
              Ok ()
          | [ "allow"; r; path; context ] ->
              let* r = rule_tok ~ln r in
              t := { !t with allows = !t.allows @ [ (r, path, context) ] };
              Ok ()
          | "scope" :: _ | "except" :: _ ->
              Error
                (Printf.sprintf "line %d: want %s RULE PATH [PATH...]" ln
                   (List.hd stanza))
          | "allow" :: _ ->
              Error
                (Printf.sprintf
                   "line %d: want allow RULE PATH CONTEXT (CONTEXT \"*\" = \
                    whole path)"
                   ln)
          | w :: _ -> Error (Printf.sprintf "line %d: unknown stanza %S" ln w)
          | [] -> assert false
        in
        walk rest
  in
  let* () = walk lines in
  Ok !t

let load path =
  match In_channel.with_open_text path In_channel.input_all with
  | text -> of_string text
  | exception Sys_error e -> Error e

let applies t ~rule ~file =
  let hit pairs =
    List.exists
      (fun (r, paths) ->
        r = rule && List.exists (fun p -> path_matches p file) paths)
      pairs
  in
  hit t.scopes && not (hit t.excepts)

let allowed t (d : Diag.t) =
  List.exists
    (fun (r, path, context) ->
      r = d.rule
      && path_matches path d.file
      && (context = "*" || context = d.context))
    t.allows
