(** [lint.baseline]: committed, {e expiring} suppressions so the tree
    can be brought clean incrementally without turning the linter off.

    {v
    pindisk-lint-baseline v1
    # justifying comment above every entry (kept by review convention)
    suppress L2 lib/sim/transport.ml retrieve 2027-06-30
    v}

    An entry names the finding shape — rule, file (or directory
    prefix), enclosing context ("*" = any) — never a line number, which
    would rot on every edit. After [expires] (strictly before today)
    the entry stops suppressing and the finding surfaces again; entries
    matching nothing are {e stale} and fail the run, keeping the
    baseline honest in both directions. *)

type entry = {
  rule : string;
  file : string;
  context : string;
  expires : string;  (** YYYY-MM-DD *)
  ln : int;  (** 1-based line in the baseline file *)
}

type t = entry list

val of_string : string -> (t, string) result
val load : string -> (t, string) result

val matches : entry -> Diag.t -> bool
(** Shape match only — expiry is {!expired}'s business. *)

val expired : today:string -> entry -> bool
(** [e.expires < today], lexicographically (ISO dates order as
    strings). *)

val valid_date : string -> bool
val pp_entry : Format.formatter -> entry -> unit
val entry_json : entry -> Pindisk_check.Json.t
