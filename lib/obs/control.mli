(** The observability master switch.

    Instrumentation across the pipeline is gated on {!enabled}: when the
    flag is off, an instrumented hot path pays exactly one atomic load
    per coarse-grained operation (per codec call, per retrieval — never
    per byte or per slot inside an inner loop). The flag starts from the
    [PINDISK_METRICS] environment variable ([1]/[true]/[yes]/[on]
    enable), so a whole test run can be forced metrics-on without code
    changes. *)

val enabled : unit -> bool
(** Whether metrics and tracing are being recorded. *)

val set_enabled : bool -> unit
(** Flip the switch. Takes effect for subsequent operations; toggling
    while worker domains are mid-job is safe (they may record a few
    more or fewer events, never corrupt state). *)

val with_enabled : bool -> (unit -> 'a) -> 'a
(** [with_enabled b f] runs [f] with the switch set to [b] and restores
    the previous state afterwards, exceptions included. *)
