(** The process-wide metrics registry: named counters, gauges and
    histograms.

    Counters are {e sharded}: one cache-padded atomic slot per (hashed)
    domain, incremented with a fetch-and-add on the calling domain's own
    slot and merged by summing on read. Increments from {!Pindisk_util.Pool}
    workers therefore never contend, and no increment is ever lost —
    the sum over shards is exact. Gauges are single last-write-wins
    atomics. Histograms are registered here for snapshotting but are
    single-domain structures (see {!Histogram}).

    Handles are interned by name: the same name always returns the same
    metric, and {!reset} zeroes metrics {e in place}, so handles taken
    once at module initialization survive resets. Creation takes a lock;
    increments are lock-free. *)

type counter
type gauge

val counter : string -> counter
(** Find or create. *)

val incr : counter -> unit
val add : counter -> int -> unit

val counter_value : counter -> int
(** Sum over all shards. Exact once writers have quiesced (e.g. after a
    [Pool.parallel_for] returns); may read mid-increment values while
    other domains are actively counting. *)

val gauge : string -> gauge
val set : gauge -> int -> unit
val gauge_value : gauge -> int

val histogram : string -> Histogram.t
(** Find or create a registered histogram. *)

(** {1 Enumeration} (used by {!Snapshot}) *)

val counters : unit -> (string * int) list
(** Sorted by name. *)

val gauges : unit -> (string * int) list
val histograms : unit -> (string * Histogram.t) list

val reset : unit -> unit
(** Zero every registered metric in place. Existing handles stay valid. *)
