(* A bounded ring-buffer event tracer. Ticks are issued by one global
   fetch-and-add, so they are unique and monotonic across domains; the
   event with tick [t] lands at ring index [(t - 1) mod capacity] and
   simply overwrites whatever is [capacity] ticks older. Readers take no
   lock — [events] is meant to be called when writers have quiesced
   (snapshots, post-run reports); a concurrent reader can observe an
   event slot mid-replacement, never a corrupt value. *)

type span =
  | Slot of { slot : int; file : int; index : int }
  | Fault_burst of { slot : int; length : int }
  | Reconstruct of { file : int; pieces : int; bytes : int }
  | Hot_swap of { slot : int; cause : string }
  | Crash of { slot : int }
  | Recover of { slot : int; replayed : int }
  | Retry of { file : int; attempt : int; backoff : int }

type event = { tick : int; span : span }

let dummy = { tick = 0; span = Fault_burst { slot = 0; length = 0 } }
let default_capacity = 1024

type ring = { mutable arr : event array; mutable cap : int }

let ring = { arr = Array.make default_capacity dummy; cap = default_capacity }
let next = Atomic.make 0 (* ticks issued so far; the next tick is next+1 *)

let record span =
  if Control.enabled () then begin
    let i = Atomic.fetch_and_add next 1 in
    ring.arr.(i mod ring.cap) <- { tick = i + 1; span }
  end

let recorded () = Atomic.get next
let capacity () = ring.cap

let set_capacity c =
  if c < 1 then invalid_arg "Trace.set_capacity: capacity must be >= 1";
  ring.arr <- Array.make c dummy;
  ring.cap <- c

let events () =
  let n = Atomic.get next in
  let k = min n ring.cap in
  List.init k (fun j -> ring.arr.((n - k + j) mod ring.cap))
  |> List.filter (fun e -> e.tick > 0)

let reset () =
  Atomic.set next 0;
  Array.fill ring.arr 0 ring.cap dummy

let pp_span ppf = function
  | Slot { slot; file; index } ->
      Format.fprintf ppf "slot %d: file %d block %d" slot file index
  | Fault_burst { slot; length } ->
      Format.fprintf ppf "fault burst at slot %d (%d slots)" slot length
  | Reconstruct { file; pieces; bytes } ->
      Format.fprintf ppf "reconstruct file %d from %d pieces (%d bytes)" file
        pieces bytes
  | Hot_swap { slot; cause } ->
      Format.fprintf ppf "hot-swap at slot %d: %s" slot cause
  | Crash { slot } -> Format.fprintf ppf "crash at slot %d" slot
  | Recover { slot; replayed } ->
      Format.fprintf ppf "recover at slot %d (replaying %d slots)" slot
        replayed
  | Retry { file; attempt; backoff } ->
      Format.fprintf ppf "retry %d for file %d (backoff %d slots)" attempt
        file backoff

let pp_event ppf e = Format.fprintf ppf "[%d] %a" e.tick pp_span e.span
