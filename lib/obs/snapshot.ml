type hist = {
  count : int;
  sum : int;
  lo : int; (* observed minimum; 0 when empty *)
  hi : int; (* observed maximum; 0 when empty *)
  buckets : (int * int) list; (* sparse (bucket index, count), ascending *)
}

type t = {
  tick : int;
  counters : (string * int) list;
  gauges : (string * int) list;
  histograms : (string * hist) list;
  events : Trace.event list;
}

let hist_of_histogram h =
  {
    count = Histogram.count h;
    sum = Histogram.sum h;
    lo = Histogram.min_value h;
    hi = Histogram.max_value h;
    buckets = Histogram.buckets h;
  }

let take () =
  {
    tick = Trace.recorded ();
    counters = Registry.counters ();
    gauges = Registry.gauges ();
    histograms =
      List.map (fun (k, h) -> (k, hist_of_histogram h)) (Registry.histograms ());
    events = Trace.events ();
  }

let reset () =
  Registry.reset ();
  Trace.reset ()

let mean (h : hist) =
  if h.count = 0 then 0.0 else float_of_int h.sum /. float_of_int h.count

(* Same nearest-rank walk as [Histogram.quantile], over the sparse
   bucket list. *)
let quantile (h : hist) p =
  if h.count = 0 then invalid_arg "Snapshot.quantile: empty";
  if not (p >= 0.0 && p <= 1.0) then
    invalid_arg "Snapshot.quantile: p out of [0, 1]";
  let r =
    min (h.count - 1)
      (max 0 (int_of_float (ceil (p *. float_of_int h.count)) - 1))
  in
  let rec go seen = function
    | [] -> invalid_arg "Snapshot.quantile: bucket counts disagree with count"
    | (b, n) :: rest ->
        if seen + n > r then if b = 0 then 0 else snd (Histogram.bucket_bounds b)
        else go (seen + n) rest
  in
  go 0 h.buckets

(* Subtract sparse bucket lists (both ascending); buckets that cancel to
   zero are dropped. *)
let diff_buckets later earlier =
  let tbl = Hashtbl.create 16 in
  List.iter (fun (b, n) -> Hashtbl.replace tbl b n) later;
  List.iter
    (fun (b, n) ->
      let cur = Option.value (Hashtbl.find_opt tbl b) ~default:0 in
      Hashtbl.replace tbl b (cur - n))
    earlier;
  Hashtbl.fold (fun b n acc -> if n = 0 then acc else (b, n) :: acc) tbl []
  |> List.sort compare

let diff_hist (later : hist) (earlier : hist) =
  let buckets = diff_buckets later.buckets earlier.buckets in
  (* Exact minima/maxima are not subtractable; report bucket-resolution
     bounds of the interval's samples instead. *)
  let lo, hi =
    match (buckets, List.rev buckets) with
    | (first, _) :: _, (last, _) :: _ ->
        let blo = if first = 0 then 0 else fst (Histogram.bucket_bounds first) in
        (blo, snd (Histogram.bucket_bounds last))
    | _ -> (0, 0)
  in
  {
    count = later.count - earlier.count;
    sum = later.sum - earlier.sum;
    lo;
    hi;
    buckets;
  }

let diff later earlier =
  let earlier_counter name =
    Option.value (List.assoc_opt name earlier.counters) ~default:0
  in
  let earlier_hist name = List.assoc_opt name earlier.histograms in
  {
    tick = later.tick;
    counters =
      List.map (fun (k, v) -> (k, v - earlier_counter k)) later.counters;
    gauges = later.gauges;
    histograms =
      List.map
        (fun (k, h) ->
          match earlier_hist k with
          | None -> (k, h)
          | Some e -> (k, diff_hist h e))
        later.histograms;
    events = List.filter (fun e -> e.Trace.tick > earlier.tick) later.events;
  }

let pp_hist ppf (h : hist) =
  if h.count = 0 then Format.fprintf ppf "(no observations)"
  else
    Format.fprintf ppf "n=%d sum=%d min=%d max=%d mean=%.2f p50<=%d p99<=%d"
      h.count h.sum h.lo h.hi (mean h) (quantile h 0.5) (quantile h 0.99)

let pp ppf t =
  Format.fprintf ppf "tick %d" t.tick;
  List.iter
    (fun (k, v) -> Format.fprintf ppf "@.%-32s %d" k v)
    (t.counters @ t.gauges);
  List.iter
    (fun (k, h) -> Format.fprintf ppf "@.%-32s %a" k pp_hist h)
    t.histograms;
  List.iter (fun e -> Format.fprintf ppf "@.  %a" Trace.pp_event e) t.events
