(* The process-wide metrics registry. Counters are sharded: one atomic
   slot per (hashed) domain id, incremented with a fetch-and-add on the
   caller's own slot, merged by summing on read — so Pool workers inside
   [Ida.disperse] / [Gf256.encode_rows] count without cross-domain
   contention. Slots are spaced out at allocation time with dummy blocks
   so neighbouring atomics start on different cache lines (the GC may
   later move them; the sharding itself is what kills the contention).

   [reset] zeroes every metric *in place*: instrumentation sites hold
   handles obtained once at module initialization, and those handles
   must stay live across resets. *)

type counter = { c_slots : int Atomic.t array }
type gauge = { g_cell : int Atomic.t }

let shard_count = 64 (* power of two; domain ids hash with a mask *)

let padded_atomic () =
  let a = Atomic.make 0 in
  (* Spacer so consecutively allocated atomics land on distinct lines. *)
  ignore (Sys.opaque_identity (Array.make 15 0));
  a

let counters_tbl : (string, counter) Hashtbl.t = Hashtbl.create 32
let gauges_tbl : (string, gauge) Hashtbl.t = Hashtbl.create 16
let histograms_tbl : (string, Histogram.t) Hashtbl.t = Hashtbl.create 16
let lock = Mutex.create ()

let with_lock f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let counter name =
  with_lock (fun () ->
      match Hashtbl.find_opt counters_tbl name with
      | Some c -> c
      | None ->
          let c = { c_slots = Array.init shard_count (fun _ -> padded_atomic ()) } in
          Hashtbl.add counters_tbl name c;
          c)

let add c v =
  let slot = (Domain.self () :> int) land (shard_count - 1) in
  ignore (Atomic.fetch_and_add c.c_slots.(slot) v)

let incr c = add c 1

let counter_value c =
  Array.fold_left (fun acc a -> acc + Atomic.get a) 0 c.c_slots

let gauge name =
  with_lock (fun () ->
      match Hashtbl.find_opt gauges_tbl name with
      | Some g -> g
      | None ->
          let g = { g_cell = Atomic.make 0 } in
          Hashtbl.add gauges_tbl name g;
          g)

let set g v = Atomic.set g.g_cell v
let gauge_value g = Atomic.get g.g_cell

let histogram name =
  with_lock (fun () ->
      match Hashtbl.find_opt histograms_tbl name with
      | Some h -> h
      | None ->
          let h = Histogram.create () in
          Hashtbl.add histograms_tbl name h;
          h)

let sorted_fold tbl f =
  with_lock (fun () -> Hashtbl.fold (fun k v acc -> (k, f v) :: acc) tbl [])
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let counters () = sorted_fold counters_tbl counter_value
let gauges () = sorted_fold gauges_tbl gauge_value
let histograms () = sorted_fold histograms_tbl Fun.id

let reset () =
  with_lock (fun () ->
      Hashtbl.iter
        (fun _ c -> Array.iter (fun a -> Atomic.set a 0) c.c_slots)
        counters_tbl;
      Hashtbl.iter (fun _ g -> Atomic.set g.g_cell 0) gauges_tbl;
      Hashtbl.iter (fun _ h -> Histogram.reset h) histograms_tbl)
