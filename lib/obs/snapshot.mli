(** Immutable captures of the registry and tracer, with interval diffs.

    A snapshot is plain data — every field is public so serializers
    (e.g. [Pindisk_check.Metrics], which renders snapshots through the
    audit subsystem's JSON tree) and tests can build and inspect them
    without this library growing a serialization dependency. *)

type hist = {
  count : int;
  sum : int;
  lo : int;  (** observed minimum (bucket-resolution after {!diff}); 0 when empty *)
  hi : int;  (** observed maximum (bucket-resolution after {!diff}); 0 when empty *)
  buckets : (int * int) list;
      (** sparse non-zero [(bucket index, count)], ascending; indices are
          {!Histogram.bucket_of} indices *)
}

type t = {
  tick : int;  (** tracer tick at capture time *)
  counters : (string * int) list;  (** sorted by name *)
  gauges : (string * int) list;
  histograms : (string * hist) list;
  events : Trace.event list;  (** buffered trace, oldest first *)
}

val take : unit -> t
(** Capture the global registry and tracer. Exact when writers have
    quiesced (counters merge their shards on read). *)

val reset : unit -> unit
(** [Registry.reset] + [Trace.reset] in one call: the conventional
    prologue before an instrumented run. *)

val diff : t -> t -> t
(** [diff later earlier]: counter and histogram deltas for interval
    reporting. Gauges keep [later]'s value; events are [later]'s with
    ticks after [earlier.tick]; a histogram delta's [lo]/[hi] are
    bucket-resolution bounds (exact minima are not subtractable). *)

val mean : hist -> float
(** [sum / count]; [0.0] when empty. *)

val quantile : hist -> float -> int
(** Same estimator as {!Histogram.quantile}, over the sparse buckets. *)

val pp : Format.formatter -> t -> unit
(** Human-readable multi-line rendering. *)
