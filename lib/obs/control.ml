(* The static enable flag every instrumentation site checks before doing
   any work. A single atomic read (a plain load on x86) keeps disabled
   instrumentation effectively free; sites additionally hoist the check
   out of their inner loops so the per-byte kernels carry nothing. *)

let flag =
  let from_env =
    match Sys.getenv_opt "PINDISK_METRICS" with
    | Some ("1" | "true" | "yes" | "on") -> true
    | Some _ | None -> false
  in
  Atomic.make from_env

let enabled () = Atomic.get flag
let set_enabled b = Atomic.set flag b

let with_enabled b f =
  let old = Atomic.get flag in
  Atomic.set flag b;
  Fun.protect ~finally:(fun () -> Atomic.set flag old) f
