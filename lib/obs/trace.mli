(** A bounded ring-buffer event tracer with monotonic tick timestamps.

    Events carry a typed span — a broadcast slot, a fault burst, a
    reconstruction, a program hot-swap — and a tick issued by a global
    atomic counter, so ticks are unique and strictly increasing across
    domains. The ring holds the most recent [capacity ()] events; older
    ones are overwritten silently (the tick sequence makes the gap
    visible). Recording is gated on {!Control.enabled} internally and is
    lock-free: one fetch-and-add plus one store. *)

type span =
  | Slot of { slot : int; file : int; index : int }
      (** A busy broadcast slot put on the air. *)
  | Fault_burst of { slot : int; length : int }
      (** [length] consecutive busy slots lost, starting at [slot]. *)
  | Reconstruct of { file : int; pieces : int; bytes : int }
      (** A file rebuilt from [pieces] dispersed pieces. *)
  | Hot_swap of { slot : int; cause : string }
      (** An adaptive program swap installed at a cycle boundary. *)
  | Crash of { slot : int }
      (** The broadcast server died at the slot, losing volatile state. *)
  | Recover of { slot : int; replayed : int }
      (** The server restarted from its checkpoint at [slot], re-airing
          [replayed] slots that had been broadcast after the checkpoint. *)
  | Retry of { file : int; attempt : int; backoff : int }
      (** A client re-tuned in for [file] after a failed attempt, having
          backed off [backoff] slots. *)

type event = { tick : int; span : span }

val record : span -> unit
(** Append (no-op when {!Control.enabled} is false). *)

val events : unit -> event list
(** The buffered events, oldest first: the last
    [min (recorded ()) (capacity ())] recorded. Call when writers have
    quiesced for an exact answer. *)

val recorded : unit -> int
(** Total events ever recorded, including overwritten ones; also the
    latest tick issued. *)

val capacity : unit -> int

val set_capacity : int -> unit
(** Replace the ring (buffered events are dropped; the tick counter is
    preserved). Raises [Invalid_argument] when [< 1]. *)

val reset : unit -> unit
(** Drop buffered events and restart ticks from 1. *)

val pp_span : Format.formatter -> span -> unit
val pp_event : Format.formatter -> event -> unit
