(** Log-bucketed histograms for latencies and batch sizes.

    Two buckets per octave: consecutive bucket boundaries are integer
    approximations of powers of [sqrt 2], computed with integer
    arithmetic only (an integer square root for the half-octave point),
    so bucketing is deterministic across platforms. Values [<= 0] land
    in a dedicated bucket 0; the top bucket ends at [max_int], so every
    native [int] has a bucket. [count]/[sum]/[min]/[max] are tracked
    exactly; only the distribution is approximated.

    A histogram is a plain mutable structure, {e not} domain-safe:
    record into one from a single domain (the sharded counters in
    {!Registry} are the multi-domain primitive) or merge per-domain
    histograms on read. *)

type t

val create : unit -> t

val observe : t -> int -> unit
(** Record one sample. *)

val observe_n : t -> int -> int -> unit
(** [observe_n t v n] records [n] copies of sample [v] in O(1) —
    equivalent to [n] calls to [observe t v]. [n = 0] is a no-op;
    negative [n] raises [Invalid_argument]. Lets weighted-cohort
    producers feed class-sized observations without a per-member loop. *)

val count : t -> int
val sum : t -> int

val min_value : t -> int
(** Exact smallest sample; [0] when empty. *)

val max_value : t -> int
(** Exact largest sample; [0] when empty. *)

val mean : t -> float
(** [sum / count]; [0.0] when empty (never NaN). *)

val quantile : t -> float -> int
(** [quantile t p] for [p] in [[0, 1]]: the inclusive upper bound of the
    bucket holding the nearest-rank [p]-quantile sample. Because
    bucketing is monotone, the returned estimate always lies in the same
    bucket as the exact sorted-sample quantile — within one bucket's
    relative-error bound, a factor of about [sqrt 2]. Raises
    [Invalid_argument] when empty or [p] out of range. *)

val merge : t -> t -> t
(** Bucket-wise sum into a fresh histogram; equals the histogram of the
    concatenated samples exactly (buckets, count, sum, min, max). *)

val reset : t -> unit
(** Zero in place; handles stay valid. *)

(** {1 Bucket geometry} (exposed for snapshots and tests) *)

val bucket_count : int

val bucket_of : int -> int
(** Monotone: [v <= w] implies [bucket_of v <= bucket_of w]. *)

val bucket_bounds : int -> int * int
(** Inclusive [(lo, hi)] value range of a bucket index. Bucket [0] is
    [(min_int, 0)]. Some low buckets are empty ([hi < lo]) where the
    integer half-octave point collides with the octave boundary;
    [bucket_of] never selects those. *)

val buckets : t -> (int * int) list
(** Sparse non-zero [(bucket index, count)] pairs, ascending. *)
