(* Log-bucketed histograms: two buckets per octave, so consecutive bucket
   boundaries are (integer approximations of) powers of sqrt 2. Bucket
   boundaries are computed with integer arithmetic only — an integer
   square root for the half-octave split — so bucketing is deterministic
   across platforms and float rounding modes.

   Layout (indices into [counts]):
     bucket 0:        v <= 0
     bucket 1 + 2e:   2^e     <= v < mid(e)      (empty when mid(e) = 2^e)
     bucket 2 + 2e:   mid(e)  <= v < 2^(e+1)
   for e in [0, 61]; mid(e) = floor(2^e * sqrt 2). OCaml's native int is
   63-bit, so e = 61 covers max_int and no overflow bucket is needed. *)

let max_exp = 61
let bucket_count = 3 + (2 * max_exp) (* 0 plus two per octave *)

let isqrt n =
  if n < 0 then invalid_arg "Histogram.isqrt: negative"
  else if n = 0 then 0
  else begin
    let x = ref n and y = ref ((n / 2) + 1) in
    while !y < !x do
      x := !y;
      y := (!y + (n / !y)) / 2
    done;
    !x
  end

(* mid.(e) = floor(2^e * sqrt 2) for e <= 30, computed exactly as
   isqrt(2^(2e+1)); shifted up beyond that (still monotone, still within
   one unit of the true half-octave point relative to the octave). *)
let mid =
  Array.init (max_exp + 1) (fun e ->
      if e <= 30 then isqrt (1 lsl ((2 * e) + 1))
      else isqrt (1 lsl 61) lsl (e - 30))

let bucket_of v =
  if v <= 0 then 0
  else begin
    let e = ref 0 and x = ref v in
    while !x > 1 do
      x := !x lsr 1;
      incr e
    done;
    if v < mid.(!e) then 1 + (2 * !e) else 2 + (2 * !e)
  end

(* Inclusive [lo, hi] range of each bucket. Bucket [1 + 2e] is empty
   (hi < lo) when mid(e) = 2^e, which happens for small e; [bucket_of]
   never returns an empty bucket. *)
let bucket_bounds b =
  if b < 0 || b >= bucket_count then invalid_arg "Histogram.bucket_bounds";
  if b = 0 then (min_int, 0)
  else begin
    let e = (b - 1) / 2 in
    let lo = 1 lsl e and m = mid.(e) in
    if (b - 1) mod 2 = 0 then (lo, m - 1)
    else (m, (if e = max_exp then max_int else (1 lsl (e + 1)) - 1))
  end

type t = {
  mutable count : int;
  mutable sum : int;
  mutable vmin : int;
  mutable vmax : int;
  counts : int array;
}

let create () =
  { count = 0; sum = 0; vmin = 0; vmax = 0; counts = Array.make bucket_count 0 }

let observe_n t v n =
  if n < 0 then invalid_arg "Histogram.observe_n: negative count";
  if n > 0 then begin
    if t.count = 0 then begin
      t.vmin <- v;
      t.vmax <- v
    end
    else begin
      if v < t.vmin then t.vmin <- v;
      if v > t.vmax then t.vmax <- v
    end;
    t.count <- t.count + n;
    t.sum <- t.sum + (v * n);
    let b = bucket_of v in
    t.counts.(b) <- t.counts.(b) + n
  end

let observe t v = observe_n t v 1

let count t = t.count
let sum t = t.sum
let min_value t = t.vmin
let max_value t = t.vmax
let mean t = if t.count = 0 then 0.0 else float_of_int t.sum /. float_of_int t.count

let buckets t =
  let acc = ref [] in
  for b = bucket_count - 1 downto 0 do
    if t.counts.(b) > 0 then acc := (b, t.counts.(b)) :: !acc
  done;
  !acc

(* Nearest-rank quantile over the bucket counts. Cumulative bucket counts
   partition the sorted sample by bucket index (bucketing is monotone in
   the value), so the selected bucket is exactly the bucket holding the
   rank-r sample; the estimate returned is that bucket's inclusive upper
   bound, hence within one bucket (a factor of ~sqrt 2) of the exact
   sorted-sample quantile. *)
let rank ~count p =
  if count = 0 then invalid_arg "Histogram.quantile: empty";
  if not (p >= 0.0 && p <= 1.0) then
    invalid_arg "Histogram.quantile: p out of [0, 1]";
  min (count - 1) (max 0 (int_of_float (ceil (p *. float_of_int count)) - 1))

let quantile t p =
  let r = rank ~count:t.count p in
  let b = ref 0 and seen = ref 0 in
  while !seen + t.counts.(!b) <= r do
    seen := !seen + t.counts.(!b);
    incr b
  done;
  if !b = 0 then 0 else snd (bucket_bounds !b)

let merge a b =
  let t = create () in
  t.count <- a.count + b.count;
  t.sum <- a.sum + b.sum;
  (if a.count = 0 then begin
     t.vmin <- b.vmin;
     t.vmax <- b.vmax
   end
   else if b.count = 0 then begin
     t.vmin <- a.vmin;
     t.vmax <- a.vmax
   end
   else begin
     t.vmin <- min a.vmin b.vmin;
     t.vmax <- max a.vmax b.vmax
   end);
  for i = 0 to bucket_count - 1 do
    t.counts.(i) <- a.counts.(i) + b.counts.(i)
  done;
  t

let reset t =
  t.count <- 0;
  t.sum <- 0;
  t.vmin <- 0;
  t.vmax <- 0;
  Array.fill t.counts 0 bucket_count 0
