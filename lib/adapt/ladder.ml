module Item = Pindisk_rtdb.Item
module Mode = Pindisk_rtdb.Mode
module Admission = Pindisk_rtdb.Admission
module Aida = Pindisk_ida.Aida
module File_spec = Pindisk.File_spec
module Program = Pindisk.Program

type rung =
  | Baseline
  | Boost of int
  | Mode_switch of string
  | Shed of Item.t list
  | Migrate of { file : int; from_channel : int; to_channel : int }

let pp_rung ppf = function
  | Baseline -> Format.fprintf ppf "baseline"
  | Boost b -> Format.fprintf ppf "boost+%d" b
  | Mode_switch m -> Format.fprintf ppf "mode-switch:%s" m
  | Shed items ->
      Format.fprintf ppf "shed:%d item(s) [%s]" (List.length items)
        (String.concat "," (List.map (fun i -> i.Item.name) items))
  | Migrate { file; from_channel; to_channel } ->
      Format.fprintf ppf "migrate:file %d: channel %d -> %d" file from_channel
        to_channel

(* Channel-outage response: re-place every share of the failing channel
   onto the least-loaded surviving channel that stays plausibly feasible,
   committing loads as we go; shares that fit nowhere are stranded. *)
let evacuate (design : Pindisk.Shard.t) ~channel =
  let module P = Pindisk_pinwheel in
  let module Q = Pindisk_util.Q in
  let module Shard = Pindisk.Shard in
  let module File_spec = Pindisk.File_spec in
  let k = Array.length design.Shard.channels in
  if channel < 0 || channel >= k then
    invalid_arg "Ladder.evacuate: no such channel";
  let window f = File_spec.window f ~bandwidth:design.Shard.bandwidth in
  let spec_of id =
    List.find (fun f -> f.File_spec.id = id) design.Shard.specs
  in
  let load = Array.make k Q.zero in
  let members : P.Task.t list array = Array.make k [] in
  List.iter
    (fun (p : Shard.placement) ->
      let f = spec_of p.Shard.file in
      let task =
        P.Task.make ~id:p.Shard.file ~a:(Array.length p.Shard.pieces)
          ~b:(window f)
      in
      load.(p.Shard.channel) <- Q.add load.(p.Shard.channel) (P.Task.density task);
      members.(p.Shard.channel) <- task :: members.(p.Shard.channel))
    design.Shard.placements;
  let evicted =
    design.Shard.placements
    |> List.filter (fun (p : Shard.placement) -> p.Shard.channel = channel)
    |> List.stable_sort (fun (a : Shard.placement) b ->
           let d (p : Shard.placement) =
             Q.make (Array.length p.Shard.pieces) (window (spec_of p.Shard.file))
           in
           Q.compare (d b) (d a))
  in
  let rungs = ref [] and stranded = ref [] in
  List.iter
    (fun (p : Shard.placement) ->
      let f = spec_of p.Shard.file in
      let task =
        P.Task.make ~id:p.Shard.file ~a:(Array.length p.Shard.pieces)
          ~b:(window f)
      in
      let holds c =
        List.exists
          (fun (q : Shard.placement) ->
            q.Shard.file = p.Shard.file && q.Shard.channel = c)
          design.Shard.placements
      in
      let candidates =
        List.init k Fun.id
        |> List.filter (fun c -> c <> channel && not (holds c))
        |> List.stable_sort (fun a b -> Q.compare load.(a) load.(b))
      in
      let feasible c =
        match P.Density.classify (task :: members.(c)) with
        | P.Density.Infeasible _ -> false
        | P.Density.Guaranteed _ | P.Density.Unknown -> true
      in
      match List.find_opt feasible candidates with
      | Some c ->
          load.(c) <- Q.add load.(c) (P.Task.density task);
          members.(c) <- task :: members.(c);
          rungs :=
            Migrate { file = p.Shard.file; from_channel = channel; to_channel = c }
            :: !rungs
      | None -> stranded := p.Shard.file :: !stranded)
    evicted;
  (List.rev !rungs, List.rev !stranded)

type plan = {
  rung : rung;
  boost : int;
  mode : Mode.t;
  admitted : Item.t list;
  shed : Item.t list;
  specs : File_spec.t list;
  program : Program.t;
}

type t = {
  bandwidth : int;
  base : Mode.t;
  fallbacks : Mode.t list;
  items : Item.t list;
  max_boost : int;
  capacities : (int * int) list; (* item id -> fixed dispersal capacity *)
}

let bandwidth t = t.bandwidth
let items t = t.items

let capacity_for t (item : Item.t) = List.assoc item.Item.id t.capacities

(* The base mode with [b] extra blocks of tolerance on every item the mode
   already treats as real-time; non-real-time items keep their criticality
   (there is nothing to protect). *)
let boosted mode b items =
  if b = 0 then mode
  else
    Mode.make
      ~name:(Printf.sprintf "%s+%d" mode.Mode.name b)
      ~default:mode.Mode.default
      (List.map
         (fun (item : Item.t) ->
           let tol = Mode.tolerance mode item in
           let crit =
             if tol > 0 then Aida.Critical (tol + b)
             else Mode.criticality mode item
           in
           (item.Item.name, crit))
         items)

let create ?(fallbacks = []) ?(max_boost = 4) ~bandwidth ~base_mode items =
  if items = [] then invalid_arg "Ladder.create: no items";
  if bandwidth < 1 then invalid_arg "Ladder.create: bandwidth must be >= 1";
  if max_boost < 1 then invalid_arg "Ladder.create: max_boost must be >= 1";
  let capacities =
    List.map
      (fun (item : Item.t) ->
        let worst = Mode.max_tolerance (base_mode :: fallbacks) item in
        let cap = item.Item.blocks + worst + max_boost in
        if cap > 255 then
          invalid_arg
            (Printf.sprintf
               "Ladder.create: item %s needs capacity %d > 255 (IDA limit)"
               item.Item.name cap);
        (item.Item.id, cap))
      items
  in
  let t = { bandwidth; base = base_mode; fallbacks; items; max_boost; capacities } in
  let base_specs =
    Mode.file_specs ~capacity_for:(capacity_for t) base_mode items
  in
  (match Program.pinwheel ~bandwidth base_specs with
  | Some _ -> ()
  | None ->
      invalid_arg "Ladder.create: base mode not schedulable at this bandwidth");
  t

(* A mode is realized iff the pinwheel scheduler places its file specs at
   the ladder's bandwidth; capacities are the fixed dispersal levels, so
   every rung's program cycles blocks of the same dispersal. *)
let try_mode t mode =
  let specs = Mode.file_specs ~capacity_for:(capacity_for t) mode t.items in
  Program.pinwheel ~bandwidth:t.bandwidth specs
  |> Option.map (fun program -> (mode, specs, program))

let plan t ~boost =
  let b = max 0 (min boost t.max_boost) in
  let base_b = boosted t.base b t.items in
  match try_mode t base_b with
  | Some (mode, specs, program) ->
      {
        rung = (if b = 0 then Baseline else Boost b);
        boost = b;
        mode;
        admitted = t.items;
        shed = [];
        specs;
        program;
      }
  | None -> (
      let fallback =
        List.find_map
          (fun fb -> try_mode t (boosted fb b t.items)) t.fallbacks
      in
      match fallback with
      | Some (mode, specs, program) ->
          {
            rung = Mode_switch mode.Mode.name;
            boost = b;
            mode;
            admitted = t.items;
            shed = [];
            specs;
            program;
          }
      | None ->
          (* Last rung: keep the boost for whoever survives admission and
             shed the lowest value-density items. The most austere mode we
             have is the last fallback (or the base mode without one). *)
          let austere =
            match List.rev t.fallbacks with m :: _ -> m | [] -> t.base
          in
          let mode = boosted austere b t.items in
          let verdict = Admission.admit ~bandwidth:t.bandwidth ~mode t.items in
          let admitted = verdict.Admission.admitted in
          if admitted = [] then
            invalid_arg "Ladder.plan: no item admissible at this bandwidth";
          let specs =
            Mode.file_specs ~capacity_for:(capacity_for t) mode admitted
          in
          let program =
            match Program.pinwheel ~bandwidth:t.bandwidth specs with
            | Some p -> p
            | None -> (
                (* Admission certified schedulability with default
                   capacities; fall back to its program if the provisioned
                   capacities perturb the (deterministic) scheduler. *)
                match verdict.Admission.program with
                | Some p -> p
                | None -> assert false)
          in
          {
            rung = Shed verdict.Admission.rejected;
            boost = b;
            mode;
            admitted;
            shed = verdict.Admission.rejected;
            specs;
            program;
          })
