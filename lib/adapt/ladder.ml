module Item = Pindisk_rtdb.Item
module Mode = Pindisk_rtdb.Mode
module Admission = Pindisk_rtdb.Admission
module Aida = Pindisk_ida.Aida
module File_spec = Pindisk.File_spec
module Program = Pindisk.Program

type rung =
  | Baseline
  | Boost of int
  | Mode_switch of string
  | Shed of Item.t list

let pp_rung ppf = function
  | Baseline -> Format.fprintf ppf "baseline"
  | Boost b -> Format.fprintf ppf "boost+%d" b
  | Mode_switch m -> Format.fprintf ppf "mode-switch:%s" m
  | Shed items ->
      Format.fprintf ppf "shed:%d item(s) [%s]" (List.length items)
        (String.concat "," (List.map (fun i -> i.Item.name) items))

type plan = {
  rung : rung;
  boost : int;
  mode : Mode.t;
  admitted : Item.t list;
  shed : Item.t list;
  specs : File_spec.t list;
  program : Program.t;
}

type t = {
  bandwidth : int;
  base : Mode.t;
  fallbacks : Mode.t list;
  items : Item.t list;
  max_boost : int;
  capacities : (int * int) list; (* item id -> fixed dispersal capacity *)
}

let bandwidth t = t.bandwidth
let items t = t.items

let capacity_for t (item : Item.t) = List.assoc item.Item.id t.capacities

(* The base mode with [b] extra blocks of tolerance on every item the mode
   already treats as real-time; non-real-time items keep their criticality
   (there is nothing to protect). *)
let boosted mode b items =
  if b = 0 then mode
  else
    Mode.make
      ~name:(Printf.sprintf "%s+%d" mode.Mode.name b)
      ~default:mode.Mode.default
      (List.map
         (fun (item : Item.t) ->
           let tol = Mode.tolerance mode item in
           let crit =
             if tol > 0 then Aida.Critical (tol + b)
             else Mode.criticality mode item
           in
           (item.Item.name, crit))
         items)

let create ?(fallbacks = []) ?(max_boost = 4) ~bandwidth ~base_mode items =
  if items = [] then invalid_arg "Ladder.create: no items";
  if bandwidth < 1 then invalid_arg "Ladder.create: bandwidth must be >= 1";
  if max_boost < 1 then invalid_arg "Ladder.create: max_boost must be >= 1";
  let capacities =
    List.map
      (fun (item : Item.t) ->
        let worst = Mode.max_tolerance (base_mode :: fallbacks) item in
        let cap = item.Item.blocks + worst + max_boost in
        if cap > 255 then
          invalid_arg
            (Printf.sprintf
               "Ladder.create: item %s needs capacity %d > 255 (IDA limit)"
               item.Item.name cap);
        (item.Item.id, cap))
      items
  in
  let t = { bandwidth; base = base_mode; fallbacks; items; max_boost; capacities } in
  let base_specs =
    Mode.file_specs ~capacity_for:(capacity_for t) base_mode items
  in
  (match Program.pinwheel ~bandwidth base_specs with
  | Some _ -> ()
  | None ->
      invalid_arg "Ladder.create: base mode not schedulable at this bandwidth");
  t

(* A mode is realized iff the pinwheel scheduler places its file specs at
   the ladder's bandwidth; capacities are the fixed dispersal levels, so
   every rung's program cycles blocks of the same dispersal. *)
let try_mode t mode =
  let specs = Mode.file_specs ~capacity_for:(capacity_for t) mode t.items in
  Program.pinwheel ~bandwidth:t.bandwidth specs
  |> Option.map (fun program -> (mode, specs, program))

let plan t ~boost =
  let b = max 0 (min boost t.max_boost) in
  let base_b = boosted t.base b t.items in
  match try_mode t base_b with
  | Some (mode, specs, program) ->
      {
        rung = (if b = 0 then Baseline else Boost b);
        boost = b;
        mode;
        admitted = t.items;
        shed = [];
        specs;
        program;
      }
  | None -> (
      let fallback =
        List.find_map
          (fun fb -> try_mode t (boosted fb b t.items)) t.fallbacks
      in
      match fallback with
      | Some (mode, specs, program) ->
          {
            rung = Mode_switch mode.Mode.name;
            boost = b;
            mode;
            admitted = t.items;
            shed = [];
            specs;
            program;
          }
      | None ->
          (* Last rung: keep the boost for whoever survives admission and
             shed the lowest value-density items. The most austere mode we
             have is the last fallback (or the base mode without one). *)
          let austere =
            match List.rev t.fallbacks with m :: _ -> m | [] -> t.base
          in
          let mode = boosted austere b t.items in
          let verdict = Admission.admit ~bandwidth:t.bandwidth ~mode t.items in
          let admitted = verdict.Admission.admitted in
          if admitted = [] then
            invalid_arg "Ladder.plan: no item admissible at this bandwidth";
          let specs =
            Mode.file_specs ~capacity_for:(capacity_for t) mode admitted
          in
          let program =
            match Program.pinwheel ~bandwidth:t.bandwidth specs with
            | Some p -> p
            | None -> (
                (* Admission certified schedulability with default
                   capacities; fall back to its program if the provisioned
                   capacities perturb the (deterministic) scheduler. *)
                match verdict.Admission.program with
                | Some p -> p
                | None -> assert false)
          in
          {
            rung = Shed verdict.Admission.rejected;
            boost = b;
            mode;
            admitted;
            shed = verdict.Admission.rejected;
            specs;
            program;
          })
