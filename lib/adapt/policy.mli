(** Threshold policy with hysteresis: loss estimate → channel level.

    A policy is an ordered ladder of channel levels, benign to severe.
    Each level above the baseline has an [enter] threshold (the estimate
    at which the level becomes warranted) and a lower [exit] threshold
    (the estimate below which the level is abandoned); the gap between
    them is the hysteresis band, so an estimate oscillating around a
    single threshold never commits a transition. On top of the band, a
    transition must be confirmed: the same candidate level must win
    [dwell] consecutive observations before it commits — a lone bad
    window (a burst the {!Estimator} partially absorbed) proposes a
    candidate once and is forgotten.

    Escalation jumps directly to the highest warranted level and
    de-escalation to the lowest sustainable one, so a single sustained
    channel-state change commits a single transition (one program swap),
    not a stairway of them. *)

type level = {
  name : string;
  enter : float;  (** estimate at/above which this level is warranted *)
  exit : float;  (** estimate below which this level is abandoned *)
  boost : int;  (** extra per-item redundancy requested at this level *)
}

val level : ?boost:int -> ?enter:float -> ?exit:float -> string -> level
(** Convenience constructor; [boost], [enter], [exit] default to 0. *)

type t

val create : ?dwell:int -> level list -> t
(** [create ~dwell levels]: [levels] ordered benign → severe; the head is
    the baseline (its thresholds are ignored). [dwell] (default 3) is the
    number of consecutive confirmations a transition needs, [>= 1].
    Raises [Invalid_argument] unless each non-baseline level has
    [0 <= exit < enter <= 1] and both thresholds strictly increase along
    the ladder. *)

val current : t -> int
(** Index of the current level (0 = baseline). *)

val current_level : t -> level

val levels : t -> level array

val observe : t -> float -> int option
(** Feed one loss-rate estimate (one decision epoch). [Some i] when a
    transition to level [i] commits this epoch; [None] otherwise. *)
