(** Atomic broadcast-program hot-swap at cycle boundaries.

    A broadcast server cannot change its program mid-cycle: a client that
    tuned in expecting the remaining occurrences of its file would be
    handed a torn schedule. This module holds the {e live} program plus at
    most one {e staged} replacement, and installs the replacement only
    when the live program completes a cycle, so clients observe a clean
    seam: a whole number of cycles of the old program followed by the new
    program starting its own cycle at phase 0.

    The boundary is the live program's {e broadcast period} by default.
    That is the atomic unit of the schedule layer — every file's
    occurrences for the period have been transmitted. Block-cycling
    alignment (the {e data cycle}, a possibly enormous multiple of the
    period) is deliberately not required: the adaptive machinery disperses
    every item once, to a fixed capacity, so any distinct block indices
    reconstruct regardless of which program aired them, and a retrieval
    straddling a seam keeps its collected blocks. Pass [`Data_cycle] to
    demand full content alignment anyway (e.g. for caches keyed on
    absolute slots).

    Every installed swap is appended to a log recording the slot, the
    phase within the old program's cycle (always 0 — the recorded proof of
    the invariant), a human-readable cause, and digests of both programs.
    Staging is idempotent: staging the live program clears any pending
    swap, and re-staging replaces the previous staging, so a controller
    that changes its mind before the boundary costs nothing. *)

type boundary = Period | Data_cycle

type entry = {
  slot : int;  (** the slot the swap took effect *)
  phase : int;  (** [(slot - old origin) mod old cycle]; 0 by invariant *)
  cause : string;
  old_digest : string;
  new_digest : string;
}

val pp_entry : Format.formatter -> entry -> unit

val digest : Pindisk.Program.t -> string
(** A short content digest of a program (layout + capacities), via its
    {!Pindisk.Codec} serialization. *)

type t

val create : ?boundary:boundary -> ?slot:int -> Pindisk.Program.t -> t
(** A holder serving [program] from slot [slot] (default 0) onward,
    swapping only at [boundary] (default [Period]) boundaries. *)

val program : t -> Pindisk.Program.t
(** The live program. *)

val origin : t -> int
(** The slot the live program took effect. *)

val block_at : t -> int -> (int * int) option
(** The block on air at an absolute slot [>= origin]: the live program
    phase-shifted to its installation slot. *)

val stage : ?slot:int -> t -> cause:string -> Pindisk.Program.t -> unit
(** Stage a replacement, overwriting any previous staging. Staging a
    program equal (by {!digest}) to the live one cancels the pending swap
    instead. [slot], when given, records the slot the decision was made;
    the observability layer reports the decision-to-installation wait as
    the [adapt.swap.wait] histogram (re-staging before the boundary keeps
    the original decision slot). *)

val pending : t -> bool

val tick : t -> int -> entry option
(** Call once at the start of every slot, in slot order. If a staged
    program exists and [slot] is a cycle boundary of the live program,
    the swap happens now — the returned entry describes it and [slot] is
    the first slot served by the new program. *)

val log : t -> entry list
(** All swaps, in chronological order. *)
