(** Online channel-loss estimation from per-slot reception reports.

    The server cannot see the channel directly; it sees a stream of
    reception reports (one per busy slot, from monitoring clients or the
    {!Pindisk_sim.Client} feedback hook) saying whether that slot's block
    arrived. The estimator turns that stream into a loss-rate estimate
    robust enough to drive redundancy re-allocation: reports are batched
    into fixed-size windows, and the per-window raw rates are smoothed
    with an EWMA. A short burst moves one window's raw rate but only a
    fraction [alpha] of the estimate; sustained degradation moves every
    subsequent window and the estimate converges to the new rate — the
    distinction the {!Policy} dwell requirement then exploits. *)

type t

val create : ?alpha:float -> ?window:int -> unit -> t
(** [alpha] (default 0.4) is the EWMA smoothing weight in (0, 1];
    [window] (default 32) is the number of reception reports per raw-rate
    sample, [>= 1]. Raises [Invalid_argument] otherwise. *)

val observe : t -> lost:bool -> unit
(** Feed one reception report. *)

val estimate : t -> float
(** The current smoothed loss-rate estimate in [0, 1]; [0.0] until the
    first window completes. *)

val last_window : t -> float
(** The most recent completed window's raw loss rate ([0.0] before the
    first completes) — useful for logging the burst/sustained gap. *)

val windows : t -> int
(** Completed windows so far. *)

val window : t -> int
(** The configured reports-per-window size. *)

val reports : t -> int
(** Total reception reports observed, including the current partial
    window. *)
