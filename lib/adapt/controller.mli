(** The closed loop: reception reports in, program swaps out.

    The controller owns an {!Estimator}, a {!Policy}, a {!Ladder} and a
    {!Swap} holder, and exposes the three per-slot operations a broadcast
    server needs, to be called in this order each slot:

    + {!tick} — install a staged program if the slot is a cycle boundary;
    + {!block_at} / {!report} — serve the slot from the live program and
      feed the reception outcome back to the estimator;
    + {!decide} — whenever the estimator has completed a fresh window,
      consult the policy with the new estimate; when it commits a level
      transition, re-run the ladder off-line (the whole candidate program
      is computed here, outside the broadcast path) and stage the result
      for the next cycle boundary.

    Decisions are paced by estimator windows, not by slots: one fresh
    estimate is one policy observation, so the policy's dwell counts
    independent evidence and cannot be rushed by a fast caller.
    Everything is deterministic: the same report stream yields the same
    estimates, transitions and swaps. *)

type t

val create :
  ?decision_windows:int -> estimator:Estimator.t -> policy:Policy.t ->
  Ladder.t -> t
(** The loop starts at the ladder's baseline plan, installed at slot 0.
    [decision_windows] (default 1) is the number of completed estimator
    windows between policy consultations, [>= 1]. *)

val tick : t -> int -> Swap.entry option
(** Start-of-slot: apply a pending swap at a cycle boundary. *)

val report : t -> lost:bool -> unit
(** One reception report for the current slot (busy slots only). *)

val decide : t -> slot:int -> unit
(** End-of-slot: if a fresh estimator window completed, run estimate →
    policy → ladder and stage any program change. *)

val notify_stall : t -> slot:int -> unit
(** A detected {e server-side} stall (faulted or dead-air slots — e.g. a
    stuck block-store reader, or a crash-restart outage): feeds the
    estimator one full window of loss reports (a stall is a total outage
    for the slots it covered) and runs a decision immediately, so
    sustained stalls climb the degradation ladder exactly like sustained
    channel loss — subject to the same policy dwell. Counted by the
    [adapt.stalls] metric. *)

val block_at : t -> int -> (int * int) option
(** The (file, block) on air at the slot, per the live program. *)

val plan : t -> Ladder.plan
(** The plan whose program is live or staged most recently. *)

val estimate : t -> float
val level : t -> Policy.level
val swap : t -> Swap.t
val swap_log : t -> Swap.entry list
