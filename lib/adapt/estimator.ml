type t = {
  alpha : float;
  window : int;
  mutable seen : int; (* reports in the current partial window *)
  mutable losses : int; (* losses in the current partial window *)
  mutable ewma : float;
  mutable last : float;
  mutable windows : int;
  mutable total : int;
}

let create ?(alpha = 0.4) ?(window = 32) () =
  if alpha <= 0.0 || alpha > 1.0 then
    invalid_arg "Estimator.create: alpha must be in (0, 1]";
  if window < 1 then invalid_arg "Estimator.create: window must be >= 1";
  { alpha; window; seen = 0; losses = 0; ewma = 0.0; last = 0.0; windows = 0;
    total = 0 }

let observe t ~lost =
  t.seen <- t.seen + 1;
  t.total <- t.total + 1;
  if lost then t.losses <- t.losses + 1;
  if t.seen >= t.window then begin
    let rate = float_of_int t.losses /. float_of_int t.seen in
    t.ewma <-
      (if t.windows = 0 then rate
       else (t.alpha *. rate) +. ((1.0 -. t.alpha) *. t.ewma));
    t.last <- rate;
    t.windows <- t.windows + 1;
    t.seen <- 0;
    t.losses <- 0
  end

let estimate t = if t.windows = 0 then 0.0 else t.ewma
let window t = t.window
let last_window t = t.last
let windows t = t.windows
let reports t = t.total
