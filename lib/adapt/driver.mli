(** Slot-stepped closed-loop simulation: a time-varying channel against a
    static or an adaptive broadcast server.

    {!Pindisk_sim.Engine} measures one fixed program with a fresh fault
    process per request; that cannot exercise a server that {e reacts},
    because reaction needs a single shared channel all clients (and the
    server's estimator) observe. This driver steps the world one slot at
    a time: the scripted channel produces one loss verdict per slot, every
    in-flight retrieval sees the block (or loses it) together, and — when
    a {!Controller} is plugged in — the same reception outcome is the
    feedback the estimator consumes. Running the same precomputed loss
    sequence and the same request trace with and without a controller is
    therefore an apples-to-apples measurement of adaptation.

    Because every ladder rung disperses items to the same fixed capacity,
    a retrieval that straddles a program swap keeps its collected block
    indices: any [needed] distinct indices reconstruct, whichever programs
    broadcast them. *)

type phase = { length : int; fault : Pindisk_sim.Fault.t }
(** One segment of the channel script. *)

val losses : phase list -> bool array
(** The per-slot loss verdicts of a channel script: each phase's fault
    process is {!Pindisk_sim.Fault.reset_to} the phase's absolute start
    slot and advanced through the phase, so the sequence is deterministic
    and independent of who consumes it. *)

type bucket = {
  t0 : int;  (** bucket start slot, inclusive *)
  t1 : int;  (** bucket end slot, exclusive *)
  issued : int;  (** requests issued in the bucket *)
  missed : int;  (** of those, missed (late, starved or unfinished) *)
}

type report = {
  requests : int;
  completed : int;  (** retrievals completed within their deadline *)
  missed : int;
  timeline : bucket list;  (** outcomes grouped by issue slot *)
  swaps : Swap.entry list;  (** empty for a static run *)
}

val miss_ratio : report -> float

val window_miss_ratio : report -> t0:int -> t1:int -> float
(** Miss ratio over requests issued in [\[t0, t1)], from the timeline
    buckets that lie inside the window. *)

val run :
  ?bucket:int -> ?controller:Controller.t -> program:Pindisk.Program.t ->
  losses:bool array -> Pindisk_sim.Workload.request list -> report
(** [run ~program ~losses trace] replays the trace slot by slot against
    the per-slot loss verdicts. Without a controller, [program] serves
    every slot (the static server); with one, the controller's live
    program serves each slot and receives the per-slot feedback
    ([program] is then ignored — the controller starts at its baseline).
    A request misses when its deadline passes before [needed] distinct
    blocks arrived (including requests for items a degraded program shed).
    [bucket] (default 500 slots) sets the timeline granularity. *)

val pp_report : Format.formatter -> report -> unit
