module Obs = Pindisk_obs

let obs_decisions = Obs.Registry.counter "adapt.decisions"
let obs_transitions = Obs.Registry.counter "adapt.transitions"
let obs_stalls = Obs.Registry.counter "adapt.stalls"
let obs_boost = Obs.Registry.gauge "adapt.boost"

type t = {
  estimator : Estimator.t;
  policy : Policy.t;
  ladder : Ladder.t;
  swap : Swap.t;
  decision_windows : int;
  mutable plan : Ladder.plan;
  mutable last_window : int;
}

let create ?(decision_windows = 1) ~estimator ~policy ladder =
  if decision_windows < 1 then
    invalid_arg "Controller.create: decision_windows must be >= 1";
  let plan = Ladder.plan ladder ~boost:0 in
  {
    estimator;
    policy;
    ladder;
    swap = Swap.create plan.Ladder.program;
    decision_windows;
    plan;
    last_window = 0;
  }

let tick t slot = Swap.tick t.swap slot
let report t ~lost = Estimator.observe t.estimator ~lost

let decide t ~slot =
  let w = Estimator.windows t.estimator in
  if w - t.last_window >= t.decision_windows then begin
    t.last_window <- w;
    let obs = Obs.Control.enabled () in
    if obs then Obs.Registry.incr obs_decisions;
    let e = Estimator.estimate t.estimator in
    match Policy.observe t.policy e with
    | None -> ()
    | Some idx ->
        let level = (Policy.levels t.policy).(idx) in
        let plan = Ladder.plan t.ladder ~boost:level.Policy.boost in
        t.plan <- plan;
        if obs then begin
          Obs.Registry.incr obs_transitions;
          Obs.Registry.set obs_boost level.Policy.boost
        end;
        let cause =
          Format.asprintf "loss estimate %.3f -> level %s (boost %d, %a)" e
            level.Policy.name level.Policy.boost Ladder.pp_rung
            plan.Ladder.rung
        in
        Swap.stage ~slot t.swap ~cause plan.Ladder.program
  end

(* A server-side stall is evidence of total outage for the slots it
   covered: no client received anything. Feed the estimator one full
   window of losses — the strongest single observation it accepts — and
   run a decision immediately, so repeated stalls climb the ladder at
   the policy's dwell pace exactly like sustained channel loss. *)
let notify_stall t ~slot =
  if Obs.Control.enabled () then Obs.Registry.incr obs_stalls;
  for _ = 1 to Estimator.window t.estimator do
    Estimator.observe t.estimator ~lost:true
  done;
  decide t ~slot

let block_at t slot = Swap.block_at t.swap slot
let plan t = t.plan
let estimate t = Estimator.estimate t.estimator
let level t = Policy.current_level t.policy
let swap t = t.swap
let swap_log t = Swap.log t.swap
