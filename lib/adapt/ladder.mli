(** The degradation ladder: turn a redundancy demand into a broadcast
    program that fits the channel, degrading gracefully when it cannot.

    When the {!Policy} asks for [boost] extra blocks of redundancy per
    real-time item, the bandwidth-allocation step of AIDA is re-run and
    the raised redundancies may no longer be schedulable at the fixed
    channel bandwidth. The ladder then walks down, in the order the paper's
    machinery suggests:

    + {b Boost}: raise [r_i] for every real-time item of the base mode;
    + {b Mode switch}: fall back to a more austere {!Pindisk_rtdb.Mode}
      (still boosted), dialling down items that are not critical now;
    + {b Shed}: value-cognizant admission control
      ({!Pindisk_rtdb.Admission.admit}) drops the lowest value-density
      items until the remainder is schedulable.

    Recovery is the same computation at a lower boost: because planning is
    deterministic and every plan disperses items to the same fixed
    capacity (provisioned for the worst rung up front, so no re-dispersal
    is ever needed and block indices stay valid across program swaps),
    re-planning at boost 0 reproduces the original program bit-for-bit. *)

module Item = Pindisk_rtdb.Item
module Mode = Pindisk_rtdb.Mode

type rung =
  | Baseline  (** base mode, no boost *)
  | Boost of int  (** base mode with raised redundancy *)
  | Mode_switch of string  (** named fallback mode (boosted) *)
  | Shed of Item.t list  (** items dropped by admission control *)
  | Migrate of { file : int; from_channel : int; to_channel : int }
      (** multi-channel deployments only: move one file's share off a
          failing channel (see {!evacuate}) *)

val pp_rung : Format.formatter -> rung -> unit

val evacuate : Pindisk.Shard.t -> channel:int -> rung list * int list
(** The channel-migration rung for a sharded deployment: when a channel
    fails (or is about to be drained), propose one {!Migrate} per share
    it carries, each targeting the currently least-loaded {e other}
    channel that (a) does not already carry a share of the same file and
    (b) stays plausibly feasible after absorbing the share's density
    ({!Pindisk_pinwheel.Density.classify} not [Infeasible]). Targets are
    chosen share-by-share in decreasing share density, each commitment
    updating the load picture — so a burst of migrations is
    self-consistent. The second component lists stranded files: shares no
    surviving channel can absorb, which the caller sheds (the next rung
    down, exactly as in the single-channel ladder). Raises
    [Invalid_argument] on an unknown channel. *)

type plan = {
  rung : rung;
  boost : int;  (** the boost actually applied (clamped to [max_boost]) *)
  mode : Mode.t;  (** the effective (boosted) mode *)
  admitted : Item.t list;
  shed : Item.t list;
  specs : Pindisk.File_spec.t list;  (** for the admitted items *)
  program : Pindisk.Program.t;
}

type t

val create :
  ?fallbacks:Mode.t list -> ?max_boost:int -> bandwidth:int ->
  base_mode:Mode.t -> Item.t list -> t
(** [create ~bandwidth ~base_mode items]: fix the channel bandwidth, the
    base mode, optional fallback modes (tried in order on the mode-switch
    rung) and the item population. Every item's dispersal capacity is
    provisioned once, for the largest tolerance any mode plus [max_boost]
    (default 4) can ask. Raises [Invalid_argument] when the baseline
    itself is not schedulable at [bandwidth], when [items] is empty, or
    when a provisioned capacity would exceed the IDA limit of 255. *)

val bandwidth : t -> int
val items : t -> Item.t list

val capacity_for : t -> Item.t -> int
(** The fixed dispersal capacity provisioned for the item. *)

val plan : t -> boost:int -> plan
(** The first rung of the ladder that is schedulable at the fixed
    bandwidth with [boost] (clamped to [max_boost]) extra redundancy.
    [boost = 0] always returns the {!Baseline} plan. *)
