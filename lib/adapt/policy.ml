type level = { name : string; enter : float; exit : float; boost : int }

let level ?(boost = 0) ?(enter = 0.0) ?(exit = 0.0) name =
  { name; enter; exit; boost }

type t = {
  levels : level array;
  dwell : int;
  mutable current : int;
  mutable candidate : int;
  mutable streak : int;
}

let create ?(dwell = 3) levels =
  if dwell < 1 then invalid_arg "Policy.create: dwell must be >= 1";
  let levels = Array.of_list levels in
  if Array.length levels = 0 then invalid_arg "Policy.create: no levels";
  for i = 1 to Array.length levels - 1 do
    let l = levels.(i) in
    if not (0.0 <= l.exit && l.exit < l.enter && l.enter <= 1.0) then
      invalid_arg
        (Printf.sprintf "Policy.create: level %s needs 0 <= exit < enter <= 1"
           l.name);
    if i > 1 then begin
      let prev = levels.(i - 1) in
      if l.enter <= prev.enter || l.exit <= prev.exit then
        invalid_arg "Policy.create: thresholds must increase along the ladder"
    end
  done;
  { levels; dwell; current = 0; candidate = 0; streak = 0 }

let current t = t.current
let current_level t = t.levels.(t.current)
let levels t = Array.copy t.levels

(* The level the estimate warrants, relative to the current one: the
   highest level whose [enter] the estimate reaches, else the lowest level
   the estimate cannot [exit] from. Thresholds are monotone, so "highest
   entered" is well defined and the downward walk stops at the first
   sustainable level. *)
let target t e =
  let n = Array.length t.levels in
  let up = ref t.current in
  for j = t.current + 1 to n - 1 do
    if e >= t.levels.(j).enter then up := j
  done;
  if !up > t.current then !up
  else begin
    let down = ref t.current in
    while !down > 0 && e < t.levels.(!down).exit do
      decr down
    done;
    !down
  end

let observe t e =
  let cand = target t e in
  if cand = t.current then begin
    t.candidate <- t.current;
    t.streak <- 0;
    None
  end
  else begin
    if cand = t.candidate then t.streak <- t.streak + 1
    else begin
      t.candidate <- cand;
      t.streak <- 1
    end;
    if t.streak >= t.dwell then begin
      t.current <- cand;
      t.streak <- 0;
      Some cand
    end
    else None
  end
