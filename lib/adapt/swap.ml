module Program = Pindisk.Program
module Codec = Pindisk.Codec
module Obs = Pindisk_obs

let obs_swaps = Obs.Registry.counter "adapt.swaps"
let obs_swap_wait = Obs.Registry.histogram "adapt.swap.wait"

type boundary = Period | Data_cycle

type entry = {
  slot : int;
  phase : int;
  cause : string;
  old_digest : string;
  new_digest : string;
}

let pp_entry ppf e =
  Format.fprintf ppf "slot %d (phase %d): %s -> %s: %s" e.slot e.phase
    (String.sub e.old_digest 0 8)
    (String.sub e.new_digest 0 8)
    e.cause

let digest p = Digest.to_hex (Digest.string (Codec.to_string p))

type t = {
  boundary : boundary;
  mutable program : Program.t;
  mutable origin : int;
  mutable live_digest : string;
  mutable staged : (Program.t * string * string) option;
      (* program, digest, cause *)
  mutable staged_at : int option; (* slot the staging was decided, if told *)
  mutable log : entry list; (* newest first *)
}

let create ?(boundary = Period) ?(slot = 0) program =
  { boundary; program; origin = slot; live_digest = digest program;
    staged = None; staged_at = None; log = [] }

let cycle t =
  match t.boundary with
  | Period -> Program.period t.program
  | Data_cycle -> Program.data_cycle t.program

let program t = t.program
let origin t = t.origin

let block_at t slot =
  if slot < t.origin then invalid_arg "Swap.block_at: slot before origin";
  Program.block_at t.program (slot - t.origin)

let stage ?slot t ~cause p =
  let d = digest p in
  if d = t.live_digest then begin
    t.staged <- None;
    t.staged_at <- None
  end
  else begin
    (* Re-staging keeps the original decision slot: the wait metric below
       measures decision-to-installation latency, and a controller revising
       its plan mid-wait is still the same pending decision. *)
    t.staged <- Some (p, d, cause);
    if t.staged_at = None then t.staged_at <- slot
  end

let pending t = t.staged <> None

let tick t slot =
  match t.staged with
  | None -> None
  | Some (p, d, cause) ->
      let phase = (slot - t.origin) mod cycle t in
      if phase <> 0 then None
      else begin
        let entry =
          { slot; phase; cause; old_digest = t.live_digest; new_digest = d }
        in
        t.program <- p;
        t.origin <- slot;
        t.live_digest <- d;
        t.staged <- None;
        if Obs.Control.enabled () then begin
          Obs.Registry.incr obs_swaps;
          (match t.staged_at with
          | Some s when s <= slot -> Obs.Histogram.observe obs_swap_wait (slot - s)
          | _ -> ());
          Obs.Trace.record (Obs.Trace.Hot_swap { slot; cause })
        end;
        t.staged_at <- None;
        t.log <- entry :: t.log;
        Some entry
      end

let log t = List.rev t.log
