module Fault = Pindisk_sim.Fault
module Workload = Pindisk_sim.Workload
module Program = Pindisk.Program

type phase = { length : int; fault : Fault.t }

let losses phases =
  let total = List.fold_left (fun acc p -> acc + p.length) 0 phases in
  let verdicts = Array.make total false in
  let start = ref 0 in
  List.iter
    (fun p ->
      if p.length < 0 then invalid_arg "Driver.losses: negative phase length";
      Fault.reset_to p.fault !start;
      for s = !start to !start + p.length - 1 do
        verdicts.(s) <- Fault.advance p.fault
      done;
      start := !start + p.length)
    phases;
  verdicts

type bucket = { t0 : int; t1 : int; issued : int; missed : int }

type report = {
  requests : int;
  completed : int;
  missed : int;
  timeline : bucket list;
  swaps : Swap.entry list;
}

let miss_ratio r =
  if r.requests = 0 then 0.0
  else float_of_int r.missed /. float_of_int r.requests

let window_miss_ratio r ~t0 ~t1 =
  let issued, missed =
    List.fold_left
      (fun (i, m) b ->
        if b.t0 >= t0 && b.t1 <= t1 then (i + b.issued, m + b.missed)
        else (i, m))
      (0, 0) r.timeline
  in
  if issued = 0 then 0.0 else float_of_int missed /. float_of_int issued

(* One in-flight retrieval: distinct block indices collected so far. *)
type flight = {
  req : Workload.request;
  blocks : (int, unit) Hashtbl.t;
}

let run ?(bucket = 500) ?controller ~program ~losses trace =
  if bucket < 1 then invalid_arg "Driver.run: bucket must be >= 1";
  let horizon = Array.length losses in
  let n_buckets = ((horizon + bucket - 1) / bucket) + 1 in
  let b_issued = Array.make n_buckets 0 in
  let b_missed = Array.make n_buckets 0 in
  let completed = ref 0 and missed = ref 0 in
  let finish (fl : flight) ~ok =
    let b = min (n_buckets - 1) (fl.req.Workload.issued / bucket) in
    if ok then incr completed
    else begin
      incr missed;
      b_missed.(b) <- b_missed.(b) + 1
    end
  in
  let inflight = ref [] in
  let pending = ref trace in
  for t = 0 to horizon - 1 do
    (match controller with
    | Some c -> ignore (Controller.tick c t)
    | None -> ());
    (* Requests tuning in this slot. *)
    let rec admit () =
      match !pending with
      | r :: rest when r.Workload.issued <= t ->
          pending := rest;
          let b = min (n_buckets - 1) (r.Workload.issued / bucket) in
          b_issued.(b) <- b_issued.(b) + 1;
          inflight := { req = r; blocks = Hashtbl.create 8 } :: !inflight;
          admit ()
      | _ -> ()
    in
    admit ();
    (* Expire retrievals whose deadline has passed: a block in this slot
       would arrive at elapsed [t - issued + 1] > deadline. *)
    inflight :=
      List.filter
        (fun fl ->
          if t - fl.req.Workload.issued >= fl.req.Workload.deadline then begin
            finish fl ~ok:false;
            false
          end
          else true)
        !inflight;
    let block =
      match controller with
      | Some c -> Controller.block_at c t
      | None -> Program.block_at program t
    in
    let lost = losses.(t) in
    (match block with
    | None -> ()
    | Some (file, idx) ->
        (* The reception outcome is the server's feedback. *)
        (match controller with
        | Some c -> Controller.report c ~lost
        | None -> ());
        if not lost then
          inflight :=
            List.filter
              (fun fl ->
                if fl.req.Workload.file <> file then true
                else begin
                  if not (Hashtbl.mem fl.blocks idx) then
                    Hashtbl.replace fl.blocks idx ();
                  if Hashtbl.length fl.blocks >= fl.req.Workload.needed then begin
                    finish fl ~ok:true;
                    false
                  end
                  else true
                end)
              !inflight);
    match controller with
    | Some c -> Controller.decide c ~slot:t
    | None -> ()
  done;
  (* Whatever is still in flight at the horizon never completed. *)
  List.iter (fun fl -> finish fl ~ok:false) !inflight;
  List.iter
    (fun (r : Workload.request) ->
      let b = min (n_buckets - 1) (r.Workload.issued / bucket) in
      b_issued.(b) <- b_issued.(b) + 1;
      b_missed.(b) <- b_missed.(b) + 1;
      incr missed)
    !pending;
  let timeline =
    List.init n_buckets (fun i ->
        { t0 = i * bucket; t1 = (i + 1) * bucket; issued = b_issued.(i);
          missed = b_missed.(i) })
    |> List.filter (fun b -> b.issued > 0)
  in
  {
    requests = List.length trace;
    completed = !completed;
    missed = !missed;
    timeline;
    swaps = (match controller with Some c -> Controller.swap_log c | None -> []);
  }

let pp_report ppf r =
  Format.fprintf ppf "%d requests, %d completed, %d missed (%.1f%%), %d swap(s)"
    r.requests r.completed r.missed
    (100.0 *. miss_ratio r)
    (List.length r.swaps)
