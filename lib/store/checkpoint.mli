(** Crash-restart checkpoints for the broadcast {!Server}.

    A checkpoint captures the server's complete volatile state:

    - the {b slot cursor} — the next slot the server will air, plus the
      period stamp (which broadcast cycle that slot falls in) for
      human-readable drift diagnostics;
    - the {b per-file occurrence counters} the prefetch cursor has
      assigned — these drive block cycling, so losing them would re-air
      the wrong piece indices;
    - the {b read-id counter} and the {b outstanding-request queue} of
      the {!Block_store} — in-flight reads at the instant of the
      checkpoint, so a restart re-observes the very same service
      verdicts;
    - the {b program digest} — restore refuses a checkpoint taken
      against a different program (restoring across a hot-swap seam
      would silently air stale content).

    Everything else the server needs (the plan, the stored bytes, the
    latency process) is durable configuration, reconstructed from the
    same inputs at restart. Serialized as [pindisk-checkpoint v1] JSON
    over {!Pindisk_check.Json}; print → parse → print is byte-stable,
    and {!of_string} rejects unknown schemas and malformed queues. *)

type t = {
  slot : int;  (** the next slot the server will air *)
  period : int;  (** broadcast period of the checkpointed program *)
  period_stamp : int;  (** [slot / period] — the cycle the slot is in *)
  program_digest : string;  (** {!Pindisk_adapt.Swap.digest} of the program *)
  next_read : int;
  counts : (int * int) list;  (** per-file prefetch occurrence counters *)
  queue : Block_store.request list;
}

val to_json : t -> Pindisk_check.Json.t
val of_json : Pindisk_check.Json.t -> (t, string) result
val to_string : t -> string
val of_string : string -> (t, string) result

val save : t -> string -> unit
(** Write to a file (the whole JSON artifact, atomically via rename). *)

val load : string -> (t, string) result
