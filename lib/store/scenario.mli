(** Scripted chaos scenarios: crash the server on purpose and prove the
    recovery machinery keeps its promises.

    A scenario runs one broadcast server over a fixed program on a
    {b wall clock} of [horizon] slots. The server itself advances a
    {b logical} slot clock: while it is up, each wall slot airs one
    logical slot; while it is down after a {!Crash}, wall slots pass
    with dead air, and on restart the server resumes from its last
    checkpoint — re-airing the logical slots since then. Event
    coordinates follow the side they act on: crashes and loss bursts
    are wall-clock (they happen to the broadcast), stuck-reader windows
    are logical-clock (they are a property of the storage latency
    process, and must replay identically after a restart).

    Every run is checked against four invariants:

    - {b I1 bytes-identity} — every scripted retrieval reconstructs
      content byte-identical to the stored ground truth;
    - {b I2 replay determinism} — every airing of logical slot [s],
      including post-recovery re-airs, equals what an uninterrupted
      server airs at [s];
    - {b I3 bounded recovery gaps} — for each file, the wall-clock gap
      between consecutive slots serving it is at most
      [delta + downtime-in-gap + checkpoint_every + lookahead] (the
      last two terms bound the post-recovery rewind);
    - {b I4 liveness} — every scripted retrieval completes within the
      horizon.

    Runs emit [Crash]/[Recover] trace spans, a [store.recovery]
    histogram (wall slots from crash until the server is caught up),
    and — in stuck-reader scenarios — drive an {!Pindisk_adapt.Controller}
    through {!Pindisk_adapt.Controller.notify_stall} so a server stall
    climbs the degradation ladder like channel loss does. *)

type event =
  | Crash of { at : int; restart_after : int }
      (** die at wall slot [at]; dead air for [restart_after] wall
          slots; then restore from the latest checkpoint *)
  | Stuck_reader of { at : int; length : int }
      (** reads issued in logical slots [at, at+length) complete only
          after the window ends *)
  | Loss_burst of { at : int; length : int }
      (** the channel loses wall slots [at, at+length) outright *)

type retrieval = { file : int; tune_in : int  (** wall slot *) }

type spec = {
  name : string;
  seed : int;
  horizon : int;  (** wall slots simulated *)
  checkpoint_every : int;  (** logical slots between checkpoints *)
  lookahead : int;  (** server prefetch lead, in slots *)
  depth : int;  (** block-store queue depth *)
  fail_p : float;  (** per-read media-failure probability *)
  slow_p : float;  (** per-read slow-path probability *)
  loss_p : float;  (** per-wall-slot channel loss probability *)
  events : event list;
  retrievals : retrieval list;
  expect_escalation : bool;
      (** require the adapt controller to leave its baseline rung *)
}

type report = {
  spec : spec;
  aired : int;  (** wall slots that aired a logical slot *)
  down : int;  (** wall slots of dead air *)
  faulted : int;  (** busy slots lost to the block store *)
  replayed : int;  (** wall slots re-airing already-aired logical slots *)
  crashes : int;
  recovery_slots : int list;
      (** per crash: wall slots from death until caught up *)
  retrieved : (retrieval * (int, string) result) list;
      (** per retrieval: completion wall slot, or why it failed *)
  escalated : bool;  (** the controller left its baseline rung *)
  violations : string list;  (** empty iff every invariant held *)
}

val ok : report -> bool
val pp_report : Format.formatter -> report -> unit

val run : spec -> report
(** Execute the scenario (deterministic: same spec, same report). *)

val suite : unit -> spec list
(** The fixed-seed scenario suite the [chaos] CI job runs: calm
    baseline, single crashes early and late, a double crash, a stuck
    reader (with escalation), overflow pressure, and a burst-plus-crash
    compound. *)

val run_all : unit -> report list
