module Intmath = Pindisk_util.Intmath

type verdict = Ready_in of int | Failed

type t =
  | Immediate
  | Fixed of int
  | Stochastic of { fail_p : float; slow_p : float; slow_slots : int; seed : int }
  | Scripted of (read_id:int -> slot:int -> verdict)
  | Stuck of { from_ : int; until_ : int; base : t }

let immediate = Immediate

let fixed d =
  if d < 0 then invalid_arg "Latency.fixed: negative service time";
  Fixed d

let stochastic ?(fail_p = 0.0) ?(slow_p = 0.0) ?(slow_slots = 4) ~seed () =
  let check name v =
    if v < 0.0 || v > 1.0 then
      invalid_arg (Printf.sprintf "Latency.stochastic: %s must be in [0, 1]" name)
  in
  check "fail_p" fail_p;
  check "slow_p" slow_p;
  if slow_slots < 0 then invalid_arg "Latency.stochastic: negative slow_slots";
  Stochastic { fail_p; slow_p; slow_slots; seed }

let scripted f = Scripted f

let stuck ~from_ ~until_ base =
  if from_ < 0 || until_ < from_ then
    invalid_arg "Latency.stuck: need 0 <= from_ <= until_";
  Stuck { from_; until_; base }

(* A unit-interval draw that is a pure function of its coordinates:
   splitmix64's finalizer over (seed, read_id, salt), mapped to [0, 1)
   with 48 bits of mantissa. *)
let uniform ~seed ~read_id ~salt =
  let h = Intmath.mix64 (Intmath.mix64 ((read_id * 0x9e3779b1) lxor salt) lxor seed) in
  float_of_int (h land 0xFFFF_FFFF_FFFF) /. 281_474_976_710_656.0

let rec draw t ~read_id ~slot =
  match t with
  | Immediate -> Ready_in 0
  | Fixed d -> Ready_in d
  | Stochastic { fail_p; slow_p; slow_slots; seed } ->
      if uniform ~seed ~read_id ~salt:0x5fa17 < fail_p then Failed
      else if uniform ~seed ~read_id ~salt:0x51077 < slow_p then
        Ready_in slow_slots
      else Ready_in 0
  | Scripted f -> f ~read_id ~slot
  | Stuck { from_; until_; base } ->
      let v = draw base ~read_id ~slot in
      if slot >= from_ && slot < until_ then
        match v with
        | Failed -> Failed
        | Ready_in d -> Ready_in (until_ - slot + d)
      else v
