(** The block backend: dispersed pieces served through an
    outstanding-request queue with injectable read faults.

    The simulator's {!Pindisk_sim.Transport} hands every piece over
    instantaneously; a real broadcast server reads blocks from storage,
    and storage is slow, finite and fallible (cf. betrfs's
    [AsyncSectorDiskModel]: a disk is a queue of outstanding async I/Os).
    This module is that queue. The server {!submit}s a read ahead of the
    slot that will air it; the read's service time comes from a
    {!Latency} process; at air time {!take} reports whether the piece
    made it. Three physically-grounded server-side faults emerge:

    - {b late read}: service time exceeded the prefetch lead — the slot
      airs nothing (the read still occupies the queue until it
      completes, wasted);
    - {b failed read}: the media error verdict — the slot airs nothing;
    - {b queue overflow}: more than [depth] reads in flight when the
      read was submitted — the read is shed at submit time.

    All faults surface as idle air to clients, unifying server faults
    with the channel fault model of {!Pindisk_sim.Fault}: a client
    cannot tell a lost block from one that was never aired, and the IDA
    redundancy absorbs both.

    The queue (plus the monotone read-id counter) is exactly the
    volatile state a crash destroys; {!queue}/{!restore} expose it for
    {!Checkpoint}. *)

module Ida = Pindisk_ida.Ida

type status =
  | Pending of int  (** completes at the carried slot *)
  | Shed_overflow  (** rejected at submit: queue full *)
  | Shed_failed  (** the latency process returned [Failed] *)

type request = {
  id : int;  (** monotone read id (the latency-process coordinate) *)
  file : int;
  occurrence : int;  (** which transmission of the file this read feeds *)
  issued : int;  (** the slot the read was submitted *)
  air : int;  (** the slot the piece is due on the air *)
  status : status;
}

type t

val create :
  ?depth:int -> latency:Latency.t -> program:Pindisk.Program.t ->
  (int * int * bytes) list -> t
(** [create ~latency ~program files] stores [(file_id, m, content)]
    triples dispersed to the program's capacities, exactly as
    {!Pindisk_sim.Transport.create} (same validation). [depth] (default
    8, [>= 1]) bounds the outstanding-request queue. *)

val program : t -> Pindisk.Program.t
val depth : t -> int
val source_blocks : t -> int -> int option
(** The [m] of a stored file, or [None]. *)

val length : t -> int -> int option
(** Stored content length in bytes, or [None]. *)

val content : t -> int -> bytes option
(** A copy of the stored content (ground truth for the invariant
    checks). *)

val piece : t -> file:int -> occurrence:int -> Ida.piece
(** The piece the [occurrence]-th transmission of the file carries
    ([occurrence mod capacity] — the program's block-cycling discipline).
    Raises [Invalid_argument] for unknown files. *)

val outstanding : t -> slot:int -> int
(** Reads in flight at the slot: submitted, not failed or shed, and not
    yet completed. *)

val submit : t -> slot:int -> air:int -> file:int -> occurrence:int -> unit
(** Issue the read feeding [air] ([>= slot]). Draws the latency verdict,
    or sheds the read if [outstanding >= depth]. Raises
    [Invalid_argument] for unknown files. *)

val take : t -> slot:int -> [ `Ready of Ida.piece | `Late of int | `Failed | `Overflow | `Missing ]
(** Resolve the read due on the air at [slot] and remove it from the
    queue bookkeeping (a late read keeps occupying the queue until its
    completion slot passes). [`Late ready_at] names the slot the read
    will finally complete; [`Missing] means no read was ever submitted
    for the slot (a server bug — the server always prefetches busy
    slots). *)

val queue : t -> request list
(** The outstanding-request queue, oldest first (checkpoint state). *)

val next_read : t -> int
(** The id the next submitted read will get (checkpoint state). *)

val restore : t -> next_read:int -> request list -> unit
(** Overwrite the volatile queue state from a checkpoint. *)
