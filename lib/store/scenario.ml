module Program = Pindisk.Program
module Schedule = Pindisk_pinwheel.Schedule
module Plan = Pindisk_pinwheel.Plan
module Ida = Pindisk_ida.Ida
module Aida = Pindisk_ida.Aida
module Fault = Pindisk_sim.Fault
module Item = Pindisk_rtdb.Item
module Mode = Pindisk_rtdb.Mode
module Estimator = Pindisk_adapt.Estimator
module Policy = Pindisk_adapt.Policy
module Ladder = Pindisk_adapt.Ladder
module Controller = Pindisk_adapt.Controller
module Obs = Pindisk_obs

let obs_recovery = Obs.Registry.histogram "store.recovery"

type event =
  | Crash of { at : int; restart_after : int }
  | Stuck_reader of { at : int; length : int }
  | Loss_burst of { at : int; length : int }

type retrieval = { file : int; tune_in : int }

type spec = {
  name : string;
  seed : int;
  horizon : int;
  checkpoint_every : int;
  lookahead : int;
  depth : int;
  fail_p : float;
  slow_p : float;
  loss_p : float;
  events : event list;
  retrievals : retrieval list;
  expect_escalation : bool;
}

type report = {
  spec : spec;
  aired : int;
  down : int;
  faulted : int;
  replayed : int;
  crashes : int;
  recovery_slots : int list;
  retrieved : (retrieval * (int, string) result) list;
  escalated : bool;
  violations : string list;
}

let ok r = r.violations = []

(* ------------------------------------------------------------------ *)
(* The fixed scenario program: two IDA files on an 8-slot program.     *)
(* ------------------------------------------------------------------ *)

let layout =
  [ (0, 0); (1, 0); (0, 1); (0, 2); (1, 1); (0, 3); (1, 2); (0, 4) ]

let capacities = [ (0, 10); (1, 6) ]
let program () = Program.of_layout layout ~capacities

(* (file, m, content length) — m < occurrences per period, so every
   file survives a couple of lost pieces per data cycle. *)
let file_specs = [ (0, 3, 40); (1, 2, 23) ]

let content ~seed ~file ~len =
  Bytes.init len (fun i ->
      Char.chr ((i * 31 + seed * 7 + file * 131 + 5) land 0xff))

let files_of spec =
  List.map
    (fun (file, m, len) -> (file, m, content ~seed:spec.seed ~file ~len))
    file_specs

let latency_of spec =
  let base =
    Latency.stochastic ~fail_p:spec.fail_p ~slow_p:spec.slow_p
      ~slow_slots:(spec.lookahead + 2) ~seed:spec.seed ()
  in
  List.fold_left
    (fun lat -> function
      | Stuck_reader { at; length } ->
          Latency.stuck ~from_:at ~until_:(at + length) lat
      | Crash _ | Loss_burst _ -> lat)
    base spec.events

let make_store spec =
  Block_store.create ~depth:spec.depth ~latency:(latency_of spec)
    ~program:(program ()) (files_of spec)

(* The escalation loop for stall scenarios: a small two-level ladder
   (any population works — the controller observes loss, not files). *)
let make_controller () =
  let items =
    [
      Item.make ~id:0 ~name:"a" ~blocks:2 ~avi:4 ~value:100 ();
      Item.make ~id:1 ~name:"b" ~blocks:4 ~avi:16 ~value:10 ();
    ]
  in
  let base_mode =
    Mode.make ~name:"base" ~default:Aida.Non_real_time
      [ ("a", Aida.Critical 2); ("b", Aida.Standard) ]
  in
  let ladder = Ladder.create ~max_boost:4 ~bandwidth:2 ~base_mode items in
  let estimator = Estimator.create ~alpha:0.6 ~window:8 () in
  let policy =
    Policy.create ~dwell:1
      [
        Policy.level "clear";
        Policy.level ~enter:0.25 ~exit:0.05 ~boost:4 "crisis";
      ]
  in
  Controller.create ~estimator ~policy ladder

(* ------------------------------------------------------------------ *)
(* The runner                                                          *)
(* ------------------------------------------------------------------ *)

let stall_threshold = 4

let run spec =
  let prog = program () in
  let sched = Program.schedule prog in
  let plan = Plan.explicit sched in
  (* The uninterrupted reference: what each logical slot airs when
     nothing ever crashes. Latency verdicts are pure functions of
     (read id, issue slot), so the chaos run must reproduce exactly
     this sequence — including its re-airs after recovery (I2). *)
  let ref_out =
    Obs.Control.with_enabled false (fun () ->
        let server =
          Server.create ~lookahead:spec.lookahead ~plan (make_store spec)
        in
        Array.init spec.horizon (fun _ -> snd (Server.step server)))
  in
  let store = make_store spec in
  let server = ref (Server.create ~lookahead:spec.lookahead ~plan store) in
  let ckpt = ref (Server.checkpoint !server) in
  let chan = Fault.bernoulli ~p:spec.loss_p ~seed:spec.seed in
  let in_burst w =
    List.exists
      (function
        | Loss_burst { at; length } -> w >= at && w < at + length
        | Crash _ | Stuck_reader _ -> false)
      spec.events
  in
  let crash_at w =
    List.find_map
      (function
        | Crash { at; restart_after } when at = w -> Some restart_after
        | _ -> None)
      spec.events
  in
  let ctl = make_controller () in
  let escalated = ref false in
  let stall_run = ref 0 in
  (* wall slot -> Some (logical slot, output, channel lost) | None (down) *)
  let timeline = Array.make spec.horizon None in
  let violations = ref [] in
  let violate fmt = Printf.ksprintf (fun s -> violations := s :: !violations) fmt in
  let recovery_slots = ref [] in
  (* Some (crash logical slot, checkpoint slot, crash wall, restart wall)
     while the server is down. *)
  let outage = ref None in
  let crashes = ref 0 in
  let aired = ref 0 and downs = ref 0 and faulted = ref 0 and replayed = ref 0 in
  let max_logical = ref (-1) in
  for w = 0 to spec.horizon - 1 do
    (match !outage with
    | Some (c, k, crash_w, until) when w >= until ->
        outage := None;
        (match Server.restore ~lookahead:spec.lookahead ~plan store !ckpt with
        | Ok s ->
            server := s;
            Obs.Trace.record (Obs.Trace.Recover { slot = k; replayed = c - k });
            (* caught up once the (c - k) replayed slots have re-aired *)
            let rt = (w - crash_w) + (c - k) in
            Obs.Histogram.observe obs_recovery rt;
            recovery_slots := rt :: !recovery_slots
        | Error e -> violate "%s: restore failed: %s" spec.name e)
    | _ -> ());
    (match crash_at w with
    | Some restart_after when !outage = None ->
        let c = Server.slot !server in
        incr crashes;
        Obs.Trace.record (Obs.Trace.Crash { slot = c });
        outage := Some (c, !ckpt.Checkpoint.slot, w, w + restart_after)
    | _ -> ());
    let lost_chan = Fault.advance chan || in_burst w in
    ignore (Controller.tick ctl w);
    (match !outage with
    | Some _ ->
        incr downs;
        stall_run := 0;
        Controller.report ctl ~lost:true;
        Controller.decide ctl ~slot:w
    | None ->
        let l, out = Server.step !server in
        if l <= !max_logical then incr replayed else max_logical := l;
        timeline.(w) <- Some (l, out, lost_chan);
        incr aired;
        (match out with
        | Server.Idle -> ()
        | Server.Piece _ ->
            stall_run := 0;
            Controller.report ctl ~lost:lost_chan;
            Controller.decide ctl ~slot:w
        | Server.Faulted _ ->
            incr faulted;
            incr stall_run;
            Controller.report ctl ~lost:true;
            Controller.decide ctl ~slot:w;
            if !stall_run >= stall_threshold then begin
              Controller.notify_stall ctl ~slot:w;
              stall_run := 0
            end);
        if Server.slot !server mod spec.checkpoint_every = 0 then
          ckpt := Server.checkpoint !server);
    (match (Controller.plan ctl).Ladder.rung with
    | Ladder.Baseline -> ()
    | _ -> escalated := true)
  done;
  (* I2: every airing of a logical slot — first time or post-recovery
     re-air — equals the uninterrupted reference. *)
  Array.iteri
    (fun w entry ->
      match entry with
      | Some (l, out, _) when l < Array.length ref_out ->
          if out <> ref_out.(l) then
            violate
              "%s: I2 violated at wall %d: logical slot %d differs from the \
               uninterrupted run"
              spec.name w l
      | _ -> ())
    timeline;
  (* I3: per-file wall gaps, counting a slot as serving its file when
     the plan allocated it — a faulted read still occupied the slot. *)
  List.iter
    (fun file ->
      match Program.delta prog file with
      | None -> ()
      | Some delta ->
          let last = ref None in
          let down_in = ref 0 in
          for w = 0 to spec.horizon - 1 do
            match timeline.(w) with
            | None -> incr down_in
            | Some (l, _, _) ->
                if Schedule.task_at sched l = file then begin
                  (match !last with
                  | Some w1 ->
                      let bound =
                        delta + !down_in + spec.checkpoint_every
                        + spec.lookahead
                      in
                      if w - w1 > bound then
                        violate
                          "%s: I3 violated for file %d: gap %d > bound %d \
                           (wall %d..%d, %d down)"
                          spec.name file (w - w1) bound w1 w !down_in
                  | None -> ());
                  last := Some w;
                  down_in := 0
                end
          done)
    (Program.files prog);
  (* I1 + I4: scripted retrievals reconstruct ground truth in-horizon. *)
  let retrieved =
    List.map
      (fun r ->
        let _, m, truth =
          List.find (fun (f, _, _) -> f = r.file) (files_of spec)
        in
        let seen = Hashtbl.create 8 in
        let result = ref (Error "horizon exhausted before m pieces") in
        (try
           for w = r.tune_in to spec.horizon - 1 do
             match timeline.(w) with
             | Some (_, Server.Piece (f, p), false) when f = r.file ->
                 if not (Hashtbl.mem seen p.Ida.index) then
                   Hashtbl.replace seen p.Ida.index p;
                 if Hashtbl.length seen >= m then begin
                   let pieces = Hashtbl.fold (fun _ p acc -> p :: acc) seen [] in
                   let ida = Ida.create ~m in
                   (match
                      Ida.reconstruct ida ~length:(Bytes.length truth) pieces
                    with
                   | exception Invalid_argument msg -> result := Error msg
                   | b ->
                       if Bytes.equal b truth then result := Ok w
                       else result := Error "reconstructed bytes differ");
                   raise Exit
                 end
             | _ -> ()
           done
         with Exit -> ());
        (match !result with
        | Ok _ -> ()
        | Error e ->
            violate "%s: I1/I4 violated: file %d from wall %d: %s" spec.name
              r.file r.tune_in e);
        (r, !result))
      spec.retrievals
  in
  if spec.expect_escalation && not !escalated then
    violate "%s: expected the controller to escalate, but it never left \
             baseline" spec.name;
  {
    spec;
    aired = !aired;
    down = !downs;
    faulted = !faulted;
    replayed = !replayed;
    crashes = !crashes;
    recovery_slots = List.rev !recovery_slots;
    retrieved;
    escalated = !escalated;
    violations = List.rev !violations;
  }

let pp_report ppf r =
  Format.fprintf ppf "@[<v>%s: %s@," r.spec.name
    (if ok r then "ok" else "VIOLATED");
  Format.fprintf ppf
    "  aired %d  down %d  faulted %d  replayed %d  crashes %d@," r.aired
    r.down r.faulted r.replayed r.crashes;
  if r.recovery_slots <> [] then
    Format.fprintf ppf "  recovery slots: %a@,"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
         Format.pp_print_int)
      r.recovery_slots;
  List.iter
    (fun ({ file; tune_in }, res) ->
      match res with
      | Ok w ->
          Format.fprintf ppf "  retrieve file %d @@ %d: done at %d@," file
            tune_in w
      | Error e ->
          Format.fprintf ppf "  retrieve file %d @@ %d: FAILED (%s)@," file
            tune_in e)
    r.retrieved;
  if r.escalated then Format.fprintf ppf "  controller escalated@,";
  List.iter (fun v -> Format.fprintf ppf "  violation: %s@," v) r.violations;
  Format.fprintf ppf "@]"

(* ------------------------------------------------------------------ *)
(* The fixed-seed suite                                                *)
(* ------------------------------------------------------------------ *)

let base =
  {
    name = "";
    seed = 0;
    horizon = 256;
    checkpoint_every = 16;
    lookahead = 3;
    depth = 8;
    fail_p = 0.0;
    slow_p = 0.0;
    loss_p = 0.0;
    events = [];
    retrievals = [];
    expect_escalation = false;
  }

let suite () =
  [
    {
      base with
      name = "calm-baseline";
      seed = 11;
      loss_p = 0.05;
      retrievals = [ { file = 0; tune_in = 3 }; { file = 1; tune_in = 40 } ];
    };
    {
      base with
      name = "crash-early";
      seed = 23;
      horizon = 320;
      loss_p = 0.02;
      events = [ Crash { at = 37; restart_after = 6 } ];
      retrievals = [ { file = 0; tune_in = 30 }; { file = 1; tune_in = 50 } ];
    };
    {
      base with
      name = "crash-late-long-outage";
      seed = 31;
      horizon = 512;
      checkpoint_every = 32;
      events = [ Crash { at = 300; restart_after = 24 } ];
      retrievals = [ { file = 0; tune_in = 290 }; { file = 1; tune_in = 310 } ];
    };
    {
      base with
      name = "double-crash";
      seed = 47;
      horizon = 512;
      loss_p = 0.02;
      events =
        [
          Crash { at = 100; restart_after = 8 };
          Crash { at = 240; restart_after = 12 };
        ];
      retrievals = [ { file = 0; tune_in = 95 }; { file = 1; tune_in = 230 } ];
    };
    {
      base with
      name = "stuck-reader";
      seed = 59;
      horizon = 400;
      lookahead = 2;
      events = [ Stuck_reader { at = 80; length = 40 } ];
      retrievals = [ { file = 0; tune_in = 200 } ];
      expect_escalation = true;
    };
    {
      base with
      name = "overflow-pressure";
      seed = 67;
      horizon = 300;
      lookahead = 2;
      depth = 2;
      fail_p = 0.05;
      slow_p = 0.4;
      loss_p = 0.02;
      retrievals = [ { file = 0; tune_in = 10 } ];
    };
    {
      base with
      name = "burst-plus-crash";
      seed = 83;
      horizon = 400;
      loss_p = 0.02;
      events =
        [
          Loss_burst { at = 60; length = 20 };
          Crash { at = 70; restart_after = 8 };
        ];
      retrievals = [ { file = 0; tune_in = 55 }; { file = 1; tune_in = 65 } ];
    };
  ]

let run_all () = List.map run (suite ())
