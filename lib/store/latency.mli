(** Injectable per-read service-time / failure processes for the block
    store.

    Every read the {!Block_store} issues is assigned a verdict by a
    latency process: how many slots the read takes to complete, or that
    it fails outright. A verdict is a {e pure function} of the read id
    and the slot the read was issued — no hidden mutable state — which is
    what makes crash-restart recovery deterministic: a server restarted
    from a checkpoint re-issues the same read ids at the same slots and
    sees the exact same service times, so its aired sequence is
    slot-for-slot identical to an uninterrupted run (the test suite pins
    this). Stochastic processes hash [(seed, read_id)] through
    splitmix64's finalizer; scripted processes see both coordinates. *)

type verdict =
  | Ready_in of int
      (** The read completes [d >= 0] slots after it was issued. *)
  | Failed  (** The read never completes (media error). *)

type t

val immediate : t
(** Every read completes in 0 slots — the no-fault backend. *)

val fixed : int -> t
(** Every read takes exactly [d >= 0] slots. *)

val stochastic :
  ?fail_p:float -> ?slow_p:float -> ?slow_slots:int -> seed:int -> unit -> t
(** Independent per-read faults: with probability [fail_p] (default 0)
    the read fails; otherwise with probability [slow_p] (default 0) it
    takes [slow_slots] (default 4) slots, else 0 slots. Deterministic in
    [(seed, read_id)]. *)

val scripted : (read_id:int -> slot:int -> verdict) -> t
(** Full control: the function sees the read id and the issue slot. *)

val stuck : from_:int -> until_:int -> t -> t
(** [stuck ~from_ ~until_ base]: a stalled reader. Reads issued in
    [\[from_, until_)] complete only after the stall window ends — their
    service time becomes [(until_ - slot) + d] where [d] is the base
    verdict (failures stay failures); reads outside the window behave as
    [base]. *)

val draw : t -> read_id:int -> slot:int -> verdict
(** The verdict for a read. Pure: same arguments, same verdict. *)
