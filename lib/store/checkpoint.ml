module Json = Pindisk_check.Json

let schema = "pindisk-checkpoint v1"
let ( let* ) = Result.bind

type t = {
  slot : int;
  period : int;
  period_stamp : int;
  program_digest : string;
  next_read : int;
  counts : (int * int) list;
  queue : Block_store.request list;
}

let status_to_json : Block_store.status -> Json.t = function
  | Block_store.Pending ready_at ->
      Json.Obj [ ("state", Json.Str "pending"); ("ready_at", Json.Int ready_at) ]
  | Block_store.Shed_overflow -> Json.Obj [ ("state", Json.Str "overflow") ]
  | Block_store.Shed_failed -> Json.Obj [ ("state", Json.Str "failed") ]

let request_to_json (r : Block_store.request) =
  Json.Obj
    [
      ("id", Json.Int r.Block_store.id);
      ("file", Json.Int r.Block_store.file);
      ("occurrence", Json.Int r.Block_store.occurrence);
      ("issued", Json.Int r.Block_store.issued);
      ("air", Json.Int r.Block_store.air);
      ("status", status_to_json r.Block_store.status);
    ]

let to_json t =
  Json.Obj
    [
      ("schema", Json.Str schema);
      ("slot", Json.Int t.slot);
      ("period", Json.Int t.period);
      ("period_stamp", Json.Int t.period_stamp);
      ("program_digest", Json.Str t.program_digest);
      ("next_read", Json.Int t.next_read);
      ( "counts",
        Json.List
          (List.map
             (fun (f, c) -> Json.List [ Json.Int f; Json.Int c ])
             t.counts) );
      ("queue", Json.List (List.map request_to_json t.queue));
    ]

let status_of_json j =
  let* state = Json.get_str "state" j in
  match state with
  | "pending" ->
      let* ready_at = Json.get_int "ready_at" j in
      Ok (Block_store.Pending ready_at)
  | "overflow" -> Ok Block_store.Shed_overflow
  | "failed" -> Ok Block_store.Shed_failed
  | other -> Error (Printf.sprintf "unknown request state %S" other)

let request_of_json j =
  let* id = Json.get_int "id" j in
  let* file = Json.get_int "file" j in
  let* occurrence = Json.get_int "occurrence" j in
  let* issued = Json.get_int "issued" j in
  let* air = Json.get_int "air" j in
  let* status_j =
    match Json.member "status" j with
    | Some s -> Ok s
    | None -> Error "missing field \"status\""
  in
  let* status = status_of_json status_j in
  Ok { Block_store.id; file; occurrence; issued; air; status }

let count_of_json = function
  | Json.List [ Json.Int f; Json.Int c ] -> Ok (f, c)
  | _ -> Error "expected a [file, count] pair"

let rec collect f = function
  | [] -> Ok []
  | x :: rest ->
      let* v = f x in
      let* vs = collect f rest in
      Ok (v :: vs)

let of_json j =
  let* got = Json.get_str "schema" j in
  if got <> schema then
    Error (Printf.sprintf "unsupported schema %S (want %S)" got schema)
  else
    let* slot = Json.get_int "slot" j in
    let* period = Json.get_int "period" j in
    let* period_stamp = Json.get_int "period_stamp" j in
    let* program_digest = Json.get_str "program_digest" j in
    let* next_read = Json.get_int "next_read" j in
    let* counts_l = Json.get_list "counts" j in
    let* counts = collect count_of_json counts_l in
    let* queue_l = Json.get_list "queue" j in
    let* queue = collect request_of_json queue_l in
    Ok { slot; period; period_stamp; program_digest; next_read; counts; queue }

let to_string t = Json.to_string (to_json t)

let of_string s =
  let* j = Json.of_string s in
  of_json j

let save t path =
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  output_string oc (to_string t);
  close_out oc;
  Sys.rename tmp path

let load path =
  match open_in_bin path with
  | exception Sys_error e -> Error e
  | ic ->
      let s =
        Fun.protect
          ~finally:(fun () -> close_in ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      of_string s
