module Ida = Pindisk_ida.Ida
module Program = Pindisk.Program
module Obs = Pindisk_obs

let obs_reads = Obs.Registry.counter "store.reads"
let obs_late = Obs.Registry.counter "store.read.late"
let obs_failed = Obs.Registry.counter "store.read.failed"
let obs_overflow = Obs.Registry.counter "store.read.overflow"
let obs_service = Obs.Registry.histogram "store.read.service"

type status = Pending of int | Shed_overflow | Shed_failed

type request = {
  id : int;
  file : int;
  occurrence : int;
  issued : int;
  air : int;
  status : status;
}

type stored = { m : int; length : int; content : bytes; pieces : Ida.piece array }

type t = {
  prog : Program.t;
  store : (int, stored) Hashtbl.t;
  latency : Latency.t;
  depth : int;
  mutable queue : request list; (* oldest first *)
  mutable next_read : int;
}

let create ?(depth = 8) ~latency ~program files =
  if depth < 1 then invalid_arg "Block_store.create: depth must be >= 1";
  let store = Hashtbl.create 8 in
  List.iter
    (fun (file, m, content) ->
      let capacity =
        match Program.capacity program file with
        | exception Not_found ->
            invalid_arg
              (Printf.sprintf "Block_store.create: file %d not in program" file)
        | c -> c
      in
      if m < 1 || m > capacity then
        invalid_arg "Block_store.create: need 1 <= m <= capacity";
      let ida = Ida.create ~m in
      let pieces = Ida.disperse ida ~n:capacity content in
      Hashtbl.replace store file
        { m; length = Bytes.length content; content = Bytes.copy content; pieces })
    files;
  List.iter
    (fun f ->
      if not (Hashtbl.mem store f) then
        invalid_arg
          (Printf.sprintf "Block_store.create: no content for file %d" f))
    (Program.files program);
  { prog = program; store; latency; depth; queue = []; next_read = 0 }

let program t = t.prog
let depth t = t.depth

let source_blocks t file =
  Option.map (fun s -> s.m) (Hashtbl.find_opt t.store file)

let length t file =
  Option.map (fun s -> s.length) (Hashtbl.find_opt t.store file)

let content t file =
  Option.map (fun s -> Bytes.copy s.content) (Hashtbl.find_opt t.store file)

let stored_exn t file name =
  match Hashtbl.find_opt t.store file with
  | Some s -> s
  | None -> invalid_arg (Printf.sprintf "Block_store.%s: unknown file %d" name file)

let piece t ~file ~occurrence =
  let s = stored_exn t file "piece" in
  s.pieces.(occurrence mod Array.length s.pieces)

(* Reads that completed strictly before [slot] and already aired (or were
   due to) are dead bookkeeping; drop them. Late reads stay until their
   completion slot passes — a busy disk is busy with them. *)
let purge t ~slot =
  t.queue <-
    List.filter
      (fun r ->
        match r.status with
        | Pending ready_at -> r.air >= slot || ready_at > slot
        | Shed_overflow | Shed_failed -> r.air >= slot)
      t.queue

let outstanding t ~slot =
  List.length
    (List.filter
       (fun r -> match r.status with Pending ready_at -> ready_at > slot | _ -> false)
       t.queue)

let submit t ~slot ~air ~file ~occurrence =
  if air < slot then invalid_arg "Block_store.submit: air slot before issue slot";
  ignore (stored_exn t file "submit");
  purge t ~slot;
  let id = t.next_read in
  t.next_read <- id + 1;
  let obs = Obs.Control.enabled () in
  if obs then Obs.Registry.incr obs_reads;
  let status =
    if outstanding t ~slot >= t.depth then begin
      if obs then Obs.Registry.incr obs_overflow;
      Shed_overflow
    end
    else
      match Latency.draw t.latency ~read_id:id ~slot with
      | Latency.Failed ->
          if obs then Obs.Registry.incr obs_failed;
          Shed_failed
      | Latency.Ready_in d ->
          if obs then Obs.Histogram.observe obs_service d;
          Pending (slot + d)
  in
  t.queue <- t.queue @ [ { id; file; occurrence; issued = slot; air; status } ]

let take t ~slot =
  match List.partition (fun r -> r.air = slot) t.queue with
  | [], _ -> `Missing
  | [ r ], rest -> (
      match r.status with
      | Shed_overflow ->
          t.queue <- rest;
          `Overflow
      | Shed_failed ->
          t.queue <- rest;
          `Failed
      | Pending ready_at ->
          if ready_at <= slot then begin
            t.queue <- rest;
            `Ready (piece t ~file:r.file ~occurrence:r.occurrence)
          end
          else begin
            (* Late: the read keeps cooking (and occupying the queue)
               until [ready_at]; [purge] reaps it then. *)
            if Obs.Control.enabled () then Obs.Registry.incr obs_late;
            `Late ready_at
          end)
  | _ :: _ :: _, _ ->
      invalid_arg "Block_store.take: two reads submitted for one air slot"

let queue t = t.queue
let next_read t = t.next_read

let restore t ~next_read queue =
  t.next_read <- next_read;
  t.queue <- queue
