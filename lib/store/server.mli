(** The broadcast server: a plan dispatcher wired to the {!Block_store}.

    Two cursors walk the same {!Pindisk_pinwheel.Plan}: the {b air}
    cursor names the slot going out now, and the {b prefetch} cursor
    runs [lookahead] slots ahead, submitting the read that will feed
    each busy slot. A read whose service time exceeds the prefetch lead
    misses its slot; the slot airs {!Faulted} — from a client's point of
    view indistinguishable from a channel loss, which is the point.

    The server is driven entirely by its {e logical} slot: latency
    verdicts are pure functions of (read id, issue slot), and both are
    replayed identically after a {!restore}. That is the determinism
    contract behind crash-restart recovery — a server restored from a
    checkpoint at slot [K] airs, from [K] on, the byte-identical
    sequence of the uninterrupted run. *)

module Ida = Pindisk_ida.Ida
module Plan = Pindisk_pinwheel.Plan

type fault_reason =
  | Read_late of int  (** the feeding read completes at the carried slot *)
  | Read_failed
  | Queue_overflow

type output =
  | Piece of int * Ida.piece  (** file id and the piece on the air *)
  | Idle  (** the plan airs nothing at the slot *)
  | Faulted of fault_reason  (** busy slot, but the read missed it *)

val pp_output : Format.formatter -> output -> unit

type t

val create : ?lookahead:int -> plan:Plan.t -> Block_store.t -> t
(** A server at slot 0 with the first [lookahead] (default 4, [>= 1])
    slots' reads already submitted (issued at slot 0). The plan period
    must be a positive multiple of the program period, and every plan
    task must be a stored file; raises [Invalid_argument] otherwise. *)

val slot : t -> int
(** The slot {!step} will air next. *)

val lookahead : t -> int

val store : t -> Block_store.t

val step : t -> int * output
(** Air one slot: submit the prefetch read for [slot + lookahead], then
    resolve the read due now. Returns [(slot aired, what went out)]. *)

val checkpoint : t -> Checkpoint.t
(** Snapshot the complete volatile state (cursors, occurrence counters,
    read-id counter, outstanding queue). Pure — does not disturb the
    server. *)

val restore :
  ?lookahead:int -> plan:Plan.t -> Block_store.t -> Checkpoint.t ->
  (t, string) result
(** Rebuild a server from a checkpoint over the same durable
    configuration: the same plan, a block store over the same program
    and latency process, and the same [lookahead] as the checkpointed
    server. Fails if the checkpoint's program digest or period disagree
    with what it is being restored onto. The restored server's
    {!step} stream is slot-for-slot identical to the checkpointed
    server's. *)
