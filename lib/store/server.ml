module Ida = Pindisk_ida.Ida
module Plan = Pindisk_pinwheel.Plan
module Schedule = Pindisk_pinwheel.Schedule
module Program = Pindisk.Program
module Swap = Pindisk_adapt.Swap

type fault_reason = Read_late of int | Read_failed | Queue_overflow

type output = Piece of int * Ida.piece | Idle | Faulted of fault_reason

let pp_output ppf = function
  | Piece (file, piece) ->
      Format.fprintf ppf "piece %d of file %d" piece.Ida.index file
  | Idle -> Format.pp_print_string ppf "idle"
  | Faulted (Read_late ready_at) ->
      Format.fprintf ppf "faulted (read late, ready at %d)" ready_at
  | Faulted Read_failed -> Format.pp_print_string ppf "faulted (read failed)"
  | Faulted Queue_overflow ->
      Format.pp_print_string ppf "faulted (queue overflow)"

type t = {
  store : Block_store.t;
  plan : Plan.t;
  air : Plan.dispatcher;
  prefetch : Plan.dispatcher;
  lookahead : int;
  counts : (int, int) Hashtbl.t;
}

let validate ~plan store =
  let prog = Block_store.program store in
  let prog_period = Program.period prog in
  let plan_period = Plan.period plan in
  if plan_period <= 0 || plan_period mod prog_period <> 0 then
    invalid_arg
      (Printf.sprintf
         "Server: plan period %d is not a multiple of program period %d"
         plan_period prog_period);
  List.iter
    (fun id ->
      if Block_store.source_blocks store id = None then
        invalid_arg (Printf.sprintf "Server: plan task %d is not stored" id))
    (Plan.task_ids plan)

(* Dispatch the prefetch cursor's slot: bump the file's occurrence
   counter and submit the feeding read. *)
let prefetch_one t ~issued =
  let air = Plan.slot t.prefetch in
  let file = Plan.next t.prefetch in
  if file <> Schedule.idle then begin
    let occurrence = Option.value ~default:0 (Hashtbl.find_opt t.counts file) in
    Hashtbl.replace t.counts file (occurrence + 1);
    Block_store.submit t.store ~slot:issued ~air ~file ~occurrence
  end

let create ?(lookahead = 4) ~plan store =
  if lookahead < 1 then invalid_arg "Server.create: lookahead must be >= 1";
  validate ~plan store;
  let t =
    {
      store;
      plan;
      air = Plan.create plan;
      prefetch = Plan.create plan;
      lookahead;
      counts = Hashtbl.create 8;
    }
  in
  for _ = 1 to lookahead do
    prefetch_one t ~issued:0
  done;
  t

let slot t = Plan.slot t.air
let lookahead t = t.lookahead
let store t = t.store

let step t =
  let now = Plan.slot t.air in
  prefetch_one t ~issued:now;
  let file = Plan.next t.air in
  let out =
    if file = Schedule.idle then Idle
    else
      match Block_store.take t.store ~slot:now with
      | `Ready piece -> Piece (file, piece)
      | `Late ready_at -> Faulted (Read_late ready_at)
      | `Failed -> Faulted Read_failed
      | `Overflow -> Faulted Queue_overflow
      | `Missing ->
          invalid_arg
            (Printf.sprintf "Server.step: no read submitted for busy slot %d"
               now)
  in
  (now, out)

let checkpoint t =
  let slot = Plan.slot t.air in
  let period = Plan.period t.plan in
  {
    Checkpoint.slot;
    period;
    period_stamp = slot / period;
    program_digest = Swap.digest (Block_store.program t.store);
    next_read = Block_store.next_read t.store;
    counts =
      List.sort compare
        (Hashtbl.fold (fun f c acc -> (f, c) :: acc) t.counts []);
    queue = Block_store.queue t.store;
  }

let restore ?(lookahead = 4) ~plan store (c : Checkpoint.t) =
  if lookahead < 1 then invalid_arg "Server.restore: lookahead must be >= 1";
  validate ~plan store;
  let digest = Swap.digest (Block_store.program store) in
  if c.Checkpoint.program_digest <> digest then
    Error
      (Printf.sprintf "checkpoint program digest %s does not match %s"
         c.Checkpoint.program_digest digest)
  else if c.Checkpoint.period <> Plan.period plan then
    Error
      (Printf.sprintf "checkpoint period %d does not match plan period %d"
         c.Checkpoint.period (Plan.period plan))
  else begin
    let air = Plan.create plan in
    for _ = 1 to c.Checkpoint.slot do
      ignore (Plan.next air)
    done;
    let prefetch = Plan.create plan in
    for _ = 1 to c.Checkpoint.slot + lookahead do
      ignore (Plan.next prefetch)
    done;
    let counts = Hashtbl.create 8 in
    List.iter (fun (f, n) -> Hashtbl.replace counts f n) c.Checkpoint.counts;
    Block_store.restore store ~next_read:c.Checkpoint.next_read
      c.Checkpoint.queue;
    Ok { store; plan; air; prefetch; lookahead; counts }
  end
