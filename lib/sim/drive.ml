module Plan = Pindisk_pinwheel.Plan
module Schedule = Pindisk_pinwheel.Schedule
module Intmath = Pindisk_util.Intmath
module Stats = Pindisk_util.Stats
module Obs = Pindisk_obs

let obs_requests = Obs.Registry.counter "drive.requests"
let obs_completed = Obs.Registry.counter "drive.completed"
let obs_missed = Obs.Registry.counter "drive.missed"
let obs_losses = Obs.Registry.counter "drive.losses"
let obs_slots = Obs.Registry.counter "drive.slots"
let obs_wait = Obs.Registry.histogram "drive.wait"
let obs_file_wait f = Obs.Registry.histogram (Printf.sprintf "drive.wait.%d" f)
let obs_file_miss f = Obs.Registry.counter (Printf.sprintf "drive.miss.%d" f)

(* One period of warm-up dispatch counts occurrences per file: enough to
   validate requests and compute the data cycle, in O(period·log n) time
   and O(files) memory — no slot array. *)
let occurrences_per_period plan =
  let d = Plan.create plan in
  let occ = Hashtbl.create 64 in
  for _ = 1 to Plan.period plan do
    let f = Plan.next d in
    if f <> Schedule.idle then
      Hashtbl.replace occ f (1 + Option.value ~default:0 (Hashtbl.find_opt occ f))
  done;
  occ

let data_cycle ~plan ~capacity occ =
  Hashtbl.fold
    (fun f o acc ->
      let n = capacity f in
      Intmath.lcm acc (n / Intmath.gcd n o))
    occ 1
  * Plan.period plan

(* Per-request in-flight state during the sweep. *)
type active = {
  index : int; (* position in the original trace: fixes fault seed and
                  aggregation order *)
  req : Workload.request;
  fault : Fault.t;
  collected : (int, unit) Hashtbl.t;
  mutable losses : int;
  mutable outcome : int option option;
      (* None = in flight; Some None = expired; Some (Some t) = done at t *)
}

let run ?max_slots ~plan ~capacities ~fault ~seed trace =
  let caps = Hashtbl.create 16 in
  List.iter
    (fun (f, n) ->
      if n < 1 then invalid_arg "Drive.run: capacity must be >= 1";
      Hashtbl.replace caps f n)
    capacities;
  let capacity f =
    match Hashtbl.find_opt caps f with
    | Some n -> n
    | None -> invalid_arg "Drive.run: file not in plan capacities"
  in
  let occ = occurrences_per_period plan in
  let max_slots =
    match max_slots with
    | Some m -> m
    | None -> 100 * data_cycle ~plan ~capacity occ
  in
  (* Validate every request up front, in trace order, mirroring
     [Client.retrieve]'s checks. *)
  List.iter
    (fun (r : Workload.request) ->
      if r.Workload.issued < 0 then invalid_arg "Drive.run: negative start";
      if r.Workload.needed < 1 then invalid_arg "Drive.run: needed must be >= 1";
      if r.Workload.needed > capacity r.Workload.file then
        invalid_arg "Drive.run: needed exceeds the file's capacity";
      if not (Hashtbl.mem occ r.Workload.file) then
        invalid_arg "Drive.run: file never broadcast")
    trace;
  let states =
    List.mapi
      (fun k (r : Workload.request) ->
        {
          index = k;
          req = r;
          fault = fault ~seed:(Intmath.mix64 (seed + k));
          collected = Hashtbl.create 16;
          losses = 0;
          outcome = None;
        })
      trace
  in
  (* Single pass over the slot axis: one dispatcher serves every request.
     Requests activate at their issue slot (fault process reset there, then
     advanced once per slot, exactly as the per-request client does) and
     retire on completion or after [max_slots]. *)
  let pending =
    List.stable_sort
      (fun a b -> compare a.req.Workload.issued b.req.Workload.issued)
      states
  in
  let pending = ref pending in
  let active = ref [] in
  let counts = Hashtbl.create 16 in
  let disp = Plan.create plan in
  let slots_swept = ref 0 in
  let t = ref 0 in
  while !pending <> [] || !active <> [] do
    (* Activate requests issued at this slot. *)
    let rec activate () =
      match !pending with
      | s :: rest when s.req.Workload.issued = !t ->
          Fault.reset_to s.fault !t;
          active := s :: !active;
          pending := rest;
          activate ()
      | _ -> ()
    in
    activate ();
    (* Expire requests that exhausted their window. *)
    active :=
      List.filter
        (fun s ->
          if !t - s.req.Workload.issued >= max_slots then begin
            s.outcome <- Some None;
            false
          end
          else true)
        !active;
    let broadcast =
      let f = Plan.next disp in
      incr slots_swept;
      if f = Schedule.idle then None
      else begin
        let c = Option.value ~default:0 (Hashtbl.find_opt counts f) in
        Hashtbl.replace counts f (c + 1);
        Some (f, c mod capacity f)
      end
    in
    List.iter
      (fun s ->
        let lost = Fault.advance s.fault in
        match broadcast with
        | Some (f, idx) when f = s.req.Workload.file ->
            if lost then s.losses <- s.losses + 1
            else begin
              if not (Hashtbl.mem s.collected idx) then
                Hashtbl.replace s.collected idx ();
              if Hashtbl.length s.collected >= s.req.Workload.needed then
                s.outcome <- Some (Some !t)
            end
        | _ -> ())
      !active;
    active := List.filter (fun s -> s.outcome = None) !active;
    incr t
  done;
  (* Aggregate in original trace order — the same fold the eager engine
     performs, so the results (including float accumulation order) agree
     exactly. *)
  let global = Stats.create () in
  let per_file : (int, int ref * int ref * Stats.t) Hashtbl.t =
    Hashtbl.create 8
  in
  let file_entry f =
    match Hashtbl.find_opt per_file f with
    | Some e -> e
    | None ->
        let e = (ref 0, ref 0, Stats.create ()) in
        Hashtbl.add per_file f e;
        e
  in
  let obs = Obs.Control.enabled () in
  if obs then Obs.Registry.add obs_slots !slots_swept;
  let completed = ref 0 and missed = ref 0 and losses = ref 0 in
  List.iter
    (fun s ->
      let file = s.req.Workload.file in
      let reqs, miss, lat = file_entry file in
      incr reqs;
      losses := !losses + s.losses;
      if obs then Obs.Registry.incr obs_requests;
      let record_miss () =
        incr missed;
        incr miss;
        if obs then begin
          Obs.Registry.incr obs_missed;
          Obs.Registry.incr (obs_file_miss file)
        end
      in
      match s.outcome with
      | Some (Some slot) ->
          let e = slot - s.req.Workload.issued + 1 in
          incr completed;
          Stats.add_int global e;
          Stats.add_int lat e;
          if obs then begin
            Obs.Registry.incr obs_completed;
            Obs.Histogram.observe obs_wait e;
            Obs.Histogram.observe (obs_file_wait file) e
          end;
          if e > s.req.Workload.deadline then record_miss ()
      | Some None | None -> record_miss ())
    states;
  if obs then Obs.Registry.add obs_losses !losses;
  {
    Engine.requests = List.length trace;
    completed = !completed;
    missed = !missed;
    latency = global;
    losses = !losses;
    per_file =
      Hashtbl.fold
        (fun file (reqs, miss, lat) acc ->
          { Engine.file; requests = !reqs; missed = !miss; latency = lat }
          :: acc)
        per_file []
      |> List.sort (fun (a : Engine.file_stats) b -> compare a.file b.file);
  }
