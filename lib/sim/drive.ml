module Plan = Pindisk_pinwheel.Plan
module Schedule = Pindisk_pinwheel.Schedule
module Intmath = Pindisk_util.Intmath
module Obs = Pindisk_obs

let sinks = Retire.sinks ~prefix:"drive"
let obs_slots = Obs.Registry.counter "drive.slots"

(* One period of warm-up dispatch, done once per plan: occurrence counts
   per file (validation + data cycle) and the sorted slot offsets each
   file occupies within a period (the cohort engine's occurrence
   pattern). O(period·log n) time, O(period) memory, no slot array. *)
type prep = {
  period : int;
  occ : (int, int) Hashtbl.t;
  offsets : (int, int array) Hashtbl.t;
}

let prepare plan =
  let d = Plan.create plan in
  let period = Plan.period plan in
  let occ = Hashtbl.create 64 in
  let rev_offsets = Hashtbl.create 64 in
  for s = 0 to period - 1 do
    let f = Plan.next d in
    if f <> Schedule.idle then begin
      Hashtbl.replace occ f (1 + Option.value ~default:0 (Hashtbl.find_opt occ f));
      Hashtbl.replace rev_offsets f
        (s :: Option.value ~default:[] (Hashtbl.find_opt rev_offsets f))
    end
  done;
  let offsets = Hashtbl.create 64 in
  Hashtbl.iter
    (fun f rev -> Hashtbl.replace offsets f (Array.of_list (List.rev rev)))
    rev_offsets;
  { period; occ; offsets }

let period p = p.period
let occurrences p = p.occ

let slot_offsets p f =
  Option.value ~default:[||] (Hashtbl.find_opt p.offsets f)

let occurrences_per_period plan = (prepare plan).occ

let data_cycle prep ~capacity =
  Hashtbl.fold
    (fun f o acc ->
      let n = capacity f in
      Intmath.lcm acc (n / Intmath.gcd n o))
    prep.occ 1
  * prep.period

(* Per-request in-flight state during the sweep. *)
type active = {
  index : int; (* position in the original trace: fixes fault seed and
                  aggregation order *)
  req : Workload.request;
  fault : Fault.t;
  collected : (int, unit) Hashtbl.t;
  mutable losses : int;
  mutable outcome : int option option;
      (* None = in flight; Some None = expired; Some (Some t) = done at t *)
}

let capacity_fn ~who capacities =
  let caps = Hashtbl.create 16 in
  List.iter
    (fun (f, n) ->
      if n < 1 then invalid_arg (who ^ ": capacity must be >= 1");
      Hashtbl.replace caps f n)
    capacities;
  fun f ->
    match Hashtbl.find_opt caps f with
    | Some n -> n
    | None -> invalid_arg (who ^ ": file not in plan capacities")

let validate_request ~who ~capacity ~occ (r : Workload.request) =
  if r.Workload.issued < 0 then invalid_arg (who ^ ": negative start");
  if r.Workload.needed < 1 then invalid_arg (who ^ ": needed must be >= 1");
  if r.Workload.needed > capacity r.Workload.file then
    invalid_arg (who ^ ": needed exceeds the file's capacity");
  if not (Hashtbl.mem occ r.Workload.file) then
    invalid_arg (who ^ ": file never broadcast")

let run ?prep ?max_slots ~plan ~capacities ~fault ~seed trace =
  let capacity = capacity_fn ~who:"Drive.run" capacities in
  let prep =
    match prep with
    | Some p ->
        if p.period <> Plan.period plan then
          invalid_arg "Drive.run: prep was built from a different plan";
        p
    | None -> prepare plan
  in
  let occ = prep.occ in
  let max_slots =
    match max_slots with
    | Some m -> m
    | None -> 100 * data_cycle prep ~capacity
  in
  (* Validate every request up front, in trace order, mirroring
     [Client.retrieve]'s checks. *)
  List.iter (validate_request ~who:"Drive.run" ~capacity ~occ) trace;
  let states =
    List.mapi
      (fun k (r : Workload.request) ->
        {
          index = k;
          req = r;
          fault = fault ~seed:(Intmath.mix64 (seed + k));
          collected = Hashtbl.create 16;
          losses = 0;
          outcome = None;
        })
      trace
  in
  (* Single pass over the slot axis: one dispatcher serves every request.
     Requests activate at their issue slot (fault process reset there, then
     advanced once per slot, exactly as the per-request client does) and
     retire on completion or after [max_slots]. *)
  let pending =
    List.stable_sort
      (fun a b -> compare a.req.Workload.issued b.req.Workload.issued)
      states
  in
  let pending = ref pending in
  let active = ref [] in
  let counts = Hashtbl.create 16 in
  let disp = Plan.create plan in
  let slots_swept = ref 0 in
  let t = ref 0 in
  while !pending <> [] || !active <> [] do
    (* Activate requests issued at this slot. *)
    let rec activate () =
      match !pending with
      | s :: rest when s.req.Workload.issued = !t ->
          Fault.reset_to s.fault !t;
          active := s :: !active;
          pending := rest;
          activate ()
      | _ -> ()
    in
    activate ();
    (* Expire requests that exhausted their window. *)
    active :=
      List.filter
        (fun s ->
          if !t - s.req.Workload.issued >= max_slots then begin
            s.outcome <- Some None;
            false
          end
          else true)
        !active;
    let broadcast =
      let f = Plan.next disp in
      incr slots_swept;
      if f = Schedule.idle then None
      else begin
        let c = Option.value ~default:0 (Hashtbl.find_opt counts f) in
        Hashtbl.replace counts f (c + 1);
        Some (f, c mod capacity f)
      end
    in
    List.iter
      (fun s ->
        let lost = Fault.advance s.fault in
        match broadcast with
        | Some (f, idx) when f = s.req.Workload.file ->
            if lost then s.losses <- s.losses + 1
            else begin
              if not (Hashtbl.mem s.collected idx) then
                Hashtbl.replace s.collected idx ();
              if Hashtbl.length s.collected >= s.req.Workload.needed then
                s.outcome <- Some (Some !t)
            end
        | _ -> ())
      !active;
    active := List.filter (fun s -> s.outcome = None) !active;
    incr t
  done;
  if Obs.Control.enabled () then Obs.Registry.add obs_slots !slots_swept;
  (* Retire in original trace order — the same fold the eager engine
     performs, so the results (including float accumulation order) agree
     exactly. *)
  Retire.retire ~sinks
    (List.map
       (fun s ->
         {
           Retire.file = s.req.Workload.file;
           deadline = s.req.Workload.deadline;
           elapsed =
             (match s.outcome with
             | Some (Some slot) -> Some (slot - s.req.Workload.issued + 1)
             | Some None | None -> None);
           weight = 1;
           losses = s.losses;
         })
       states)
