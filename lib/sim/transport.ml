module Program = Pindisk.Program
module Ida = Pindisk_ida.Ida
module Obs = Pindisk_obs

let obs_requests = Obs.Registry.counter "sim.transport.requests"
let obs_reconstructs = Obs.Registry.counter "sim.transport.reconstructs"
let obs_wait = Obs.Registry.histogram "sim.transport.wait"

type stored = {
  m : int;
  length : int;
  ida : Ida.t;
  pieces : Ida.piece array; (* all [capacity] dispersed pieces *)
}

type t = { program : Program.t; store : (int, stored) Hashtbl.t }

let create ~program files =
  let store = Hashtbl.create 8 in
  List.iter
    (fun (file, m, content) ->
      let capacity =
        match Program.capacity program file with
        | exception Not_found ->
            invalid_arg
              (Printf.sprintf "Transport.create: file %d not in program" file)
        | c -> c
      in
      if m < 1 || m > capacity then
        invalid_arg "Transport.create: need 1 <= m <= capacity";
      let ida = Ida.create ~m in
      let pieces = Ida.disperse ida ~n:capacity content in
      Hashtbl.replace store file
        { m; length = Bytes.length content; ida; pieces })
    files;
  List.iter
    (fun f ->
      if not (Hashtbl.mem store f) then
        invalid_arg (Printf.sprintf "Transport.create: no content for file %d" f))
    (Program.files program);
  { program; store }

let program t = t.program

let on_air t slot =
  match Program.block_at t.program slot with
  | None -> None
  | Some (file, idx) ->
      let s = Hashtbl.find t.store file in
      let piece = s.pieces.(idx) in
      Obs.Trace.record (Obs.Trace.Slot { slot; file; index = piece.Ida.index });
      Some (file, piece)

let source_blocks t file =
  match Hashtbl.find_opt t.store file with
  | Some s -> s.m
  | None -> raise Not_found

(* ------------------------------------------------------------------ *)
(* Online streaming: air the program from a dispatch plan               *)
(* ------------------------------------------------------------------ *)

type streamer = {
  transport : t;
  disp : Pindisk_pinwheel.Plan.dispatcher;
  counts : (int, int) Hashtbl.t;
}

let obs_streamed = Obs.Registry.counter "sim.transport.streamed"

let streamer t plan =
  { transport = t; disp = Pindisk_pinwheel.Plan.create plan; counts = Hashtbl.create 16 }

let streamer_slot s = Pindisk_pinwheel.Plan.slot s.disp

let stream_next s =
  let slot = Pindisk_pinwheel.Plan.slot s.disp in
  match Pindisk_pinwheel.Plan.next s.disp with
  | f when f = Pindisk_pinwheel.Schedule.idle -> None
  | f ->
      let stored =
        match Hashtbl.find_opt s.transport.store f with
        | Some st -> st
        | None -> invalid_arg "Transport.stream_next: file not stored"
      in
      let c = Option.value ~default:0 (Hashtbl.find_opt s.counts f) in
      Hashtbl.replace s.counts f (c + 1);
      let piece = stored.pieces.(c mod Array.length stored.pieces) in
      Obs.Trace.record (Obs.Trace.Slot { slot; file = f; index = piece.Ida.index });
      Some (f, piece)

let retrieve_streamed ?max_slots s ~file ~fault () =
  let stored =
    match Hashtbl.find_opt s.transport.store file with
    | Some st -> st
    | None -> invalid_arg "Transport.retrieve_streamed: unknown file"
  in
  let max_slots =
    match max_slots with
    | Some m -> m
    | None -> 100 * Program.data_cycle s.transport.program
  in
  let start = streamer_slot s in
  Fault.reset_to fault start;
  let obs = Obs.Control.enabled () in
  if obs then Obs.Registry.incr obs_requests;
  let collected = Hashtbl.create 16 in
  let result = ref None in
  let streamed = ref 0 in
  while !result = None && streamer_slot s - start < max_slots do
    let lost = Fault.advance fault in
    let slot = streamer_slot s in
    incr streamed;
    (match stream_next s with
    | Some (f, piece) when f = file && not lost ->
        if not (Hashtbl.mem collected piece.Ida.index) then begin
          Hashtbl.replace collected piece.Ida.index piece;
          if Hashtbl.length collected >= stored.m then begin
            let pieces = Hashtbl.fold (fun _ p acc -> p :: acc) collected [] in
            result := Some (Ida.reconstruct stored.ida ~length:stored.length pieces);
            if obs then begin
              Obs.Registry.incr obs_reconstructs;
              Obs.Histogram.observe obs_wait (slot - start + 1);
              Obs.Trace.record
                (Obs.Trace.Reconstruct
                   { file; pieces = stored.m; bytes = stored.length })
            end
          end
        end
    | Some _ | None -> ())
  done;
  if obs then Obs.Registry.add obs_streamed !streamed;
  !result

let retrieve ?max_slots ?report t ~file ~start ~fault () =
  if start < 0 then invalid_arg "Transport.retrieve: negative start";
  let s =
    match Hashtbl.find_opt t.store file with
    | Some s -> s
    | None -> invalid_arg "Transport.retrieve: unknown file"
  in
  let max_slots =
    match max_slots with
    | Some m -> m
    | None -> 100 * Program.data_cycle t.program
  in
  Fault.reset_to fault start;
  let obs = Obs.Control.enabled () in
  if obs then Obs.Registry.incr obs_requests;
  let collected = Hashtbl.create 16 in
  let slot = ref start in
  let result = ref None in
  while !result = None && !slot - start < max_slots do
    let lost = Fault.advance fault in
    (match on_air t !slot with
    | Some (f, piece) ->
        (match report with
        | Some fn -> fn ~slot:!slot ~file:f ~lost
        | None -> ());
        if f = file && not lost then
          if not (Hashtbl.mem collected piece.Ida.index) then begin
            Hashtbl.replace collected piece.Ida.index piece;
            if Hashtbl.length collected >= s.m then begin
              let pieces = Hashtbl.fold (fun _ p acc -> p :: acc) collected [] in
              result := Some (Ida.reconstruct s.ida ~length:s.length pieces);
              if obs then begin
                Obs.Registry.incr obs_reconstructs;
                Obs.Histogram.observe obs_wait (!slot - start + 1);
                Obs.Trace.record
                  (Obs.Trace.Reconstruct
                     { file; pieces = s.m; bytes = s.length })
              end
            end
          end
    | None -> ());
    incr slot
  done;
  !result
