module Program = Pindisk.Program
module Ida = Pindisk_ida.Ida
module Obs = Pindisk_obs

module Schedule = Pindisk_pinwheel.Schedule
module Plan = Pindisk_pinwheel.Plan

let obs_requests = Obs.Registry.counter "sim.transport.requests"
let obs_reconstructs = Obs.Registry.counter "sim.transport.reconstructs"
let obs_retries = Obs.Registry.counter "sim.transport.retries"
let obs_wait = Obs.Registry.histogram "sim.transport.wait"

type error =
  | Timeout of { slots : int; collected : int; needed : int }
  | Unknown_file of int
  | Reconstruct_failed of string

let pp_error ppf = function
  | Timeout { slots; collected; needed } ->
      Format.fprintf ppf "timeout after %d slots (%d of %d pieces)" slots
        collected needed
  | Unknown_file f -> Format.fprintf ppf "unknown file %d" f
  | Reconstruct_failed msg -> Format.fprintf ppf "reconstruct failed: %s" msg

type stored = {
  m : int;
  length : int;
  ida : Ida.t;
  pieces : Ida.piece array; (* all [capacity] dispersed pieces *)
}

type t = { program : Program.t; store : (int, stored) Hashtbl.t }

let create ~program files =
  let store = Hashtbl.create 8 in
  List.iter
    (fun (file, m, content) ->
      let capacity =
        match Program.capacity program file with
        | exception Not_found ->
            invalid_arg
              (Printf.sprintf "Transport.create: file %d not in program" file)
        | c -> c
      in
      if m < 1 || m > capacity then
        invalid_arg "Transport.create: need 1 <= m <= capacity";
      let ida = Ida.create ~m in
      let pieces = Ida.disperse ida ~n:capacity content in
      Hashtbl.replace store file
        { m; length = Bytes.length content; ida; pieces })
    files;
  List.iter
    (fun f ->
      if not (Hashtbl.mem store f) then
        invalid_arg (Printf.sprintf "Transport.create: no content for file %d" f))
    (Program.files program);
  { program; store }

let program t = t.program

let on_air t slot =
  match Program.block_at t.program slot with
  | None -> None
  | Some (file, idx) ->
      let s = Hashtbl.find t.store file in
      let piece = s.pieces.(idx) in
      Obs.Trace.record (Obs.Trace.Slot { slot; file; index = piece.Ida.index });
      Some (file, piece)

let find_source_blocks t file =
  match Hashtbl.find_opt t.store file with
  | Some s -> Some s.m
  | None -> None

let source_blocks t file =
  match find_source_blocks t file with
  | Some m -> m
  | None ->
      invalid_arg
        (Printf.sprintf "Transport.source_blocks: unknown file %d" file)

(* ------------------------------------------------------------------ *)
(* Online streaming: air the program from a dispatch plan               *)
(* ------------------------------------------------------------------ *)

type streamer = {
  transport : t;
  disp : Plan.dispatcher;
  counts : (int, int) Hashtbl.t;
}

let obs_streamed = Obs.Registry.counter "sim.transport.streamed"

(* A mismatched plan would silently air a different program; with
   [validate] the first hyperperiod is cross-checked against the
   program's schedule before any slot goes on the air. *)
let validate_plan t plan =
  let sched = Program.schedule t.program in
  let sp = Schedule.period sched in
  let pp = Plan.period plan in
  if pp mod sp <> 0 then
    invalid_arg
      (Printf.sprintf
         "Transport.streamer: plan period %d is not a multiple of the \
          program period %d"
         pp sp);
  let d = Plan.create plan in
  for slot = 0 to pp - 1 do
    let aired = Plan.next d in
    let expected = Schedule.task_at sched slot in
    if aired <> expected then
      invalid_arg
        (Printf.sprintf
           "Transport.streamer: plan airs %d at slot %d where the program \
            airs %d"
           aired slot expected)
  done

let streamer ?(validate = false) t plan =
  if validate then validate_plan t plan;
  { transport = t; disp = Plan.create plan; counts = Hashtbl.create 16 }

let streamer_slot s = Plan.slot s.disp

let stream_next s =
  let slot = Plan.slot s.disp in
  match Plan.next s.disp with
  | f when f = Schedule.idle -> None
  | f ->
      let stored =
        match Hashtbl.find_opt s.transport.store f with
        | Some st -> st
        | None -> invalid_arg "Transport.stream_next: file not stored"
      in
      let c = Option.value ~default:0 (Hashtbl.find_opt s.counts f) in
      Hashtbl.replace s.counts f (c + 1);
      let piece = stored.pieces.(c mod Array.length stored.pieces) in
      Obs.Trace.record (Obs.Trace.Slot { slot; file = f; index = piece.Ida.index });
      Some (f, piece)

let retrieve_streamed ?max_slots s ~file ~fault () =
  let stored =
    match Hashtbl.find_opt s.transport.store file with
    | Some st -> st
    | None -> invalid_arg "Transport.retrieve_streamed: unknown file"
  in
  let max_slots =
    match max_slots with
    | Some m -> m
    | None -> 100 * Program.data_cycle s.transport.program
  in
  let start = streamer_slot s in
  Fault.reset_to fault start;
  let obs = Obs.Control.enabled () in
  if obs then Obs.Registry.incr obs_requests;
  let collected = Hashtbl.create 16 in
  let result = ref None in
  let streamed = ref 0 in
  while !result = None && streamer_slot s - start < max_slots do
    let lost = Fault.advance fault in
    let slot = streamer_slot s in
    incr streamed;
    (match stream_next s with
    | Some (f, piece) when f = file && not lost ->
        if not (Hashtbl.mem collected piece.Ida.index) then begin
          Hashtbl.replace collected piece.Ida.index piece;
          if Hashtbl.length collected >= stored.m then begin
            let pieces = Hashtbl.fold (fun _ p acc -> p :: acc) collected [] in
            result := Some (Ida.reconstruct stored.ida ~length:stored.length pieces);
            if obs then begin
              Obs.Registry.incr obs_reconstructs;
              Obs.Histogram.observe obs_wait (slot - start + 1);
              Obs.Trace.record
                (Obs.Trace.Reconstruct
                   { file; pieces = stored.m; bytes = stored.length })
            end
          end
        end
    | Some _ | None -> ())
  done;
  if obs then Obs.Registry.add obs_streamed !streamed;
  !result

(* One tuning attempt: listen from [start] for at most [budget] slots,
   adding received pieces of [file] to [collected] (which may already hold
   pieces from earlier attempts — dispersal is fixed, so they stay valid).
   Reconstructs as soon as [m] distinct indices are present. *)
let collect_once ?report t ~stored ~collected ~file ~start ~budget ~fault =
  Fault.reset_to fault start;
  let obs = Obs.Control.enabled () in
  let slot = ref start in
  let result = ref None in
  while !result = None && !slot - start < budget do
    let lost = Fault.advance fault in
    (match on_air t !slot with
    | Some (f, piece) ->
        (match report with
        | Some fn -> fn ~slot:!slot ~file:f ~lost
        | None -> ());
        if f = file && not lost then
          if not (Hashtbl.mem collected piece.Ida.index) then begin
            Hashtbl.replace collected piece.Ida.index piece;
            if Hashtbl.length collected >= stored.m then begin
              let pieces =
                Hashtbl.fold (fun _ p acc -> p :: acc) collected []
              in
              (match
                 Ida.reconstruct stored.ida ~length:stored.length pieces
               with
              | bytes ->
                  result := Some (Ok bytes);
                  if obs then begin
                    Obs.Registry.incr obs_reconstructs;
                    Obs.Histogram.observe obs_wait (!slot - start + 1);
                    Obs.Trace.record
                      (Obs.Trace.Reconstruct
                         { file; pieces = stored.m; bytes = stored.length })
                  end
              | exception Invalid_argument msg ->
                  result := Some (Error (Reconstruct_failed msg)))
            end
          end
    | None -> ());
    incr slot
  done;
  match !result with
  | Some r -> r
  | None ->
      Error
        (Timeout
           {
             slots = !slot - start;
             collected = Hashtbl.length collected;
             needed = stored.m;
           })

let retrieve_result ?max_slots ?report t ~file ~start ~fault () =
  if start < 0 then invalid_arg "Transport.retrieve: negative start";
  match Hashtbl.find_opt t.store file with
  | None -> Error (Unknown_file file)
  | Some stored ->
      let budget =
        match max_slots with
        | Some m -> m
        | None -> 100 * Program.data_cycle t.program
      in
      if Obs.Control.enabled () then Obs.Registry.incr obs_requests;
      let collected = Hashtbl.create 16 in
      collect_once ?report t ~stored ~collected ~file ~start ~budget ~fault

let retrieve ?max_slots ?report t ~file ~start ~fault () =
  if start < 0 then invalid_arg "Transport.retrieve: negative start";
  if not (Hashtbl.mem t.store file) then
    invalid_arg "Transport.retrieve: unknown file";
  match retrieve_result ?max_slots ?report t ~file ~start ~fault () with
  | Ok bytes -> Some bytes
  | Error _ -> None

let retrieve_resilient ?(attempts = 4) ?backoff ?max_slots ?report t ~file
    ~start ~fault () =
  if start < 0 then invalid_arg "Transport.retrieve_resilient: negative start";
  if attempts < 1 then
    invalid_arg "Transport.retrieve_resilient: attempts must be >= 1";
  (match backoff with
  | Some b when b < 1 ->
      invalid_arg "Transport.retrieve_resilient: backoff must be >= 1"
  | _ -> ());
  match Hashtbl.find_opt t.store file with
  | None -> Error (Unknown_file file)
  | Some stored ->
      let cycle = Program.data_cycle t.program in
      let budget = Option.value max_slots ~default:cycle in
      let backoff0 = Option.value backoff ~default:(Program.period t.program) in
      let obs = Obs.Control.enabled () in
      if obs then Obs.Registry.incr obs_requests;
      (* Pieces survive re-tune-ins: dispersal is fixed per file, so an
         index collected before a timeout still counts afterwards. *)
      let collected = Hashtbl.create 16 in
      let rec attempt i at =
        match
          collect_once ?report t ~stored ~collected ~file ~start:at ~budget
            ~fault
        with
        | Ok bytes -> Ok bytes
        | Error (Reconstruct_failed _ as e) -> Error e
        | Error (Timeout _ as e) ->
            if i >= attempts then Error e
            else begin
              let pause = backoff0 * (1 lsl (i - 1)) in
              if obs then begin
                Obs.Registry.incr obs_retries;
                Obs.Trace.record
                  (Obs.Trace.Retry { file; attempt = i; backoff = pause })
              end;
              attempt (i + 1) (at + budget + pause)
            end
        | Error (Unknown_file _ as e) -> Error e
      in
      attempt 1 start
