(** Client cache management for broadcast disks (Acharya et al.,
    SIGMOD'95 — the client-side issue the paper's introduction raises).

    A mobile client has a small cache of pages; on a cache miss it must
    wait for the page to "go by" on the broadcast. The classic result is
    that pure access-probability caching (LRU-style) is wrong for Bdisks:
    a hot page that is also broadcast frequently is cheap to miss. The
    PIX policy caches by [P/X] — access probability over broadcast
    frequency — preferring pages that are {e hot but rarely broadcast}.

    The simulation uses page-granularity programs (one block per file);
    accesses are drawn from a Zipf distribution over page ids (id 0
    hottest). Time advances one slot per access when the client is idle;
    a miss advances time to the page's next transmission. *)

type policy =
  | Lru  (** evict the least recently used page *)
  | Lfu  (** evict the least frequently used page (running counts) *)
  | Pix  (** evict the smallest access-probability / broadcast-frequency *)

val pp_policy : Format.formatter -> policy -> unit

type stats = {
  accesses : int;
  hits : int;
  mean_latency : float;  (** slots per access, hits costing 0 *)
}

val hit_ratio : stats -> float

val zipf_weights : n:int -> theta:float -> float array
(** Normalized Zipf([theta]) access probabilities over [n] pages:
    weight of page [i] proportional to [1 / (i+1)^theta]. *)

val simulate :
  program:Pindisk.Program.t -> cache_slots:int -> policy:policy ->
  theta:float -> accesses:int -> seed:int -> unit -> stats
(** Runs one client. Pages are the program's files (each must have a
    single-block capacity; raises [Invalid_argument] otherwise — cache
    simulation is page-granularity by construction). [theta] is the Zipf
    skew over file ids sorted ascending. Deterministic in [seed]. *)
