module Program = Pindisk.Program

type summary = {
  trials : int;
  completed : int;
  missed_deadline : int;
  mean_latency : float;
  max_latency : int;
  min_latency : int;
  total_losses : int;
}

let pp_summary ppf s =
  Format.fprintf ppf
    "%d trials: %d completed, %d missed deadline, latency mean %.2f / min %d \
     / max %d, %d losses"
    s.trials s.completed s.missed_deadline s.mean_latency s.min_latency
    s.max_latency s.total_losses

let run ?max_slots ~program ~file ~needed ~deadline ~fault ~trials ~seed () =
  if trials < 1 then invalid_arg "Experiment.run: trials must be >= 1";
  let rng = Random.State.make [| seed; 0x51b |] in
  let cycle = Program.data_cycle program in
  let completed = ref 0 and missed = ref 0 in
  let sum_latency = ref 0 and max_latency = ref 0 and min_latency = ref max_int in
  let total_losses = ref 0 in
  for k = 0 to trials - 1 do
    let start = Random.State.int rng cycle in
    let outcome =
      Client.retrieve ?max_slots ~program ~file ~needed ~start
        ~fault:(fault ~seed:(Pindisk_util.Intmath.mix64 (seed + k))) ()
    in
    total_losses := !total_losses + outcome.Client.losses;
    (match outcome.Client.elapsed with
    | Some e ->
        incr completed;
        sum_latency := !sum_latency + e;
        if e > !max_latency then max_latency := e;
        if e < !min_latency then min_latency := e;
        if e > deadline then incr missed
    | None -> incr missed)
  done;
  {
    trials;
    completed = !completed;
    missed_deadline = !missed;
    mean_latency =
      (if !completed = 0 then Float.nan
       else float_of_int !sum_latency /. float_of_int !completed);
    max_latency = (if !completed = 0 then 0 else !max_latency);
    min_latency = (if !completed = 0 then 0 else !min_latency);
    total_losses = !total_losses;
  }

let miss_ratio s = float_of_int s.missed_deadline /. float_of_int s.trials
