(** Population simulation driven by the online dispatcher.

    {!Engine.run} retrieves each request independently against a
    materialized {!Pindisk.Program} — per request, it re-walks the slot
    axis through [Program.block_at], whose per-file prefix arrays cost
    O(files · period) memory. This engine instead sweeps the slot axis
    {e once} with a single {!Pindisk_pinwheel.Plan} dispatcher, carrying
    all in-flight requests along: block indices come from per-file
    occurrence counters (cycling each file's capacity, matching
    [Program.block_at] with zero phases), and each request still owns its
    independent fault process — request [k] gets
    [fault ~seed:(Intmath.mix64 (seed + k))], reset at its issue slot and
    advanced once per slot, exactly like {!Client.retrieve}.

    On a program built with [Program.make] from the plan's materialized
    schedule (zero phases), [run] returns a result {e equal} to
    {!Engine.run}'s — aggregation happens in trace order, so even the
    float accumulation order of the latency statistics matches. The test
    suite pins this equivalence.

    Observability (all under the [drive.*] namespace, recorded only when
    {!Pindisk_obs.Control.enabled}): [drive.requests] / [drive.completed]
    / [drive.missed] / [drive.losses] counters, the dispatch-latency
    histogram [drive.wait] (slots from issue to completion) with per-file
    mirrors [drive.wait.N] / [drive.miss.N], and [drive.slots] — the total
    slots dispatched by the sweep (one bulk add per run; the per-slot hot
    loop is never instrumented). *)

val occurrences_per_period :
  Pindisk_pinwheel.Plan.t -> (int, int) Hashtbl.t
(** Occurrences of each file in one plan period, computed by a one-period
    warm-up dispatch: O(period·log n) time, O(files) memory, no slot
    array. *)

val run :
  ?max_slots:int ->
  plan:Pindisk_pinwheel.Plan.t ->
  capacities:(int * int) list ->
  fault:(seed:int -> Fault.t) ->
  seed:int ->
  Workload.request list ->
  Engine.result
(** [run ~plan ~capacities ~fault ~seed trace] sweeps the slot axis once
    and retires every request. [max_slots] is each request's retrieval
    window (default [100 ·] the plan's data cycle, as for
    {!Client.retrieve}). Raises [Invalid_argument] on a request naming an
    unknown or never-broadcast file, [needed < 1] or beyond the file's
    capacity, or a negative issue slot. *)
