(** Population simulation driven by the online dispatcher.

    {!Engine.run} retrieves each request independently against a
    materialized {!Pindisk.Program} — per request, it re-walks the slot
    axis through [Program.block_at], whose per-file prefix arrays cost
    O(files · period) memory. This engine instead sweeps the slot axis
    {e once} with a single {!Pindisk_pinwheel.Plan} dispatcher, carrying
    all in-flight requests along: block indices come from per-file
    occurrence counters (cycling each file's capacity, matching
    [Program.block_at] with zero phases), and each request still owns its
    independent fault process — request [k] gets
    [fault ~seed:(Intmath.mix64 (seed + k))], reset at its issue slot and
    advanced once per slot, exactly like {!Client.retrieve}.

    On a program built with [Program.make] from the plan's materialized
    schedule (zero phases), [run] returns a result {e equal} to
    {!Engine.run}'s — aggregation happens in trace order via the shared
    {!Retire} fold, so even the float accumulation order of the latency
    statistics matches. The test suite pins this equivalence.

    Observability (all under the [drive.*] namespace, recorded only when
    {!Pindisk_obs.Control.enabled}): [drive.requests] / [drive.completed]
    / [drive.missed] / [drive.losses] counters, the dispatch-latency
    histogram [drive.wait] (slots from issue to completion) with per-file
    mirrors [drive.wait.N] / [drive.miss.N], and [drive.slots] — the total
    slots dispatched by the sweep (one bulk add per run; the per-slot hot
    loop is never instrumented). *)

type prep
(** The per-plan warm-up product: period, occurrences per file, and each
    file's sorted slot offsets within a period. Built by one
    O(period·log n) dispatch; reusable across any number of {!run} /
    {!Cohort.run} calls over the same plan, so repeated sweeps don't pay
    the warm-up again. *)

val prepare : Pindisk_pinwheel.Plan.t -> prep

val period : prep -> int

val occurrences : prep -> (int, int) Hashtbl.t
(** Occurrences of each file in one plan period. Shared — don't mutate. *)

val slot_offsets : prep -> int -> int array
(** Ascending slot offsets (in [[0, period)]) at which a file is
    broadcast; [[||]] for a file never broadcast. Shared — don't
    mutate. *)

val data_cycle : prep -> capacity:(int -> int) -> int
(** Slots after which the (occurrence count mod capacity) phase of every
    file realigns with slot 0 — the block-cycling period of the whole
    broadcast. [100 · data_cycle] is the default retrieval window. *)

val occurrences_per_period :
  Pindisk_pinwheel.Plan.t -> (int, int) Hashtbl.t
(** [occurrences (prepare plan)], for callers that only want the counts
    once. *)

val run :
  ?prep:prep ->
  ?max_slots:int ->
  plan:Pindisk_pinwheel.Plan.t ->
  capacities:(int * int) list ->
  fault:(seed:int -> Fault.t) ->
  seed:int ->
  Workload.request list ->
  Engine.result
(** [run ~plan ~capacities ~fault ~seed trace] sweeps the slot axis once
    and retires every request. [max_slots] is each request's retrieval
    window (default [100 ·] the plan's data cycle, as for
    {!Client.retrieve}). Pass [?prep] (from {!prepare} on the {e same}
    plan) to skip the per-call warm-up dispatch; a prep whose period
    disagrees with the plan raises. Raises [Invalid_argument] on a
    request naming an unknown or never-broadcast file, [needed < 1] or
    beyond the file's capacity, or a negative issue slot. *)
