module Program = Pindisk.Program

type spec = { file : int; needed : int; tolerate : int }

type outcome = {
  completed_at : int option;
  elapsed : int option;
  losses : int;
}

let validate program reads =
  if reads = [] then invalid_arg "Transaction: empty read set";
  let files = List.map (fun r -> r.file) reads in
  if List.length (List.sort_uniq compare files) <> List.length files then
    invalid_arg "Transaction: duplicate files";
  List.iter
    (fun r ->
      if r.needed < 1 then invalid_arg "Transaction: needed must be >= 1";
      if r.tolerate < 0 then invalid_arg "Transaction: negative tolerance";
      match Program.capacity program r.file with
      | exception Not_found -> invalid_arg "Transaction: file not in program"
      | cap ->
          if r.needed > cap then
            invalid_arg "Transaction: needed exceeds the file's capacity")
    reads

let retrieve ?max_slots ~program ~reads ~start ~fault () =
  validate program reads;
  if start < 0 then invalid_arg "Transaction: negative start";
  let max_slots =
    match max_slots with
    | Some m -> m
    | None -> 100 * Program.data_cycle program
  in
  let wanted = Hashtbl.create 8 in
  List.iter (fun r -> Hashtbl.replace wanted r.file (r.needed, Hashtbl.create 8)) reads;
  let outstanding = ref (List.length reads) in
  let losses = ref 0 in
  Fault.reset_to fault start;
  let t = ref start in
  let finish = ref None in
  while !finish = None && !t - start < max_slots do
    let lost = Fault.advance fault in
    (match Program.block_at program !t with
    | Some (f, idx) -> (
        match Hashtbl.find_opt wanted f with
        | Some (needed, got) ->
            if lost then incr losses
            else if Hashtbl.length got < needed && not (Hashtbl.mem got idx)
            then begin
              Hashtbl.replace got idx ();
              if Hashtbl.length got = needed then begin
                decr outstanding;
                if !outstanding = 0 then finish := Some !t
              end
            end
        | None -> ())
    | None -> ());
    incr t
  done;
  match !finish with
  | Some slot ->
      { completed_at = Some slot; elapsed = Some (slot - start + 1); losses = !losses }
  | None -> { completed_at = None; elapsed = None; losses = !losses }

let worst_case program ~reads =
  validate program reads;
  let cycle = Program.data_cycle program in
  (* For each tune-in slot, the transaction finishes when its slowest read
     does; each read is attacked independently by its own adversary. The
     worst tune-in slots are those right after any occurrence of any read
     file (plus slot 0), as waiting can only shrink elsewhere. *)
  let starts = ref [ 0 ] in
  for t = 0 to cycle - 1 do
    match Program.block_at program t with
    | Some (f, _) when List.exists (fun r -> r.file = f) reads ->
        starts := (t + 1) mod cycle :: !starts
    | Some _ | None -> ()
  done;
  let starts = List.sort_uniq compare !starts in
  List.fold_left
    (fun worst start ->
      let elapsed =
        List.fold_left
          (fun acc r ->
            max acc
              (Adversary.retrieval_from program ~file:r.file ~needed:r.needed
                 ~errors:r.tolerate ~start))
          0 reads
      in
      max worst elapsed)
    0 starts

let guaranteed program ~reads ~deadline = worst_case program ~reads <= deadline

let worst_case_shared program ~reads ~errors =
  if errors < 0 then invalid_arg "Transaction: negative errors";
  worst_case program
    ~reads:(List.map (fun r -> { r with tolerate = errors }) reads)
