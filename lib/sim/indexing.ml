module Program = Pindisk.Program
module Schedule = Pindisk_pinwheel.Schedule
module Intmath = Pindisk_util.Intmath

let with_index prog ~copies ~index_slots =
  if copies < 1 then invalid_arg "Indexing.with_index: copies must be >= 1";
  if index_slots < 1 then invalid_arg "Indexing.with_index: index_slots must be >= 1";
  let p = Program.period prog in
  if p mod copies <> 0 then
    invalid_arg "Indexing.with_index: copies must divide the period";
  let index_file = 1 + List.fold_left max (-1) (Program.files prog) in
  let segment = p / copies in
  let layout = ref [] in
  (* Build back-to-front: for each segment, an index header then the
     segment's data slots. *)
  for seg = copies - 1 downto 0 do
    let data = ref [] in
    for t = ((seg + 1) * segment) - 1 downto seg * segment do
      data :=
        (match Program.block_at prog t with
        | Some (f, k) -> (f, k)
        | None -> (Schedule.idle, 0))
        :: !data
    done;
    let header = List.init index_slots (fun k -> (index_file, k)) in
    layout := header @ !data @ !layout
  done;
  let capacities =
    (index_file, index_slots)
    :: List.map (fun f -> (f, Program.capacity prog f)) (Program.files prog)
  in
  (Program.of_layout !layout ~capacities, index_file)

type metrics = { access_time : float; tuning_time : float }

(* Slots (inclusive) from [t] until [needed] distinct blocks of [file]
   have been received, plus the number of file-transmission slots touched
   on the way (the minimal awake slots to grab them, excluding waiting). *)
let time_to_collect prog ~file ~needed t =
  let cycle = Program.data_cycle prog in
  let collected = Hashtbl.create 8 in
  let d = ref 0 and touched = ref 0 in
  let finish = ref None in
  while !finish = None do
    if !d > (needed + 1) * (cycle + 1) then
      invalid_arg "Indexing: file too rare to collect";
    (match Program.block_at prog (t + !d) with
    | Some (f, idx) when f = file ->
        if not (Hashtbl.mem collected idx) then begin
          Hashtbl.replace collected idx ();
          incr touched;
          if Hashtbl.length collected >= needed then finish := Some (!d + 1)
        end
    | Some _ | None -> ());
    incr d
  done;
  (Option.get !finish, !touched)

let self_identifying_metrics prog ~file ~needed =
  if needed < 1 then invalid_arg "Indexing: needed must be >= 1";
  let cycle = Program.data_cycle prog in
  let total = ref 0 in
  for t = 0 to cycle - 1 do
    let access, _ = time_to_collect prog ~file ~needed t in
    total := !total + access
  done;
  let mean = float_of_int !total /. float_of_int cycle in
  (* Listening continuously: every waiting slot costs energy. *)
  { access_time = mean; tuning_time = mean }

let indexed_retrieve_lossy ?max_slots prog ~index_file ~index_slots ~file
    ~needed ~start ~fault =
  if needed < 1 then invalid_arg "Indexing: needed must be >= 1";
  if start < 0 then invalid_arg "Indexing: negative start";
  let limit =
    match max_slots with
    | Some m -> start + m
    | None -> start + (100 * Program.data_cycle prog)
  in
  Fault.reset_to fault start;
  (* The fault process must advance once per slot regardless of whether
     the radio is on; advance it lazily up to an absolute slot. *)
  let fault_at = ref start and last_verdict = ref false in
  let lost_at t =
    while !fault_at <= t do
      last_verdict := Fault.advance fault;
      incr fault_at
    done;
    !last_verdict
  in
  let collected = Hashtbl.create 8 in
  let awake = ref 0 in
  let exception Done of int in
  let exception Out_of_budget in
  try
    let t = ref start in
    (* Probe one slot to learn the offset of the next index. *)
    incr awake;
    ignore (lost_at !t);
    incr t;
    while true do
      (* Wait (dozing) for the start of the next index segment. *)
      let idx_start = ref !t in
      (try
         while true do
           if !idx_start > limit then raise Out_of_budget;
           (match Program.block_at prog !idx_start with
           | Some (f, 0) when f = index_file -> raise Exit
           | Some _ | None -> ());
           incr idx_start
         done
       with Exit -> ());
      (* Read the index copy: every slot awake; a loss anywhere in it
         forces a retry at the next copy. *)
      let index_ok = ref true in
      for k = 0 to index_slots - 1 do
        incr awake;
        if lost_at (!idx_start + k) then index_ok := false
      done;
      t := !idx_start + index_slots;
      if !index_ok then
        (* Armed: the program is cyclic, so one good index describes it
           forever; wake exactly at the file's transmissions until enough
           distinct blocks get through. A ruined data reception just costs
           the next wake-up. *)
        while true do
          if !t > limit then raise Out_of_budget;
          (match Program.block_at prog !t with
          | Some (f, idx) when f = file ->
              incr awake;
              if (not (lost_at !t)) && not (Hashtbl.mem collected idx) then begin
                Hashtbl.replace collected idx ();
                if Hashtbl.length collected >= needed then raise (Done !t)
              end
          | Some _ | None -> ());
          incr t
        done
    done;
    None
  with
  | Done finish ->
      Some
        {
          access_time = float_of_int (finish - start + 1);
          tuning_time = float_of_int !awake;
        }
  | Out_of_budget -> None

let indexed_metrics prog ~index_file ~index_slots ~file ~needed =
  if needed < 1 then invalid_arg "Indexing: needed must be >= 1";
  let cycle = Program.data_cycle prog in
  (* Next start of an index segment at or after t: the first slot carrying
     index block 0. *)
  let next_index t =
    let rec go d =
      if d > cycle then invalid_arg "Indexing: no index found"
      else
        match Program.block_at prog (t + d) with
        | Some (f, 0) when f = index_file -> t + d
        | Some _ | None -> go (d + 1)
    in
    go 0
  in
  let total_access = ref 0 and total_tuning = ref 0 in
  for t = 0 to cycle - 1 do
    (* Probe one slot at t; it reveals the offset of the next index. *)
    let idx_start = next_index (t + 1) in
    let after_index = idx_start + index_slots in
    (* Armed with the index, wake exactly for the file's transmissions. *)
    let extra, touched = time_to_collect prog ~file ~needed after_index in
    let access = after_index + extra - t in
    let tuning = 1 + index_slots + touched in
    total_access := !total_access + access;
    total_tuning := !total_tuning + tuning
  done;
  {
    access_time = float_of_int !total_access /. float_of_int cycle;
    tuning_time = float_of_int !total_tuning /. float_of_int cycle;
  }
