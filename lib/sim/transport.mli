(** End-to-end broadcast transport: real bytes over the simulated channel.

    {!Client} tracks block {e indices}; this module closes the loop with
    actual content. The server stores each file's bytes, disperses them
    with IDA into as many pieces as the program's capacity for the file,
    and puts the pieces on the air per the broadcast program; a receiving
    client collects pieces (losing some to the fault process) and
    reconstructs the original bytes with the IDA inverse transformation —
    the full pipeline of the paper's Figure 4 running over the programs of
    Section 3. *)

type t

val create : program:Pindisk.Program.t -> (int * int * bytes) list -> t
(** [create ~program files] takes [(file_id, m, content)] triples: the
    content is dispersed with [m] source blocks into [capacity program
    file_id] pieces (so any [m] of them reconstruct). Every file of the
    program must be given content, with [1 <= m <= capacity]. *)

val program : t -> Pindisk.Program.t

val on_air : t -> int -> (int * Pindisk_ida.Ida.piece) option
(** [on_air t slot] is the (file, dispersed piece) broadcast in that slot,
    or [None] for an idle slot. *)

val source_blocks : t -> int -> int
(** The [m] a client needs for the file; raises [Not_found] for unknown
    files. *)

val retrieve :
  ?max_slots:int -> ?report:(slot:int -> file:int -> lost:bool -> unit) ->
  t -> file:int -> start:int -> fault:Fault.t -> unit ->
  bytes option
(** Collect pieces of [file] from slot [start] under the fault process
    until [m] distinct pieces arrive, then reconstruct and return the
    original bytes. [None] if the slot budget (default 100 data cycles)
    runs out first. The result, when present, is bit-exact equal to the
    stored content (the tests assert it). [report], when given, receives
    every busy slot's reception outcome — the feedback path a server-side
    loss estimator (e.g. [Pindisk_adapt.Estimator]) consumes. *)
