(** End-to-end broadcast transport: real bytes over the simulated channel.

    {!Client} tracks block {e indices}; this module closes the loop with
    actual content. The server stores each file's bytes, disperses them
    with IDA into as many pieces as the program's capacity for the file,
    and puts the pieces on the air per the broadcast program; a receiving
    client collects pieces (losing some to the fault process) and
    reconstructs the original bytes with the IDA inverse transformation —
    the full pipeline of the paper's Figure 4 running over the programs of
    Section 3. *)

type t

val create : program:Pindisk.Program.t -> (int * int * bytes) list -> t
(** [create ~program files] takes [(file_id, m, content)] triples: the
    content is dispersed with [m] source blocks into [capacity program
    file_id] pieces (so any [m] of them reconstruct). Every file of the
    program must be given content, with [1 <= m <= capacity]. *)

val program : t -> Pindisk.Program.t

val on_air : t -> int -> (int * Pindisk_ida.Ida.piece) option
(** [on_air t slot] is the (file, dispersed piece) broadcast in that slot,
    or [None] for an idle slot. *)

val source_blocks : t -> int -> int
(** The [m] a client needs for the file; raises [Invalid_argument] naming
    the file id for unknown files (see {!find_source_blocks} for the
    non-raising variant). *)

val find_source_blocks : t -> int -> int option
(** The [m] a client needs for the file, or [None] for unknown files. *)

(** {1 Typed retrieval errors}

    The retrieve paths distinguish the three ways a retrieval goes wrong,
    so callers can react differently: a {!Timeout} is transient (re-tune
    in later — {!retrieve_resilient} automates that), an {!Unknown_file}
    is a caller bug, and a {!Reconstruct_failed} means the collected
    pieces were inconsistent (corruption — there is no point retrying with
    the same pieces). *)

type error =
  | Timeout of { slots : int; collected : int; needed : int }
      (** The slot budget ran out with only [collected] of the [needed]
          distinct pieces received. *)
  | Unknown_file of int  (** The file id is not stored by this server. *)
  | Reconstruct_failed of string
      (** IDA reconstruction rejected the collected pieces. *)

val pp_error : Format.formatter -> error -> unit

(** {1 Online streaming}

    The eager air path ({!on_air}) asks [Program.block_at] for each slot,
    which needs the materialized schedule and its per-file prefix arrays.
    A {!streamer} instead airs the program straight from a
    {!Pindisk_pinwheel.Plan} dispatcher: per-file occurrence counters
    cycle each file's pieces, so for a plan that materializes to the
    program's schedule (and zero phases) the streamed sequence equals
    {!on_air} slot for slot — with O(files + tasks) state. *)

type streamer

val streamer : ?validate:bool -> t -> Pindisk_pinwheel.Plan.t -> streamer
(** A streamer positioned at slot 0. The plan should materialize to the
    transport's program schedule (the tests pin the equivalence). By
    default this is not checked — a mismatched plan simply airs a
    different program; with [~validate:true] the plan's first hyperperiod
    is cross-checked against the program's schedule (and the plan period
    must be a multiple of the program period), raising [Invalid_argument]
    on the first mismatching slot instead of airing it. *)

val streamer_slot : streamer -> int
(** The next slot {!stream_next} will air. *)

val stream_next : streamer -> (int * Pindisk_ida.Ida.piece) option
(** The (file, piece) aired in the current slot ([None] when idle);
    advances the streamer. Matches [on_air t slot] for zero-phase
    programs. *)

val retrieve_streamed :
  ?max_slots:int -> streamer -> file:int -> fault:Fault.t -> unit ->
  bytes option
(** Like {!retrieve}, but tuning in at the streamer's {e current} position
    and consuming {!stream_next} — the client and the server share one
    online dispatch, no schedule materialized. The streamer advances past
    the slots consumed. *)

val retrieve_result :
  ?max_slots:int -> ?report:(slot:int -> file:int -> lost:bool -> unit) ->
  t -> file:int -> start:int -> fault:Fault.t -> unit ->
  (bytes, error) result
(** {!retrieve} with a typed verdict: [Ok bytes] on reconstruction,
    [Error] describing why the retrieval failed otherwise. Never raises
    for unknown files (that is [Error (Unknown_file _)]); still raises
    [Invalid_argument] for a negative [start]. *)

val retrieve_resilient :
  ?attempts:int -> ?backoff:int -> ?max_slots:int ->
  ?report:(slot:int -> file:int -> lost:bool -> unit) ->
  t -> file:int -> start:int -> fault:Fault.t -> unit ->
  (bytes, error) result
(** Bounded-retry retrieval: tune in at [start] with a per-attempt budget
    of [max_slots] (default one data cycle); on timeout, back off
    exponentially — attempt [i] waits [backoff * 2^(i-1)] slots (default
    [backoff] is one broadcast period) — and re-tune in, up to [attempts]
    (default 4) attempts in total. Pieces collected before a timeout are
    kept across re-tune-ins (dispersal is fixed), so attempts make
    monotone progress. Each re-tune-in records an [Obs.Trace.Retry] span
    and bumps the [sim.transport.retries] counter. *)

val retrieve :
  ?max_slots:int -> ?report:(slot:int -> file:int -> lost:bool -> unit) ->
  t -> file:int -> start:int -> fault:Fault.t -> unit ->
  bytes option
(** Collect pieces of [file] from slot [start] under the fault process
    until [m] distinct pieces arrive, then reconstruct and return the
    original bytes. [None] if the slot budget (default 100 data cycles)
    runs out first. The result, when present, is bit-exact equal to the
    stored content (the tests assert it). [report], when given, receives
    every busy slot's reception outcome — the feedback path a server-side
    loss estimator (e.g. [Pindisk_adapt.Estimator]) consumes. *)
