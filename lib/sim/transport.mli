(** End-to-end broadcast transport: real bytes over the simulated channel.

    {!Client} tracks block {e indices}; this module closes the loop with
    actual content. The server stores each file's bytes, disperses them
    with IDA into as many pieces as the program's capacity for the file,
    and puts the pieces on the air per the broadcast program; a receiving
    client collects pieces (losing some to the fault process) and
    reconstructs the original bytes with the IDA inverse transformation —
    the full pipeline of the paper's Figure 4 running over the programs of
    Section 3. *)

type t

val create : program:Pindisk.Program.t -> (int * int * bytes) list -> t
(** [create ~program files] takes [(file_id, m, content)] triples: the
    content is dispersed with [m] source blocks into [capacity program
    file_id] pieces (so any [m] of them reconstruct). Every file of the
    program must be given content, with [1 <= m <= capacity]. *)

val program : t -> Pindisk.Program.t

val on_air : t -> int -> (int * Pindisk_ida.Ida.piece) option
(** [on_air t slot] is the (file, dispersed piece) broadcast in that slot,
    or [None] for an idle slot. *)

val source_blocks : t -> int -> int
(** The [m] a client needs for the file; raises [Not_found] for unknown
    files. *)

(** {1 Online streaming}

    The eager air path ({!on_air}) asks [Program.block_at] for each slot,
    which needs the materialized schedule and its per-file prefix arrays.
    A {!streamer} instead airs the program straight from a
    {!Pindisk_pinwheel.Plan} dispatcher: per-file occurrence counters
    cycle each file's pieces, so for a plan that materializes to the
    program's schedule (and zero phases) the streamed sequence equals
    {!on_air} slot for slot — with O(files + tasks) state. *)

type streamer

val streamer : t -> Pindisk_pinwheel.Plan.t -> streamer
(** A streamer positioned at slot 0. The plan should materialize to the
    transport's program schedule (the tests pin the equivalence); this is
    not checked here — a mismatched plan simply airs a different
    program. *)

val streamer_slot : streamer -> int
(** The next slot {!stream_next} will air. *)

val stream_next : streamer -> (int * Pindisk_ida.Ida.piece) option
(** The (file, piece) aired in the current slot ([None] when idle);
    advances the streamer. Matches [on_air t slot] for zero-phase
    programs. *)

val retrieve_streamed :
  ?max_slots:int -> streamer -> file:int -> fault:Fault.t -> unit ->
  bytes option
(** Like {!retrieve}, but tuning in at the streamer's {e current} position
    and consuming {!stream_next} — the client and the server share one
    online dispatch, no schedule materialized. The streamer advances past
    the slots consumed. *)

val retrieve :
  ?max_slots:int -> ?report:(slot:int -> file:int -> lost:bool -> unit) ->
  t -> file:int -> start:int -> fault:Fault.t -> unit ->
  bytes option
(** Collect pieces of [file] from slot [start] under the fault process
    until [m] distinct pieces arrive, then reconstruct and return the
    original bytes. [None] if the slot budget (default 100 data cycles)
    runs out first. The result, when present, is bit-exact equal to the
    stored content (the tests assert it). [report], when given, receives
    every busy slot's reception outcome — the feedback path a server-side
    loss estimator (e.g. [Pindisk_adapt.Estimator]) consumes. *)
