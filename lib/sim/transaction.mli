(** Read-only transactions over a broadcast disk.

    The paper's motivating clients run {e transactions} — "active
    transactions that are fired up to warn soldiers" — that need several
    data items together, under one firm deadline. A broadcast client has
    a single receiver but can harvest blocks of {e all} its files in one
    pass ("as they go by"), so a transaction's retrieval time is the
    maximum, not the sum, of its reads — and the worst case must be taken
    over tune-in slots {e jointly}, which is strictly tighter than
    combining per-file worst cases. *)

type spec = { file : int; needed : int; tolerate : int }
(** One read: collect [needed] distinct blocks of [file], surviving up to
    [tolerate] ruined receptions of that file. *)

type outcome = {
  completed_at : int option;
  elapsed : int option;  (** tune-in through last completion, inclusive *)
  losses : int;
}

val retrieve :
  ?max_slots:int -> program:Pindisk.Program.t -> reads:spec list ->
  start:int -> fault:Fault.t -> unit -> outcome
(** Simulate one client executing the transaction: a single fault process
    governs the channel; every on-air block of any read's file is
    harvested. Raises [Invalid_argument] on an empty read set, duplicate
    files, or a read exceeding its file's capacity. *)

val worst_case :
  Pindisk.Program.t -> reads:spec list -> int
(** Exact worst case over tune-in slots of the transaction's retrieval
    time, with each read [r] attacked by its own budget of
    [r.tolerate] adversarial errors (adversaries on different files are
    independent, which is exact because a ruined reception of one file
    never helps against another). Subject to {!Adversary.max_capacity}
    per file. *)

val guaranteed : Pindisk.Program.t -> reads:spec list -> deadline:int -> bool
(** [worst_case <= deadline]. *)

val worst_case_shared :
  Pindisk.Program.t -> reads:spec list -> errors:int -> int
(** Worst case when the adversary has one {e shared} budget of [errors]
    to distribute across the reads (per-read [tolerate] fields are
    ignored). Because the transaction finishes with its slowest read,
    splitting the budget never beats concentrating it on the read it
    hurts most, so this is exact and cheap: the maximum over tune-in
    slots and reads of the single-file worst case with the full
    budget. *)
