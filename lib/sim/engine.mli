(** Population-scale simulation: run a request trace against a program.

    Requests are independent clients (broadcast reception does not
    contend), so the engine maps the trace through {!Client.retrieve},
    each request with its own deterministic fault process, and aggregates
    global and per-file statistics with percentiles — the measurement
    harness behind the program-comparison experiments. *)

type file_stats = Retire.file_stats = {
  file : int;
  requests : int;
  missed : int;  (** late or never completed *)
  latency : Pindisk_util.Stats.t;  (** completed retrievals only *)
}

type result = Retire.result = {
  requests : int;
  completed : int;
  missed : int;
  latency : Pindisk_util.Stats.t;
  losses : int;
  per_file : file_stats list;  (** ascending by file id *)
}

val miss_ratio : result -> float

val file_miss_ratio : file_stats -> float
(** [missed / requests] for one file; [0.0] when the file saw no
    requests. Degradation experiments compare programs across workload
    sizes, so the ratio — not the raw count — is the comparable number. *)

val pp_file_stats : Format.formatter -> file_stats -> unit
(** "file F: N requests, M missed (R%)". *)

val run :
  ?max_slots:int -> program:Pindisk.Program.t ->
  fault:(seed:int -> Fault.t) -> seed:int -> Workload.request list -> result
(** [run ~program ~fault ~seed trace] executes every request; request [k]
    gets the fault process [fault ~seed:(Intmath.mix64 (seed + k))] — the
    splitmix64 finalizer decorrelates adjacent requests' fault streams,
    which plain [seed + k] does not. *)

val pp_result : Format.formatter -> result -> unit
(** The global summary followed by one {!pp_file_stats} line per file,
    each with its per-file miss ratio. *)
