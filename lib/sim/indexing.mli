(** Air indexing versus self-identifying blocks (the paper's footnote 3).

    The paper assumes broadcast blocks are {e self-identifying}; the
    alternative it mentions — "broadcast a directory (or index) at the
    beginning of each broadcast period" — is the classic (1,m) indexing of
    Imielinski, Viswanathan & Badrinath (SIGMOD'94): interleave [m] copies
    of an index segment into the period so a dozing client can wake, read
    the next index, and sleep until its page's slot.

    Two metrics, per the classic work:
    - {e access time}: slots from tune-in until the wanted block has been
      received;
    - {e tuning time}: slots the receiver is actually awake (the energy
      cost). With self-identifying blocks the client must listen
      continuously, so tuning = access; with an index the client probes
      one slot, sleeps to the next index, reads it, and sleeps to the
      target (every data slot is assumed to carry the offset of the next
      index, as in the original protocol).

    The index copies are inserted as a pseudo-file, so the transformed
    program is a regular {!Pindisk.Program.t} (the index file's id is
    returned) — at the price of a longer period: indexing trades access
    time for tuning time; the paper's fault-tolerance argument against it
    (losing an index block stalls everyone) shows up as the index being a
    single point of failure in the loss simulation. *)

val with_index :
  Pindisk.Program.t -> copies:int -> index_slots:int ->
  Pindisk.Program.t * int
(** [with_index p ~copies ~index_slots] inserts [copies] index segments of
    [index_slots] slots, evenly spaced through the period; returns the new
    program and the index pseudo-file id (one above the largest file id).
    Raises [Invalid_argument] when [copies < 1], [index_slots < 1] or the
    period is not divisible by [copies]. *)

type metrics = { access_time : float; tuning_time : float }
(** Mean over all tune-in slots, in slots of the (possibly transformed)
    program. *)

val self_identifying_metrics :
  Pindisk.Program.t -> file:int -> needed:int -> metrics
(** Continuous listening: access = tuning = mean time to collect [needed]
    distinct blocks of the file. *)

val indexed_metrics :
  Pindisk.Program.t -> index_file:int -> index_slots:int -> file:int ->
  needed:int -> metrics
(** The (1,m) protocol on a program produced by {!with_index}: probe one
    slot, doze to the next index segment, read it, then doze and wake
    exactly for the file's next [needed] transmissions. *)

val indexed_retrieve_lossy :
  ?max_slots:int -> Pindisk.Program.t -> index_file:int -> index_slots:int ->
  file:int -> needed:int -> start:int -> fault:Fault.t -> metrics option
(** The same protocol on a lossy channel — the case the paper's footnote
    3 worries about. A ruined {e data} reception costs one more wake-up; a
    ruined {e index} reception is worse: the dozing client must stay with
    the channel to the next index copy before it can plan again. Losses
    hit receptions the client is awake for (dozing slots can't be lost —
    the radio is off). [None] if [max_slots] (default 100 data cycles)
    elapses. *)
