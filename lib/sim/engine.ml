module Stats = Pindisk_util.Stats
module Obs = Pindisk_obs

let obs_requests = Obs.Registry.counter "engine.requests"
let obs_completed = Obs.Registry.counter "engine.completed"
let obs_missed = Obs.Registry.counter "engine.missed"
let obs_losses = Obs.Registry.counter "engine.losses"
let obs_wait = Obs.Registry.histogram "engine.wait"

(* Per-file wait histograms and miss counters, interned by name so they
   mirror [file_stats] one-to-one; the reconciliation test asserts the
   aggregates agree exactly with the returned result. *)
let obs_file_wait f = Obs.Registry.histogram (Printf.sprintf "engine.wait.%d" f)
let obs_file_miss f = Obs.Registry.counter (Printf.sprintf "engine.miss.%d" f)

type file_stats = {
  file : int;
  requests : int;
  missed : int;
  latency : Stats.t;
}

type result = {
  requests : int;
  completed : int;
  missed : int;
  latency : Stats.t;
  losses : int;
  per_file : file_stats list;
}

let miss_ratio r =
  if r.requests = 0 then 0.0
  else float_of_int r.missed /. float_of_int r.requests

let file_miss_ratio (f : file_stats) =
  if f.requests = 0 then 0.0
  else float_of_int f.missed /. float_of_int f.requests

let run ?max_slots ~program ~fault ~seed trace =
  let global = Stats.create () in
  let per_file : (int, int ref * int ref * Stats.t) Hashtbl.t =
    Hashtbl.create 8
  in
  let file_entry f =
    match Hashtbl.find_opt per_file f with
    | Some e -> e
    | None ->
        let e = (ref 0, ref 0, Stats.create ()) in
        Hashtbl.add per_file f e;
        e
  in
  let obs = Obs.Control.enabled () in
  let completed = ref 0 and missed = ref 0 and losses = ref 0 in
  List.iteri
    (fun k (r : Workload.request) ->
      let outcome =
        Client.retrieve ?max_slots ~program ~file:r.Workload.file
          ~needed:r.Workload.needed ~start:r.Workload.issued
          ~fault:(fault ~seed:(Pindisk_util.Intmath.mix64 (seed + k))) ()
      in
      let reqs, miss, lat = file_entry r.Workload.file in
      incr reqs;
      losses := !losses + outcome.Client.losses;
      if obs then Obs.Registry.incr obs_requests;
      let record_miss () =
        incr missed;
        incr miss;
        if obs then begin
          Obs.Registry.incr obs_missed;
          Obs.Registry.incr (obs_file_miss r.Workload.file)
        end
      in
      match outcome.Client.elapsed with
      | Some e ->
          incr completed;
          Stats.add_int global e;
          Stats.add_int lat e;
          if obs then begin
            Obs.Registry.incr obs_completed;
            Obs.Histogram.observe obs_wait e;
            Obs.Histogram.observe (obs_file_wait r.Workload.file) e
          end;
          if e > r.Workload.deadline then record_miss ()
      | None -> record_miss ())
    trace;
  if obs then Obs.Registry.add obs_losses !losses;
  {
    requests = List.length trace;
    completed = !completed;
    missed = !missed;
    latency = global;
    losses = !losses;
    per_file =
      Hashtbl.fold
        (fun file (reqs, miss, lat) acc ->
          { file; requests = !reqs; missed = !miss; latency = lat } :: acc)
        per_file []
      |> List.sort (fun a b -> compare a.file b.file);
  }

let pp_file_stats ppf (f : file_stats) =
  Format.fprintf ppf "file %d: %d requests, %d missed (%.1f%%)" f.file
    f.requests f.missed
    (100.0 *. file_miss_ratio f)

let pp_result ppf r =
  Format.fprintf ppf "%d requests, %d completed, %d missed (%.1f%%); latency %a"
    r.requests r.completed r.missed
    (100.0 *. miss_ratio r)
    Stats.pp_summary r.latency;
  List.iter
    (fun f -> Format.fprintf ppf "@.  %a" pp_file_stats f)
    r.per_file
