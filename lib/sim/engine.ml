module Stats = Pindisk_util.Stats

(* Handles hoisted so repeated runs reuse the interned metrics; the
   per-file mirrors are interned on first touch inside the fold. *)
let sinks = Retire.sinks ~prefix:"engine"

type file_stats = Retire.file_stats = {
  file : int;
  requests : int;
  missed : int;
  latency : Stats.t;
}

type result = Retire.result = {
  requests : int;
  completed : int;
  missed : int;
  latency : Stats.t;
  losses : int;
  per_file : file_stats list;
}

let miss_ratio r =
  if r.requests = 0 then 0.0
  else float_of_int r.missed /. float_of_int r.requests

let file_miss_ratio (f : file_stats) =
  if f.requests = 0 then 0.0
  else float_of_int f.missed /. float_of_int f.requests

let run ?max_slots ~program ~fault ~seed trace =
  let rows =
    List.mapi
      (fun k (r : Workload.request) ->
        let outcome =
          Client.retrieve ?max_slots ~program ~file:r.Workload.file
            ~needed:r.Workload.needed ~start:r.Workload.issued
            ~fault:(fault ~seed:(Pindisk_util.Intmath.mix64 (seed + k))) ()
        in
        {
          Retire.file = r.Workload.file;
          deadline = r.Workload.deadline;
          elapsed = outcome.Client.elapsed;
          weight = 1;
          losses = outcome.Client.losses;
        })
      trace
  in
  Retire.retire ~sinks rows

let pp_file_stats ppf (f : file_stats) =
  Format.fprintf ppf "file %d: %d requests, %d missed (%.1f%%)" f.file
    f.requests f.missed
    (100.0 *. file_miss_ratio f)

let pp_result ppf r =
  Format.fprintf ppf "%d requests, %d completed, %d missed (%.1f%%); latency %a"
    r.requests r.completed r.missed
    (100.0 *. miss_ratio r)
    Stats.pp_summary r.latency;
  List.iter
    (fun f -> Format.fprintf ppf "@.  %a" pp_file_stats f)
    r.per_file
