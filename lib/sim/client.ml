module Program = Pindisk.Program

type outcome = {
  completed_at : int option;
  elapsed : int option;
  receptions : int;
  losses : int;
}

let pp_outcome ppf o =
  match o.completed_at with
  | Some t ->
      Format.fprintf ppf "completed at slot %d (%d slots, %d received, %d lost)"
        t
        (match o.elapsed with Some e -> e | None -> 0)
        o.receptions o.losses
  | None ->
      Format.fprintf ppf "incomplete (%d received, %d lost)" o.receptions o.losses

let retrieve ?max_slots ?report ~program ~file ~needed ~start ~fault () =
  if start < 0 then invalid_arg "Client.retrieve: negative start";
  if needed < 1 then invalid_arg "Client.retrieve: needed must be >= 1";
  (match Program.capacity program file with
  | exception Not_found -> invalid_arg "Client.retrieve: file not in program"
  | cap ->
      if needed > cap then
        invalid_arg "Client.retrieve: needed exceeds the file's capacity");
  if Program.occurrences_per_period program file = 0 then
    invalid_arg "Client.retrieve: file never broadcast";
  let max_slots =
    match max_slots with
    | Some m -> m
    | None -> 100 * Program.data_cycle program
  in
  Fault.reset_to fault start;
  let collected = Hashtbl.create 16 in
  let receptions = ref 0 and losses = ref 0 in
  let result = ref None in
  let t = ref start in
  while !result = None && !t - start < max_slots do
    let lost = Fault.advance fault in
    (match Program.block_at program !t with
    | Some (f, idx) ->
        (* Feedback path: the client observes every busy slot's reception
           outcome, not only its own file's, and reports it upstream. *)
        (match report with
        | Some fn -> fn ~slot:!t ~file:f ~lost
        | None -> ());
        if f = file then
          if lost then incr losses
          else begin
            if not (Hashtbl.mem collected idx) then Hashtbl.replace collected idx ();
            incr receptions;
            if Hashtbl.length collected >= needed then result := Some !t
          end
    | None -> ());
    incr t
  done;
  match !result with
  | Some slot ->
      {
        completed_at = Some slot;
        elapsed = Some (slot - start + 1);
        receptions = !receptions;
        losses = !losses;
      }
  | None ->
      { completed_at = None; elapsed = None; receptions = !receptions; losses = !losses }

let deadline_met o ~deadline =
  match o.elapsed with Some e -> e <= deadline | None -> false
