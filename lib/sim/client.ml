module Program = Pindisk.Program
module Obs = Pindisk_obs

let obs_requests = Obs.Registry.counter "sim.client.requests"
let obs_completed = Obs.Registry.counter "sim.client.completed"
let obs_receptions = Obs.Registry.counter "sim.client.receptions"
let obs_losses = Obs.Registry.counter "sim.client.losses"
let obs_wait = Obs.Registry.histogram "sim.client.wait"

type outcome = {
  completed_at : int option;
  elapsed : int option;
  receptions : int;
  losses : int;
}

let pp_outcome ppf o =
  match o.completed_at with
  | Some t ->
      Format.fprintf ppf "completed at slot %d (%d slots, %d received, %d lost)"
        t
        (match o.elapsed with Some e -> e | None -> 0)
        o.receptions o.losses
  | None ->
      Format.fprintf ppf "incomplete (%d received, %d lost)" o.receptions o.losses

type error =
  | Unknown_file
  | Never_broadcast
  | Needed_exceeds_capacity of int
  | Bad_request of string

let error_message = function
  | Unknown_file -> "file not in program"
  | Never_broadcast -> "file never broadcast"
  | Needed_exceeds_capacity _ -> "needed exceeds the file's capacity"
  | Bad_request m -> m

let pp_error ppf e = Format.pp_print_string ppf (error_message e)

(* The retrieval loop proper; inputs are validated by the entry points
   below. *)
let retrieve_loop ?max_slots ?report ~program ~file ~needed ~start ~fault () =
  let max_slots =
    match max_slots with
    | Some m -> m
    | None -> 100 * Program.data_cycle program
  in
  Fault.reset_to fault start;
  let obs = Obs.Control.enabled () in
  if obs then Obs.Registry.incr obs_requests;
  (* Fault bursts: runs of >= 2 consecutive lost busy slots, traced as one
     span anchored at the run's first slot. Flushed on the next delivered
     busy slot and once more at the end of the retrieval window. *)
  let burst_start = ref 0 and burst_len = ref 0 in
  let flush_burst () =
    if obs && !burst_len >= 2 then
      Obs.Trace.record
        (Obs.Trace.Fault_burst { slot = !burst_start; length = !burst_len });
    burst_len := 0
  in
  let collected = Hashtbl.create 16 in
  let receptions = ref 0 and losses = ref 0 in
  let result = ref None in
  let t = ref start in
  while !result = None && !t - start < max_slots do
    let lost = Fault.advance fault in
    (match Program.block_at program !t with
    | Some (f, idx) ->
        (* Feedback path: the client observes every busy slot's reception
           outcome, not only its own file's, and reports it upstream. *)
        (match report with
        | Some fn -> fn ~slot:!t ~file:f ~lost
        | None -> ());
        if lost then begin
          if !burst_len = 0 then burst_start := !t;
          incr burst_len
        end
        else flush_burst ();
        if f = file then
          if lost then incr losses
          else begin
            if not (Hashtbl.mem collected idx) then Hashtbl.replace collected idx ();
            incr receptions;
            if Hashtbl.length collected >= needed then result := Some !t
          end
    | None -> ());
    incr t
  done;
  flush_burst ();
  if obs then begin
    Obs.Registry.add obs_receptions !receptions;
    Obs.Registry.add obs_losses !losses
  end;
  match !result with
  | Some slot ->
      if obs then begin
        Obs.Registry.incr obs_completed;
        Obs.Histogram.observe obs_wait (slot - start + 1)
      end;
      {
        completed_at = Some slot;
        elapsed = Some (slot - start + 1);
        receptions = !receptions;
        losses = !losses;
      }
  | None ->
      { completed_at = None; elapsed = None; receptions = !receptions; losses = !losses }

(* With adaptive degradation a file can be shed from the program while
   clients still want it, so "not in program" is a runtime condition,
   not only a caller bug — hence the typed entry point (lint rule L2). *)
let retrieve_checked ?max_slots ?report ~program ~file ~needed ~start ~fault ()
    =
  if start < 0 then Error (Bad_request "negative start")
  else if needed < 1 then Error (Bad_request "needed must be >= 1")
  else
    match Program.capacity program file with
    | exception Not_found -> Error Unknown_file
    | cap when needed > cap -> Error (Needed_exceeds_capacity cap)
    | _ when Program.occurrences_per_period program file = 0 ->
        Error Never_broadcast
    | _ ->
        Ok (retrieve_loop ?max_slots ?report ~program ~file ~needed ~start ~fault ())

(* Legacy raising wrapper over [retrieve_checked]; kept for the many
   existing call sites (allow-listed under lint rule L2). *)
let retrieve ?max_slots ?report ~program ~file ~needed ~start ~fault () =
  match
    retrieve_checked ?max_slots ?report ~program ~file ~needed ~start ~fault ()
  with
  | Ok o -> o
  | Error e -> invalid_arg ("Client.retrieve: " ^ error_message e)

let deadline_met o ~deadline =
  match o.elapsed with Some e -> e <= deadline | None -> false
