module P = Pindisk_pinwheel
module Obs = Pindisk_obs
module Intmath = Pindisk_util.Intmath
module Shard = Pindisk.Shard
module File_spec = Pindisk.File_spec
module Program = Pindisk.Program

let sinks = Retire.sinks ~prefix:"multi"
let obs_channels = Obs.Registry.gauge "channel.channels"
let obs_tuners = Obs.Registry.gauge "channel.tuners"
let obs_assigned = Obs.Registry.counter "channel.assigned"
let obs_unserved = Obs.Registry.counter "channel.unserved"

let obs_chan_requests c =
  Obs.Registry.counter (Printf.sprintf "channel.%d.requests" c)

type member = {
  issued : int;
  file : int;
  needed : int;
  deadline : int;
  weight : int;
}

let members_of_trace trace =
  List.map
    (fun (r : Workload.request) ->
      {
        issued = r.Workload.issued;
        file = r.Workload.file;
        needed = r.Workload.needed;
        deadline = r.Workload.deadline;
        weight = 1;
      })
    trace

(* 100 x the largest per-channel data cycle: every channel's block phase
   realigns within the window, mirroring the single-channel default. *)
let default_window (design : Shard.t) =
  100
  * Array.fold_left
      (fun acc (c : Shard.channel) -> max acc (Program.data_cycle c.Shard.program))
      1 design.Shard.channels

let spec_table (design : Shard.t) =
  let t = Hashtbl.create 16 in
  List.iter
    (fun (f : File_spec.t) -> Hashtbl.replace t f.File_spec.id f)
    (design.Shard.specs @ design.Shard.shed);
  t

let share_size (design : Shard.t) file channel =
  match
    List.find_opt
      (fun (p : Shard.placement) ->
        p.Shard.file = file && p.Shard.channel = channel)
      design.Shard.placements
  with
  | Some p -> Array.length p.Shard.pieces
  | None -> 0

let rec take n = function
  | [] -> []
  | _ when n <= 0 -> []
  | x :: rest -> x :: take (n - 1) rest

let validate_member ~what ~(spec_of : (int, File_spec.t) Hashtbl.t) (m : member) =
  if m.issued < 0 then invalid_arg (what ^ ": negative issue slot");
  let spec =
    match Hashtbl.find_opt spec_of m.file with
    | Some s -> s
    | None -> invalid_arg (Printf.sprintf "%s: unknown file %d" what m.file)
  in
  if m.needed < 1 || m.needed > spec.File_spec.capacity then
    invalid_arg
      (Printf.sprintf "%s: needed %d outside [1, %d] for file %d" what m.needed
         spec.File_spec.capacity m.file)

let record_design ~obs (design : Shard.t) ~tuners =
  if obs then begin
    Obs.Registry.set obs_channels (Array.length design.Shard.channels);
    Obs.Registry.set obs_tuners tuners
  end

let run ?max_slots ~design ~tuners ~fault ~seed trace =
  if tuners < 1 then invalid_arg "Multi.run: tuners must be >= 1";
  let window =
    match max_slots with Some w -> w | None -> default_window design
  in
  if window < 1 then invalid_arg "Multi.run: max_slots must be >= 1";
  let spec_of = spec_table design in
  let obs = Obs.Control.enabled () in
  record_design ~obs design ~tuners;
  let rows =
    List.mapi
      (fun k (r : Workload.request) ->
        let m = List.hd (members_of_trace [ r ]) in
        validate_member ~what:"Multi.run" ~spec_of m;
        let listen = take tuners (Shard.channels_of design m.file) in
        let reachable =
          List.fold_left (fun acc c -> acc + share_size design m.file c) 0 listen
        in
        if listen = [] || reachable < m.needed then begin
          (* Shed file, or the tuner budget cannot see [needed] distinct
             pieces: permanently unservable for this client. *)
          if obs then Obs.Registry.incr obs_unserved;
          {
            Retire.file = m.file;
            deadline = m.deadline;
            elapsed = None;
            weight = 1;
            losses = 0;
          }
        end
        else begin
          if obs then begin
            Obs.Registry.incr obs_assigned;
            List.iter (fun c -> Obs.Registry.incr (obs_chan_requests c)) listen
          end;
          let faults =
            List.map
              (fun c ->
                let fl =
                  fault ~channel:c
                    ~seed:(Intmath.mix64 (Intmath.mix64 (seed + k) + c))
                in
                Fault.reset_to fl m.issued;
                (c, fl))
              listen
          in
          let got = Hashtbl.create 8 in
          let losses = ref 0 in
          let elapsed = ref None in
          let s = ref m.issued in
          while !elapsed = None && !s < m.issued + window do
            List.iter
              (fun (c, fl) ->
                let lost = Fault.advance fl in
                match Shard.block_at design ~channel:c !s with
                | Some (f, piece) when f = m.file ->
                    if lost then incr losses
                    else if not (Hashtbl.mem got piece) then begin
                      Hashtbl.replace got piece ();
                      if Hashtbl.length got = m.needed && !elapsed = None then
                        elapsed := Some (!s - m.issued + 1)
                    end
                | _ -> ())
              faults;
            incr s
          done;
          {
            Retire.file = m.file;
            deadline = m.deadline;
            elapsed = !elapsed;
            weight = 1;
            losses = !losses;
          }
        end)
      trace
  in
  Retire.retire ~sinks rows

let run_population ?pool ?max_slots ?sampled ~design ~tuners ~model ~seed
    members =
  if tuners < 1 then invalid_arg "Multi.run_population: tuners must be >= 1";
  let window =
    match max_slots with Some w -> w | None -> default_window design
  in
  if window < 1 then invalid_arg "Multi.run_population: max_slots must be >= 1";
  let spec_of = spec_table design in
  let obs = Obs.Control.enabled () in
  record_design ~obs design ~tuners;
  let channels = Array.length design.Shard.channels in
  let per_channel : member list array = Array.make channels [] in
  let unserved = ref [] in
  List.iter
    (fun (m : member) ->
      validate_member ~what:"Multi.run_population" ~spec_of m;
      if m.weight < 0 then
        invalid_arg "Multi.run_population: negative weight";
      (* The best listened channel that alone carries [needed] pieces:
         channels_of is ordered by decreasing share, so the head of the
         listened prefix is the only candidate worth checking. *)
      let listen = take tuners (Shard.channels_of design m.file) in
      let best =
        List.find_opt (fun c -> share_size design m.file c >= m.needed) listen
      in
      match best with
      | Some c ->
          per_channel.(c) <- m :: per_channel.(c);
          if obs then begin
            Obs.Registry.add obs_assigned m.weight;
            Obs.Registry.add (obs_chan_requests c) m.weight
          end
      | None ->
          unserved := m :: !unserved;
          if obs then Obs.Registry.add obs_unserved m.weight)
    members;
  let channel_result c =
    match List.rev per_channel.(c) with
    | [] -> None
    | ms ->
        let ch = design.Shard.channels.(c) in
        let period = P.Plan.period ch.Shard.plan in
        let capacities =
          List.filter_map
            (fun (p : Shard.placement) ->
              if p.Shard.channel = c then
                Some (p.Shard.file, Array.length p.Shard.pieces)
              else None)
            design.Shard.placements
        in
        let classes =
          List.map
            (fun (m : member) ->
              {
                Cohort.key =
                  {
                    Cohort.file = m.file;
                    phase = m.issued mod period;
                    needed = m.needed;
                    deadline = m.deadline;
                  };
                weight = m.weight;
              })
            ms
        in
        Some
          (Cohort.run_population ?pool ?sampled ~max_slots:window
             ~plan:ch.Shard.plan ~capacities ~model:(model ~channel:c)
             ~seed:(Intmath.mix64 (seed + c))
             classes)
  in
  let unserved_result =
    Retire.retire ~sinks
      (List.rev_map
         (fun (m : member) ->
           {
             Retire.file = m.file;
             deadline = m.deadline;
             elapsed = None;
             weight = m.weight;
             losses = 0;
           })
         !unserved)
  in
  let acc = ref unserved_result in
  for c = 0 to channels - 1 do
    match channel_result c with
    | None -> ()
    | Some r -> acc := Retire.merge !acc r
  done;
  !acc
