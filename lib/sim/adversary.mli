(** Exact worst-case retrieval analysis under adversarial block errors.

    The paper's Figure 7 tabulates {e worst-case} delays as a function of
    the number of transmission errors. This module computes those numbers
    exactly: an adversary who knows the program chooses which [r]
    receptions to ruin, and the tune-in slot, to maximize the client's
    retrieval time. The computation is a memoized search over
    (position in data cycle, set of blocks already collected, errors left)
    — exact, not a bound — so it is limited to files with capacity at most
    {!max_capacity}. *)

val max_capacity : int
(** Largest file capacity (distinct on-air blocks) supported: 20. The
    collected-set is a bitmask. *)

val retrieval_from :
  Pindisk.Program.t -> file:int -> needed:int -> errors:int -> start:int -> int
(** The worst-case retrieval time (slots, tune-in through completion,
    inclusive) for a client tuning in at exactly [start], against an
    adversary ruining at most [errors] receptions of this file. Same
    preconditions as {!worst_case_retrieval}. *)

val worst_case_retrieval :
  Pindisk.Program.t -> file:int -> needed:int -> errors:int -> int
(** The maximum, over tune-in slots and over adversarial choices of at most
    [errors] ruined receptions of this file, of the retrieval time in slots
    (tune-in through completion, inclusive). Raises [Invalid_argument] when
    the file is absent, [needed] exceeds its capacity, or the capacity
    exceeds {!max_capacity}. *)

val worst_case_delay :
  Pindisk.Program.t -> file:int -> needed:int -> errors:int -> int
(** [worst_case_retrieval errors - worst_case_retrieval 0]: the extra
    worst-case wait attributable to the errors — the quantity Lemma 1
    bounds by [r·τ] and Lemma 2 by [r·Δ]. *)
