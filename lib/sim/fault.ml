type kind =
  | None_
  | Bernoulli of { p : float; seed : int }
  | Burst of {
      p_good_to_bad : float;
      p_bad_to_good : float;
      loss_good : float;
      loss_bad : float;
      seed : int;
    }
  | Deterministic of (int -> bool)

type t = {
  kind : kind;
  mutable slot : int;
  mutable rng : Random.State.t;
  mutable bad : bool; (* burst-model state *)
}

let fresh_rng kind slot =
  let seed =
    match kind with
    | None_ | Deterministic _ -> 0
    | Bernoulli { seed; _ } -> seed
    | Burst { seed; _ } -> seed
  in
  Random.State.make [| seed; slot; 0x5eed |]

let create kind = { kind; slot = 0; rng = fresh_rng kind 0; bad = false }

let none () = create None_

let bernoulli ~p ~seed =
  if p < 0.0 || p > 1.0 then invalid_arg "Fault.bernoulli: p must be in [0, 1]";
  create (Bernoulli { p; seed })

let burst ~p_good_to_bad ~p_bad_to_good ~loss_good ~loss_bad ~seed =
  let check name v =
    if v < 0.0 || v > 1.0 then
      invalid_arg (Printf.sprintf "Fault.burst: %s must be in [0, 1]" name)
  in
  check "p_good_to_bad" p_good_to_bad;
  check "p_bad_to_good" p_bad_to_good;
  check "loss_good" loss_good;
  check "loss_bad" loss_bad;
  create (Burst { p_good_to_bad; p_bad_to_good; loss_good; loss_bad; seed })

let deterministic f = create (Deterministic f)

let reset_to t slot =
  t.slot <- slot;
  t.rng <- fresh_rng t.kind slot;
  t.bad <- false

let advance t =
  let lost =
    match t.kind with
    | None_ -> false
    | Deterministic f -> f t.slot
    | Bernoulli { p; _ } -> Random.State.float t.rng 1.0 < p
    | Burst { p_good_to_bad; p_bad_to_good; loss_good; loss_bad; _ } ->
        let flip = Random.State.float t.rng 1.0 in
        (if t.bad then (if flip < p_bad_to_good then t.bad <- false)
         else if flip < p_good_to_bad then t.bad <- true);
        let loss_p = if t.bad then loss_bad else loss_good in
        Random.State.float t.rng 1.0 < loss_p
  in
  t.slot <- t.slot + 1;
  lost

let loss_rate t =
  match t.kind with
  | None_ | Deterministic _ -> 0.0
  | Bernoulli { p; _ } -> p
  | Burst { p_good_to_bad; p_bad_to_good; loss_good; loss_bad; _ } ->
      (* Stationary distribution of the two-state chain. *)
      let denom = p_good_to_bad +. p_bad_to_good in
      if denom = 0.0 then loss_good
      else
        let pi_bad = p_good_to_bad /. denom in
        ((1.0 -. pi_bad) *. loss_good) +. (pi_bad *. loss_bad)
