(** Million-client population simulation by weighted equivalence classes.

    The broadcast channel is shared, so clients never contend: a
    client's outcome depends only on what the channel shows it and on
    its own fault process. The channel repeats every plan period and
    block indices cycle each file's capacity, so all requests with the
    same [(file, issued mod period, needed, deadline)] key see their
    file at the same slot distances and — up to a constant residue
    shift, which is a bijection and so preserves distinct-block counts —
    the same block-index pattern. Populations therefore collapse into
    weighted classes: one dispatcher-shaped sweep per class instead of
    one per client (the argument is spelled out in DESIGN §5i).

    Two entry points share the class machinery:

    - {!run} replays a concrete trace through the class sweep and is
      {e exactly} equal to {!Drive.run} — same fault seeds (trace
      index), same [Engine.result] to the last float. The test suite
      pins this.
    - {!run_population} takes a closed-form population (a class list).
      Memoryless fault models ([No_loss] / [Bernoulli]) fold
      analytically — exact completion-ordinal law via a Poisson-binomial
      DP, integer weights apportioned by largest remainder, losses by
      Wald's identity — at O(1) cost in the class weight, which is what
      makes 10M clients a few milliseconds. Time-correlated models
      ([Burst]) fall back to per-member seeded sampling (content-derived
      seeds: invariant under class-list permutation).

    Classes shard across {!Pindisk_util.Pool} domains; workers touch
    only per-class slots and sharded [cohort.*] counters, and the final
    fold runs on the caller in canonical class order, so pooled and
    sequential runs produce identical results and merged counters.

    Observability (when {!Pindisk_obs.Control.enabled}): the retirement
    namespace [cohort.requests] / [cohort.completed] / [cohort.missed] /
    [cohort.losses] / [cohort.wait] (+ per-file mirrors), plus
    [cohort.classes], [cohort.members], [cohort.swept] (member-slots
    actually walked) and [cohort.analytic] (classes folded in closed
    form). *)

type key = {
  file : int;
  phase : int;  (** issue slot mod plan period *)
  needed : int;
  deadline : int;
}

type cls = { key : key; weight : int }

val classes_of_trace : period:int -> Workload.request list -> cls list
(** Partition a trace into weighted classes, in canonical (sorted-key)
    order — any permutation of the trace yields the same list. Raises
    [Invalid_argument] on [period < 1] or a negative issue slot. *)

(** Closed-form fault models for {!run_population}. Mirrors the
    {!Fault} constructors minus the seed (the engine derives per-member
    seeds from class content). *)
type model =
  | No_loss
  | Bernoulli of { p : float }
  | Burst of {
      p_good_to_bad : float;
      p_bad_to_good : float;
      loss_good : float;
      loss_bad : float;
    }

val fault_of_model : model -> seed:int -> Fault.t
(** The {!Fault} process a given model describes — what {!Drive.run}
    should be handed when cross-checking a sampled population run. *)

val run :
  ?pool:Pindisk_util.Pool.t ->
  ?prep:Drive.prep ->
  ?max_slots:int ->
  plan:Pindisk_pinwheel.Plan.t ->
  capacities:(int * int) list ->
  fault:(seed:int -> Fault.t) ->
  seed:int ->
  Workload.request list ->
  Engine.result
(** Drop-in replacement for {!Drive.run} (same validation, same
    defaults, same result — exactly, including float accumulation
    order), but sweeping per class: the occurrence pattern and warm-up
    work are shared by all members of a class rather than recomputed per
    request. [pool] shards classes across domains (default: inline
    sequential); [fault] must be pure construction, as it is called from
    worker domains. *)

val run_population :
  ?pool:Pindisk_util.Pool.t ->
  ?prep:Drive.prep ->
  ?max_slots:int ->
  ?sampled:bool ->
  plan:Pindisk_pinwheel.Plan.t ->
  capacities:(int * int) list ->
  model:model ->
  seed:int ->
  cls list ->
  Engine.result
(** Simulate a closed-form population. The class list is canonicalized
    (sorted, duplicate keys merged, zero weights dropped), so the result
    is invariant under permutation or splitting of the input.
    [No_loss]/[Bernoulli] classes fold analytically unless
    [~sampled:true] forces per-member sampling; [Burst] always samples.
    The analytic fold is exact to double precision: the per-ordinal
    completion law is truncated only once its residual mass is below
    [1e-15] (the leftover rides the expiry bucket). [seed] feeds the
    sampled path's content-derived member seeds; the analytic path
    ignores it. [max_slots] defaults to [100 ·] the plan's data cycle.
    Raises [Invalid_argument] for a class with [phase] outside
    [[0, period)], [needed < 1] or beyond the file's capacity, a file
    never broadcast, a negative weight, or capacities/prep errors as in
    {!run}. *)
