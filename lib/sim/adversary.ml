module Program = Pindisk.Program

let max_capacity = 20

(* The client's progress only changes at occurrences of its file, and the
   program's (slot, block) pairs repeat with the data cycle. Enumerate the
   occurrences of one data cycle; occurrence j >= occs has slot
   slots.(j mod occs) + (j / occs) * cycle. The adversary decides, at each
   occurrence carrying a block the client still needs, whether to ruin it.
   Ruining a redundant occurrence is pointless, so the decision space is
   exactly those occurrences. Memoize on (j mod occs, collected, errors):
   the completion slot from state (j, ...) equals the memoized completion
   for (j mod occs, ...) plus (j / occs) * cycle, by shift invariance. *)

type ctx = {
  cycle : int;
  slots : int array;
  blocks : int array;
  occs : int;
  needed : int;
  memo : (int * int * int, int) Hashtbl.t;
}

let context program ~file ~needed =
  if needed < 1 then invalid_arg "Adversary: needed must be >= 1";
  let cap =
    match Program.capacity program file with
    | exception Not_found -> invalid_arg "Adversary: file not in program"
    | c -> c
  in
  if cap > max_capacity then
    invalid_arg
      (Printf.sprintf "Adversary: capacity %d exceeds the supported %d" cap
         max_capacity);
  if needed > cap then invalid_arg "Adversary: needed exceeds capacity";
  let cycle = Program.data_cycle program in
  let occ_slots = ref [] and occ_blocks = ref [] in
  for t = cycle - 1 downto 0 do
    match Program.block_at program t with
    | Some (f, idx) when f = file ->
        occ_slots := t :: !occ_slots;
        occ_blocks := idx :: !occ_blocks
    | Some _ | None -> ()
  done;
  let slots = Array.of_list !occ_slots and blocks = Array.of_list !occ_blocks in
  if Array.length slots = 0 then invalid_arg "Adversary: file never broadcast";
  {
    cycle;
    slots;
    blocks;
    occs = Array.length slots;
    needed;
    memo = Hashtbl.create 4096;
  }

let popcount mask =
  let rec go m acc = if m = 0 then acc else go (m lsr 1) (acc + (m land 1)) in
  go mask 0

(* Completion slot assuming the next occurrence to process is j (within
   the first data cycle, j < occs). *)
let rec completion ctx j mask errs =
  let wrap = j / ctx.occs and jm = j mod ctx.occs in
  let key = (jm, mask, errs) in
  let base =
    match Hashtbl.find_opt ctx.memo key with
    | Some v -> v
    | None ->
        let idx = ctx.blocks.(jm) in
        let v =
          if mask land (1 lsl idx) <> 0 then
            (* Redundant block: nothing to decide. *)
            completion_rel ctx (jm + 1) mask errs
          else begin
            let allow =
              let mask' = mask lor (1 lsl idx) in
              if popcount mask' >= ctx.needed then ctx.slots.(jm)
              else completion_rel ctx (jm + 1) mask' errs
            in
            if errs > 0 then
              max allow (completion_rel ctx (jm + 1) mask (errs - 1))
            else allow
          end
        in
        Hashtbl.replace ctx.memo key v;
        v
  in
  base + (wrap * ctx.cycle)

and completion_rel ctx j mask errs =
  if j < ctx.occs then completion ctx j mask errs
  else completion ctx (j - ctx.occs) mask errs + ctx.cycle

(* First occurrence index at or after slot [start] (start < cycle). *)
let first_occurrence ctx start =
  let rec go j = if j < ctx.occs && ctx.slots.(j) < start then go (j + 1) else j in
  go 0

let retrieval_from program ~file ~needed ~errors ~start =
  if errors < 0 then invalid_arg "Adversary: negative errors";
  if start < 0 then invalid_arg "Adversary: negative start";
  let ctx = context program ~file ~needed in
  let s = start mod ctx.cycle in
  let j = first_occurrence ctx s in
  (* j may be occs (no occurrence left this cycle): completion_rel wraps. *)
  let finish = completion_rel ctx j 0 errors in
  finish - s + 1

let worst_case_retrieval program ~file ~needed ~errors =
  if errors < 0 then invalid_arg "Adversary: negative errors";
  let ctx = context program ~file ~needed in
  (* Tuning in anywhere strictly after occurrence j-1 and at or before
     occurrence j behaves identically except for the start subtraction;
     the worst start for "first visible occurrence = j" is the slot right
     after occurrence j-1. *)
  let worst = ref 0 in
  for j = 0 to ctx.occs - 1 do
    let start =
      if j = 0 then ctx.slots.(ctx.occs - 1) + 1 - ctx.cycle
      else ctx.slots.(j - 1) + 1
    in
    let finish = completion ctx j 0 errors in
    let elapsed = finish - start + 1 in
    if elapsed > !worst then worst := elapsed
  done;
  !worst

let worst_case_delay program ~file ~needed ~errors =
  worst_case_retrieval program ~file ~needed ~errors
  - worst_case_retrieval program ~file ~needed ~errors:0
