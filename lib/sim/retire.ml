module Stats = Pindisk_util.Stats
module Obs = Pindisk_obs

type file_stats = {
  file : int;
  requests : int;
  missed : int;
  latency : Stats.t;
}

type result = {
  requests : int;
  completed : int;
  missed : int;
  latency : Stats.t;
  losses : int;
  per_file : file_stats list;
}

type sinks = {
  requests_c : Obs.Registry.counter;
  completed_c : Obs.Registry.counter;
  missed_c : Obs.Registry.counter;
  losses_c : Obs.Registry.counter;
  wait_h : Obs.Histogram.t;
  file_wait : int -> Obs.Histogram.t;
  file_miss : int -> Obs.Registry.counter;
}

let sinks ~prefix =
  {
    requests_c = Obs.Registry.counter (prefix ^ ".requests");
    completed_c = Obs.Registry.counter (prefix ^ ".completed");
    missed_c = Obs.Registry.counter (prefix ^ ".missed");
    losses_c = Obs.Registry.counter (prefix ^ ".losses");
    wait_h = Obs.Registry.histogram (prefix ^ ".wait");
    file_wait =
      (fun f -> Obs.Registry.histogram (Printf.sprintf "%s.wait.%d" prefix f));
    file_miss =
      (fun f -> Obs.Registry.counter (Printf.sprintf "%s.miss.%d" prefix f));
  }

type row = {
  file : int;
  deadline : int;
  elapsed : int option;
  weight : int;
  losses : int;
}

(* The one aggregation fold every engine shares. Rows are consumed in the
   order given; a weight-1 row contributes exactly what [Engine.run]'s
   per-request fold contributed (same float accumulation into the latency
   accumulators), so engines that build weight-1 rows in trace order stay
   bit-for-bit equal to the original per-client path. *)
let retire ~sinks rows =
  let global = Stats.create () in
  let per_file : (int, int ref * int ref * Stats.t) Hashtbl.t =
    Hashtbl.create 8
  in
  let file_entry f =
    match Hashtbl.find_opt per_file f with
    | Some e -> e
    | None ->
        let e = (ref 0, ref 0, Stats.create ()) in
        Hashtbl.add per_file f e;
        e
  in
  let obs = Obs.Control.enabled () in
  let requests = ref 0 and completed = ref 0 in
  let missed = ref 0 and losses = ref 0 in
  List.iter
    (fun (r : row) ->
      if r.weight < 0 then invalid_arg "Retire.retire: negative weight";
      if r.weight > 0 then begin
        let reqs, miss, lat = file_entry r.file in
        reqs := !reqs + r.weight;
        requests := !requests + r.weight;
        losses := !losses + r.losses;
        if obs then Obs.Registry.add sinks.requests_c r.weight;
        let record_miss () =
          missed := !missed + r.weight;
          miss := !miss + r.weight;
          if obs then begin
            Obs.Registry.add sinks.missed_c r.weight;
            Obs.Registry.add (sinks.file_miss r.file) r.weight
          end
        in
        match r.elapsed with
        | Some e ->
            completed := !completed + r.weight;
            Stats.add_weighted global (float_of_int e) r.weight;
            Stats.add_weighted lat (float_of_int e) r.weight;
            if obs then begin
              Obs.Registry.add sinks.completed_c r.weight;
              Obs.Histogram.observe_n sinks.wait_h e r.weight;
              Obs.Histogram.observe_n (sinks.file_wait r.file) e r.weight
            end;
            if e > r.deadline then record_miss ()
        | None -> record_miss ()
      end)
    rows;
  if obs then Obs.Registry.add sinks.losses_c !losses;
  {
    requests = !requests;
    completed = !completed;
    missed = !missed;
    latency = global;
    losses = !losses;
    per_file =
      Hashtbl.fold
        (fun file (reqs, miss, lat) acc ->
          { file; requests = !reqs; missed = !miss; latency = lat } :: acc)
        per_file []
      |> List.sort (fun (a : file_stats) b -> compare a.file b.file);
  }

let merge_stats a b =
  let s = Stats.create () in
  Stats.absorb s a;
  Stats.absorb s b;
  s

let copy_stats a =
  let s = Stats.create () in
  Stats.absorb s a;
  s

let merge_file (a : file_stats) (b : file_stats) =
  {
    file = a.file;
    requests = a.requests + b.requests;
    missed = a.missed + b.missed;
    latency = merge_stats a.latency b.latency;
  }

(* Merge-join two ascending per-file lists; a file on one side only is
   still re-absorbed into a fresh accumulator so the merged result never
   aliases either input's mutable state. *)
let rec merge_per_file (xs : file_stats list) (ys : file_stats list) =
  match (xs, ys) with
  | [], rest | rest, [] ->
      List.map (fun (f : file_stats) -> { f with latency = copy_stats f.latency }) rest
  | x :: xs', y :: ys' ->
      if x.file = y.file then merge_file x y :: merge_per_file xs' ys'
      else if x.file < y.file then
        { x with latency = copy_stats x.latency } :: merge_per_file xs' ys
      else { y with latency = copy_stats y.latency } :: merge_per_file xs ys'

let merge a b =
  {
    requests = a.requests + b.requests;
    completed = a.completed + b.completed;
    missed = a.missed + b.missed;
    latency = merge_stats a.latency b.latency;
    losses = a.losses + b.losses;
    per_file = merge_per_file a.per_file b.per_file;
  }
