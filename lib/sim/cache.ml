module Program = Pindisk.Program

type policy = Lru | Lfu | Pix

let pp_policy ppf = function
  | Lru -> Format.fprintf ppf "LRU"
  | Lfu -> Format.fprintf ppf "LFU"
  | Pix -> Format.fprintf ppf "PIX"

type stats = { accesses : int; hits : int; mean_latency : float }

let hit_ratio s = float_of_int s.hits /. float_of_int s.accesses

let zipf_weights ~n ~theta =
  if n < 1 then invalid_arg "Cache.zipf_weights: n must be >= 1";
  if theta < 0.0 then invalid_arg "Cache.zipf_weights: negative theta";
  let raw = Array.init n (fun i -> 1.0 /. (float_of_int (i + 1) ** theta)) in
  let total = Array.fold_left ( +. ) 0.0 raw in
  Array.map (fun w -> w /. total) raw

(* Wait (in slots, inclusive of the transmission slot) from [t] until the
   page is next on the air. *)
let wait_for program file t =
  let cycle = Program.data_cycle program in
  let rec go d =
    if d > cycle then invalid_arg "Cache.simulate: page never broadcast"
    else
      match Program.block_at program (t + d) with
      | Some (f, _) when f = file -> d + 1
      | Some _ | None -> go (d + 1)
  in
  go 0

let simulate ~program ~cache_slots ~policy ~theta ~accesses ~seed () =
  if cache_slots < 0 then invalid_arg "Cache.simulate: negative cache size";
  if accesses < 1 then invalid_arg "Cache.simulate: accesses must be >= 1";
  let files = Array.of_list (Program.files program) in
  let n = Array.length files in
  if n = 0 then invalid_arg "Cache.simulate: empty program";
  Array.iter
    (fun f ->
      if Program.capacity program f <> 1 then
        invalid_arg "Cache.simulate: page-granularity programs only")
    files;
  let weights = zipf_weights ~n ~theta in
  let cumulative = Array.make n 0.0 in
  let acc = ref 0.0 in
  Array.iteri
    (fun i w ->
      acc := !acc +. w;
      cumulative.(i) <- !acc)
    weights;
  let rng = Random.State.make [| seed; n; accesses |] in
  let draw () =
    let u = Random.State.float rng 1.0 in
    let rec find i = if i >= n - 1 || cumulative.(i) >= u then i else find (i + 1) in
    files.(find 0)
  in
  (* Broadcast frequency of each page: occurrences per period. *)
  let frequency = Hashtbl.create 16 in
  Array.iter
    (fun f -> Hashtbl.replace frequency f (Program.occurrences_per_period program f))
    files;
  let weight_of = Hashtbl.create 16 in
  Array.iteri (fun i f -> Hashtbl.replace weight_of f weights.(i)) files;
  (* Cache state: page -> (last_used, use_count). *)
  let cache = Hashtbl.create 16 in
  let evict_score page (last_used, count) =
    match policy with
    | Lru -> float_of_int last_used
    | Lfu -> float_of_int count
    | Pix ->
        Hashtbl.find weight_of page
        /. float_of_int (max 1 (Hashtbl.find frequency page))
  in
  let hits = ref 0 and latency = ref 0 in
  let now = ref 0 in
  for access = 1 to accesses do
    let page = draw () in
    (match Hashtbl.find_opt cache page with
    | Some (_, count) -> begin
        incr hits;
        Hashtbl.replace cache page (access, count + 1)
      end
    | None ->
        let wait = wait_for program page !now in
        latency := !latency + wait;
        now := !now + wait;
        if cache_slots > 0 then begin
          if Hashtbl.length cache >= cache_slots then begin
            (* Evict the entry with the lowest score. *)
            let victim = ref None in
            Hashtbl.iter
              (fun p entry ->
                let s = evict_score p entry in
                match !victim with
                | Some (_, best) when best <= s -> ()
                | _ -> victim := Some (p, s))
              cache;
            match !victim with
            | Some (p, _) -> Hashtbl.remove cache p
            | None -> ()
          end;
          Hashtbl.replace cache page (access, 1)
        end);
    now := !now + 1
  done;
  {
    accesses;
    hits = !hits;
    mean_latency = float_of_int !latency /. float_of_int accesses;
  }
