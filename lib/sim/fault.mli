(** Block-loss processes for the broadcast channel.

    The paper assumes "individual transmission errors occur independently of
    each other, and the occurrence of an error during the transmission of a
    block renders the entire block unreadable". {!bernoulli} is exactly that
    model; {!burst} (a Gilbert–Elliott two-state chain) adds the time
    correlation real wireless channels exhibit, used by the fault-model
    ablation (E9); {!deterministic} scripts losses for tests.

    A process is stateful: {!advance} must be called once per slot, in slot
    order, and returns whether a reception in that slot is lost. *)

type t

val none : unit -> t
(** Never loses a block. *)

val bernoulli : p:float -> seed:int -> t
(** Independent loss with probability [p] per slot, [0 <= p <= 1]. *)

val burst :
  p_good_to_bad:float -> p_bad_to_good:float -> loss_good:float ->
  loss_bad:float -> seed:int -> t
(** Gilbert–Elliott: a two-state Markov chain toggling between a good state
    (loss probability [loss_good]) and a bad state ([loss_bad]). Starts in
    the good state. *)

val deterministic : (int -> bool) -> t
(** [deterministic f]: slot [t] is lost iff [f t] ([t] counts calls to
    {!advance}, starting at the slot given to {!reset_to}, default 0). *)

val reset_to : t -> int -> unit
(** Restart the process at the given absolute slot (re-seeds the stochastic
    models deterministically, so two runs from the same slot see the same
    losses). *)

val advance : t -> bool
(** The loss verdict for the current slot; moves to the next slot. *)

val loss_rate : t -> float
(** The long-run expected loss probability of the process (0 for
    [deterministic]). *)
