(** Multi-tuner clients over a sharded K-channel broadcast.

    {!Pindisk.Shard.design} turns one file population into K independent
    broadcast programs; this engine is the client side. A client owns
    [tuners] tuners and, per request, listens to the first
    [min tuners stripe-members] channels carrying its file (in
    {!Pindisk.Shard.channels_of} preference order — largest share
    first). Channels are physically independent, so each listened
    channel gets its {e own} fault process: per-request, per-channel
    seeds derived with {!Pindisk_util.Intmath.mix64}, each advanced once
    per slot exactly like the single-channel engines. A request
    completes when the tuner set has collected [needed] {e distinct
    global} piece indices across its channels — the round-robin dealing
    makes per-channel pieces disjoint, so every clean own-file reception
    on any tuned channel makes progress.

    With [channels = 1] the design is the single-channel program and
    [tuners] is irrelevant; the slot-by-slot collection then matches
    {!Client.retrieve} semantics (block cycling, window, firm deadline
    accounting).

    Retirement goes through the shared {!Retire} fold under the
    [multi.*] namespace; the design-level counters live under
    [channel.*]: [channel.channels] / [channel.tuners] gauges,
    [channel.assigned] / [channel.unserved] counters (request weight
    that found, respectively failed to find, a serving channel) and
    per-channel [channel.<c>.requests]. *)

type member = {
  issued : int;
  file : int;
  needed : int;  (** distinct global pieces to collect *)
  deadline : int;  (** slots allowed, relative to [issued] *)
  weight : int;  (** statistically identical clients *)
}

val members_of_trace : Workload.request list -> member list
(** Weight-1 members in trace order. *)

val run :
  ?max_slots:int ->
  design:Pindisk.Shard.t ->
  tuners:int ->
  fault:(channel:int -> seed:int -> Fault.t) ->
  seed:int ->
  Workload.request list ->
  Engine.result
(** Exact per-request simulation. Request [k] listening to channel [c]
    gets [fault ~channel:c ~seed:(mix64 (mix64 (seed + k) + c))], reset
    to its issue slot. A request for a shed file (or one whose stripe
    set the tuner budget cannot cover [needed] distinct pieces of)
    retires as missed; an unknown file, [needed < 1] or beyond the
    file's capacity, a negative issue slot, or [tuners < 1] raise
    [Invalid_argument]. [max_slots] is the retrieval window per request
    (default [100 ·] the largest per-channel data cycle). *)

val run_population :
  ?pool:Pindisk_util.Pool.t ->
  ?max_slots:int ->
  ?sampled:bool ->
  design:Pindisk.Shard.t ->
  tuners:int ->
  model:(channel:int -> Cohort.model) ->
  seed:int ->
  member list ->
  Engine.result
(** Population-scale analogue: members collapse to per-channel weighted
    classes and each channel folds through {!Cohort.run_population}
    (analytic for memoryless models), then the K per-channel results
    merge in channel order via {!Retire.merge}. Each member is served by
    the {e best} listened channel — the largest-share channel among its
    first [min tuners stripe] preferred ones that alone carries
    [needed] pieces; members with no such channel retire as missed.
    For unstriped designs (stripe = 1, the default) this is exact: the
    file's one channel carries its full capacity. For striped designs it
    is a conservative lower bound — cross-channel piece pooling is
    credited only by {!run}. Validation and defaults as {!run}. *)
