(** Client request workloads for broadcast-disk simulations.

    Models the paper's client population: thousands of independent mobile
    clients issuing data retrievals against the broadcast. Requests arrive
    as a Poisson process over the whole population, pick a file by a Zipf
    popularity law, and carry a firm deadline. Traces are deterministic in
    the seed, so competing programs can be measured on the {e identical}
    request sequence. *)

type request = {
  issued : int;  (** the slot the client tunes in *)
  file : int;
  needed : int;  (** distinct blocks to collect (IDA's [m]) *)
  deadline : int;  (** slots allowed, relative to [issued] *)
}

val generate :
  program:Pindisk.Program.t -> rate:float -> theta:float ->
  needed_of:(int -> int) -> deadline_of:(int -> int) -> horizon:int ->
  seed:int -> request list
(** [generate ~program ~rate ~theta ~needed_of ~deadline_of ~horizon ~seed]
    draws requests over [horizon] slots: inter-arrival gaps are
    exponential with mean [1/rate] (so [rate] is expected requests per
    slot across the population); files are drawn Zipf([theta]) over the
    program's files ordered by id (id order = popularity order). Sorted by
    issue slot. Raises [Invalid_argument] for [rate <= 0], [theta < 0] or
    [horizon < 1]. *)
