(** Client request workloads for broadcast-disk simulations.

    Models the paper's client population: thousands of independent mobile
    clients issuing data retrievals against the broadcast. Requests arrive
    as a Poisson process over the whole population, pick a file by a Zipf
    popularity law, and carry a firm deadline. Traces are deterministic in
    the seed, so competing programs can be measured on the {e identical}
    request sequence. *)

type request = {
  issued : int;  (** the slot the client tunes in *)
  file : int;
  needed : int;  (** distinct blocks to collect (IDA's [m]) *)
  deadline : int;  (** slots allowed, relative to [issued] *)
}

val generate :
  program:Pindisk.Program.t -> rate:float -> theta:float ->
  needed_of:(int -> int) -> deadline_of:(int -> int) -> horizon:int ->
  seed:int -> request list
(** [generate ~program ~rate ~theta ~needed_of ~deadline_of ~horizon ~seed]
    draws requests over [horizon] slots: inter-arrival gaps are
    exponential with mean [1/rate] (so [rate] is expected requests per
    slot across the population); files are drawn Zipf([theta]) over the
    program's files ordered by id (id order = popularity order). Sorted by
    issue slot. Raises [Invalid_argument] for [rate <= 0], [theta < 0] or
    [horizon < 1]. *)

(** How a YCSB-style population spreads its attention over files (id
    order = popularity order). *)
type popularity =
  | Zipfian of { theta : float }  (** classic skew, as {!generate} *)
  | Hotspot of { hot_fraction : float; hot_weight : float }
      (** the first [ceil (hot_fraction · n)] files uniformly share
          [hot_weight] of the requests; the rest share the remainder *)
  | Shifting of { theta : float; every : int }
      (** Zipf([theta]) whose ranking rotates one position every [every]
          slots — yesterday's hot file cools off *)

(** How the aggregate arrival rate moves over time. *)
type arrivals =
  | Steady  (** constant [rate], as {!generate} *)
  | Diurnal of { period : int; trough : float }
      (** sinusoidal wave with the given slot period; the quietest slot
          runs at [trough · rate], the busiest at [rate] *)
  | Flash of { at : int; magnitude : float; width : int }
      (** flash crowd: a triangular spike peaking at [magnitude · rate]
          in slot [at], ramping linearly over [width] slots each side *)

val ycsb :
  program:Pindisk.Program.t -> rate:float -> popularity:popularity ->
  arrivals:arrivals -> needed_of:(int -> int) -> deadline_of:(int -> int) ->
  horizon:int -> seed:int -> request list
(** YCSB-flavoured workload: a non-homogeneous Poisson arrival process
    (by Lewis thinning against the peak rate) paired with a possibly
    time-varying popularity law. [ycsb ~popularity:(Zipfian _)
    ~arrivals:Steady] is distributionally the same family as
    {!generate}, though drawn from a different stream. Deterministic in
    [seed]: the same arguments produce the identical trace. Sorted by
    issue slot. Raises [Invalid_argument] for [rate <= 0],
    [horizon < 1], an empty program, or out-of-range shape parameters
    ([theta < 0]; [hot_fraction] outside (0, 1]; [hot_weight] outside
    [0, 1]; [every]/[period]/[width] [< 1]; [magnitude < 1]; a negative
    flash slot). *)
