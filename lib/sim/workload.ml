module Program = Pindisk.Program

type request = { issued : int; file : int; needed : int; deadline : int }

let generate ~program ~rate ~theta ~needed_of ~deadline_of ~horizon ~seed =
  if rate <= 0.0 then invalid_arg "Workload.generate: rate must be positive";
  if theta < 0.0 then invalid_arg "Workload.generate: negative theta";
  if horizon < 1 then invalid_arg "Workload.generate: horizon must be >= 1";
  let files = Array.of_list (Program.files program) in
  let n = Array.length files in
  if n = 0 then invalid_arg "Workload.generate: empty program";
  let weights = Cache.zipf_weights ~n ~theta in
  let cumulative = Array.make n 0.0 in
  let acc = ref 0.0 in
  Array.iteri
    (fun i w ->
      acc := !acc +. w;
      cumulative.(i) <- !acc)
    weights;
  let rng = Random.State.make [| seed; horizon; 0x3017 |] in
  let draw_file () =
    let u = Random.State.float rng 1.0 in
    let rec find i = if i >= n - 1 || cumulative.(i) >= u then i else find (i + 1) in
    files.(find 0)
  in
  let rec go t acc =
    (* Exponential inter-arrival gap, at least 0 slots. *)
    let gap = -.log (1.0 -. Random.State.float rng 1.0) /. rate in
    let t = t +. gap in
    let slot = int_of_float t in
    if slot >= horizon then List.rev acc
    else
      let file = draw_file () in
      let r =
        {
          issued = slot;
          file;
          needed = needed_of file;
          deadline = deadline_of file;
        }
      in
      go t (r :: acc)
  in
  go 0.0 []

type popularity =
  | Zipfian of { theta : float }
  | Hotspot of { hot_fraction : float; hot_weight : float }
  | Shifting of { theta : float; every : int }

type arrivals =
  | Steady
  | Diurnal of { period : int; trough : float }
  | Flash of { at : int; magnitude : float; width : int }

let ycsb ~program ~rate ~popularity ~arrivals ~needed_of ~deadline_of ~horizon
    ~seed =
  if rate <= 0.0 then invalid_arg "Workload.ycsb: rate must be positive";
  if horizon < 1 then invalid_arg "Workload.ycsb: horizon must be >= 1";
  let files = Array.of_list (Program.files program) in
  let n = Array.length files in
  if n = 0 then invalid_arg "Workload.ycsb: empty program";
  let cumulative_of weights =
    let cumulative = Array.make n 0.0 in
    let acc = ref 0.0 in
    Array.iteri
      (fun i w ->
        acc := !acc +. w;
        cumulative.(i) <- !acc)
      weights;
    cumulative
  in
  let search cumulative u =
    let rec find i =
      if i >= n - 1 || cumulative.(i) >= u then i else find (i + 1)
    in
    find 0
  in
  (* [pick slot u]: the requested file, given the uniform draw [u]. Only
     [Shifting] actually looks at the slot — the zipf ranking rotates one
     position every [every] slots, modelling popularity churn. *)
  let pick =
    match popularity with
    | Zipfian { theta } ->
        if theta < 0.0 then invalid_arg "Workload.ycsb: negative theta";
        let cumulative = cumulative_of (Cache.zipf_weights ~n ~theta) in
        fun _slot u -> files.(search cumulative u)
    | Hotspot { hot_fraction; hot_weight } ->
        if hot_fraction <= 0.0 || hot_fraction > 1.0 then
          invalid_arg "Workload.ycsb: hot_fraction must be in (0, 1]";
        if hot_weight < 0.0 || hot_weight > 1.0 then
          invalid_arg "Workload.ycsb: hot_weight must be in [0, 1]";
        let hot = max 1 (min n (int_of_float (ceil (hot_fraction *. float_of_int n)))) in
        let weights =
          Array.init n (fun i ->
              if hot = n then 1.0 /. float_of_int n
              else if i < hot then hot_weight /. float_of_int hot
              else (1.0 -. hot_weight) /. float_of_int (n - hot))
        in
        let cumulative = cumulative_of weights in
        fun _slot u -> files.(search cumulative u)
    | Shifting { theta; every } ->
        if theta < 0.0 then invalid_arg "Workload.ycsb: negative theta";
        if every < 1 then invalid_arg "Workload.ycsb: every must be >= 1";
        let cumulative = cumulative_of (Cache.zipf_weights ~n ~theta) in
        fun slot u ->
          let rotation = slot / every mod n in
          files.((search cumulative u + rotation) mod n)
  in
  (* Arrival-rate envelope for Lewis thinning: candidates arrive at the
     peak rate, and each survives with probability rate(slot)/peak. *)
  let peak =
    match arrivals with
    | Steady -> rate
    | Diurnal { period; trough } ->
        if period < 1 then invalid_arg "Workload.ycsb: period must be >= 1";
        if trough < 0.0 || trough > 1.0 then
          invalid_arg "Workload.ycsb: trough must be in [0, 1]";
        rate
    | Flash { at; magnitude; width } ->
        if at < 0 then invalid_arg "Workload.ycsb: flash slot must be >= 0";
        if magnitude < 1.0 then
          invalid_arg "Workload.ycsb: magnitude must be >= 1";
        if width < 1 then invalid_arg "Workload.ycsb: width must be >= 1";
        rate *. magnitude
  in
  let rate_at slot =
    match arrivals with
    | Steady -> rate
    | Diurnal { period; trough } ->
        let wave =
          0.5
          *. (1.0
             +. sin (2.0 *. Float.pi *. float_of_int slot /. float_of_int period))
        in
        rate *. (trough +. ((1.0 -. trough) *. wave))
    | Flash { at; magnitude; width } ->
        let bump =
          Float.max 0.0
            (1.0 -. (float_of_int (abs (slot - at)) /. float_of_int width))
        in
        rate *. (1.0 +. ((magnitude -. 1.0) *. bump))
  in
  let rng = Random.State.make [| seed; horizon; 0x9c5b |] in
  let rec go t acc =
    let gap = -.log (1.0 -. Random.State.float rng 1.0) /. peak in
    let t = t +. gap in
    let slot = int_of_float t in
    if slot >= horizon then List.rev acc
    else if Random.State.float rng 1.0 < rate_at slot /. peak then begin
      let file = pick slot (Random.State.float rng 1.0) in
      let r =
        {
          issued = slot;
          file;
          needed = needed_of file;
          deadline = deadline_of file;
        }
      in
      go t (r :: acc)
    end
    else go t acc
  in
  go 0.0 []
