module Program = Pindisk.Program

type request = { issued : int; file : int; needed : int; deadline : int }

let generate ~program ~rate ~theta ~needed_of ~deadline_of ~horizon ~seed =
  if rate <= 0.0 then invalid_arg "Workload.generate: rate must be positive";
  if theta < 0.0 then invalid_arg "Workload.generate: negative theta";
  if horizon < 1 then invalid_arg "Workload.generate: horizon must be >= 1";
  let files = Array.of_list (Program.files program) in
  let n = Array.length files in
  if n = 0 then invalid_arg "Workload.generate: empty program";
  let weights = Cache.zipf_weights ~n ~theta in
  let cumulative = Array.make n 0.0 in
  let acc = ref 0.0 in
  Array.iteri
    (fun i w ->
      acc := !acc +. w;
      cumulative.(i) <- !acc)
    weights;
  let rng = Random.State.make [| seed; horizon; 0x3017 |] in
  let draw_file () =
    let u = Random.State.float rng 1.0 in
    let rec find i = if i >= n - 1 || cumulative.(i) >= u then i else find (i + 1) in
    files.(find 0)
  in
  let rec go t acc =
    (* Exponential inter-arrival gap, at least 0 slots. *)
    let gap = -.log (1.0 -. Random.State.float rng 1.0) /. rate in
    let t = t +. gap in
    let slot = int_of_float t in
    if slot >= horizon then List.rev acc
    else
      let file = draw_file () in
      let r =
        {
          issued = slot;
          file;
          needed = needed_of file;
          deadline = deadline_of file;
        }
      in
      go t (r :: acc)
  in
  go 0.0 []
