module Plan = Pindisk_pinwheel.Plan
module Intmath = Pindisk_util.Intmath
module Pool = Pindisk_util.Pool
module Obs = Pindisk_obs

let sinks = Retire.sinks ~prefix:"cohort"
let obs_classes = Obs.Registry.counter "cohort.classes"
let obs_members = Obs.Registry.counter "cohort.members"
let obs_swept = Obs.Registry.counter "cohort.swept"
let obs_analytic = Obs.Registry.counter "cohort.analytic"

type key = { file : int; phase : int; needed : int; deadline : int }
type cls = { key : key; weight : int }

(* Why this key suffices: the broadcast repeats every period, block
   indices cycle (global occurrence count mod capacity), and each client
   owns an independent fault process. Two requests with the same (file,
   issued mod period) see their file at the same slot distances d and at
   block indices differing only by a constant shift mod capacity — and a
   constant shift is a bijection on residues, so the number of distinct
   blocks after any prefix of successes is identical. Completion time
   and losses therefore depend only on (file, phase, needed) plus the
   member's own fault draws, and deadline classification adds the last
   component. *)
let classes_of_trace ~period trace =
  if period < 1 then invalid_arg "Cohort.classes_of_trace: period must be >= 1";
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun (r : Workload.request) ->
      if r.Workload.issued < 0 then
        invalid_arg "Cohort.classes_of_trace: negative start";
      let key =
        {
          file = r.Workload.file;
          phase = r.Workload.issued mod period;
          needed = r.Workload.needed;
          deadline = r.Workload.deadline;
        }
      in
      Hashtbl.replace tbl key
        (1 + Option.value ~default:0 (Hashtbl.find_opt tbl key)))
    trace;
  Hashtbl.fold (fun key weight acc -> { key; weight } :: acc) tbl []
  |> List.sort (fun a b -> compare a.key b.key)

type model =
  | No_loss
  | Bernoulli of { p : float }
  | Burst of {
      p_good_to_bad : float;
      p_bad_to_good : float;
      loss_good : float;
      loss_bad : float;
    }

let fault_of_model model ~seed =
  match model with
  | No_loss -> Fault.none ()
  | Bernoulli { p } -> Fault.bernoulli ~p ~seed
  | Burst { p_good_to_bad; p_bad_to_good; loss_good; loss_bad } ->
      Fault.burst ~p_good_to_bad ~p_bad_to_good ~loss_good ~loss_bad ~seed

let loss_rate_of_model model =
  Fault.loss_rate (fault_of_model model ~seed:0)

(* Content-derived class tag: members of the same class draw the same
   fault streams no matter how the class list was produced. *)
let class_tag ~seed k =
  let m = Intmath.mix64 in
  m (m (m (m (seed + k.file) + k.phase) + k.needed) + k.deadline)

let capacity_fn ~who capacities =
  let caps = Hashtbl.create 16 in
  List.iter
    (fun (f, n) ->
      if n < 1 then invalid_arg (who ^ ": capacity must be >= 1");
      Hashtbl.replace caps f n)
    capacities;
  fun f ->
    match Hashtbl.find_opt caps f with
    | Some n -> n
    | None -> invalid_arg (who ^ ": file not in plan capacities")

let prep_for ~who ?prep plan =
  match prep with
  | Some p ->
      if Drive.period p <> Plan.period plan then
        invalid_arg (who ^ ": prep was built from a different plan");
      p
  | None -> Drive.prepare plan

(* mask.(o) = the plan broadcasts the file at slot offset o. *)
let mask_of prep ~period file =
  let mask = Array.make period false in
  Array.iter (fun o -> mask.(o) <- true) (Drive.slot_offsets prep file);
  mask

(* One member's retrieval, mirroring [Drive.run]'s per-request walk: the
   fault process (already reset to the issue slot) advances once per
   slot; own-file occurrences are lost or collected; collection tracks
   distinct residues of the relative occurrence ordinal mod capacity —
   a constant shift of the global block index, so the distinct count
   (and hence completion slot and losses) matches Drive exactly.
   Returns (elapsed, losses, slots swept). *)
let sweep_member ~mask ~period ~phase ~cap ~needed ~max_slots fault =
  let seen = Array.make cap false in
  let distinct = ref 0 and losses = ref 0 in
  let j = ref 0 and o = ref phase in
  let elapsed = ref None in
  let d = ref 0 in
  while !elapsed = None && !d < max_slots do
    let lost = Fault.advance fault in
    if mask.(!o) then begin
      (if lost then incr losses
       else begin
         let r = !j mod cap in
         if not seen.(r) then begin
           seen.(r) <- true;
           incr distinct;
           if !distinct >= needed then elapsed := Some (!d + 1)
         end
       end);
      incr j
    end;
    o := (if !o + 1 = period then 0 else !o + 1);
    incr d
  done;
  (!elapsed, !losses, !d)

let for_classes ?pool ~n f =
  match pool with
  | Some pool -> Pool.parallel_for pool ~n f
  | None ->
      for i = 0 to n - 1 do
        f i
      done

(* Per-class outcome histogram -> retirement rows: completions ascending
   by elapsed, then the expired bucket; the class's total losses ride on
   the first row (Retire sums row losses without weighting them). *)
let rows_of_hist ~file ~deadline elapsed_counts ~expired ~losses =
  let entries =
    Hashtbl.fold (fun e c acc -> (e, c) :: acc) elapsed_counts []
    |> List.sort compare
  in
  let rows =
    List.map
      (fun (e, c) ->
        { Retire.file; deadline; elapsed = Some e; weight = c; losses = 0 })
      entries
  in
  let rows =
    if expired > 0 then
      rows
      @ [ { Retire.file; deadline; elapsed = None; weight = expired; losses = 0 } ]
    else rows
  in
  match rows with
  | [] -> []
  | first :: rest -> { first with Retire.losses } :: rest

(* ---- Trace mode: exact Drive.run replay, class-shared sweep ---- *)

let run ?pool ?prep ?max_slots ~plan ~capacities ~fault ~seed trace =
  let who = "Cohort.run" in
  let capacity = capacity_fn ~who capacities in
  let prep = prep_for ~who ?prep plan in
  let period = Drive.period prep in
  let occ = Drive.occurrences prep in
  let max_slots =
    match max_slots with
    | Some m -> m
    | None -> 100 * Drive.data_cycle prep ~capacity
  in
  List.iter
    (fun (r : Workload.request) ->
      if r.Workload.issued < 0 then invalid_arg (who ^ ": negative start");
      if r.Workload.needed < 1 then invalid_arg (who ^ ": needed must be >= 1");
      if r.Workload.needed > capacity r.Workload.file then
        invalid_arg (who ^ ": needed exceeds the file's capacity");
      if not (Hashtbl.mem occ r.Workload.file) then
        invalid_arg (who ^ ": file never broadcast"))
    trace;
  let reqs = Array.of_list trace in
  let n = Array.length reqs in
  (* Group member trace-indices by class; members stay in trace order. *)
  let groups : (key, int list ref) Hashtbl.t = Hashtbl.create 64 in
  Array.iteri
    (fun k (r : Workload.request) ->
      let key =
        {
          file = r.Workload.file;
          phase = r.Workload.issued mod period;
          needed = r.Workload.needed;
          deadline = r.Workload.deadline;
        }
      in
      match Hashtbl.find_opt groups key with
      | Some l -> l := k :: !l
      | None -> Hashtbl.add groups key (ref [ k ]))
    reqs;
  let classes =
    Hashtbl.fold (fun key members acc -> (key, List.rev !members) :: acc) groups []
    |> List.sort compare
    |> Array.of_list
  in
  let masks = Hashtbl.create 16 in
  Array.iter
    (fun (key, _) ->
      if not (Hashtbl.mem masks key.file) then
        Hashtbl.add masks key.file (mask_of prep ~period key.file))
    classes;
  let outcomes = Array.make n (None, 0) in
  let obs = Obs.Control.enabled () in
  for_classes ?pool ~n:(Array.length classes) (fun ci ->
      let key, members = classes.(ci) in
      let mask = Hashtbl.find masks key.file in
      let cap = capacity key.file in
      let swept = ref 0 in
      List.iter
        (fun k ->
          let f = fault ~seed:(Intmath.mix64 (seed + k)) in
          Fault.reset_to f reqs.(k).Workload.issued;
          let elapsed, losses, d =
            sweep_member ~mask ~period ~phase:key.phase ~cap
              ~needed:key.needed ~max_slots f
          in
          outcomes.(k) <- (elapsed, losses);
          swept := !swept + d)
        members;
      if obs then Obs.Registry.add obs_swept !swept);
  if obs then begin
    Obs.Registry.add obs_classes (Array.length classes);
    Obs.Registry.add obs_members n
  end;
  Retire.retire ~sinks
    (List.init n (fun k ->
         let elapsed, losses = outcomes.(k) in
         {
           Retire.file = reqs.(k).Workload.file;
           deadline = reqs.(k).Workload.deadline;
           elapsed;
           weight = 1;
           losses;
         }))

(* ---- Population mode: closed-form class list ---- *)

(* Canonical order + merged duplicates: the result is invariant under
   any permutation or split of the input class list. *)
let canonicalize ~who classes =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun c ->
      if c.weight < 0 then invalid_arg (who ^ ": negative class weight");
      if c.weight > 0 then
        Hashtbl.replace tbl c.key
          (c.weight + Option.value ~default:0 (Hashtbl.find_opt tbl c.key)))
    classes;
  Hashtbl.fold (fun key weight acc -> { key; weight } :: acc) tbl []
  |> List.sort (fun a b -> compare a.key b.key)
  |> Array.of_list

(* Analytic fold for memoryless loss (None / Bernoulli), exact to double
   precision. Residue r of the block cycle is visited at relative
   ordinals r+1, r+1+cap, ...; with iid loss p per observed occurrence,
   "residue r collected within the first J ordinals" has probability
   1 - p^v_r(J) (v_r = visits so far), independent across residues
   because the ordinal sets are disjoint. A(J) = P(at least [needed]
   residues collected) is then a Poisson-binomial tail, computed by a
   small DP; the completion-ordinal law is m(J) = A(J) - A(J-1). The
   class's integer weight is apportioned over {m(J)} + the expiry tail
   by largest remainder, and expected losses follow from Wald's
   identity: E[losses] = p * E[ordinals observed]. *)
let analytic_class ~offs ~period ~phase ~cap ~needed ~deadline ~max_slots ~p
    ~weight ~file =
  let occ = Array.length offs in
  let i0 = ref 0 in
  while !i0 < occ && offs.(!i0) < phase do
    incr i0
  done;
  let i0 = !i0 in
  let d_of_ordinal j =
    let idx = i0 + j - 1 in
    offs.(idx mod occ) + (period * (idx / occ)) - phase
  in
  let jmax =
    let full = max_slots / period and rem = max_slots mod period in
    let inwin =
      Array.fold_left
        (fun acc o ->
          if (o - phase + period) mod period < rem then acc + 1 else acc)
        0 offs
    in
    (occ * full) + inwin
  in
  let pow_p v = if v = 0 then 1.0 else p ** float_of_int v in
  (* P(>= needed residues collected) given per-residue visit counts. *)
  let tail_prob v =
    let dp = Array.make needed 0.0 in
    dp.(0) <- 1.0;
    for r = 0 to cap - 1 do
      let c = 1.0 -. pow_p v.(r) in
      if c > 0.0 then
        for k = needed - 1 downto 0 do
          let flow = dp.(k) *. c in
          dp.(k) <- dp.(k) -. flow;
          if k + 1 < needed then dp.(k + 1) <- dp.(k + 1) +. flow
        done
    done;
    1.0 -. Array.fold_left ( +. ) 0.0 dp
  in
  let visits = Array.make cap 0 in
  let masses = ref [] (* (ordinal, mass), reverse order *) in
  let prev_a = ref 0.0 in
  let j = ref 0 in
  let converged = ref false in
  while (not !converged) && !j < jmax do
    incr j;
    let r = (!j - 1) mod cap in
    visits.(r) <- visits.(r) + 1;
    let a = tail_prob visits in
    let m = a -. !prev_a in
    if m > 0.0 then masses := (!j, m) :: !masses;
    prev_a := a;
    if 1.0 -. a < 1e-15 then converged := true
  done;
  let tail = Float.max 0.0 (1.0 -. !prev_a) in
  (* Largest-remainder apportionment of the integer weight over the
     completion masses plus the expiry tail. *)
  let buckets =
    Array.of_list (List.rev ((None, tail) :: List.rev_map (fun (j, m) -> (Some j, m)) !masses))
  in
  let nb = Array.length buckets in
  let alloc = Array.make nb 0 in
  let fracs = Array.make nb (0.0, 0) in
  let given = ref 0 in
  Array.iteri
    (fun i (_, m) ->
      let q = m *. float_of_int weight in
      let fl = int_of_float (floor q) in
      alloc.(i) <- fl;
      given := !given + fl;
      fracs.(i) <- (q -. float_of_int fl, i))
    buckets;
  let order = Array.copy fracs in
  Array.sort
    (fun (fa, ia) (fb, ib) ->
      if fa <> fb then compare fb fa else compare ia ib)
    order;
  let remaining = ref (weight - !given) in
  Array.iter
    (fun (_, i) ->
      if !remaining > 0 then begin
        alloc.(i) <- alloc.(i) + 1;
        decr remaining
      end)
    order;
  (* Rows + Wald losses. *)
  let elapsed_counts = Hashtbl.create 32 in
  let expired = ref 0 in
  let ordinals = ref 0.0 in
  Array.iteri
    (fun i (bucket, _) ->
      if alloc.(i) > 0 then
        match bucket with
        | Some jo ->
            Hashtbl.replace elapsed_counts (d_of_ordinal jo + 1) alloc.(i);
            ordinals := !ordinals +. float_of_int (alloc.(i) * jo)
        | None ->
            expired := !expired + alloc.(i);
            ordinals := !ordinals +. float_of_int (alloc.(i) * jmax))
    buckets;
  let losses = int_of_float (Float.round (p *. !ordinals)) in
  rows_of_hist ~file ~deadline elapsed_counts ~expired:!expired ~losses

let sampled_class ~model ~seed ~key ~weight ~mask ~period ~cap ~max_slots =
  let tag = class_tag ~seed key in
  let elapsed_counts = Hashtbl.create 32 in
  let expired = ref 0 and losses = ref 0 and swept = ref 0 in
  for i = 0 to weight - 1 do
    let f = fault_of_model model ~seed:(Intmath.mix64 (tag + i)) in
    Fault.reset_to f key.phase;
    let elapsed, l, d =
      sweep_member ~mask ~period ~phase:key.phase ~cap ~needed:key.needed
        ~max_slots f
    in
    (match elapsed with
    | Some e ->
        Hashtbl.replace elapsed_counts e
          (1 + Option.value ~default:0 (Hashtbl.find_opt elapsed_counts e))
    | None -> incr expired);
    losses := !losses + l;
    swept := !swept + d
  done;
  let rows =
    rows_of_hist ~file:key.file ~deadline:key.deadline elapsed_counts
      ~expired:!expired ~losses:!losses
  in
  (rows, !swept)

let run_population ?pool ?prep ?max_slots ?(sampled = false) ~plan ~capacities
    ~model ~seed classes =
  let who = "Cohort.run_population" in
  let capacity = capacity_fn ~who capacities in
  let prep = prep_for ~who ?prep plan in
  let period = Drive.period prep in
  let occ = Drive.occurrences prep in
  let classes = canonicalize ~who classes in
  Array.iter
    (fun c ->
      if c.key.phase < 0 || c.key.phase >= period then
        invalid_arg (who ^ ": phase out of [0, period)");
      if c.key.needed < 1 then invalid_arg (who ^ ": needed must be >= 1");
      if c.key.needed > capacity c.key.file then
        invalid_arg (who ^ ": needed exceeds the file's capacity");
      if not (Hashtbl.mem occ c.key.file) then
        invalid_arg (who ^ ": file never broadcast"))
    classes;
  let max_slots =
    match max_slots with
    | Some m -> m
    | None -> 100 * Drive.data_cycle prep ~capacity
  in
  let analytic =
    (not sampled) && (match model with No_loss | Bernoulli _ -> true | Burst _ -> false)
  in
  let p = loss_rate_of_model model in
  let masks = Hashtbl.create 16 in
  Array.iter
    (fun c ->
      if not (Hashtbl.mem masks c.key.file) then
        Hashtbl.add masks c.key.file (mask_of prep ~period c.key.file))
    classes;
  let nclasses = Array.length classes in
  let rows = Array.make nclasses [] in
  let obs = Obs.Control.enabled () in
  for_classes ?pool ~n:nclasses (fun ci ->
      let c = classes.(ci) in
      let cap = capacity c.key.file in
      if analytic then begin
        rows.(ci) <-
          analytic_class
            ~offs:(Drive.slot_offsets prep c.key.file)
            ~period ~phase:c.key.phase ~cap ~needed:c.key.needed
            ~deadline:c.key.deadline ~max_slots ~p ~weight:c.weight
            ~file:c.key.file;
        if obs then Obs.Registry.incr obs_analytic
      end
      else begin
        let r, swept =
          sampled_class ~model ~seed ~key:c.key ~weight:c.weight
            ~mask:(Hashtbl.find masks c.key.file)
            ~period ~cap ~max_slots
        in
        rows.(ci) <- r;
        if obs then Obs.Registry.add obs_swept swept
      end);
  if obs then begin
    Obs.Registry.add obs_classes nclasses;
    Obs.Registry.add obs_members
      (Array.fold_left (fun acc c -> acc + c.weight) 0 classes)
  end;
  Retire.retire ~sinks (List.concat (Array.to_list rows))
