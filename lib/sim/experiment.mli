(** Batched stochastic retrieval experiments.

    Runs many independent clients against a program under a fault model and
    aggregates latency and deadline statistics — the workhorse behind the
    fault-model ablation (E9) and the examples. *)

type summary = {
  trials : int;
  completed : int;  (** retrievals that finished within the slot budget *)
  missed_deadline : int;  (** completed late or not at all *)
  mean_latency : float;  (** over completed retrievals; [nan] if none *)
  max_latency : int;  (** 0 if none completed *)
  min_latency : int;  (** 0 if none completed *)
  total_losses : int;
}

val pp_summary : Format.formatter -> summary -> unit

val run :
  ?max_slots:int -> program:Pindisk.Program.t -> file:int -> needed:int ->
  deadline:int -> fault:(seed:int -> Fault.t) -> trials:int -> seed:int ->
  unit -> summary
(** [run ~program ~file ~needed ~deadline ~fault ~trials ~seed ()] starts
    [trials] clients at uniformly random tune-in slots within one data
    cycle (deterministic in [seed]), each with a fresh fault process
    [fault ~seed:k]. *)

val miss_ratio : summary -> float
(** [missed_deadline / trials]. *)
