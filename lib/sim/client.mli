(** One client retrieving one file from a broadcast program.

    The client tunes in at some slot, watches blocks "as they go by",
    keeps every correctly received {e distinct} dispersed block of its
    file, and is done once it holds [needed] of them — with IDA, any
    [needed = m] distinct blocks reconstruct the file; without IDA the
    capacity equals [m], so "any [m] distinct" coincides with "all [m]". *)

type outcome = {
  completed_at : int option;
      (** the slot whose block completed the retrieval, if any *)
  elapsed : int option;
      (** slots from tune-in through completion, inclusive *)
  receptions : int;  (** correct receptions of this file's blocks *)
  losses : int;  (** receptions of this file's blocks ruined by faults *)
}

val pp_outcome : Format.formatter -> outcome -> unit

type error =
  | Unknown_file  (** not in the (possibly degraded) program *)
  | Never_broadcast  (** in the program but on no slot *)
  | Needed_exceeds_capacity of int
      (** the file's capacity; the client could never finish *)
  | Bad_request of string  (** malformed request (negative start, …) *)

val pp_error : Format.formatter -> error -> unit

val retrieve_checked :
  ?max_slots:int -> ?report:(slot:int -> file:int -> lost:bool -> unit) ->
  program:Pindisk.Program.t -> file:int -> needed:int ->
  start:int -> fault:Fault.t -> unit -> (outcome, error) result
(** Typed variant of {!retrieve}: the conditions the raising API treats
    as caller bugs become values. [Unknown_file] in particular is a
    live runtime condition once {!Pindisk_adapt} sheds files from a
    degraded program while clients still request them. *)

val retrieve :
  ?max_slots:int -> ?report:(slot:int -> file:int -> lost:bool -> unit) ->
  program:Pindisk.Program.t -> file:int -> needed:int ->
  start:int -> fault:Fault.t -> unit -> outcome
(** [retrieve ~program ~file ~needed ~start ~fault ()] simulates one
    retrieval. The fault process is {!Fault.reset_to} the start slot and
    advanced once per slot. [max_slots] (default [100 * data_cycle])
    bounds the wait: on overrun [completed_at = None]. [report], when
    given, is called for every busy slot the client watches with the
    reception outcome — the feedback path a server-side loss estimator
    (e.g. [Pindisk_adapt.Estimator]) consumes. Raises
    [Invalid_argument] when [needed] exceeds the file's capacity (the
    client could never finish) or the file is not broadcast — a legacy
    wrapper over {!retrieve_checked}, which returns those as values. *)

val deadline_met : outcome -> deadline:int -> bool
(** Whether the retrieval finished within [deadline] slots of tuning in. *)
