(** The shared retirement fold behind every simulation engine.

    {!Engine.run} (per-client), {!Drive.run} (single-sweep) and
    {!Cohort.run} (weighted classes) all end the same way: a sequence of
    per-request outcomes is folded into global and per-file statistics
    plus [lib/obs] counters and wait histograms. This module owns that
    fold — and the result types the engines share — so the three paths
    cannot drift apart.

    A {!row} is one outcome with a [weight]: how many statistically
    identical clients it stands for. Weight-1 rows folded in trace order
    reproduce the original [Engine.run] aggregation exactly, including
    the float accumulation order of the latency accumulators; the cohort
    engine feeds class-sized weights through {!Pindisk_util.Stats}
    run-length storage and {!Pindisk_obs.Histogram.observe_n} so a
    million-client class costs O(1), not O(weight). *)

type file_stats = {
  file : int;
  requests : int;
  missed : int;  (** late or never completed *)
  latency : Pindisk_util.Stats.t;  (** completed retrievals only *)
}

type result = {
  requests : int;
  completed : int;
  missed : int;
  latency : Pindisk_util.Stats.t;
  losses : int;
  per_file : file_stats list;  (** ascending by file id *)
}

type sinks
(** Obs handles for one engine namespace ([engine.*] / [drive.*] /
    [cohort.*]): requests/completed/missed/losses counters, the global
    wait histogram and the per-file [<prefix>.wait.N] / [<prefix>.miss.N]
    mirrors. *)

val sinks : prefix:string -> sinks
(** Find-or-create the interned handles under [prefix]. Cheap enough per
    run; callers that retire often should hoist one to module level. *)

type row = {
  file : int;
  deadline : int;
  elapsed : int option;  (** [None] = expired / never completed *)
  weight : int;  (** identical clients this row stands for; [0] skips *)
  losses : int;  (** total own-file losses across the [weight] clients *)
}

val merge : result -> result -> result
(** Combine two results as if their rows had been retired in sequence
    (first [a]'s, then [b]'s): counts add, latency accumulators absorb in
    that order, per-file lists merge-join by id. Used by the multi-channel
    engine to fold K per-channel results into one. Pure — no obs
    recording (each half already recorded when it retired). *)

val retire : sinks:sinks -> row list -> result
(** Fold rows in order into a {!result}, recording into [sinks] when
    {!Pindisk_obs.Control.enabled}. [elapsed > deadline] counts the row
    as both completed and missed, exactly like the per-client engines.
    Raises [Invalid_argument] on a negative weight. *)
