module Q = Pindisk_util.Q
module Intmath = Pindisk_util.Intmath

type certificate =
  | Density_above_one of Q.t
  | Pigeonhole of { window : int; demand : int }
  | Exhausted

type verdict = Schedulable of Schedule.t | Infeasible of certificate | Unknown

type report = {
  density : Q.t;
  harmonic : bool;
  distinct_windows : int;
  unit_system : bool;
  within_sa_guarantee : bool;
  certificate : certificate option;
  verdict : verdict;
}

let pigeonhole_violation sys =
  let windows = List.map (fun t -> t.Task.b) sys in
  (* If the density exceeds 1 then w = lcm(windows) is a witness
     (demand(lcm) = lcm * density > lcm), so scanning up to the lcm is
     complete whenever it is affordable. *)
  let cap =
    match Intmath.lcm_list windows with
    | lcm -> min 100_000 lcm
    | exception Intmath.Overflow -> 100_000
  in
  (* The demand function only jumps at multiples of some window, so only
     those w need checking. *)
  let candidates =
    List.concat_map
      (fun b -> List.init (cap / b) (fun k -> (k + 1) * b))
      (List.sort_uniq compare windows)
    |> List.sort_uniq compare
  in
  let demand w =
    Intmath.sum (List.map (fun t -> t.Task.a * (w / t.Task.b)) sys)
  in
  let rec scan = function
    | [] -> None
    | w :: rest ->
        let d = demand w in
        if d > w then Some (w, d) else scan rest
  in
  scan candidates

let is_harmonic sys =
  let windows = List.sort_uniq compare (List.map (fun t -> t.Task.b) sys) in
  let rec go = function
    | a :: (b :: _ as rest) -> b mod a = 0 && go rest
    | _ -> true
  in
  go windows

let analyze ?(exact_states = 500_000) sys =
  (match Task.check_system sys with
  | Error e -> invalid_arg ("Analysis.analyze: " ^ e)
  | Ok () -> ());
  if sys = [] then invalid_arg "Analysis.analyze: empty system";
  let density = Task.system_density sys in
  let unit_system = Task.is_unit_system sys in
  let certificate =
    if Q.( > ) density Q.one then Some (Density_above_one density)
    else
      match pigeonhole_violation sys with
      | Some (window, demand) -> Some (Pigeonhole { window; demand })
      | None -> None
  in
  let verdict =
    match certificate with
    | Some c -> Infeasible c
    | None -> (
        match Scheduler.schedule ~algorithm:Scheduler.Auto sys with
        | Some sched -> Schedulable sched
        | None ->
            if unit_system then
              match Exact.decide ~max_states:exact_states sys with
              | Exact.Feasible sched -> Schedulable sched
              | Exact.Infeasible -> Infeasible Exhausted
              | Exact.Too_large -> Unknown
            else Unknown)
  in
  let certificate =
    match (certificate, verdict) with
    | None, Infeasible c -> Some c
    | c, _ -> c
  in
  {
    density;
    harmonic = is_harmonic sys;
    distinct_windows =
      List.length (List.sort_uniq compare (List.map (fun t -> t.Task.b) sys));
    unit_system;
    within_sa_guarantee = Q.( <= ) density (Q.make 1 2);
    certificate;
    verdict;
  }

let pp_certificate ppf = function
  | Density_above_one d -> Format.fprintf ppf "density %a > 1" Q.pp d
  | Pigeonhole { window; demand } ->
      Format.fprintf ppf
        "pigeonhole: every %d-slot span is forced to carry %d demands" window
        demand
  | Exhausted -> Format.fprintf ppf "exhaustive search: no infinite schedule"

let pp_report ppf r =
  Format.fprintf ppf "density %a%s; %d distinct window(s)%s%s; " Q.pp r.density
    (if r.within_sa_guarantee then " (within the 1/2 guarantee)" else "")
    r.distinct_windows
    (if r.harmonic then ", harmonic" else "")
    (if r.unit_system then "" else ", multi-unit");
  match r.verdict with
  | Schedulable sched ->
      Format.fprintf ppf "SCHEDULABLE (period %d)" (Schedule.period sched)
  | Infeasible c -> Format.fprintf ppf "INFEASIBLE: %a" pp_certificate c
  | Unknown -> Format.fprintf ppf "UNKNOWN (heuristics failed, too large for exact search)"
