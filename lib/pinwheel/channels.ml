module Q = Pindisk_util.Q

type shard = {
  channel : int;
  tasks : Task.system;
  density : Q.t;
  plan : Plan.t;
}

type t = {
  channels : int;
  shards : shard list;
  shed : Task.system;
}

let density (s : shard) = s.density

(* LPT over exact densities. [bins.(c)] is channel [c]'s running density
   and member list (reverse placement order — only the density matters
   during packing; output order is re-derived from the input). *)
let partition ~channels sys =
  if channels < 1 then invalid_arg "Channels.partition: channels must be >= 1";
  (match Task.check_system sys with
  | Ok () -> ()
  | Error e -> invalid_arg ("Channels.partition: " ^ e));
  if channels = 1 then (List.map (fun t -> (0, t)) sys, [])
  else begin
    let load = Array.make channels Q.zero in
    let members : Task.t list array = Array.make channels [] in
    let placed : (int, int) Hashtbl.t = Hashtbl.create 16 in
    (* Decreasing density; stable, so equal densities keep input order. *)
    let by_density =
      List.stable_sort
        (fun (a : Task.t) (b : Task.t) ->
          Q.compare (Task.density b) (Task.density a))
        sys
    in
    List.iter
      (fun (t : Task.t) ->
        (* Channels ordered by current load (ties: lower index), take the
           first whose shard stays plausibly feasible. *)
        let order =
          List.stable_sort
            (fun a b -> Q.compare load.(a) load.(b))
            (List.init channels Fun.id)
        in
        let fits c =
          match Density.classify (t :: members.(c)) with
          | Density.Infeasible _ -> false
          | Density.Guaranteed _ | Density.Unknown -> true
        in
        match List.find_opt fits order with
        | Some c ->
            load.(c) <- Q.add load.(c) (Task.density t);
            members.(c) <- t :: members.(c);
            Hashtbl.replace placed t.Task.id c
        | None -> ())
      by_density;
    let assignment =
      List.filter_map
        (fun (t : Task.t) ->
          Option.map (fun c -> (c, t)) (Hashtbl.find_opt placed t.Task.id))
        sys
    in
    let shed =
      List.filter (fun (t : Task.t) -> not (Hashtbl.mem placed t.Task.id)) sys
    in
    (assignment, shed)
  end

let empty_plan = lazy (Plan.progressions [])

(* Plan one shard, shedding its densest task on scheduler failure until
   something plans (the empty shard always does). *)
let rec plan_shard ?algorithm ~channel tasks shed =
  match tasks with
  | [] -> ({ channel; tasks = []; density = Q.zero; plan = Lazy.force empty_plan }, shed)
  | _ -> (
      match Scheduler.plan ?algorithm tasks with
      | Some plan ->
          ( { channel; tasks; density = Task.system_density tasks; plan },
            shed )
      | None ->
          let worst =
            List.fold_left
              (fun (acc : Task.t) (t : Task.t) ->
                let c = Q.compare (Task.density t) (Task.density acc) in
                if c > 0 || (c = 0 && t.Task.id > acc.Task.id) then t else acc)
              (List.hd tasks) (List.tl tasks)
          in
          plan_shard ?algorithm ~channel
            (List.filter (fun (t : Task.t) -> t.Task.id <> worst.Task.id) tasks)
            (worst :: shed))

let plan ?algorithm ~channels sys =
  let assignment, placement_shed = partition ~channels sys in
  let shards, sched_shed =
    List.fold_left
      (fun (shards, shed) channel ->
        let tasks =
          List.filter_map
            (fun (c, t) -> if c = channel then Some t else None)
            assignment
        in
        let shard, shed = plan_shard ?algorithm ~channel tasks shed in
        (shard :: shards, shed))
      ([], []) (List.init channels Fun.id)
  in
  let shed_ids =
    List.map (fun (t : Task.t) -> t.Task.id) (placement_shed @ sched_shed)
  in
  {
    channels;
    shards = List.rev shards;
    shed = List.filter (fun (t : Task.t) -> List.mem t.Task.id shed_ids) sys;
  }

let find_channel t id =
  List.find_map
    (fun s ->
      if List.exists (fun (tk : Task.t) -> tk.Task.id = id) s.tasks then
        Some s.channel
      else None)
    t.shards
