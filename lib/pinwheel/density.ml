module Q = Pindisk_util.Q

type verdict =
  | Infeasible of string
  | Guaranteed of string
  | Unknown

let pp_verdict ppf = function
  | Infeasible r -> Format.fprintf ppf "infeasible (%s)" r
  | Guaranteed r -> Format.fprintf ppf "schedulable (%s)" r
  | Unknown -> Format.fprintf ppf "undecided by density bounds"

let schedulable_threshold ~min_window =
  if min_window < 2 then Q.one else Q.make 5 6

let q_str q = Printf.sprintf "%d/%d" q.Q.num q.Q.den

let classify sys =
  match sys with
  | [] -> Guaranteed "empty system"
  | _ ->
      let d = Task.system_density sys in
      let min_window =
        List.fold_left (fun acc t -> min acc t.Task.b) max_int sys
      in
      let has_unit b = List.exists (fun t -> t.Task.a = 1 && t.Task.b = b) sys in
      if Q.( > ) d Q.one then
        Infeasible (Printf.sprintf "density %s exceeds 1" (q_str d))
      else if has_unit 2 && has_unit 3 && List.length sys >= 3 then
        (* The paper's Example 1 family: {2, 3, M} is infeasible for every
           finite M (Holte et al. 1989). Any valid schedule for a superset,
           restricted to the windows-2 and -3 tasks plus any third task
           (which must occur at least once per window), would schedule
           {2, 3, M} — contradiction. *)
        Infeasible "contains {2, 3, _}: infeasible for every third task"
      else begin
        let limit = schedulable_threshold ~min_window in
        if Q.( <= ) d (Q.make 1 2) && min_window >= 2 then
          Guaranteed
            (Printf.sprintf "density %s <= 1/2: Holte et al. bound, constructive via Sa"
               (q_str d))
        else if Q.( <= ) d limit && min_window >= 2 then
          Guaranteed
            (Printf.sprintf "density %s <= 5/6: Kawamura density threshold"
               (q_str d))
        else Unknown
      end
