module Q = Pindisk_util.Q

let idle = -1

type t = { period : int; slots : int array }

let make slots =
  if Array.length slots = 0 then invalid_arg "Schedule.make: empty period";
  Array.iter
    (fun v -> if v < -1 then invalid_arg "Schedule.make: bad slot value")
    slots;
  { period = Array.length slots; slots = Array.copy slots }

let period s = s.period

let task_at s t =
  if t < 0 then invalid_arg "Schedule.task_at: negative slot";
  s.slots.(t mod s.period)

let occurrences s i =
  let acc = ref [] in
  for t = s.period - 1 downto 0 do
    if s.slots.(t) = i then acc := t :: !acc
  done;
  !acc

let count s i = List.length (occurrences s i)

let task_ids s =
  Array.to_list s.slots
  |> List.filter (fun v -> v <> idle)
  |> List.sort_uniq Stdlib.compare

let utilization s =
  let busy = Array.fold_left (fun n v -> if v = idle then n else n + 1) 0 s.slots in
  Q.make busy s.period

let max_gap s i =
  match occurrences s i with
  | [] -> None
  | [ t ] ->
      ignore t;
      Some s.period
  | first :: _ as occs ->
      (* Gaps between consecutive occurrences, wrapping around the period. *)
      let rec go prev acc = function
        | [] -> max acc (first + s.period - prev)
        | t :: rest -> go t (max acc (t - prev)) rest
      in
      Some (go first 0 (List.tl occs))

let rotate s k =
  let k = ((k mod s.period) + s.period) mod s.period in
  { period = s.period; slots = Array.init s.period (fun t -> s.slots.((t + k) mod s.period)) }

let map_tasks s f =
  {
    period = s.period;
    slots = Array.map (fun v -> if v = idle then idle else f v) s.slots;
  }

let pp ppf s =
  Array.iteri
    (fun t v ->
      if t > 0 then Format.fprintf ppf " ";
      if v = idle then Format.fprintf ppf "." else Format.fprintf ppf "%d" v)
    s.slots
