module Q = Pindisk_util.Q

let idle = -1

type t = { period : int; slots : int array }

let make slots =
  if Array.length slots = 0 then invalid_arg "Schedule.make: empty period";
  Array.iter
    (fun v -> if v < -1 then invalid_arg "Schedule.make: bad slot value")
    slots;
  { period = Array.length slots; slots = Array.copy slots }

let period s = s.period

let task_at s t =
  if t < 0 then invalid_arg "Schedule.task_at: negative slot";
  s.slots.(t mod s.period)

let occurrences s i =
  let acc = ref [] in
  for t = s.period - 1 downto 0 do
    if s.slots.(t) = i then acc := t :: !acc
  done;
  !acc

let count s i =
  let n = ref 0 in
  for t = 0 to s.period - 1 do
    if s.slots.(t) = i then incr n
  done;
  !n

let fold_occurrences s i f init =
  let acc = ref init in
  for t = 0 to s.period - 1 do
    if s.slots.(t) = i then acc := f !acc t
  done;
  !acc

let task_ids s =
  Array.to_list s.slots
  |> List.filter (fun v -> v <> idle)
  |> List.sort_uniq Stdlib.compare

let utilization s =
  let busy = Array.fold_left (fun n v -> if v = idle then n else n + 1) 0 s.slots in
  Q.make busy s.period

let max_gap s i =
  (* Single pass: track the first and the previous occurrence; the wrap
     gap closes the cycle. A lone occurrence yields first = prev, so the
     wrap gap is exactly the period. *)
  let first = ref (-1) and prev = ref (-1) and acc = ref 0 in
  for t = 0 to s.period - 1 do
    if s.slots.(t) = i then begin
      if !first < 0 then first := t else acc := max !acc (t - !prev);
      prev := t
    end
  done;
  if !first < 0 then None else Some (max !acc (!first + s.period - !prev))

let rotate s k =
  let k = ((k mod s.period) + s.period) mod s.period in
  { period = s.period; slots = Array.init s.period (fun t -> s.slots.((t + k) mod s.period)) }

let map_tasks s f =
  {
    period = s.period;
    slots = Array.map (fun v -> if v = idle then idle else f v) s.slots;
  }

let pp ppf s =
  Array.iteri
    (fun t v ->
      if t > 0 then Format.fprintf ppf " ";
      if v = idle then Format.fprintf ppf "." else Format.fprintf ppf "%d" v)
    s.slots
