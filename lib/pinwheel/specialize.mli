(** Window specialization: single- and multi-base integer reduction.

    Specialization replaces each window [b] by a smaller, structured value
    [b' <= b]; by rule R0 of the pinwheel algebra, a schedule for the
    specialized system also serves the original. With chain base [x], a
    window [b >= x] specializes to the largest [x·2^k <= b], losing less
    than a factor of two; the specialized system is then packed losslessly
    by {!Harmonic}.

    [x = 1] gives Holte et al.'s single-integer reduction scheduler [Sa]
    (every window rounded to a power of two), which schedules {e every}
    system of density at most 1/2. Searching all candidate bases ("[Sx]"),
    as in Chan & Chin's reductions, retains the 1/2 guarantee but succeeds
    far beyond it in practice — the density-sweep experiment (E6) measures
    how far. *)


val to_chain : x:int -> int -> int option
(** [to_chain ~x b] is the largest [x·2^k <= b], or [None] when [b < x]. *)

val specialized_density : x:int -> Task.system -> Pindisk_util.Q.t option
(** Density of the system after specializing every window to base [x]
    (counting each task as [a] unit tasks of the specialized window);
    [None] if some window is below [x]. *)

val candidate_bases : Task.system -> int list
(** All plausible chain bases for a system: the distinct values
    [floor (b_i / 2^j)] not exceeding the smallest window. Always
    non-empty for a non-empty system (contains 1). *)

val plan_with_base : x:int -> Task.system -> Plan.t option
(** Specialize to base [x] and pack, as a dispatch plan (verified by
    streaming, never materialized). [None] if some window is below [x] or
    the specialized density exceeds 1. The plan satisfies the original
    system (multi-unit tasks are decomposed into exact-period copies). *)

val schedule_with_base : x:int -> Task.system -> Schedule.t option
(** [plan_with_base] materialized: the eager path is {e derived from} the
    plan, so the two are slot-for-slot equal by construction. *)

val sa : Task.system -> Schedule.t option
(** Single-integer reduction: {!schedule_with_base} with [x = 1].
    Guaranteed to succeed on unit systems of density <= 1/2. *)

val sa_plan : Task.system -> Plan.t option

val sx : Task.system -> Schedule.t option
(** Multi-base search: tries every {!candidate_bases} value, picks the one
    with the smallest specialized density, and packs. Succeeds whenever
    {!sa} does. *)

val sx_plan : Task.system -> Plan.t option
(** The plan {!sx} materializes. *)

val sx_base : Task.system -> int option
(** The base {!sx} would choose (the candidate of minimum specialized
    density among the feasible ones), for introspection. *)
