(** Multi-channel sharding: partition one pinwheel system across K
    parallel broadcast channels.

    The paper's model — and every scheduler in this library — assumes a
    single broadcast channel. The Kenyon–Schabanel–Young PTAS for Data
    Broadcast is about scheduling messages over {e multiple} channels,
    and that is the sharding story for serving heavy traffic: K channels
    of the same bandwidth carry (up to scheduling slack) K times the
    aggregate density. This module is the task-level layer: it splits a
    {!Task.system} into K sub-systems by density-balanced packing and
    plans each shard independently with the existing single-channel
    {!Scheduler} — channels are physically independent, so a shard plan
    is just a {!Plan.t} plus a channel coordinate.

    {b Packing.} Longest-processing-time (LPT) greedy on exact rational
    densities: tasks are placed in order of decreasing density, each onto
    the currently least-loaded channel, subject to the shard staying
    plausibly schedulable ({!Density.classify} must not answer
    [Infeasible]). LPT's classical bound applies verbatim to densities:
    the heaviest shard carries at most [avg + (1 - 1/K) · max_task], so
    e.g. a system of tasks with individual densities <= 1/3 and total
    density <= K/2 always shards with every channel <= 5/6 — inside the
    Kawamura guarantee. Round-robin offers no such bound (it can stack
    the K heaviest tasks onto one channel); the test suite pins the LPT
    bound as a qcheck property.

    {b Shedding.} A task that cannot be placed on any channel without
    making that shard provably infeasible — or whose shard the downstream
    scheduler then fails to plan — is {e shed}, mirroring the admission
    control of the degradation ladder. Feasible designs shard with
    [shed = []]; the multichannel bench uses shedding to measure how many
    files K channels actually serve.

    {b K = 1 is the identity.} With a single channel the partition is
    forced, the input order is preserved, and {!plan} calls
    {!Scheduler.plan} on the original system unchanged — the plan, and
    everything downstream of it (simulate output, bench baselines), is
    byte-for-byte the single-channel result. The test suite pins this. *)

type shard = {
  channel : int;  (** 0-based channel coordinate *)
  tasks : Task.system;  (** in original input order *)
  density : Pindisk_util.Q.t;
  plan : Plan.t;
}

type t = {
  channels : int;
  shards : shard list;  (** ascending by channel; every channel present *)
  shed : Task.system;  (** tasks no channel could take, original order *)
}

val partition :
  channels:int -> Task.system -> (int * Task.t) list * Task.system
(** [partition ~channels sys] is the density-balanced LPT assignment:
    [(channel, task)] pairs in original task order, plus the shed tasks.
    Placement alone — no scheduler runs. A task is shed only when every
    channel's resulting shard would classify [Infeasible]. With
    [channels = 1] the assignment is the identity (no sorting, no
    pre-check: the single-channel pipeline owns feasibility). Raises
    [Invalid_argument] if [channels < 1] or [sys] has duplicate ids. *)

val plan :
  ?algorithm:Scheduler.algorithm -> channels:int -> Task.system -> t
(** Partition, then plan each shard with {!Scheduler.plan}. If a shard
    fails to schedule, its highest-density task is shed and the shard is
    re-planned (repeating as needed) — so every returned shard carries a
    verified plan, possibly at the cost of a non-empty [shed]. An empty
    shard gets the all-idle plan ({!Plan.progressions} of nothing).
    Raises like {!partition}. *)

val density : shard -> Pindisk_util.Q.t

val find_channel : t -> int -> int option
(** The channel serving a task id, or [None] if the task was shed. *)
