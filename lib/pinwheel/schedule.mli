(** Cyclic schedules for pinwheel task systems.

    A schedule is an infinite function from slots to tasks; every schedule
    this library produces is cyclic, so it is represented by one period of
    slot assignments, repeated biinfinitely. Slot value {!idle} means the
    resource is unallocated for that slot (the "[X]" of the paper's second
    example). *)

val idle : int
(** The idle marker, [-1]. *)

type t = private { period : int; slots : int array }
(** [slots.(t mod period)] is the task id broadcast in slot [t], or
    {!idle}. *)

val make : int array -> t
(** [make slots] wraps one period of assignments. Raises [Invalid_argument]
    if empty or if any entry is [< -1]. The array is copied. *)

val period : t -> int

val task_at : t -> int -> int
(** [task_at s t] for any [t >= 0] (reduced mod the period). *)

val occurrences : t -> int -> int list
(** Slots within [0, period) assigned to the given task id, ascending. *)

val count : t -> int -> int
(** Occurrences of a task id per period. A direct fold over the slot
    array — no occurrence list is built. *)

val fold_occurrences : t -> int -> ('a -> int -> 'a) -> 'a -> 'a
(** [fold_occurrences s i f init] folds [f] over the slots of one period
    assigned to [i], in ascending slot order, without allocating the
    occurrence list. *)

val task_ids : t -> int list
(** Distinct non-idle ids appearing in the schedule, ascending. *)

val utilization : t -> Pindisk_util.Q.t
(** Fraction of non-idle slots per period. *)

val max_gap : t -> int -> int option
(** [max_gap s i] is the maximum number of slots strictly between two
    consecutive occurrences of [i] plus one — i.e. the worst wait, starting
    just after an occurrence of [i], until the next occurrence (cyclically).
    [None] if [i] never occurs. For a task occurring with exact period [p]
    this is [p]. *)

val rotate : t -> int -> t
(** [rotate s k] starts the period at slot [k] (the same biinfinite
    schedule, re-anchored). *)

val map_tasks : t -> (int -> int) -> t
(** [map_tasks s f] renames every non-idle slot through [f] (which may
    return {!idle}). Used to project schedules over pseudo-tasks — the
    [map(i', i)] aliases of the pinwheel algebra — onto the files they
    broadcast. *)

val pp : Format.formatter -> t -> unit
(** Prints the period as e.g. ["1 2 1 . 2"] ([.] for idle). *)
