module Q = Pindisk_util.Q

type t = { id : int; a : int; b : int }

let make ~id ~a ~b =
  if id < 0 then invalid_arg "Task.make: negative id";
  if a < 1 || b < a then invalid_arg "Task.make: need 1 <= a <= b";
  { id; a; b }

let unit ~id ~b = make ~id ~a:1 ~b
let density t = Q.make t.a t.b
let equal t u = t.id = u.id && t.a = u.a && t.b = u.b
let compare = Stdlib.compare
let pp ppf t = Format.fprintf ppf "(%d, %d, %d)" t.id t.a t.b

type system = t list

let check_system sys =
  let ids = List.map (fun t -> t.id) sys in
  let sorted = List.sort_uniq Stdlib.compare ids in
  if List.length sorted <> List.length ids then
    Error "duplicate task ids in system"
  else Ok ()

let system_density sys = Q.sum (List.map density sys)
let is_unit_system sys = List.for_all (fun t -> t.a = 1) sys

let decompose_units sys =
  List.concat_map (fun t -> List.init t.a (fun _ -> (t.id, t.b))) sys

let pp_system ppf sys =
  Format.fprintf ppf "{%a}" (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf "; ") pp) sys
