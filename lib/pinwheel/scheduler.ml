module Q = Pindisk_util.Q

let src = Logs.Src.create "pindisk.scheduler" ~doc:"Pinwheel scheduler decisions"

module Log = (val Logs.src_log src : Logs.LOG)

type algorithm = Sa | Sx | Sr | Sxy | Exact_small | Auto

let pp_algorithm ppf = function
  | Sa -> Format.fprintf ppf "Sa"
  | Sx -> Format.fprintf ppf "Sx"
  | Sr -> Format.fprintf ppf "Sr"
  | Sxy -> Format.fprintf ppf "Sxy"
  | Exact_small -> Format.fprintf ppf "exact"
  | Auto -> Format.fprintf ppf "auto"

let exact_small sys =
  if not (Task.is_unit_system sys) then None
  else
    match Exact.decide ~max_states:2_000_000 sys with
    | Exact.Feasible sched -> Some sched
    | Exact.Infeasible | Exact.Too_large -> None

let rec run algorithm sys =
  match algorithm with
  | Sa -> Specialize.sa sys
  | Sx -> Specialize.sx sys
  | Sr -> Rotation.schedule sys
  | Sxy -> Two_chain.schedule sys
  | Exact_small -> exact_small sys
  | Auto -> (
      match run Sx sys with
      | Some s -> Some s
      | None -> (
          match run Sr sys with
          | Some s -> Some s
          | None -> (
              match run Sxy sys with
              | Some s -> Some s
              | None -> run Exact_small sys)))

let schedule ?(algorithm = Auto) sys =
  (match Task.check_system sys with
  | Error e -> invalid_arg ("Scheduler.schedule: " ^ e)
  | Ok () -> ());
  if sys = [] then invalid_arg "Scheduler.schedule: empty system";
  Log.debug (fun m ->
      m "scheduling %a (density %a) with %a" Task.pp_system sys Q.pp
        (Task.system_density sys) pp_algorithm algorithm);
  match run algorithm sys with
  | Some sched ->
      (* Defense in depth: no schedule leaves this module unverified. *)
      if Verify.satisfies sched sys then begin
        Log.debug (fun m -> m "scheduled with period %d" (Schedule.period sched));
        Some sched
      end
      else begin
        Log.err (fun m ->
            m "scheduler produced an invalid schedule for %a -- rejected"
              Task.pp_system sys);
        None
      end
  | None ->
      Log.debug (fun m -> m "no schedule found");
      None

let schedulable ?algorithm sys = schedule ?algorithm sys <> None

let guaranteed_density = function
  | Sa | Sx | Sxy | Auto -> Some (Q.make 1 2)
  | Sr | Exact_small -> None
