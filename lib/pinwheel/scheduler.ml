module Q = Pindisk_util.Q

let src = Logs.Src.create "pindisk.scheduler" ~doc:"Pinwheel scheduler decisions"

module Log = (val Logs.src_log src : Logs.LOG)

type algorithm = Sa | Sx | Sr | Sxy | Exact_small | Auto

let pp_algorithm ppf = function
  | Sa -> Format.fprintf ppf "Sa"
  | Sx -> Format.fprintf ppf "Sx"
  | Sr -> Format.fprintf ppf "Sr"
  | Sxy -> Format.fprintf ppf "Sxy"
  | Exact_small -> Format.fprintf ppf "exact"
  | Auto -> Format.fprintf ppf "auto"

let exact_small sys =
  if not (Task.is_unit_system sys) then None
  else
    match Exact.decide ~max_states:2_000_000 sys with
    | Exact.Feasible sched -> Some sched
    | Exact.Infeasible | Exact.Too_large -> None

let rec run_plan algorithm sys =
  match algorithm with
  | Sa -> Specialize.sa_plan sys
  | Sx -> Specialize.sx_plan sys
  | Sr -> Rotation.plan sys
  | Sxy -> Two_chain.plan sys
  | Exact_small -> Option.map Plan.explicit (exact_small sys)
  | Auto -> (
      match run_plan Sx sys with
      | Some p -> Some p
      | None -> (
          match run_plan Sr sys with
          | Some p -> Some p
          | None -> (
              match run_plan Sxy sys with
              | Some p -> Some p
              | None -> run_plan Exact_small sys)))

let plan ?(algorithm = Auto) sys =
  (match Task.check_system sys with
  | Error e -> invalid_arg ("Scheduler.plan: " ^ e)
  | Ok () -> ());
  if sys = [] then invalid_arg "Scheduler.plan: empty system";
  Log.debug (fun m ->
      m "scheduling %a (density %a) with %a" Task.pp_system sys Q.pp
        (Task.system_density sys) pp_algorithm algorithm);
  match Density.classify sys with
  | Density.Infeasible reason ->
      (* Sound pre-check: skip every construction attempt. *)
      Log.debug (fun m -> m "density pre-check: infeasible -- %s" reason);
      None
  | verdict -> (
      (match verdict with
      | Density.Guaranteed reason ->
          Log.debug (fun m -> m "density pre-check: %s" reason)
      | _ -> ());
      match run_plan algorithm sys with
      | Some p ->
          Log.debug (fun m -> m "planned with period %d" (Plan.period p));
          Some p
      | None ->
          Log.debug (fun m -> m "no schedule found");
          None)

let schedule ?(algorithm = Auto) sys =
  match plan ~algorithm sys with
  | exception Invalid_argument msg ->
      (* Keep the historical error prefix. *)
      invalid_arg
        (match String.index_opt msg ':' with
        | Some i ->
            "Scheduler.schedule" ^ String.sub msg i (String.length msg - i)
        | None -> msg)
  | None -> None
  | Some p ->
      let sched = Plan.to_schedule p in
      (* Defense in depth: no schedule leaves this module unverified. The
         plan was verified by streaming; this re-checks the materialized
         form, pinning dispatcher/materializer agreement. *)
      if Verify.satisfies sched sys then begin
        Log.debug (fun m -> m "scheduled with period %d" (Schedule.period sched));
        Some sched
      end
      else begin
        Log.err (fun m ->
            m "scheduler produced an invalid schedule for %a -- rejected"
              Task.pp_system sys);
        None
      end

let schedulable ?algorithm sys = schedule ?algorithm sys <> None

let guaranteed_density = function
  | Sa | Sx | Sxy | Auto -> Some (Q.make 1 2)
  | Sr | Exact_small -> None
