module Intmath = Pindisk_util.Intmath
module Q = Pindisk_util.Q

type assignment = { key : int; offset : int; period : int }

(* A free residue class within a column: the frame indices congruent to
   [residue] modulo [modulus] (modulus a power of two). *)
type free_class = { residue : int; modulus : int }

let chain_exponent ~x period =
  if period < x || period mod x <> 0 then None
  else
    let q = period / x in
    if Intmath.is_power_of_two q then Some (Intmath.floor_log2 q) else None

let pack ~x tasks =
  if x < 1 then invalid_arg "Harmonic.pack: x must be >= 1";
  let with_exp =
    List.map
      (fun (key, period) ->
        match chain_exponent ~x period with
        | Some k -> (key, period, k)
        | None ->
            invalid_arg
              (Printf.sprintf
                 "Harmonic.pack: period %d is not of the form %d*2^k" period x))
      tasks
  in
  let density = Q.sum (List.map (fun (_, p, _) -> Q.make 1 p) with_exp) in
  if Q.( > ) density Q.one then None
  else begin
    (* Sort by increasing period so that buddy splitting never fragments. *)
    let sorted = List.sort (fun (_, p, _) (_, q, _) -> compare p q) with_exp in
    (* Per column, the free residue classes, kept sorted by decreasing
       modulus is unnecessary: we search for the best (largest-modulus <=
       wanted) class each time; columns hold few classes. *)
    let free = Array.make x [ { residue = 0; modulus = 1 } ] in
    let place (key, period, k) =
      let wanted = 1 lsl k in
      (* Best fit: the free class with the largest modulus <= wanted, over
         all columns (tightest hole first limits fragmentation). *)
      let best = ref None in
      Array.iteri
        (fun col classes ->
          List.iter
            (fun c ->
              if c.modulus <= wanted then
                match !best with
                | Some (_, c', _) when c'.modulus >= c.modulus -> ()
                | _ -> best := Some (col, c, classes))
            classes)
        free;
      match !best with
      | None -> None
      | Some (col, c, _) ->
          (* Claim the subclass [c.residue mod wanted]; the complement
             splits into binary siblings at each level between c.modulus and
             wanted. *)
          let remaining = List.filter (fun c' -> c' <> c) free.(col) in
          let rec split siblings m =
            if m >= wanted then siblings
            else
              split ({ residue = c.residue + m; modulus = 2 * m } :: siblings) (2 * m)
          in
          free.(col) <- split remaining c.modulus;
          Some { key; offset = col + (x * c.residue); period }
    in
    let rec go acc = function
      | [] -> Some (List.rev acc)
      | t :: rest -> (
          match place t with
          | None ->
              (* Unreachable when density <= 1 (see interface); defensive. *)
              None
          | Some a -> go (a :: acc) rest)
    in
    go [] sorted
  end

let schedule_of ~x assignments =
  ignore x;
  let hyper =
    match assignments with
    | [] -> 1
    | _ -> Intmath.max_list (List.map (fun a -> a.period) assignments)
  in
  let slots = Array.make hyper Schedule.idle in
  List.iter
    (fun a ->
      let t = ref a.offset in
      while !t < hyper do
        assert (slots.(!t) = Schedule.idle);
        slots.(!t) <- a.key;
        t := !t + a.period
      done)
    assignments;
  Schedule.make slots
