(** Distance-constrained task systems (Han & Lin, RTSS'92 — one of the
    pinwheel applications the paper cites in Section 3).

    A distance-constrained task must have {e consecutive completions at
    most [c] slots apart} — a sliding-separation requirement, strictly
    stronger for its purpose than a period: jitter cannot stretch any
    inter-completion gap past [c]. For unit-execution tasks this is
    precisely the single-unit pinwheel condition [pc(1, c)], which is how
    this module schedules them; the distance property is then re-checked
    {e as a gap condition}, independently of the pinwheel verifier. *)

type task = { id : int; distance : int }

val make : id:int -> distance:int -> task
(** Raises [Invalid_argument] unless [id >= 0] and [distance >= 1]. *)

val to_pinwheel : task list -> Task.system
(** The equivalent single-unit pinwheel system. Raises on duplicate
    ids. *)

val schedule : ?algorithm:Scheduler.algorithm -> task list -> Schedule.t option
(** Schedule via the pinwheel reduction; the result additionally passes
    {!respects_distances}. *)

val respects_distances : Schedule.t -> task list -> bool
(** Every task's maximum cyclic gap between consecutive occurrences is at
    most its distance (and the task does occur). *)
