type result = Feasible of Schedule.t | Infeasible | Too_large

(* State encoding: per task, the remaining slack d_i in [0, b_i - 1]; d_i = 0
   means task i must be served in the current slot. Serving j resets d_j to
   b_j - 1; every other task's slack drops by one. A state is "live" when an
   infinite schedule can start from it; liveness is the greatest fixpoint of
   "has a live successor". *)

let decide ?(max_states = 2_000_000) sys =
  (match Task.check_system sys with
  | Error e -> invalid_arg ("Exact.decide: " ^ e)
  | Ok () -> ());
  if sys = [] then invalid_arg "Exact.decide: empty system";
  if not (Task.is_unit_system sys) then
    invalid_arg "Exact.decide: only single-unit systems (a = 1) are supported";
  let tasks = Array.of_list sys in
  let n = Array.length tasks in
  let b = Array.map (fun t -> t.Task.b) tasks in
  (* Mixed-radix weights; bail out early if the product overflows the cap. *)
  let weights = Array.make (n + 1) 1 in
  let too_large = ref false in
  for i = 0 to n - 1 do
    if not !too_large then begin
      if weights.(i) > max_states / b.(i) then too_large := true
      else weights.(i + 1) <- weights.(i) * b.(i)
    end
  done;
  if !too_large then Too_large
  else begin
    let total = weights.(n) in
    let decode s d =
      let s = ref s in
      for i = 0 to n - 1 do
        d.(i) <- !s mod b.(i);
        s := !s / b.(i)
      done
    in
    let initial =
      let acc = ref 0 in
      for i = 0 to n - 1 do
        acc := !acc + ((b.(i) - 1) * weights.(i))
      done;
      !acc
    in
    (* [successors s k] calls [k choice next] for each valid transition;
       choice = n means idle. *)
    let d = Array.make n 0 in
    let successors s k =
      decode s d;
      let zeros = ref 0 and zero_at = ref (-1) in
      for i = 0 to n - 1 do
        if d.(i) = 0 then begin
          incr zeros;
          zero_at := i
        end
      done;
      if !zeros > 1 then () (* dead: two tasks due in the same slot *)
      else begin
        (* The all-decrement base value, pretending every d_i drops by 1. *)
        let dec = ref s in
        for i = 0 to n - 1 do
          dec := !dec - weights.(i)
        done;
        if !zeros = 1 then begin
          let j = !zero_at in
          k j (!dec + ((b.(j) - d.(j)) * weights.(j)))
        end
        else begin
          for j = 0 to n - 1 do
            k j (!dec + ((b.(j) - d.(j)) * weights.(j)))
          done;
          k n !dec
        end
      end
    in
    (* BFS for the reachable set. *)
    let reachable = Bytes.make total '\000' in
    let stack = ref [ initial ] in
    Bytes.set reachable initial '\001';
    let count_reachable = ref 1 in
    while !stack <> [] do
      match !stack with
      | [] -> ()
      | s :: rest ->
          stack := rest;
          successors s (fun _choice next ->
              if Bytes.get reachable next = '\000' then begin
                Bytes.set reachable next '\001';
                incr count_reachable;
                stack := next :: !stack
              end)
    done;
    (* Greatest fixpoint: repeatedly kill reachable states with no live
       successor. *)
    let live = Bytes.copy reachable in
    let changed = ref true in
    while !changed do
      changed := false;
      for s = 0 to total - 1 do
        if Bytes.get live s = '\001' then begin
          let has_live = ref false in
          successors s (fun _choice next ->
              if Bytes.get live next = '\001' then has_live := true);
          if not !has_live then begin
            Bytes.set live s '\000';
            changed := true
          end
        end
      done
    done;
    if Bytes.get live initial = '\000' then Infeasible
    else begin
      (* Extract a cycle: walk from the initial state, preferring to serve
         the most urgent task (an EDF-flavoured tie-break), until a state
         repeats; the slots between the two visits form the schedule. *)
      let visited_at = Hashtbl.create 1024 in
      let choices = ref [] in
      let rec walk s step =
        match Hashtbl.find_opt visited_at s with
        | Some first ->
            let all = Array.of_list (List.rev !choices) in
            Array.sub all first (step - first)
        | None ->
            Hashtbl.add visited_at s step;
            let best = ref None in
            successors s (fun choice next ->
                if Bytes.get live next = '\001' then begin
                  let urgency =
                    if choice = n then max_int
                    else begin
                      decode s d;
                      d.(choice)
                    end
                  in
                  match !best with
                  | Some (_, _, u) when u <= urgency -> ()
                  | _ -> best := Some (choice, next, urgency)
                end);
            let choice, next, _ =
              match !best with
              | Some x -> x
              | None -> assert false (* s is live, so a live successor exists *)
            in
            let slot = if choice = n then Schedule.idle else tasks.(choice).Task.id in
            choices := slot :: !choices;
            walk next (step + 1)
      in
      let slots = walk initial 0 in
      let sched = Schedule.make slots in
      assert (Verify.satisfies sched sys);
      Feasible sched
    end
  end

let is_feasible ?max_states sys =
  match decide ?max_states sys with
  | Feasible _ -> Some true
  | Infeasible -> Some false
  | Too_large -> None
