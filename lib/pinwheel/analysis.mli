(** Schedulability analysis and diagnosis for pinwheel systems.

    Answers not just {e whether} a system is schedulable but {e why not}
    when it is not — with machine-checkable certificates — and which
    structural properties the constructive schedulers can exploit.

    Infeasibility certificates:
    - density above 1 (the basic necessary condition of Section 3.1);
    - a {e pigeonhole window}: a window length [w] into which the tasks
      collectively force more than [w] slot demands
      ([Σ_i a_i·⌊w/b_i⌋ > w] — every aligned span of [w] slots is
      over-committed);
    - exhaustion: the exact state-space search proved no infinite
      schedule exists (small unit systems only).

    The classification records whether the windows are harmonic (every
    window divides every larger one — schedulable iff density <= 1, by
    construction), take at most two distinct values (the Holte et al.
    two-distinct-numbers regime), or sit within a scheduler's guarantee
    (density <= 1/2 for the reduction schedulers). *)

module Q = Pindisk_util.Q

type certificate =
  | Density_above_one of Q.t
  | Pigeonhole of { window : int; demand : int }
      (** [demand > window] forced slot demands in every aligned
          [window]-slot span *)
  | Exhausted  (** exact search: no infinite schedule exists *)

type verdict =
  | Schedulable of Schedule.t
  | Infeasible of certificate
  | Unknown  (** heuristics failed; instance too large for exact search *)

type report = {
  density : Q.t;
  harmonic : bool;  (** windows pairwise divide *)
  distinct_windows : int;
  unit_system : bool;
  within_sa_guarantee : bool;  (** density <= 1/2 *)
  certificate : certificate option;  (** first infeasibility proof found *)
  verdict : verdict;
}

val pigeonhole_violation : Task.system -> (int * int) option
(** The smallest window [w] (searched up to the product of the two
    largest windows, capped at 100,000) with [Σ a_i·⌊w/b_i⌋ > w], with
    its demand. *)

val is_harmonic : Task.system -> bool

val analyze : ?exact_states:int -> Task.system -> report
(** Full analysis: certificates first, then the constructive schedulers,
    then (for unit systems within [exact_states], default 500,000) the
    exact decision. Raises [Invalid_argument] on empty or duplicate-id
    systems. *)

val pp_report : Format.formatter -> report -> unit
