(** Independent verification of schedules against pinwheel conditions.

    Every scheduler in this library is validated end-to-end against this
    module, which re-checks the produced cyclic schedule against the
    {e original} conditions by exhaustive sliding-window counting. Because
    the schedule repeats with its period, checking all windows that start
    within one period is exhaustive over the biinfinite schedule. *)

type violation = { task : int; a : int; b : int; window_start : int; found : int }
(** A witness: the window of [b] slots starting at [window_start] contains
    only [found < a] occurrences of [task]. *)

val pp_violation : Format.formatter -> violation -> unit

val window_counts : Schedule.t -> task:int -> window:int -> int array
(** [window_counts s ~task ~window] is the array, indexed by window start
    slot within one period, of the number of occurrences of [task] in the
    [window] consecutive slots beginning there. The doubled-period
    prefix-sum scaffolding shared by {!min_in_window} and {!check_pc}, and
    the primitive the design auditor ([pindisk.check]) counts fault-level
    windows with. [window] may exceed the schedule period. Raises
    [Invalid_argument] if [window < 1]. *)

val min_in_window : Schedule.t -> task:int -> window:int -> int
(** [min_in_window s ~task ~window] is the minimum, over all windows of
    [window] consecutive slots of the repeated schedule, of the number of
    slots allocated to [task]. [window] may exceed the schedule period.
    Raises [Invalid_argument] if [window < 1]. *)

val check_pc : Schedule.t -> task:int -> a:int -> b:int -> violation option
(** [check_pc s ~task ~a ~b] is [None] iff schedule [s] satisfies
    [pc(task, a, b)]: at least [a] occurrences of [task] in every [b]
    consecutive slots. *)

val check_task : Schedule.t -> Task.t -> violation option

val check_system : Schedule.t -> Task.system -> violation list
(** All violations, empty iff the schedule satisfies every task's
    condition. O(n·period) — use {!satisfies} when only the boolean is
    needed. *)

val satisfies : Schedule.t -> Task.system -> bool
(** Streaming form of [check_system _ _ = []]: one O(period) pass collects
    per-task occurrence slots, then [pc(a, b)] is checked as a gap
    condition on consecutive occurrence indices ([O_{m+a} - O_m <= b],
    wrapping across periods), for O(period + n) total instead of
    O(n·period). Agrees exactly with the window-counting verifier (the
    test suite cross-checks the two on random schedules). *)

val satisfies_seq : period:int -> (unit -> int) -> Task.system -> bool
(** [satisfies_seq ~period next sys] verifies a cyclic schedule presented
    as a stream: [next ()] is called exactly [period] times, yielding the
    task id (or {!Schedule.idle}) of slots [0..period-1] in order. This is
    how plans are verified without materializing a hyperperiod array.
    Raises [Invalid_argument] when [period < 1]. *)

val satisfies_plan : Plan.t -> Task.system -> bool
(** [satisfies_seq] driven by a fresh dispatcher over the plan — verifies
    an online plan in O(period·log n) time and O(period + n) transient
    memory, without materializing the schedule. *)
