type t = { plan : Plan.t; disp : Plan.dispatcher }

let of_plan plan = { plan; disp = Plan.create plan }
let of_system ?algorithm sys = Option.map of_plan (Scheduler.plan ?algorithm sys)
let next_slot t = Plan.next t.disp
let peek t = Plan.peek t.disp
let slot t = Plan.slot t.disp
let period t = Plan.period t.plan
let plan t = t.plan
let reset t = Plan.reset t.disp
let to_schedule t = Plan.to_schedule t.plan

let take t n =
  if n < 0 then invalid_arg "Online.take: negative count";
  Array.init n (fun _ -> next_slot t)
