(** Pinwheel tasks and task systems (Section 3.1 of the paper).

    A pinwheel task [(i, a, b)] asks that the shared resource (one broadcast
    slot per time unit, under the Integral Boundary Constraint) be allocated
    to task [i] for at least [a] out of every [b] consecutive slots. The
    ratio [a/b] is the task's {e density}; the density of a system is the sum
    of its tasks' densities, and a system is schedulable only if its density
    is at most 1 (necessary, not sufficient — see the paper's third example:
    [{(1,1,2); (2,1,3); (3,1,n)}] is infeasible for every finite [n]). *)

module Q = Pindisk_util.Q

type t = { id : int; a : int; b : int }
(** Task [id] must appear in at least [a] of every [b] consecutive slots.
    Invariant (checked by {!make}): [1 <= a <= b] and [id >= 0]. *)

val make : id:int -> a:int -> b:int -> t
(** Raises [Invalid_argument] unless [id >= 0] and [1 <= a <= b]. *)

val unit : id:int -> b:int -> t
(** [unit ~id ~b = make ~id ~a:1 ~b]: the classic single-unit pinwheel
    task. *)

val density : t -> Q.t
(** [a/b], exactly. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit

type system = t list
(** A pinwheel task system sharing a single resource. Well-formed systems
    ({!check_system}) have pairwise-distinct task ids. *)

val check_system : system -> (unit, string) result
(** Checks that ids are distinct. *)

val system_density : system -> Q.t

val is_unit_system : system -> bool
(** True when every task has [a = 1]. *)

val decompose_units : system -> (int * int) list
(** Exact-period decomposition of multi-unit tasks: task [(i, a, b)] becomes
    [a] copies of the pair [(i, b)]. Placing each copy with {e exact} period
    [b] at a distinct offset satisfies [pc(i, a, b)], because every window of
    [b] consecutive slots then contains exactly one occurrence of each copy.
    This is how the schedulers honour multi-unit requirements. *)

val pp_system : Format.formatter -> system -> unit
