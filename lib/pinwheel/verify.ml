type violation = { task : int; a : int; b : int; window_start : int; found : int }

let pp_violation ppf v =
  Format.fprintf ppf
    "pc(%d, %d, %d) violated: window starting at slot %d holds only %d occurrence(s)"
    v.task v.a v.b v.window_start v.found

(* Occurrences of [task] in the window of [window] slots starting at each
   slot of one period, via a prefix-sum over two concatenated periods plus
   arithmetic for windows longer than the period. The shared scaffolding of
   every window check below, and of the design auditor in pindisk.check. *)
let window_counts sched ~task ~window =
  if window < 1 then invalid_arg "Verify.window_counts: window must be >= 1";
  let p = Schedule.period sched in
  let occ_per_period = Schedule.count sched task in
  (* prefix.(t) = occurrences in slots [0, t) of the doubled period. *)
  let prefix = Array.make ((2 * p) + 1) 0 in
  for t = 0 to (2 * p) - 1 do
    prefix.(t + 1) <-
      (prefix.(t) + if Schedule.task_at sched (t mod p) = task then 1 else 0)
  done;
  let full = window / p and rest = window mod p in
  Array.init p (fun start ->
      (full * occ_per_period) + prefix.(start + rest) - prefix.(start))

let min_in_window sched ~task ~window =
  if window < 1 then invalid_arg "Verify.min_in_window: window must be >= 1";
  Array.fold_left min max_int (window_counts sched ~task ~window)

let check_pc sched ~task ~a ~b =
  if a < 1 || b < a then invalid_arg "Verify.check_pc: need 1 <= a <= b";
  let counts = window_counts sched ~task ~window:b in
  let rec scan start =
    if start >= Array.length counts then None
    else if counts.(start) < a then
      Some { task; a; b; window_start = start; found = counts.(start) }
    else scan (start + 1)
  in
  scan 0

let check_task sched (t : Task.t) = check_pc sched ~task:t.Task.id ~a:t.Task.a ~b:t.Task.b

let check_system sched sys = List.filter_map (check_task sched) sys
let satisfies sched sys = check_system sched sys = []
