type violation = { task : int; a : int; b : int; window_start : int; found : int }

let pp_violation ppf v =
  Format.fprintf ppf
    "pc(%d, %d, %d) violated: window starting at slot %d holds only %d occurrence(s)"
    v.task v.a v.b v.window_start v.found

(* Minimum occurrences of [task] over all windows of length [window], via a
   prefix-sum over two concatenated periods plus arithmetic for windows
   longer than the period. *)
let min_in_window sched ~task ~window =
  if window < 1 then invalid_arg "Verify.min_in_window: window must be >= 1";
  let p = Schedule.period sched in
  let occ_per_period = Schedule.count sched task in
  (* prefix.(t) = occurrences in slots [0, t) of the doubled period. *)
  let prefix = Array.make ((2 * p) + 1) 0 in
  for t = 0 to (2 * p) - 1 do
    prefix.(t + 1) <-
      (prefix.(t) + if Schedule.task_at sched (t mod p) = task then 1 else 0)
  done;
  let full = window / p and rest = window mod p in
  let best = ref max_int in
  for start = 0 to p - 1 do
    let in_rest = prefix.(start + rest) - prefix.(start) in
    let total = (full * occ_per_period) + in_rest in
    if total < !best then best := total
  done;
  !best

let check_pc sched ~task ~a ~b =
  if a < 1 || b < a then invalid_arg "Verify.check_pc: need 1 <= a <= b";
  let p = Schedule.period sched in
  let occ_per_period = Schedule.count sched task in
  let prefix = Array.make ((2 * p) + 1) 0 in
  for t = 0 to (2 * p) - 1 do
    prefix.(t + 1) <-
      (prefix.(t) + if Schedule.task_at sched (t mod p) = task then 1 else 0)
  done;
  let full = b / p and rest = b mod p in
  let exception Found of violation in
  try
    for start = 0 to p - 1 do
      let total = (full * occ_per_period) + prefix.(start + rest) - prefix.(start) in
      if total < a then
        raise (Found { task; a; b; window_start = start; found = total })
    done;
    None
  with Found v -> Some v

let check_task sched (t : Task.t) = check_pc sched ~task:t.Task.id ~a:t.Task.a ~b:t.Task.b

let check_system sched sys = List.filter_map (check_task sched) sys
let satisfies sched sys = check_system sched sys = []
