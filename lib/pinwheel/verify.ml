type violation = { task : int; a : int; b : int; window_start : int; found : int }

let pp_violation ppf v =
  Format.fprintf ppf
    "pc(%d, %d, %d) violated: window starting at slot %d holds only %d occurrence(s)"
    v.task v.a v.b v.window_start v.found

(* Occurrences of [task] in the window of [window] slots starting at each
   slot of one period, via a prefix-sum over two concatenated periods plus
   arithmetic for windows longer than the period. The shared scaffolding of
   every window check below, and of the design auditor in pindisk.check. *)
let window_counts sched ~task ~window =
  if window < 1 then invalid_arg "Verify.window_counts: window must be >= 1";
  let p = Schedule.period sched in
  let occ_per_period = Schedule.count sched task in
  (* prefix.(t) = occurrences in slots [0, t) of the doubled period. *)
  let prefix = Array.make ((2 * p) + 1) 0 in
  for t = 0 to (2 * p) - 1 do
    prefix.(t + 1) <-
      (prefix.(t) + if Schedule.task_at sched (t mod p) = task then 1 else 0)
  done;
  let full = window / p and rest = window mod p in
  Array.init p (fun start ->
      (full * occ_per_period) + prefix.(start + rest) - prefix.(start))

let min_in_window sched ~task ~window =
  if window < 1 then invalid_arg "Verify.min_in_window: window must be >= 1";
  Array.fold_left min max_int (window_counts sched ~task ~window)

let check_pc sched ~task ~a ~b =
  if a < 1 || b < a then invalid_arg "Verify.check_pc: need 1 <= a <= b";
  let counts = window_counts sched ~task ~window:b in
  let rec scan start =
    if start >= Array.length counts then None
    else if counts.(start) < a then
      Some { task; a; b; window_start = start; found = counts.(start) }
    else scan (start + 1)
  in
  scan 0

let check_task sched (t : Task.t) = check_pc sched ~task:t.Task.id ~a:t.Task.a ~b:t.Task.b

let check_system sched sys = List.filter_map (check_task sched) sys

(* ------------------------------------------------------------------ *)
(* Streaming verification                                              *)
(* ------------------------------------------------------------------ *)

(* One pass over a single period collects, per distinct task id, the
   ascending array of occurrence slots. Total work and memory are
   O(period + n), versus O(n·period) for checking each task with
   [window_counts]. *)
let occurrence_tables ~period next sys =
  let index = Hashtbl.create 64 in
  let n_distinct = ref 0 in
  List.iter
    (fun (t : Task.t) ->
      if not (Hashtbl.mem index t.Task.id) then begin
        Hashtbl.replace index t.Task.id !n_distinct;
        incr n_distinct
      end)
    sys;
  let bufs = Array.make (max !n_distinct 1) [||] in
  let lens = Array.make (max !n_distinct 1) 0 in
  for t = 0 to period - 1 do
    let v = next () in
    match Hashtbl.find_opt index v with
    | None -> ()
    | Some i ->
        let cap = Array.length bufs.(i) in
        if lens.(i) = cap then begin
          let grown = Array.make (max 4 (2 * cap)) 0 in
          Array.blit bufs.(i) 0 grown 0 cap;
          bufs.(i) <- grown
        end;
        bufs.(i).(lens.(i)) <- t;
        lens.(i) <- lens.(i) + 1
  done;
  (index, Array.init (max !n_distinct 1) (fun i -> Array.sub bufs.(i) 0 lens.(i)))

(* pc(a, b) over a cyclic schedule of period p, given the ascending
   occurrence slots occ.(0..c-1) of one period: extend to the biinfinite
   occurrence sequence O_m = occ.(m mod c) + p·⌊m/c⌋. Every window of b
   consecutive slots holds >= a occurrences iff O_{m+a} - O_m <= b for
   all m. (⇐: for a window [s, s+b), let m be minimal with O_m >= s; then
   O_{m+a-1} <= O_{m-1} + b <= s - 1 + b < s + b, so occurrences
   m..m+a-1 all land inside. ⇒: the window [O_m + 1, O_m + b] must hold
   the a occurrences m+1..m+a, so O_{m+a} <= O_m + b.) By periodicity,
   checking m in [0, c) is exhaustive. *)
let occ_ok ~period occ ~a ~b =
  let c = Array.length occ in
  if c = 0 then false
  else begin
    let ok = ref true in
    let j = ref 0 in
    while !ok && !j < c do
      let m = !j + a in
      let o = occ.(m mod c) + (period * (m / c)) in
      if o - occ.(!j) > b then ok := false;
      incr j
    done;
    !ok
  end

let satisfies_seq ~period next sys =
  if period < 1 then invalid_arg "Verify.satisfies_seq: period must be >= 1";
  match sys with
  | [] ->
      for _ = 1 to period do
        ignore (next ())
      done;
      true
  | _ ->
      let index, occs = occurrence_tables ~period next sys in
      List.for_all
        (fun (t : Task.t) ->
          let occ = occs.(Hashtbl.find index t.Task.id) in
          occ_ok ~period occ ~a:t.Task.a ~b:t.Task.b)
        sys

let satisfies sched sys =
  let t = ref 0 in
  satisfies_seq ~period:(Schedule.period sched)
    (fun () ->
      let v = Schedule.task_at sched !t in
      incr t;
      v)
    sys

let satisfies_plan plan sys =
  let d = Plan.create plan in
  satisfies_seq ~period:(Plan.period plan) (Plan.pull d) sys
