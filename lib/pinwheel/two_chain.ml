module Intmath = Pindisk_util.Intmath
module Q = Pindisk_util.Q

type split = { c : int; d : int }

(* The A-dedication test lives in {!Plan.beatty_hit}; the merge itself is
   a {!Plan.merge} node, so eager and online consumers share it. *)

let virtual_window split b =
  if b < 1 then invalid_arg "Two_chain.virtual_window: window must be >= 1";
  let { c; d } = split in
  (* A-slots per window of length b starting at offset o, exact:
     floor((o+b)c/d) - floor(o*c/d); minimize over one pattern period. *)
  let best = ref max_int in
  for o = 0 to d - 1 do
    let cnt = ((o + b) * c / d) - (o * c / d) in
    if cnt < !best then best := cnt
  done;
  !best

let complement { c; d } = { c = d - c; d }

(* Pack one group on its virtual timeline: specialize the virtual windows
   with the group's best base, then place with Harmonic. Returns the
   group's dispatch plan (progressions over the virtual timeline). *)
let pack_group units =
  match units with
  | [] -> Some (Plan.progressions []) (* all idle, period 1 *)
  | _ ->
      let sys =
        (* Re-wrap as a unit system for Specialize; keys may repeat, so use
           positional pseudo-ids and map back through the assignments. *)
        List.mapi (fun i (_, w) -> Task.unit ~id:i ~b:w) units
      in
      let keys = Array.of_list (List.map fst units) in
      (match Specialize.sx_base sys with
      | None -> None
      | Some x -> (
          let pairs =
            List.map
              (fun t ->
                match Specialize.to_chain ~x t.Task.b with
                | Some b' -> (t.Task.id, b')
                | None -> assert false (* sx_base guarantees b >= x *))
              sys
          in
          match Harmonic.pack ~x pairs with
          | None -> None
          | Some assignments ->
              Some
                (Plan.progressions
                   (List.map
                      (fun (a : Harmonic.assignment) ->
                        {
                          Plan.key = keys.(a.key);
                          offset = a.offset;
                          period = a.period;
                        })
                      assignments))))

let merge_plans split plan_a plan_b ~max_period =
  let pa = Plan.period plan_a and pb = Plan.period plan_b in
  match Intmath.lcm pa pb with
  | exception Intmath.Overflow -> None
  | m ->
      if m > max_period / split.d then None
      else Some (Plan.merge ~c:split.c ~d:split.d plan_a plan_b)

let try_combo sys units_a units_b split ~max_period =
  let shrink split units =
    let rec go acc = function
      | [] -> Some (List.rev acc)
      | (key, b) :: rest ->
          let w = virtual_window split b in
          if w < 1 then None else go ((key, w) :: acc) rest
    in
    go [] units
  in
  match (shrink split units_a, shrink (complement split) units_b) with
  | Some va, Some vb -> (
      match (pack_group va, pack_group vb) with
      | Some pa, Some pb -> (
          match merge_plans split pa pb ~max_period with
          | Some plan when Verify.satisfies_plan plan sys -> Some plan
          | _ -> None)
      | _ -> None)
  | _ -> None

let plan ?(max_period = 4_000_000) sys =
  match Task.check_system sys with
  | Error _ -> None
  | Ok () -> (
      if sys = [] then None
      else
        let units =
          List.sort (fun (_, b1) (_, b2) -> compare b1 b2) (Task.decompose_units sys)
        in
        let windows = List.sort_uniq compare (List.map snd units) in
        match windows with
        | [] | [ _ ] -> None (* a single scale: the single-chain Sx case *)
        | _ ->
            let density = Task.system_density sys in
            let thresholds =
              (* Split between consecutive distinct windows. *)
              let rec pairs = function
                | a :: (b :: _ as rest) -> (a, b) :: pairs rest
                | _ -> []
              in
              List.map fst (pairs windows)
            in
            let exception Found of Plan.t in
            (try
               List.iter
                 (fun thr ->
                   let units_a, units_b =
                     List.partition (fun (_, b) -> b <= thr) units
                   in
                   if units_a <> [] && units_b <> [] then begin
                     let da =
                       Q.sum (List.map (fun (_, b) -> Q.make 1 b) units_a)
                     in
                     let ratio =
                       if Q.equal density Q.zero then Q.make 1 2
                       else Q.div da density
                     in
                     List.iter
                       (fun d ->
                         let ideal =
                           Q.to_float ratio *. float_of_int d |> Float.round
                           |> int_of_float
                         in
                         List.iter
                           (fun c ->
                             if c >= 1 && c < d then
                               match
                                 try_combo sys units_a units_b { c; d } ~max_period
                               with
                               | Some plan -> raise (Found plan)
                               | None -> ())
                           [ ideal; ideal + 1; ideal - 1 ])
                       [ 2; 3; 4; 5; 6; 8; 10; 12 ]
                   end)
                 thresholds;
               None
             with Found plan -> Some plan))

let schedule ?max_period sys = Option.map Plan.to_schedule (plan ?max_period sys)
