(** Dispatch plans: the closed form behind every constructive scheduler.

    All constructive schedulers in this library reduce to exact arithmetic:
    {!Harmonic} places each unit task on the slots [offset + i·period];
    {!Rotation}'s member [j] of a [k]-member column [c] under base [g]
    occupies exactly the slots [≡ c + g·j (mod g·k)]; {!Two_chain}
    interleaves two sub-schedules by the Beatty-style test
    [⌊(t+1)c/d⌋ > ⌊t·c/d⌋]. A plan captures that closed form instead of the
    materialized slot array, so the same object supports two consumers:

    - {!to_schedule} materializes one hyperperiod eagerly (the seed path);
    - {!create}/{!next} dispatch slots {e online} in O(log n) time and O(n)
      memory — no hyperperiod array is ever allocated.

    Both consumers walk the identical arithmetic, so they are slot-for-slot
    equal by construction; the test suite re-checks this with qcheck replay
    over two hyperperiods. *)

type progression = { key : int; offset : int; period : int }
(** Task [key] occupies exactly the slots [offset + i·period], [i >= 0]. *)

type t
(** A dispatch plan: disjoint progressions, a Beatty merge of two
    sub-plans, or an explicit schedule (the escape hatch for the exact
    solver, whose output has no closed form). *)

val progressions : progression list -> t
(** Plan serving each progression exactly; period is the lcm of the
    progression periods ([1] when empty — the all-idle plan). The
    progressions must be pairwise disjoint; collisions are detected by
    {!to_schedule} and by plan verification, not here. Raises
    [Invalid_argument] unless [0 <= offset < period] and [key >= 0] for
    each; raises [Pindisk_util.Intmath.Overflow] if the lcm overflows. *)

val merge : c:int -> d:int -> t -> t -> t
(** [merge ~c ~d first second] dedicates to [first] the slots [t] with
    [⌊(t+1)c/d⌋ > ⌊t·c/d⌋] — [c] of every [d], evenly — and the rest to
    [second]; each sub-plan runs on its own virtual timeline. Period is
    [d · lcm] of the sub-periods. Raises [Invalid_argument] unless
    [1 <= c < d]; raises [Overflow] if the period overflows. *)

val explicit : Schedule.t -> t
(** Wrap a materialized schedule (period and memory equal the schedule's —
    only this constructor ties plan memory to the hyperperiod). *)

val period : t -> int
(** The plan's cyclic period (the hyperperiod it would materialize to). *)

val task_ids : t -> int list
(** Distinct keys served by the plan, ascending. *)

val beatty_hit : c:int -> d:int -> int -> bool
(** [beatty_hit ~c ~d t] is the merge dedication test
    [⌊(t+1)c/d⌋ > ⌊t·c/d⌋]; exposed so {!Two_chain} shares the single
    definition. *)

val to_schedule : t -> Schedule.t
(** Materialize one period. Raises [Invalid_argument] if two progressions
    collide (a malformed plan — never produced by the schedulers). *)

(** {1 Online dispatching} *)

type dispatcher
(** Mutable cursor over a plan's biinfinite slot sequence. For progression
    plans this is a binary min-heap over next-occurrence times: since valid
    plans are collision-free, at most one task is due per slot, so
    {!next} costs one peek plus at most one pop/push — O(log n) — and the
    dispatcher's memory is O(n), independent of the hyperperiod. *)

val create : t -> dispatcher
(** A dispatcher positioned at slot 0. *)

val next : dispatcher -> int
(** The task id (or {!Schedule.idle}) of the current slot; advances the
    cursor. Equals [Schedule.task_at (to_schedule plan) t] for the [t]-th
    call on a well-formed plan. *)

val peek : dispatcher -> int
(** The current slot's task id without advancing. *)

val slot : dispatcher -> int
(** Index of the slot {!next} would dispatch next (0-based). *)

val reset : dispatcher -> unit
(** Rewind to slot 0 (in place, no reallocation). *)

val pull : dispatcher -> unit -> int
(** [pull d] is [fun () -> next d]: the thunk shape
    {!Verify.satisfies_seq} consumes. *)
