module Intmath = Pindisk_util.Intmath

type progression = { key : int; offset : int; period : int }

type t =
  | Progressions of { period : int; progs : progression list }
  | Merge of { c : int; d : int; period : int; first : t; second : t }
  | Explicit of Schedule.t

let beatty_hit ~c ~d t = ((t + 1) * c / d) - (t * c / d) > 0

let progressions progs =
  List.iter
    (fun p ->
      if p.period < 1 then invalid_arg "Plan.progressions: period must be >= 1";
      if p.offset < 0 || p.offset >= p.period then
        invalid_arg "Plan.progressions: need 0 <= offset < period";
      if p.key < 0 then invalid_arg "Plan.progressions: negative key")
    progs;
  let period = Intmath.lcm_list (List.map (fun p -> p.period) progs) in
  Progressions { period; progs }

let merge ~c ~d first second =
  if c < 1 || c >= d then invalid_arg "Plan.merge: need 1 <= c < d";
  let sub = function
    | Progressions { period; _ } | Merge { period; _ } -> period
    | Explicit s -> Schedule.period s
  in
  let period = Intmath.mul_exn d (Intmath.lcm (sub first) (sub second)) in
  Merge { c; d; period; first; second }

let explicit sched = Explicit sched

let period = function
  | Progressions { period; _ } | Merge { period; _ } -> period
  | Explicit s -> Schedule.period s

let rec task_ids = function
  | Progressions { progs; _ } ->
      List.sort_uniq compare (List.map (fun p -> p.key) progs)
  | Merge { first; second; _ } ->
      List.sort_uniq compare (task_ids first @ task_ids second)
  | Explicit s -> Schedule.task_ids s

(* ------------------------------------------------------------------ *)
(* Eager materialization                                               *)
(* ------------------------------------------------------------------ *)

let rec to_array plan =
  match plan with
  | Progressions { period; progs } ->
      let slots = Array.make period Schedule.idle in
      List.iter
        (fun p ->
          let t = ref p.offset in
          while !t < period do
            if slots.(!t) <> Schedule.idle then
              invalid_arg "Plan.to_schedule: colliding progressions";
            slots.(!t) <- p.key;
            t := !t + p.period
          done)
        progs;
      slots
  | Merge { c; d; period; first; second } ->
      let a = to_array first and b = to_array second in
      let la = Array.length a and lb = Array.length b in
      let slots = Array.make period Schedule.idle in
      let ia = ref 0 and ib = ref 0 in
      for t = 0 to period - 1 do
        if beatty_hit ~c ~d t then begin
          slots.(t) <- a.(!ia mod la);
          incr ia
        end
        else begin
          slots.(t) <- b.(!ib mod lb);
          incr ib
        end
      done;
      slots
  | Explicit s -> Array.copy s.Schedule.slots

let to_schedule plan = Schedule.make (to_array plan)

(* ------------------------------------------------------------------ *)
(* Online dispatcher                                                   *)
(* ------------------------------------------------------------------ *)

(* An array-based binary min-heap keyed by next-occurrence time. Because
   progressions of a valid plan are pairwise disjoint, at most one entry
   is due per slot, so every slot costs one peek plus at most one
   pop/push: O(log n). *)
type heap = {
  progs : progression array; (* for reset *)
  times : int array;
  keys : int array;
  periods : int array;
  mutable size : int;
}

let heap_swap h i j =
  let swap a i j =
    let t = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- t
  in
  swap h.times i j;
  swap h.keys i j;
  swap h.periods i j

let rec heap_down h i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let m = if l < h.size && h.times.(l) < h.times.(i) then l else i in
  let m = if r < h.size && h.times.(r) < h.times.(m) then r else m in
  if m <> i then begin
    heap_swap h i m;
    heap_down h m
  end

let heap_fill h =
  Array.iteri
    (fun i p ->
      h.times.(i) <- p.offset;
      h.keys.(i) <- p.key;
      h.periods.(i) <- p.period)
    h.progs;
  h.size <- Array.length h.progs;
  for i = (h.size / 2) - 1 downto 0 do
    heap_down h i
  done

let heap_make progs =
  let n = Array.length progs in
  let h =
    {
      progs;
      times = Array.make (max n 1) 0;
      keys = Array.make (max n 1) 0;
      periods = Array.make (max n 1) 0;
      size = n;
    }
  in
  heap_fill h;
  h

type dispatcher =
  | D_progs of { heap : heap; mutable now : int }
  | D_merge of {
      c : int;
      d : int;
      mutable now : int;
      first : dispatcher;
      second : dispatcher;
    }
  | D_explicit of { slots : int array; mutable now : int }

let rec create = function
  | Progressions { progs; _ } ->
      D_progs { heap = heap_make (Array.of_list progs); now = 0 }
  | Merge { c; d; first; second; _ } ->
      D_merge { c; d; now = 0; first = create first; second = create second }
  | Explicit s -> D_explicit { slots = Array.copy s.Schedule.slots; now = 0 }

let rec next d =
  match d with
  | D_progs p ->
      let h = p.heap in
      let v =
        if h.size > 0 && h.times.(0) = p.now then begin
          let key = h.keys.(0) in
          h.times.(0) <- h.times.(0) + h.periods.(0);
          heap_down h 0;
          key
        end
        else Schedule.idle
      in
      p.now <- p.now + 1;
      v
  | D_merge m ->
      let v =
        if beatty_hit ~c:m.c ~d:m.d m.now then next m.first else next m.second
      in
      m.now <- m.now + 1;
      v
  | D_explicit e ->
      let v = e.slots.(e.now mod Array.length e.slots) in
      e.now <- e.now + 1;
      v

let rec peek d =
  match d with
  | D_progs p ->
      if p.heap.size > 0 && p.heap.times.(0) = p.now then p.heap.keys.(0)
      else Schedule.idle
  | D_merge m ->
      if beatty_hit ~c:m.c ~d:m.d m.now then peek m.first else peek m.second
  | D_explicit e -> e.slots.(e.now mod Array.length e.slots)

let slot = function
  | D_progs p -> p.now
  | D_merge m -> m.now
  | D_explicit e -> e.now

let rec reset = function
  | D_progs p ->
      heap_fill p.heap;
      p.now <- 0
  | D_merge m ->
      m.now <- 0;
      reset m.first;
      reset m.second
  | D_explicit e -> e.now <- 0

let pull d () = next d
