type task = { id : int; distance : int }

let make ~id ~distance =
  if id < 0 then invalid_arg "Distance.make: negative id";
  if distance < 1 then invalid_arg "Distance.make: distance must be >= 1";
  { id; distance }

let to_pinwheel tasks =
  let sys = List.map (fun t -> Task.unit ~id:t.id ~b:t.distance) tasks in
  match Task.check_system sys with
  | Ok () -> sys
  | Error e -> invalid_arg ("Distance.to_pinwheel: " ^ e)

let respects_distances sched tasks =
  List.for_all
    (fun t ->
      match Schedule.max_gap sched t.id with
      | Some g -> g <= t.distance
      | None -> false)
    tasks

let schedule ?algorithm tasks =
  match Scheduler.schedule ?algorithm (to_pinwheel tasks) with
  | Some sched when respects_distances sched tasks -> Some sched
  | Some _ | None -> None
