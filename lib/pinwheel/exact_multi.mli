(** Exact schedulability for small {e multi-unit} pinwheel systems.

    {!Exact} decides single-unit systems with a slack-vector automaton;
    multi-unit conditions ([a] out of every [b] consecutive slots) need
    the full occupancy history of the last [b - 1] slots per task, so the
    state space is [Π 2^(b_i - 1)] — tractable only for tiny instances,
    but enough to {e calibrate} the exact-period decomposition
    ({!Task.decompose_units}) that the constructive schedulers use: the
    decomposition is sufficient, not necessary, and experiment E16
    measures how many feasible multi-unit systems it misses.

    A state is live when some successor keeps every completed window
    (each slot completes the window of the previous [b] slots) at [>= a]
    occurrences; schedulability is reachability of a live cycle, exactly
    as in {!Exact}. *)

type result = Feasible of Schedule.t | Infeasible | Too_large

val decide : ?max_states:int -> Task.system -> result
(** [decide sys] decides any pinwheel system exactly. [max_states]
    (default [1_000_000]) bounds [Π 2^(b_i - 1)]. Raises
    [Invalid_argument] on empty systems or duplicate ids. *)

val is_feasible : ?max_states:int -> Task.system -> bool option
