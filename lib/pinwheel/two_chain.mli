(** Two-chain scheduling in the spirit of Chan & Chin's double-integer
    reduction.

    A single geometric chain loses up to a factor of two per window. When a
    system's windows cluster around two incompatible scales, splitting the
    slot timeline between two chains does better: a fraction [c/d] of the
    slots (spread evenly, Beatty-style) is dedicated to group A and the rest
    to group B, each group is specialized to its own best base on its {e
    virtual} (dedicated-slots-only) timeline, and the two packed schedules
    are interleaved back.

    Correctness does not rest on the analysis: window shrinkage is computed
    {e exactly} (the minimum number of dedicated slots over all real windows
    of the required length), and the final merged schedule is re-checked by
    {!Verify} before being returned. The construction differs from Chan &
    Chin's published one; the density-sweep experiment (E6) measures the
    density threshold it actually achieves. *)

type split = { c : int; d : int }
(** Dedicate to group A the slots [t] with
    [floor((t+1)c/d) > floor(t·c/d)] — [c] of every [d] slots, evenly. *)

val virtual_window : split -> int -> int
(** [virtual_window s b] is the minimum number of A-dedicated slots in any
    window of [b] consecutive real slots — the window available to an
    A-task on its virtual timeline. May be [0] (the task cannot be placed
    at this rate). *)

val plan : ?max_period:int -> Task.system -> Plan.t option
(** [plan sys] searches thresholds partitioning the (unit-decomposed)
    tasks by window size and a small grid of splits, returning the first
    merged dispatch plan (a {!Plan.merge} of two progression plans) that
    verifies against [sys] — by streaming, without materializing the
    merged hyperperiod. [max_period] (default [4_000_000]) bounds the
    merged plan's period. Returns [None] when the search fails — callers
    should fall back to {!Specialize.sx} first, which this module does not
    subsume on single-scale systems. *)

val schedule : ?max_period:int -> Task.system -> Schedule.t option
(** {!plan} materialized (slot-for-slot equal by construction). *)
