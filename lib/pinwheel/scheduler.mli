(** One entry point over all pinwheel schedulers.

    The paper needs exactly one contract from pinwheel theory: a procedure
    that, given a task system of bounded density, produces a schedule
    (Chan & Chin's 7/10 bound powers Equations 1 and 2). This module is that
    procedure. [Auto] tries the cheap constructions first and falls back to
    exhaustive search on small instances; every schedule returned has been
    re-verified against the input system. *)

type algorithm =
  | Sa  (** single-integer reduction (power-of-two specialization) *)
  | Sx  (** multi-base single-chain specialization *)
  | Sr  (** rotation: round-robin within residue classes ({!Rotation}) *)
  | Sxy  (** two-chain timeline splitting *)
  | Exact_small  (** exhaustive state-space search (unit systems only) *)
  | Auto  (** [Sx], then [Sr], then [Sxy], then [Exact_small] when small *)

val pp_algorithm : Format.formatter -> algorithm -> unit

val plan : ?algorithm:algorithm -> Task.system -> Plan.t option
(** [plan sys] is a verified dispatch plan for [sys] — the lazy
    counterpart of {!schedule}, produced by the same algorithm choices on
    the same code path, so [Option.map Plan.to_schedule (plan sys)] equals
    [schedule sys] slot for slot. A {!Density.classify} pre-check skips
    all construction on provably infeasible systems. Verification happens
    by streaming ({!Verify.satisfies_plan}); no hyperperiod array is
    allocated unless the [Exact_small] fallback fires (whose output is
    inherently explicit). Raises like {!schedule}. *)

val schedule : ?algorithm:algorithm -> Task.system -> Schedule.t option
(** [schedule sys] is a verified cyclic schedule for [sys], or [None] if
    the chosen algorithm fails (which for [Exact_small] on a unit system
    means the instance is genuinely infeasible, and otherwise only means
    this heuristic failed). Default algorithm: [Auto]. Raises
    [Invalid_argument] on systems with duplicate ids or an empty system. *)

val schedulable : ?algorithm:algorithm -> Task.system -> bool

val guaranteed_density : algorithm -> Pindisk_util.Q.t option
(** Density up to which the algorithm provably always succeeds on unit
    systems: [1/2] for [Sa]/[Sx]/[Sxy]/[Auto] (inherited from [Sa] — the
    measured thresholds are higher, see experiment E6), [None] for [Sr]
    (no uniform density guarantee; it is complete on a different axis —
    window-multiple structure) and [Exact_small] (complete, no density
    bound applies). *)
