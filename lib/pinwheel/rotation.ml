module Intmath = Pindisk_util.Intmath

type column = { mutable members : int list (* keys, reversed *); mutable min_window : int }

let assign ~g units =
  if g < 1 then invalid_arg "Rotation.assign: g must be >= 1";
  let sorted = List.sort (fun (_, b1) (_, b2) -> compare b1 b2) units in
  let columns = Array.init g (fun _ -> { members = []; min_window = max_int }) in
  let place (key, b) =
    (* First fit: a column accepts the task iff the round-robin period
       after joining, g * (size + 1), still fits the column's tightest
       window (windows arrive in ascending order, so the tightest is
       already there). *)
    let rec go c =
      if c >= g then false
      else
        let col = columns.(c) in
        let size = List.length col.members in
        let limit = min col.min_window b in
        if g * (size + 1) <= limit then begin
          col.members <- key :: col.members;
          col.min_window <- limit;
          true
        end
        else go (c + 1)
    in
    go 0
  in
  let rec run = function
    | [] ->
        Some
          (Array.to_list columns
          |> List.mapi (fun c col ->
                 let members = List.rev col.members in
                 let k = List.length members in
                 List.map (fun key -> (key, c, k)) members)
          |> List.concat)
    | u :: rest -> if place u then run rest else None
  in
  run sorted

let schedule_with_base ~g sys =
  match Task.check_system sys with
  | Error _ -> None
  | Ok () -> (
      let units = Task.decompose_units sys in
      match assign ~g units with
      | None -> None
      | Some placements ->
          (* Column c with k members has round-robin period g*k; the
             hyperperiod is g * lcm of the class sizes. *)
          let sizes =
            List.sort_uniq compare (List.map (fun (_, _, k) -> k) placements)
          in
          let sizes = if sizes = [] then [ 1 ] else sizes in
          (match Intmath.lcm_list sizes with
          | exception Intmath.Overflow -> None
          | l when l > 1_000_000 -> None
          | l ->
              let period = g * l in
              let slots = Array.make period Schedule.idle in
              (* Rebuild per-column member arrays for slot lookup. *)
              let by_column = Array.make g [||] in
              List.iter
                (fun c ->
                  let members =
                    List.filter (fun (_, c', _) -> c' = c) placements
                    |> List.map (fun (key, _, _) -> key)
                  in
                  by_column.(c) <- Array.of_list members)
                (List.init g (fun c -> c));
              for t = 0 to period - 1 do
                let c = t mod g in
                let members = by_column.(c) in
                let k = Array.length members in
                if k > 0 then slots.(t) <- members.((t / g) mod k)
              done;
              let sched = Schedule.make slots in
              if Verify.satisfies sched sys then Some sched else None))

let schedule sys =
  match sys with
  | [] -> None
  | _ ->
      let min_b = List.fold_left (fun acc t -> min acc t.Task.b) max_int sys in
      let rec go g =
        if g < 1 then None
        else
          match schedule_with_base ~g sys with
          | Some sched -> Some sched
          | None -> go (g - 1)
      in
      go min_b
