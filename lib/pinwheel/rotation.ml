module Intmath = Pindisk_util.Intmath

type column = { mutable members : int list (* keys, reversed *); mutable min_window : int }

let assign ~g units =
  if g < 1 then invalid_arg "Rotation.assign: g must be >= 1";
  let sorted = List.sort (fun (_, b1) (_, b2) -> compare b1 b2) units in
  let columns = Array.init g (fun _ -> { members = []; min_window = max_int }) in
  let place (key, b) =
    (* First fit: a column accepts the task iff the round-robin period
       after joining, g * (size + 1), still fits the column's tightest
       window (windows arrive in ascending order, so the tightest is
       already there). *)
    let rec go c =
      if c >= g then false
      else
        let col = columns.(c) in
        let size = List.length col.members in
        let limit = min col.min_window b in
        if g * (size + 1) <= limit then begin
          col.members <- key :: col.members;
          col.min_window <- limit;
          true
        end
        else go (c + 1)
    in
    go 0
  in
  let rec run = function
    | [] ->
        Some
          (Array.to_list columns
          |> List.mapi (fun c col ->
                 let members = List.rev col.members in
                 let k = List.length members in
                 List.map (fun key -> (key, c, k)) members)
          |> List.concat)
    | u :: rest -> if place u then run rest else None
  in
  run sorted

let plan_with_base ~g sys =
  match Task.check_system sys with
  | Error _ -> None
  | Ok () -> (
      let units = Task.decompose_units sys in
      match assign ~g units with
      | None -> None
      | Some placements ->
          (* Column c with k members has round-robin period g*k; member j
             occupies exactly the slots ≡ c + g·j (mod g·k) — an
             arithmetic progression, so the whole rotation is a
             progression plan of period g * lcm of the class sizes. *)
          let sizes =
            List.sort_uniq compare (List.map (fun (_, _, k) -> k) placements)
          in
          let sizes = if sizes = [] then [ 1 ] else sizes in
          (match Intmath.lcm_list sizes with
          | exception Intmath.Overflow -> None
          | l when l > 1_000_000 -> None
          | _ ->
              (* Rebuild per-column member order: [assign] lists columns in
                 order, members in first-fit order within each column. *)
              let progs = ref [] in
              List.iter
                (fun c ->
                  let members =
                    List.filter (fun (_, c', _) -> c' = c) placements
                    |> List.map (fun (key, _, _) -> key)
                  in
                  let k = List.length members in
                  List.iteri
                    (fun j key ->
                      progs :=
                        { Plan.key; offset = c + (g * j); period = g * k }
                        :: !progs)
                    members)
                (List.init g (fun c -> c));
              let plan =
                if !progs = [] then
                  (* No units: the all-idle schedule, period g as before. *)
                  Plan.explicit (Schedule.make (Array.make g Schedule.idle))
                else Plan.progressions (List.rev !progs)
              in
              if Verify.satisfies_plan plan sys then Some plan else None))

let schedule_with_base ~g sys =
  Option.map Plan.to_schedule (plan_with_base ~g sys)

let plan sys =
  match sys with
  | [] -> None
  | _ ->
      let min_b = List.fold_left (fun acc t -> min acc t.Task.b) max_int sys in
      let rec go g =
        if g < 1 then None
        else
          match plan_with_base ~g sys with
          | Some p -> Some p
          | None -> go (g - 1)
      in
      go min_b

let schedule sys = Option.map Plan.to_schedule (plan sys)
