type result = Feasible of Schedule.t | Infeasible | Too_large

(* State: per task, the occupancy bitmask of the last (b - 1) slots,
   packed into one int. Scheduling choice c appends one bit per task; a
   transition is valid iff every task's just-completed window (the new
   bit plus its b - 1 history bits) holds at least a occurrences.
   Schedulability = the valid-transition graph has a cycle (loop it for a
   cyclic schedule); liveness is computed over ALL states, not just the
   ones reachable from some start, because any live state lies on or
   reaches a cycle. *)

let popcount =
  let rec go m acc = if m = 0 then acc else go (m lsr 1) (acc + (m land 1)) in
  fun m -> go m 0

let decide ?(max_states = 1_000_000) sys =
  (match Task.check_system sys with
  | Error e -> invalid_arg ("Exact_multi.decide: " ^ e)
  | Ok () -> ());
  if sys = [] then invalid_arg "Exact_multi.decide: empty system";
  let tasks = Array.of_list sys in
  let n = Array.length tasks in
  let widths = Array.map (fun t -> t.Task.b - 1) tasks in
  let offsets = Array.make n 0 in
  let total_bits = ref 0 in
  Array.iteri
    (fun i w ->
      offsets.(i) <- !total_bits;
      total_bits := !total_bits + w)
    widths;
  if !total_bits >= 60 || 1 lsl !total_bits > max_states then Too_large
  else begin
    let total = 1 lsl !total_bits in
    let mask i = (1 lsl widths.(i)) - 1 in
    let history s i = (s lsr offsets.(i)) land mask i in
    (* successor s c = Some next, where c in [0, n] (n = idle). *)
    let successor s c =
      let rec build i next =
        if i >= n then Some next
        else
          let bit = if i = c then 1 else 0 in
          let h = history s i in
          if popcount h + bit < tasks.(i).Task.a then None
          else
            let h' = ((h lsl 1) lor bit) land mask i in
            build (i + 1) (next lor (h' lsl offsets.(i)))
      in
      build 0 0
    in
    let live = Bytes.make total '\001' in
    let changed = ref true in
    while !changed do
      changed := false;
      for s = 0 to total - 1 do
        if Bytes.get live s = '\001' then begin
          let has_live = ref false in
          for c = 0 to n do
            if not !has_live then
              match successor s c with
              | Some next when Bytes.get live next = '\001' -> has_live := true
              | Some _ | None -> ()
          done;
          if not !has_live then begin
            Bytes.set live s '\000';
            changed := true
          end
        end
      done
    done;
    (* Any live state reaches a cycle of live states. *)
    let start = ref (-1) in
    (try
       for s = 0 to total - 1 do
         if Bytes.get live s = '\001' then begin
           start := s;
           raise Exit
         end
       done
     with Exit -> ());
    if !start < 0 then Infeasible
    else begin
      let visited_at = Hashtbl.create 256 in
      let choices = ref [] in
      let rec walk s step =
        match Hashtbl.find_opt visited_at s with
        | Some first ->
            let all = Array.of_list (List.rev !choices) in
            Array.sub all first (step - first)
        | None ->
            Hashtbl.add visited_at s step;
            (* Prefer serving the task whose window is closest to failing. *)
            let best = ref None in
            for c = n downto 0 do
              match successor s c with
              | Some next when Bytes.get live next = '\001' ->
                  let urgency =
                    if c = n then max_int
                    else tasks.(c).Task.b - popcount (history s c)
                  in
                  (match !best with
                  | Some (_, _, u) when u <= urgency -> ()
                  | _ -> best := Some (c, next, urgency))
              | Some _ | None -> ()
            done;
            let c, next, _ =
              match !best with Some x -> x | None -> assert false
            in
            let slot = if c = n then Schedule.idle else tasks.(c).Task.id in
            choices := slot :: !choices;
            walk next (step + 1)
      in
      let slots = walk !start 0 in
      let sched = Schedule.make slots in
      assert (Verify.satisfies sched sys);
      Feasible sched
    end
  end

let is_feasible ?max_states sys =
  match decide ?max_states sys with
  | Feasible _ -> Some true
  | Infeasible -> Some false
  | Too_large -> None
