(** The lazy, online pinwheel dispatcher.

    Where {!Scheduler.schedule} materializes a full hyperperiod array, this
    module dispatches the same biinfinite schedule one slot at a time:
    {!next_slot} costs O(log n) (a binary min-heap over per-task
    next-occurrence offsets) and the dispatcher's live memory is O(n) in
    the task count — independent of the hyperperiod. An n = 4096 system
    whose eager schedule would occupy millions of slots dispatches from a
    few hundred KB.

    The bridge is exact: {!of_system} derives its plan from
    {!Scheduler.plan}, the same code path the eager scheduler
    materializes, so [next_slot] replayed from slot 0 equals
    [Schedule.task_at (Scheduler.schedule sys) t] for every [t] — the test
    suite replays two full hyperperiods to pin this. Only the
    [Exact_small] fallback stores an explicit slot array (its output has
    no closed form). *)

type t

val of_system :
  ?algorithm:Scheduler.algorithm -> Task.system -> t option
(** Plan with {!Scheduler.plan} (density pre-check included) and start a
    dispatcher at slot 0. [None] exactly when {!Scheduler.schedule} would
    return [None]. Raises on invalid systems, like the scheduler. *)

val of_plan : Plan.t -> t
(** Dispatch an existing plan from slot 0. *)

val next_slot : t -> int
(** The task id (or {!Schedule.idle}) broadcast in the current slot;
    advances to the next slot. O(log n). *)

val peek : t -> int
(** Current slot's task id without advancing. *)

val slot : t -> int
(** The index of the slot {!next_slot} would dispatch next. *)

val period : t -> int
(** The hyperperiod of the underlying plan (never materialized). *)

val plan : t -> Plan.t

val reset : t -> unit
(** Rewind to slot 0 in place. *)

val take : t -> int -> int array
(** [take t n] dispatches the next [n] slots. *)

val to_schedule : t -> Schedule.t
(** Materialize the underlying plan eagerly — the bridge back to
    {!Schedule.t}; equals the eager scheduler's output. *)
