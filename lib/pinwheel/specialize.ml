module Q = Pindisk_util.Q


let to_chain ~x b =
  if x < 1 then invalid_arg "Specialize.to_chain: x must be >= 1";
  if b < x then None
  else begin
    (* Largest x * 2^k <= b. *)
    let v = ref x in
    while !v <= b / 2 && !v * 2 <= b do
      v := !v * 2
    done;
    Some !v
  end

let specialized_density ~x sys =
  let rec go acc = function
    | [] -> Some acc
    | t :: rest -> (
        match to_chain ~x t.Task.b with
        | None -> None
        | Some b' -> go (Q.add acc (Q.make t.Task.a b')) rest)
  in
  go Q.zero sys

let candidate_bases sys =
  match sys with
  | [] -> [ 1 ]
  | _ ->
      let b_min =
        List.fold_left (fun acc t -> min acc t.Task.b) max_int sys
      in
      let candidates = Hashtbl.create 64 in
      List.iter
        (fun t ->
          let v = ref t.Task.b in
          while !v >= 1 do
            if !v <= b_min then Hashtbl.replace candidates !v ();
            v := !v / 2
          done)
        sys;
      Hashtbl.replace candidates 1 ();
      Hashtbl.fold (fun k () acc -> k :: acc) candidates []
      |> List.sort (fun a b -> compare b a)

let plan_with_base ~x sys =
  match Task.check_system sys with
  | Error _ -> None
  | Ok () -> (
      if sys = [] then None
      else
        let units = Task.decompose_units sys in
        let specialized =
          List.map
            (fun (key, b) ->
              match to_chain ~x b with
              | Some b' -> Some (key, b')
              | None -> None)
            units
        in
        if List.exists (fun o -> o = None) specialized then None
        else
          let pairs = List.filter_map (fun o -> o) specialized in
          match Harmonic.pack ~x pairs with
          | None -> None
          | Some assignments -> (
              match
                Plan.progressions
                  (List.map
                     (fun (a : Harmonic.assignment) ->
                       { Plan.key = a.key; offset = a.offset; period = a.period })
                     assignments)
              with
              | exception Pindisk_util.Intmath.Overflow -> None
              | plan -> if Verify.satisfies_plan plan sys then Some plan else None))

let schedule_with_base ~x sys =
  Option.map Plan.to_schedule (plan_with_base ~x sys)

let sa sys = schedule_with_base ~x:1 sys
let sa_plan sys = plan_with_base ~x:1 sys

let best_base sys =
  let feasible =
    List.filter_map
      (fun x ->
        match specialized_density ~x sys with
        | Some d when Q.( <= ) d Q.one -> Some (x, d)
        | _ -> None)
      (candidate_bases sys)
  in
  match feasible with
  | [] -> None
  | (x0, d0) :: rest ->
      let x, _ =
        List.fold_left
          (fun (bx, bd) (x, d) -> if Q.( < ) d bd then (x, d) else (bx, bd))
          (x0, d0) rest
      in
      Some x

let sx_base sys = best_base sys

let sx_plan sys =
  match best_base sys with
  | None -> None
  | Some x -> plan_with_base ~x sys

let sx sys = Option.map Plan.to_schedule (sx_plan sys)
