(** Exact-period placement of unit tasks whose periods form a geometric
    chain [{x, 2x, 4x, …}].

    This is the constructive core shared by the specialization schedulers
    (Holte et al.'s single-integer reduction and the Chan–Chin-flavoured
    multi-base / two-chain schedulers): once every window has been
    specialized down to a chain value [x·2^k], each unit task can be given an
    {e exact} period equal to its specialized window and a fixed offset, such
    that no two tasks ever collide. A task served with exact period [q] and
    window [b >= q] trivially satisfies [pc(1, b)].

    Placement is a buddy-style allocation: slot [t] belongs to column
    [t mod x]; within a column, tasks of period [x·2^k] occupy a residue
    class modulo [2^k] of the column's frame index. Sorting tasks by
    increasing period and splitting free classes binarily is lossless for
    dyadic sizes, so packing succeeds {e iff} the specialized density
    [Σ 1/(x·2^k)] is at most 1 — no capacity is wasted beyond the
    specialization itself. *)

type assignment = { key : int; offset : int; period : int }
(** The task identified by [key] occupies exactly the slots
    [offset + i·period], [i >= 0]. Distinct assignments never collide. *)

val pack : x:int -> (int * int) list -> assignment list option
(** [pack ~x tasks] places each [(key, period)] pair; keys may repeat (e.g.
    the copies from {!Task.decompose_units}). Every [period] must be of the
    form [x·2^k] ([k >= 0]); raises [Invalid_argument] otherwise. Returns
    [None] exactly when [Σ 1/period > 1]. *)

val schedule_of : x:int -> assignment list -> Schedule.t
(** Builds the cyclic schedule realizing the assignments, with period
    [max period] (all chain periods divide the largest); unassigned slots
    are idle. Keys become the schedule's task ids. *)
