(** Rotation scheduling: round-robin within residue classes.

    Pick a base [g] and split the timeline into [g] interleaved columns
    (slot [t] belongs to column [t mod g]); the tasks assigned to one
    column are served round-robin, so a column holding [k] tasks serves
    each of them exactly every [g·k] slots — satisfying [pc(1, b)]
    whenever [g·k <= b].

    This is the construction behind Holte et al.'s two-distinct-numbers
    schedulers, and it is {e complementary} to chain specialization
    ({!Specialize}): specialization exploits window {e doubling} (a window
    loses at most 2x rounding down the chain), rotation exploits window
    {e multiples} of a common base (a window [b] serves [⌊b/g⌋] sharers
    with no rounding loss at all). For [{(1,2), (1,7), (1,7), (1,7)}],
    specialization fails (7 rounds to 4; density 1/2 + 3/4 > 1) while
    rotation with [g = 2] packs all three 7-windows into one column.

    Multi-unit tasks are decomposed into exact-period copies first, as
    everywhere else in this library. *)

val assign : g:int -> (int * int) list -> (int * int * int) list option
(** [assign ~g units] places unit tasks [(key, window)] into [g] columns:
    returns [(key, column, class_size)] triples, where the task is served
    at slots [≡ column (mod g)] in a round-robin of [class_size] members —
    or [None] if no first-fit assignment keeps every column's
    [g·size <= min window]. Raises [Invalid_argument] when [g < 1]. *)

val plan_with_base : g:int -> Task.system -> Plan.t option
(** Build and verify the dispatch plan for one base: member [j] of a
    [k]-member column [c] is the progression [c + g·j (mod g·k)]. *)

val schedule_with_base : g:int -> Task.system -> Schedule.t option
(** [plan_with_base] materialized (slot-for-slot equal by construction). *)

val plan : Task.system -> Plan.t option
(** Try every base [g] from the smallest window down to 1, preferring
    larger bases (finer columns waste less), and return the first
    verified plan. *)

val schedule : Task.system -> Schedule.t option
(** {!plan} materialized. *)
