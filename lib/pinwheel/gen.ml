let unit_system ~seed ~n ~max_b =
  if n < 1 || max_b < 2 then invalid_arg "Gen.unit_system: need n >= 1, max_b >= 2";
  let rng = Random.State.make [| seed; n; max_b |] in
  List.init n (fun id -> Task.unit ~id ~b:(2 + Random.State.int rng (max_b - 1)))

let unit_system_with_density ~seed ~n ~max_b ~target =
  if n < 1 || max_b < 2 then
    invalid_arg "Gen.unit_system_with_density: need n >= 1, max_b >= 2";
  if target <= 0.0 || target > 1.0 then
    invalid_arg "Gen.unit_system_with_density: target in (0, 1]";
  let rng = Random.State.make [| seed; n; max_b; int_of_float (target *. 1e6) |] in
  let rec draw id used acc tries =
    if id >= n || tries > 200 * n then List.rev acc
    else
      let b = 2 + Random.State.int rng (max_b - 1) in
      let d = 1.0 /. float_of_int b in
      if used +. d <= target +. 1e-12 then
        draw (id + 1) (used +. d) (Task.unit ~id ~b :: acc) tries
      else draw id used acc (tries + 1)
  in
  draw 0 0.0 [] 0

let multi_unit_system ~seed ~n ~max_a ~max_b ~target =
  if n < 1 || max_a < 1 || max_b < 2 then
    invalid_arg "Gen.multi_unit_system: bad parameters";
  if target <= 0.0 || target > 1.0 then
    invalid_arg "Gen.multi_unit_system: target in (0, 1]";
  let rng =
    Random.State.make [| seed; n; max_a; max_b; int_of_float (target *. 1e6) |]
  in
  let rec draw id used acc tries =
    if id >= n || tries > 200 * n then List.rev acc
    else
      let a = 1 + Random.State.int rng max_a in
      let b = max (a * 2) (2 + Random.State.int rng (max_b - 1)) in
      let d = float_of_int a /. float_of_int b in
      if used +. d <= target +. 1e-12 then
        draw (id + 1) (used +. d) (Task.make ~id ~a ~b :: acc) tries
      else draw id used acc (tries + 1)
  in
  draw 0 0.0 [] 0
