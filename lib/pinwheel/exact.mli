(** Exact schedulability decision for small single-unit pinwheel systems.

    The pinwheel problem is PSPACE-hard in general, but small instances are
    decided exactly by search over the deadline-vector automaton: the state
    is, per task, the number of slots remaining before the window constraint
    forces the task to be served. An infinite schedule exists iff the initial
    (all-slack) state can reach a cycle of "live" states; the cycle itself is
    a valid cyclic schedule.

    This is the ground truth the heuristic schedulers (and the paper's
    density thresholds) are tested against: it certifies both feasibility
    (with a verified schedule) and {e infeasibility} — e.g. it proves the
    paper's Example-1 claim that [{(1,1,2), (2,1,3), (3,1,n)}] is infeasible.

    Only single-unit systems ([a = 1]) are supported; multi-unit tasks can be
    decomposed first with {!Task.decompose_units}, though the decomposition
    is sufficient, not necessary, so infeasibility of the decomposition does
    not certify infeasibility of the original system. *)

type result =
  | Feasible of Schedule.t  (** a verified cyclic schedule *)
  | Infeasible  (** no infinite schedule exists: proof by exhaustion *)
  | Too_large  (** state space exceeds [max_states]; not attempted *)

val decide : ?max_states:int -> Task.system -> result
(** [decide sys] decides schedulability of the single-unit system [sys].
    [max_states] (default [2_000_000]) bounds the product of window sizes.
    Raises [Invalid_argument] on a non-unit system, a system with duplicate
    ids, or an empty system. *)

val is_feasible : ?max_states:int -> Task.system -> bool option
(** [Some true]/[Some false] when decided, [None] when too large. *)
