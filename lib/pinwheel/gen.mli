(** Random pinwheel-instance generation for tests and experiments.

    Deterministic given the seed (each generator builds its own
    [Random.State.t]); nothing here touches the global RNG state. *)

val unit_system :
  seed:int -> n:int -> max_b:int -> Task.system
(** [n] single-unit tasks with windows drawn uniformly from [[2, max_b]]. No
    density control; may well be infeasible. *)

val unit_system_with_density :
  seed:int -> n:int -> max_b:int -> target:float -> Task.system
(** [n] single-unit tasks whose total density approaches [target] from
    below: windows are drawn at random but rejected while the remaining
    budget is exceeded; the final system's density is the closest the draw
    got to [target] without passing it. Useful for success-rate-vs-density
    sweeps (experiment E6). *)

val multi_unit_system :
  seed:int -> n:int -> max_a:int -> max_b:int -> target:float -> Task.system
(** Like {!unit_system_with_density} but with computation requirements
    [a] drawn from [[1, max_a]] (and [b >= a] enforced). *)
