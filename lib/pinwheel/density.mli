(** Density pre-check: decide what density theory already settles, before
    any scheduler runs.

    The published schedulability frontier for pinwheel systems, by total
    density [Σ a/b]:

    - [> 1]: infeasible — pigeonhole over any hyperperiod.
    - [<= 1/2]: schedulable, constructively — Holte et al.'s
      single-integer reduction (our [Sa]) always succeeds.
    - [<= 5/6] (windows [>= 2]): schedulable — Kawamura's proof of the
      density threshold conjecture (arXiv:2606.27104). Tight: the family
      [{2, 3, M}] has density [5/6 + 1/M] and is infeasible for every
      finite [M] (the paper's Example 1; Holte et al. 1989). Mishra, Rho &
      Kleinberg (arXiv:2508.18422) sharpen the bound beyond [5/6] for
      instances whose {e minimum} window is large; this module stays with
      the universally valid [5/6].

    Both guarantee bounds transfer to multi-unit systems through
    {!Task.decompose_units} (density is preserved, and a schedule of the
    decomposition serves the original).

    [Scheduler.Auto] consults {!classify} to skip doomed attempts (verdict
    [Infeasible]) without running any construction, and callers can use
    [Guaranteed] to promise success before paying for a schedule. *)

type verdict =
  | Infeasible of string  (** provably unschedulable; the reason cites the bound *)
  | Guaranteed of string  (** provably schedulable by a published bound *)
  | Unknown  (** between the bounds: only a scheduler run can tell *)

val pp_verdict : Format.formatter -> verdict -> unit

val schedulable_threshold : min_window:int -> Pindisk_util.Q.t
(** The density up to which {e every} system with all windows
    [>= min_window] is schedulable: [5/6] for [min_window >= 2]
    (Kawamura), [1] (vacuous) for [min_window < 2] — a [pc(1,1)] task
    admits no density-based guarantee short of having the system to
    itself. *)

val classify : Task.system -> verdict
(** Sound on both sides: [Infeasible] only by the pigeonhole bound or the
    [{2, 3, _}] family argument; [Guaranteed] only by the Holte et al. 1/2
    or Kawamura 5/6 bounds. Never runs a scheduler. *)
