module Gf256 = Pindisk_gf256.Gf256
module Matrix = Pindisk_gf256.Matrix

type piece = { index : int; data : bytes }

type t = {
  m : int;
  dispersal : Matrix.t; (* 255 x m Vandermonde; row i produces piece i *)
  inverses : (int list, Matrix.t) Hashtbl.t; (* keyed by sorted row indices *)
}

let create ~m =
  if m < 1 || m > 255 then invalid_arg "Ida.create: m must be in [1, 255]";
  {
    m;
    dispersal = Matrix.vandermonde ~rows:255 ~cols:m;
    inverses = Hashtbl.create 16;
  }

let m t = t.m

let piece_size t ~file_size =
  if file_size < 0 then invalid_arg "Ida.piece_size: negative size";
  (file_size + t.m - 1) / t.m

let disperse t ~n file =
  if n < t.m || n > 255 then invalid_arg "Ida.disperse: need m <= n <= 255";
  let s = piece_size t ~file_size:(Bytes.length file) in
  (* Source block j holds file bytes [j*s, (j+1)*s), zero-padded; extract
     once so the hot loop is a table-driven axpy per (piece, block). *)
  let blocks =
    Array.init t.m (fun j ->
        let b = Bytes.make s '\000' in
        let off = j * s in
        let len = min s (Bytes.length file - off) in
        if len > 0 then Bytes.blit file off b 0 len;
        b)
  in
  Array.init n (fun i ->
      let data = Bytes.make s '\000' in
      for j = 0 to t.m - 1 do
        Gf256.axpy ~acc:data ~coeff:(Matrix.get t.dispersal i j) ~src:blocks.(j)
      done;
      { index = i; data })

let inverse_for t indices =
  let key = Array.to_list indices in
  match Hashtbl.find_opt t.inverses key with
  | Some inv -> inv
  | None -> (
      let sub = Matrix.select_rows t.dispersal indices in
      match Matrix.invert sub with
      | None ->
          (* Unreachable: any m distinct Vandermonde rows are independent. *)
          assert false
      | Some inv ->
          Hashtbl.add t.inverses key inv;
          inv)

let reconstruct t ~length pieces =
  if length < 0 then invalid_arg "Ida.reconstruct: negative length";
  (* Keep the first piece seen for each index, in sorted index order. *)
  let by_index =
    List.sort_uniq (fun a b -> compare a.index b.index) pieces
  in
  if List.length by_index < t.m then
    invalid_arg "Ida.reconstruct: fewer than m distinct pieces";
  let chosen = Array.of_list by_index in
  let chosen = Array.sub chosen 0 t.m in
  let s = Bytes.length chosen.(0).data in
  Array.iter
    (fun p ->
      if p.index < 0 || p.index > 254 then
        invalid_arg "Ida.reconstruct: piece index out of range";
      if Bytes.length p.data <> s then
        invalid_arg "Ida.reconstruct: piece sizes disagree")
    chosen;
  if length > s * t.m then
    invalid_arg "Ida.reconstruct: length exceeds encoded data";
  let inv = inverse_for t (Array.map (fun p -> p.index) chosen) in
  let out = Bytes.create length in
  (* Source block j = sum over received pieces k of inv[j][k] * piece_k,
     computed as one axpy per (j, k) and blitted (trimmed of padding)
     into place. *)
  let block = Bytes.create s in
  for j = 0 to t.m - 1 do
    Bytes.fill block 0 s '\000';
    for k = 0 to t.m - 1 do
      Gf256.axpy ~acc:block ~coeff:(Matrix.get inv j k) ~src:chosen.(k).data
    done;
    let off = j * s in
    let len = min s (length - off) in
    if len > 0 then Bytes.blit block 0 out off len
  done;
  out

let overhead ~m ~n =
  if m <= 0 then invalid_arg "Ida.overhead: m must be positive";
  float_of_int n /. float_of_int m
