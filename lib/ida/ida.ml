module Gf256 = Pindisk_gf256.Gf256
module Matrix = Pindisk_gf256.Matrix
module Pool = Pindisk_util.Pool
module Obs = Pindisk_obs

(* Observability handles, registered once at module init. [obs_tasks] is
   bumped inside the task closures, i.e. from whichever domain runs the
   task — exactly the cross-domain pattern the sharded counters exist
   for (and what the parallel-correctness test exercises). *)
let obs_disperse_calls = Obs.Registry.counter "ida.disperse.calls"
let obs_disperse_bytes = Obs.Registry.counter "ida.disperse.bytes"
let obs_reconstruct_calls = Obs.Registry.counter "ida.reconstruct.calls"
let obs_reconstruct_bytes = Obs.Registry.counter "ida.reconstruct.bytes"
let obs_tasks = Obs.Registry.counter "ida.encode.groups"
let obs_cache_hits = Obs.Registry.counter "ida.cache.hits"
let obs_cache_misses = Obs.Registry.counter "ida.cache.misses"

type piece = { index : int; data : bytes }

(* One cached reconstruction inverse. Entries are immutable: publication
   into the lock-free cache below is a CAS of the whole entry, so a
   reader either sees nothing or sees the complete inverse with its
   prebuilt lane tables — no seqlock or per-field synchronization is
   needed. [sys] marks the all-systematic row subset 0..m-1, whose
   inverse is the identity: reconstruction is then pure blits. *)
type inverse_entry = {
  key : int array; (* sorted piece indices *)
  inv : Matrix.t;
  inv_rows : int array array;
  inv_lanes : Gf256.lanes array; (* groups of up to 4 rows of [inv] *)
  sys : bool;
  stamp : int; (* creation order, for oldest-first replacement *)
}

(* The inverse cache: a fixed-size open-addressed table of atomic slots.
   Lookups scan a bounded probe window; inserts claim an empty slot with
   CAS (guarded by [live] so the entry count never exceeds [cap]) or
   replace the oldest entry in the window. Everything is wait-free
   except the bounded reservation loop, and a lost race costs at most a
   redundant inverse computation — never a torn read. *)
type cache = {
  cap : int;
  live : int Atomic.t; (* entries present, kept <= cap *)
  slots : inverse_entry option Atomic.t array; (* power-of-two size *)
}

type t = {
  m : int;
  dispersal : Matrix.t; (* 255 x m systematic; row i produces piece i *)
  rows : int array array; (* rows.(i) = coefficients of dispersal row i *)
  coded_lanes : Gf256.lanes option Atomic.t array;
  (* Lane tables for coded row group c (dispersal rows m+4c .. m+4c+3),
     built inside the first fan-out task that needs them and published
     once with CAS; independent of the dispersal width n, so every
     disperse call shares them. *)
  cache : cache Atomic.t;
  stamp : int Atomic.t;
  hits : int Atomic.t;
  misses : int Atomic.t;
}

(* Cumulative count of row-encode passes (one per piece produced or source
   block rebuilt, whether by kernel or by systematic blit); lets tests
   assert that no encode work is wasted. *)
let passes = Atomic.make 0
let encode_passes () = Atomic.get passes

let row_coeffs matrix i =
  Array.init (Matrix.cols matrix) (fun j -> Matrix.get matrix i j)

let probe_window = 8

let make_cache cap =
  let size =
    let rec pow2 s = if s >= cap * 2 then s else pow2 (2 * s) in
    pow2 8
  in
  {
    cap;
    live = Atomic.make 0;
    slots = Array.init size (fun _ -> Atomic.make None);
  }

let create ~m =
  if m < 1 || m > 255 then invalid_arg "Ida.create: m must be in [1, 255]";
  let dispersal = Matrix.systematic ~rows:255 ~cols:m in
  {
    m;
    dispersal;
    rows = Array.init 255 (row_coeffs dispersal);
    coded_lanes =
      Array.init (((255 - m) + 3) / 4) (fun _ -> Atomic.make None);
    cache = Atomic.make (make_cache 256);
    stamp = Atomic.make 0;
    hits = Atomic.make 0;
    misses = Atomic.make 0;
  }

let m t = t.m

let piece_size t ~file_size =
  if file_size < 0 then invalid_arg "Ida.piece_size: negative size";
  (file_size + t.m - 1) / t.m

(* Below this much total encode work (output bytes times coefficients per
   byte), fan-out overhead beats the parallel win; stay sequential. *)
let parallel_cutoff = 1 lsl 16

(* Rows encoded per fused pass; matches the widest Gf256 lane group. *)
let row_group = 4

(* Output columns per task. Small enough that a row group's lane tables
   (256 * m ints) plus the block's source and destination stripes sit in
   cache, and that tasks per call (groups * blocks) comfortably exceed
   any pool width; large enough that task-claim overhead stays noise. *)
let col_block = 16384

let run_tasks pool ~work ~n f =
  match pool with
  | Some p when Pool.size p > 1 && work >= parallel_cutoff ->
      Pool.parallel_for p ~n f
  | _ ->
      for i = 0 to n - 1 do
        f i
      done

let coded_lanes_for t c =
  let slot = t.coded_lanes.(c) in
  match Atomic.get slot with
  | Some l -> l
  | None ->
      let lo = t.m + (row_group * c) in
      let w = min row_group (255 - lo) in
      let l = Gf256.lanes (Array.sub t.rows lo w) in
      if Atomic.compare_and_set slot None (Some l) then l
      else Option.get (Atomic.get slot)

let disperse ?pool t ~n file =
  if n < t.m || n > 255 then invalid_arg "Ida.disperse: need m <= n <= 255";
  let len = Bytes.length file in
  let s = piece_size t ~file_size:len in
  (* Source block j is file bytes [j*s, (j+1)*s), zero-padded. When the
     length divides evenly the strided kernel reads the caller's buffer in
     place; otherwise one padded copy stands in — never a copy per block. *)
  let src =
    if t.m * s = len then file
    else begin
      let b = Bytes.make (t.m * s) '\000' in
      Bytes.blit file 0 b 0 len;
      b
    end
  in
  let pieces = Array.init n (fun i -> { index = i; data = Bytes.create s }) in
  let obs = Obs.Control.enabled () in
  if obs then begin
    Obs.Registry.incr obs_disperse_calls;
    Obs.Registry.add obs_disperse_bytes (n * s)
  end;
  (* 2-D decomposition: (row group) x (column block). The systematic
     prefix (rows < m) is pure blits; coded groups run the SWAR lane
     kernel over their column block, building the group's lane tables
     inside the first task that touches them. Task count is
     groups * blocks — far more than any pool width, so every domain
     stays busy — and distinct tasks write disjoint byte ranges. *)
  let sys = min n t.m in
  let sys_groups = (sys + row_group - 1) / row_group in
  let coded_groups = (n - sys + row_group - 1) / row_group in
  let blocks = (s + col_block - 1) / col_block in
  let tasks = (sys_groups + coded_groups) * blocks in
  run_tasks pool ~work:(n * s * t.m) ~n:tasks (fun ti ->
      if obs then Obs.Registry.incr obs_tasks;
      let g = ti / blocks and b = ti mod blocks in
      let pos = b * col_block in
      let blen = min col_block (s - pos) in
      if g < sys_groups then begin
        let lo = row_group * g in
        let w = min row_group (sys - lo) in
        for r = lo to lo + w - 1 do
          Bytes.blit src ((r * s) + pos) pieces.(r).data pos blen
        done
      end
      else begin
        let c = g - sys_groups in
        let lanes = coded_lanes_for t c in
        let lo = t.m + (row_group * c) in
        let w = min row_group (n - lo) in
        Gf256.encode_lanes lanes
          ~dsts:(Array.init w (fun j -> pieces.(lo + j).data))
          ~src ~stride:s ~pos ~len:blen
      end);
  ignore (Atomic.fetch_and_add passes n);
  pieces

let hash_key key =
  Array.fold_left
    (fun h i -> (h lxor i) * 0x01000193 land max_int)
    0x811c9dc5 key

let cache_find cache key =
  let size = Array.length cache.slots in
  let h = hash_key key land (size - 1) in
  let rec go i =
    if i >= probe_window then None
    else
      match Atomic.get (Array.unsafe_get cache.slots ((h + i) land (size - 1))) with
      | Some e when e.key = key -> Some e
      | _ -> go (i + 1)
  in
  go 0

(* Reserve one unit of capacity; [false] means the cache is full. *)
let rec cache_reserve cache =
  let l = Atomic.get cache.live in
  if l >= cache.cap then false
  else if Atomic.compare_and_set cache.live l (l + 1) then true
  else cache_reserve cache

let cache_insert cache e =
  let size = Array.length cache.slots in
  let h = hash_key e.key land (size - 1) in
  let slot i = Array.unsafe_get cache.slots ((h + i) land (size - 1)) in
  let claimed =
    cache_reserve cache
    && begin
         let rec claim i =
           if i >= probe_window then begin
             (* No empty slot in the window; hand the reservation back
                and fall through to replacement. *)
             Atomic.decr cache.live;
             false
           end
           else
             let s = slot i in
             match Atomic.get s with
             | None when Atomic.compare_and_set s None (Some e) -> true
             | _ -> claim (i + 1)
         in
         claim 0
       end
  in
  if not claimed then begin
    (* Replace the oldest entry in the window (count unchanged). If the
       window is momentarily all-empty — every slot claimed away by
       racing inserts elsewhere — skip caching; the entry still serves
       its caller. *)
    let oldest = ref None in
    for i = 0 to probe_window - 1 do
      match Atomic.get (slot i) with
      | Some old -> (
          match !oldest with
          | Some (_, st) when st <= old.stamp -> ()
          | _ -> oldest := Some (slot i, old.stamp))
      | None -> ()
    done;
    match !oldest with
    | Some (s, _) -> Atomic.set s (Some e)
    | None -> ()
  end

let build_entry t indices =
  let sub = Matrix.select_rows t.dispersal indices in
  match Matrix.invert sub with
  | None ->
      (* Unreachable: any m distinct systematic-matrix rows are
         independent. *)
      assert false
  | Some inv ->
      let inv_rows = Array.init t.m (row_coeffs inv) in
      let sys = indices.(t.m - 1) < t.m in
      let inv_lanes =
        if sys then [||]
        else
          Array.init
            ((t.m + row_group - 1) / row_group)
            (fun g ->
              let lo = row_group * g in
              let w = min row_group (t.m - lo) in
              Gf256.lanes (Array.sub inv_rows lo w))
      in
      {
        key = Array.copy indices;
        inv;
        inv_rows;
        inv_lanes;
        sys;
        stamp = Atomic.fetch_and_add t.stamp 1;
      }

let inverse_for t indices =
  let cache = Atomic.get t.cache in
  match cache_find cache indices with
  | Some e ->
      Atomic.incr t.hits;
      if Obs.Control.enabled () then Obs.Registry.incr obs_cache_hits;
      e
  | None ->
      (* Concurrent misses on one subset each compute the inverse; the
         cache keeps whichever publishes, and the duplicates only serve
         their own caller. Correctness never depends on who wins. *)
      Atomic.incr t.misses;
      if Obs.Control.enabled () then Obs.Registry.incr obs_cache_misses;
      let e = build_entry t indices in
      cache_insert cache e;
      e

let cached_inverses t =
  let cache = Atomic.get t.cache in
  Array.fold_left
    (fun acc s -> match Atomic.get s with Some _ -> acc + 1 | None -> acc)
    0 cache.slots

let cache_stats t = (Atomic.get t.hits, Atomic.get t.misses)

let set_cache_cap t cap =
  if cap < 1 then invalid_arg "Ida.set_cache_cap: cap must be >= 1";
  let old = Atomic.get t.cache in
  if cap <> old.cap then begin
    (* Swap in a fresh table carrying over the youngest entries. Inserts
       racing with the swap may land in the old table and be dropped —
       benign for a cache — and readers always see one complete table. *)
    let fresh = make_cache cap in
    let entries =
      Array.to_list old.slots
      |> List.filter_map Atomic.get
      |> List.sort (fun (a : inverse_entry) b -> compare b.stamp a.stamp)
    in
    List.iteri (fun i e -> if i < cap then cache_insert fresh e) entries;
    Atomic.set t.cache fresh
  end

let reconstruct ?pool t ~length pieces =
  if length < 0 then invalid_arg "Ida.reconstruct: negative length";
  (* Keep the first piece seen for each index (deterministic even when a
     corrupted duplicate disagrees with the original), in index order. *)
  let seen = Hashtbl.create 16 in
  let uniq =
    List.filter
      (fun p ->
        if Hashtbl.mem seen p.index then false
        else begin
          Hashtbl.add seen p.index ();
          true
        end)
      pieces
  in
  let by_index = List.sort (fun a b -> compare a.index b.index) uniq in
  if List.length by_index < t.m then
    invalid_arg "Ida.reconstruct: fewer than m distinct pieces";
  let chosen = Array.of_list by_index in
  let chosen = Array.sub chosen 0 t.m in
  let s = Bytes.length chosen.(0).data in
  Array.iter
    (fun p ->
      if p.index < 0 || p.index > 254 then
        invalid_arg "Ida.reconstruct: piece index out of range";
      if Bytes.length p.data <> s then
        invalid_arg "Ida.reconstruct: piece sizes disagree")
    chosen;
  if length > s * t.m then
    invalid_arg "Ida.reconstruct: length exceeds encoded data";
  let entry = inverse_for t (Array.map (fun p -> p.index) chosen) in
  let obs = Obs.Control.enabled () in
  if obs then begin
    Obs.Registry.incr obs_reconstruct_calls;
    Obs.Registry.add obs_reconstruct_bytes (t.m * s)
  end;
  let out = Bytes.create length in
  if entry.sys then
    (* All m systematic pieces arrived: they are the source blocks
       verbatim, so reconstruction is pure memcpy from the pieces. *)
    for j = 0 to t.m - 1 do
      let off = j * s in
      let blen = min s (length - off) in
      if blen > 0 then Bytes.blit chosen.(j).data 0 out off blen
    done
  else begin
    (* Source block j = sum over received pieces k of inv[j][k] * piece_k.
       Pieces are gathered into one contiguous buffer (a single
       memcpy-speed pass) so the lane kernel rebuilds up to four blocks
       per pass over the piece units, 2-D decomposed exactly like
       disperse; a final blit trims the padding. *)
    let gathered = Bytes.create (t.m * s) in
    Array.iteri (fun k p -> Bytes.blit p.data 0 gathered (k * s) s) chosen;
    let blocks_out = Array.init t.m (fun _ -> Bytes.create s) in
    let groups = Array.length entry.inv_lanes in
    let blocks = (s + col_block - 1) / col_block in
    run_tasks pool ~work:(t.m * s * t.m) ~n:(groups * blocks) (fun ti ->
        if obs then Obs.Registry.incr obs_tasks;
        let g = ti / blocks and b = ti mod blocks in
        let pos = b * col_block in
        let blen = min col_block (s - pos) in
        let lo = row_group * g in
        let w = min row_group (t.m - lo) in
        Gf256.encode_lanes entry.inv_lanes.(g)
          ~dsts:(Array.sub blocks_out lo w)
          ~src:gathered ~stride:s ~pos ~len:blen);
    for j = 0 to t.m - 1 do
      let off = j * s in
      let blen = min s (length - off) in
      if blen > 0 then Bytes.blit blocks_out.(j) 0 out off blen
    done
  end;
  ignore (Atomic.fetch_and_add passes t.m);
  out

let overhead ~m ~n =
  if m <= 0 then invalid_arg "Ida.overhead: m must be positive";
  float_of_int n /. float_of_int m
