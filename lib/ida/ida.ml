module Gf256 = Pindisk_gf256.Gf256
module Matrix = Pindisk_gf256.Matrix
module Pool = Pindisk_util.Pool
module Obs = Pindisk_obs

(* Observability handles, registered once at module init. [obs_groups] is
   bumped inside the task closures, i.e. from whichever domain runs the
   group — exactly the cross-domain pattern the sharded counters exist
   for (and what the parallel-correctness test exercises). *)
let obs_disperse_calls = Obs.Registry.counter "ida.disperse.calls"
let obs_disperse_bytes = Obs.Registry.counter "ida.disperse.bytes"
let obs_reconstruct_calls = Obs.Registry.counter "ida.reconstruct.calls"
let obs_reconstruct_bytes = Obs.Registry.counter "ida.reconstruct.bytes"
let obs_encode_groups = Obs.Registry.counter "ida.encode.groups"
let obs_cache_hits = Obs.Registry.counter "ida.cache.hits"
let obs_cache_misses = Obs.Registry.counter "ida.cache.misses"

type piece = { index : int; data : bytes }

type inverse_entry = { inv : Matrix.t; inv_rows : int array array; mutable last_use : int }

type t = {
  m : int;
  dispersal : Matrix.t; (* 255 x m Vandermonde; row i produces piece i *)
  rows : int array array; (* rows.(i) = coefficients of dispersal row i *)
  inverses : (int list, inverse_entry) Hashtbl.t; (* keyed by sorted row indices *)
  mutable cache_cap : int;
  mutable clock : int; (* logical time for LRU eviction *)
  mutable cache_hits : int;
  mutable cache_misses : int;
}

(* Cumulative count of row-encode passes (one per piece produced or source
   block rebuilt); lets tests assert that no encode work is wasted. *)
let passes = Atomic.make 0
let encode_passes () = Atomic.get passes

let row_coeffs matrix i =
  Array.init (Matrix.cols matrix) (fun j -> Matrix.get matrix i j)

let create ~m =
  if m < 1 || m > 255 then invalid_arg "Ida.create: m must be in [1, 255]";
  let dispersal = Matrix.vandermonde ~rows:255 ~cols:m in
  {
    m;
    dispersal;
    rows = Array.init 255 (row_coeffs dispersal);
    inverses = Hashtbl.create 16;
    cache_cap = 256;
    clock = 0;
    cache_hits = 0;
    cache_misses = 0;
  }

let m t = t.m

let piece_size t ~file_size =
  if file_size < 0 then invalid_arg "Ida.piece_size: negative size";
  (file_size + t.m - 1) / t.m

(* Below this much total encode work (output bytes times coefficients per
   byte), fan-out overhead beats the parallel win; stay sequential. *)
let parallel_cutoff = 1 lsl 16

(* Rows encoded per fused pass; matches the widest Gf256 grouped kernel. *)
let row_group = 4

let run_tasks pool ~work ~n f =
  match pool with
  | Some p when Pool.size p > 1 && work >= parallel_cutoff ->
      Pool.parallel_for p ~n f
  | _ ->
      for i = 0 to n - 1 do
        f i
      done

let disperse ?pool t ~n file =
  if n < t.m || n > 255 then invalid_arg "Ida.disperse: need m <= n <= 255";
  let len = Bytes.length file in
  let s = piece_size t ~file_size:len in
  (* Source block j is file bytes [j*s, (j+1)*s), zero-padded. When the
     length divides evenly the strided kernel reads the caller's buffer in
     place; otherwise one padded copy stands in — never a copy per block. *)
  let src =
    if t.m * s = len then file
    else begin
      let b = Bytes.make (t.m * s) '\000' in
      Bytes.blit file 0 b 0 len;
      b
    end
  in
  let pieces =
    Array.init n (fun i -> { index = i; data = Bytes.create s })
  in
  for i = 0 to n - 1 do
    Gf256.ensure_tables t.rows.(i)
  done;
  let obs = Obs.Control.enabled () in
  if obs then begin
    Obs.Registry.incr obs_disperse_calls;
    Obs.Registry.add obs_disperse_bytes (n * s)
  end;
  (* Each task encodes a group of [row_group] pieces in one fused pass
     over the source units (see [Gf256.encode_rows]). *)
  let groups = (n + row_group - 1) / row_group in
  run_tasks pool ~work:(n * s * t.m) ~n:groups (fun g ->
      if obs then Obs.Registry.incr obs_encode_groups;
      let lo = g * row_group in
      let width = min row_group (n - lo) in
      Gf256.encode_rows
        ~dsts:(Array.init width (fun j -> pieces.(lo + j).data))
        ~rows:(Array.init width (fun j -> t.rows.(lo + j)))
        ~src ~stride:s);
  ignore (Atomic.fetch_and_add passes n);
  pieces

let evict_lru t =
  let victim = ref None in
  Hashtbl.iter
    (fun key e ->
      match !victim with
      | Some (_, oldest) when oldest <= e.last_use -> ()
      | _ -> victim := Some (key, e.last_use))
    t.inverses;
  match !victim with
  | Some (key, _) -> Hashtbl.remove t.inverses key
  | None -> ()

let inverse_for t indices =
  let key = Array.to_list indices in
  t.clock <- t.clock + 1;
  match Hashtbl.find_opt t.inverses key with
  | Some e ->
      t.cache_hits <- t.cache_hits + 1;
      if Obs.Control.enabled () then Obs.Registry.incr obs_cache_hits;
      e.last_use <- t.clock;
      e
  | None -> (
      t.cache_misses <- t.cache_misses + 1;
      if Obs.Control.enabled () then Obs.Registry.incr obs_cache_misses;
      let sub = Matrix.select_rows t.dispersal indices in
      match Matrix.invert sub with
      | None ->
          (* Unreachable: any m distinct Vandermonde rows are independent. *)
          assert false
      | Some inv ->
          if Hashtbl.length t.inverses >= t.cache_cap then evict_lru t;
          let e =
            {
              inv;
              inv_rows = Array.init t.m (row_coeffs inv);
              last_use = t.clock;
            }
          in
          Hashtbl.add t.inverses key e;
          e)

let cached_inverses t = Hashtbl.length t.inverses
let cache_stats t = (t.cache_hits, t.cache_misses)

let set_cache_cap t cap =
  if cap < 1 then invalid_arg "Ida.set_cache_cap: cap must be >= 1";
  t.cache_cap <- cap;
  while Hashtbl.length t.inverses > cap do
    evict_lru t
  done

let reconstruct ?pool t ~length pieces =
  if length < 0 then invalid_arg "Ida.reconstruct: negative length";
  (* Keep the first piece seen for each index (deterministic even when a
     corrupted duplicate disagrees with the original), in index order. *)
  let seen = Hashtbl.create 16 in
  let uniq =
    List.filter
      (fun p ->
        if Hashtbl.mem seen p.index then false
        else begin
          Hashtbl.add seen p.index ();
          true
        end)
      pieces
  in
  let by_index = List.sort (fun a b -> compare a.index b.index) uniq in
  if List.length by_index < t.m then
    invalid_arg "Ida.reconstruct: fewer than m distinct pieces";
  let chosen = Array.of_list by_index in
  let chosen = Array.sub chosen 0 t.m in
  let s = Bytes.length chosen.(0).data in
  Array.iter
    (fun p ->
      if p.index < 0 || p.index > 254 then
        invalid_arg "Ida.reconstruct: piece index out of range";
      if Bytes.length p.data <> s then
        invalid_arg "Ida.reconstruct: piece sizes disagree")
    chosen;
  if length > s * t.m then
    invalid_arg "Ida.reconstruct: length exceeds encoded data";
  let entry = inverse_for t (Array.map (fun p -> p.index) chosen) in
  (* Source block j = sum over received pieces k of inv[j][k] * piece_k.
     Pieces are gathered into one contiguous buffer (a single memcpy-speed
     pass) so the grouped strided kernel rebuilds up to four blocks per
     pass over the piece units; a final blit trims the padding. *)
  let gathered = Bytes.create (t.m * s) in
  Array.iteri (fun k p -> Bytes.blit p.data 0 gathered (k * s) s) chosen;
  let blocks = Array.init t.m (fun _ -> Bytes.create s) in
  Array.iter Gf256.ensure_tables entry.inv_rows;
  let obs = Obs.Control.enabled () in
  if obs then begin
    Obs.Registry.incr obs_reconstruct_calls;
    Obs.Registry.add obs_reconstruct_bytes (t.m * s)
  end;
  let groups = (t.m + row_group - 1) / row_group in
  run_tasks pool ~work:(t.m * s * t.m) ~n:groups (fun g ->
      if obs then Obs.Registry.incr obs_encode_groups;
      let lo = g * row_group in
      let width = min row_group (t.m - lo) in
      Gf256.encode_rows
        ~dsts:(Array.sub blocks lo width)
        ~rows:(Array.init width (fun j -> entry.inv_rows.(lo + j)))
        ~src:gathered ~stride:s);
  ignore (Atomic.fetch_and_add passes t.m);
  let out = Bytes.create length in
  for j = 0 to t.m - 1 do
    let off = j * s in
    let len = min s (length - off) in
    if len > 0 then Bytes.blit blocks.(j) 0 out off len
  done;
  out

let overhead ~m ~n =
  if m <= 0 then invalid_arg "Ida.overhead: m must be positive";
  float_of_int n /. float_of_int m
