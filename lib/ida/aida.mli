(** The Adaptive Information Dispersal Algorithm (Bestavros 1994).

    AIDA inserts a {e bandwidth-allocation} step between IDA dispersal and
    transmission (Figure 4 of the paper): out of the [capacity] dispersed
    blocks available for a file with [m] source blocks, the server transmits
    only [n ∈ \[m, capacity\]] per data cycle. [n = m] means no redundancy;
    every extra block tolerates one more per-period block loss. The choice of
    [n] is driven by the current {e mode of operation} — the same file may be
    critical in one mode ("combat") and unimportant in another ("landing").

    This module captures that policy layer: allocation profiles map
    criticality levels to redundancy, and {!allocate} clamps the request to
    what the dispersal level supports. *)

type criticality =
  | Non_real_time  (** no redundancy: transmit exactly [m] blocks *)
  | Standard  (** tolerate [1] lost block per period *)
  | Important  (** tolerate [2] lost blocks per period *)
  | Critical of int  (** tolerate a caller-chosen number of lost blocks *)

val redundancy : criticality -> int
(** Number of per-period block losses the level asks to tolerate. *)

type profile = (string * criticality) list
(** A mode of operation: assigns each file (by name) a criticality. Files
    absent from the profile default to [Non_real_time]. *)

val criticality_in : profile -> string -> criticality

val allocate : m:int -> capacity:int -> criticality -> int
(** [allocate ~m ~capacity c] is the number [n] of blocks to transmit:
    [m + redundancy c], clamped to [capacity]. Raises [Invalid_argument]
    unless [1 <= m <= capacity <= 255]. *)

val transmit :
  ?pool:Pindisk_util.Pool.t ->
  Ida.t -> capacity:int -> criticality -> bytes -> Ida.piece array
(** [transmit ida ~capacity c file] is the AIDA pipeline of Figure 4:
    bandwidth-allocate [n] out of [capacity] blocks, then disperse exactly
    those [n] (dispersal rows do not depend on [n], so this equals the
    [n]-prefix of the [capacity]-wide dispersal without spending encode
    passes on blocks that are never transmitted). [pool] is forwarded to
    {!Ida.disperse}. *)
