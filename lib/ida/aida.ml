type criticality = Non_real_time | Standard | Important | Critical of int

let redundancy = function
  | Non_real_time -> 0
  | Standard -> 1
  | Important -> 2
  | Critical r ->
      if r < 0 then invalid_arg "Aida.redundancy: negative tolerance";
      r

type profile = (string * criticality) list

let criticality_in profile name =
  match List.assoc_opt name profile with
  | Some c -> c
  | None -> Non_real_time

let allocate ~m ~capacity c =
  if m < 1 || capacity < m || capacity > 255 then
    invalid_arg "Aida.allocate: need 1 <= m <= capacity <= 255";
  min capacity (m + redundancy c)

let transmit ?pool ida ~capacity c file =
  let m = Ida.m ida in
  let n = allocate ~m ~capacity c in
  (* Dispersal rows are independent of [n], so the [n] allocated pieces
     are exactly the prefix of the capacity-wide dispersal — encode only
     them instead of encoding [capacity] pieces and discarding the rest. *)
  Ida.disperse ?pool ida ~n file
