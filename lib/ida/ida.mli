(** Rabin's Information Dispersal Algorithm over GF(2{^8}).

    A file is split into [m] source blocks and *dispersed* into [n >= m]
    blocks ([n <= 255]) such that {e any} [m] of the dispersed blocks suffice
    to reconstruct the file exactly (Section 2.1 of the paper). Dispersal and
    reconstruction are matrix multiplications: the dispersal matrix is an
    [n x m] Vandermonde matrix (any [m] rows are independent), and
    reconstruction inverts the [m x m] submatrix corresponding to the rows
    that were actually received.

    Dispersed blocks are {e self-identifying}: each {!piece} carries the
    index of the dispersal-matrix row that produced it, which is what lets a
    client pick the correct inverse transformation (the paper assumes the
    same of broadcast blocks). *)

type piece = { index : int; data : bytes }
(** One dispersed block: [index] identifies the dispersal-matrix row
    (block "[index+1] out of [n]"), [data] its payload. Every piece of a
    dispersal has the same payload size [ceil (file_size / m)]. *)

type t
(** A dispersal context for fixed [m]: caches the dispersal matrix and the
    reconstruction inverses for row subsets already seen (the paper notes
    the inverse transformations "could be precomputed"). Contexts are cheap;
    reuse one per file class for speed. *)

val create : m:int -> t
(** [create ~m] prepares dispersal with [m] source blocks,
    [1 <= m <= 255]. *)

val m : t -> int

val disperse : t -> n:int -> bytes -> piece array
(** [disperse t ~n file] produces [n] dispersed blocks, [m <= n <= 255].
    [file] is padded internally to a multiple of [m] bytes; use
    {!reconstruct} with the original length to strip the padding. The result
    has pieces in index order [0 .. n-1]. *)

val piece_size : t -> file_size:int -> int
(** Payload size of each dispersed block for a file of [file_size] bytes:
    [ceil (file_size / m)] (0 gives 0). *)

val reconstruct : t -> length:int -> piece list -> bytes
(** [reconstruct t ~length pieces] rebuilds the original file of [length]
    bytes from any [>= m t] distinct pieces (extras are ignored). Raises
    [Invalid_argument] if fewer than [m] distinct indices are supplied, if
    piece sizes disagree, or if [length] exceeds what the pieces encode. *)

val overhead : m:int -> n:int -> float
(** Bandwidth expansion factor [n/m] of a dispersal level. *)
