(** Rabin's Information Dispersal Algorithm over GF(2{^8}).

    A file is split into [m] source blocks and *dispersed* into [n >= m]
    blocks ([n <= 255]) such that {e any} [m] of the dispersed blocks suffice
    to reconstruct the file exactly (Section 2.1 of the paper). Dispersal and
    reconstruction are matrix multiplications: the dispersal matrix is an
    [n x m] Vandermonde matrix (any [m] rows are independent), and
    reconstruction inverts the [m x m] submatrix corresponding to the rows
    that were actually received.

    Dispersed blocks are {e self-identifying}: each {!piece} carries the
    index of the dispersal-matrix row that produced it, which is what lets a
    client pick the correct inverse transformation (the paper assumes the
    same of broadcast blocks). *)

type piece = { index : int; data : bytes }
(** One dispersed block: [index] identifies the dispersal-matrix row
    (block "[index+1] out of [n]"), [data] its payload. Every piece of a
    dispersal has the same payload size [ceil (file_size / m)]. *)

type t
(** A dispersal context for fixed [m]: caches the systematic dispersal
    matrix (rows [0 .. m-1] are the identity, so the first [m] pieces are
    source blocks verbatim), its rows' packed lane tables for the SWAR
    encode kernel, and the reconstruction inverses for row subsets
    already seen (the paper notes the inverse transformations "could be
    precomputed"). The inverse cache is a fixed-size lock-free hash table
    of atomic slots holding immutable entries: lookups and inserts are
    safe from any number of domains concurrently, the entry count never
    exceeds the cap (so adversarial loss patterns — up to [C(255, m)]
    distinct row subsets — cannot grow it without bound), and under
    pressure the oldest entry in a colliding probe window is replaced.
    Contexts are cheap; reuse one per file class for speed, including
    across domains. *)

val create : m:int -> t
(** [create ~m] prepares dispersal with [m] source blocks,
    [1 <= m <= 255]. The inverse cache is capped at 256 entries by
    default; adjust with {!set_cache_cap}. *)

val set_cache_cap : t -> int -> unit
(** [set_cache_cap t cap] bounds the reconstruction-inverse cache to [cap]
    entries ([>= 1]), swapping in a fresh table that carries over the
    youngest entries. Administrative: safe to call while other domains
    reconstruct, but entries they insert during the swap may be
    dropped. *)

val m : t -> int

val disperse : ?pool:Pindisk_util.Pool.t -> t -> n:int -> bytes -> piece array
(** [disperse t ~n file] produces [n] dispersed blocks, [m <= n <= 255].
    [file] is padded internally to a multiple of [m] bytes; use
    {!reconstruct} with the original length to strip the padding. The result
    has pieces in index order [0 .. n-1]; pieces [0 .. m-1] are the source
    blocks verbatim (systematic prefix, emitted by memcpy). When [pool] is
    given and the encode work is large enough to amortize fan-out, the
    (row group) x (column block) task grid is spread across its domains —
    each task builds any lane tables it needs itself, so no serial warm-up
    precedes the fan-out; the output is byte-identical to the sequential
    path. *)

val piece_size : t -> file_size:int -> int
(** Payload size of each dispersed block for a file of [file_size] bytes:
    [ceil (file_size / m)] (0 gives 0). *)

val reconstruct : ?pool:Pindisk_util.Pool.t -> t -> length:int -> piece list -> bytes
(** [reconstruct t ~length pieces] rebuilds the original file of [length]
    bytes from any [>= m t] distinct pieces (extras are ignored; duplicate
    indices keep the {e first} occurrence in list order, so the result is
    deterministic even when a corrupted duplicate disagrees). Raises
    [Invalid_argument] if fewer than [m] distinct indices are supplied, if
    piece sizes disagree, or if [length] exceeds what the pieces encode.
    [pool] parallelizes source-block rebuilding exactly as in
    {!disperse}. *)

val cached_inverses : t -> int
(** Number of reconstruction inverses currently cached (always
    [<= cache_cap]). *)

val cache_stats : t -> int * int
(** [(hits, misses)] of the reconstruction-inverse cache since [create],
    counted per {!reconstruct} lookup. Concurrent first lookups of one
    row subset may each count a miss (each computes its own inverse; the
    cache keeps one). *)

val encode_passes : unit -> int
(** Cumulative number of row-encode passes performed by {!disperse} and
    {!reconstruct} across all contexts (one pass per piece produced or
    source block rebuilt). Monotone; take a delta around a call to count
    its encode work. *)

val overhead : m:int -> n:int -> float
(** Bandwidth expansion factor [n/m] of a dispersal level. *)
