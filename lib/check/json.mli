(** A minimal JSON tree, printer and parser.

    The audit subsystem ships machine-readable artifacts — audit reports,
    derivation traces, infeasibility certificates — and must also {e read}
    them back (re-validating an archived trace is the whole point of an
    independent checker), so both directions live here. Deliberately tiny:
    no streaming, deterministic output (object fields print in
    construction order). Audit artifacts remain integer-only (every
    rational in the checker is exact, serialized as
    [{"num": …, "den": …}] or a string); the [Float] case exists for the
    observability snapshots ({!Metrics}), which carry derived means, and
    is rendered losslessly — print → parse → print is byte-stable. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val to_string : ?minify:bool -> t -> string
(** Render. Default is pretty-printed with two-space indentation and a
    trailing newline — stable enough to diff as a golden artifact;
    [~minify:true] emits a single line. Floats print as the shortest
    decimal that parses back to the same float (always with a ['.'] or
    exponent, so they re-parse as [Float]); raises [Invalid_argument] on
    NaN or infinities, which have no JSON form. *)

val of_string : string -> (t, string) result
(** Parse a complete JSON document ([Error] carries position and reason).
    Accepts exactly what {!to_string} emits plus arbitrary whitespace.
    Numbers with a fraction or exponent become [Float] (rejected if they
    overflow to infinity); all others stay exact [Int]. *)

(** {1 Decoding helpers} *)

val member : string -> t -> t option
(** Field lookup in an [Obj] ([None] otherwise). *)

val to_int : t -> (int, string) result

val to_float : t -> (float, string) result
(** Accepts [Float] and (widening) [Int]. *)

val to_str : t -> (string, string) result
val to_list : t -> (t list, string) result

val get_int : string -> t -> (int, string) result
(** [get_int k j] is the integer at field [k] of object [j]. *)

val get_float : string -> t -> (float, string) result
val get_str : string -> t -> (string, string) result
val get_list : string -> t -> (t list, string) result
