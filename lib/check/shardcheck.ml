module P = Pindisk_pinwheel
module Q = Pindisk_util.Q
module Shard = Pindisk.Shard
module File_spec = Pindisk.File_spec
module Program = Pindisk.Program

type channel_report = {
  channel : int;
  files : int;
  period : int;
  density : Q.t;
  witnessed : bool;
}

type file_report = {
  file : int;
  name : string;
  capacity : int;
  channels : int list;
  covered : bool;
  disjoint : bool;
  outage_tolerant : bool;
}

type t = {
  channels : channel_report list;
  files : file_report list;
  shed : int list;
  stripe : int;
}

(* Densities are recomputed from the placement map — share size over the
   file's window — not read off the channel record, so a lying optimizer
   is caught by arithmetic, not echoed. *)
let channel_density (design : Shard.t) c =
  List.fold_left
    (fun acc (p : Shard.placement) ->
      if p.Shard.channel <> c then acc
      else
        let spec =
          List.find
            (fun f -> f.File_spec.id = p.Shard.file)
            design.Shard.specs
        in
        Q.add acc
          (Q.make (Array.length p.Shard.pieces)
             (File_spec.window spec ~bandwidth:design.Shard.bandwidth)))
    Q.zero design.Shard.placements

let channel_tasks (design : Shard.t) c =
  List.filter_map
    (fun (f : File_spec.t) ->
      design.Shard.placements
      |> List.find_opt (fun (p : Shard.placement) ->
             p.Shard.file = f.File_spec.id && p.Shard.channel = c)
      |> Option.map (fun (p : Shard.placement) ->
             P.Task.make ~id:f.File_spec.id
               ~a:(Array.length p.Shard.pieces)
               ~b:(File_spec.window f ~bandwidth:design.Shard.bandwidth)))
    design.Shard.specs

let check_channel (design : Shard.t) (ch : Shard.channel) =
  let tasks = channel_tasks design ch.Shard.index in
  let schedule = Program.schedule ch.Shard.program in
  {
    channel = ch.Shard.index;
    files = List.length tasks;
    period = P.Schedule.period schedule;
    density = channel_density design ch.Shard.index;
    witnessed = tasks = [] || P.Verify.satisfies schedule tasks;
  }

let check_file (design : Shard.t) (f : File_spec.t) =
  let ps = Shard.placements_of design f.File_spec.id in
  let chans = List.map (fun (p : Shard.placement) -> p.Shard.channel) ps in
  let pieces =
    List.concat_map
      (fun (p : Shard.placement) -> Array.to_list p.Shard.pieces)
      ps
  in
  let sorted = List.sort compare pieces in
  {
    file = f.File_spec.id;
    name = f.File_spec.name;
    capacity = f.File_spec.capacity;
    channels = List.sort compare chans;
    covered = sorted = List.init f.File_spec.capacity Fun.id;
    disjoint =
      List.length (List.sort_uniq compare pieces) = List.length pieces
      && List.length (List.sort_uniq compare chans) = List.length chans;
    outage_tolerant = Shard.outage_tolerant design f.File_spec.id;
  }

let run (design : Shard.t) =
  {
    channels =
      Array.to_list (Array.map (check_channel design) design.Shard.channels);
    files =
      design.Shard.specs
      |> List.map (check_file design)
      |> List.sort (fun a b -> compare a.file b.file);
    shed =
      List.sort compare
        (List.map (fun f -> f.File_spec.id) design.Shard.shed);
    stripe = design.Shard.stripe;
  }

let problems t =
  List.concat
    [
      List.filter_map
        (fun c ->
          if not c.witnessed then
            Some
              (Printf.sprintf "channel %d: schedule fails its sub-task system"
                 c.channel)
          else None)
        t.channels;
      List.filter_map
        (fun c ->
          if Q.( > ) c.density Q.one then
            Some
              (Printf.sprintf "channel %d: density above one (infeasible)"
                 c.channel)
          else None)
        t.channels;
      List.concat_map
        (fun (f : file_report) ->
          List.filter_map Fun.id
            [
              (if f.channels = [] then
                 Some (Printf.sprintf "file %d: served by no channel" f.file)
               else None);
              (if not f.covered then
                 Some
                   (Printf.sprintf
                      "file %d: shares do not cover pieces 0..%d" f.file
                      (f.capacity - 1))
               else None);
              (if not f.disjoint then
                 Some
                   (Printf.sprintf
                      "file %d: overlapping shares or duplicated channel"
                      f.file)
               else None);
            ])
        t.files;
    ]

let ok t = problems t = []

let q_to_json (q : Q.t) = Json.Obj [ ("num", Json.Int q.Q.num); ("den", Json.Int q.Q.den) ]

let to_json t =
  Json.Obj
    [
      ("stripe", Json.Int t.stripe);
      ( "channels",
        Json.List
          (List.map
             (fun c ->
               Json.Obj
                 [
                   ("channel", Json.Int c.channel);
                   ("files", Json.Int c.files);
                   ("period", Json.Int c.period);
                   ("density", q_to_json c.density);
                   ("witnessed", Json.Bool c.witnessed);
                 ])
             t.channels) );
      ( "files",
        Json.List
          (List.map
             (fun f ->
               Json.Obj
                 [
                   ("file", Json.Int f.file);
                   ("name", Json.Str f.name);
                   ("capacity", Json.Int f.capacity);
                   ("channels", Json.List (List.map (fun c -> Json.Int c) f.channels));
                   ("covered", Json.Bool f.covered);
                   ("disjoint", Json.Bool f.disjoint);
                   ("outage_tolerant", Json.Bool f.outage_tolerant);
                 ])
             t.files) );
      ("shed", Json.List (List.map (fun i -> Json.Int i) t.shed));
      ("problems", Json.List (List.map (fun p -> Json.Str p) (problems t)));
      ("ok", Json.Bool (ok t));
    ]

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun c ->
      Format.fprintf ppf "channel %d: %d file(s), period %d, density %a, %s@,"
        c.channel c.files c.period Q.pp c.density
        (if c.witnessed then "witnessed" else "NOT WITNESSED"))
    t.channels;
  List.iter
    (fun f ->
      Format.fprintf ppf "file %d (%s): channels %s%s%s%s@," f.file f.name
        (String.concat "," (List.map string_of_int f.channels))
        (if f.covered then "" else ", NOT COVERED")
        (if f.disjoint then "" else ", OVERLAP")
        (if f.outage_tolerant then ", outage-tolerant" else ""))
    t.files;
  (match t.shed with
  | [] -> ()
  | shed ->
      Format.fprintf ppf "shed: %s@,"
        (String.concat "," (List.map string_of_int shed)));
  Format.fprintf ppf "%s@]"
    (match problems t with
    | [] -> "shardcheck: ok"
    | ps -> Printf.sprintf "shardcheck: %d problem(s)" (List.length ps))
