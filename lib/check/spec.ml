module Designer = Pindisk.Designer
module Generalized = Pindisk.Generalized
module Bc = Pindisk_algebra.Bc

type t =
  | Designer of { byte_rate : int; reqs : Designer.requirement list }
  | Generalized of Generalized.spec list

let header = "pindisk-design v1"

(* Strip the comment tail and split on runs of blanks. *)
let tokens line =
  let line =
    match String.index_opt line '#' with
    | Some i -> String.sub line 0 i
    | None -> line
  in
  String.split_on_char ' ' line
  |> List.concat_map (String.split_on_char '\t')
  |> List.filter (fun s -> s <> "")

let int_tok ~ln what s =
  match int_of_string_opt s with
  | Some i -> Ok i
  | None -> Error (Printf.sprintf "line %d: %s %S is not an integer" ln what s)

let of_string text =
  let ( let* ) = Result.bind in
  let lines =
    String.split_on_char '\n' text
    |> List.mapi (fun i l -> (i + 1, tokens l))
    |> List.filter (fun (_, ts) -> ts <> [])
  in
  let* lines =
    match lines with
    | (_, [ "pindisk-design"; "v1" ]) :: rest -> Ok rest
    | (ln, _) :: _ ->
        Error (Printf.sprintf "line %d: expected header %S" ln header)
    | [] -> Error (Printf.sprintf "empty spec (expected header %S)" header)
  in
  let rate = ref None in
  let reqs = ref [] in
  let specs = ref [] in
  let rec walk = function
    | [] -> Ok ()
    | (ln, stanza) :: rest ->
        let* () =
          match stanza with
          | [ "rate"; r ] -> (
              let* r = int_tok ~ln "rate" r in
              match !rate with
              | Some _ -> Error (Printf.sprintf "line %d: duplicate rate" ln)
              | None ->
                  if r < 1 then
                    Error (Printf.sprintf "line %d: rate must be positive" ln)
                  else begin
                    rate := Some r;
                    Ok ()
                  end)
          | "require" :: name :: numbers -> (
              let* bytes, latency_s, tolerance =
                match numbers with
                | [ b; l ] ->
                    let* b = int_tok ~ln "bytes" b in
                    let* l = int_tok ~ln "latency" l in
                    Ok (b, l, 0)
                | [ b; l; t ] ->
                    let* b = int_tok ~ln "bytes" b in
                    let* l = int_tok ~ln "latency" l in
                    let* t = int_tok ~ln "tolerance" t in
                    Ok (b, l, t)
                | _ ->
                    Error
                      (Printf.sprintf
                         "line %d: want require NAME BYTES LATENCY [TOL]" ln)
              in
              match
                Designer.requirement ~name ~tolerance ~id:(List.length !reqs)
                  ~bytes ~latency_s ()
              with
              | r ->
                  reqs := r :: !reqs;
                  Ok ()
              | exception Invalid_argument e ->
                  Error (Printf.sprintf "line %d: %s" ln e))
          | [ "bc"; m; ds ] | [ "bc"; m; ds; _ ] -> (
              let* mv = int_tok ~ln "m" m in
              let* d =
                List.fold_left
                  (fun acc s ->
                    let* acc = acc in
                    let* v = int_tok ~ln "latency" s in
                    Ok (v :: acc))
                  (Ok [])
                  (String.split_on_char ',' ds)
              in
              let d = List.rev d in
              let* capacity =
                match stanza with
                | [ _; _; _; c ] ->
                    let* c = int_tok ~ln "capacity" c in
                    Ok (Some c)
                | _ -> Ok None
              in
              match
                Generalized.spec ?capacity
                  (Bc.make ~file:(List.length !specs) ~m:mv ~d)
              with
              | s ->
                  specs := s :: !specs;
                  Ok ()
              | exception Invalid_argument e ->
                  Error (Printf.sprintf "line %d: %s" ln e))
          | w :: _ ->
              Error (Printf.sprintf "line %d: unknown stanza %S" ln w)
          | [] -> assert false
        in
        walk rest
  in
  let* () = walk lines in
  match (!rate, List.rev !reqs, List.rev !specs) with
  | None, [], [] -> Error "no require or bc stanzas"
  | Some _, _, _ :: _ | _, _ :: _, _ :: _ ->
      Error "rate/require and bc stanzas cannot be mixed"
  | Some byte_rate, (_ :: _ as reqs), [] -> Ok (Designer { byte_rate; reqs })
  | Some _, [], [] -> Error "rate given but no require stanzas"
  | None, _ :: _, [] -> Error "require stanzas need a rate"
  | None, [], (_ :: _ as specs) -> Ok (Generalized specs)

let load path =
  match In_channel.with_open_text path In_channel.input_all with
  | text -> of_string text
  | exception Sys_error e -> Error e

let pp ppf = function
  | Designer { byte_rate; reqs } ->
      Format.fprintf ppf "designer: %d B/s, %d files" byte_rate
        (List.length reqs)
  | Generalized specs ->
      Format.fprintf ppf "generalized: %d conditions" (List.length specs)
