(* Observability snapshots as JSON. Lives here (not in [lib/obs]) so the
   obs layer stays dependency-free and snapshots ride the same
   hand-rolled JSON tree as every other machine-readable artifact; the
   derived fields (mean, quantile estimates) are recomputed from the
   carried data on re-serialization, so print -> parse -> print is
   byte-stable. *)

module Obs = Pindisk_obs

let schema = "pindisk-metrics v1"
let ( let* ) = Result.bind

(* ------------------------------------------------------------------ *)
(* to JSON                                                             *)
(* ------------------------------------------------------------------ *)

let span_fields : Obs.Trace.span -> (string * Json.t) list = function
  | Obs.Trace.Slot { slot; file; index } ->
      [
        ("span", Json.Str "slot");
        ("slot", Json.Int slot);
        ("file", Json.Int file);
        ("index", Json.Int index);
      ]
  | Obs.Trace.Fault_burst { slot; length } ->
      [
        ("span", Json.Str "fault_burst");
        ("slot", Json.Int slot);
        ("length", Json.Int length);
      ]
  | Obs.Trace.Reconstruct { file; pieces; bytes } ->
      [
        ("span", Json.Str "reconstruct");
        ("file", Json.Int file);
        ("pieces", Json.Int pieces);
        ("bytes", Json.Int bytes);
      ]
  | Obs.Trace.Hot_swap { slot; cause } ->
      [
        ("span", Json.Str "hot_swap");
        ("slot", Json.Int slot);
        ("cause", Json.Str cause);
      ]
  | Obs.Trace.Crash { slot } ->
      [ ("span", Json.Str "crash"); ("slot", Json.Int slot) ]
  | Obs.Trace.Recover { slot; replayed } ->
      [
        ("span", Json.Str "recover");
        ("slot", Json.Int slot);
        ("replayed", Json.Int replayed);
      ]
  | Obs.Trace.Retry { file; attempt; backoff } ->
      [
        ("span", Json.Str "retry");
        ("file", Json.Int file);
        ("attempt", Json.Int attempt);
        ("backoff", Json.Int backoff);
      ]

let event_to_json (e : Obs.Trace.event) =
  Json.Obj (("tick", Json.Int e.tick) :: span_fields e.span)

let hist_to_json (h : Obs.Snapshot.hist) =
  let quant p =
    if h.Obs.Snapshot.count = 0 then Json.Null
    else Json.Int (Obs.Snapshot.quantile h p)
  in
  Json.Obj
    [
      ("count", Json.Int h.Obs.Snapshot.count);
      ("sum", Json.Int h.Obs.Snapshot.sum);
      ("min", Json.Int h.Obs.Snapshot.lo);
      ("max", Json.Int h.Obs.Snapshot.hi);
      ("mean", Json.Float (Obs.Snapshot.mean h));
      ("p50", quant 0.5);
      ("p90", quant 0.9);
      ("p99", quant 0.99);
      ( "buckets",
        Json.List
          (List.map
             (fun (b, n) -> Json.List [ Json.Int b; Json.Int n ])
             h.Obs.Snapshot.buckets) );
    ]

let snapshot_to_json (s : Obs.Snapshot.t) =
  let ints kvs = Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) kvs) in
  Json.Obj
    [
      ("schema", Json.Str schema);
      ("tick", Json.Int s.Obs.Snapshot.tick);
      ("counters", ints s.Obs.Snapshot.counters);
      ("gauges", ints s.Obs.Snapshot.gauges);
      ( "histograms",
        Json.Obj
          (List.map
             (fun (k, h) -> (k, hist_to_json h))
             s.Obs.Snapshot.histograms) );
      ("events", Json.List (List.map event_to_json s.Obs.Snapshot.events));
    ]

(* ------------------------------------------------------------------ *)
(* from JSON                                                           *)
(* ------------------------------------------------------------------ *)

let field k j =
  match Json.member k j with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "missing field %S" k)

let obj_fields = function
  | Json.Obj fields -> Ok fields
  | _ -> Error "expected an object"

let int_assoc k j =
  let* sub = field k j in
  let* fields = obj_fields sub in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | (name, v) :: rest -> (
        match Json.to_int v with
        | Ok i -> go ((name, i) :: acc) rest
        | Error e -> Error (Printf.sprintf "%s.%s: %s" k name e))
  in
  go [] fields

let bucket_of_json = function
  | Json.List [ Json.Int b; Json.Int n ] -> Ok (b, n)
  | _ -> Error "expected a [bucket, count] pair"

let rec collect f = function
  | [] -> Ok []
  | x :: rest ->
      let* v = f x in
      let* vs = collect f rest in
      Ok (v :: vs)

let hist_of_json j : (Obs.Snapshot.hist, string) result =
  let* count = Json.get_int "count" j in
  let* sum = Json.get_int "sum" j in
  let* lo = Json.get_int "min" j in
  let* hi = Json.get_int "max" j in
  let* bucket_list = Json.get_list "buckets" j in
  let* buckets = collect bucket_of_json bucket_list in
  Ok { Obs.Snapshot.count; sum; lo; hi; buckets }

let span_of_json j =
  let* kind = Json.get_str "span" j in
  match kind with
  | "slot" ->
      let* slot = Json.get_int "slot" j in
      let* file = Json.get_int "file" j in
      let* index = Json.get_int "index" j in
      Ok (Obs.Trace.Slot { slot; file; index })
  | "fault_burst" ->
      let* slot = Json.get_int "slot" j in
      let* length = Json.get_int "length" j in
      Ok (Obs.Trace.Fault_burst { slot; length })
  | "reconstruct" ->
      let* file = Json.get_int "file" j in
      let* pieces = Json.get_int "pieces" j in
      let* bytes = Json.get_int "bytes" j in
      Ok (Obs.Trace.Reconstruct { file; pieces; bytes })
  | "hot_swap" ->
      let* slot = Json.get_int "slot" j in
      let* cause = Json.get_str "cause" j in
      Ok (Obs.Trace.Hot_swap { slot; cause })
  | "crash" ->
      let* slot = Json.get_int "slot" j in
      Ok (Obs.Trace.Crash { slot })
  | "recover" ->
      let* slot = Json.get_int "slot" j in
      let* replayed = Json.get_int "replayed" j in
      Ok (Obs.Trace.Recover { slot; replayed })
  | "retry" ->
      let* file = Json.get_int "file" j in
      let* attempt = Json.get_int "attempt" j in
      let* backoff = Json.get_int "backoff" j in
      Ok (Obs.Trace.Retry { file; attempt; backoff })
  | other -> Error (Printf.sprintf "unknown span kind %S" other)

let event_of_json j =
  let* tick = Json.get_int "tick" j in
  let* span = span_of_json j in
  Ok { Obs.Trace.tick; span }

let snapshot_of_json j : (Obs.Snapshot.t, string) result =
  let* got = Json.get_str "schema" j in
  if got <> schema then
    Error (Printf.sprintf "unsupported schema %S (want %S)" got schema)
  else
    let* tick = Json.get_int "tick" j in
    let* counters = int_assoc "counters" j in
    let* gauges = int_assoc "gauges" j in
    let* hist_field = field "histograms" j in
    let* hist_fields = obj_fields hist_field in
    let* histograms =
      collect
        (fun (k, v) ->
          match hist_of_json v with
          | Ok h -> Ok (k, h)
          | Error e -> Error (Printf.sprintf "histogram %S: %s" k e))
        hist_fields
    in
    let* event_list = Json.get_list "events" j in
    let* events = collect event_of_json event_list in
    Ok { Obs.Snapshot.tick; counters; gauges; histograms; events }

let snapshot_of_string s =
  let* j = Json.of_string s in
  snapshot_of_json j
