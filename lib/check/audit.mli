(** The whole-design auditor: static verification of a broadcast-disk
    design, end to end, without running the simulator.

    [run] drives the library's own pipeline (Designer.plan or
    Generalized.program) on a {!Spec.t} and then {e independently}
    re-establishes, by counting and arithmetic only:

    - {b vector conditions} — every fault level [pc(m + j, d⁽ʲ⁾)] of every
      file's [bc(i, m, d⃗)] is re-counted on the broadcast period via
      {!Pindisk_pinwheel.Verify.window_counts};
    - {b derivation traces} — the algebra's certified rewrites (or the
      simple-model reduction, for Designer specs) are validated by the
      trusted {!Kernel};
    - {b density} — the exact rational density of the scheduled system is
      recomputed and classified against the guarantee thresholds, flagging
      the [(7/10, 5/6]] band where the schedulers give no guarantee but
      instances remain (conjecturally) feasible;
    - {b dispersal} — every file's [(m, capacity)] IDA level is checked
      for the MDS property ({!Mds}).

    The outcome is a structured report with a JSON rendering — the
    artifact [pindisk audit] prints and CI gates on. *)

module Q = Pindisk_util.Q
module Trace = Pindisk_algebra.Trace

type band =
  | Sa_guarantee  (** density <= 1/2: within the reduction schedulers' bound *)
  | Chan_chin  (** <= 7/10: within the Chan–Chin single-unit bound *)
  | Guarantee_gap  (** in (7/10, 5/6]: feasible instances exist, no guarantee *)
  | Above_five_sixths  (** in (5/6, 1]: beyond the Kawamura threshold *)
  | Above_one  (** > 1: provably infeasible *)

val band_of_density : Q.t -> band
val band_name : band -> string

type level_report = {
  level : int;  (** fault count [j] *)
  window : int;  (** [d⁽ʲ⁾] in slots *)
  required : int;  (** [m + j] *)
  observed : int;  (** worst-case occurrences actually counted *)
}

type file_report = {
  file : int;
  name : string;
  m : int;
  tolerance : int;
  capacity : int;
  levels : level_report list;
  mds : (Mds.outcome, string) result;
}

type t = {
  kind : string;  (** ["designer"] or ["generalized"] *)
  period : int;  (** broadcast period of the audited program *)
  density : Q.t;  (** exact density of the scheduled pinwheel system *)
  band : band;
  files : file_report list;
  traces : Trace.t list;
  trace_result : (unit, int * Kernel.reject) result;
}

val run : Spec.t -> (t, string) result
(** Build the design and audit it. [Error] when the pipeline itself cannot
    produce a program (infeasible design) — there is nothing to audit. *)

val problems : t -> string list
(** Violations that make the audit fail: an under-served fault level, a
    rejected trace, a failed MDS check, density above one. *)

val warnings : t -> string list
(** Non-fatal flags, currently the [(7/10, 5/6]] density band. *)

val ok : t -> bool
(** [problems] is empty. *)

val to_json : t -> Json.t
(** The full report, including the derivation traces themselves
    (re-parseable with {!Witness.trace_of_json} and re-checkable with
    {!Kernel.validate}). *)
