(** Design-spec files: the on-disk input of [pindisk audit].

    A design spec captures a complete deployment request in a small line
    format, so example designs can live in the repository and be audited
    in CI. Two kinds are supported, matching the library's two entry
    points:

    {v
    pindisk-design v1
    # a physical deployment (Designer.plan)
    rate 4096
    require incidents 1800 3 2     # NAME BYTES LATENCY_S [TOLERANCE]
    require guidance 5000 12 1
    v}

    {v
    pindisk-design v1
    # a generalized design (latency vectors; Generalized.program)
    bc 2 20,24,30                  # M D0,D1,... [CAPACITY]
    bc 1 6,9
    v}

    [#] starts a comment; blank lines are ignored; the header line is
    mandatory. [rate]/[require] and [bc] stanzas must not be mixed. *)

type t =
  | Designer of { byte_rate : int; reqs : Pindisk.Designer.requirement list }
  | Generalized of Pindisk.Generalized.spec list

val of_string : string -> (t, string) result
(** Parse a spec from its text; errors carry the 1-based line number. *)

val load : string -> (t, string) result
(** {!of_string} on a file's contents; [Error] on I/O failure too. *)

val pp : Format.formatter -> t -> unit
