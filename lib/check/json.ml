type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* printing                                                            *)
(* ------------------------------------------------------------------ *)

let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

(* Lossless float rendering: the shortest of %.15g/%.16g/%.17g that reads
   back as the same float, forced to contain '.' or an exponent so the
   parser returns [Float] (never [Int]) for it. Deterministic in the
   float value, so print -> parse -> print is byte-stable. *)
let float_repr f =
  if not (Float.is_finite f) then
    invalid_arg "Json.to_string: NaN and infinities have no JSON form";
  let shortest =
    let exact p =
      let s = Printf.sprintf "%.*g" p f in
      if float_of_string s = f then Some s else None
    in
    match exact 15 with
    | Some s -> s
    | None -> (
        match exact 16 with Some s -> s | None -> Printf.sprintf "%.17g" f)
  in
  if
    String.exists
      (fun c -> c = '.' || c = 'e' || c = 'E')
      shortest
  then shortest
  else shortest ^ ".0"

let to_string ?(minify = false) json =
  let buf = Buffer.create 256 in
  let indent n =
    if not minify then begin
      Buffer.add_char buf '\n';
      Buffer.add_string buf (String.make (2 * n) ' ')
    end
  in
  let rec go depth = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Float f -> Buffer.add_string buf (float_repr f)
    | Str s -> escape buf s
    | List [] -> Buffer.add_string buf "[]"
    | List items ->
        Buffer.add_char buf '[';
        List.iteri
          (fun i item ->
            if i > 0 then Buffer.add_char buf ',';
            indent (depth + 1);
            go (depth + 1) item)
          items;
        indent depth;
        Buffer.add_char buf ']'
    | Obj [] -> Buffer.add_string buf "{}"
    | Obj fields ->
        Buffer.add_char buf '{';
        List.iteri
          (fun i (k, v) ->
            if i > 0 then Buffer.add_char buf ',';
            indent (depth + 1);
            escape buf k;
            Buffer.add_string buf (if minify then ":" else ": ");
            go (depth + 1) v)
          fields;
        indent depth;
        Buffer.add_char buf '}'
  in
  go 0 json;
  if not minify then Buffer.add_char buf '\n';
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* parsing                                                             *)
(* ------------------------------------------------------------------ *)

exception Parse of int * string

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse (!pos, msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n
      && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some d when d = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %C" c)
  in
  let literal word value =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      value
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let parse_number () =
    let start = !pos in
    let digits () =
      let d0 = !pos in
      while !pos < n && match s.[!pos] with '0' .. '9' -> true | _ -> false do
        advance ()
      done;
      if !pos = d0 then fail "expected a digit"
    in
    if peek () = Some '-' then advance ();
    digits ();
    let is_float = ref false in
    if peek () = Some '.' then begin
      is_float := true;
      advance ();
      digits ()
    end;
    (match peek () with
    | Some ('e' | 'E') ->
        is_float := true;
        advance ();
        (match peek () with Some ('+' | '-') -> advance () | _ -> ());
        digits ()
    | _ -> ());
    let lexeme = String.sub s start (!pos - start) in
    if !is_float then
      match float_of_string_opt lexeme with
      | Some f when Float.is_finite f -> Float f
      | Some _ -> fail "number overflows a float"
      | None -> fail "bad number"
    else
      match int_of_string_opt lexeme with
      | Some i -> Int i
      | None -> fail "bad number"
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string"
      else
        match s.[!pos] with
        | '"' -> advance ()
        | '\\' ->
            advance ();
            (if !pos >= n then fail "unterminated escape"
             else
               match s.[!pos] with
               | '"' -> Buffer.add_char buf '"'
               | '\\' -> Buffer.add_char buf '\\'
               | '/' -> Buffer.add_char buf '/'
               | 'n' -> Buffer.add_char buf '\n'
               | 't' -> Buffer.add_char buf '\t'
               | 'r' -> Buffer.add_char buf '\r'
               | 'b' -> Buffer.add_char buf '\b'
               | 'f' -> Buffer.add_char buf '\012'
               | 'u' ->
                   if !pos + 4 >= n then fail "truncated \\u escape";
                   let hex = String.sub s (!pos + 1) 4 in
                   (match int_of_string_opt ("0x" ^ hex) with
                   | Some code when code < 0x80 ->
                       Buffer.add_char buf (Char.chr code)
                   | Some _ -> fail "non-ASCII \\u escape unsupported"
                   | None -> fail "bad \\u escape");
                   pos := !pos + 4
               | c -> fail (Printf.sprintf "bad escape \\%c" c));
            advance ();
            go ()
        | c ->
            Buffer.add_char buf c;
            advance ();
            go ()
    in
    go ();
    Buffer.contents buf
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some 'n' -> literal "null" Null
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some '"' -> Str (parse_string ())
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else
          let rec items acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                items (v :: acc)
            | Some ']' ->
                advance ();
                List (List.rev (v :: acc))
            | _ -> fail "expected ',' or ']'"
          in
          items []
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else
          let field () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            (k, v)
          in
          let rec fields acc =
            let kv = field () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                fields (kv :: acc)
            | Some '}' ->
                advance ();
                Obj (List.rev (kv :: acc))
            | _ -> fail "expected ',' or '}'"
          in
          fields []
    | Some c -> fail (Printf.sprintf "unexpected character %C" c)
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Parse (at, msg) ->
      Error (Printf.sprintf "json: at offset %d: %s" at msg)

(* ------------------------------------------------------------------ *)
(* decoding helpers                                                    *)
(* ------------------------------------------------------------------ *)

let member k = function Obj fields -> List.assoc_opt k fields | _ -> None
let to_int = function Int i -> Ok i | _ -> Error "expected an integer"

let to_float = function
  | Float f -> Ok f
  | Int i -> Ok (float_of_int i)
  | _ -> Error "expected a number"

let to_str = function Str s -> Ok s | _ -> Error "expected a string"
let to_list = function List l -> Ok l | _ -> Error "expected a list"

let get conv k j =
  match member k j with
  | None -> Error (Printf.sprintf "missing field %S" k)
  | Some v -> (
      match conv v with
      | Ok x -> Ok x
      | Error e -> Error (Printf.sprintf "field %S: %s" k e))

let get_int k j = get to_int k j
let get_float k j = get to_float k j
let get_str k j = get to_str k j
let get_list k j = get to_list k j
