module Gf256 = Pindisk_gf256.Gf256
module Matrix = Pindisk_gf256.Matrix

type outcome = Exhaustive of int | Structural | Failed of int array

let pp_outcome ppf = function
  | Exhaustive k -> Format.fprintf ppf "exhaustive (%d subsets inverted)" k
  | Structural -> Format.fprintf ppf "structural (distinct Vandermonde nodes)"
  | Failed rows ->
      Format.fprintf ppf "FAILED: rows {%a} are singular"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
           Format.pp_print_int)
        (Array.to_list rows)

let default_budget = 10_000

(* C(n, k), saturating at max_int (n <= 255 here, but stay safe). *)
let binomial n k =
  let k = min k (n - k) in
  if k < 0 then 0
  else
    let acc = ref 1 in
    (try
       for i = 1 to k do
         if !acc > max_int / (n - k + i) then raise Exit;
         acc := !acc * (n - k + i) / i
       done
     with Exit -> acc := max_int);
    !acc

(* Enumerate k-subsets of [0, n) in lexicographic order, stopping at the
   first for which [f subset] is false. *)
let for_all_subsets n k f =
  let idx = Array.init k (fun i -> i) in
  let next () =
    (* advance to the next combination; false when exhausted *)
    let rec bump i =
      if i < 0 then false
      else if idx.(i) < n - k + i then begin
        idx.(i) <- idx.(i) + 1;
        for j = i + 1 to k - 1 do
          idx.(j) <- idx.(j - 1) + 1
        done;
        true
      end
      else bump (i - 1)
    in
    bump (k - 1)
  in
  let rec go count =
    if not (f idx) then Error (Array.copy idx)
    else if next () then go (count + 1)
    else Ok (count + 1)
  in
  go 0

let check_matrix ?(budget = default_budget) matrix ~m =
  let n = Matrix.rows matrix in
  if m < 1 then Error "m must be >= 1"
  else if Matrix.cols matrix <> m then
    Error "matrix must have exactly m columns"
  else if n < m then Error "need at least m rows"
  else if binomial n m > budget then
    Error
      (Printf.sprintf "C(%d,%d) subsets exceed the exhaustive budget %d" n m
         budget)
  else
    match
      for_all_subsets n m (fun idx ->
          Matrix.invert (Matrix.select_rows matrix idx) <> None)
    with
    | Ok count -> Ok (Exhaustive count)
    | Error rows -> Ok (Failed rows)

let check ?(budget = default_budget) n ~m =
  if m < 1 then Error "m must be >= 1"
  else if n < m then Error "need n >= m dispersed blocks"
  else if n > 255 then Error "n must be <= 255 over GF(256)"
  else if binomial n m <= budget then
    check_matrix ~budget (Matrix.vandermonde ~rows:n ~cols:m) ~m
  else begin
    (* Vandermonde on pairwise distinct nodes: every square submatrix on
       distinct nodes is invertible, so distinctness of x_i = exp i for
       i < n is all the MDS property needs. *)
    let seen = Array.make 256 (-1) in
    let clash = ref None in
    for i = 0 to n - 1 do
      let x = Gf256.exp i in
      if !clash = None then
        if seen.(x) >= 0 then clash := Some [| seen.(x); i |]
        else seen.(x) <- i
    done;
    match !clash with
    | Some rows -> Ok (Failed rows)
    | None -> Ok Structural
  end
