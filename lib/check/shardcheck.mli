(** Independent certification of a multi-channel shard design.

    {!Pindisk.Shard.design} promises four things; this checker
    re-establishes each one by direct counting on the materialized
    design, without trusting the optimizer:

    - {b per-channel witnesses}: every channel's broadcast schedule is
      re-verified against that channel's sub-task system with
      {!Pindisk_pinwheel.Verify} — each sub-task [(i, n_j, B·T_i)] gets
      its [n_j] occurrences in every window of [B·T_i] slots — and the
      channel program's capacities are re-read off the placement map;
    - {b cover}: for every admitted file, the union of its per-channel
      piece shares is exactly [{0, …, N_i - 1}] — a client scanning the
      whole stripe set sees every dispersed piece;
    - {b disjointness}: no piece is assigned to two channels and no file
      is placed twice on one channel — cross-channel receptions always
      make progress;
    - {b density}: every channel's exact rational density is [<= 1]
      (channels above one are provably infeasible and the witness check
      would already have failed — the density row is the independent
      arithmetic cross-check).

    The report mirrors the {!Audit} shape: structured rows, a
    [problems]/[ok] verdict for CI to gate on, and a JSON rendering. *)

module Q = Pindisk_util.Q

type channel_report = {
  channel : int;
  files : int;  (** sub-tasks on this channel *)
  period : int;
  density : Q.t;
  witnessed : bool;  (** schedule satisfies the sub-task system *)
}

type file_report = {
  file : int;
  name : string;
  capacity : int;
  channels : int list;  (** serving channels, ascending *)
  covered : bool;  (** shares union to [{0..capacity-1}] *)
  disjoint : bool;  (** no piece on two channels *)
  outage_tolerant : bool;
}

type t = {
  channels : channel_report list;  (** ascending by channel *)
  files : file_report list;  (** admitted files, ascending by id *)
  shed : int list;  (** shed file ids, ascending *)
  stripe : int;
}

val run : Pindisk.Shard.t -> t
(** Certify a design. Pure counting — never raises on a well-typed
    design. *)

val problems : t -> string list
(** Violations: an unwitnessed channel, a channel above density one, an
    uncovered or overlapping file, a file served by no channel. *)

val ok : t -> bool

val to_json : t -> Json.t
val pp : Format.formatter -> t -> unit
