(** Static MDS audit of IDA dispersal matrices.

    Rabin's IDA promises that {e any} [m] of the [n] dispersed blocks
    reconstruct the file — equivalently, every [m]-subset of the rows of
    the [n x m] dispersal matrix is invertible over GF(2{^8}) (the MDS
    property). The runtime codec simply trusts this; the auditor
    re-establishes it:

    - {e exhaustively} when the subset count [C(n, m)] fits a budget —
      every submatrix is actually inverted by Gauss–Jordan;
    - {e structurally} otherwise — the dispersal matrix is Vandermonde on
      nodes [x_i = exp i], and a square Vandermonde system on pairwise
      distinct nodes is invertible, so checking node distinctness
      suffices. *)

type outcome =
  | Exhaustive of int
      (** all [C(n, m)] row subsets were inverted; carries the count *)
  | Structural
      (** too many subsets for the budget; the Vandermonde evaluation
          nodes were verified pairwise distinct instead *)
  | Failed of int array
      (** a singular [m]-subset of rows — the dispersal would lose data;
          carries the offending row indices *)

val pp_outcome : Format.formatter -> outcome -> unit

val check : ?budget:int -> int -> m:int -> (outcome, string) result
(** [check n ~m] audits the [n x m] dispersal matrix IDA uses for an
    [(m, n)] level. [Error] on nonsensical dimensions
    ([m < 1 || n < m || n > 255]). [budget] caps the number of subsets
    inverted exhaustively (default [10_000]). *)

val check_matrix :
  ?budget:int -> Pindisk_gf256.Matrix.t -> m:int -> (outcome, string) result
(** Exhaustive-only variant for an arbitrary matrix (no structural
    fallback — [Error] when [C(rows, m)] exceeds the budget). Exposed so
    tests can feed handcrafted singular matrices through the same
    subset-enumeration path. *)
