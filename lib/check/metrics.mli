(** Observability snapshots ({!Pindisk_obs.Snapshot}) as JSON.

    The serialization half of the obs layer lives here so [lib/obs]
    stays dependency-free and snapshots ride the same {!Json} tree as
    the audit artifacts. Derived fields in the rendering ([mean] and the
    [p50]/[p90]/[p99] estimates, [Null] when empty) are recomputed from
    the carried data on re-serialization, so
    [to_string ∘ snapshot_to_json ∘ snapshot_of_json] is the identity on
    anything {!snapshot_to_json} printed — the round-trip the
    [pindisk stats --check] cram test diffs byte-for-byte. *)

val schema : string
(** ["pindisk-metrics v1"], carried in the snapshot's [schema] field. *)

val snapshot_to_json : Pindisk_obs.Snapshot.t -> Json.t

val snapshot_of_json : Json.t -> (Pindisk_obs.Snapshot.t, string) result
(** Rejects other schemas and malformed fields with a located reason. *)

val snapshot_of_string : string -> (Pindisk_obs.Snapshot.t, string) result
(** {!Json.of_string} composed with {!snapshot_of_json}. *)
