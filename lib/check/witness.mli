(** Serialized witnesses: derivation traces and infeasibility certificates
    as JSON, with decoding and independent re-validation.

    Audit artifacts are only useful if they survive a trip through disk —
    an archived trace re-parsed a year later must still validate, and a
    stored infeasibility certificate must still refute the same system. So
    every encoder here has a decoder, and certificates can be re-checked
    against the task system they were issued for. *)

module Trace = Pindisk_algebra.Trace
module Analysis = Pindisk_pinwheel.Analysis

(** {1 Derivation traces} *)

val trace_to_json : Trace.t -> Json.t
val trace_of_json : Json.t -> (Trace.t, string) result
(** Inverse of {!trace_to_json} on its image. Decoding only restores the
    structure; semantic validity is {!Kernel.validate}'s job. *)

(** {1 Infeasibility certificates} *)

val certificate_to_json : Analysis.certificate -> Json.t
val certificate_of_json : Json.t -> (Analysis.certificate, string) result

type recheck =
  | Valid  (** the certificate's claim re-verified against the system *)
  | Refuted of string  (** the certificate is {e wrong} for this system *)
  | Not_rechecked of string
      (** could not be re-established independently (e.g. an [Exhausted]
          certificate for a state space beyond the recheck bound) *)

val pp_recheck : Format.formatter -> recheck -> unit

val revalidate_certificate :
  ?exact_states:int ->
  Pindisk_pinwheel.Task.system ->
  Analysis.certificate ->
  recheck
(** Re-establish a certificate against [sys] from scratch:
    [Density_above_one q] recomputes the exact density and compares;
    [Pigeonhole] recomputes the forced demand for the recorded window;
    [Exhausted] re-runs the exact decision procedure when the system is
    single-unit and within [exact_states] (default [500_000]). *)
