module Trace = Pindisk_algebra.Trace
module Analysis = Pindisk_pinwheel.Analysis
module Task = Pindisk_pinwheel.Task
module Exact = Pindisk_pinwheel.Exact
module Q = Pindisk_util.Q

let ( let* ) = Result.bind

(* ------------------------------------------------------------------ *)
(* traces                                                              *)
(* ------------------------------------------------------------------ *)

let cond_to_json (c : Trace.cond) = Json.Obj [ ("a", Int c.a); ("b", Int c.b) ]

let source_to_json = function
  | Trace.Emitted k -> Json.Obj [ ("kind", Str "emitted"); ("index", Int k) ]
  | Trace.Derived k -> Json.Obj [ ("kind", Str "derived"); ("index", Int k) ]

let step_to_json = function
  | Trace.Implies { premise; scale; target } ->
      Json.Obj
        [
          ("rule", Str "implies");
          ("premise", source_to_json premise);
          ("scale", Int scale);
          ("target", cond_to_json target);
        ]
  | Trace.Conjoin { base; guaranteed; scale; alias; target } ->
      Json.Obj
        [
          ("rule", Str "conjoin");
          ("base", source_to_json base);
          ("guaranteed", Int guaranteed);
          ("scale", Int scale);
          ("alias", source_to_json alias);
          ("target", cond_to_json target);
        ]
  | Trace.Align { base; scale; alias; target } ->
      Json.Obj
        [
          ("rule", Str "align");
          ("base", source_to_json base);
          ("scale", Int scale);
          ("alias", source_to_json alias);
          ("target", cond_to_json target);
        ]

let trace_to_json (t : Trace.t) =
  Json.Obj
    [
      ("file", Int t.file);
      ("m", Int t.m);
      ("d", List (Array.to_list (Array.map (fun x -> Json.Int x) t.d)));
      ("transform", Str t.transform);
      ("nice", List (List.map cond_to_json t.nice));
      ("steps", List (List.map step_to_json t.steps));
    ]

let cond_of_json j =
  let* a = Json.get_int "a" j in
  let* b = Json.get_int "b" j in
  Ok { Trace.a; b }

let source_of_json j =
  let* kind = Json.get_str "kind" j in
  let* index = Json.get_int "index" j in
  match kind with
  | "emitted" -> Ok (Trace.Emitted index)
  | "derived" -> Ok (Trace.Derived index)
  | k -> Error (Printf.sprintf "unknown source kind %S" k)

let field k j =
  match Json.member k j with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "missing field %S" k)

let step_of_json j =
  let* rule = Json.get_str "rule" j in
  let src k =
    let* v = field k j in
    source_of_json v
  in
  let cond k =
    let* v = field k j in
    cond_of_json v
  in
  match rule with
  | "implies" ->
      let* premise = src "premise" in
      let* scale = Json.get_int "scale" j in
      let* target = cond "target" in
      Ok (Trace.Implies { premise; scale; target })
  | "conjoin" ->
      let* base = src "base" in
      let* guaranteed = Json.get_int "guaranteed" j in
      let* scale = Json.get_int "scale" j in
      let* alias = src "alias" in
      let* target = cond "target" in
      Ok (Trace.Conjoin { base; guaranteed; scale; alias; target })
  | "align" ->
      let* base = src "base" in
      let* scale = Json.get_int "scale" j in
      let* alias = src "alias" in
      let* target = cond "target" in
      Ok (Trace.Align { base; scale; alias; target })
  | r -> Error (Printf.sprintf "unknown rule %S" r)

let list_of decode items =
  let* rev =
    List.fold_left
      (fun acc x ->
        let* acc = acc in
        let* v = decode x in
        Ok (v :: acc))
      (Ok []) items
  in
  Ok (List.rev rev)

let trace_of_json j =
  let* file = Json.get_int "file" j in
  let* m = Json.get_int "m" j in
  let* d = Json.get_list "d" j in
  let* d = list_of Json.to_int d in
  let d = Array.of_list d in
  let* transform = Json.get_str "transform" j in
  let* nice = Json.get_list "nice" j in
  let* nice = list_of cond_of_json nice in
  let* steps = Json.get_list "steps" j in
  let* steps = list_of step_of_json steps in
  Ok (Trace.make ~file ~m ~d ~transform ~nice ~steps)

(* ------------------------------------------------------------------ *)
(* certificates                                                        *)
(* ------------------------------------------------------------------ *)

let certificate_to_json = function
  | Analysis.Density_above_one q ->
      Json.Obj
        [
          ("kind", Str "density_above_one");
          ("num", Int q.Q.num);
          ("den", Int q.Q.den);
        ]
  | Analysis.Pigeonhole { window; demand } ->
      Json.Obj
        [ ("kind", Str "pigeonhole"); ("window", Int window); ("demand", Int demand) ]
  | Analysis.Exhausted -> Json.Obj [ ("kind", Str "exhausted") ]

let certificate_of_json j =
  let* kind = Json.get_str "kind" j in
  match kind with
  | "density_above_one" ->
      let* num = Json.get_int "num" j in
      let* den = Json.get_int "den" j in
      if den = 0 then Error "zero denominator"
      else Ok (Analysis.Density_above_one (Q.make num den))
  | "pigeonhole" ->
      let* window = Json.get_int "window" j in
      let* demand = Json.get_int "demand" j in
      Ok (Analysis.Pigeonhole { window; demand })
  | "exhausted" -> Ok Analysis.Exhausted
  | k -> Error (Printf.sprintf "unknown certificate kind %S" k)

type recheck = Valid | Refuted of string | Not_rechecked of string

let pp_recheck ppf = function
  | Valid -> Format.pp_print_string ppf "valid"
  | Refuted why -> Format.fprintf ppf "REFUTED: %s" why
  | Not_rechecked why -> Format.fprintf ppf "not re-checked (%s)" why

let revalidate_certificate ?(exact_states = 500_000) sys cert =
  match cert with
  | Analysis.Density_above_one q ->
      let actual = Task.system_density sys in
      if not (Q.equal actual q) then
        Refuted
          (Format.asprintf "claimed density %a but the system's is %a" Q.pp q
             Q.pp actual)
      else if Q.( > ) q Q.one then Valid
      else Refuted (Format.asprintf "density %a is not above one" Q.pp q)
  | Analysis.Pigeonhole { window; demand } ->
      if window < 1 then Refuted "window must be positive"
      else
        let actual =
          List.fold_left
            (fun acc (t : Task.t) -> acc + (t.a * (window / t.b)))
            0 sys
        in
        if actual <> demand then
          Refuted
            (Printf.sprintf
               "claimed demand %d in a %d-window but the system forces %d"
               demand window actual)
        else if demand > window then Valid
        else Refuted (Printf.sprintf "demand %d fits window %d" demand window)
  | Analysis.Exhausted -> (
      if not (Task.is_unit_system sys) then
        Not_rechecked "multi-unit system; exact search not applicable"
      else
        match Exact.decide ~max_states:exact_states sys with
        | Exact.Infeasible -> Valid
        | Exact.Feasible _ -> Refuted "exact search found a valid schedule"
        | Exact.Too_large ->
            Not_rechecked "state space exceeds the recheck bound")
