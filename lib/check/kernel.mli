(** The trusted kernel: an independent validator for algebra derivation
    traces.

    {!Pindisk_algebra.Convert} {e claims} that its nice conjuncts imply the
    original broadcast conditions and backs each claim with a
    {!Pindisk_algebra.Trace.t}. This module re-establishes the claim from
    the trace alone, LCF-style: every step carries explicit witnesses, so
    checking is a fixed set of integer inequalities — no search, no calls
    into the producer ({!Pindisk_algebra.Rules} and
    {!Pindisk_algebra.Convert} are {e not} used here; the only dependencies
    are the trace {e type} and [Pindisk_util] arithmetic).

    What a valid trace establishes: any broadcast program in which each
    emitted nice entry [pc(aᵢ, bᵢ)] is satisfied by its own pseudo-task
    mapped onto the file satisfies [bc(file, m, d⃗)] — i.e. [pc(m + j, d⁽ʲ⁾)]
    for every fault level [j].

    Soundness arguments enforced per step (ids refer to
    {!Pindisk_algebra.Trace.step}):

    - [Implies] (R1;R2;R0): scaling a satisfied [pc(a, b)] by [n] forces
      [n·a] occurrences into every [n·b]-window; shrinking by
      [x = n·a - c] (R2) and relaxing the window (R0) reaches [pc(c, e)]
      provided [n·a >= c] and [n·(b - a) <= e - c].
    - [Conjoin] (R4 family): occurrences of {e distinct} pseudo-tasks add
      up, so [guaranteed] from the base plus [alias.a] from an alias with
      the same window cover the target count. The [guaranteed] count is
      itself re-checked as an [Implies] with the recorded [scale].
    - [Align] (R5 family): every [scale·base.b]-window holds
      [scale·base.a + alias.a] occurrences; at most [alias.b - target.b] of
      them can fall outside a given [target.b]-subwindow.

    Each rejection pinpoints the offending step. References to later (or
    nonexistent) steps, overlapping pseudo-task support between the two
    premises of a conjunction, and any arithmetic outside
    [\[1, 2{^20}\]] are rejected — a corrupted, reordered or truncated
    trace cannot validate. *)

module Trace = Pindisk_algebra.Trace

type reject = {
  step : int option;
      (** index of the offending step, [None] for a whole-trace fault
          (malformed header, uncovered fault level) *)
  reason : string;
}

val pp_reject : Format.formatter -> reject -> unit

val validate : Trace.t -> (unit, reject) result
(** [validate t] accepts iff every step checks and every fault level
    [pc(m + j, d⁽ʲ⁾)] of the broadcast condition is concluded by some step
    (or appears verbatim among the emitted entries). *)

val validate_all : Trace.t list -> (unit, int * reject) result
(** First failure across a list, tagged with the trace's position. *)
