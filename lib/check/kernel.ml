module Trace = Pindisk_algebra.Trace

type reject = { step : int option; reason : string }

let pp_reject ppf r =
  match r.step with
  | Some i -> Format.fprintf ppf "step %d: %s" i r.reason
  | None -> Format.fprintf ppf "%s" r.reason

(* Every integer a trace may legitimately contain fits well below this;
   anything larger is rejected so the inequality checks below can never
   overflow native arithmetic (products stay under 2^40). *)
let limit = 1 lsl 20

let reject ?step fmt =
  Format.kasprintf (fun reason -> Error { step; reason }) fmt

let wf_cond (c : Trace.cond) = 1 <= c.a && c.a <= c.b && c.b <= limit

(* Scaling satisfied [premise] by [scale] (R1), then dropping count (R2)
   and relaxing the window (R0), forces [count] occurrences into every
   window of [window] slots. The witnessed core of the R1;R2;R0
   composition. *)
let forces ~(premise : Trace.cond) ~scale ~count ~window =
  scale >= 1 && scale <= limit
  && scale * premise.a >= count
  && scale * (premise.b - premise.a) <= window - count

(* Pseudo-task support: which emitted entries a conclusion rests on.
   Conjunction steps add occurrence counts of the two premises, which is
   only sound when their supports are disjoint. *)
let disjoint s1 s2 = not (List.exists (fun x -> List.mem x s2) s1)

let validate (t : Trace.t) =
  let ( let* ) = Result.bind in
  let* () = if t.Trace.file >= 0 then Ok () else reject "negative file id" in
  let* () =
    if t.Trace.m >= 1 && t.Trace.m <= limit then Ok ()
    else reject "m out of range"
  in
  let* () =
    if Array.length t.Trace.d > 0 then Ok () else reject "empty latency vector"
  in
  let* () =
    let bad = ref None in
    Array.iteri
      (fun j dj ->
        if !bad = None && (dj < t.Trace.m + j || dj > limit) then bad := Some j)
      t.Trace.d;
    match !bad with
    | Some j -> reject "latency d^(%d) below m + %d or out of range" j j
    | None -> Ok ()
  in
  let nice = Array.of_list t.Trace.nice in
  let* () =
    if Array.length nice = 0 then reject "empty nice conjunct"
    else if Array.for_all wf_cond nice then Ok ()
    else reject "malformed nice entry"
  in
  let steps = Array.of_list t.Trace.steps in
  (* proved.(k) = (conclusion of step k, its emitted-entry support). *)
  let proved = Array.make (max 1 (Array.length steps)) ({ Trace.a = 1; b = 1 }, []) in
  let resolve ~at src =
    match src with
    | Trace.Emitted k ->
        if k >= 0 && k < Array.length nice then Ok (nice.(k), [ k ])
        else reject ~step:at "reference to nonexistent nice entry %d" k
    | Trace.Derived k ->
        if k >= 0 && k < at then Ok proved.(k)
        else reject ~step:at "out-of-order reference to step %d" k
  in
  let check_step i step =
    let* target, support =
      match step with
      | Trace.Implies { premise; scale; target } ->
          let* p, support = resolve ~at:i premise in
          if not (wf_cond target) then reject ~step:i "malformed target"
          else if forces ~premise:p ~scale ~count:target.Trace.a ~window:target.Trace.b
          then Ok (target, support)
          else
            reject ~step:i "scale %d does not carry %a into %a" scale
              Trace.pp_cond p Trace.pp_cond target
      | Trace.Conjoin { base; guaranteed; scale; alias; target } ->
          let* b, bsup = resolve ~at:i base in
          let* al, asup = resolve ~at:i alias in
          if not (wf_cond target) then reject ~step:i "malformed target"
          else if al.Trace.b <> target.Trace.b then
            reject ~step:i "alias window %d differs from target window %d"
              al.Trace.b target.Trace.b
          else if guaranteed < 0 || guaranteed > limit then
            reject ~step:i "guaranteed count out of range"
          else if
            guaranteed > 0
            && not
                 (forces ~premise:b ~scale ~count:guaranteed
                    ~window:target.Trace.b)
          then
            reject ~step:i "base %a does not force %d into a %d-window"
              Trace.pp_cond b guaranteed target.Trace.b
          else if not (disjoint bsup asup) then
            reject ~step:i "base and alias share a pseudo-task"
          else if guaranteed + al.Trace.a < target.Trace.a then
            reject ~step:i "%d + %d occurrences fall short of %d" guaranteed
              al.Trace.a target.Trace.a
          else Ok (target, bsup @ asup)
      | Trace.Align { base; scale; alias; target } ->
          let* b, bsup = resolve ~at:i base in
          let* al, asup = resolve ~at:i alias in
          if not (wf_cond target) then reject ~step:i "malformed target"
          else if scale < 1 || scale > limit then
            reject ~step:i "scale out of range"
          else if al.Trace.b <> scale * b.Trace.b then
            reject ~step:i "alias window %d is not %d x base window %d"
              al.Trace.b scale b.Trace.b
          else if al.Trace.b < target.Trace.b then
            reject ~step:i "alias window %d shorter than target window %d"
              al.Trace.b target.Trace.b
          else if not (disjoint bsup asup) then
            reject ~step:i "base and alias share a pseudo-task"
          else if
            (scale * b.Trace.a) + al.Trace.a + target.Trace.b - al.Trace.b
            < target.Trace.a
          then
            reject ~step:i
              "%d base + %d alias occurrences leave a %d-window short of %d"
              (scale * b.Trace.a) al.Trace.a target.Trace.b target.Trace.a
          else Ok (target, bsup @ asup)
    in
    proved.(i) <- (target, support);
    Ok ()
  in
  let rec walk i =
    if i >= Array.length steps then Ok ()
    else
      let* () = check_step i steps.(i) in
      walk (i + 1)
  in
  let* () = walk 0 in
  (* Coverage: every fault level must be concluded (or emitted verbatim). *)
  let concluded (c : Trace.cond) =
    Array.exists (fun n -> n = c) nice
    || Array.exists (fun (tc, _) -> tc = c) proved
       && Array.length steps > 0
  in
  let rec cover j =
    if j >= Array.length t.Trace.d then Ok ()
    else
      let want = { Trace.a = t.Trace.m + j; b = t.Trace.d.(j) } in
      if concluded want then cover (j + 1)
      else
        reject "fault level %d: pc(%d,%d) is not established by any step" j
          want.Trace.a want.Trace.b
  in
  cover 0

let validate_all traces =
  let rec go i = function
    | [] -> Ok ()
    | t :: rest -> (
        match validate t with
        | Ok () -> go (i + 1) rest
        | Error r -> Error (i, r))
  in
  go 0 traces
