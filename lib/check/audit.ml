module Q = Pindisk_util.Q
module Trace = Pindisk_algebra.Trace
module Bc = Pindisk_algebra.Bc
module Verify = Pindisk_pinwheel.Verify
module Program = Pindisk.Program
module Designer = Pindisk.Designer
module Generalized = Pindisk.Generalized

type band =
  | Sa_guarantee
  | Chan_chin
  | Guarantee_gap
  | Above_five_sixths
  | Above_one

let band_of_density d =
  if Q.( <= ) d (Q.make 1 2) then Sa_guarantee
  else if Q.( <= ) d (Q.make 7 10) then Chan_chin
  else if Q.( <= ) d (Q.make 5 6) then Guarantee_gap
  else if Q.( <= ) d Q.one then Above_five_sixths
  else Above_one

let band_name = function
  | Sa_guarantee -> "sa-guarantee"
  | Chan_chin -> "chan-chin"
  | Guarantee_gap -> "guarantee-gap"
  | Above_five_sixths -> "above-five-sixths"
  | Above_one -> "above-one"

type level_report = {
  level : int;
  window : int;
  required : int;
  observed : int;
}

type file_report = {
  file : int;
  name : string;
  m : int;
  tolerance : int;
  capacity : int;
  levels : level_report list;
  mds : (Mds.outcome, string) result;
}

type t = {
  kind : string;
  period : int;
  density : Q.t;
  band : band;
  files : file_report list;
  traces : Trace.t list;
  trace_result : (unit, int * Kernel.reject) result;
}

(* Worst-case occurrence count per fault level, straight off the broadcast
   period via the shared prefix-sum primitive. *)
let count_levels sched ~file ~m ~d =
  List.mapi
    (fun level window ->
      {
        level;
        window;
        required = m + level;
        observed =
          Array.fold_left min max_int
            (Verify.window_counts sched ~task:file ~window);
      })
    (Array.to_list d)

let audit_designer ~byte_rate reqs =
  match Designer.plan ~byte_rate reqs with
  | Error e -> Error (Printf.sprintf "design infeasible: %s" e)
  | Ok plan ->
      let sched = Program.schedule plan.Designer.program in
      let files, traces =
        List.map
          (fun (fp : Designer.file_plan) ->
            let s = fp.Designer.spec in
            let d =
              Array.make (s.Pindisk.File_spec.tolerance + 1) fp.Designer.window
            in
            let report =
              {
                file = s.Pindisk.File_spec.id;
                name = s.Pindisk.File_spec.name;
                m = s.Pindisk.File_spec.blocks;
                tolerance = s.Pindisk.File_spec.tolerance;
                capacity = s.Pindisk.File_spec.capacity;
                levels =
                  count_levels sched ~file:s.Pindisk.File_spec.id
                    ~m:s.Pindisk.File_spec.blocks ~d;
                mds =
                  Mds.check s.Pindisk.File_spec.capacity
                    ~m:s.Pindisk.File_spec.blocks;
              }
            in
            let trace =
              Trace.reduction ~file:s.Pindisk.File_spec.id
                ~m:s.Pindisk.File_spec.blocks
                ~tolerance:s.Pindisk.File_spec.tolerance
                ~window:fp.Designer.window
            in
            (report, trace))
          plan.Designer.files
        |> List.split
      in
      let density = plan.Designer.utilization in
      Ok
        {
          kind = "designer";
          period = Program.period plan.Designer.program;
          density;
          band = band_of_density density;
          files;
          traces;
          trace_result = Kernel.validate_all traces;
        }

let audit_generalized specs =
  match Generalized.program_certified specs with
  | None -> Error "the pipeline could not place the nice system"
  | Some (program, traces) ->
      let sched = Program.schedule program in
      let files =
        List.map
          (fun (s : Generalized.spec) ->
            let bc = s.Generalized.bc in
            {
              file = bc.Bc.file;
              name = Printf.sprintf "F%d" bc.Bc.file;
              m = bc.Bc.m;
              tolerance = Bc.faults_tolerated bc;
              capacity = s.Generalized.capacity;
              levels = count_levels sched ~file:bc.Bc.file ~m:bc.Bc.m ~d:bc.Bc.d;
              mds = Mds.check s.Generalized.capacity ~m:bc.Bc.m;
            })
          specs
      in
      (* Density of what the scheduler was actually asked to place: the
         emitted nice conjuncts. *)
      let density = Q.sum (List.map Trace.density traces) in
      Ok
        {
          kind = "generalized";
          period = Program.period program;
          density;
          band = band_of_density density;
          files;
          traces;
          trace_result = Kernel.validate_all traces;
        }

let run = function
  | Spec.Designer { byte_rate; reqs } -> audit_designer ~byte_rate reqs
  | Spec.Generalized specs -> audit_generalized specs

let problems t =
  let level_problems =
    List.concat_map
      (fun f ->
        List.filter_map
          (fun l ->
            if l.observed >= l.required then None
            else
              Some
                (Printf.sprintf
                   "%s: fault level %d needs %d of every %d slots, worst \
                    window has %d"
                   f.name l.level l.required l.window l.observed))
          f.levels)
      t.files
  in
  let mds_problems =
    List.filter_map
      (fun f ->
        match f.mds with
        | Ok (Mds.Exhaustive _ | Mds.Structural) -> None
        | Ok (Mds.Failed rows) ->
            Some
              (Format.asprintf "%s: dispersal is not MDS (%a)" f.name
                 Mds.pp_outcome (Mds.Failed rows))
        | Error e -> Some (Printf.sprintf "%s: MDS check failed: %s" f.name e))
      t.files
  in
  let trace_problems =
    match t.trace_result with
    | Ok () -> []
    | Error (i, r) ->
        [ Format.asprintf "trace %d rejected by the kernel: %a" i
            Kernel.pp_reject r ]
  in
  let density_problems =
    if t.band = Above_one then
      [ Format.asprintf "density %a exceeds one" Q.pp t.density ]
    else []
  in
  level_problems @ mds_problems @ trace_problems @ density_problems

let warnings t =
  if t.band = Guarantee_gap then
    [
      Format.asprintf
        "density %a lies in (7/10, 5/6]: beyond the Chan–Chin guarantee, \
         below the conjectured 5/6 threshold"
        Q.pp t.density;
    ]
  else []

let ok t = problems t = []

let q_to_json (q : Q.t) = Json.Obj [ ("num", Int q.Q.num); ("den", Int q.Q.den) ]

let mds_to_json = function
  | Ok (Mds.Exhaustive k) ->
      Json.Obj [ ("mode", Str "exhaustive"); ("subsets", Int k); ("ok", Bool true) ]
  | Ok Mds.Structural ->
      Json.Obj [ ("mode", Str "structural"); ("ok", Bool true) ]
  | Ok (Mds.Failed rows) ->
      Json.Obj
        [
          ("mode", Str "exhaustive");
          ("ok", Bool false);
          ( "singular_rows",
            List (Array.to_list (Array.map (fun r -> Json.Int r) rows)) );
        ]
  | Error e -> Json.Obj [ ("mode", Str "error"); ("ok", Bool false); ("reason", Str e) ]

let level_to_json l =
  Json.Obj
    [
      ("level", Int l.level);
      ("window", Int l.window);
      ("required", Int l.required);
      ("observed", Int l.observed);
      ("ok", Bool (l.observed >= l.required));
    ]

let file_to_json f =
  Json.Obj
    [
      ("file", Int f.file);
      ("name", Str f.name);
      ("m", Int f.m);
      ("tolerance", Int f.tolerance);
      ("capacity", Int f.capacity);
      ("levels", List (List.map level_to_json f.levels));
      ("mds", mds_to_json f.mds);
    ]

let to_json t =
  Json.Obj
    [
      ("kind", Str t.kind);
      ("ok", Bool (ok t));
      ("period", Int t.period);
      ("density", q_to_json t.density);
      ("band", Str (band_name t.band));
      ("files", List (List.map file_to_json t.files));
      ( "trace_validation",
        match t.trace_result with
        | Ok () ->
            Json.Obj
              [
                ("accepted", Bool true);
                ("traces", Int (List.length t.traces));
                ( "steps",
                  Int
                    (List.fold_left
                       (fun acc tr -> acc + Trace.step_count tr)
                       0 t.traces) );
              ]
        | Error (i, r) ->
            Json.Obj
              [
                ("accepted", Bool false);
                ("trace", Int i);
                ( "step",
                  match r.Kernel.step with Some s -> Int s | None -> Null );
                ("reason", Str r.Kernel.reason);
              ] );
      ("traces", List (List.map Witness.trace_to_json t.traces));
      ("problems", List (List.map (fun p -> Json.Str p) (problems t)));
      ("warnings", List (List.map (fun w -> Json.Str w) (warnings t)));
    ]
