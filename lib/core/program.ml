module Schedule = Pindisk_pinwheel.Schedule
module Scheduler = Pindisk_pinwheel.Scheduler
module Intmath = Pindisk_util.Intmath

type t = {
  schedule : Schedule.t;
  capacities : (int, int) Hashtbl.t;
  (* Per file: occurrence counts in slots [0, k) of one period, k <= P. *)
  prefix : (int, int array) Hashtbl.t;
  (* Per file: block index carried by its first occurrence. *)
  phase : (int, int) Hashtbl.t;
}

let build ~schedule ~capacities ~phases =
  let p = Schedule.period schedule in
  let ids = Schedule.task_ids schedule in
  let cap_tbl = Hashtbl.create 16 in
  List.iter
    (fun (f, n) ->
      if n < 1 then invalid_arg "Program.make: capacity must be >= 1";
      if f < 0 then invalid_arg "Program.make: negative file id";
      Hashtbl.replace cap_tbl f n)
    capacities;
  List.iter
    (fun f ->
      if not (Hashtbl.mem cap_tbl f) then
        invalid_arg (Printf.sprintf "Program.make: file %d has no capacity" f))
    ids;
  let prefix = Hashtbl.create 16 in
  List.iter
    (fun f ->
      let pre = Array.make (p + 1) 0 in
      for s = 0 to p - 1 do
        pre.(s + 1) <- (pre.(s) + if Schedule.task_at schedule s = f then 1 else 0)
      done;
      Hashtbl.replace prefix f pre)
    ids;
  let phase = Hashtbl.create 16 in
  List.iter (fun (f, ph) -> Hashtbl.replace phase f ph) phases;
  { schedule; capacities = cap_tbl; prefix; phase }

let make ~schedule ~capacities = build ~schedule ~capacities ~phases:[]

let schedule t = t.schedule
let period t = Schedule.period t.schedule
let files t = Schedule.task_ids t.schedule

let capacity t f =
  match Hashtbl.find_opt t.capacities f with
  | Some n -> n
  | None -> raise Not_found

let occurrences_per_period t f =
  match Hashtbl.find_opt t.prefix f with
  | Some pre -> pre.(period t)
  | None -> 0

let block_at t slot =
  if slot < 0 then invalid_arg "Program.block_at: negative slot";
  let f = Schedule.task_at t.schedule slot in
  if f = Schedule.idle then None
  else begin
    let p = period t in
    let pre = Hashtbl.find t.prefix f in
    let count = ((slot / p) * pre.(p)) + pre.(slot mod p) in
    let n = Hashtbl.find t.capacities f in
    let ph = match Hashtbl.find_opt t.phase f with Some v -> v | None -> 0 in
    Some (f, (ph + count) mod n)
  end

let data_cycle t =
  let p = period t in
  List.fold_left
    (fun acc f ->
      let occ = occurrences_per_period t f in
      if occ = 0 then acc
      else
        let n = capacity t f in
        Intmath.lcm acc (n / Intmath.gcd n occ))
    1 (files t)
  * p

let delta t f = Schedule.max_gap t.schedule f

let pp ppf t =
  let p = period t in
  for s = 0 to p - 1 do
    if s > 0 then Format.fprintf ppf " ";
    match block_at t s with
    | None -> Format.fprintf ppf "."
    | Some (f, k) -> Format.fprintf ppf "%d:%d" f k
  done

(* ------------------------------------------------------------------ *)
(* Builders                                                            *)
(* ------------------------------------------------------------------ *)

let of_layout slots ~capacities =
  if slots = [] then invalid_arg "Program.of_layout: empty layout";
  let sched =
    Schedule.make
      (Array.of_list
         (List.map (fun (f, _) -> if f < 0 then Schedule.idle else f) slots))
  in
  (* Phase of each file = block index of its first occurrence; then verify
     the whole layout follows the cycling discipline. *)
  let phases = Hashtbl.create 8 in
  let counts = Hashtbl.create 8 in
  let cap f =
    match List.assoc_opt f capacities with
    | Some n -> n
    | None -> invalid_arg (Printf.sprintf "Program.of_layout: file %d has no capacity" f)
  in
  List.iter
    (fun (f, blk) ->
      if f >= 0 then begin
        let k = match Hashtbl.find_opt counts f with Some k -> k | None -> 0 in
        let ph =
          match Hashtbl.find_opt phases f with
          | Some ph -> ph
          | None ->
              Hashtbl.replace phases f blk;
              blk
        in
        if (ph + k) mod cap f <> blk then
          invalid_arg
            (Printf.sprintf
               "Program.of_layout: file %d occurrence %d carries block %d, \
                expected %d (capacity %d)"
               f k blk ((ph + k) mod cap f) (cap f));
        Hashtbl.replace counts f (k + 1)
      end)
    slots;
  build ~schedule:sched ~capacities
    ~phases:(Hashtbl.fold (fun f ph acc -> (f, ph) :: acc) phases [])

(* Earliest-virtual-deadline interleaving: file i's k-th slot has virtual
   deadline (k+1)/m_i; serve the smallest deadline first. Spreads each
   file's slots evenly through the period, which is what keeps Lemma 2's
   Delta small. *)
let evd_layout files =
  List.iter
    (fun (f, m) ->
      if f < 0 then invalid_arg "Program.flat: negative file id";
      if m < 1 then invalid_arg "Program.flat: file size must be >= 1")
    files;
  let ids = List.map fst files in
  if List.length (List.sort_uniq compare ids) <> List.length ids then
    invalid_arg "Program.flat: duplicate file ids";
  let total = Intmath.sum (List.map snd files) in
  let emitted = Hashtbl.create 8 in
  List.iter (fun (f, _) -> Hashtbl.replace emitted f 0) files;
  Array.init total (fun _ ->
      let best = ref None in
      List.iter
        (fun (f, m) ->
          let k = Hashtbl.find emitted f in
          if k < m then
            (* Compare (k+1)/m as fractions without floats. *)
            let better =
              match !best with
              | None -> true
              | Some (_, bk, bm) -> (k + 1) * bm < (bk + 1) * m
            in
            if better then best := Some (f, k, m))
        files;
      match !best with
      | Some (f, k, _) ->
          Hashtbl.replace emitted f (k + 1);
          (f, k)
      | None -> assert false (* total slots = total demand *))

let flat files =
  let layout = evd_layout files in
  of_layout (Array.to_list layout) ~capacities:files

let aida_flat files =
  List.iter
    (fun (_, m, n) ->
      if n < m then invalid_arg "Program.aida_flat: capacity below size")
    files;
  let layout = evd_layout (List.map (fun (f, m, _) -> (f, m)) files) in
  of_layout (Array.to_list layout)
    ~capacities:(List.map (fun (f, _, n) -> (f, n)) files)

let pinwheel ~bandwidth files =
  match
    List.map (fun f -> File_spec.to_task f ~bandwidth) files
  with
  | exception Invalid_argument _ -> None
  | sys -> (
      match Scheduler.schedule sys with
      | None -> None
      | Some sched ->
          Some
            (make ~schedule:sched
               ~capacities:
                 (List.map (fun f -> (f.File_spec.id, f.File_spec.capacity)) files)))

let auto files =
  match Bandwidth.minimum files with
  | None -> None
  | Some (b, sched) ->
      Some
        ( b,
          make ~schedule:sched
            ~capacities:
              (List.map (fun f -> (f.File_spec.id, f.File_spec.capacity)) files) )
