module Q = Pindisk_util.Q
module Task = Pindisk_pinwheel.Task
module Schedule = Pindisk_pinwheel.Schedule
module Scheduler = Pindisk_pinwheel.Scheduler

let demand files =
  Q.sum
    (List.map
       (fun f ->
         Q.make (f.File_spec.blocks + f.File_spec.tolerance) f.File_spec.latency)
       files)

let required files =
  if files = [] then invalid_arg "Bandwidth.required: no files";
  Q.ceil (Q.mul (Q.make 10 7) (demand files))

let tasks ~bandwidth files =
  List.map (fun f -> File_spec.to_task f ~bandwidth) files

let schedulable ?algorithm ~bandwidth files =
  match tasks ~bandwidth files with
  | exception Invalid_argument _ -> false
  | sys -> Scheduler.schedulable ?algorithm sys

let minimum ?algorithm files =
  if files = [] then invalid_arg "Bandwidth.minimum: no files";
  let lo = max 1 (Q.ceil (demand files)) in
  let hi = 2 * required files in
  let rec scan b =
    if b > hi then None
    else
      match tasks ~bandwidth:b files with
      | exception Invalid_argument _ -> scan (b + 1)
      | sys -> (
          match Scheduler.schedule ?algorithm sys with
          | Some sched -> Some (b, sched)
          | None -> scan (b + 1))
  in
  scan lo

let overhead ~achieved files =
  let d = Q.to_float (demand files) in
  if d <= 0.0 then invalid_arg "Bandwidth.overhead: zero demand";
  float_of_int achieved /. d
