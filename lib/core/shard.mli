(** Multi-channel broadcast sharding: one design, K parallel programs.

    {!Pindisk_pinwheel.Channels} partitions raw pinwheel tasks; this
    module is the file-level layer above it. Given broadcast files and K
    channels of equal [bandwidth], it assigns every file's dispersed
    pieces to channels, plans each channel with the single-channel
    pipeline, and emits K independent broadcast {!Program}s plus the
    placement map — the slot coordinate of the sharded server is
    [(channel, slot)], and {!block_at} resolves it to a {e global}
    dispersed-piece index.

    {b Piece striping.} With [stripe = 1] (the default) every file lives
    on exactly one channel, as in the single-channel paper model. With
    [stripe = s > 1] a file's [N_i] dispersed pieces are dealt
    round-robin over [s] {e distinct} channels (piece [k] to stripe
    member [k mod s]); the member holding [n_j] pieces carries the
    pinwheel sub-task [(i, n_j, B·T_i)], so any latency window still airs
    all [N_i] distinct pieces across the stripe set, and the file's
    guarantee follows from the per-channel guarantees exactly as in the
    single-channel proof. Striping is what makes a whole-channel outage
    {e degrade} a file instead of destroying it: losing one channel
    removes at most [max_j n_j] pieces, so reconstruction survives
    whenever [N_i - max_j n_j >= m_i] ({!outage_tolerant}) — the
    Goemans–Lynch–Saias motivation for placing IDA pieces across
    channels.

    {b Placement.} Files are packed in decreasing density by LPT onto the
    least-loaded channels (stripe members onto distinct channels, larger
    shares to lighter channels), each placement guarded by the shard's
    {!Pindisk_pinwheel.Density} pre-check; files no channel set can take,
    and files a shard's scheduler subsequently rejects, are shed — a
    feasible design sheds nothing.

    {b K = 1, stripe = 1 is the identity}: the design is exactly
    [Program.pinwheel ~bandwidth files] — same task system, same
    scheduler call, same program bytes. The test suite pins this. *)

module P = Pindisk_pinwheel

type placement = {
  file : int;
  channel : int;
  pieces : int array;
      (** ascending global piece indices this channel airs; the channel's
          local block index [i] cycles [pieces.(i)] *)
}

type channel = {
  index : int;
  tasks : P.Task.system;  (** per-channel sub-tasks, original file order *)
  density : Pindisk_util.Q.t;
  plan : P.Plan.t;
  program : Program.t;  (** capacities are the local share sizes *)
}

type t = {
  channels : channel array;  (** length K, index [c] is channel [c] *)
  placements : placement list;  (** ascending by (file, channel) *)
  specs : File_spec.t list;  (** admitted files, original order *)
  shed : File_spec.t list;  (** files no channel could serve *)
  bandwidth : int;  (** per-channel, blocks/sec *)
  stripe : int;
}

val design :
  ?stripe:int ->
  ?algorithm:P.Scheduler.algorithm ->
  channels:int ->
  bandwidth:int ->
  File_spec.t list ->
  (t, string) result
(** Shard the files over [channels] channels of [bandwidth] blocks/sec
    each, striping each file over [min stripe channels] (further capped
    by its capacity) channels. [Error] only on structurally bad input
    (no files, duplicate ids); an unschedulable file is shed, not an
    error. Raises [Invalid_argument] if [channels < 1] or [stripe < 1]. *)

val block_at : t -> channel:int -> int -> (int * int) option
(** [(file, global piece index)] aired by a channel at a slot, [None]
    when idle. The global index is what a multi-tuner client collects:
    distinct across channels by the round-robin dealing. *)

val placements_of : t -> int -> placement list
(** A file's placements, ascending by channel; [[]] for shed/unknown. *)

val channels_of : t -> int -> int list
(** Channels airing a file, by decreasing share size (ties: lower
    channel first) — the order a client with fewer tuners than stripe
    members should prefer. *)

val outage_tolerant : t -> int -> bool
(** Whether the file reconstructs ([>= m] pieces still on air) after the
    outage of any single channel. Single-channel placements are never
    outage tolerant. *)

val aggregate_density : t -> Pindisk_util.Q.t
(** Sum of per-channel densities — the served broadcast demand; scales
    toward [K ·] the single-channel budget as K grows. *)

val pp : Format.formatter -> t -> unit
(** One line per channel (density, files) plus shed files. *)
