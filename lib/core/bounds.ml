module Q = Pindisk_util.Q

let lemma1 ~period ~errors =
  if period < 1 || errors < 0 then invalid_arg "Bounds.lemma1: bad arguments";
  period * errors

let lemma2 ~delta ~errors =
  if delta < 1 || errors < 0 then invalid_arg "Bounds.lemma2: bad arguments";
  delta * errors

let speedup ~period ~delta =
  if period < 1 || delta < 1 then invalid_arg "Bounds.speedup: bad arguments";
  Q.make period delta

let program_speedup prog ~file =
  match Program.delta prog file with
  | None -> None
  | Some d -> Some (speedup ~period:(Program.period prog) ~delta:d)
