module Q = Pindisk_util.Q
module Intmath = Pindisk_util.Intmath
module Schedule = Pindisk_pinwheel.Schedule

type requirement = {
  id : int;
  name : string;
  bytes : int;
  latency_s : int;
  tolerance : int;
}

let requirement ?name ?(tolerance = 0) ~id ~bytes ~latency_s () =
  if id < 0 then invalid_arg "Designer.requirement: negative id";
  if bytes < 1 then invalid_arg "Designer.requirement: bytes must be >= 1";
  if latency_s < 1 then invalid_arg "Designer.requirement: latency must be >= 1";
  if tolerance < 0 then invalid_arg "Designer.requirement: negative tolerance";
  let name = match name with Some n -> n | None -> Printf.sprintf "F%d" id in
  { id; name; bytes; latency_s; tolerance }

type file_plan = {
  spec : File_spec.t;
  window : int;
  slots_per_period : int;
  delta : int;
}

type t = {
  block_size : int;
  bandwidth : int;
  slot_rate : int;
  program : Program.t;
  files : file_plan list;
  utilization : Q.t;
}

let default_candidates byte_rate =
  let rec go b acc = if b > byte_rate then acc else go (2 * b) (b :: acc) in
  go 1 []

let specs_for ~block reqs =
  (* None with a reason when the block size is structurally infeasible. *)
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | r :: rest ->
        let m = Intmath.ceil_div r.bytes block in
        if m + r.tolerance > 255 then
          Error
            (Printf.sprintf
               "%s needs %d+%d dispersed blocks at %d-byte blocks (IDA caps \
                at 255)"
               r.name m r.tolerance block)
        else
          go
            (File_spec.make ~name:r.name ~tolerance:r.tolerance ~id:r.id
               ~blocks:m ~latency:r.latency_s ()
            :: acc)
            rest
  in
  go [] reqs

let plan ?candidates ~byte_rate reqs =
  if byte_rate < 1 then invalid_arg "Designer.plan: byte_rate must be >= 1";
  if reqs = [] then invalid_arg "Designer.plan: no requirements";
  let ids = List.map (fun r -> r.id) reqs in
  if List.length (List.sort_uniq compare ids) <> List.length ids then
    invalid_arg "Designer.plan: duplicate ids";
  let candidates =
    match candidates with
    | Some c -> List.sort (fun a b -> compare b a) c
    | None -> default_candidates byte_rate
  in
  let last_reason = ref "no candidate block size was given" in
  let rec scan = function
    | [] -> Error !last_reason
    | block :: rest -> (
        let slot_rate = byte_rate / block in
        if slot_rate < 1 then begin
          last_reason :=
            Printf.sprintf "%d-byte blocks exceed the %d B/s channel" block
              byte_rate;
          scan rest
        end
        else
          match specs_for ~block reqs with
          | Error reason ->
              last_reason := reason;
              scan rest
          | Ok specs -> (
              match Program.pinwheel ~bandwidth:slot_rate specs with
              | None ->
                  last_reason :=
                    Printf.sprintf
                      "unschedulable at %d-byte blocks (demand %s of %d \
                       slots/sec)"
                      block
                      (Q.to_string (Bandwidth.demand specs))
                      slot_rate;
                  scan rest
              | Some program ->
                  let files =
                    List.map
                      (fun spec ->
                        {
                          spec;
                          window = File_spec.window spec ~bandwidth:slot_rate;
                          slots_per_period =
                            Program.occurrences_per_period program
                              spec.File_spec.id;
                          delta =
                            (match Program.delta program spec.File_spec.id with
                            | Some d -> d
                            | None -> 0);
                        })
                      specs
                  in
                  Ok
                    {
                      block_size = block;
                      bandwidth = slot_rate;
                      slot_rate;
                      program;
                      files;
                      utilization = Schedule.utilization (Program.schedule program);
                    }))
  in
  scan candidates

let pp ppf t =
  Format.fprintf ppf
    "broadcast-disk plan: %d-byte blocks, %d blocks/sec, period %d slots, \
     data cycle %d, channel %s busy@."
    t.block_size t.bandwidth
    (Program.period t.program)
    (Program.data_cycle t.program)
    (Q.to_string t.utilization);
  List.iter
    (fun fp ->
      Format.fprintf ppf
        "  %-12s m=%-3d r=%d N=%-3d window=%-4d slots/period=%-3d Delta=%d@."
        fp.spec.File_spec.name fp.spec.File_spec.blocks
        fp.spec.File_spec.tolerance fp.spec.File_spec.capacity fp.window
        fp.slots_per_period fp.delta)
    t.files
