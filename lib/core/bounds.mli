(** The paper's closed-form delay bounds (Lemmas 1 and 2).

    Lemma 1: in a flat program of broadcast period [τ], [r] block
    transmission errors delay retrieval by at most [r·τ].

    Lemma 2: in an AIDA-based flat program where consecutive blocks of a
    dispersed file are never more than [Δ] slots apart, [r] errors delay
    retrieval by at most [r·Δ].

    The ratio [τ/Δ] is the error-recovery speedup AIDA buys (the paper's
    example: 200 blocks in 10 files of 20 blocks gives [Δ = 10] and a
    20-fold speedup). *)

val lemma1 : period:int -> errors:int -> int
(** [r·τ]. *)

val lemma2 : delta:int -> errors:int -> int
(** [r·Δ]. *)

val speedup : period:int -> delta:int -> Pindisk_util.Q.t
(** [τ/Δ]. *)

val program_speedup : Program.t -> file:int -> Pindisk_util.Q.t option
(** The speedup Lemma 2 promises for one file of a program: its period
    over its {!Program.delta}. [None] if the file never appears. *)
