(** The end-to-end design assistant: from physical requirements to a
    provisioned broadcast disk, in one call.

    Input: the channel's {e byte} rate and, per file, the payload size in
    bytes, the latency budget in seconds, and the block-loss count to
    survive per retrieval. Output: a complete plan — the chosen block
    size (largest feasible, per Section 5), the bandwidth in blocks/sec,
    the broadcast program, and a per-file report of the guarantees the
    program actually delivers (windows, spacing, per-fault worst cases).

    This is the API a deployment would call; everything else in the
    library is reachable from the plan for finer control. *)

type requirement = {
  id : int;
  name : string;
  bytes : int;
  latency_s : int;
  tolerance : int;
}

val requirement :
  ?name:string -> ?tolerance:int -> id:int -> bytes:int -> latency_s:int ->
  unit -> requirement

type file_plan = {
  spec : File_spec.t;  (** the derived broadcast file *)
  window : int;  (** its pinwheel window [B·T], in slots *)
  slots_per_period : int;
  delta : int;  (** worst spacing between its consecutive blocks *)
}

type t = {
  block_size : int;  (** bytes per block *)
  bandwidth : int;  (** blocks per second *)
  slot_rate : int;  (** slots per second the channel carries *)
  program : Program.t;
  files : file_plan list;
  utilization : Pindisk_util.Q.t;  (** busy fraction of the channel *)
}

val plan :
  ?candidates:int list -> byte_rate:int -> requirement list ->
  (t, string) result
(** [plan ~byte_rate reqs] chooses the largest feasible block size among
    [candidates] (default: powers of two), derives each file's block
    count and capacity, and builds the program. [Error] explains why no
    candidate worked (with the limiting requirement when identifiable). *)

val pp : Format.formatter -> t -> unit
(** A human-readable deployment report. *)
