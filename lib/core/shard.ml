module P = Pindisk_pinwheel
module Q = Pindisk_util.Q

type placement = { file : int; channel : int; pieces : int array }

type channel = {
  index : int;
  tasks : P.Task.system;
  density : Q.t;
  plan : P.Plan.t;
  program : Program.t;
}

type t = {
  channels : channel array;
  placements : placement list;
  specs : File_spec.t list;
  shed : File_spec.t list;
  bandwidth : int;
  stripe : int;
}

(* Round-robin dealing of [n] global piece indices over [s] stripe
   members: member [j] airs the pieces [{k | k mod s = j}]. Member 0
   holds the largest share. *)
let share ~s ~n j = Array.init ((n - j + s - 1) / s) (fun i -> j + (i * s))

let feasible tasks task =
  match P.Density.classify (task :: tasks) with
  | P.Density.Infeasible _ -> false
  | P.Density.Guaranteed _ | P.Density.Unknown -> true

(* Greedy stripe placement for one file: shares in decreasing size onto
   the lightest distinct feasible channels. Returns the (channel, share
   ordinal) choices, or None when some share fits nowhere. *)
let place_file ~channels ~load ~members ~window ~file ~shares =
  let chosen = ref [] in
  let ok =
    List.for_all
      (fun (j, (pieces : int array)) ->
        let n_j = Array.length pieces in
        let candidates =
          List.init channels Fun.id
          |> List.filter (fun c ->
                 not (List.mem_assoc c !chosen))
          |> List.stable_sort (fun a b -> Q.compare load.(a) load.(b))
        in
        let task = P.Task.make ~id:file ~a:n_j ~b:window in
        match
          List.find_opt
            (fun c -> n_j <= window && feasible members.(c) task)
            candidates
        with
        | Some c ->
            chosen := (c, j) :: !chosen;
            true
        | None -> false)
      (List.mapi (fun j p -> (j, p)) shares)
  in
  if ok then Some (List.rev !chosen) else None

let build_channel ~index ~tasks ~plan ~shares_of =
  let schedule = P.Plan.to_schedule plan in
  let capacities =
    List.map
      (fun (tk : P.Task.t) -> (tk.P.Task.id, Array.length (shares_of tk.P.Task.id)))
      tasks
  in
  {
    index;
    tasks;
    density = P.Task.system_density tasks;
    plan;
    program = Program.make ~schedule ~capacities;
  }

let empty_channel index =
  let plan = P.Plan.progressions [] in
  {
    index;
    tasks = [];
    density = Q.zero;
    plan;
    program = Program.make ~schedule:(P.Plan.to_schedule plan) ~capacities:[];
  }

(* The single-channel identity: exactly the Program.pinwheel pipeline
   (task (i, m+r, B·T), full capacity cycled on one channel). *)
let single ?algorithm ~bandwidth specs =
  match List.map (fun f -> File_spec.to_task f ~bandwidth) specs with
  | exception Invalid_argument _ -> None
  | sys -> (
      match P.Scheduler.plan ?algorithm sys with
      | None -> None
      | Some plan ->
          let program =
            Program.make
              ~schedule:(P.Plan.to_schedule plan)
              ~capacities:
                (List.map
                   (fun f -> (f.File_spec.id, f.File_spec.capacity))
                   specs)
          in
          Some
            {
              channels =
                [|
                  {
                    index = 0;
                    tasks = sys;
                    density = P.Task.system_density sys;
                    plan;
                    program;
                  };
                |];
              placements =
                List.map
                  (fun f ->
                    {
                      file = f.File_spec.id;
                      channel = 0;
                      pieces =
                        Array.init f.File_spec.capacity Fun.id;
                    })
                  specs;
              specs;
              shed = [];
              bandwidth;
              stripe = 1;
            })

let design ?(stripe = 1) ?algorithm ~channels ~bandwidth specs =
  if channels < 1 then invalid_arg "Shard.design: channels must be >= 1";
  if stripe < 1 then invalid_arg "Shard.design: stripe must be >= 1";
  let ids = List.map (fun f -> f.File_spec.id) specs in
  if specs = [] then Error "Shard.design: no files"
  else if List.length (List.sort_uniq compare ids) <> List.length ids then
    Error "Shard.design: duplicate file ids"
  else
    match
      if channels = 1 && stripe = 1 then single ?algorithm ~bandwidth specs
      else None
    with
    | Some t -> Ok t
    | None ->
  (* Not schedulable as a plain single channel (or K > 1): the general
     packing path, which sheds files instead of failing. *)
  begin
    let load = Array.make channels Q.zero in
    let members : P.Task.t list array = Array.make channels [] in
    (* file -> (channel * stripe ordinal) list, insertion order. *)
    let placed : (int, (int * int) list) Hashtbl.t = Hashtbl.create 16 in
    let spec_of = Hashtbl.create 16 in
    List.iter (fun f -> Hashtbl.replace spec_of f.File_spec.id f) specs;
    let by_density =
      List.stable_sort
        (fun a b ->
          Q.compare
            (Q.make b.File_spec.capacity (File_spec.window b ~bandwidth))
            (Q.make a.File_spec.capacity (File_spec.window a ~bandwidth)))
        specs
    in
    List.iter
      (fun f ->
        let window = File_spec.window f ~bandwidth in
        let n = f.File_spec.capacity in
        if window >= 1 then begin
          let s = min (min stripe channels) n in
          let shares = List.init s (share ~s ~n) in
          match
            place_file ~channels ~load ~members ~window ~file:f.File_spec.id
              ~shares
          with
          | Some choices ->
              List.iter
                (fun (c, j) ->
                  let n_j = Array.length (List.nth shares j) in
                  load.(c) <- Q.add load.(c) (Q.make n_j window);
                  members.(c) <-
                    P.Task.make ~id:f.File_spec.id ~a:n_j ~b:window
                    :: members.(c))
                choices;
              Hashtbl.replace placed f.File_spec.id choices
          | None -> ()
        end)
      by_density;
    (* Plan every channel; a scheduler failure sheds the failing
       channel's densest file everywhere and the loop re-plans. *)
    let channel_tasks c =
      List.filter_map
        (fun f ->
          match Hashtbl.find_opt placed f.File_spec.id with
          | None -> None
          | Some choices ->
              List.assoc_opt c
                (List.map (fun (ch, j) -> (ch, j)) choices)
              |> Option.map (fun j ->
                     let n = f.File_spec.capacity in
                     let s = List.length choices in
                     P.Task.make ~id:f.File_spec.id
                       ~a:(Array.length (share ~s ~n j))
                       ~b:(File_spec.window f ~bandwidth)))
        specs
    in
    let plans = Array.make channels None in
    let settled = ref false in
    while not !settled do
      settled := true;
      (try
         for c = 0 to channels - 1 do
           let tasks = channel_tasks c in
           if tasks = [] then plans.(c) <- Some (P.Plan.progressions [])
           else
             match P.Scheduler.plan ?algorithm tasks with
             | Some p -> plans.(c) <- Some p
             | None ->
                 let worst =
                   List.fold_left
                     (fun (acc : P.Task.t) (t : P.Task.t) ->
                       let cq =
                         Q.compare (P.Task.density t) (P.Task.density acc)
                       in
                       if cq > 0 || (cq = 0 && t.P.Task.id > acc.P.Task.id)
                       then t
                       else acc)
                     (List.hd tasks) (List.tl tasks)
                 in
                 Hashtbl.remove placed worst.P.Task.id;
                 settled := false;
                 raise Exit
         done
       with Exit -> ())
    done;
    let shares_of file =
      match Hashtbl.find_opt placed file with
      | None -> fun _ -> [||]
      | Some choices ->
          let s = List.length choices in
          let n = (Hashtbl.find spec_of file).File_spec.capacity in
          fun c ->
            (match List.assoc_opt c choices with
            | Some j -> share ~s ~n j
            | None -> [||])
    in
    let channel_arr =
      Array.init channels (fun c ->
          let tasks = channel_tasks c in
          if tasks = [] then empty_channel c
          else
            build_channel ~index:c ~tasks
              ~plan:(Option.get plans.(c))
              ~shares_of:(fun file -> shares_of file c))
    in
    let placements =
      List.concat_map
        (fun f ->
          match Hashtbl.find_opt placed f.File_spec.id with
          | None -> []
          | Some choices ->
              List.map
                (fun (c, _) ->
                  {
                    file = f.File_spec.id;
                    channel = c;
                    pieces = shares_of f.File_spec.id c;
                  })
                (List.sort compare choices))
        specs
      |> List.sort (fun a b -> compare (a.file, a.channel) (b.file, b.channel))
    in
    Ok
      {
        channels = channel_arr;
        placements;
        specs =
          List.filter (fun f -> Hashtbl.mem placed f.File_spec.id) specs;
        shed =
          List.filter
            (fun f -> not (Hashtbl.mem placed f.File_spec.id))
            specs;
        bandwidth;
        stripe;
      }
  end

let block_at t ~channel slot =
  if channel < 0 || channel >= Array.length t.channels then
    invalid_arg "Shard.block_at: no such channel";
  let ch = t.channels.(channel) in
  match Program.block_at ch.program slot with
  | None -> None
  | Some (file, local) ->
      let p =
        List.find
          (fun p -> p.file = file && p.channel = channel)
          t.placements
      in
      Some (file, p.pieces.(local))

let placements_of t file = List.filter (fun p -> p.file = file) t.placements

let channels_of t file =
  placements_of t file
  |> List.stable_sort (fun a b ->
         compare (Array.length b.pieces) (Array.length a.pieces))
  |> List.map (fun p -> p.channel)

let outage_tolerant t file =
  match placements_of t file with
  | [] | [ _ ] -> false
  | ps ->
      let spec = List.find (fun f -> f.File_spec.id = file) t.specs in
      let total =
        List.fold_left (fun acc p -> acc + Array.length p.pieces) 0 ps
      in
      let worst =
        List.fold_left (fun acc p -> max acc (Array.length p.pieces)) 0 ps
      in
      total - worst >= spec.File_spec.blocks

let aggregate_density t =
  Array.fold_left (fun acc c -> Q.add acc c.density) Q.zero t.channels

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  Array.iter
    (fun c ->
      Format.fprintf ppf "channel %d: density %a, %d file(s)%s@," c.index Q.pp
        c.density (List.length c.tasks)
        (if c.tasks = [] then ""
         else
           ": "
           ^ String.concat ", "
               (List.map
                  (fun (tk : P.Task.t) ->
                    Printf.sprintf "%d(%d/%d)" tk.P.Task.id tk.P.Task.a
                      tk.P.Task.b)
                  c.tasks)))
    t.channels;
  Format.fprintf ppf "shed: %d file(s)%s@]" (List.length t.shed)
    (if t.shed = [] then ""
     else
       ": "
       ^ String.concat ", "
           (List.map (fun f -> f.File_spec.name) t.shed))
