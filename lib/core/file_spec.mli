(** Broadcast file specifications (Section 3.2 of the paper).

    A broadcast file [F_i] is specified by a size [m_i] in blocks and a
    latency [T_i] in seconds: every client must be able to reconstruct the
    file from the broadcast within [T_i] seconds of tuning in. With
    fault-tolerance [r_i], reconstruction must succeed even when up to [r_i]
    block receptions fail per retrieval. Files are AIDA-dispersed to
    [capacity >= m_i + r_i] distinct blocks, of which any [m_i]
    reconstruct. *)

type t = private {
  id : int;
  name : string;
  blocks : int;  (** [m_i]: source blocks, enough to reconstruct *)
  latency : int;  (** [T_i]: seconds allowed for retrieval *)
  tolerance : int;  (** [r_i]: block losses to survive per retrieval *)
  capacity : int;  (** [N_i]: distinct dispersed blocks cycled on air *)
}

val make :
  ?name:string -> ?tolerance:int -> ?capacity:int -> id:int -> blocks:int ->
  latency:int -> unit -> t
(** [tolerance] defaults to 0, [capacity] to [blocks + tolerance], [name]
    to ["F<id>"]. Raises [Invalid_argument] unless [id >= 0],
    [1 <= blocks], [latency >= 1], [tolerance >= 0] and
    [blocks + tolerance <= capacity <= 255] (the IDA limit). *)

val window : t -> bandwidth:int -> int
(** The pinwheel window [B·T_i] in slots: at [bandwidth] blocks/sec, the
    latency budget spans that many block slots. *)

val to_task : t -> bandwidth:int -> Pindisk_pinwheel.Task.t
(** The paper's reduction: [F_i] becomes the pinwheel task
    [(i, m_i + r_i, B·T_i)]. Raises [Invalid_argument] when the window is
    too small to fit [m_i + r_i] blocks (bandwidth below the trivial
    minimum for this file). *)

val pp : Format.formatter -> t -> unit
