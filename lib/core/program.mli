(** Broadcast programs: what the server actually transmits, slot by slot.

    A broadcast program is an infinite function from time slots to blocks.
    It factors into two cyclic layers (Section 2.3 and Figure 6 of the
    paper):

    - the {e broadcast period}: a cyclic {!Pindisk_pinwheel.Schedule.t}
      assigning each slot a file (or idle) — enough slots per period for
      every file to be reconstructed;
    - the {e program data cycle}: the [k]-th transmission of file [i]
      carries dispersed block [k mod N_i], so consecutive transmissions of
      a file carry {e distinct} blocks, cycling through all [N_i] on-air
      blocks. The data cycle is the period after which slot {e contents}
      (not just file labels) repeat.

    With [N_i = m_i] and no dispersal this degenerates to the flat program
    of Figure 5 (the same physical block returns only once per data
    cycle); with IDA it is the AIDA-based program of Figure 6. *)

module Schedule = Pindisk_pinwheel.Schedule

type t

val make : schedule:Schedule.t -> capacities:(int * int) list -> t
(** [make ~schedule ~capacities] pairs a slot-to-file schedule with each
    file's on-air block count [N_i >= 1]. Every file appearing in the
    schedule must have a capacity. *)

val schedule : t -> Schedule.t
val period : t -> int
(** The broadcast period [τ]. *)

val files : t -> int list
val capacity : t -> int -> int
(** Raises [Not_found] for a file not in the program. *)

val block_at : t -> int -> (int * int) option
(** [block_at p slot] is [Some (file, block_index)] for a busy slot — the
    self-identifying pair broadcast there — or [None] for an idle slot.
    Valid for every [slot >= 0]; contents repeat with {!data_cycle}. *)

val data_cycle : t -> int
(** The program data cycle: the least multiple [L] of the period such that
    [block_at] is [L]-periodic. Figure 6's program has period 8 and data
    cycle 16. *)

val delta : t -> int -> int option
(** [delta p i] is [Δ_i], the maximum spacing between consecutive
    transmissions of file [i] (Lemma 2's recovery bound is [r·Δ]); [None]
    if the file never appears. *)

val occurrences_per_period : t -> int -> int

val pp : Format.formatter -> t -> unit

(** {1 Builders} *)

val of_layout : (int * int) list -> capacities:(int * int) list -> t
(** [of_layout slots ~capacities] builds a program from an explicit one-
    period layout given as [(file, block_index)] pairs — e.g. the paper's
    Figure 5/6 toy programs verbatim. The block indices must follow the
    cycling discipline ([k]-th occurrence of file [i] carries block
    [k mod N_i] for some fixed per-file phase); this is checked, because
    {!block_at} recomputes indices arithmetically. Use [(-1, 0)] for idle
    slots. *)

val flat : (int * int) list -> t
(** [flat files] is the non-IDA flat program of Figure 5 for [(id, m)]
    pairs: a broadcast period of [Σ m_i] slots, each file granted [m_i]
    slots spread evenly (earliest-deadline interleaving), capacities
    [N_i = m_i] (every period repeats the same [m_i] physical blocks). *)

val aida_flat : (int * int * int) list -> t
(** [aida_flat files] is the AIDA-based flat program of Figure 6 for
    [(id, m, n)] triples: the same [Σ m_i]-slot layout as {!flat} but with
    capacities [N_i = n >= m], so consecutive periods transmit different
    dispersed blocks. *)

val pinwheel : bandwidth:int -> File_spec.t list -> t option
(** The paper's headline construction (Section 3.2): files become the
    pinwheel system [{(i, m_i + r_i, B·T_i)}]; the resulting schedule is
    the broadcast period, and the AIDA capacities [N_i] drive the block
    cycling. [None] when the scheduler fails at this bandwidth. *)

val auto : File_spec.t list -> (int * t) option
(** {!pinwheel} at the smallest bandwidth {!Bandwidth.minimum} finds,
    returning the bandwidth too. *)
