module Task = Pindisk_pinwheel.Task

type t = {
  id : int;
  name : string;
  blocks : int;
  latency : int;
  tolerance : int;
  capacity : int;
}

let make ?name ?(tolerance = 0) ?capacity ~id ~blocks ~latency () =
  if id < 0 then invalid_arg "File_spec.make: negative id";
  if blocks < 1 then invalid_arg "File_spec.make: blocks must be >= 1";
  if latency < 1 then invalid_arg "File_spec.make: latency must be >= 1";
  if tolerance < 0 then invalid_arg "File_spec.make: negative tolerance";
  let capacity =
    match capacity with Some c -> c | None -> blocks + tolerance
  in
  if capacity < blocks + tolerance then
    invalid_arg "File_spec.make: capacity below blocks + tolerance";
  if capacity > 255 then
    invalid_arg "File_spec.make: capacity exceeds the 255-block IDA limit";
  let name = match name with Some n -> n | None -> Printf.sprintf "F%d" id in
  { id; name; blocks; latency; tolerance; capacity }

let window t ~bandwidth =
  if bandwidth < 1 then invalid_arg "File_spec.window: bandwidth must be >= 1";
  bandwidth * t.latency

let to_task t ~bandwidth =
  let b = window t ~bandwidth in
  let a = t.blocks + t.tolerance in
  if a > b then
    invalid_arg
      (Printf.sprintf
         "File_spec.to_task: %s needs %d blocks in a %d-slot window; raise \
          the bandwidth"
         t.name a b);
  Task.make ~id:t.id ~a ~b

let pp ppf t =
  Format.fprintf ppf "%s(id=%d, m=%d, T=%ds, r=%d, N=%d)" t.name t.id t.blocks
    t.latency t.tolerance t.capacity
