module Intmath = Pindisk_util.Intmath
module Schedule = Pindisk_pinwheel.Schedule

type disk = { frequency : int; files : (int * int) list }

let program disks =
  if disks = [] then invalid_arg "Multidisk.program: no disks";
  List.iter
    (fun d ->
      if d.frequency < 1 then invalid_arg "Multidisk.program: frequency must be >= 1";
      if d.files = [] then invalid_arg "Multidisk.program: empty disk";
      List.iter
        (fun (f, m) ->
          if f < 0 || m < 1 then invalid_arg "Multidisk.program: bad file")
        d.files)
    disks;
  let ids = List.concat_map (fun d -> List.map fst d.files) disks in
  if List.length (List.sort_uniq compare ids) <> List.length ids then
    invalid_arg "Multidisk.program: duplicate file ids";
  let max_freq = Intmath.max_list (List.map (fun d -> d.frequency) disks) in
  List.iter
    (fun d ->
      if max_freq mod d.frequency <> 0 then
        invalid_arg
          (Printf.sprintf
             "Multidisk.program: frequency %d does not divide the maximum %d"
             d.frequency max_freq))
    disks;
  (* Per disk: the block sequence, split into (max_freq / frequency) equal
     chunks (idle-padded), replayed chunk by chunk across minor cycles. *)
  let chunked =
    List.map
      (fun d ->
        let seq =
          List.concat_map
            (fun (f, m) -> List.init m (fun k -> (f, k)))
            d.files
        in
        let num_chunks = max_freq / d.frequency in
        let len = List.length seq in
        let chunk_size = Intmath.ceil_div len num_chunks in
        let arr = Array.of_list seq in
        let chunk i =
          List.init chunk_size (fun k ->
              let off = (i * chunk_size) + k in
              if off < len then arr.(off) else (Schedule.idle, 0))
        in
        (num_chunks, chunk))
      disks
  in
  let layout =
    List.concat_map
      (fun minor ->
        List.concat_map
          (fun (num_chunks, chunk) -> chunk (minor mod num_chunks))
          chunked)
      (List.init max_freq (fun i -> i))
  in
  let capacities =
    List.concat_map (fun d -> d.files) disks
  in
  Program.of_layout layout ~capacities

let expected_delay prog file =
  let sched = Program.schedule prog in
  let occs = Schedule.occurrences sched file in
  match occs with
  | [] -> None
  | _ ->
      let p = Schedule.period sched in
      (* For each start slot, the wait (inclusive) until the next
         occurrence; averaging over one period covers all phases. *)
      let occ_arr = Array.of_list occs in
      let n = Array.length occ_arr in
      let total = ref 0 in
      let next_idx = ref 0 in
      for t = 0 to p - 1 do
        while !next_idx < n && occ_arr.(!next_idx) < t do
          incr next_idx
        done;
        let next =
          if !next_idx < n then occ_arr.(!next_idx) else occ_arr.(0) + p
        in
        total := !total + (next - t + 1)
      done;
      Some (float_of_int !total /. float_of_int p)

let worst_case_retrieval_error_free prog file =
  match Program.occurrences_per_period prog file with
  | 0 -> None
  | _ ->
      let m = Program.capacity prog file in
      let cycle = Program.data_cycle prog in
      (* Tune in right after each occurrence (the worst phases) and count
         slots until m distinct blocks are seen. *)
      let starts = ref [ 0 ] in
      for t = 0 to cycle - 1 do
        match Program.block_at prog t with
        | Some (f, _) when f = file -> starts := (t + 1) :: !starts
        | Some _ | None -> ()
      done;
      let worst = ref 0 in
      List.iter
        (fun start ->
          let collected = Hashtbl.create 16 in
          let t = ref start in
          while Hashtbl.length collected < m do
            (match Program.block_at prog !t with
            | Some (f, idx) when f = file -> Hashtbl.replace collected idx ()
            | Some _ | None -> ());
            incr t
          done;
          worst := max !worst (!t - start))
        !starts;
      Some !worst
