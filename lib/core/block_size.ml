module Task = Pindisk_pinwheel.Task
module Schedule = Pindisk_pinwheel.Schedule
module Scheduler = Pindisk_pinwheel.Scheduler
module Intmath = Pindisk_util.Intmath

type file = { id : int; bytes : int; latency : int; tolerance : int }

let file ?(tolerance = 0) ~id ~bytes ~latency () =
  if id < 0 then invalid_arg "Block_size.file: negative id";
  if bytes < 1 then invalid_arg "Block_size.file: bytes must be >= 1";
  if latency < 1 then invalid_arg "Block_size.file: latency must be >= 1";
  if tolerance < 0 then invalid_arg "Block_size.file: negative tolerance";
  { id; bytes; latency; tolerance }

let blocks_needed f ~block =
  if block < 1 then invalid_arg "Block_size.blocks_needed: block must be >= 1";
  Intmath.ceil_div f.bytes block

let tasks ~byte_rate ~block files =
  if byte_rate < 1 then invalid_arg "Block_size.tasks: byte_rate must be >= 1";
  if block < 1 then invalid_arg "Block_size.tasks: block must be >= 1";
  let slots_per_second = byte_rate / block in
  if slots_per_second < 1 then None
  else
    let rec build acc = function
      | [] -> Some (List.rev acc)
      | f :: rest ->
          let m = blocks_needed f ~block in
          let a = m + f.tolerance in
          let window = slots_per_second * f.latency in
          if m > 255 (* IDA limit *) || a > window then None
          else build (Task.make ~id:f.id ~a ~b:window :: acc) rest
    in
    build [] files

let default_candidates byte_rate =
  (* Powers of two not exceeding the byte rate, largest first. *)
  let rec go b acc = if b > byte_rate then acc else go (2 * b) (b :: acc) in
  go 1 []

let largest_uniform ?candidates ~byte_rate files =
  if files = [] then invalid_arg "Block_size.largest_uniform: no files";
  let candidates =
    match candidates with
    | Some c -> List.sort (fun a b -> compare b a) c
    | None -> default_candidates byte_rate
  in
  let rec scan = function
    | [] -> None
    | block :: rest -> (
        match tasks ~byte_rate ~block files with
        | None -> scan rest
        | Some sys -> (
            match Scheduler.schedule sys with
            | Some sched -> Some (block, sched)
            | None -> scan rest))
  in
  scan candidates

let per_file_multipliers ~byte_rate ~base files =
  if files = [] then invalid_arg "Block_size.per_file_multipliers: no files";
  if base < 1 then invalid_arg "Block_size.per_file_multipliers: base must be >= 1";
  let slots_per_second = byte_rate / base in
  if slots_per_second < 1 then None
  else begin
    (* With multiplier k, a file needs ceil(bytes / (k*base)) blocks of k
       base slots each, plus tolerance blocks, all within the window. *)
    let task_for f k =
      let m = Intmath.ceil_div f.bytes (k * base) in
      let a = (m + f.tolerance) * k in
      let window = slots_per_second * f.latency in
      if m > 255 || a > window then None else Some (Task.make ~id:f.id ~a ~b:window)
    in
    let system ks =
      let rec build acc = function
        | [] -> Some (List.rev acc)
        | f :: rest -> (
            match task_for f (List.assoc f.id ks) with
            | Some t -> build (t :: acc) rest
            | None -> None)
      in
      build [] files
    in
    let schedule_of ks =
      match system ks with
      | None -> None
      | Some sys -> Scheduler.schedule sys
    in
    let initial = List.map (fun f -> (f.id, 1)) files in
    match schedule_of initial with
    | None -> None
    | Some sched ->
        (* Greedily double the multiplier of the file with the largest
           current block count while the system stays schedulable. *)
        let rec improve ks sched frozen =
          let candidates =
            files
            |> List.filter (fun f -> not (List.mem f.id frozen))
            |> List.map (fun f ->
                   (f, Intmath.ceil_div f.bytes (List.assoc f.id ks * base)))
            |> List.filter (fun (_, m) -> m > 1)
          in
          match candidates with
          | [] -> (ks, sched)
          | _ ->
              let f, _ =
                List.fold_left
                  (fun (bf, bm) (f, m) -> if m > bm then (f, m) else (bf, bm))
                  (List.hd candidates) (List.tl candidates)
              in
              let ks' =
                List.map
                  (fun (id, k) -> if id = f.id then (id, 2 * k) else (id, k))
                  ks
              in
              (match schedule_of ks' with
              | Some sched' -> improve ks' sched' frozen
              | None -> improve ks sched (f.id :: frozen))
        in
        let ks, sched = improve initial sched [] in
        Some (ks, sched)
  end
