module Q = Pindisk_util.Q
module Bc = Pindisk_algebra.Bc
module Convert = Pindisk_algebra.Convert
module Task = Pindisk_pinwheel.Task
module Schedule = Pindisk_pinwheel.Schedule
module Scheduler = Pindisk_pinwheel.Scheduler

type spec = { bc : Bc.t; capacity : int }

let spec ?capacity bc =
  let minimum = bc.Bc.m + Bc.faults_tolerated bc in
  let capacity = match capacity with Some c -> c | None -> minimum in
  if capacity < minimum then
    invalid_arg "Generalized.spec: capacity below m + r";
  if capacity > 255 then
    invalid_arg "Generalized.spec: capacity exceeds the 255-block IDA limit";
  { bc; capacity }

let compiled_density specs =
  Convert.compile (List.map (fun s -> s.bc) specs)
  |> List.map (fun (t, _) -> Task.density t)
  |> Q.sum

let density_lower_bound specs =
  Q.sum (List.map (fun s -> Bc.density_lower_bound s.bc) specs)

let program_certified specs =
  if specs = [] then invalid_arg "Generalized.program: no files";
  let bcs = List.map (fun s -> s.bc) specs in
  let compiled, traces = Convert.compile_certified bcs in
  match Scheduler.schedule (List.map fst compiled) with
  | None -> None
  | Some sched ->
      (* Project pseudo-tasks onto their files. *)
      let file_of =
        let tbl = Hashtbl.create 16 in
        List.iter (fun (t, f) -> Hashtbl.replace tbl t.Task.id f) compiled;
        fun id ->
          match Hashtbl.find_opt tbl id with
          | Some f -> f
          | None -> Schedule.idle
      in
      let projected = Schedule.map_tasks sched file_of in
      (* The conversion is heuristic; trust nothing, re-verify the original
         broadcast conditions on the projection. *)
      if List.exists (fun bc -> Bc.check projected bc <> None) bcs then None
      else
        Some
          ( Program.make ~schedule:projected
              ~capacities:(List.map (fun s -> (s.bc.Bc.file, s.capacity)) specs),
            traces )

let program specs = Option.map fst (program_certified specs)
