module Schedule = Pindisk_pinwheel.Schedule

let header = "pindisk-program v1"

let to_string p =
  let buf = Buffer.create 256 in
  Buffer.add_string buf header;
  Buffer.add_char buf '\n';
  List.iter
    (fun f -> Buffer.add_string buf (Printf.sprintf "capacity %d %d\n" f (Program.capacity p f)))
    (Program.files p);
  Buffer.add_string buf "layout";
  for t = 0 to Program.period p - 1 do
    Buffer.add_char buf ' ';
    match Program.block_at p t with
    | None -> Buffer.add_char buf '.'
    | Some (f, k) -> Buffer.add_string buf (Printf.sprintf "%d:%d" f k)
  done;
  Buffer.add_char buf '\n';
  Buffer.contents buf

let parse_token tok =
  if tok = "." then Ok (Schedule.idle, 0)
  else
    match String.split_on_char ':' tok with
    | [ f; k ] -> (
        match (int_of_string_opt f, int_of_string_opt k) with
        | Some f, Some k when f >= 0 && k >= 0 -> Ok (f, k)
        | _ -> Error (Printf.sprintf "bad layout token %S" tok))
    | _ -> Error (Printf.sprintf "bad layout token %S" tok)

let of_string s =
  let lines =
    String.split_on_char '\n' s
    |> List.map String.trim
    |> List.filter (fun l -> l <> "")
  in
  match lines with
  | [] -> Error "empty input"
  | h :: rest when h = header -> (
      let capacities = ref [] and layout = ref None in
      let rec go = function
        | [] -> Ok ()
        | line :: rest -> (
            match String.split_on_char ' ' line with
            | "capacity" :: args -> (
                match args with
                | [ f; n ] -> (
                    match (int_of_string_opt f, int_of_string_opt n) with
                    | Some f, Some n ->
                        capacities := (f, n) :: !capacities;
                        go rest
                    | _ -> Error (Printf.sprintf "bad capacity line %S" line))
                | _ -> Error (Printf.sprintf "bad capacity line %S" line))
            | "layout" :: tokens -> (
                let tokens = List.filter (fun t -> t <> "") tokens in
                let rec parse acc = function
                  | [] -> Ok (List.rev acc)
                  | tok :: more -> (
                      match parse_token tok with
                      | Ok slot -> parse (slot :: acc) more
                      | Error e -> Error e)
                in
                match parse [] tokens with
                | Ok slots ->
                    layout := Some slots;
                    go rest
                | Error e -> Error e)
            | _ -> Error (Printf.sprintf "unrecognized line %S" line))
      in
      match go rest with
      | Error e -> Error e
      | Ok () -> (
          match !layout with
          | None -> Error "missing layout line"
          | Some slots -> (
              match Program.of_layout slots ~capacities:!capacities with
              | p -> Ok p
              | exception Invalid_argument e -> Error e)))
  | h :: _ -> Error (Printf.sprintf "unknown header %S (want %S)" h header)

let write p path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string p))

let read path =
  match open_in path with
  | exception Sys_error e -> Error e
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () ->
          let n = in_channel_length ic in
          let s = really_input_string ic n in
          of_string s)
