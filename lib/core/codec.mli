(** Textual serialization of broadcast programs.

    A deliberately simple line format, for shipping a designed program
    from the planning tool to a broadcast server (or into version
    control):

    {v
    pindisk-program v1
    capacity 0 10
    capacity 1 6
    layout 0:0 1:0 0:1 0:2 1:1 0:3 1:2 0:4
    v}

    [capacity] lines give each file's on-air block count; the [layout]
    line is one broadcast period of [file:block] tokens ([.] for an idle
    slot). Parsing re-validates everything through
    {!Program.of_layout}, so a corrupted file cannot yield a program
    whose block cycling is inconsistent. *)

val to_string : Program.t -> string

val of_string : string -> (Program.t, string) result
(** [Error] carries a human-readable reason (unknown header, bad token,
    missing capacity, inconsistent cycling, …). *)

val write : Program.t -> string -> unit
(** [write p path] saves to a file. *)

val read : string -> (Program.t, string) result
(** [read path] loads from a file; I/O errors are [Error]. *)
