(** Bandwidth bounds for real-time fault-tolerant broadcast disks
    (Section 3.2, Equations 1 and 2).

    The trivial lower bound on the bandwidth [B] (blocks/sec) needed to
    meet every file's latency is [Σ (m_i + r_i) / T_i]. The paper's upper
    bound rests on Chan & Chin's 7/10 density theorem: a bandwidth of
    [⌈(10/7)·Σ (m_i + r_i)/T_i⌉] makes the pinwheel system
    [{(i, m_i + r_i, B·T_i)}] schedulable — at most 43% above the lower
    bound. {!minimum} searches for the smallest bandwidth {e this library's}
    schedulers actually realize, which experiment E3/E4 compares against
    both bounds. *)

module Q = Pindisk_util.Q
module Task = Pindisk_pinwheel.Task
module Schedule = Pindisk_pinwheel.Schedule
module Scheduler = Pindisk_pinwheel.Scheduler

val demand : File_spec.t list -> Q.t
(** [Σ (m_i + r_i) / T_i], the trivial bandwidth lower bound in
    blocks/sec (fault-tolerant demand; with all tolerances 0 this is the
    Equation-1 demand [Σ m_i / T_i]). *)

val required : File_spec.t list -> int
(** Equation 2 (and Equation 1 when all [r_i = 0]):
    [⌈(10/7) · demand⌉] blocks/sec — sufficient under the 7/10 density
    theorem. Raises [Invalid_argument] on the empty list. *)

val tasks : bandwidth:int -> File_spec.t list -> Task.system
(** The pinwheel system [{(i, m_i + r_i, B·T_i)}] at the given bandwidth. *)

val schedulable :
  ?algorithm:Scheduler.algorithm -> bandwidth:int -> File_spec.t list -> bool
(** Whether this library's schedulers place the system at that bandwidth. *)

val minimum :
  ?algorithm:Scheduler.algorithm -> File_spec.t list ->
  (int * Schedule.t) option
(** The smallest bandwidth (searched upward from [⌈demand⌉]) at which the
    scheduler succeeds, with its schedule. Searches up to twice
    {!required}; [None] beyond that (never observed: density halves by
    then, meeting the schedulers' 1/2 guarantee). *)

val overhead : achieved:int -> File_spec.t list -> float
(** [achieved / demand]: 1.0 is perfect; the paper guarantees [<= ~1.43]
    at {!required}. *)
