(** Broadcast programs for generalized fault-tolerant real-time Bdisks
    (Section 4 of the paper).

    Here each file carries a latency {e vector} — latency as a function of
    how many faults actually occur — expressed as a broadcast condition
    {!Pindisk_algebra.Bc.t}. The pipeline is the paper's:

    + Equation 3 turns each [bc] into a conjunct of pinwheel conditions;
    + the pinwheel algebra ({!Pindisk_algebra.Convert}) rewrites the
      conjunct into a {e nice} conjunct of minimum heuristic density, with
      aliased pseudo-tasks carrying [map(i', i)];
    + the pinwheel scheduler places the nice system;
    + pseudo-tasks are projected back onto their files and the {e original}
      broadcast conditions are re-verified on the projection;
    + the file-level schedule plus AIDA capacities become a
      {!Program.t}. *)

module Q = Pindisk_util.Q
module Bc = Pindisk_algebra.Bc

type spec = { bc : Bc.t; capacity : int }
(** One generalized file: its broadcast condition and the number of
    distinct dispersed blocks on air ([capacity >= m + r]). *)

val spec : ?capacity:int -> Bc.t -> spec
(** [capacity] defaults to [m + r] (the minimum that lets [m + r] distinct
    blocks land inside one [d⁽ʳ⁾]-window). Raises [Invalid_argument] if
    below that minimum. *)

val compiled_density : spec list -> Q.t
(** Density of the nice conjunct the algebra produces — what the
    density-bounded scheduler will be asked to place. *)

val density_lower_bound : spec list -> Q.t
(** Sum of the per-file lower bounds ({!Bc.density_lower_bound}). *)

val program : spec list -> Program.t option
(** The full pipeline. [None] when the scheduler cannot place the nice
    system. The result is guaranteed (re-checked, not assumed) to satisfy
    every input broadcast condition. *)

val program_certified :
  spec list -> (Program.t * Pindisk_algebra.Trace.t list) option
(** {!program} plus the derivation traces the algebra emitted for each
    file's conversion (in input order) — the evidence an independent
    auditor ([pindisk.check]) validates without re-running this
    pipeline. *)
