(** Block-size selection (Section 5 of the paper — "The Effect of Block
    Size", posed as an open issue).

    Only the byte size of a file is physically fixed; its block count [m]
    depends on the chosen block size [b]: [m = ⌈bytes / b⌉]. A smaller [b]
    uses bandwidth more efficiently — the redundancy overhead per file is
    [r] {e blocks}, i.e. [r·b] bytes — but makes dispersal and
    reconstruction costlier ([O(m²)] per block). The paper reduces the
    system-wide choice to: {e find the largest [b] that satisfies the
    combined timeliness, fault-tolerance and bandwidth constraints}, and,
    in the generalized variant, the best per-file multiples [b_i = k_i·b].

    The channel here is specified by its {e byte} rate; at block size [b]
    it carries [⌊byte_rate / b⌋] slots per second. *)

module Task = Pindisk_pinwheel.Task
module Schedule = Pindisk_pinwheel.Schedule

type file = private {
  id : int;
  bytes : int;  (** physical size *)
  latency : int;  (** seconds *)
  tolerance : int;  (** block losses to survive per retrieval *)
}

val file : ?tolerance:int -> id:int -> bytes:int -> latency:int -> unit -> file

val blocks_needed : file -> block:int -> int
(** [⌈bytes / block⌉]. *)

val tasks : byte_rate:int -> block:int -> file list -> Task.system option
(** The pinwheel system induced by a system-wide block size: file [i]
    becomes [(i, ⌈bytes_i/b⌉ + r_i, ⌊byte_rate/b⌋ · T_i)]. [None] when the
    block size is infeasible outright (more blocks demanded than a window
    holds, or more than 255 source blocks for IDA). *)

val largest_uniform :
  ?candidates:int list -> byte_rate:int -> file list ->
  (int * Schedule.t) option
(** The largest system-wide block size (among [candidates], default all
    powers of two from [byte_rate] down to 1) whose induced pinwheel
    system the scheduler places; with its schedule. *)

val per_file_multipliers :
  byte_rate:int -> base:int -> file list -> ((int * int) list * Schedule.t) option
(** The paper's generalized choice [b_i = k_i·base]: starting from
    [k_i = 1], greedily double the multiplier of the file with the most
    source blocks (the highest coding cost) while the system stays
    schedulable. Returns [(file_id, k_i)] assignments and the final
    schedule. In the induced pinwheel system a file block of [k_i] base
    slots is modelled as [k_i] unit requirements per window; the schedule
    spreads them rather than keeping them contiguous, which preserves the
    bandwidth accounting (the quantity Section 5 reasons about) though not
    block contiguity. *)
