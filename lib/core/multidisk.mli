(** Classic frequency-based broadcast disks (Acharya, Alonso, Franklin &
    Zdonik, SIGMOD'95) — the non-real-time baseline this paper generalizes.

    The original Bdisk work assigns each file to one of several virtual
    "disks spinning at different speeds": a disk's relative frequency says
    how often its files recur per major cycle. Hot data goes on fast
    disks, cold data on slow ones; the construction minimizes {e average}
    latency but offers no per-file worst-case guarantee — which is exactly
    the gap the paper's pinwheel construction closes. This module builds
    the classic program so the benchmarks can compare the two.

    Construction (as in the SIGMOD'95 paper): let [max_freq] be the
    largest relative frequency; each disk [j] is split into
    [max_freq / freq_j] {e chunks} (frequencies must divide [max_freq]);
    the major cycle interleaves one chunk of every disk per minor cycle,
    [max_freq] minor cycles per major cycle. *)

type disk = { frequency : int; files : (int * int) list }
(** A virtual disk: relative [frequency >= 1] and its [(file_id, blocks)]
    assignments. *)

val program : disk list -> Program.t
(** Builds the broadcast program of the disk farm. Capacities are the
    plain block counts (no IDA). Raises [Invalid_argument] when
    frequencies do not divide the maximum frequency (the classic
    construction's requirement), on duplicate file ids, or on empty
    input. *)

val expected_delay : Program.t -> int -> float option
(** Mean wait, over a uniformly random tune-in slot, until the {e next}
    occurrence of the file — the average-latency metric the classic work
    optimizes ([None] if the file never appears). For a file broadcast
    with exact period [p] this is [(p+1)/2]. *)

val worst_case_retrieval_error_free : Program.t -> int -> int option
(** Worst-case slots to collect all of the file's blocks tuning in at the
    worst slot — the guarantee metric the paper cares about. Exact (scans
    one data cycle); [None] if the file never appears. *)
