module Q = Pindisk_util.Q
module Program = Pindisk.Program
module Bandwidth = Pindisk.Bandwidth

type verdict = {
  admitted : Item.t list;
  rejected : Item.t list;
  program : Pindisk.Program.t option;
}

let demand ~mode (item : Item.t) =
  Q.make (item.Item.blocks + Mode.tolerance mode item) item.Item.avi

let value_density ~mode item =
  let d = Q.to_float (demand ~mode item) in
  float_of_int item.Item.value /. d

let admit ~bandwidth ~mode items =
  if bandwidth < 1 then invalid_arg "Admission.admit: bandwidth must be >= 1";
  let ids = List.map (fun i -> i.Item.id) items in
  if List.length (List.sort_uniq compare ids) <> List.length ids then
    invalid_arg "Admission.admit: duplicate item ids";
  let ranked =
    List.sort
      (fun a b ->
        match compare (value_density ~mode b) (value_density ~mode a) with
        | 0 -> compare b.Item.value a.Item.value
        | c -> c)
      items
  in
  let admitted, rejected =
    List.fold_left
      (fun (acc, rej) item ->
        let candidate = item :: acc in
        let specs = Mode.file_specs mode (List.rev candidate) in
        if Bandwidth.schedulable ~bandwidth specs then (candidate, rej)
        else (acc, item :: rej))
      ([], []) ranked
  in
  let admitted = List.rev admitted and rejected = List.rev rejected in
  let program =
    match admitted with
    | [] -> None
    | _ -> Program.pinwheel ~bandwidth (Mode.file_specs mode admitted)
  in
  { admitted; rejected; program }

let all_admitted v = v.rejected = []
