module Aida = Pindisk_ida.Aida
module File_spec = Pindisk.File_spec

type t = {
  name : string;
  default : Aida.criticality;
  overrides : (string * Aida.criticality) list;
}

let make ?(default = Aida.Non_real_time) ~name overrides =
  let names = List.map fst overrides in
  if List.length (List.sort_uniq compare names) <> List.length names then
    invalid_arg "Mode.make: duplicate item names";
  { name; default; overrides }

let criticality t (item : Item.t) =
  match List.assoc_opt item.Item.name t.overrides with
  | Some c -> c
  | None -> t.default

let tolerance t item = Aida.redundancy (criticality t item)

let to_file_spec ?capacity t (item : Item.t) =
  File_spec.make ~name:item.Item.name ?capacity ~tolerance:(tolerance t item)
    ~id:item.Item.id ~blocks:item.Item.blocks ~latency:item.Item.avi ()

let file_specs ?capacity_for t items =
  List.map
    (fun item ->
      let capacity = Option.map (fun f -> f item) capacity_for in
      to_file_spec ?capacity t item)
    items

let max_tolerance modes item =
  List.fold_left (fun acc m -> max acc (tolerance m item)) 0 modes

let pp ppf t = Format.fprintf ppf "mode %s (%d overrides)" t.name (List.length t.overrides)
