(** Update dissemination and temporal consistency on a broadcast disk.

    A real-time database item is re-sampled at the server every
    [update_period] slots; the broadcast carries the latest version, and a
    version takes effect at the next {e broadcast-period boundary} (so a
    file's dispersed blocks within one period all come from one version —
    IDA reconstruction must never mix versions). A client that is
    mid-collection when the version changes discards its stale pieces and
    starts over — which means updates arriving faster than a retrieval
    completes can {e starve} clients, an effect {!sweep} measures.

    On retrieval completion, the item's {e age} is the time since the
    version it reconstructed was sampled at the server. Absolute temporal
    consistency (the paper's AWACS example) demands age <= the item's
    validity interval at every use. *)

type outcome = {
  latency : int;  (** slots from tune-in to reconstruction, inclusive *)
  age_at_completion : int;
      (** slots between the reconstructed version's sampling instant and
          the completion slot *)
  restarts : int;  (** collections abandoned because the version changed *)
}

val retrieve :
  ?max_slots:int -> program:Pindisk.Program.t -> file:int -> needed:int ->
  update_period:int -> start:int -> unit -> outcome option
(** Deterministic (fault-free) retrieval under versioning. Versions are
    sampled at slots [0, update_period, 2·update_period, …] and take
    effect at the next multiple of the broadcast period. [None] when the
    retrieval starves past [max_slots] (default 50 data cycles). Raises
    [Invalid_argument] if the file is absent or [needed] exceeds its
    capacity. *)

type summary = {
  trials : int;
  starved : int;  (** retrievals that never completed *)
  mean_latency : float;  (** over completed retrievals *)
  max_latency : int;
  mean_age : float;
  max_age : int;
  consistency_ratio : float;
      (** fraction of trials completing with [age_at_completion <= avi] *)
  mean_restarts : float;
}

val pp_summary : Format.formatter -> summary -> unit

val sweep :
  ?max_slots:int -> program:Pindisk.Program.t -> file:int -> needed:int ->
  update_period:int -> avi:int -> unit -> summary
(** {!retrieve} from every tune-in slot of one full cycle
    (lcm of data cycle, update period and broadcast period),
    aggregated; starved retrievals count against consistency. *)
