(** Real-time database items with absolute temporal consistency constraints.

    The paper's motivating example (Section 1): an AWACS data item recording
    the position of a 900 km/h aircraft must reach clients within 400 ms to
    guarantee 100 m positional accuracy, while a 60 km/h tank tolerates
    6,000 ms. {!avi_of_velocity} is that arithmetic; an {!t} couples the
    consistency constraint with the item's size and its value to the
    mission (used by value-cognizant admission control). *)

type t = private {
  id : int;
  name : string;
  blocks : int;  (** size in broadcast blocks *)
  avi : int;  (** absolute validity interval, in seconds: retrieval must
                  complete within this long of tuning in *)
  value : int;  (** importance to admission control; higher wins *)
}

val make :
  ?value:int -> id:int -> name:string -> blocks:int -> avi:int -> unit -> t
(** [value] defaults to 1. Raises [Invalid_argument] unless [id >= 0],
    [blocks >= 1], [avi >= 1] and [value >= 0]. *)

val avi_of_velocity : velocity_kmh:float -> accuracy_m:float -> float
(** Seconds within which a position of an object moving at [velocity_kmh]
    must be delivered to guarantee [accuracy_m] of positional accuracy:
    [accuracy / velocity]. The paper's aircraft: 900 km/h, 100 m →
    0.4 s; its tank: 60 km/h, 100 m → 6 s. *)

val pp : Format.formatter -> t -> unit
