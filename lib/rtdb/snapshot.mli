(** Snapshot-consistent multi-item reads over a versioned broadcast.

    A read-only transaction touching several items must not mix database
    states: if the aircraft position is from epoch 7 and the threat grid
    from epoch 6, the combination may describe a world that never existed
    (the serializability concern the paper cites for broadcast RTDBs).

    With the {!Staleness} versioning discipline (all of an item's blocks
    within a broadcast period come from one version), a transaction is
    {e snapshot-consistent} if every item it reconstructs comes from the
    same update epoch. The client protocol here: harvest all items
    concurrently; when an item completes, record its epoch; if a later
    completion lands in a newer epoch, discard the older items and keep
    collecting until all epochs match. Updates arriving faster than the
    slowest item retrieves can therefore starve the transaction — the
    broadcast analogue of read-only transaction restarts. *)

type read = { file : int; needed : int }

type outcome = {
  elapsed : int;  (** tune-in through the last (consistent) completion *)
  epoch : int;  (** the common epoch of every reconstructed item *)
  restarts : int;  (** item collections discarded on epoch mismatch *)
}

val retrieve :
  ?max_slots:int -> program:Pindisk.Program.t -> reads:read list ->
  update_period:int -> start:int -> unit -> outcome option
(** Fault-free snapshot retrieval (versioning is the phenomenon under
    study; channel faults compose independently). Epochs advance at
    broadcast-period boundaries per {!Staleness}. [None] when [max_slots]
    (default 50 data cycles) elapses first. Raises [Invalid_argument] on
    an empty or duplicate-file read set, unknown files, or [needed]
    beyond a capacity. *)

type summary = {
  trials : int;
  starved : int;
  mean_elapsed : float;
  max_elapsed : int;
  mean_restarts : float;
}

val sweep :
  ?max_slots:int -> program:Pindisk.Program.t -> reads:read list ->
  update_period:int -> unit -> summary
(** {!retrieve} from every tune-in slot of one joint cycle. *)

val pp_summary : Format.formatter -> summary -> unit
