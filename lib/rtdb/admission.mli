(** Value-cognizant admission control for broadcast disks.

    When the channel bandwidth cannot carry every item at its required
    latency and redundancy, the server must choose. Following the
    value-cognizant admission control the paper cites (Bestavros & Nagy,
    RTSS'96), items are admitted in order of {e value density} — value per
    unit of bandwidth demand — and an item is admitted only if the already-
    admitted set plus the candidate remains schedulable at the given
    bandwidth (checked with the real scheduler, not just the density
    bound). *)

type verdict = {
  admitted : Item.t list;  (** in admission order *)
  rejected : Item.t list;
  program : Pindisk.Program.t option;
      (** the broadcast program for the admitted set, when non-empty *)
}

val demand : mode:Mode.t -> Item.t -> Pindisk_util.Q.t
(** [(m + r) / avi]: the item's bandwidth demand under the mode. *)

val value_density : mode:Mode.t -> Item.t -> float
(** [value / demand]. *)

val admit : bandwidth:int -> mode:Mode.t -> Item.t list -> verdict
(** Greedy admission at fixed [bandwidth]: candidates sorted by decreasing
    value density (value as a tie-break), each admitted iff the grown set
    is still schedulable. Raises [Invalid_argument] when [bandwidth < 1]
    or item ids collide. *)

val all_admitted : verdict -> bool
