(** Modes of operation and the AIDA redundancy they imply.

    "The fault-tolerant timely access of a data object (e.g., 'location of
    nearby aircrafts') could be critical in a given mode of operation
    (e.g., 'combat'), but less critical in a different mode (e.g.,
    'landing')." A mode names a criticality for each item; switching modes
    re-runs the bandwidth-allocation step of AIDA, scaling redundancy up
    for the items that matter now and down for the rest. *)

module Aida = Pindisk_ida.Aida

type t = private {
  name : string;
  default : Aida.criticality;
  overrides : (string * Aida.criticality) list;  (** by item name *)
}

val make :
  ?default:Aida.criticality -> name:string ->
  (string * Aida.criticality) list -> t
(** [default] applies to items not mentioned; it defaults to
    [Non_real_time]. *)

val criticality : t -> Item.t -> Aida.criticality

val tolerance : t -> Item.t -> int
(** The per-retrieval loss count the mode asks this item to survive. *)

val to_file_spec : ?capacity:int -> t -> Item.t -> Pindisk.File_spec.t
(** The broadcast file realizing the item under this mode: size and latency
    from the item, fault tolerance from the mode, [capacity] (default
    [blocks + tolerance]) from the dispersal plan. *)

val file_specs :
  ?capacity_for:(Item.t -> int) -> t -> Item.t list -> Pindisk.File_spec.t list
(** All items at once. [capacity_for] fixes each item's dispersal level
    independently of the mode — pass the maximum tolerance over every mode
    the system can enter, so mode switches never require re-dispersal. *)

val max_tolerance : t list -> Item.t -> int
(** The largest tolerance any of the modes asks of the item: the dispersal
    level to provision. *)

val pp : Format.formatter -> t -> unit
