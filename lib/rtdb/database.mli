(** The broadcast-disk face of a real-time database.

    Couples a set of temporally-constrained {!Item}s with the {!Mode}s the
    system can operate in. Dispersal capacity is provisioned once, for the
    worst mode ({!Mode.max_tolerance}), so switching modes only changes the
    broadcast program — never the dispersed data. *)

type t

val create : items:Item.t list -> modes:Mode.t list -> t
(** Raises [Invalid_argument] on duplicate item ids/names, duplicate mode
    names, an empty item list or an empty mode list. *)

val items : t -> Item.t list
val modes : t -> Mode.t list
val mode : t -> string -> Mode.t option

val provisioned_capacity : t -> Item.t -> int
(** [blocks + max_tolerance]: the number of dispersed blocks kept on the
    server for the item. *)

val file_specs : t -> mode:Mode.t -> Pindisk.File_spec.t list
(** The broadcast files for one mode, at the provisioned capacity. *)

val required_bandwidth : t -> mode:Mode.t -> int
(** Equation 2's sufficient bandwidth for the mode. *)

val program : ?bandwidth:int -> t -> mode:Mode.t -> (int * Pindisk.Program.t) option
(** The broadcast program for a mode: at [bandwidth] if given (and
    feasible), else at the smallest bandwidth the scheduler finds. Returns
    the bandwidth used alongside the program. *)
