type t = { id : int; name : string; blocks : int; avi : int; value : int }

let make ?(value = 1) ~id ~name ~blocks ~avi () =
  if id < 0 then invalid_arg "Item.make: negative id";
  if blocks < 1 then invalid_arg "Item.make: blocks must be >= 1";
  if avi < 1 then invalid_arg "Item.make: avi must be >= 1";
  if value < 0 then invalid_arg "Item.make: negative value";
  { id; name; blocks; avi; value }

let avi_of_velocity ~velocity_kmh ~accuracy_m =
  if velocity_kmh <= 0.0 then invalid_arg "Item.avi_of_velocity: velocity";
  if accuracy_m <= 0.0 then invalid_arg "Item.avi_of_velocity: accuracy";
  let meters_per_second = velocity_kmh *. 1000.0 /. 3600.0 in
  accuracy_m /. meters_per_second

let pp ppf t =
  Format.fprintf ppf "%s(id=%d, %d blocks, avi=%ds, value=%d)" t.name t.id
    t.blocks t.avi t.value
