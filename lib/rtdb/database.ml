module Program = Pindisk.Program
module Bandwidth = Pindisk.Bandwidth

type t = { items : Item.t list; modes : Mode.t list }

let create ~items ~modes =
  if items = [] then invalid_arg "Database.create: no items";
  if modes = [] then invalid_arg "Database.create: no modes";
  let distinct proj what l =
    if List.length (List.sort_uniq compare (List.map proj l)) <> List.length l
    then invalid_arg ("Database.create: duplicate " ^ what)
  in
  distinct (fun i -> i.Item.id) "item ids" items;
  distinct (fun i -> i.Item.name) "item names" items;
  distinct (fun (m : Mode.t) -> m.Mode.name) "mode names" modes;
  { items; modes }

let items t = t.items
let modes t = t.modes

let mode t name = List.find_opt (fun (m : Mode.t) -> m.Mode.name = name) t.modes

let provisioned_capacity t (item : Item.t) =
  item.Item.blocks + Mode.max_tolerance t.modes item

let file_specs t ~mode =
  Mode.file_specs ~capacity_for:(provisioned_capacity t) mode t.items

let required_bandwidth t ~mode = Bandwidth.required (file_specs t ~mode)

let program ?bandwidth t ~mode =
  let specs = file_specs t ~mode in
  match bandwidth with
  | Some b -> (
      match Program.pinwheel ~bandwidth:b specs with
      | Some p -> Some (b, p)
      | None -> None)
  | None -> Program.auto specs
