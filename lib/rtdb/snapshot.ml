module Program = Pindisk.Program
module Intmath = Pindisk_util.Intmath

type read = { file : int; needed : int }

type outcome = { elapsed : int; epoch : int; restarts : int }

type item_state = {
  needed : int;
  mutable got : (int, unit) Hashtbl.t;
  mutable epoch : int; (* epoch the current collection belongs to; -1 = none *)
  mutable complete : bool;
}

let retrieve ?max_slots ~program ~reads ~update_period ~start () =
  if reads = [] then invalid_arg "Snapshot.retrieve: empty read set";
  if update_period < 1 then invalid_arg "Snapshot.retrieve: update_period";
  if start < 0 then invalid_arg "Snapshot.retrieve: negative start";
  let files = List.map (fun r -> r.file) reads in
  if List.length (List.sort_uniq compare files) <> List.length files then
    invalid_arg "Snapshot.retrieve: duplicate files";
  List.iter
    (fun r ->
      (match Program.capacity program r.file with
      | exception Not_found -> invalid_arg "Snapshot.retrieve: file not in program"
      | cap ->
          if r.needed > cap then
            invalid_arg "Snapshot.retrieve: needed exceeds capacity");
      if r.needed < 1 then invalid_arg "Snapshot.retrieve: needed must be >= 1")
    reads;
  let max_slots =
    match max_slots with
    | Some m -> m
    | None -> 50 * Program.data_cycle program
  in
  let period = Program.period program in
  let epoch_at t = t / period * period / update_period in
  let states = Hashtbl.create 8 in
  List.iter
    (fun r ->
      Hashtbl.replace states r.file
        { needed = r.needed; got = Hashtbl.create 8; epoch = -1; complete = false })
    reads;
  let restarts = ref 0 in
  let t = ref start in
  let result = ref None in
  while !result = None && !t - start < max_slots do
    (match Program.block_at program !t with
    | Some (f, idx) -> (
        match Hashtbl.find_opt states f with
        | None -> ()
        | Some st ->
            let e = epoch_at !t in
            (* A new epoch invalidates every item still collecting in an
               older one, and every already-completed item from an older
               one (its snapshot can no longer be completed by the rest). *)
            if e > st.epoch && (st.epoch >= 0 || st.complete) then begin
              if Hashtbl.length st.got > 0 || st.complete then incr restarts;
              st.got <- Hashtbl.create 8;
              st.complete <- false
            end;
            if not st.complete then begin
              st.epoch <- e;
              if not (Hashtbl.mem st.got idx) then begin
                Hashtbl.replace st.got idx ();
                if Hashtbl.length st.got >= st.needed then st.complete <- true
              end
            end;
            (* Transaction commits when all items are complete in one
               common epoch. *)
            if st.complete then begin
              let epochs =
                Hashtbl.fold
                  (fun _ s acc ->
                    if s.complete then s.epoch :: acc else (-2) :: acc)
                  states []
              in
              match epochs with
              | e0 :: rest when e0 >= 0 && List.for_all (( = ) e0) rest ->
                  result := Some { elapsed = !t - start + 1; epoch = e0; restarts = !restarts }
              | _ -> ()
            end)
    | None -> ());
    incr t
  done;
  !result

type summary = {
  trials : int;
  starved : int;
  mean_elapsed : float;
  max_elapsed : int;
  mean_restarts : float;
}

let sweep ?max_slots ~program ~reads ~update_period () =
  let cycle =
    Intmath.lcm (Program.data_cycle program)
      (Intmath.lcm update_period (Program.period program))
  in
  let starved = ref 0 in
  let sum = ref 0 and worst = ref 0 and rsum = ref 0 in
  for start = 0 to cycle - 1 do
    match retrieve ?max_slots ~program ~reads ~update_period ~start () with
    | None -> incr starved
    | Some o ->
        sum := !sum + o.elapsed;
        worst := max !worst o.elapsed;
        rsum := !rsum + o.restarts
  done;
  let completed = cycle - !starved in
  {
    trials = cycle;
    starved = !starved;
    mean_elapsed =
      (if completed = 0 then Float.nan
       else float_of_int !sum /. float_of_int completed);
    max_elapsed = !worst;
    mean_restarts =
      (if completed = 0 then Float.nan
       else float_of_int !rsum /. float_of_int completed);
  }

let pp_summary ppf s =
  Format.fprintf ppf
    "%d tune-ins (%d starved): elapsed mean %.1f / max %d; restarts %.2f"
    s.trials s.starved s.mean_elapsed s.max_elapsed s.mean_restarts
