module Program = Pindisk.Program
module Intmath = Pindisk_util.Intmath

type outcome = { latency : int; age_at_completion : int; restarts : int }

(* The version on the air at slot t: sampled at the last update instant at
   or before the period boundary that opens t's broadcast period. *)
let version_on_air ~period ~update_period t =
  let boundary = t / period * period in
  boundary / update_period

let retrieve ?max_slots ~program ~file ~needed ~update_period ~start () =
  if update_period < 1 then invalid_arg "Staleness.retrieve: update_period";
  if start < 0 then invalid_arg "Staleness.retrieve: negative start";
  if needed < 1 then invalid_arg "Staleness.retrieve: needed must be >= 1";
  (match Program.capacity program file with
  | exception Not_found -> invalid_arg "Staleness.retrieve: file not in program"
  | cap ->
      if needed > cap then
        invalid_arg "Staleness.retrieve: needed exceeds capacity");
  if Program.occurrences_per_period program file = 0 then
    invalid_arg "Staleness.retrieve: file never broadcast";
  let max_slots =
    match max_slots with
    | Some m -> m
    | None -> 50 * Program.data_cycle program
  in
  let period = Program.period program in
  let collected = Hashtbl.create 8 in
  let collecting_version = ref (-1) in
  let restarts = ref 0 in
  let t = ref start in
  let result = ref None in
  while !result = None && !t - start < max_slots do
    (match Program.block_at program !t with
    | Some (f, idx) when f = file ->
        let v = version_on_air ~period ~update_period !t in
        if v <> !collecting_version then begin
          if Hashtbl.length collected > 0 then incr restarts;
          Hashtbl.reset collected;
          collecting_version := v
        end;
        if not (Hashtbl.mem collected idx) then begin
          Hashtbl.replace collected idx ();
          if Hashtbl.length collected >= needed then
            result :=
              Some
                {
                  latency = !t - start + 1;
                  age_at_completion = !t - (v * update_period);
                  restarts = !restarts;
                }
        end
    | Some _ | None -> ());
    incr t
  done;
  !result

type summary = {
  trials : int;
  starved : int;
  mean_latency : float;
  max_latency : int;
  mean_age : float;
  max_age : int;
  consistency_ratio : float;
  mean_restarts : float;
}

let pp_summary ppf s =
  Format.fprintf ppf
    "%d tune-ins (%d starved): latency mean %.1f / max %d; age mean %.1f / \
     max %d; consistent %.1f%%; restarts %.2f"
    s.trials s.starved s.mean_latency s.max_latency s.mean_age s.max_age
    (100.0 *. s.consistency_ratio)
    s.mean_restarts

let sweep ?max_slots ~program ~file ~needed ~update_period ~avi () =
  let cycle =
    Intmath.lcm (Program.data_cycle program)
      (Intmath.lcm update_period (Program.period program))
  in
  let starved = ref 0 in
  let lat_sum = ref 0 and lat_max = ref 0 in
  let age_sum = ref 0 and age_max = ref 0 in
  let consistent = ref 0 and restart_sum = ref 0 in
  for start = 0 to cycle - 1 do
    match retrieve ?max_slots ~program ~file ~needed ~update_period ~start () with
    | None -> incr starved
    | Some o ->
        lat_sum := !lat_sum + o.latency;
        lat_max := max !lat_max o.latency;
        age_sum := !age_sum + o.age_at_completion;
        age_max := max !age_max o.age_at_completion;
        if o.age_at_completion <= avi then incr consistent;
        restart_sum := !restart_sum + o.restarts
  done;
  let n = float_of_int cycle in
  let completed = float_of_int (cycle - !starved) in
  {
    trials = cycle;
    starved = !starved;
    mean_latency =
      (if completed = 0.0 then Float.nan else float_of_int !lat_sum /. completed);
    max_latency = !lat_max;
    mean_age =
      (if completed = 0.0 then Float.nan else float_of_int !age_sum /. completed);
    max_age = !age_max;
    consistency_ratio = float_of_int !consistent /. n;
    mean_restarts =
      (if completed = 0.0 then Float.nan
       else float_of_int !restart_sum /. completed);
  }
