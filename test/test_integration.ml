(* Cross-library integration tests: the full pipelines of the paper, each
   layer checked by a component that did not produce it.

   1. Generalized Bdisks: latency-vector conditions -> pinwheel algebra ->
      scheduler -> program -> EXACT ADVERSARY confirms the semantic
      guarantee: with j faults, reconstruction completes within d^(j).
   2. Regular fault-tolerant Bdisks: file specs -> bandwidth search ->
      program -> adversary confirms retrieval within B*T under up to r
      faults.
   3. Bytes over the air: IDA -> program -> lossy channel -> bit-exact
      reconstruction, against the AWACS database built by the rtdb layer. *)

module File_spec = Pindisk.File_spec
module Bandwidth = Pindisk.Bandwidth
module Program = Pindisk.Program
module Generalized = Pindisk.Generalized
module Bc = Pindisk_algebra.Bc
module Adversary = Pindisk_sim.Adversary
module Fault = Pindisk_sim.Fault
module Transport = Pindisk_sim.Transport
module Item = Pindisk_rtdb.Item
module Mode = Pindisk_rtdb.Mode
module Database = Pindisk_rtdb.Database
module Aida = Pindisk_ida.Aida

let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* 1. The generalized model's semantic guarantee                       *)
(* ------------------------------------------------------------------ *)

(* bc(i, m, [d0; d1; ...; dr]) promises: even with j lost blocks, any m
   good blocks arrive within d^(j) slots of tuning in -- provided the
   program's capacity gives j spare distinct blocks. The adversary
   computes the true worst case; it must not exceed d^(j). *)
let assert_generalized_guarantee specs =
  match Generalized.program specs with
  | None -> Alcotest.fail "generalized program must exist"
  | Some program ->
      List.iter
        (fun spec ->
          let bc = spec.Generalized.bc in
          let m = bc.Bc.m in
          Array.iteri
            (fun j dj ->
              let worst =
                Adversary.worst_case_retrieval program ~file:bc.Bc.file
                  ~needed:m ~errors:j
              in
              if worst > dj then
                Alcotest.failf
                  "file %d with %d faults: worst-case retrieval %d > d^(%d) = %d"
                  bc.Bc.file j worst j dj)
            bc.Bc.d)
        specs

let test_generalized_guarantee_single () =
  assert_generalized_guarantee
    [ Generalized.spec (Bc.make ~file:0 ~m:2 ~d:[ 8; 10; 14 ]) ]

let test_generalized_guarantee_example4 () =
  (* The paper's Example 4 condition, on the air. *)
  assert_generalized_guarantee
    [ Generalized.spec (Bc.make ~file:0 ~m:4 ~d:[ 8; 9 ]) ]

let test_generalized_guarantee_mixed () =
  assert_generalized_guarantee
    [
      Generalized.spec (Bc.make ~file:0 ~m:1 ~d:[ 4; 6 ]);
      Generalized.spec (Bc.make ~file:1 ~m:2 ~d:[ 12; 16; 20 ]);
      Generalized.spec (Bc.make ~file:2 ~m:3 ~d:[ 40 ]);
    ]

let test_generalized_guarantee_random () =
  let rng = Random.State.make [| 2025 |] in
  for _ = 1 to 15 do
    let n = 1 + Random.State.int rng 3 in
    let specs =
      List.init n (fun file ->
          let m = 1 + Random.State.int rng 3 in
          let r = Random.State.int rng 3 in
          let d0 = (m * (3 + Random.State.int rng 6)) + Random.State.int rng 4 in
          let rec vec prev j =
            if j > r then []
            else
              let dj = prev + 1 + Random.State.int rng 5 in
              dj :: vec dj (j + 1)
          in
          Generalized.spec (Bc.make ~file ~m ~d:(d0 :: vec d0 1)))
    in
    match Generalized.program specs with
    | None -> () (* heuristic may fail; soundness is what we test *)
    | Some _ -> assert_generalized_guarantee specs
  done

(* ------------------------------------------------------------------ *)
(* 2. Regular fault-tolerant Bdisks end to end                         *)
(* ------------------------------------------------------------------ *)

let test_regular_guarantee () =
  let files =
    [
      File_spec.make ~id:0 ~blocks:2 ~latency:4 ~tolerance:2 ();
      File_spec.make ~id:1 ~blocks:3 ~latency:9 ~tolerance:1 ();
    ]
  in
  match Program.auto files with
  | None -> Alcotest.fail "program must exist"
  | Some (b, program) ->
      List.iter
        (fun f ->
          let window = File_spec.window f ~bandwidth:b in
          for j = 0 to f.File_spec.tolerance do
            let worst =
              Adversary.worst_case_retrieval program ~file:f.File_spec.id
                ~needed:f.File_spec.blocks ~errors:j
            in
            check_bool
              (Printf.sprintf "file %d, %d faults: %d <= %d" f.File_spec.id j
                 worst window)
              true (worst <= window)
          done)
        files

(* ------------------------------------------------------------------ *)
(* 3. The AWACS database, bytes on the air                             *)
(* ------------------------------------------------------------------ *)

let test_awacs_bytes_end_to_end () =
  let items =
    [
      Item.make ~id:0 ~name:"aircraft" ~blocks:2 ~avi:4 ();
      Item.make ~id:1 ~name:"tank" ~blocks:2 ~avi:60 ();
    ]
  in
  let combat =
    Mode.make ~name:"combat" ~default:Aida.Standard
      [ ("aircraft", Aida.Critical 2) ]
  in
  let db = Database.create ~items ~modes:[ combat ] in
  match Database.program db ~mode:combat with
  | None -> Alcotest.fail "combat program must exist"
  | Some (_, program) ->
      let aircraft_feed = Bytes.of_string "bogey 37.77N 122.42W 9000ft 870kt" in
      let tank_feed = Bytes.of_string "armor column grid QRF-7" in
      let transport =
        Transport.create ~program [ (0, 2, aircraft_feed); (1, 2, tank_feed) ]
      in
      (* A client behind 25% loss still reconstructs both items exactly. *)
      for seed = 0 to 9 do
        (match
           Transport.retrieve transport ~file:0 ~start:(3 * seed)
             ~fault:(Fault.bernoulli ~p:0.25 ~seed) ()
         with
        | Some bytes -> check_bool "aircraft exact" true (Bytes.equal bytes aircraft_feed)
        | None -> Alcotest.fail "aircraft retrieval starved");
        match
          Transport.retrieve transport ~file:1 ~start:(7 * seed)
            ~fault:(Fault.bernoulli ~p:0.25 ~seed:(seed + 100)) ()
        with
        | Some bytes -> check_bool "tank exact" true (Bytes.equal bytes tank_feed)
        | None -> Alcotest.fail "tank retrieval starved"
      done

(* ------------------------------------------------------------------ *)
(* 4. Mode switches never strand a client                              *)
(* ------------------------------------------------------------------ *)

(* The Database provisions dispersal for the WORST mode, so switching the
   broadcast program mid-retrieval leaves every already-collected piece
   usable: indices are self-identifying and the dispersal never changes.
   A client that gathers pieces across the landing->combat switch must
   still reconstruct bit-exactly. *)
let test_mode_switch_mid_retrieval () =
  let module Ida = Pindisk_ida.Ida in
  let items =
    [
      Item.make ~id:0 ~name:"aircraft" ~blocks:3 ~avi:6 ();
      Item.make ~id:1 ~name:"terrain" ~blocks:4 ~avi:40 ();
    ]
  in
  let combat =
    Mode.make ~name:"combat" ~default:Aida.Standard [ ("aircraft", Aida.Critical 2) ]
  in
  let landing = Mode.make ~name:"landing" [ ("terrain", Aida.Standard) ] in
  let db = Database.create ~items ~modes:[ combat; landing ] in
  let _, p_landing = Option.get (Database.program db ~mode:landing) in
  let _, p_combat = Option.get (Database.program db ~mode:combat) in
  let aircraft = List.hd items in
  let capacity = Database.provisioned_capacity db aircraft in
  let content = Bytes.of_string "bogey at angels twelve" in
  let ida = Ida.create ~m:3 in
  let pieces = Ida.disperse ida ~n:capacity content in
  (* Collect pieces: a few slots under the landing program, then switch. *)
  let collected = Hashtbl.create 8 in
  let harvest program from until =
    for t = from to until do
      match Program.block_at program t with
      | Some (0, idx) -> Hashtbl.replace collected idx pieces.(idx)
      | Some _ | None -> ()
    done
  in
  harvest p_landing 0 1;
  let before_switch = Hashtbl.length collected in
  check_bool "partial before switch" true (before_switch < 3);
  let t = ref 0 in
  while Hashtbl.length collected < 3 do
    harvest p_combat !t !t;
    incr t
  done;
  let got = Hashtbl.fold (fun _ p acc -> p :: acc) collected [] in
  check_bool "bit-exact across the switch" true
    (Bytes.equal (Ida.reconstruct ida ~length:(Bytes.length content) got) content)

let () =
  Alcotest.run "integration"
    [
      ( "generalized-guarantee",
        [
          Alcotest.test_case "single file" `Quick test_generalized_guarantee_single;
          Alcotest.test_case "paper example 4" `Quick test_generalized_guarantee_example4;
          Alcotest.test_case "mixed vectors" `Quick test_generalized_guarantee_mixed;
          Alcotest.test_case "randomized" `Slow test_generalized_guarantee_random;
        ] );
      ( "regular-guarantee",
        [ Alcotest.test_case "within B*T under faults" `Quick test_regular_guarantee ] );
      ( "bytes-on-air",
        [ Alcotest.test_case "AWACS end to end" `Quick test_awacs_bytes_end_to_end ] );
      ( "mode-switch",
        [ Alcotest.test_case "mid-retrieval switch" `Quick test_mode_switch_mid_retrieval ] );
    ]
