(* Multi-channel sharding: the Channels task partitioner, the Shard
   file-level designer, and (below) the Multi tuner simulation. *)

module P = Pindisk_pinwheel
module Task = P.Task
module Schedule = P.Schedule
module Scheduler = P.Scheduler
module Plan = P.Plan
module Channels = P.Channels
module Gen = P.Gen
module Q = Pindisk_util.Q
module File_spec = Pindisk.File_spec
module Program = Pindisk.Program
module Shard = Pindisk.Shard

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let render_schedule s = Format.asprintf "%a" Schedule.pp s
let render_program p = Format.asprintf "%a" Program.pp p

(* ------------------------------------------------------------------ *)
(* Channels: task-level partitioning                                  *)
(* ------------------------------------------------------------------ *)

let test_channels_k1_identity () =
  (* channels = 1 is the single-channel pipeline, byte for byte. *)
  let sys =
    [ Task.unit ~id:0 ~b:4; Task.unit ~id:1 ~b:8; Task.unit ~id:2 ~b:8 ]
  in
  let t = Channels.plan ~channels:1 sys in
  check_int "one shard" 1 (List.length t.Channels.shards);
  check_bool "nothing shed" true (t.Channels.shed = []);
  let shard = List.hd t.Channels.shards in
  check_bool "original order kept" true (shard.Channels.tasks = sys);
  let single =
    match Scheduler.plan sys with Some p -> p | None -> assert false
  in
  Alcotest.(check string)
    "identical schedule bytes"
    (render_schedule (Plan.to_schedule single))
    (render_schedule (Plan.to_schedule shard.Channels.plan))

let test_channels_partition_covers () =
  let sys = List.init 12 (fun i -> Task.unit ~id:i ~b:(8 + (4 * (i mod 3)))) in
  let assignment, shed = Channels.partition ~channels:3 sys in
  check_bool "nothing shed" true (shed = []);
  (* Every task appears exactly once, and the pairs follow input order. *)
  Alcotest.(check (list int))
    "assignment in input order"
    (List.map (fun (t : Task.t) -> t.Task.id) sys)
    (List.map (fun (_, (t : Task.t)) -> t.Task.id) assignment);
  List.iter
    (fun (c, _) -> check_bool "valid channel" true (c >= 0 && c < 3))
    assignment

let test_channels_plan_shards_verify () =
  let sys = List.init 16 (fun i -> Task.unit ~id:i ~b:(16 + (8 * (i mod 4)))) in
  let t = Channels.plan ~channels:4 sys in
  check_bool "nothing shed" true (t.Channels.shed = []);
  check_int "four shards" 4 (List.length t.Channels.shards);
  List.iter
    (fun (s : Channels.shard) ->
      check_bool
        (Printf.sprintf "channel %d plan verifies" s.Channels.channel)
        true
        (s.Channels.tasks = []
        || P.Verify.satisfies_plan s.Channels.plan s.Channels.tasks))
    t.Channels.shards

let test_channels_sheds_infeasible () =
  (* Three always-hungry tasks on one channel: pc(1,1) twice cannot fit. *)
  let sys = [ Task.unit ~id:0 ~b:1; Task.unit ~id:1 ~b:1; Task.unit ~id:2 ~b:1 ] in
  let t = Channels.plan ~channels:2 sys in
  check_int "one shed" 1 (List.length t.Channels.shed);
  check_bool "shards serve the rest" true
    (List.for_all
       (fun (s : Channels.shard) -> List.length s.Channels.tasks = 1)
       t.Channels.shards)

let test_channels_bad_args () =
  Alcotest.check_raises "channels < 1"
    (Invalid_argument "Channels.partition: channels must be >= 1") (fun () ->
      ignore (Channels.partition ~channels:0 [ Task.unit ~id:0 ~b:2 ]))

(* qcheck: K = 1 plans match the single-channel scheduler byte for byte
   on random schedulable systems. *)
let prop_channels_k1_matches_scheduler =
  QCheck2.Test.make ~name:"channels=1 == Scheduler.plan byte-for-byte"
    ~count:100
    QCheck2.Gen.(pair (int_range 2 12) (int_bound 1_000_000))
    (fun (n, seed) ->
      let sys = Gen.unit_system_with_density ~seed ~n ~max_b:64 ~target:0.5 in
      match Scheduler.plan sys with
      | None -> QCheck2.assume_fail ()
      | Some single ->
          let t = Channels.plan ~channels:1 sys in
          let shard = List.hd t.Channels.shards in
          render_schedule (Plan.to_schedule single)
          = render_schedule (Plan.to_schedule shard.Channels.plan))

(* qcheck: every task lands on exactly one channel (or is shed), and for
   inputs inside the LPT bound — individual densities <= 1/3, total
   <= K/2 — every shard stays within the Kawamura 5/6 guarantee with
   nothing shed. *)
let prop_channels_partition_balanced =
  QCheck2.Test.make
    ~name:"LPT partition: exact cover, 5/6 bound inside LPT budget"
    ~count:100
    QCheck2.Gen.(triple (int_range 2 6) (int_range 4 24) (int_bound 1_000_000))
    (fun (k, n, seed) ->
      (* Unit tasks with windows >= 3 (density <= 1/3 each), admitted
         only while the running total stays within the K/2 LPT budget. *)
      let st = Random.State.make [| seed |] in
      let budget = Q.make k 2 in
      let sys =
        List.init n (fun i -> Task.unit ~id:i ~b:(3 + Random.State.int st 46))
        |> List.fold_left
             (fun (acc, total) t ->
               let total' = Q.add total (Task.density t) in
               if Q.( <= ) total' budget then (t :: acc, total') else (acc, total))
             ([], Q.zero)
        |> fst |> List.rev
      in
      QCheck2.assume (sys <> []);
      let assignment, shed = Channels.partition ~channels:k sys in
      let seen = Hashtbl.create 16 in
      List.iter
        (fun (c, (t : Task.t)) ->
          if Hashtbl.mem seen t.Task.id then
            QCheck2.Test.fail_report "task on two channels";
          Hashtbl.replace seen t.Task.id c)
        assignment;
      List.iter
        (fun (t : Task.t) ->
          if Hashtbl.mem seen t.Task.id then
            QCheck2.Test.fail_report "shed task also assigned")
        shed;
      if
        List.length assignment + List.length shed <> List.length sys
      then QCheck2.Test.fail_report "partition lost a task";
      (* The LPT bound: max load <= avg + (1 - 1/k) * max item
         <= 1/2 + 1/3 = 5/6 when total <= k/2 and items <= 1/3. *)
      (if
         shed = []
         && Q.( <= ) (Task.system_density sys) (Q.make k 2)
         && List.for_all
              (fun (t : Task.t) -> Q.( <= ) (Task.density t) (Q.make 1 3))
              sys
       then
         let load = Array.make k Q.zero in
         List.iter
           (fun (c, t) -> load.(c) <- Q.add load.(c) (Task.density t))
           assignment;
         Array.iter
           (fun l ->
             if Q.( > ) l (Q.make 5 6) then
               QCheck2.Test.fail_report "shard beyond 5/6 inside LPT budget")
           load);
      true)

(* ------------------------------------------------------------------ *)
(* Shard: file-level designs                                          *)
(* ------------------------------------------------------------------ *)

let specs_small () =
  [
    File_spec.make ~name:"alerts" ~id:0 ~blocks:2 ~latency:8 ~tolerance:1 ();
    File_spec.make ~name:"map" ~id:1 ~blocks:4 ~latency:16 ~tolerance:0 ();
    File_spec.make ~name:"feed" ~id:2 ~blocks:2 ~latency:16 ~tolerance:0 ();
  ]

let test_shard_k1_is_program_pinwheel () =
  let specs = specs_small () in
  let bandwidth = 2 in
  match
    (Shard.design ~channels:1 ~bandwidth specs, Program.pinwheel ~bandwidth specs)
  with
  | Ok t, Some reference ->
      check_int "one channel" 1 (Array.length t.Shard.channels);
      check_bool "nothing shed" true (t.Shard.shed = []);
      Alcotest.(check string)
        "program bytes identical" (render_program reference)
        (render_program t.Shard.channels.(0).Shard.program)
  | Error e, _ -> Alcotest.failf "design failed: %s" e
  | Ok _, None -> Alcotest.fail "reference pipeline failed"

let test_shard_k1_block_at_matches_program () =
  let specs = specs_small () in
  let bandwidth = 2 in
  match
    (Shard.design ~channels:1 ~bandwidth specs, Program.pinwheel ~bandwidth specs)
  with
  | Ok t, Some reference ->
      for slot = 0 to (2 * Program.period reference) - 1 do
        check_bool "block_at agrees" true
          (Shard.block_at t ~channel:0 slot = Program.block_at reference slot)
      done
  | _ -> Alcotest.fail "design failed"

let test_shard_spread_covers_files () =
  let specs = specs_small () in
  match Shard.design ~channels:2 ~bandwidth:2 specs with
  | Error e -> Alcotest.failf "design failed: %s" e
  | Ok t ->
      check_bool "nothing shed" true (t.Shard.shed = []);
      List.iter
        (fun f ->
          check_int
            (Printf.sprintf "file %d on one channel" f.File_spec.id)
            1
            (List.length (Shard.channels_of t f.File_spec.id)))
        specs;
      (* Per-channel schedules satisfy the per-channel sub-tasks. *)
      Array.iter
        (fun (c : Shard.channel) ->
          check_bool "channel verifies" true
            (c.Shard.tasks = []
            || P.Verify.satisfies
                 (Program.schedule c.Shard.program)
                 c.Shard.tasks))
        t.Shard.channels

let test_shard_striping_partitions_pieces () =
  let specs =
    [
      File_spec.make ~name:"a" ~id:0 ~blocks:3 ~latency:12 ~tolerance:3 ();
      File_spec.make ~name:"b" ~id:1 ~blocks:2 ~latency:12 ~tolerance:2 ();
    ]
  in
  match Shard.design ~stripe:2 ~channels:2 ~bandwidth:2 specs with
  | Error e -> Alcotest.failf "design failed: %s" e
  | Ok t ->
      check_bool "nothing shed" true (t.Shard.shed = []);
      List.iter
        (fun f ->
          let id = f.File_spec.id in
          let ps = Shard.placements_of t id in
          check_int "striped over two channels" 2 (List.length ps);
          let all =
            List.concat_map
              (fun (p : Shard.placement) -> Array.to_list p.Shard.pieces)
              ps
          in
          (* The union of channel shares is exactly {0..N-1}, disjointly. *)
          Alcotest.(check (list int))
            "pieces partition the capacity"
            (List.init f.File_spec.capacity Fun.id)
            (List.sort compare all);
          check_int "no duplicate piece" (List.length all)
            (List.length (List.sort_uniq compare all));
          (* tolerance >= max share here, so one channel can die. *)
          check_bool "outage tolerant" true (Shard.outage_tolerant t id))
        specs

let test_shard_outage_intolerant_without_stripe () =
  let specs = specs_small () in
  match Shard.design ~channels:2 ~bandwidth:2 specs with
  | Error e -> Alcotest.failf "design failed: %s" e
  | Ok t ->
      List.iter
        (fun f ->
          check_bool "single placement is not outage tolerant" false
            (Shard.outage_tolerant t f.File_spec.id))
        specs

let test_shard_sheds_when_overloaded () =
  (* Density 4 x 1/2 = 2 over one channel: roughly half must go. *)
  let specs =
    List.init 4 (fun i ->
        File_spec.make ~id:i ~blocks:2 ~latency:4 ~tolerance:0 ())
  in
  match Shard.design ~channels:1 ~bandwidth:1 specs with
  | Error e -> Alcotest.failf "design failed: %s" e
  | Ok t ->
      check_bool "some files shed" true (t.Shard.shed <> []);
      check_bool "some files served" true (t.Shard.specs <> []);
      check_int "partition of the input" 4
        (List.length t.Shard.specs + List.length t.Shard.shed)

let test_shard_more_channels_serve_more () =
  (* 8 half-density files: 1 channel serves ~2, 4 channels serve all. *)
  let specs =
    List.init 8 (fun i ->
        File_spec.make ~id:i ~blocks:2 ~latency:8 ~tolerance:0 ())
  in
  let served k =
    match Shard.design ~channels:k ~bandwidth:1 specs with
    | Ok t -> List.length t.Shard.specs
    | Error e -> Alcotest.failf "design failed: %s" e
  in
  check_bool "K=4 serves more than K=1" true (served 4 > served 1);
  check_int "K=4 serves everything" 8 (served 4)

let test_shard_bad_args () =
  Alcotest.check_raises "channels < 1"
    (Invalid_argument "Shard.design: channels must be >= 1") (fun () ->
      ignore (Shard.design ~channels:0 ~bandwidth:1 (specs_small ())));
  Alcotest.check_raises "stripe < 1"
    (Invalid_argument "Shard.design: stripe must be >= 1") (fun () ->
      ignore (Shard.design ~stripe:0 ~channels:2 ~bandwidth:1 (specs_small ())));
  check_bool "empty files" true
    (Result.is_error (Shard.design ~channels:2 ~bandwidth:1 []))

(* qcheck: global piece indices aired by a striped channel all share the
   stripe residue, and every admitted file's shares are disjoint across
   channels and cover its capacity. *)
let prop_shard_shares_disjoint_cover =
  QCheck2.Test.make ~name:"stripe shares partition each file's capacity"
    ~count:60
    QCheck2.Gen.(triple (int_range 1 3) (int_range 2 4) (int_bound 1_000_000))
    (fun (stripe, channels, seed) ->
      let st = Random.State.make [| seed |] in
      let specs =
        List.init
          (2 + Random.State.int st 4)
          (fun i ->
            let blocks = 1 + Random.State.int st 3 in
            let tolerance = Random.State.int st 3 in
            File_spec.make ~id:i ~blocks ~tolerance
              ~latency:(8 * (1 + Random.State.int st 3))
              ())
      in
      match Shard.design ~stripe ~channels ~bandwidth:2 specs with
      | Error _ -> false
      | Ok t ->
          List.for_all
            (fun f ->
              let ps = Shard.placements_of t f.File_spec.id in
              ps = []
              || begin
                   let all =
                     List.concat_map
                       (fun (p : Shard.placement) ->
                         Array.to_list p.Shard.pieces)
                       ps
                   in
                   let sorted = List.sort compare all in
                   sorted = List.init f.File_spec.capacity Fun.id
                   && List.length (List.sort_uniq compare ps)
                      = List.length ps
                 end)
            specs)

(* ------------------------------------------------------------------ *)
(* Multi: tuner clients over a sharded design                         *)
(* ------------------------------------------------------------------ *)

module Multi = Pindisk_sim.Multi
module Cohort = Pindisk_sim.Cohort
module Engine = Pindisk_sim.Engine
module Workload = Pindisk_sim.Workload
module Fault = Pindisk_sim.Fault
module Shardcheck = Pindisk_check.Shardcheck
module Ladder = Pindisk_adapt.Ladder

let design_exn ?stripe ~channels ~bandwidth specs =
  match Shard.design ?stripe ~channels ~bandwidth specs with
  | Ok t -> t
  | Error e -> Alcotest.failf "design: %s" e

let clean ~channel:_ ~seed:_ = Fault.none ()

let test_multi_clean_channels_complete () =
  let specs =
    List.init 4 (fun i ->
        File_spec.make ~id:i ~blocks:2 ~latency:8 ~tolerance:0 ())
  in
  let design = design_exn ~channels:2 ~bandwidth:1 specs in
  check_bool "nothing shed" true (design.Shard.shed = []);
  let trace =
    List.map
      (fun (f : File_spec.t) ->
        {
          Workload.issued = 0;
          file = f.File_spec.id;
          needed = f.File_spec.blocks;
          deadline = 64;
        })
      specs
  in
  let r = Multi.run ~design ~tuners:1 ~fault:clean ~seed:1 trace in
  check_int "all completed" (List.length trace) r.Engine.completed;
  check_int "none missed" 0 r.Engine.missed

let test_multi_shed_requests_miss () =
  (* Three density-1/2 files on one channel: at least one must be shed,
     and its clients retire as missed while the served files' clients
     complete. *)
  let specs =
    List.init 3 (fun i ->
        File_spec.make ~id:i ~blocks:2 ~latency:4 ~tolerance:0 ())
  in
  let design = design_exn ~channels:1 ~bandwidth:1 specs in
  check_bool "someone shed" true (design.Shard.shed <> []);
  let served = List.length design.Shard.specs in
  let trace =
    List.map
      (fun (f : File_spec.t) ->
        { Workload.issued = 0; file = f.File_spec.id; needed = 2; deadline = 64 })
      specs
  in
  let r = Multi.run ~design ~tuners:1 ~fault:clean ~seed:1 trace in
  check_int "served files complete" served r.Engine.completed;
  check_int "shed files miss" (3 - served) r.Engine.missed

let test_multi_tuner_budget_matters () =
  (* One file striped over both channels with zero tolerance: a single
     tuner sees only its best channel's share (one piece of two) and
     must miss; two tuners pool the disjoint shares and complete. *)
  let specs = [ File_spec.make ~id:0 ~blocks:2 ~latency:8 ~tolerance:0 () ] in
  let design = design_exn ~stripe:2 ~channels:2 ~bandwidth:1 specs in
  check_int "two placements" 2 (List.length (Shard.placements_of design 0));
  let trace = [ { Workload.issued = 0; file = 0; needed = 2; deadline = 64 } ] in
  let run tuners = Multi.run ~design ~tuners ~fault:clean ~seed:1 trace in
  check_int "one tuner cannot cover the stripe" 1 (run 1).Engine.missed;
  check_int "two tuners collect both pieces" 1 (run 2).Engine.completed

let test_multi_population_lossless_completes () =
  let specs =
    List.init 4 (fun i ->
        File_spec.make ~id:i ~blocks:2 ~latency:8 ~tolerance:0 ())
  in
  let design = design_exn ~channels:2 ~bandwidth:1 specs in
  let members =
    List.map
      (fun (f : File_spec.t) ->
        {
          Multi.issued = 0;
          file = f.File_spec.id;
          needed = 2;
          deadline = 64;
          weight = 250;
        })
      specs
  in
  let r =
    Multi.run_population ~design ~tuners:1
      ~model:(fun ~channel:_ -> Cohort.Bernoulli { p = 0.0 })
      ~seed:3 members
  in
  check_int "all weighted clients complete" 1000 r.Engine.completed;
  check_int "none missed" 0 r.Engine.missed

(* ------------------------------------------------------------------ *)
(* Shardcheck: independent certification                              *)
(* ------------------------------------------------------------------ *)

let test_shardcheck_certifies_design () =
  let specs =
    List.init 6 (fun i ->
        File_spec.make ~id:i ~blocks:2 ~latency:16 ~tolerance:1 ())
  in
  let design = design_exn ~channels:3 ~bandwidth:1 specs in
  let report = Shardcheck.run design in
  check_bool "certified" true (Shardcheck.ok report);
  check_bool "no problems" true (Shardcheck.problems report = []);
  check_int "three channel rows" 3 (List.length report.Shardcheck.channels)

let test_shardcheck_detects_tampering () =
  let specs =
    List.init 4 (fun i ->
        File_spec.make ~id:i ~blocks:2 ~latency:8 ~tolerance:0 ())
  in
  let design = design_exn ~channels:2 ~bandwidth:1 specs in
  (* Corrupt a placement in place — duplicate a piece index so the share
     no longer covers the file. The checker recounts from the placement
     map, so it must notice without any hint from the optimizer. *)
  (match design.Shard.placements with
  | p :: _ ->
      p.Shard.pieces.(Array.length p.Shard.pieces - 1) <- p.Shard.pieces.(0)
  | [] -> Alcotest.fail "no placements");
  let report = Shardcheck.run design in
  check_bool "tamper detected" false (Shardcheck.ok report);
  check_bool "problem reported" true (Shardcheck.problems report <> [])

(* ------------------------------------------------------------------ *)
(* Ladder.evacuate: the channel-migration rung                        *)
(* ------------------------------------------------------------------ *)

let test_evacuate_moves_every_share () =
  let specs =
    List.init 6 (fun i ->
        File_spec.make ~id:i ~blocks:2 ~latency:24 ~tolerance:0 ())
  in
  let design = design_exn ~channels:3 ~bandwidth:1 specs in
  let doomed =
    List.filter
      (fun (p : Shard.placement) -> p.Shard.channel = 0)
      design.Shard.placements
  in
  check_bool "channel 0 carries shares" true (doomed <> []);
  let rungs, stranded = Ladder.evacuate design ~channel:0 in
  check_int "one migration per share" (List.length doomed) (List.length rungs);
  check_bool "nothing stranded" true (stranded = []);
  List.iter
    (fun r ->
      match r with
      | Ladder.Migrate { from_channel; to_channel; _ } ->
          check_int "from the failing channel" 0 from_channel;
          check_bool "to a survivor" true (to_channel <> 0)
      | _ -> Alcotest.fail "expected Migrate")
    rungs

let test_evacuate_strands_unabsorbable () =
  (* Two density-3/4 files on two channels: the survivor cannot absorb
     the evacuated share (3/2 > 1 is provably infeasible), so the rung
     reports it stranded instead of proposing a doomed migration. *)
  let specs =
    List.init 2 (fun i ->
        File_spec.make ~id:i ~blocks:3 ~latency:4 ~tolerance:0 ())
  in
  let design = design_exn ~channels:2 ~bandwidth:1 specs in
  let on0 =
    List.filter_map
      (fun (p : Shard.placement) ->
        if p.Shard.channel = 0 then Some p.Shard.file else None)
      design.Shard.placements
  in
  check_bool "channel 0 carries a file" true (on0 <> []);
  let rungs, stranded = Ladder.evacuate design ~channel:0 in
  check_bool "no migrations possible" true (rungs = []);
  Alcotest.(check (list int)) "stranded files" on0 (List.sort compare stranded)

let () =
  Alcotest.run "shard"
    [
      ( "channels",
        [
          Alcotest.test_case "K=1 identity" `Quick test_channels_k1_identity;
          Alcotest.test_case "partition covers" `Quick
            test_channels_partition_covers;
          Alcotest.test_case "shard plans verify" `Quick
            test_channels_plan_shards_verify;
          Alcotest.test_case "sheds infeasible" `Quick
            test_channels_sheds_infeasible;
          Alcotest.test_case "bad args" `Quick test_channels_bad_args;
        ] );
      ( "channels-properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_channels_k1_matches_scheduler;
            prop_channels_partition_balanced;
          ] );
      ( "shard",
        [
          Alcotest.test_case "K=1 == Program.pinwheel" `Quick
            test_shard_k1_is_program_pinwheel;
          Alcotest.test_case "K=1 block_at" `Quick
            test_shard_k1_block_at_matches_program;
          Alcotest.test_case "spread covers files" `Quick
            test_shard_spread_covers_files;
          Alcotest.test_case "striping partitions pieces" `Quick
            test_shard_striping_partitions_pieces;
          Alcotest.test_case "no stripe, no outage tolerance" `Quick
            test_shard_outage_intolerant_without_stripe;
          Alcotest.test_case "sheds when overloaded" `Quick
            test_shard_sheds_when_overloaded;
          Alcotest.test_case "more channels serve more" `Quick
            test_shard_more_channels_serve_more;
          Alcotest.test_case "bad args" `Quick test_shard_bad_args;
        ] );
      ( "shard-properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_shard_shares_disjoint_cover ] );
      ( "multi",
        [
          Alcotest.test_case "clean channels complete" `Quick
            test_multi_clean_channels_complete;
          Alcotest.test_case "shed requests miss" `Quick
            test_multi_shed_requests_miss;
          Alcotest.test_case "tuner budget matters" `Quick
            test_multi_tuner_budget_matters;
          Alcotest.test_case "lossless population completes" `Quick
            test_multi_population_lossless_completes;
        ] );
      ( "shardcheck",
        [
          Alcotest.test_case "certifies a sound design" `Quick
            test_shardcheck_certifies_design;
          Alcotest.test_case "detects tampering" `Quick
            test_shardcheck_detects_tampering;
        ] );
      ( "evacuate",
        [
          Alcotest.test_case "moves every share" `Quick
            test_evacuate_moves_every_share;
          Alcotest.test_case "strands the unabsorbable" `Quick
            test_evacuate_strands_unabsorbable;
        ] );
    ]
