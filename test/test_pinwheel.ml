module P = Pindisk_pinwheel
module Task = P.Task
module Schedule = P.Schedule
module Verify = P.Verify
module Exact = P.Exact
module Harmonic = P.Harmonic
module Specialize = P.Specialize
module Two_chain = P.Two_chain
module Scheduler = P.Scheduler
module Gen = P.Gen
module Q = Pindisk_util.Q

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let sched_of_list l = Schedule.make (Array.of_list l)

(* ------------------------------------------------------------------ *)
(* Task                                                               *)
(* ------------------------------------------------------------------ *)

let test_task_make () =
  let t = Task.make ~id:3 ~a:2 ~b:5 in
  check_int "id" 3 t.Task.id;
  Alcotest.(check string) "density 2/5" "2/5" (Q.to_string (Task.density t));
  Alcotest.check_raises "a > b" (Invalid_argument "Task.make: need 1 <= a <= b")
    (fun () -> ignore (Task.make ~id:0 ~a:3 ~b:2));
  Alcotest.check_raises "a = 0" (Invalid_argument "Task.make: need 1 <= a <= b")
    (fun () -> ignore (Task.make ~id:0 ~a:0 ~b:2));
  Alcotest.check_raises "neg id" (Invalid_argument "Task.make: negative id")
    (fun () -> ignore (Task.make ~id:(-1) ~a:1 ~b:2))

let test_system_density () =
  (* Example 1 of the paper: {(1,1,2), (2,1,3)} has density 5/6. *)
  let sys = [ Task.unit ~id:1 ~b:2; Task.unit ~id:2 ~b:3 ] in
  Alcotest.(check string) "5/6" "5/6" (Q.to_string (Task.system_density sys));
  check_bool "unit system" true (Task.is_unit_system sys);
  check_bool "well-formed" true (Task.check_system sys = Ok ())

let test_duplicate_ids () =
  let sys = [ Task.unit ~id:1 ~b:2; Task.unit ~id:1 ~b:3 ] in
  check_bool "rejected" true (Result.is_error (Task.check_system sys))

let test_decompose_units () =
  let sys = [ Task.make ~id:7 ~a:3 ~b:10; Task.unit ~id:8 ~b:4 ] in
  Alcotest.(check (list (pair int int)))
    "copies" [ (7, 10); (7, 10); (7, 10); (8, 4) ] (Task.decompose_units sys)

(* ------------------------------------------------------------------ *)
(* Schedule                                                           *)
(* ------------------------------------------------------------------ *)

let test_schedule_basics () =
  let s = sched_of_list [ 1; 2; 1; Schedule.idle; 2 ] in
  check_int "period" 5 (Schedule.period s);
  check_int "slot 0" 1 (Schedule.task_at s 0);
  check_int "wraps" 1 (Schedule.task_at s 5);
  Alcotest.(check (list int)) "occurrences of 1" [ 0; 2 ] (Schedule.occurrences s 1);
  check_int "count 2" 2 (Schedule.count s 2);
  Alcotest.(check (list int)) "ids" [ 1; 2 ] (Schedule.task_ids s);
  Alcotest.(check string) "utilization 4/5" "4/5" (Q.to_string (Schedule.utilization s))

let test_max_gap () =
  let s = sched_of_list [ 1; 2; 1; Schedule.idle; 2 ] in
  (* Task 1 occurs at 0 and 2 (period 5): gaps 2 and 3. *)
  Alcotest.(check (option int)) "gap of 1" (Some 3) (Schedule.max_gap s 1);
  (* Task 2 occurs at 1 and 4: gaps 3 and 2. *)
  Alcotest.(check (option int)) "gap of 2" (Some 3) (Schedule.max_gap s 2);
  Alcotest.(check (option int)) "absent task" None (Schedule.max_gap s 9);
  let single = sched_of_list [ 7; Schedule.idle; Schedule.idle ] in
  Alcotest.(check (option int)) "single occurrence" (Some 3) (Schedule.max_gap single 7)

let test_rotate () =
  let s = sched_of_list [ 1; 2; 3 ] in
  let r = Schedule.rotate s 1 in
  check_int "rotated slot 0" 2 (Schedule.task_at r 0);
  check_int "rotated slot 2" 1 (Schedule.task_at r 2);
  let r2 = Schedule.rotate s (-1) in
  check_int "negative rotation" 3 (Schedule.task_at r2 0)

let test_schedule_validation () =
  Alcotest.check_raises "empty" (Invalid_argument "Schedule.make: empty period")
    (fun () -> ignore (Schedule.make [||]));
  Alcotest.check_raises "bad value" (Invalid_argument "Schedule.make: bad slot value")
    (fun () -> ignore (Schedule.make [| -2 |]))

(* ------------------------------------------------------------------ *)
(* Verify                                                             *)
(* ------------------------------------------------------------------ *)

let test_verify_example1 () =
  (* Paper, Example 1: 1,2,1,2,... satisfies {(1,1,2), (2,1,3)}. *)
  let s = sched_of_list [ 1; 2 ] in
  check_bool "satisfies" true
    (Verify.satisfies s [ Task.unit ~id:1 ~b:2; Task.unit ~id:2 ~b:3 ])

let test_verify_example1b () =
  (* Paper, Example 1, second instance: 1,2,1,X,2,1,2,1,X,2,... wait --
     the paper's schedule has period 5: 1,2,1,X,2 repeated? Checking:
     {(1,2,5), (2,1,3)}: schedule "1 2 1 X 2" gives task 1 slots {0,2}:
     every 5-window has 2; task 2 slots {1,4}: gaps 3,2 <= 3. *)
  let s = sched_of_list [ 1; 2; 1; Schedule.idle; 2 ] in
  check_bool "satisfies multi-unit" true
    (Verify.satisfies s [ Task.make ~id:1 ~a:2 ~b:5; Task.unit ~id:2 ~b:3 ])

let test_verify_violation () =
  let s = sched_of_list [ 1; 1; 2 ] in
  (match Verify.check_pc s ~task:2 ~a:1 ~b:2 with
  | None -> Alcotest.fail "expected a violation"
  | Some v ->
      check_int "task" 2 v.Verify.task;
      check_int "found" 0 v.Verify.found);
  check_bool "system check reports it" true
    (List.length (Verify.check_system s [ Task.unit ~id:1 ~b:2; Task.unit ~id:2 ~b:2 ]) = 1)

let test_verify_window_longer_than_period () =
  let s = sched_of_list [ 1; 2 ] in
  (* Task 1 appears 3 times in any 6-window, 3 >= 3. *)
  check_bool "long window ok" true (Verify.check_pc s ~task:1 ~a:3 ~b:6 = None);
  check_bool "long window too demanding" true (Verify.check_pc s ~task:1 ~a:4 ~b:6 <> None);
  check_int "min in window 7" 3 (Verify.min_in_window s ~task:1 ~window:7)

let test_verify_idle_never_counts () =
  let s = sched_of_list [ Schedule.idle; 1 ] in
  check_bool "idle not a task" true (Verify.check_pc s ~task:1 ~a:1 ~b:2 = None);
  check_int "min idle window" 0 (Verify.min_in_window s ~task:Schedule.idle ~window:1 |> min 0)

(* Brute-force cross-check of the verifier: count every window by direct
   scanning of an unrolled schedule. *)
let prop_verify_matches_brute_force =
  QCheck2.Test.make ~name:"verifier agrees with brute-force window counting" ~count:200
    QCheck2.Gen.(
      triple (int_range 1 8) (int_range 1 12) (int_bound 1_000_000))
    (fun (period, window, seed) ->
      let rng = Random.State.make [| seed |] in
      let slots =
        Array.init period (fun _ ->
            let v = Random.State.int rng 4 in
            if v = 3 then Schedule.idle else v)
      in
      let sched = Schedule.make slots in
      let brute task =
        (* Unroll enough periods that every distinct window position with
           full length fits. *)
        let len = (2 * period) + window in
        let unrolled = Array.init len (fun t -> Schedule.task_at sched t) in
        let best = ref max_int in
        for start = 0 to period - 1 do
          let c = ref 0 in
          for t = start to start + window - 1 do
            if unrolled.(t) = task then incr c
          done;
          if !c < !best then best := !c
        done;
        !best
      in
      List.for_all
        (fun task -> Verify.min_in_window sched ~task ~window = brute task)
        [ 0; 1; 2 ])

let prop_rotate_preserves_satisfaction =
  QCheck2.Test.make ~name:"rotation preserves satisfaction" ~count:100
    QCheck2.Gen.(pair (int_range 1 5) (int_bound 1_000_000))
    (fun (n, seed) ->
      let sys = Gen.unit_system_with_density ~seed ~n ~max_b:16 ~target:0.6 in
      match sys with
      | [] -> true
      | _ -> (
          match Scheduler.schedule sys with
          | None -> true
          | Some sched ->
              let rng = Random.State.make [| seed |] in
              let k = Random.State.int rng (2 * Schedule.period sched) in
              Verify.satisfies (Schedule.rotate sched k) sys))

let prop_map_tasks_preserves_counts =
  QCheck2.Test.make ~name:"map_tasks preserves total occurrences" ~count:100
    QCheck2.Gen.(pair (int_range 2 10) (int_bound 1_000_000))
    (fun (period, seed) ->
      let rng = Random.State.make [| seed |] in
      let slots =
        Array.init period (fun _ ->
            let v = Random.State.int rng 5 in
            if v = 4 then Schedule.idle else v)
      in
      let sched = Schedule.make slots in
      (* Merge ids 0-3 onto id 0; counts must add. *)
      let merged = Schedule.map_tasks sched (fun _ -> 0) in
      let before =
        List.fold_left (fun acc i -> acc + Schedule.count sched i) 0 [ 0; 1; 2; 3 ]
      in
      Schedule.count merged 0 = before)

(* ------------------------------------------------------------------ *)
(* Exact                                                              *)
(* ------------------------------------------------------------------ *)

let test_exact_example1 () =
  match Exact.decide [ Task.unit ~id:1 ~b:2; Task.unit ~id:2 ~b:3 ] with
  | Exact.Feasible s ->
      check_bool "verified" true
        (Verify.satisfies s [ Task.unit ~id:1 ~b:2; Task.unit ~id:2 ~b:3 ])
  | _ -> Alcotest.fail "example 1 must be feasible"

let test_exact_infeasible_third_example () =
  (* Paper, Example 1 (third instance): {(1,1,2),(2,1,3),(3,1,n)} is
     infeasible for every finite n; check a few n exhaustively. *)
  List.iter
    (fun n ->
      let sys = [ Task.unit ~id:1 ~b:2; Task.unit ~id:2 ~b:3; Task.unit ~id:3 ~b:n ] in
      check_bool (Printf.sprintf "n=%d infeasible" n) true (Exact.decide sys = Exact.Infeasible))
    [ 6; 10; 20; 35 ]

let test_exact_density_one_pair () =
  (* Two tasks with density exactly 1: {(1,1,2),(2,1,2)}. *)
  match Exact.decide [ Task.unit ~id:1 ~b:2; Task.unit ~id:2 ~b:2 ] with
  | Exact.Feasible _ -> ()
  | _ -> Alcotest.fail "alternating schedule exists"

let test_exact_two_task_theorem () =
  (* Holte et al.: every two-task (unit) system with density <= 1 is
     schedulable. Exhaust small windows. *)
  for b1 = 2 to 9 do
    for b2 = b1 to 12 do
      if Q.( <= ) (Q.add (Q.make 1 b1) (Q.make 1 b2)) Q.one then
        match Exact.decide [ Task.unit ~id:0 ~b:b1; Task.unit ~id:1 ~b:b2 ] with
        | Exact.Feasible _ -> ()
        | Exact.Infeasible ->
            Alcotest.failf "two-task (%d,%d) with density <= 1 reported infeasible" b1 b2
        | Exact.Too_large -> Alcotest.fail "too large unexpectedly"
    done
  done

let test_exact_density_above_one_infeasible () =
  check_bool "density > 1 infeasible" true
    (Exact.decide [ Task.unit ~id:0 ~b:2; Task.unit ~id:1 ~b:2; Task.unit ~id:2 ~b:5 ]
    = Exact.Infeasible)

let test_exact_too_large () =
  let sys = List.init 12 (fun id -> Task.unit ~id ~b:9) in
  check_bool "cap respected" true (Exact.decide ~max_states:1000 sys = Exact.Too_large)

let test_exact_rejects_multi_unit () =
  Alcotest.check_raises "multi-unit rejected"
    (Invalid_argument "Exact.decide: only single-unit systems (a = 1) are supported")
    (fun () -> ignore (Exact.decide [ Task.make ~id:0 ~a:2 ~b:5 ]))

let test_exact_lin_lin_boundary () =
  (* Lin & Lin: three-task systems are schedulable up to density 5/6, and
     {(1,2),(2,3),(3,n)} sits at 5/6 + 1/n just above. A concrete feasible
     three-task system at exactly 5/6: {2, 4, 12}: 1/2+1/4+1/12 = 5/6. *)
  match Exact.decide [ Task.unit ~id:0 ~b:2; Task.unit ~id:1 ~b:4; Task.unit ~id:2 ~b:12 ] with
  | Exact.Feasible _ -> ()
  | _ -> Alcotest.fail "harmonic 2/4/12 must be feasible"

(* ------------------------------------------------------------------ *)
(* Exact_multi                                                        *)
(* ------------------------------------------------------------------ *)

module Exact_multi = P.Exact_multi

let test_exact_multi_paper_example () =
  (* {(1,2,5),(2,1,3)} from the paper's Example 1. *)
  let sys = [ Task.make ~id:1 ~a:2 ~b:5; Task.unit ~id:2 ~b:3 ] in
  match Exact_multi.decide sys with
  | Exact_multi.Feasible s -> check_bool "verifies" true (Verify.satisfies s sys)
  | _ -> Alcotest.fail "paper example must be feasible"

let test_exact_multi_density_bound () =
  check_bool "density > 1 infeasible" true
    (Exact_multi.decide [ Task.make ~id:0 ~a:3 ~b:4; Task.make ~id:1 ~a:2 ~b:4 ]
    = Exact_multi.Infeasible)

let test_exact_multi_agrees_with_unit_exact () =
  (* On unit systems both solvers must agree. *)
  for b1 = 2 to 5 do
    for b2 = b1 to 6 do
      for b3 = b2 to 6 do
        let sys =
          [ Task.unit ~id:0 ~b:b1; Task.unit ~id:1 ~b:b2; Task.unit ~id:2 ~b:b3 ]
        in
        let unit_answer = Exact.is_feasible sys in
        let multi_answer = Exact_multi.is_feasible sys in
        if unit_answer <> None && multi_answer <> None then
          check_bool
            (Printf.sprintf "agree on {%d,%d,%d}" b1 b2 b3)
            true (unit_answer = multi_answer)
      done
    done
  done

let test_exact_multi_saturated () =
  (* (b, b) tasks demand every slot; two of them cannot coexist. *)
  (match Exact_multi.decide [ Task.make ~id:0 ~a:3 ~b:3 ] with
  | Exact_multi.Feasible s -> check_int "period-1-ish full schedule" 0 (Schedule.count s Schedule.idle)
  | _ -> Alcotest.fail "a single saturated task is feasible");
  check_bool "two saturated tasks" true
    (Exact_multi.decide [ Task.make ~id:0 ~a:2 ~b:2; Task.make ~id:1 ~a:2 ~b:2 ]
    = Exact_multi.Infeasible)

let test_exact_multi_too_large () =
  let sys = List.init 10 (fun id -> Task.make ~id ~a:2 ~b:8) in
  check_bool "cap respected" true
    (Exact_multi.decide ~max_states:1000 sys = Exact_multi.Too_large)

let prop_exact_multi_never_contradicts_heuristics =
  QCheck2.Test.make ~name:"heuristic schedules imply multi-unit exact feasibility"
    ~count:60
    QCheck2.Gen.(pair (int_range 2 3) (int_bound 1_000_000))
    (fun (n, seed) ->
      let sys = Gen.multi_unit_system ~seed ~n ~max_a:2 ~max_b:6 ~target:0.95 in
      match sys with
      | [] -> true
      | _ -> (
          match (Scheduler.schedule sys, Exact_multi.decide sys) with
          | Some _, Exact_multi.Infeasible -> false
          | _ -> true))

(* ------------------------------------------------------------------ *)
(* Harmonic                                                           *)
(* ------------------------------------------------------------------ *)

let test_harmonic_pack_simple () =
  match Harmonic.pack ~x:1 [ (0, 2); (1, 4); (2, 4) ] with
  | None -> Alcotest.fail "density 1 chain must pack"
  | Some assignments ->
      let sched = Harmonic.schedule_of ~x:1 assignments in
      check_bool "verifies" true
        (Verify.satisfies sched
           [ Task.unit ~id:0 ~b:2; Task.unit ~id:1 ~b:4; Task.unit ~id:2 ~b:4 ])

let test_harmonic_pack_overfull () =
  check_bool "density > 1 rejected" true
    (Harmonic.pack ~x:1 [ (0, 2); (1, 2); (2, 2) ] = None)

let test_harmonic_pack_base3 () =
  (* Chain base 3: periods 3, 6, 12; density 1/3+1/6+1/12 + 1/3 = 11/12. *)
  match Harmonic.pack ~x:3 [ (0, 3); (1, 6); (2, 12); (3, 3) ] with
  | None -> Alcotest.fail "base-3 chain must pack"
  | Some assignments ->
      let sched = Harmonic.schedule_of ~x:3 assignments in
      check_int "hyperperiod" 12 (Schedule.period sched);
      check_bool "verifies" true
        (Verify.satisfies sched
           [
             Task.unit ~id:0 ~b:3;
             Task.unit ~id:1 ~b:6;
             Task.unit ~id:2 ~b:12;
             Task.unit ~id:3 ~b:3;
           ])

let test_harmonic_rejects_off_chain () =
  Alcotest.check_raises "period 6 not in base-4 chain"
    (Invalid_argument "Harmonic.pack: period 6 is not of the form 4*2^k")
    (fun () -> ignore (Harmonic.pack ~x:4 [ (0, 6) ]))

let test_harmonic_repeated_keys () =
  (* Multi-unit decomposition hands the packer repeated keys. *)
  match Harmonic.pack ~x:1 [ (5, 4); (5, 4); (5, 4); (5, 4) ] with
  | None -> Alcotest.fail "four quarters fit"
  | Some assignments ->
      let sched = Harmonic.schedule_of ~x:1 assignments in
      check_bool "pc(5,4,4) holds" true (Verify.check_pc sched ~task:5 ~a:4 ~b:4 = None)

let prop_harmonic_density_le_one_packs =
  QCheck2.Test.make ~name:"chain instances with density <= 1 always pack" ~count:300
    QCheck2.Gen.(triple (int_range 1 6) (int_range 1 8) (int_bound 1_000_000))
    (fun (x, n, seed) ->
      let rng = Random.State.make [| seed |] in
      (* Draw chain periods, then drop tasks until density <= 1. *)
      let tasks =
        List.init n (fun key -> (key, x * (1 lsl Random.State.int rng 4)))
      in
      let rec trim tasks =
        let d = Q.sum (List.map (fun (_, p) -> Q.make 1 p) tasks) in
        if Q.( <= ) d Q.one then tasks
        else match tasks with [] -> [] | _ :: rest -> trim rest
      in
      let tasks = trim tasks in
      match tasks with
      | [] -> true
      | _ -> (
          match Harmonic.pack ~x tasks with
          | None -> false
          | Some assignments ->
              let sched = Harmonic.schedule_of ~x assignments in
              List.for_all
                (fun (key, p) ->
                  Verify.min_in_window sched ~task:key ~window:p >= 1)
                (List.sort_uniq compare tasks)))

(* ------------------------------------------------------------------ *)
(* Specialize                                                         *)
(* ------------------------------------------------------------------ *)

let test_to_chain () =
  Alcotest.(check (option int)) "b=7 x=1" (Some 4) (Specialize.to_chain ~x:1 7);
  Alcotest.(check (option int)) "b=7 x=3" (Some 6) (Specialize.to_chain ~x:3 7);
  Alcotest.(check (option int)) "b=3 x=3" (Some 3) (Specialize.to_chain ~x:3 3);
  Alcotest.(check (option int)) "b=2 x=3" None (Specialize.to_chain ~x:3 2);
  Alcotest.(check (option int)) "b=24 x=3" (Some 24) (Specialize.to_chain ~x:3 24)

let test_sa_succeeds_example () =
  let sys = [ Task.unit ~id:1 ~b:4; Task.unit ~id:2 ~b:5; Task.unit ~id:3 ~b:9 ] in
  (* density 1/4+1/5+1/9 = 0.561... > 1/2, but specialization to {4,4,8}
     gives 1/4+1/4+1/8 = 5/8 <= 1: Sa succeeds beyond its guarantee. *)
  match Specialize.sa sys with
  | Some sched -> check_bool "verifies" true (Verify.satisfies sched sys)
  | None -> Alcotest.fail "Sa should schedule this"

let test_sx_beats_sa () =
  (* Windows {3, 6, 7}: Sa specializes to {2, 4, 4} with density
     1/2+1/4+1/4 = 1 (packs); Sx can instead use base 3: {3, 6, 6},
     density 1/3+1/6+1/6 = 2/3. Both must verify. *)
  let sys = [ Task.unit ~id:0 ~b:3; Task.unit ~id:1 ~b:6; Task.unit ~id:2 ~b:7 ] in
  (match Specialize.sx_base sys with
  | Some x -> check_int "picks base 3" 3 x
  | None -> Alcotest.fail "sx must find a base");
  match Specialize.sx sys with
  | Some sched -> check_bool "verifies" true (Verify.satisfies sched sys)
  | None -> Alcotest.fail "Sx should schedule this"

let test_sx_multi_unit () =
  (* Paper Example 1 second instance {(1,2,5),(2,1,3)}: density 11/15. *)
  let sys = [ Task.make ~id:1 ~a:2 ~b:5; Task.unit ~id:2 ~b:3 ] in
  match Specialize.sx sys with
  | Some sched -> check_bool "verifies" true (Verify.satisfies sched sys)
  | None -> Alcotest.fail "Sx should schedule the multi-unit example"

let test_specialized_density () =
  let sys = [ Task.unit ~id:0 ~b:3; Task.unit ~id:1 ~b:6; Task.unit ~id:2 ~b:7 ] in
  (match Specialize.specialized_density ~x:3 sys with
  | Some d -> Alcotest.(check string) "2/3" "2/3" (Q.to_string d)
  | None -> Alcotest.fail "x=3 applies");
  check_bool "x too large" true (Specialize.specialized_density ~x:4 sys = None)

let prop_sa_guarantee =
  QCheck2.Test.make ~name:"Sa schedules every unit system with density <= 1/2" ~count:200
    QCheck2.Gen.(pair (int_range 1 8) (int_bound 1_000_000))
    (fun (n, seed) ->
      let sys = Gen.unit_system_with_density ~seed ~n ~max_b:64 ~target:0.5 in
      match sys with
      | [] -> true
      | _ -> (
          match Specialize.sa sys with
          | Some sched -> Verify.satisfies sched sys
          | None -> false))

let prop_sx_dominates_sa =
  QCheck2.Test.make ~name:"Sx succeeds whenever Sa does" ~count:200
    QCheck2.Gen.(pair (int_range 1 8) (int_bound 1_000_000))
    (fun (n, seed) ->
      let sys = Gen.unit_system_with_density ~seed ~n ~max_b:48 ~target:0.8 in
      match sys with
      | [] -> true
      | _ -> (
          match (Specialize.sa sys, Specialize.sx sys) with
          | Some _, None -> false
          | _, Some sched -> Verify.satisfies sched sys
          | None, None -> true))

(* ------------------------------------------------------------------ *)
(* Rotation                                                           *)
(* ------------------------------------------------------------------ *)

module Rotation = P.Rotation

let test_rotation_two_distinct () =
  (* The motivating case from the interface: specialization fails (7
     rounds to 4) but rotation with g = 2 packs three 7-windows into one
     column. *)
  let sys =
    [
      Task.unit ~id:0 ~b:2;
      Task.unit ~id:1 ~b:7;
      Task.unit ~id:2 ~b:7;
      Task.unit ~id:3 ~b:7;
    ]
  in
  check_bool "Sx fails here" true (Specialize.sx sys = None);
  match Rotation.schedule sys with
  | Some sched -> check_bool "rotation verifies" true (Verify.satisfies sched sys)
  | None -> Alcotest.fail "rotation must place the two-distinct system"

let test_rotation_assign () =
  (match Rotation.assign ~g:2 [ (0, 2); (1, 7); (2, 7); (3, 7) ] with
  | Some placements ->
      check_int "all placed" 4 (List.length placements);
      (* Task 0 (window 2) must sit alone: 2 * 2 > 2. *)
      let _, c0, k0 = List.find (fun (key, _, _) -> key = 0) placements in
      check_int "tight task alone" 1 k0;
      ignore c0
  | None -> Alcotest.fail "assignment exists");
  check_bool "overfull rejected" true (Rotation.assign ~g:1 [ (0, 1); (1, 1) ] = None)

let test_rotation_exact_period_semantics () =
  (* Each task in a size-k class is served exactly every g*k slots. *)
  let sys = [ Task.unit ~id:0 ~b:4; Task.unit ~id:1 ~b:4 ] in
  match Rotation.schedule_with_base ~g:1 sys with
  | Some sched ->
      Alcotest.(check (option int)) "gap is exactly 2" (Some 2) (Schedule.max_gap sched 0)
  | None -> Alcotest.fail "two windows of 4 at g=1"

let test_rotation_multi_unit () =
  let sys = [ Task.make ~id:0 ~a:2 ~b:6; Task.unit ~id:1 ~b:9 ] in
  match Rotation.schedule sys with
  | Some sched -> check_bool "verifies" true (Verify.satisfies sched sys)
  | None -> Alcotest.fail "rotation handles multi-unit via decomposition"

let prop_rotation_schedules_verify =
  QCheck2.Test.make ~name:"rotation schedules always verify" ~count:150
    QCheck2.Gen.(pair (int_range 1 7) (int_bound 1_000_000))
    (fun (n, seed) ->
      let sys = Gen.unit_system_with_density ~seed ~n ~max_b:30 ~target:0.9 in
      match sys with
      | [] -> true
      | _ -> (
          match Rotation.schedule sys with
          | Some sched -> Verify.satisfies sched sys
          | None -> true))

let prop_rotation_multiple_structure =
  QCheck2.Test.make ~name:"rotation handles exact-multiple windows at density 1" ~count:80
    QCheck2.Gen.(pair (int_range 2 6) (int_bound 1_000_000))
    (fun (g, seed) ->
      (* g tasks: one with window g*1... fill g columns each with one task
         of window exactly g: density 1, rotation must succeed. *)
      ignore seed;
      let sys = List.init g (fun id -> Task.unit ~id ~b:g) in
      match Rotation.schedule sys with
      | Some sched -> Verify.satisfies sched sys
      | None -> false)

(* ------------------------------------------------------------------ *)
(* Two_chain                                                          *)
(* ------------------------------------------------------------------ *)

let test_virtual_window () =
  (* Split 1/2: every other slot; a window of 5 real slots always holds at
     least 2 dedicated slots. *)
  check_int "c=1 d=2 b=5" 2 (Two_chain.virtual_window { Two_chain.c = 1; d = 2 } 5);
  check_int "c=1 d=2 b=1" 0 (Two_chain.virtual_window { Two_chain.c = 1; d = 2 } 1);
  check_int "c=2 d=3 b=6" 4 (Two_chain.virtual_window { Two_chain.c = 2; d = 3 } 6);
  check_int "full rate" 7 (Two_chain.virtual_window { Two_chain.c = 1; d = 1 } 7)

let test_two_chain_bimodal () =
  (* Two scales: {3, 3} and {64, 80, 96}; single-chain handles this, but
     the two-chain path must also produce a valid schedule on bimodal
     systems when asked directly. *)
  let sys =
    [
      Task.unit ~id:0 ~b:3;
      Task.unit ~id:1 ~b:5;
      Task.unit ~id:2 ~b:64;
      Task.unit ~id:3 ~b:80;
      Task.unit ~id:4 ~b:96;
    ]
  in
  match Two_chain.schedule sys with
  | Some sched -> check_bool "verifies" true (Verify.satisfies sched sys)
  | None -> Alcotest.fail "two-chain should handle the bimodal system"

(* ------------------------------------------------------------------ *)
(* Scheduler                                                          *)
(* ------------------------------------------------------------------ *)

let test_scheduler_auto_verifies () =
  let sys = [ Task.make ~id:1 ~a:2 ~b:5; Task.unit ~id:2 ~b:3 ] in
  match Scheduler.schedule sys with
  | Some sched -> check_bool "verifies" true (Verify.satisfies sched sys)
  | None -> Alcotest.fail "auto should schedule"

let test_scheduler_exact_fallback () =
  (* Density 5/6 pair {2,3}: specialization fails ({2,2} density 1? 1/2+1/2=1
     packs fine actually). Use {(1,1,2),(2,1,3)} anyway and check success. *)
  let sys = [ Task.unit ~id:1 ~b:2; Task.unit ~id:2 ~b:3 ] in
  check_bool "schedulable" true (Scheduler.schedulable sys)

let test_scheduler_validation () =
  Alcotest.check_raises "empty" (Invalid_argument "Scheduler.schedule: empty system")
    (fun () -> ignore (Scheduler.schedule []));
  Alcotest.check_raises "duplicates"
    (Invalid_argument "Scheduler.schedule: duplicate task ids in system") (fun () ->
      ignore (Scheduler.schedule [ Task.unit ~id:1 ~b:2; Task.unit ~id:1 ~b:3 ]))

let test_guaranteed_density () =
  check_bool "Sa guarantee 1/2" true
    (Scheduler.guaranteed_density Scheduler.Sa = Some (Q.make 1 2));
  check_bool "exact: none" true (Scheduler.guaranteed_density Scheduler.Exact_small = None)

let prop_auto_schedules_are_valid =
  QCheck2.Test.make ~name:"every schedule Auto returns verifies" ~count:100
    QCheck2.Gen.(pair (int_range 1 6) (int_bound 1_000_000))
    (fun (n, seed) ->
      let sys = Gen.multi_unit_system ~seed ~n ~max_a:3 ~max_b:32 ~target:0.65 in
      match sys with
      | [] -> true
      | _ -> (
          match Scheduler.schedule sys with
          | Some sched -> Verify.satisfies sched sys
          | None -> true))

let prop_exact_agrees_with_heuristics =
  QCheck2.Test.make ~name:"heuristic success implies exact feasibility" ~count:60
    QCheck2.Gen.(pair (int_range 2 4) (int_bound 1_000_000))
    (fun (n, seed) ->
      let sys = Gen.unit_system_with_density ~seed ~n ~max_b:12 ~target:0.9 in
      match sys with
      | [] -> true
      | _ -> (
          match (Specialize.sx sys, Exact.decide ~max_states:500_000 sys) with
          | Some _, Exact.Infeasible -> false (* heuristic found what exact denies *)
          | _ -> true))

(* ------------------------------------------------------------------ *)
(* Analysis                                                           *)
(* ------------------------------------------------------------------ *)

module Analysis = P.Analysis

let test_analysis_schedulable () =
  let r = Analysis.analyze [ Task.unit ~id:0 ~b:2; Task.unit ~id:1 ~b:3 ] in
  (match r.Analysis.verdict with
  | Analysis.Schedulable _ -> ()
  | _ -> Alcotest.fail "must schedule");
  check_bool "not harmonic" false r.Analysis.harmonic;
  check_int "distinct windows" 2 r.Analysis.distinct_windows;
  check_bool "unit" true r.Analysis.unit_system;
  check_bool "no certificate" true (r.Analysis.certificate = None)

let test_analysis_density_certificate () =
  let r = Analysis.analyze [ Task.make ~id:0 ~a:3 ~b:4; Task.unit ~id:1 ~b:2 ] in
  match r.Analysis.verdict with
  | Analysis.Infeasible (Analysis.Density_above_one d) ->
      Alcotest.(check string) "5/4" "5/4" (Q.to_string d)
  | _ -> Alcotest.fail "density certificate expected"

let test_analysis_pigeonhole_certificate () =
  (* {(1,2),(1,3),(1,6)}: density exactly 1 but w = 6 forces
     3 + 2 + 1 = 6 demands... that's feasible (= w). Use {(1,2),(1,3),(1,5)}:
     density 31/30 > 1 -> density cert. Pigeonhole below density 1:
     {(1,2),(1,3),(1,6)} demands exactly 6 in 6 -- no violation; actually a
     system with density <= 1 can still violate pigeonhole? No: demand(w)
     <= sum w/b_i = w * density <= w. So pigeonhole only triggers at
     density > 1 windows... with multi-unit a similar bound holds. The
     pigeonhole check matters when density slightly exceeds 1 with a small
     witness window. *)
  match Analysis.pigeonhole_violation
          [ Task.unit ~id:0 ~b:2; Task.unit ~id:1 ~b:3; Task.unit ~id:2 ~b:5 ]
  with
  | Some (w, d) ->
      check_bool "witness window" true (w >= 1);
      check_bool "demand exceeds window" true (d > w)
  | None -> Alcotest.fail "density 31/30 must have a pigeonhole witness"

let test_analysis_exhausted_certificate () =
  (* {(1,2),(1,3),(1,12)}: density 11/12 < 1, no pigeonhole, heuristics
     fail, exact proves infeasible. *)
  let r =
    Analysis.analyze
      [ Task.unit ~id:0 ~b:2; Task.unit ~id:1 ~b:3; Task.unit ~id:2 ~b:12 ]
  in
  match r.Analysis.verdict with
  | Analysis.Infeasible Analysis.Exhausted -> ()
  | _ -> Alcotest.fail "exhaustion certificate expected"

let test_analysis_harmonic () =
  check_bool "harmonic" true
    (Analysis.is_harmonic [ Task.unit ~id:0 ~b:2; Task.unit ~id:1 ~b:4; Task.unit ~id:2 ~b:8 ]);
  check_bool "not harmonic" false
    (Analysis.is_harmonic [ Task.unit ~id:0 ~b:4; Task.unit ~id:1 ~b:6 ]);
  let r =
    Analysis.analyze [ Task.unit ~id:0 ~b:2; Task.unit ~id:1 ~b:4; Task.unit ~id:2 ~b:4 ]
  in
  check_bool "harmonic flagged" true r.Analysis.harmonic;
  match r.Analysis.verdict with
  | Analysis.Schedulable _ -> () (* harmonic density-1: schedulable *)
  | _ -> Alcotest.fail "harmonic density 1 must schedule"

let prop_analysis_verdicts_sound =
  QCheck2.Test.make ~name:"analysis verdicts are sound" ~count:80
    QCheck2.Gen.(pair (int_range 2 4) (int_bound 1_000_000))
    (fun (n, seed) ->
      let sys = Gen.unit_system ~seed ~n ~max_b:8 in
      let sys = List.mapi (fun i t -> Task.unit ~id:i ~b:t.Task.b) sys in
      let r = Analysis.analyze sys in
      match r.Analysis.verdict with
      | Analysis.Schedulable sched -> Verify.satisfies sched sys
      | Analysis.Infeasible _ ->
          (* Cross-check with the exact decision. *)
          Exact.is_feasible sys <> Some true
      | Analysis.Unknown -> true)

(* ------------------------------------------------------------------ *)
(* Distance-constrained tasks                                          *)
(* ------------------------------------------------------------------ *)

module Distance = P.Distance

let test_distance_schedule () =
  let tasks = [ Distance.make ~id:0 ~distance:2; Distance.make ~id:1 ~distance:4 ] in
  match Distance.schedule tasks with
  | Some sched -> check_bool "gaps respected" true (Distance.respects_distances sched tasks)
  | None -> Alcotest.fail "distances 2 and 4 fit"

let test_distance_gap_checker () =
  let sched = sched_of_list [ 0; 1; 0; Schedule.idle ] in
  check_bool "gap 2 ok" true
    (Distance.respects_distances sched [ Distance.make ~id:0 ~distance:2 ]);
  check_bool "gap 2 too tight" false
    (Distance.respects_distances sched [ Distance.make ~id:1 ~distance:2 ]);
  check_bool "absent task fails" false
    (Distance.respects_distances sched [ Distance.make ~id:7 ~distance:10 ])

let test_distance_infeasible () =
  check_bool "density above 1 rejected" true
    (Distance.schedule
       [ Distance.make ~id:0 ~distance:2; Distance.make ~id:1 ~distance:2;
         Distance.make ~id:2 ~distance:2 ]
    = None)

(* ------------------------------------------------------------------ *)
(* Gen                                                                *)
(* ------------------------------------------------------------------ *)

let test_gen_density_bounded () =
  let sys = Gen.unit_system_with_density ~seed:7 ~n:10 ~max_b:50 ~target:0.7 in
  check_bool "density below target" true
    (Q.to_float (Task.system_density sys) <= 0.7 +. 1e-9);
  check_bool "deterministic" true
    (sys = Gen.unit_system_with_density ~seed:7 ~n:10 ~max_b:50 ~target:0.7)

let test_gen_multi_unit () =
  let sys = Gen.multi_unit_system ~seed:3 ~n:8 ~max_a:4 ~max_b:40 ~target:0.8 in
  List.iter
    (fun t -> check_bool "a <= b" true (t.Task.a <= t.Task.b))
    sys;
  check_bool "density bounded" true (Q.to_float (Task.system_density sys) <= 0.8 +. 1e-9)

(* ------------------------------------------------------------------ *)
(* Plan / Online dispatcher                                            *)
(* ------------------------------------------------------------------ *)

module Plan = P.Plan
module Online = P.Online
module Density = P.Density

(* The tentpole equivalence: the online dispatcher replayed for two full
   periods is slot-for-slot the eager schedule, on generated feasible
   systems — unit and multi-unit, across every algorithm Auto reaches. *)
let prop_online_matches_eager =
  QCheck2.Test.make ~name:"online dispatch replays the eager schedule"
    ~count:120
    QCheck2.Gen.(triple bool (int_range 1 8) (int_bound 1_000_000))
    (fun (multi, n, seed) ->
      let sys =
        if multi then Gen.multi_unit_system ~seed ~n ~max_a:2 ~max_b:12 ~target:0.8
        else Gen.unit_system_with_density ~seed ~n ~max_b:32 ~target:0.8
      in
      match (Scheduler.plan sys, Scheduler.schedule sys) with
      | None, None -> true
      | Some _, None | None, Some _ -> false (* both paths must agree *)
      | Some plan, Some sched ->
          let p = Plan.period plan in
          p = Schedule.period sched
          && (let d = Plan.create plan in
              let ok = ref true in
              for t = 0 to (2 * p) - 1 do
                if Plan.next d <> Schedule.task_at sched t then ok := false
              done;
              !ok))

let prop_online_take_reset =
  QCheck2.Test.make ~name:"Online.take/reset are consistent with to_schedule"
    ~count:60
    QCheck2.Gen.(pair (int_range 1 6) (int_bound 1_000_000))
    (fun (n, seed) ->
      let sys = Gen.unit_system_with_density ~seed ~n ~max_b:16 ~target:0.6 in
      match Online.of_system sys with
      | None -> true
      | Some o ->
          let p = Online.period o in
          let first = Online.take o p in
          Online.reset o;
          let again = Online.take o p in
          let sched = Online.to_schedule o in
          first = again
          && first = Array.init p (Schedule.task_at sched)
          && Online.slot o = p)

(* Streaming verification agrees with the seed verifier — including on
   schedules that violate their system (windows drawn independently of
   the slots, so plenty of violations are generated). *)
let prop_streaming_verify_agrees =
  QCheck2.Test.make ~name:"streaming satisfies = check_system on random schedules"
    ~count:300
    QCheck2.Gen.(
      triple (int_range 1 12)
        (list_size (int_range 1 24) (int_range (-1) 3))
        (int_bound 1_000_000))
    (fun (max_b, slots, seed) ->
      let slots =
        Array.of_list
          (List.map (fun v -> if v < 0 then Schedule.idle else v) slots)
      in
      let sched = Schedule.make slots in
      let st = Random.State.make [| seed |] in
      let sys =
        List.init 3 (fun id ->
            Task.unit ~id ~b:(1 + Random.State.int st max_b))
      in
      Verify.satisfies sched sys = (Verify.check_system sched sys = []))

let test_satisfies_plan () =
  let sys = [ Task.unit ~id:0 ~b:2; Task.unit ~id:1 ~b:4; Task.unit ~id:2 ~b:4 ] in
  match Scheduler.plan sys with
  | None -> Alcotest.fail "density 1 dyadic system schedules"
  | Some plan ->
      check_bool "plan verifies online" true (Verify.satisfies_plan plan sys);
      check_bool "wrong system rejected" false
        (Verify.satisfies_plan plan [ Task.unit ~id:5 ~b:2 ])

let test_fold_occurrences () =
  let s = sched_of_list [ 1; 2; 1; Schedule.idle; 2 ] in
  let occs = Schedule.fold_occurrences s 1 (fun acc t -> t :: acc) [] in
  Alcotest.(check (list int)) "fold visits ascending" [ 2; 0 ] occs;
  check_int "fold count" 2 (Schedule.fold_occurrences s 2 (fun a _ -> a + 1) 0)

(* ------------------------------------------------------------------ *)
(* Density pre-check                                                   *)
(* ------------------------------------------------------------------ *)

let is_infeasible = function Density.Infeasible _ -> true | _ -> false
let is_guaranteed = function Density.Guaranteed _ -> true | _ -> false

let test_density_pigeonhole () =
  let sys = [ Task.unit ~id:0 ~b:2; Task.unit ~id:1 ~b:2; Task.unit ~id:2 ~b:2 ] in
  check_bool "density 3/2 infeasible" true (is_infeasible (Density.classify sys));
  check_bool "scheduler short-circuits" true (Scheduler.schedule sys = None)

let test_density_example1 () =
  (* Paper Example 1 / Holte et al.: {2, 3, M} is infeasible for any M
     even though its density can be arbitrarily close to 5/6. *)
  let sys = [ Task.unit ~id:0 ~b:2; Task.unit ~id:1 ~b:3; Task.unit ~id:2 ~b:1000 ] in
  check_bool "{2,3,M} infeasible" true (is_infeasible (Density.classify sys));
  check_bool "scheduler returns None" true (Scheduler.schedule sys = None);
  check_bool "plan returns None" true (Scheduler.plan sys = None)

let test_density_five_sixths_edge () =
  (* {2, 3} alone sits exactly at density 5/6 with min window 2: the
     Kawamura bound guarantees it (and ABAB... indeed schedules it). *)
  let sys = [ Task.unit ~id:0 ~b:2; Task.unit ~id:1 ~b:3 ] in
  check_bool "exactly 5/6 guaranteed" true (is_guaranteed (Density.classify sys));
  check_bool "and indeed schedulable" true (Scheduler.schedule sys <> None)

let test_density_half_edge () =
  let sys = [ Task.unit ~id:0 ~b:4; Task.unit ~id:1 ~b:4 ] in
  check_bool "density 1/2 guaranteed" true (is_guaranteed (Density.classify sys))

let test_density_unknown () =
  (* Density 19/20 > 5/6 without the {2,3} pair: no bound applies. *)
  let sys = [ Task.unit ~id:0 ~b:2; Task.unit ~id:1 ~b:4; Task.unit ~id:2 ~b:5 ] in
  check_bool "between bounds undecided" true (Density.classify sys = Density.Unknown)

let prop_density_infeasible_is_sound =
  QCheck2.Test.make ~name:"density Infeasible verdicts never block a schedulable system"
    ~count:150
    QCheck2.Gen.(pair (int_range 1 4) (int_bound 1_000_000))
    (fun (n, seed) ->
      let sys = Gen.unit_system ~seed ~n ~max_b:8 in
      match Density.classify sys with
      | Density.Infeasible _ -> Exact.is_feasible sys <> Some true
      | Density.Guaranteed _ | Density.Unknown -> true)

let () =
  Alcotest.run "pinwheel"
    [
      ( "task",
        [
          Alcotest.test_case "make" `Quick test_task_make;
          Alcotest.test_case "system density" `Quick test_system_density;
          Alcotest.test_case "duplicate ids" `Quick test_duplicate_ids;
          Alcotest.test_case "decompose units" `Quick test_decompose_units;
        ] );
      ( "schedule",
        [
          Alcotest.test_case "basics" `Quick test_schedule_basics;
          Alcotest.test_case "max_gap" `Quick test_max_gap;
          Alcotest.test_case "rotate" `Quick test_rotate;
          Alcotest.test_case "validation" `Quick test_schedule_validation;
        ] );
      ( "verify",
        [
          Alcotest.test_case "paper example 1" `Quick test_verify_example1;
          Alcotest.test_case "paper example 1 (multi-unit)" `Quick test_verify_example1b;
          Alcotest.test_case "violation witness" `Quick test_verify_violation;
          Alcotest.test_case "window > period" `Quick test_verify_window_longer_than_period;
          Alcotest.test_case "idle never counts" `Quick test_verify_idle_never_counts;
        ] );
      ( "verify-properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_verify_matches_brute_force;
            prop_rotate_preserves_satisfaction;
            prop_map_tasks_preserves_counts;
          ] );
      ( "exact",
        [
          Alcotest.test_case "example 1 feasible" `Quick test_exact_example1;
          Alcotest.test_case "paper's infeasible family" `Quick test_exact_infeasible_third_example;
          Alcotest.test_case "density-1 pair" `Quick test_exact_density_one_pair;
          Alcotest.test_case "two-task theorem (Holte)" `Slow test_exact_two_task_theorem;
          Alcotest.test_case "density > 1 infeasible" `Quick test_exact_density_above_one_infeasible;
          Alcotest.test_case "state cap" `Quick test_exact_too_large;
          Alcotest.test_case "multi-unit rejected" `Quick test_exact_rejects_multi_unit;
          Alcotest.test_case "harmonic 5/6 boundary" `Quick test_exact_lin_lin_boundary;
        ] );
      ( "exact-multi",
        [
          Alcotest.test_case "paper example" `Quick test_exact_multi_paper_example;
          Alcotest.test_case "density bound" `Quick test_exact_multi_density_bound;
          Alcotest.test_case "agrees with unit solver" `Slow
            test_exact_multi_agrees_with_unit_exact;
          Alcotest.test_case "saturated tasks" `Quick test_exact_multi_saturated;
          Alcotest.test_case "state cap" `Quick test_exact_multi_too_large;
        ] );
      ( "exact-multi-properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_exact_multi_never_contradicts_heuristics ] );
      ( "harmonic",
        [
          Alcotest.test_case "pack simple" `Quick test_harmonic_pack_simple;
          Alcotest.test_case "overfull rejected" `Quick test_harmonic_pack_overfull;
          Alcotest.test_case "base 3" `Quick test_harmonic_pack_base3;
          Alcotest.test_case "off-chain rejected" `Quick test_harmonic_rejects_off_chain;
          Alcotest.test_case "repeated keys" `Quick test_harmonic_repeated_keys;
        ] );
      ( "harmonic-properties",
        List.map QCheck_alcotest.to_alcotest [ prop_harmonic_density_le_one_packs ] );
      ( "specialize",
        [
          Alcotest.test_case "to_chain" `Quick test_to_chain;
          Alcotest.test_case "Sa example" `Quick test_sa_succeeds_example;
          Alcotest.test_case "Sx picks better base" `Quick test_sx_beats_sa;
          Alcotest.test_case "Sx multi-unit" `Quick test_sx_multi_unit;
          Alcotest.test_case "specialized density" `Quick test_specialized_density;
        ] );
      ( "specialize-properties",
        List.map QCheck_alcotest.to_alcotest [ prop_sa_guarantee; prop_sx_dominates_sa ] );
      ( "rotation",
        [
          Alcotest.test_case "two-distinct beats Sx" `Quick test_rotation_two_distinct;
          Alcotest.test_case "assign" `Quick test_rotation_assign;
          Alcotest.test_case "exact-period semantics" `Quick
            test_rotation_exact_period_semantics;
          Alcotest.test_case "multi-unit" `Quick test_rotation_multi_unit;
        ] );
      ( "rotation-properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_rotation_schedules_verify; prop_rotation_multiple_structure ] );
      ( "two-chain",
        [
          Alcotest.test_case "virtual window" `Quick test_virtual_window;
          Alcotest.test_case "bimodal system" `Quick test_two_chain_bimodal;
        ] );
      ( "scheduler",
        [
          Alcotest.test_case "auto verifies" `Quick test_scheduler_auto_verifies;
          Alcotest.test_case "exact fallback" `Quick test_scheduler_exact_fallback;
          Alcotest.test_case "validation" `Quick test_scheduler_validation;
          Alcotest.test_case "guaranteed density" `Quick test_guaranteed_density;
        ] );
      ( "scheduler-properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_auto_schedules_are_valid; prop_exact_agrees_with_heuristics ] );
      ( "analysis",
        [
          Alcotest.test_case "schedulable report" `Quick test_analysis_schedulable;
          Alcotest.test_case "density certificate" `Quick test_analysis_density_certificate;
          Alcotest.test_case "pigeonhole witness" `Quick test_analysis_pigeonhole_certificate;
          Alcotest.test_case "exhaustion certificate" `Quick test_analysis_exhausted_certificate;
          Alcotest.test_case "harmonic classification" `Quick test_analysis_harmonic;
        ] );
      ( "analysis-properties",
        List.map QCheck_alcotest.to_alcotest [ prop_analysis_verdicts_sound ] );
      ( "distance",
        [
          Alcotest.test_case "schedule" `Quick test_distance_schedule;
          Alcotest.test_case "gap checker" `Quick test_distance_gap_checker;
          Alcotest.test_case "infeasible" `Quick test_distance_infeasible;
        ] );
      ( "gen",
        [
          Alcotest.test_case "density bounded" `Quick test_gen_density_bounded;
          Alcotest.test_case "multi-unit" `Quick test_gen_multi_unit;
        ] );
      ( "online",
        [
          Alcotest.test_case "satisfies_plan" `Quick test_satisfies_plan;
          Alcotest.test_case "fold_occurrences" `Quick test_fold_occurrences;
        ] );
      ( "online-properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_online_matches_eager;
            prop_online_take_reset;
            prop_streaming_verify_agrees;
          ] );
      ( "density",
        [
          Alcotest.test_case "pigeonhole" `Quick test_density_pigeonhole;
          Alcotest.test_case "example 1 family" `Quick test_density_example1;
          Alcotest.test_case "5/6 edge" `Quick test_density_five_sixths_edge;
          Alcotest.test_case "1/2 edge" `Quick test_density_half_edge;
          Alcotest.test_case "unknown band" `Quick test_density_unknown;
        ] );
      ( "density-properties",
        List.map QCheck_alcotest.to_alcotest [ prop_density_infeasible_is_sound ] );
    ]
