(* Tests for the broadcast-disk ecosystem extensions: the classic
   multi-disk baseline, client cache policies, air indexing and update
   dissemination / staleness. *)

module Program = Pindisk.Program
module Multidisk = Pindisk.Multidisk
module Cache = Pindisk_sim.Cache
module Indexing = Pindisk_sim.Indexing
module Fault = Pindisk_sim.Fault
module Staleness = Pindisk_rtdb.Staleness
module Schedule = Pindisk_pinwheel.Schedule

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* Multidisk                                                           *)
(* ------------------------------------------------------------------ *)

let farm () =
  Multidisk.program
    [
      { Multidisk.frequency = 4; files = [ (0, 2) ] };
      { Multidisk.frequency = 2; files = [ (1, 3) ] };
      { Multidisk.frequency = 1; files = [ (2, 4); (3, 1) ] };
    ]

let test_multidisk_frequencies () =
  let p = farm () in
  (* Hot file appears frequency * blocks times per major cycle. *)
  check_int "hot file 0: 4 * 2" 8 (Program.occurrences_per_period p 0);
  check_int "file 1: 2 * 3" 6 (Program.occurrences_per_period p 1);
  check_int "cold file 2: 1 * 4" 4 (Program.occurrences_per_period p 2);
  check_int "cold file 3: 1 * 1" 1 (Program.occurrences_per_period p 3)

let test_multidisk_block_cycling () =
  (* Every occurrence stream must follow the k mod m discipline (checked
     by of_layout internally); data cycle = period for plain disks. *)
  let p = farm () in
  check_int "data cycle = period" (Program.period p) (Program.data_cycle p)

let test_multidisk_hot_faster () =
  let p = farm () in
  let e f = Option.get (Multidisk.expected_delay p f) in
  check_bool "hot beats warm" true (e 0 < e 1);
  check_bool "warm beats cold" true (e 1 < e 2)

let test_multidisk_worst_case () =
  let p = farm () in
  (* Non-real-time construction: cold files' worst case is the full major
     cycle -- exactly the gap pinwheel programs close. *)
  check_int "cold worst case = period" (Program.period p)
    (Option.get (Multidisk.worst_case_retrieval_error_free p 2))

let test_multidisk_single_disk_is_flat_like () =
  let p = Multidisk.program [ { Multidisk.frequency = 1; files = [ (0, 3); (1, 2) ] } ] in
  check_int "period" 5 (Program.period p);
  check_int "f0 occurrences" 3 (Program.occurrences_per_period p 0)

let test_multidisk_validation () =
  Alcotest.check_raises "non-dividing frequency"
    (Invalid_argument "Multidisk.program: frequency 3 does not divide the maximum 4")
    (fun () ->
      ignore
        (Multidisk.program
           [
             { Multidisk.frequency = 4; files = [ (0, 1) ] };
             { Multidisk.frequency = 3; files = [ (1, 1) ] };
           ]));
  Alcotest.check_raises "duplicate ids"
    (Invalid_argument "Multidisk.program: duplicate file ids") (fun () ->
      ignore
        (Multidisk.program
           [
             { Multidisk.frequency = 2; files = [ (0, 1) ] };
             { Multidisk.frequency = 1; files = [ (0, 1) ] };
           ]))

(* ------------------------------------------------------------------ *)
(* Cache                                                               *)
(* ------------------------------------------------------------------ *)

(* A page-granularity multi-disk: page 0 hot on air, pages 4.. cold. *)
let page_program ~hot_on_air =
  Multidisk.program
    (if hot_on_air then
       [
         { Multidisk.frequency = 4; files = [ (0, 1); (1, 1) ] };
         { Multidisk.frequency = 1; files = List.init 6 (fun i -> (i + 2, 1)) };
       ]
     else
       (* Mismatched: the client-hot pages are broadcast cold. *)
       [
         { Multidisk.frequency = 4; files = [ (6, 1); (7, 1) ] };
         { Multidisk.frequency = 1; files = List.init 6 (fun i -> (i, 1)) };
       ])

let test_zipf_weights () =
  let w = Cache.zipf_weights ~n:4 ~theta:1.0 in
  Alcotest.(check (float 1e-9)) "sums to 1" 1.0 (Array.fold_left ( +. ) 0.0 w);
  check_bool "decreasing" true (w.(0) > w.(1) && w.(1) > w.(2));
  let flat = Cache.zipf_weights ~n:4 ~theta:0.0 in
  Alcotest.(check (float 1e-9)) "theta 0 uniform" 0.25 flat.(2)

let test_cache_bigger_is_better () =
  let program = page_program ~hot_on_air:false in
  let run cache_slots =
    Cache.simulate ~program ~cache_slots ~policy:Cache.Lru ~theta:0.95
      ~accesses:4000 ~seed:5 ()
  in
  let small = run 1 and big = run 6 in
  check_bool "more cache, more hits" true
    (Cache.hit_ratio big > Cache.hit_ratio small);
  check_bool "more cache, less latency" true
    (big.Cache.mean_latency <= small.Cache.mean_latency)

let test_cache_pix_beats_lru_on_mismatch () =
  (* The SIGMOD'95 signature result: when client-hot pages are broadcast
     rarely, PIX (which caches hot-but-rare pages) beats LRU. *)
  let program = page_program ~hot_on_air:false in
  let run policy =
    Cache.simulate ~program ~cache_slots:3 ~policy ~theta:0.95 ~accesses:6000
      ~seed:11 ()
  in
  let pix = run Cache.Pix and lru = run Cache.Lru in
  check_bool "PIX latency <= LRU latency" true
    (pix.Cache.mean_latency <= lru.Cache.mean_latency)

let test_cache_zero_slots () =
  let program = page_program ~hot_on_air:true in
  let s =
    Cache.simulate ~program ~cache_slots:0 ~policy:Cache.Lfu ~theta:1.0
      ~accesses:500 ~seed:2 ()
  in
  check_int "no cache, no hits" 0 s.Cache.hits

let test_cache_rejects_multiblock () =
  let p = Program.flat [ (0, 2); (1, 1) ] in
  Alcotest.check_raises "page-granularity only"
    (Invalid_argument "Cache.simulate: page-granularity programs only")
    (fun () ->
      ignore
        (Cache.simulate ~program:p ~cache_slots:1 ~policy:Cache.Lru ~theta:1.0
           ~accesses:10 ~seed:0 ()))

let test_cache_deterministic () =
  let program = page_program ~hot_on_air:true in
  let run () =
    Cache.simulate ~program ~cache_slots:2 ~policy:Cache.Pix ~theta:0.8
      ~accesses:1000 ~seed:9 ()
  in
  check_bool "same seed same stats" true (run () = run ())

(* ------------------------------------------------------------------ *)
(* Indexing                                                            *)
(* ------------------------------------------------------------------ *)

let base_program () = Program.flat [ (0, 2); (1, 3); (2, 5); (3, 2) ]

let test_with_index_layout () =
  let p = base_program () in
  let indexed, idx = Indexing.with_index p ~copies:3 ~index_slots:2 in
  check_int "index id above files" 4 idx;
  check_int "period grows by copies * slots" (Program.period p + 6)
    (Program.period indexed);
  check_int "index occurrences" 6 (Program.occurrences_per_period indexed idx);
  (* Data slots preserved in order. *)
  List.iter
    (fun f ->
      check_int "occurrences preserved"
        (Program.occurrences_per_period p f)
        (Program.occurrences_per_period indexed f))
    (Program.files p)

let test_index_cuts_tuning_time () =
  let p = base_program () in
  let indexed, idx = Indexing.with_index p ~copies:4 ~index_slots:1 in
  let plain = Indexing.self_identifying_metrics p ~file:2 ~needed:5 in
  let smart = Indexing.indexed_metrics indexed ~index_file:idx ~index_slots:1 ~file:2 ~needed:5 in
  (* Indexing trades a slightly longer access time for far less awake
     time. *)
  check_bool "tuning shrinks" true
    (smart.Indexing.tuning_time < plain.Indexing.tuning_time /. 1.5);
  check_bool "access grows but boundedly" true
    (smart.Indexing.access_time < 2.0 *. plain.Indexing.access_time);
  (* Self-identifying: tuning = access by definition. *)
  Alcotest.(check (float 1e-9)) "plain: tuning = access"
    plain.Indexing.access_time plain.Indexing.tuning_time

let test_index_more_copies_faster_access () =
  let p = base_program () in
  let i1, idx1 = Indexing.with_index p ~copies:1 ~index_slots:1 in
  let i4, idx4 = Indexing.with_index p ~copies:4 ~index_slots:1 in
  let m1 = Indexing.indexed_metrics i1 ~index_file:idx1 ~index_slots:1 ~file:0 ~needed:2 in
  let m4 = Indexing.indexed_metrics i4 ~index_file:idx4 ~index_slots:1 ~file:0 ~needed:2 in
  (* More index copies -> shorter wait for the next index. *)
  check_bool "4 copies beat 1 copy on access" true
    (m4.Indexing.access_time < m1.Indexing.access_time)

let test_indexed_lossy_matches_clean_at_zero_loss () =
  let p = base_program () in
  let indexed, idx = Indexing.with_index p ~copies:4 ~index_slots:1 in
  let clean = Indexing.indexed_metrics indexed ~index_file:idx ~index_slots:1 ~file:2 ~needed:5 in
  (* At zero loss, averaging the lossy path over all starts must agree
     with the analytic metrics. *)
  let cycle = Program.data_cycle indexed in
  let acc = ref 0.0 and tun = ref 0.0 in
  for start = 0 to cycle - 1 do
    match
      Indexing.indexed_retrieve_lossy indexed ~index_file:idx ~index_slots:1
        ~file:2 ~needed:5 ~start ~fault:(Pindisk_sim.Fault.none ())
    with
    | Some m ->
        acc := !acc +. m.Indexing.access_time;
        tun := !tun +. m.Indexing.tuning_time
    | None -> Alcotest.fail "fault-free lossy path must complete"
  done;
  let n = float_of_int cycle in
  Alcotest.(check (float 1e-6)) "access agrees" clean.Indexing.access_time (!acc /. n);
  Alcotest.(check (float 1e-6)) "tuning agrees" clean.Indexing.tuning_time (!tun /. n)

let test_indexed_lossy_index_loss_hurts_access () =
  let p = base_program () in
  let indexed, idx = Indexing.with_index p ~copies:2 ~index_slots:1 in
  (* Script a loss exactly on the first index slot the client waits for:
     access time must exceed the fault-free run from the same start. *)
  let clean =
    Option.get
      (Indexing.indexed_retrieve_lossy indexed ~index_file:idx ~index_slots:1
         ~file:0 ~needed:2 ~start:1 ~fault:(Pindisk_sim.Fault.none ()))
  in
  (* Find the first index slot at/after slot 2 and ruin it. *)
  let cycle = Program.data_cycle indexed in
  let first_index =
    let rec go t =
      if t > 2 * cycle then Alcotest.fail "no index found"
      else
        match Program.block_at indexed t with
        | Some (f, 0) when f = idx -> t
        | _ -> go (t + 1)
    in
    go 2
  in
  let lossy =
    Option.get
      (Indexing.indexed_retrieve_lossy indexed ~index_file:idx ~index_slots:1
         ~file:0 ~needed:2 ~start:1
         ~fault:(Pindisk_sim.Fault.deterministic (fun t -> t = first_index)))
  in
  check_bool "access strictly worse" true
    (lossy.Indexing.access_time > clean.Indexing.access_time);
  check_bool "tuning grows too" true
    (lossy.Indexing.tuning_time >= clean.Indexing.tuning_time +. 1.0)

let test_with_index_validation () =
  let p = base_program () in
  Alcotest.check_raises "copies must divide period"
    (Invalid_argument "Indexing.with_index: copies must divide the period")
    (fun () -> ignore (Indexing.with_index p ~copies:5 ~index_slots:1))

(* ------------------------------------------------------------------ *)
(* Staleness                                                           *)
(* ------------------------------------------------------------------ *)

let toy_ida () =
  Program.of_layout
    [ (0, 0); (1, 0); (0, 1); (0, 2); (1, 1); (0, 3); (1, 2); (0, 4) ]
    ~capacities:[ (0, 10); (1, 6) ]

let test_staleness_slow_updates () =
  (* Updates much slower than retrieval: no restarts, full consistency. *)
  let p = toy_ida () in
  match
    Staleness.retrieve ~program:p ~file:0 ~needed:5 ~update_period:1000 ~start:0 ()
  with
  | Some o ->
      check_int "no restarts" 0 o.Staleness.restarts;
      check_int "latency as error-free" 8 o.Staleness.latency
  | None -> Alcotest.fail "must complete"

let test_staleness_restart_on_version_change () =
  (* Updates every period: a client spanning a boundary restarts. *)
  let p = toy_ida () in
  match
    Staleness.retrieve ~program:p ~file:0 ~needed:5 ~update_period:8 ~start:4 ()
  with
  | Some o ->
      check_bool "restarted at the boundary" true (o.Staleness.restarts >= 1);
      check_bool "age below one period" true (o.Staleness.age_at_completion <= 8)
  | None -> Alcotest.fail "must complete"

let test_staleness_starvation () =
  (* Versions take effect at period boundaries, so any retrieval that
     must span periods restarts whenever updates arrive every period:
     file 0 here has 2 occurrences per 3-slot period but needs 3 distinct
     blocks, so with update_period = 3 every collection dies at the next
     boundary -- total starvation. *)
  let p =
    Program.of_layout [ (0, 0); (0, 1); (1, 0) ] ~capacities:[ (0, 6); (1, 1) ]
  in
  let s =
    Staleness.sweep ~program:p ~file:0 ~needed:3 ~update_period:3 ~avi:10 ()
  in
  check_int "everyone starves" s.Staleness.trials s.Staleness.starved;
  (* Slowing updates to two periods ends the starvation. *)
  let s' =
    Staleness.sweep ~program:p ~file:0 ~needed:3 ~update_period:6 ~avi:10 ()
  in
  check_int "no starvation at half rate" 0 s'.Staleness.starved

let test_staleness_sweep_consistency_monotone () =
  let p = toy_ida () in
  let ratio avi =
    (Staleness.sweep ~program:p ~file:0 ~needed:5 ~update_period:20 ~avi ())
      .Staleness.consistency_ratio
  in
  check_bool "larger avi, more consistent" true (ratio 40 >= ratio 10);
  Alcotest.(check (float 1e-9)) "huge avi always consistent" 1.0 (ratio 10_000)

let test_staleness_large_start () =
  (* Tune-in deep into the broadcast behaves like the equivalent phase. *)
  let p = toy_ida () in
  let at start =
    Option.get
      (Staleness.retrieve ~program:p ~file:0 ~needed:5 ~update_period:16 ~start ())
  in
  let near = at 3 and far = at (3 + (16 * 50)) in
  check_int "same latency" near.Staleness.latency far.Staleness.latency;
  check_int "same age" near.Staleness.age_at_completion far.Staleness.age_at_completion

let test_staleness_age_bounded_by_update_period_plus_latency () =
  let p = toy_ida () in
  let s = Staleness.sweep ~program:p ~file:0 ~needed:5 ~update_period:16 ~avi:32 () in
  check_bool "max age <= update_period + period + max latency" true
    (s.Staleness.max_age <= 16 + 8 + s.Staleness.max_latency)

(* ------------------------------------------------------------------ *)
(* Snapshot                                                            *)
(* ------------------------------------------------------------------ *)

module Snapshot = Pindisk_rtdb.Snapshot

let snapshot_reads =
  [ { Snapshot.file = 0; needed = 5 }; { Snapshot.file = 1; needed = 3 } ]

let test_snapshot_slow_updates () =
  (* Updates far slower than the transaction: single epoch, no restarts,
     elapsed = plain transactional worst for this phase. *)
  let p = toy_ida () in
  match
    Snapshot.retrieve ~program:p ~reads:snapshot_reads ~update_period:1000
      ~start:0 ()
  with
  | Some o ->
      check_int "no restarts" 0 o.Snapshot.restarts;
      check_int "epoch 0" 0 o.Snapshot.epoch;
      check_int "elapsed 8" 8 o.Snapshot.elapsed
  | None -> Alcotest.fail "must commit"

let test_snapshot_epoch_agreement () =
  (* Updates every other period: a transaction spanning a boundary must
     re-read the items stranded in the older epoch and commit in one
     epoch anyway. *)
  let p = toy_ida () in
  for start = 0 to 15 do
    match
      Snapshot.retrieve ~program:p ~reads:snapshot_reads ~update_period:16
        ~start ()
    with
    | Some o -> check_bool "epoch non-negative" true (o.Snapshot.epoch >= 0)
    | None -> Alcotest.failf "starved from %d" start
  done

let test_snapshot_restarts_happen () =
  let p = toy_ida () in
  let s =
    Snapshot.sweep ~program:p ~reads:snapshot_reads ~update_period:8 ()
  in
  (* Epoch flips every period; transactions that straddle a boundary must
     restart at least sometimes. *)
  check_bool "some restarts" true (s.Snapshot.mean_restarts > 0.0);
  check_int "none starved (both items fit in one period)" 0 s.Snapshot.starved

let test_snapshot_starvation () =
  (* An item needing two periods to collect + epoch flip every period =
     unserviceable snapshot. *)
  let p =
    Program.of_layout [ (0, 0); (0, 1); (1, 0) ] ~capacities:[ (0, 6); (1, 1) ]
  in
  let s =
    Snapshot.sweep ~program:p
      ~reads:[ { Snapshot.file = 0; needed = 3 }; { Snapshot.file = 1; needed = 1 } ]
      ~update_period:3 ()
  in
  check_int "all starved" s.Snapshot.trials s.Snapshot.starved

let test_snapshot_validation () =
  let p = toy_ida () in
  Alcotest.check_raises "duplicates"
    (Invalid_argument "Snapshot.retrieve: duplicate files") (fun () ->
      ignore
        (Snapshot.retrieve ~program:p
           ~reads:[ { Snapshot.file = 0; needed = 1 }; { Snapshot.file = 0; needed = 2 } ]
           ~update_period:10 ~start:0 ()))

let () =
  Alcotest.run "extensions"
    [
      ( "multidisk",
        [
          Alcotest.test_case "frequencies" `Quick test_multidisk_frequencies;
          Alcotest.test_case "block cycling" `Quick test_multidisk_block_cycling;
          Alcotest.test_case "hot is faster" `Quick test_multidisk_hot_faster;
          Alcotest.test_case "cold worst case" `Quick test_multidisk_worst_case;
          Alcotest.test_case "single disk" `Quick test_multidisk_single_disk_is_flat_like;
          Alcotest.test_case "validation" `Quick test_multidisk_validation;
        ] );
      ( "cache",
        [
          Alcotest.test_case "zipf weights" `Quick test_zipf_weights;
          Alcotest.test_case "bigger cache is better" `Quick test_cache_bigger_is_better;
          Alcotest.test_case "PIX beats LRU on mismatch" `Quick
            test_cache_pix_beats_lru_on_mismatch;
          Alcotest.test_case "zero slots" `Quick test_cache_zero_slots;
          Alcotest.test_case "page granularity enforced" `Quick test_cache_rejects_multiblock;
          Alcotest.test_case "deterministic" `Quick test_cache_deterministic;
        ] );
      ( "indexing",
        [
          Alcotest.test_case "with_index layout" `Quick test_with_index_layout;
          Alcotest.test_case "tuning time shrinks" `Quick test_index_cuts_tuning_time;
          Alcotest.test_case "more copies, faster access" `Quick
            test_index_more_copies_faster_access;
          Alcotest.test_case "lossy path matches clean at p=0" `Quick
            test_indexed_lossy_matches_clean_at_zero_loss;
          Alcotest.test_case "index loss hurts access" `Quick
            test_indexed_lossy_index_loss_hurts_access;
          Alcotest.test_case "validation" `Quick test_with_index_validation;
        ] );
      ( "snapshot",
        [
          Alcotest.test_case "slow updates" `Quick test_snapshot_slow_updates;
          Alcotest.test_case "epoch agreement" `Quick test_snapshot_epoch_agreement;
          Alcotest.test_case "restarts happen" `Quick test_snapshot_restarts_happen;
          Alcotest.test_case "starvation" `Quick test_snapshot_starvation;
          Alcotest.test_case "validation" `Quick test_snapshot_validation;
        ] );
      ( "staleness",
        [
          Alcotest.test_case "slow updates" `Quick test_staleness_slow_updates;
          Alcotest.test_case "restart on version change" `Quick
            test_staleness_restart_on_version_change;
          Alcotest.test_case "starvation" `Quick test_staleness_starvation;
          Alcotest.test_case "consistency monotone in avi" `Quick
            test_staleness_sweep_consistency_monotone;
          Alcotest.test_case "large start phase-equivalent" `Quick
            test_staleness_large_start;
          Alcotest.test_case "age bound" `Quick
            test_staleness_age_bounded_by_update_period_plus_latency;
        ] );
    ]
